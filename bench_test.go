// Benchmarks regenerating every figure and study of the paper's
// evaluation. One benchmark per artefact:
//
//	BenchmarkFigure1SkxImpi      paper Figure 1  (E1)
//	BenchmarkFigure2SkxMvapich   paper Figure 2  (E2)
//	BenchmarkFigure3Ls5Cray      paper Figure 3  (E3)
//	BenchmarkFigure4KnlImpi      paper Figure 4  (E4)
//	BenchmarkEagerLimit          §4.5 study      (E5)
//	BenchmarkCacheFlush          §4.6 study      (E6)
//	BenchmarkStrideIrregularity  §4.7 study      (E7)
//	BenchmarkBlockSize           §4.7 study      (E8)
//	BenchmarkNodeScaling         §4.7 study      (E9)
//	BenchmarkCostModelFactors    §2 cost model   (E10)
//
// The figure benchmarks report the paper's headline numbers as custom
// metrics (slowdowns at 1 GB relative to the contiguous reference), so
// `go test -bench=.` doubles as a reproduction report. Absolute wall
// time of a benchmark iteration is the cost of simulating the sweep,
// not the simulated time itself.
package repro_test

import (
	"strings"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/harness"
)

// benchOpts keeps the sweeps affordable inside the benchmark loop:
// model timing is deterministic, so two repetitions measure the same
// thing as the paper's twenty.
func benchOpts() harness.Options {
	o := harness.DefaultOptions()
	o.Reps = 2
	o.MaxRealBytes = 1 << 20
	return o
}

func benchFigure(b *testing.B, profile string) {
	sizes := figures.DefaultSizes(2)
	opt := benchOpts()
	var fig *figures.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = figures.Build(profile, sizes, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	const n = 1_000_000_000
	for _, s := range []core.Scheme{core.Copying, core.VectorType, core.OneSided, core.PackVector, core.PackElement} {
		sd, err := fig.SchemeSlowdownAt(s, n)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sd, strings.ReplaceAll(s.String(), " ", "-")+"@1GB(x)")
	}
}

func BenchmarkFigure1SkxImpi(b *testing.B)    { benchFigure(b, "skx-impi") }
func BenchmarkFigure2SkxMvapich(b *testing.B) { benchFigure(b, "skx-mvapich") }
func BenchmarkFigure3Ls5Cray(b *testing.B)    { benchFigure(b, "ls5-cray") }
func BenchmarkFigure4KnlImpi(b *testing.B)    { benchFigure(b, "knl-impi") }

func BenchmarkEagerLimit(b *testing.B) {
	opt := benchOpts()
	var st *figures.EagerStudy
	for i := 0; i < b.N; i++ {
		var err error
		st, err = figures.BuildEagerStudy("skx-impi", opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(st.LargeUnchangedByRaisedLimit()*100, "raisedLimitΔ(%)")
}

func BenchmarkCacheFlush(b *testing.B) {
	opt := benchOpts()
	var st *figures.CacheStudy
	for i := 0; i < b.N; i++ {
		var err error
		st, err = figures.BuildCacheStudy("skx-impi", opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Peak speedup from leaving caches warm (paper §4.6: a clear
	// positive effect on intermediate sizes).
	best := 0.0
	for _, y := range st.Speedup.Y {
		if y > best {
			best = y
		}
	}
	b.ReportMetric(best, "warmSpeedup(x)")
}

func BenchmarkStrideIrregularity(b *testing.B) {
	opt := benchOpts()
	var st *figures.SpacingStudy
	for i := 0; i < b.N; i++ {
		var err error
		st, err = figures.BuildSpacingStudy("skx-impi", 4<<20, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	ts := st.Times[core.VectorType]
	b.ReportMetric(ts[len(ts)-1]/ts[0], "jitterPenalty(x)")
}

func BenchmarkBlockSize(b *testing.B) {
	opt := benchOpts()
	var st *figures.BlockSizeStudy
	for i := 0; i < b.N; i++ {
		var err error
		st, err = figures.BuildBlockSizeStudy("skx-impi", 4<<20, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	ts := st.Times[core.VectorType]
	b.ReportMetric(ts[0]/ts[len(ts)-1], "bigBlockGain(x)")
}

func BenchmarkNodeScaling(b *testing.B) {
	var st *figures.NodeScalingStudy
	for i := 0; i < b.N; i++ {
		var err error
		st, err = figures.BuildNodeScalingStudy("skx-impi", 6, 1<<20, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(st.MaxDegradation()*100, "pairDegradation(%)")
}

func BenchmarkCostModelFactors(b *testing.B) {
	opt := benchOpts()
	var ck *figures.CostModelCheck
	for i := 0; i < b.N; i++ {
		var err error
		ck, err = figures.BuildCostModelCheck("skx-impi", 100_000_000, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ck.CopyingSlowdown, "copy/ref(x)")
	b.ReportMetric(ck.PackVsCopy, "packv/copy(x)")
	b.ReportMetric(ck.PackElementRatio, "packe/copy(x)")
}

// BenchmarkPipeliningAblation is E11: the reference-[2] what-if. The
// reported metric is how much NIC datatype pipelining would recover at
// 1 GB relative to the measured vector-type behaviour.
func BenchmarkPipeliningAblation(b *testing.B) {
	opt := benchOpts()
	sizes := []int64{1_000_000, 100_000_000, 1_000_000_000}
	var st *figures.PipeliningStudy
	for i := 0; i < b.N; i++ {
		var err error
		st, err = figures.BuildPipeliningStudy("skx-impi", sizes, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(st.LargeGain(), "pipeliningGain@1GB(x)")
}

// BenchmarkSingleMeasurement prices one harness cell: useful when
// profiling the simulator itself.
func BenchmarkSingleMeasurement(b *testing.B) {
	prof, err := repro.ProfileByName("skx-impi")
	if err != nil {
		b.Fatal(err)
	}
	opt := benchOpts()
	w := repro.WorkloadForBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Measure(prof, repro.PackVector, w, opt); err != nil {
			b.Fatal(err)
		}
	}
}
