// Package repro reproduces "Performance of MPI Sends of Non-Contiguous
// Data" (Victor Eijkhout; arXiv:1809.10778) as a self-contained Go
// library: a from-scratch MPI-like runtime over a simulated cluster
// fabric, a derived-datatype engine, the paper's eight send schemes,
// and the measurement harness and experiments that regenerate every
// figure of the evaluation.
//
// This root package is the public facade: it re-exports the stable
// surface of the internal packages so applications program against one
// import. The examples/ directory shows the API on the three workloads
// the paper's introduction motivates — multigrid coarsening transfers,
// FEM boundary exchanges, and sending the real parts of a complex
// array — plus a quickstart and an auto-tuning demo.
//
// # Pack-plan compiler
//
// The datatype engine packs through a plan compiler
// (internal/datatype/plan.go): committing a type and binding it to a
// count compiles an executable plan that selects a specialized kernel
// — a single copy for contiguous layouts, an unrolled fixed-stride
// loop for regular run/gap patterns (the paper's vector types), or a
// flattened segment-table gather for irregular types — and splits the
// packed range across goroutines for messages of at least
// SetParallelPackThreshold bytes. Chunked mid-stream packing (the
// runtime's internal pipelined sends) falls back to the interpreting
// cursor; the two engines are property-tested byte-for-byte against
// each other. The ninth scheme, PackCompiled ("packing(c)"), measures
// this engine against the paper's interpreted packing(v); the tenth,
// Sendv ("sendv"), is the fused zero-copy rendezvous, where the
// compiled plan scatters the sender's layout straight into the
// receiver's buffer in one pass — no staging buffer, no MPI-internal
// chunking. Measurement.PlanStats reports which kernels moved each
// cell's bytes, including fused-vs-staged attribution.
//
// Quick start:
//
//	prof, _ := repro.ProfileByName("skx-impi")
//	m, err := repro.Measure(prof, repro.PackVector, repro.WorkloadForBytes(1<<20), repro.DefaultOptions())
//	fmt.Println(m.Time(), m.Bandwidth())
package repro

import (
	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/figures"
	"repro/internal/guidelines"
	"repro/internal/harness"
	"repro/internal/memsim"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/simnet"
)

// Scheme identifies one of the paper's eight send schemes.
type Scheme = core.Scheme

// The schemes, in the order of the paper's figure legends, plus the
// compiled-pack, fused-rendezvous and pipelined-typed schemes.
const (
	Reference      = core.Reference
	Copying        = core.Copying
	Buffered       = core.Buffered
	VectorType     = core.VectorType
	Subarray       = core.Subarray
	OneSided       = core.OneSided
	PackElement    = core.PackElement
	PackVector     = core.PackVector
	PackCompiled   = core.PackCompiled
	Sendv          = core.Sendv
	TypedPipelined = core.TypedPipelined
)

// Schemes lists all schemes in legend order.
func Schemes() []Scheme { return core.Schemes() }

// SchemeByName resolves a legend label like "packing(v)".
func SchemeByName(name string) (Scheme, error) { return core.SchemeByName(name) }

// Workload describes a strided payload; WorkloadForBytes builds the
// paper's canonical every-other-element case.
type Workload = core.Workload

// WorkloadForBytes builds the canonical workload for an n-byte
// payload.
func WorkloadForBytes(n int64) Workload { return core.ForBytes(n) }

// Profile is a simulated installation (hardware + MPI implementation).
type Profile = perfmodel.Profile

// ProfileByName returns a fresh copy of a named installation profile:
// skx-impi, skx-mvapich, ls5-cray, knl-impi, or generic.
func ProfileByName(name string) (*Profile, error) { return perfmodel.ByName(name) }

// ProfileNames lists the registered installations.
func ProfileNames() []string { return perfmodel.Names() }

// Options configures the measurement harness; DefaultOptions is the
// paper's protocol (20 ping-pongs, cache flushing, 1-σ dismissal).
type Options = harness.Options

// DefaultOptions returns the paper's measurement protocol.
func DefaultOptions() Options { return harness.DefaultOptions() }

// Measurement is one (scheme, size) result.
type Measurement = harness.Measurement

// Measure runs one scheme at one workload on a fresh simulated pair.
func Measure(p *Profile, s Scheme, w Workload, opt Options) (Measurement, error) {
	return harness.Measure(p, s, w, opt)
}

// MeasureSweep measures one scheme across several workloads.
func MeasureSweep(p *Profile, s Scheme, ws []Workload, opt Options) ([]Measurement, error) {
	return harness.MeasureSweep(p, s, ws, opt)
}

// JobMix drives many independent ring communicators over one fabric
// at once, every rank holding several typed transfers in flight — the
// scale-out regime of the sharded matcher. JobMixResult reports the
// sustained aggregate throughput, completion quantiles, the
// concurrent-transfer high-water mark, and the fabric's
// shard-contention attribution.
type (
	JobMix       = harness.JobMix
	JobMixResult = harness.JobMixResult

	// RecoveryStats is a faulted mix's repair attribution, summed
	// across ranks: injected damage, retries, integrity rejections and
	// the selective-retransmission split.
	RecoveryStats = harness.RecoveryStats
)

// RunJobMix executes a concurrent job mix and reports its sustained
// throughput.
func RunJobMix(m JobMix) (JobMixResult, error) { return harness.RunJobMix(m) }

// MatchStats is the fabric's envelope-matching attribution: live
// shard queues and the fast-path vs wildcard split.
type MatchStats = simnet.MatchStats

// Figure is one installation's full three-panel sweep (paper Figures
// 1–4).
type Figure = figures.Figure

// BuildFigure measures all eight schemes for one installation.
func BuildFigure(profileName string, sizes []int64, opt Options) (*Figure, error) {
	return figures.Build(profileName, sizes, opt)
}

// FigureSizes returns the paper's 10³…10⁹-byte x axis with the given
// resolution.
func FigureSizes(perDecade int) []int64 { return figures.DefaultSizes(perDecade) }

// Goal selects what Recommend optimises for.
type Goal = core.Goal

// Recommendation goals.
const (
	GoalBalanced = core.GoalBalanced
	GoalFastest  = core.GoalFastest
)

// Recommendation is scheme advice with its reasoning.
type Recommendation = core.Recommendation

// CollectiveCostModel prices a p-rank fan collective of
// non-contiguous rank layouts two ways: the typed collectives (fused
// legs, fused self-leg) against packing explicitly around the classic
// contiguous collective.
type CollectiveCostModel = core.CollectiveCostModel

// PriceCollective evaluates the collective cost model for ranks ranks
// exchanging n-byte per-rank payloads of the canonical layout.
func PriceCollective(ranks int, n int64, p *Profile) CollectiveCostModel {
	return core.PriceCollective(ranks, n, p)
}

// FaultyCollectiveModel is the collective cost model re-priced under
// a fault profile: tree hops pay whole-replay inflation while the
// chunked pipelined ring recovers selectively, with per-topology
// delivery probabilities (deep trees lose reliability to rings as the
// fault rate climbs).
type FaultyCollectiveModel = core.FaultyCollectiveModel

// PriceCollectiveUnderFaults evaluates the collective cost model and
// inflates each alternative by the fault profile's expected retries
// and backoff, leg-compounded over each topology's critical path.
func PriceCollectiveUnderFaults(ranks int, n int64, p *Profile, fp FaultProfile) FaultyCollectiveModel {
	return core.PriceCollectiveUnderFaults(ranks, n, p, fp)
}

// RecommendCollectiveUnderFaults is the fault-adjusted
// RecommendCollective: the same ladder priced with the re-priced
// tree-vs-ring exposure folded in. With a disabled FaultProfile it
// reduces exactly to RecommendCollective.
func RecommendCollectiveUnderFaults(ranks int, n int64, contiguous bool, goal Goal, p *Profile, fp FaultProfile) Recommendation {
	return core.RecommendCollectiveUnderFaults(ranks, n, contiguous, goal, p, fp)
}

// RecommendCollective advises between the typed collectives and the
// pack-then-collective pipeline for a p-rank exchange of n-byte
// per-rank payloads.
func RecommendCollective(ranks int, n int64, contiguous bool, goal Goal, p *Profile) Recommendation {
	return core.RecommendCollective(ranks, n, contiguous, goal, p)
}

// Recommend operationalises the paper's conclusion for an n-byte
// payload.
func Recommend(n int64, contiguous bool, goal Goal, p *Profile) Recommendation {
	return core.Recommend(n, contiguous, goal, p)
}

// RecommendForType is Recommend for a concrete committed datatype:
// the type's count-instance plan is compiled (or fetched from the
// plan cache) and, when the Commit-time normalizer collapsed it to a
// canonical strided-block program, the packing ladder is priced
// through the specialized-kernel cost term instead of the generic
// gather walk — so advice tracks what the engine will actually
// execute.
func RecommendForType(ty *Datatype, count int, goal Goal, p *Profile) (Recommendation, error) {
	return core.RecommendForType(ty, count, goal, p)
}

// ObservedHierarchy accumulates measured (bytes, seconds) samples per
// transfer path and fits latency+bandwidth lines to them — the sink
// of the self-tuning loop. Attach one to a communicator with
// Comm.ObserveInto and persistent operations (SendInit/SendTypeInit
// Start/Wait cycles) feed it their virtual-clock cost; pass it to
// RecommendTuned to prefer observed behaviour over calibration.
type ObservedHierarchy = memsim.ObservedHierarchy

// NewObservedHierarchy creates an empty observed model (the base
// hierarchy may be nil when only fits are wanted).
func NewObservedHierarchy() *ObservedHierarchy { return memsim.NewObservedHierarchy(nil) }

// Transfer-path names recorded by persistent operations and consumed
// by the tuned recommender.
const (
	PathTypedSend  = memsim.PathTypedSend
	PathPackedSend = memsim.PathPackedSend
	PathContigSend = memsim.PathContigSend
)

// RecommendTuned is the self-tuned Recommend: once the observed
// hierarchy has enough samples on a transfer path, the choice becomes
// a strict argmin over observed costs, so the recommender guideline
// ("recommended ≤ every alternative") holds by construction. Without
// usable fits it degrades to the calibrated Recommend.
func RecommendTuned(n int64, contiguous bool, goal Goal, p *Profile, o *ObservedHierarchy) Recommendation {
	return core.RecommendTuned(n, contiguous, goal, p, o)
}

// PersistentRequest is a reusable posted operation in the style of
// MPI_Send_init/MPI_Recv_init: build once with Comm.SendInit,
// Comm.SendTypeInit, Comm.RecvInit or Comm.RecvTypeInit, then cycle
// Start/Wait. Each completed send cycle reports its virtual-clock
// cost to the communicator's observed hierarchy.
type PersistentRequest = mpi.PersistentRequest

// GuidelinesConfig parameterises a performance-guidelines sweep;
// GuidelinesReport is its outcome (see internal/guidelines for the
// rule table).
type (
	GuidelinesConfig = guidelines.Config
	GuidelinesReport = guidelines.Report
)

// GuidelinesSweep executes the Hunold/Träff-style performance
// guidelines as measured properties over the virtual clock: each rule
// bounds one engine by an alternative moving the same bytes, and
// violated cells come back as structured records with PlanStats
// attribution. A zero Config sweeps the default acceptance grid.
func GuidelinesSweep(cfg GuidelinesConfig) (*GuidelinesReport, error) {
	return guidelines.Sweep(cfg)
}

// Comm is one rank's communicator handle in the MPI-like runtime; Run
// starts a world of rank goroutines. See internal/mpi for the full
// point-to-point, one-sided and collective surface.
type Comm = mpi.Comm

// RunOptions configures the runtime directly (profile, real-time
// mode, watchdog).
type RunOptions = mpi.Options

// Run starts size rank goroutines on a simulated fabric.
func Run(size int, opts RunOptions, body func(*Comm) error) error {
	return mpi.Run(size, opts, body)
}

// Fault injection and recovery. A FaultPlan armed through
// RunOptions.Faults makes the fabric drop, corrupt, truncate,
// duplicate, reorder and delay deliveries deterministically from its
// seed; the runtime's checksum/ACK/retry machinery recovers, and when
// the RetryPolicy budget runs out the typed errors below surface the
// failure instead of hanging.
type (
	// FaultPlan is a deterministic, seedable fault-injection plan.
	FaultPlan = simnet.FaultPlan
	// ScriptedFault pins one exact fault to one exact delivery.
	ScriptedFault = simnet.ScriptedFault
	// RetryPolicy bounds the recovery machinery (RunOptions.Retry).
	RetryPolicy = mpi.RetryPolicy

	// TimeoutError reports a deadline exceeded on a request wait;
	// DeliveryError a retry budget exhausted; IntegrityError a
	// checksum mismatch the budget could not clear; DeadlockError a
	// quiescent world with the structured stuck-endpoint report;
	// CollectiveError wraps a failed collective leg.
	TimeoutError    = mpi.TimeoutError
	DeliveryError   = mpi.DeliveryError
	IntegrityError  = mpi.IntegrityError
	DeadlockError   = mpi.DeadlockError
	CollectiveError = mpi.CollectiveError

	// RequestStateError reports request-lifecycle misuse (Wait after
	// completion, Start on an active persistent request, double Free)
	// with the operation, rank, request state and — after an abort —
	// the underlying fault that finished the request.
	RequestStateError = mpi.RequestStateError

	// FaultProfile prices the recovery machinery for the cost model
	// (expected retries, backoff, delivery probability).
	FaultProfile = memsim.FaultProfile
)

// Sentinel errors matchable with errors.Is against the typed errors
// above.
var (
	ErrTimeout          = mpi.ErrTimeout
	ErrIntegrity        = mpi.ErrIntegrity
	ErrRetriesExhausted = mpi.ErrRetriesExhausted
	ErrDeadlock         = mpi.ErrDeadlock
	ErrRequestInactive  = mpi.ErrRequestInactive
	ErrRequestActive    = mpi.ErrRequestActive
	ErrRequestFreed     = mpi.ErrRequestFreed
)

// UniformFaults builds a plan injecting every fault kind uniformly at
// the given total rate on every link; DropOnly injects only drops.
// Identical seeds reproduce identical fault sequences.
func UniformFaults(seed uint64, rate float64) *FaultPlan { return simnet.UniformFaults(seed, rate) }

// DropOnly builds a drop-only fault plan.
func DropOnly(seed uint64, rate float64) *FaultPlan { return simnet.DropOnly(seed, rate) }

// DefaultRetryPolicy is the recovery budget used when RunOptions.Retry
// is zero: 8 retries, 20 µs base backoff doubling to a 2 ms cap.
func DefaultRetryPolicy() RetryPolicy { return mpi.DefaultRetryPolicy() }

// RecommendUnderFaults is the fault-adjusted Recommend: the same
// scheme ladder priced with expected retries and backoff folded in.
// With a disabled FaultProfile it reduces exactly to Recommend.
func RecommendUnderFaults(n int64, contiguous bool, goal Goal, p *Profile, fp FaultProfile) Recommendation {
	return core.RecommendUnderFaults(n, contiguous, goal, p, fp)
}

// Cart is a Cartesian process topology over a communicator, with
// Coords/Rank/Shift in the style of MPI_Cart_*; ProcNull marks an
// off-grid neighbour. DimsCreate factors a size into balanced grid
// dimensions like MPI_Dims_create.
type Cart = mpi.Cart

// ProcNull is the off-grid neighbour marker of Cart.Shift.
const ProcNull = mpi.ProcNull

// DimsCreate factors size into ndims balanced dimensions.
func DimsCreate(size, ndims int) ([]int, error) { return mpi.DimsCreate(size, ndims) }

// Datatype is an MPI-style derived datatype; the constructors below
// mirror the MPI type-constructor surface.
type Datatype = datatype.Type

// Basic datatypes.
var (
	TypeByte       = datatype.Byte
	TypeInt32      = datatype.Int32
	TypeInt64      = datatype.Int64
	TypeFloat32    = datatype.Float32
	TypeFloat64    = datatype.Float64
	TypeComplex128 = datatype.Complex128
)

// TypeVector mirrors MPI_Type_vector over a base type.
func TypeVector(count, blocklen, stride int, base *Datatype) (*Datatype, error) {
	return datatype.Vector(count, blocklen, stride, base)
}

// TypeHvector mirrors MPI_Type_create_hvector: a vector whose stride
// is given in bytes, the constructor that nests derived types at
// arbitrary byte pitches (and the outer layer of the
// hvector-of-vector motif the Commit-time normalizer collapses — see
// the canonical-forms walkthrough in examples/).
func TypeHvector(count, blocklen int, strideBytes int64, base *Datatype) (*Datatype, error) {
	return datatype.Hvector(count, blocklen, strideBytes, base)
}

// TypeContiguous mirrors MPI_Type_contiguous.
func TypeContiguous(count int, base *Datatype) (*Datatype, error) {
	return datatype.Contiguous(count, base)
}

// TypeIndexed mirrors MPI_Type_indexed.
func TypeIndexed(blocklens, displs []int, base *Datatype) (*Datatype, error) {
	return datatype.Indexed(blocklens, displs, base)
}

// TypeSubarray mirrors MPI_Type_create_subarray (C order).
func TypeSubarray(sizes, subsizes, starts []int, base *Datatype) (*Datatype, error) {
	return datatype.Subarray(sizes, subsizes, starts, datatype.OrderC, base)
}

// TypeResized mirrors MPI_Type_create_resized: it overrides a type's
// lower bound and extent without moving data. Extent-resized types are
// how typed collectives place slots at arbitrary pitches (halo
// columns, interleaved slabs — see the typed-collectives walkthrough
// in examples/).
func TypeResized(base *Datatype, lb, extent int64) (*Datatype, error) {
	return datatype.Resized(base, lb, extent)
}

// PackPlan is an executable pack/unpack program compiled from a
// committed datatype and a count; CompilePlan builds one explicitly
// (the engine also compiles plans transparently inside Pack/Unpack and
// the send paths).
type PackPlan = datatype.Plan

// CompilePlan compiles count instances of a committed datatype into an
// executable plan.
func CompilePlan(ty *Datatype, count int) (*PackPlan, error) { return ty.CompilePlan(count) }

// PlanStats is a snapshot of the pack-plan engine counters: compiled
// kernel executions and bytes per kernel, parallel executions, and
// interpreting-cursor fallback traffic.
type PlanStats = datatype.PlanStats

// PlanStatsSnapshot returns the current pack-plan engine counters.
func PlanStatsSnapshot() PlanStats { return datatype.PlanStatsSnapshot() }

// SetParallelPackThreshold sets the message size, in bytes, above
// which compiled plans pack with goroutine parallelism. Zero or
// negative disables parallel packing.
func SetParallelPackThreshold(n int64) { datatype.SetParallelPackThreshold(n) }

// ParallelPackThreshold returns the current parallel-pack threshold.
func ParallelPackThreshold() int64 { return datatype.ParallelPackThreshold() }
