// Command figures regenerates the paper's Figures 1–4: time,
// bandwidth and slowdown panels for the paper's eight send schemes —
// plus the compiled-pack packing(c) and fused-rendezvous sendv
// columns — on each simulated installation.
//
// Usage:
//
//	figures [-profile skx-impi|skx-mvapich|ls5-cray|knl-impi|all]
//	        [-per-decade 4] [-reps 20] [-max-real 16777216]
//	        [-csv dir] [-check] [-what-if] [-plan] [-plancache] [-fused]
//	        [-halo] [-pipeline] [-guidelines] [-chaos] [-canon] [-scale]
//
// Study flags:
//
//	-csv dir     write one CSV file per figure into dir
//	-check       E10: the cost-model factor table per profile
//	-what-if     E11: the NIC-pipelining ablation (paper ref [2])
//	-plan        E12: the pack-plan compiler study (compiled vs
//	             interpreted packing bandwidth)
//	-plancache   E13: the plan-cache study (cold vs warm compile
//	             bandwidth with cache hit rates, chunked cursor vs
//	             compiled kernels)
//	-fused       E14: the fused-transfer study (fused one-pass vs
//	             staged pack+unpack vs interpreting cursor bandwidth
//	             across the paper's layouts — the engine behind the
//	             sendv scheme)
//	-halo        E15: the halo-exchange study (2-D/3-D subarray face
//	             exchange over typed collectives — AllgatherType with
//	             extent-resized halo slots, fused self-legs and fused
//	             sendv remote legs — against the manual
//	             pack → contiguous collective → unpack pipeline, with
//	             PlanStats fused-vs-staged attribution per cell)
//	-pipeline    E16: the pipelined chunk-engine study (serial chunk
//	             loop vs SendpType's pack/inject overlap vs the fused
//	             sendv bound, swept across internal chunk sizes on the
//	             paper's layouts, plus the pipelined scatter+allgather
//	             BcastType against the binomial tree at 8 ranks — every
//	             pipelined cell reports its PipelinedOps/PipelinedBytes
//	             overlap attribution)
//	-guidelines  E17: the performance-guidelines verifier (Hunold/Träff
//	             rules as executable properties: typed ≤ pack+send,
//	             sendv ≤ staged, pipelined ≤ serial, each typed
//	             collective ≤ its p2p decomposition, recommended ≤
//	             every alternative — swept over layout × size ×
//	             installation with per-cell PlanStats attribution,
//	             violations diffed against the waiver baseline exactly
//	             as the CI gate does, plus the self-tuned recommender
//	             panel fed from observed virtual-clock fits)
//	-chaos       E18: the fault-recovery chaos study (the serial,
//	             pipelined and fused engines moving the same typed
//	             payload while the fabric injects a swept rate of
//	             drops/corruption/truncation/duplication/reordering/
//	             delays — goodput and p99 completion tails per rate,
//	             retry and integrity-reject attribution from the
//	             fabric counters, and the first-order reliability
//	             model's predicted slowdown, delivery probability and
//	             fault-adjusted recommendation alongside, plus the
//	             observed fault profile calibrated back from the
//	             sweep's own retry counters)
//	-canon       E19: the canonical-normalizer study (the Commit-time
//	             datatype normalizer and its specialized kernel
//	             registry: normalized vs raw pack bandwidth on
//	             hvector-of-vector, 3-D subarray and an irregular
//	             indexed control, with per-type run-count reductions,
//	             registry classes and CanonicalString forms; runs once
//	             per invocation — wall time, profile-independent)
//	-scale       E20: the sustained-throughput scale study (a concurrent
//	             job mix — several independent ring communicators over
//	             one fabric, every rank holding multiple typed transfers
//	             in flight — swept from 64 to 1024 ranks on a
//	             16-ranks-per-node hierarchy; aggregate GB/s and p99
//	             per-transfer completion against rank count, with the
//	             fabric's shard-contention attribution per cell:
//	             fast-path vs wildcard matches, live shard queues,
//	             pool-pressure eager adaptations; payloads virtual, so
//	             the 10³-rank end stays laptop-sized)
//	-chaosscale  E21: the chaos-at-scale study (the E20 concurrent job
//	             mix with the fault injector armed, swept over rank
//	             count × fault rate; per cell the goodput retention and
//	             p99 tail inflation against the clean baseline, the
//	             summed recovery attribution — injected faults,
//	             retries, integrity rejects, selectively retransmitted
//	             chunks and bytes, suppressed duplicates — and a
//	             measured counterfactual arm with selective
//	             retransmission disabled, so the per-chunk protocol's
//	             goodput edge over whole-transfer replay is read off
//	             the same fabric; the reliability model prices the
//	             same comparison analytically alongside)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/figures"
	"repro/internal/harness"
	"repro/internal/perfmodel"
)

func main() {
	profile := flag.String("profile", "all", "installation profile, or 'all'")
	perDecade := flag.Int("per-decade", 4, "sweep points per decade of message size")
	reps := flag.Int("reps", 20, "ping-pongs per measurement (paper: 20)")
	maxReal := flag.Int64("max-real", 16<<20, "largest materialised payload in bytes; larger runs are virtual")
	csvDir := flag.String("csv", "", "directory to write per-figure CSV files")
	check := flag.Bool("check", false, "also print the E10 cost-model factor table")
	whatIf := flag.Bool("what-if", false, "also print the E11 NIC-pipelining ablation (paper ref [2])")
	planStudy := flag.Bool("plan", false, "also print the E12 pack-plan compiler study (compiled vs interpreted packing)")
	planCache := flag.Bool("plancache", false, "also print the E13 plan-cache study (cold vs warm compile, chunked cursor vs compiled kernels)")
	fused := flag.Bool("fused", false, "also print the E14 fused-transfer study (fused vs staged vs cursor bandwidth)")
	halo := flag.Bool("halo", false, "also print the E15 halo-exchange study (typed collectives vs manual pack over subarray faces)")
	pipeline := flag.Bool("pipeline", false, "also print the E16 pipelined chunk-engine study (serial vs pipelined vs fused across chunk sizes)")
	guidelinesFlag := flag.Bool("guidelines", false, "also print the E17 performance-guidelines verifier (rule table, baseline-diffed violations, self-tuned recommender)")
	chaos := flag.Bool("chaos", false, "also print the E18 fault-recovery chaos study (goodput and p99 tail vs injected fault rate with retry attribution and the reliability model)")
	canon := flag.Bool("canon", false, "also print the E19 canonical-normalizer study (normalized vs raw pack bandwidth with run-count reductions and kernel-registry classes)")
	scale := flag.Bool("scale", false, "also print the E20 sustained-throughput scale study (concurrent job mix at 64-1024 ranks: aggregate GB/s, p99 completion, shard-contention attribution)")
	chaosScale := flag.Bool("chaosscale", false, "also print the E21 chaos-at-scale study (the E20 job mix under injected faults across rank count x fault rate, with recovery attribution and the measured whole-replay counterfactual)")
	flag.Parse()

	profiles := []string{"skx-impi", "skx-mvapich", "ls5-cray", "knl-impi"}
	if *profile != "all" {
		profiles = []string{*profile}
	}
	opt := harness.DefaultOptions()
	opt.Reps = *reps
	opt.MaxRealBytes = *maxReal
	sizes := figures.DefaultSizes(*perDecade)

	for _, name := range profiles {
		if _, err := perfmodel.ByName(name); err != nil {
			fatal(err)
		}
		fig, err := figures.Build(name, sizes, opt)
		if err != nil {
			fatal(err)
		}
		if err := fig.Render(os.Stdout); err != nil {
			fatal(err)
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*csvDir, name+".csv")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := fig.WriteCSV(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
		if *check {
			ck, err := figures.BuildCostModelCheck(name, 100_000_000, opt)
			if err != nil {
				fatal(err)
			}
			if err := ck.Render(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		if *whatIf {
			st, err := figures.BuildPipeliningStudy(name, sizes, opt)
			if err != nil {
				fatal(err)
			}
			if err := st.Render(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Printf("pipelining would recover %.1fx at the largest size (§2.3, ref [2])\n\n", st.LargeGain())
		}
		if *planStudy {
			st, err := figures.BuildPackPlanStudy(name, sizes, opt)
			if err != nil {
				fatal(err)
			}
			if err := st.Render(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Printf("compiled packing is %.2fx interpreted at the largest size\n\n",
				st.CompiledSpeedupAt(sizes[len(sizes)-1]))
		}
		if *planCache {
			// Real-byte wall-time study: keep the sweep compact.
			cacheSizes := []int64{64 << 10, 1 << 20, 8 << 20}
			cacheOpt := opt
			if cacheOpt.Reps > 12 {
				cacheOpt.Reps = 12
			}
			st, err := figures.BuildPlanCacheStudy(name, cacheSizes, cacheOpt)
			if err != nil {
				fatal(err)
			}
			if err := st.Render(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Printf("warm plan cache is %.2fx cold compile at the largest size (steady state clean: %v)\n\n",
				st.WarmSpeedupAt(cacheSizes[len(cacheSizes)-1]), st.SteadyStateClean())
		}
		if *fused {
			// Real-byte wall-time study: keep the sweep compact.
			fusedSizes := []int64{256 << 10, 1 << 20, 8 << 20}
			fusedOpt := opt
			if fusedOpt.Reps > 12 {
				fusedOpt.Reps = 12
			}
			st, err := figures.BuildFusedStudy(name, fusedSizes, fusedOpt)
			if err != nil {
				fatal(err)
			}
			if err := st.Render(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Printf("fused transfer is %.2fx the staged pack+unpack on the everyOther->everyThird pair at the largest size\n\n",
				st.FusedSpeedupAt("everyOther->everyThird", fusedSizes[len(fusedSizes)-1]))
		}
		if *halo {
			haloOpt := opt
			if haloOpt.Reps > 8 {
				haloOpt.Reps = 8
			}
			st, err := figures.BuildHaloStudy(name, haloOpt)
			if err != nil {
				fatal(err)
			}
			if err := st.Render(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Printf("typed collectives are %.2fx manual pack on the contiguous 3-D planes at the largest tile\n\n",
				st.TypedSpeedupAt("3d-z plane (contig)"))
		}
		if *pipeline {
			st, err := figures.BuildPipelineStudy(name, nil, nil)
			if err != nil {
				fatal(err)
			}
			if err := st.Render(os.Stdout); err != nil {
				fatal(err)
			}
			chunk := st.Profile.InternalChunk()
			fmt.Printf("the pipelined chunk engine is %.2fx the serial loop on every-other doubles at the profile's %d-byte chunks\n\n",
				st.PipelinedSpeedupAt("everyOther", chunk), chunk)
		}
		if *guidelinesFlag {
			st, err := figures.BuildGuidelinesStudy(name)
			if err != nil {
				fatal(err)
			}
			if err := st.Render(os.Stdout); err != nil {
				fatal(err)
			}
			verdict := "passes"
			if !st.Clean() {
				verdict = "FAILS"
			}
			fmt.Printf("the guidelines gate %s against the checked-in baseline (%d waived cells)\n\n",
				verdict, st.Baseline.Len())
		}
		if *chaos {
			st, err := figures.BuildChaosStudy(name, nil, 0)
			if err != nil {
				fatal(err)
			}
			if err := st.Render(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Printf("at a 5%% fault rate the fused engine retains %.0f%% of its clean goodput\n\n",
				100*st.CleanOverheadAt("fused zero-copy (SendvType)", 0.05))
		}
		if *scale {
			st, err := figures.BuildScaleStudy(name, nil)
			if err != nil {
				fatal(err)
			}
			if err := st.Render(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Printf("the fabric sustained %d concurrent typed transfers at its widest mix\n\n", st.PeakInFlight())
		}
		if *chaosScale {
			st, err := figures.BuildChaosScaleStudy(name, nil, nil)
			if err != nil {
				fatal(err)
			}
			if err := st.Render(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Printf("at a 5%% fault rate and 64 ranks the selective protocol retained %.0f%% of clean goodput (whole-transfer replay: %.0f%%)\n\n",
				100*st.GoodputRatioAt(64, 0.05), 100*st.WholeReplayRatioAt(64, 0.05))
		}
	}
	if *canon {
		// Real-byte wall-time study, independent of the installation
		// profiles: run once per invocation.
		canonSizes := []int64{256 << 10, 1 << 20, 8 << 20}
		canonOpt := opt
		if canonOpt.Reps > 12 {
			canonOpt.Reps = 12
		}
		st, err := figures.BuildCanonStudy(canonSizes, canonOpt)
		if err != nil {
			fatal(err)
		}
		if err := st.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Printf("the normalized block kernel is %.2fx the raw table walk on nested 8-byte runs at the largest size\n\n",
			st.CanonSpeedupAt("hvecOfVec8B", canonSizes[len(canonSizes)-1]))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
