// Command nodescaling runs the E9 all-processes-per-node test (paper
// §4.7): 1…N ping-pong pairs communicating simultaneously on split
// communicators. The paper reports "no performance degradation
// results from having all processes on a node communicate".
//
// Usage:
//
//	nodescaling [-profile skx-impi] [-pairs 8] [-bytes 1048576] [-reps 10]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/figures"
)

func main() {
	profile := flag.String("profile", "skx-impi", "installation profile")
	pairs := flag.Int("pairs", 8, "maximum concurrent communicating pairs")
	bytes := flag.Int64("bytes", 1<<20, "payload per pair")
	reps := flag.Int("reps", 10, "ping-pongs per configuration")
	flag.Parse()

	st, err := figures.BuildNodeScalingStudy(*profile, *pairs, *bytes, *reps)
	if err != nil {
		fatal(err)
	}
	if err := st.Render(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Printf("\nworst pair-0 degradation across configurations: %.2f%% (paper: none)\n", st.MaxDegradation()*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nodescaling:", err)
	os.Exit(1)
}
