// Command pingpong measures one send scheme at chosen message sizes
// on a simulated installation and prints a result table: the unit
// measurement of the whole study (paper §3.2).
//
// Usage:
//
//	pingpong [-profile skx-impi] [-scheme "vector type"] \
//	         [-sizes 1000,100000,10000000] [-reps 20] [-no-flush]
//	         [-blocklen 1] [-stride 2] [-real-time]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/perfmodel"
)

func main() {
	profile := flag.String("profile", "skx-impi", "installation profile")
	schemeName := flag.String("scheme", "vector type", "send scheme (see core.Schemes)")
	sizesArg := flag.String("sizes", "1000,10000,100000,1000000,10000000,100000000,1000000000", "comma-separated payload sizes in bytes")
	reps := flag.Int("reps", 20, "ping-pongs per size")
	noFlush := flag.Bool("no-flush", false, "skip the cache flush between ping-pongs (§4.6)")
	blocklen := flag.Int("blocklen", 1, "elements per block")
	stride := flag.Int("stride", 2, "element stride between blocks")
	maxReal := flag.Int64("max-real", 16<<20, "largest materialised payload")
	realTime := flag.Bool("real-time", false, "measure Go wall time instead of model time")
	flag.Parse()

	prof, err := perfmodel.ByName(*profile)
	if err != nil {
		fatal(err)
	}
	scheme, err := core.SchemeByName(*schemeName)
	if err != nil {
		fatal(err)
	}
	var sizes []int64
	for _, tok := range strings.Split(*sizesArg, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(tok), 10, 64)
		if err != nil {
			fatal(fmt.Errorf("bad size %q: %w", tok, err))
		}
		sizes = append(sizes, n)
	}
	opt := harness.DefaultOptions()
	opt.Reps = *reps
	opt.FlushCache = !*noFlush
	opt.MaxRealBytes = *maxReal
	opt.RealTime = *realTime

	workloads := make([]core.Workload, len(sizes))
	for i, n := range sizes {
		elems := int(n / core.ElemSize)
		if elems < 1 {
			elems = 1
		}
		w := core.Workload{
			Count:    elems / *blocklen,
			BlockLen: *blocklen,
			Stride:   *stride,
		}
		if w.Stride < w.BlockLen {
			w.Stride = w.BlockLen
		}
		w.Virtual = n > opt.MaxRealBytes
		workloads[i] = w
	}
	ms, err := harness.MeasureSweep(prof, scheme, workloads, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# profile=%s scheme=%s reps=%d flush=%v blocklen=%d stride=%d\n",
		prof.Name, scheme, opt.Reps, opt.FlushCache, *blocklen, *stride)
	fmt.Printf("%14s %14s %14s %12s %10s %9s\n", "bytes", "time(s)", "min(s)", "bw(GB/s)", "dismissed", "verified")
	for _, m := range ms {
		fmt.Printf("%14d %14.6g %14.6g %12.3f %10d %9v\n",
			m.Bytes, m.Time(), m.Summary.Min, m.Bandwidth()/1e9, m.Dismissed, m.Verified)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pingpong:", err)
	os.Exit(1)
}
