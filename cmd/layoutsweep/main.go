// Command layoutsweep runs the §4.7 layout-sensitivity studies:
//
//	-mode stride  (E7): fixed payload with increasingly irregular gap
//	               jitter — "types with less regular spacing may give
//	               worse performance due to decreased use of prefetch
//	               streams";
//	-mode block   (E8): fixed payload at constant density with growing
//	               block length — "types with larger block sizes may
//	               perform better due to higher cache line utilization".
//
// Usage:
//
//	layoutsweep [-profile skx-impi] [-mode stride|block|both]
//	            [-bytes 8388608] [-reps 20]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/figures"
	"repro/internal/harness"
)

func main() {
	profile := flag.String("profile", "skx-impi", "installation profile")
	mode := flag.String("mode", "both", "stride, block, or both")
	bytes := flag.Int64("bytes", 8<<20, "payload size")
	reps := flag.Int("reps", 20, "ping-pongs per point")
	flag.Parse()

	opt := harness.DefaultOptions()
	opt.Reps = *reps
	if *mode == "stride" || *mode == "both" {
		st, err := figures.BuildSpacingStudy(*profile, *bytes, opt)
		if err != nil {
			fatal(err)
		}
		if err := st.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if *mode == "block" || *mode == "both" {
		st, err := figures.BuildBlockSizeStudy(*profile, *bytes, opt)
		if err != nil {
			fatal(err)
		}
		if err := st.Render(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "layoutsweep:", err)
	os.Exit(1)
}
