// Command eagersweep runs the E5 eager-limit study (paper §4.5):
// per-byte times for sizes bracketing the protocol switch point, with
// the default limit and with the limit raised beyond the largest
// message — which, as the paper found, does not appreciably change
// large-message results.
//
// Usage:
//
//	eagersweep [-profile skx-impi] [-reps 20]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/figures"
	"repro/internal/harness"
)

func main() {
	profile := flag.String("profile", "skx-impi", "installation profile")
	reps := flag.Int("reps", 20, "ping-pongs per size")
	flag.Parse()

	opt := harness.DefaultOptions()
	opt.Reps = *reps
	st, err := figures.BuildEagerStudy(*profile, opt)
	if err != nil {
		fatal(err)
	}
	if err := st.Render(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Printf("\nreference time change at the largest size from raising the limit: %.2f%% (paper: not appreciable)\n",
		st.LargeUnchangedByRaisedLimit()*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eagersweep:", err)
	os.Exit(1)
}
