// Command cachestudy runs the E6 cache-flushing ablation (paper
// §4.6): intermediate message sizes measured with the between-ping-pong
// 50 M-array rewrite and without it. The paper reports that skipping
// the flush "had a clear positive effect on intermediate size
// messages".
//
// Usage:
//
//	cachestudy [-profile skx-impi] [-reps 20]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/figures"
	"repro/internal/harness"
)

func main() {
	profile := flag.String("profile", "skx-impi", "installation profile")
	reps := flag.Int("reps", 20, "ping-pongs per size")
	flag.Parse()

	opt := harness.DefaultOptions()
	opt.Reps = *reps
	st, err := figures.BuildCacheStudy(*profile, opt)
	if err != nil {
		fatal(err)
	}
	if err := st.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cachestudy:", err)
	os.Exit(1)
}
