package simnet

// Selective chunk retransmission rides the rendezvous ACK channel: the
// receiver verifies each chunk of the packed stream against the
// sender's per-chunk checksums and, instead of NACKing the whole
// transfer, answers with a ChunkNack carrying the bitmap of damaged
// chunk indices. The sender then replays only those chunks. The fabric
// owns the bitmap envelope and the dup-suppression counters; chunking
// policy (chunk size, packing) stays in the protocol layer.

// ChunkBitmap is a fixed-capacity bitset over chunk indices.
type ChunkBitmap []uint64

// NewChunkBitmap returns an all-clear bitmap able to hold n chunks.
func NewChunkBitmap(n int) ChunkBitmap {
	if n <= 0 {
		return nil
	}
	return make(ChunkBitmap, (n+63)/64)
}

// FullChunkBitmap returns a bitmap with chunks [0,n) all set.
func FullChunkBitmap(n int) ChunkBitmap {
	b := NewChunkBitmap(n)
	for i := 0; i < n; i++ {
		b.Set(i)
	}
	return b
}

// Set marks chunk i.
func (b ChunkBitmap) Set(i int) {
	if i >= 0 && i/64 < len(b) {
		b[i/64] |= 1 << uint(i%64)
	}
}

// Clear unmarks chunk i.
func (b ChunkBitmap) Clear(i int) {
	if i >= 0 && i/64 < len(b) {
		b[i/64] &^= 1 << uint(i%64)
	}
}

// Get reports whether chunk i is marked.
func (b ChunkBitmap) Get(i int) bool {
	return i >= 0 && i/64 < len(b) && b[i/64]&(1<<uint(i%64)) != 0
}

// Count returns the number of marked chunks.
func (b ChunkBitmap) Count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Any reports whether any chunk is marked.
func (b ChunkBitmap) Any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone returns an independent copy (nil stays nil).
func (b ChunkBitmap) Clone() ChunkBitmap {
	if b == nil {
		return nil
	}
	c := make(ChunkBitmap, len(b))
	copy(c, b)
	return c
}

// ChunkNack is the receiver's selective verdict on a chunked
// rendezvous attempt: the transfer as a whole is rejected, but only
// the chunks marked in Damaged need replaying. It travels through
// Message.Ack as an error so checksum-less senders degrade to the
// whole-transfer replay transparently.
type ChunkNack struct {
	// Damaged marks the chunk indices whose payload must be resent
	// (checksum mismatch, poisoned delivery, or never delivered).
	Damaged ChunkBitmap
}

// Error satisfies the error interface for the ACK channel.
func (n *ChunkNack) Error() string {
	return "simnet: chunk integrity NACK"
}

// PayloadChunkFault draws the fault verdict for one chunk of a
// rendezvous payload transfer on (src → dst). Unlike PayloadFault,
// duplicate faults survive the fold: a duplicated chunk exercises the
// receiver's per-chunk dup suppression (the stream redelivers the
// chunk; the receiver must accept it idempotently). Reorder/delay
// still make no sense inside a handshake-synchronised stream.
func (f *Fabric) PayloadChunkFault(src, dst int, n int64) Fault {
	fs := f.faults.Load()
	if fs == nil {
		return Fault{}
	}
	fault, _ := fs.next(src, dst, n, true)
	switch fault.Kind {
	case FaultReorder, FaultDelay:
		fault = Fault{}
	}
	if fault.Kind != FaultNone {
		f.noteFault(src, fault.Kind)
	}
	return fault
}

// NoteChunkRetransmit counts a selective replay by src: chunks chunk
// retransmissions carrying bytes payload bytes.
func (f *Fabric) NoteChunkRetransmit(src int, chunks int, bytes int64) {
	c := &f.counters[src]
	c.chunkRetransmits.Add(int64(chunks))
	c.retransmitBytes.Add(bytes)
}

// NoteDupChunkSuppressed counts one redelivered chunk the receiving
// rank discarded because it had already accepted it.
func (f *Fabric) NoteDupChunkSuppressed(rank int) {
	f.counters[rank].dupChunksSuppressed.Add(1)
}
