// Package simnet is the simulated interconnect fabric under the MPI
// runtime: per-rank mailboxes with MPI matching semantics (source/tag,
// wildcards, pairwise FIFO order), eager and rendezvous message
// envelopes, and per-endpoint traffic counters.
//
// The fabric is purely mechanical: it moves byte blocks and virtual
// timestamps between rank goroutines and enforces matching order. All
// *pricing* (what an operation costs in virtual time) happens in the
// mpi layer using perfmodel/memsim; all *payload* semantics (datatypes,
// packing) happen in the datatype layer.
package simnet

import (
	"fmt"
	"sync"

	"repro/internal/buf"
	"repro/internal/vclock"
)

// Wildcards for matching, mirroring MPI_ANY_SOURCE and MPI_ANY_TAG.
const (
	AnySource = -1
	AnyTag    = -1
)

// Kind discriminates message envelopes.
type Kind int

// Envelope kinds.
const (
	// KindEager carries the full payload with its arrival time.
	KindEager Kind = iota
	// KindRendezvous is a ready-to-send notice; payload transfer
	// happens through the handshake channels after matching.
	KindRendezvous
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindEager:
		return "eager"
	case KindRendezvous:
		return "rendezvous"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// RdvMatch is the receiver→sender half of the rendezvous handshake:
// when the receive was posted and where the payload should land.
type RdvMatch struct {
	// MatchTime is max(RTS arrival, receive post time) on the
	// receiver's clock.
	MatchTime vclock.Time
	// Dst is the receiver's buffer view the sender streams into.
	Dst buf.Block
	// FusedDst, when non-nil, is an opaque descriptor of the
	// receiver's non-contiguous user layout (owned by the mpi layer;
	// the fabric never inspects it). A fused-capable sender scatters
	// straight into the layout; Dst is then the raw user block the
	// descriptor covers, NOT a packed destination, and non-fusing
	// senders must consult the descriptor rather than streaming
	// packed bytes into Dst.
	FusedDst any
}

// RdvDone is the sender→receiver half: when the payload fully arrived
// and how many bytes were written. A receiver that exposed its layout
// through RdvMatch.FusedDst takes delivery in place — the sender
// always lands the payload in the layout (fused one-pass or its local
// staged equivalent), so no unpack follows.
type RdvDone struct {
	Arrival vclock.Time
	Bytes   int64
	Err     error
}

// Message is one envelope in a mailbox.
type Message struct {
	// Ctx is the communicator context: messages only match receives
	// posted on the same communicator, so split communicators cannot
	// intercept each other's traffic.
	Ctx  int
	Src  int
	Tag  int
	Kind Kind

	// Payload: for eager messages, a transit copy owned by the fabric
	// (or a virtual block); for rendezvous, unused.
	Payload buf.Block
	// Bytes is the payload size in bytes for either kind.
	Bytes int64

	// Arrival is when the payload (eager) or the RTS notice
	// (rendezvous) lands at the receiver, in virtual time.
	Arrival vclock.Time

	// Packed marks payloads that were packed in user space, for the
	// Cray eager-limit artefact (perfmodel.PackedEagerFactor).
	Packed bool

	// Sendv marks a plan-driven fused rendezvous send (mpi.SendvType):
	// a typed receiver matching it may expose its user layout through
	// RdvMatch.FusedDst for the direct one-pass scatter instead of
	// allocating a packed staging buffer.
	Sendv bool

	// Match and Done carry the rendezvous handshake; nil for eager.
	Match chan RdvMatch
	Done  chan RdvDone

	// OnConsume, if non-nil, runs when the receiver matches the
	// message. The Bsend buffer manager uses it to release the
	// attached-buffer region.
	OnConsume func()
}

// matches reports whether the envelope satisfies a (ctx, src, tag)
// receive pattern. The context never matches a wildcard.
func (m *Message) matches(ctx, src, tag int) bool {
	if m.Ctx != ctx {
		return false
	}
	if src != AnySource && m.Src != src {
		return false
	}
	if tag != AnyTag && m.Tag != tag {
		return false
	}
	return true
}

// Counters aggregates per-endpoint traffic statistics. The tests use
// them to assert protocol behaviour (e.g. "this send was eager",
// "the derived-type send was chunked k times").
type Counters struct {
	EagerSends      int64
	RendezvousSends int64
	BytesInjected   int64
	BytesDelivered  int64
	MessagesMatched int64
	Probes          int64
}

// Fabric connects n endpoints. It is safe for concurrent use by the n
// rank goroutines.
type Fabric struct {
	n     int
	boxes []*mailbox
	group *vclock.Group

	mu       sync.Mutex
	counters []Counters
	groups   map[int]*vclock.Group // per-communicator sync groups, by ctx
	nextCtx  int
	shared   map[string]interface{} // window state registry
}

// New creates a fabric with n endpoints.
func New(n int) *Fabric {
	if n <= 0 {
		panic(fmt.Sprintf("simnet: fabric size %d", n))
	}
	f := &Fabric{n: n, group: vclock.NewGroup(n), counters: make([]Counters, n)}
	f.boxes = make([]*mailbox, n)
	for i := range f.boxes {
		f.boxes[i] = newMailbox()
	}
	return f
}

// Size returns the endpoint count.
func (f *Fabric) Size() int { return f.n }

// Group returns the fabric-wide synchronisation group used by
// barriers and window fences.
func (f *Fabric) Group() *vclock.Group { return f.group }

// GroupFor returns the synchronisation group of the communicator with
// the given context, creating it with the given size on first use.
// Every member of the communicator asks for the same ctx/size, so the
// first caller creates and the rest share.
func (f *Fabric) GroupFor(ctx, size int) *vclock.Group {
	if ctx == 0 {
		if size != f.n {
			panic(fmt.Sprintf("simnet: world group size mismatch: %d vs %d", size, f.n))
		}
		return f.group
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.groups == nil {
		f.groups = make(map[int]*vclock.Group)
	}
	g, ok := f.groups[ctx]
	if !ok {
		g = vclock.NewGroup(size)
		f.groups[ctx] = g
	} else if g.Size() != size {
		panic(fmt.Sprintf("simnet: ctx %d group size mismatch: have %d want %d", ctx, g.Size(), size))
	}
	return g
}

// AllocCtxBlock reserves n fresh communicator contexts and returns the
// first. Rank 0 of a Split allocates and broadcasts; contexts start at
// 1 because 0 is the world communicator.
func (f *Fabric) AllocCtxBlock(n int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.nextCtx == 0 {
		f.nextCtx = 1
	}
	first := f.nextCtx
	f.nextCtx += n
	return first
}

// Shared returns the object registered under key, creating it with
// create on first use. One-sided windows use this to share their
// per-window state among ranks: the creation key is deterministic
// (communicator context and a per-communicator sequence number), so
// every member resolves the same object.
func (f *Fabric) Shared(key string, create func() interface{}) interface{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.shared == nil {
		f.shared = make(map[string]interface{})
	}
	v, ok := f.shared[key]
	if !ok {
		v = create()
		f.shared[key] = v
	}
	return v
}

// DropShared removes a registry entry (window free).
func (f *Fabric) DropShared(key string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.shared, key)
}

// Deliver enqueues an envelope at dst's mailbox, recording injection
// statistics against src.
func (f *Fabric) Deliver(dst int, m *Message) {
	f.checkRank(dst)
	f.checkRank(m.Src)
	f.mu.Lock()
	c := &f.counters[m.Src]
	switch m.Kind {
	case KindEager:
		c.EagerSends++
	case KindRendezvous:
		c.RendezvousSends++
	}
	c.BytesInjected += m.Bytes
	f.mu.Unlock()
	f.boxes[dst].put(m)
}

// Match blocks until an envelope matching (src, tag) is available at
// rank's mailbox and removes it. Matching preserves pairwise FIFO
// order: the earliest enqueued matching envelope wins.
func (f *Fabric) Match(rank, ctx, src, tag int) *Message {
	f.checkRank(rank)
	m := f.boxes[rank].take(ctx, src, tag)
	f.mu.Lock()
	f.counters[rank].MessagesMatched++
	f.counters[rank].BytesDelivered += m.Bytes
	f.mu.Unlock()
	return m
}

// TryMatch is the non-blocking Match used by Iprobe: it returns nil
// when nothing matches right now. The envelope is left in place.
func (f *Fabric) TryMatch(rank, ctx, src, tag int) *Message {
	f.checkRank(rank)
	f.mu.Lock()
	f.counters[rank].Probes++
	f.mu.Unlock()
	return f.boxes[rank].peek(ctx, src, tag)
}

// Probe blocks until a matching envelope is present and returns it
// without removing it.
func (f *Fabric) Probe(rank, ctx, src, tag int) *Message {
	f.checkRank(rank)
	f.mu.Lock()
	f.counters[rank].Probes++
	f.mu.Unlock()
	return f.boxes[rank].wait(ctx, src, tag)
}

// CountersFor returns a snapshot of rank's counters.
func (f *Fabric) CountersFor(rank int) Counters {
	f.checkRank(rank)
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counters[rank]
}

func (f *Fabric) checkRank(r int) {
	if r < 0 || r >= f.n {
		panic(fmt.Sprintf("simnet: rank %d out of range [0,%d)", r, f.n))
	}
}

// mailbox is an ordered queue with condition-variable matching.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	msgs []*Message
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) put(m *Message) {
	b.mu.Lock()
	b.msgs = append(b.msgs, m)
	b.mu.Unlock()
	b.cond.Broadcast()
}

func (b *mailbox) take(ctx, src, tag int) *Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i, m := range b.msgs {
			if m.matches(ctx, src, tag) {
				b.msgs = append(b.msgs[:i], b.msgs[i+1:]...)
				return m
			}
		}
		b.cond.Wait()
	}
}

func (b *mailbox) peek(ctx, src, tag int) *Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, m := range b.msgs {
		if m.matches(ctx, src, tag) {
			return m
		}
	}
	return nil
}

func (b *mailbox) wait(ctx, src, tag int) *Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for _, m := range b.msgs {
			if m.matches(ctx, src, tag) {
				return m
			}
		}
		b.cond.Wait()
	}
}
