// Package simnet is the simulated interconnect fabric under the MPI
// runtime: per-rank mailboxes with MPI matching semantics (source/tag,
// wildcards, pairwise FIFO order), eager and rendezvous message
// envelopes, and per-endpoint traffic counters.
//
// The fabric is purely mechanical: it moves byte blocks and virtual
// timestamps between rank goroutines and enforces matching order. All
// *pricing* (what an operation costs in virtual time) happens in the
// mpi layer using perfmodel/memsim; all *payload* semantics (datatypes,
// packing) happen in the datatype layer.
package simnet

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/buf"
	"repro/internal/vclock"
)

// Wildcards for matching, mirroring MPI_ANY_SOURCE and MPI_ANY_TAG.
const (
	AnySource = -1
	AnyTag    = -1
)

// Kind discriminates message envelopes.
type Kind int

// Envelope kinds.
const (
	// KindEager carries the full payload with its arrival time.
	KindEager Kind = iota
	// KindRendezvous is a ready-to-send notice; payload transfer
	// happens through the handshake channels after matching.
	KindRendezvous
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindEager:
		return "eager"
	case KindRendezvous:
		return "rendezvous"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// RdvMatch is the receiver→sender half of the rendezvous handshake:
// when the receive was posted and where the payload should land.
type RdvMatch struct {
	// MatchTime is max(RTS arrival, receive post time) on the
	// receiver's clock.
	MatchTime vclock.Time
	// Dst is the receiver's buffer view the sender streams into.
	Dst buf.Block
	// FusedDst, when non-nil, is an opaque descriptor of the
	// receiver's non-contiguous user layout (owned by the mpi layer;
	// the fabric never inspects it). A fused-capable sender scatters
	// straight into the layout; Dst is then the raw user block the
	// descriptor covers, NOT a packed destination, and non-fusing
	// senders must consult the descriptor rather than streaming
	// packed bytes into Dst.
	FusedDst any
}

// RdvDone is the sender→receiver half: when the payload fully arrived
// and how many bytes were written. A receiver that exposed its layout
// through RdvMatch.FusedDst takes delivery in place — the sender
// always lands the payload in the layout (fused one-pass or its local
// staged equivalent), so no unpack follows.
type RdvDone struct {
	Arrival vclock.Time
	Bytes   int64
	Err     error

	// Sum is the sender's checksum of the payload's packed byte
	// stream, valid when HasSum: the receiver verifies what actually
	// landed against it and NACKs through Message.Ack on mismatch.
	Sum    uint64
	HasSum bool
	// Poisoned marks an attempt the sender already knows arrived
	// damaged but could not mechanically damage (virtual payloads,
	// checksum-less paths): the receiver must NACK it without
	// verifying.
	Poisoned bool
	// Final marks the sender's last attempt under its retry budget:
	// a NACK now becomes a permanent integrity error on both sides.
	Final bool
}

// Message is one envelope in a mailbox.
type Message struct {
	// Ctx is the communicator context: messages only match receives
	// posted on the same communicator, so split communicators cannot
	// intercept each other's traffic.
	Ctx  int
	Src  int
	Tag  int
	Kind Kind

	// Payload: for eager messages, a transit copy owned by the fabric
	// (or a virtual block); for rendezvous, unused.
	Payload buf.Block
	// Bytes is the payload size in bytes for either kind.
	Bytes int64

	// Arrival is when the payload (eager) or the RTS notice
	// (rendezvous) lands at the receiver, in virtual time.
	Arrival vclock.Time

	// Packed marks payloads that were packed in user space, for the
	// Cray eager-limit artefact (perfmodel.PackedEagerFactor).
	Packed bool

	// Sendv marks a plan-driven fused rendezvous send (mpi.SendvType):
	// a typed receiver matching it may expose its user layout through
	// RdvMatch.FusedDst for the direct one-pass scatter instead of
	// allocating a packed staging buffer.
	Sendv bool

	// Match and Done carry the rendezvous handshake; nil for eager.
	Match chan RdvMatch
	Done  chan RdvDone
	// Ack carries the receiver's per-attempt verdict on a rendezvous
	// payload back to the sender: nil accepts, non-nil NACKs and asks
	// for a retransmission. Created (capacity 1) only when the fabric
	// has a fault plan armed; nil otherwise, and the handshake is the
	// classic two-message one.
	Ack chan error

	// Seq is the link-order sequence number stamped by Deliver: the
	// injection index on the directed (Src → dst) link. Matching takes
	// the lowest sequence among queued candidates of a source, which
	// equals FIFO order on a clean run and heals reordering faults;
	// duplicate-fault copies share one Seq and are consumed once.
	Seq int64

	// Sum is the checksum of the payload's packed byte stream when
	// HasSum; eager receivers verify it before accepting delivery.
	Sum    uint64
	HasSum bool
	// Corrupt marks an eager payload the fabric damaged but could not
	// mechanically alter (virtual blocks carry no bytes): receivers
	// treat it exactly like a checksum mismatch.
	Corrupt bool

	// Err is a delivery error attached in flight (ErrShortDelivery for
	// truncation): it surfaces as a typed error from Recv/Wait when no
	// retry machinery is armed to re-request the payload.
	Err error

	// OnConsume, if non-nil, runs when the receiver matches the
	// message. The Bsend buffer manager uses it to release the
	// attached-buffer region.
	OnConsume func()

	// wake counts handshake events posted on Match/Done/Ack. Blocked-
	// wait readiness predicates compare it against the count captured
	// at block time, so a wake that was consumed from the channel but
	// whose waiter has not yet deregistered from the quiescence
	// detector still reads as progress — without it, a descheduled
	// waiter in that window looks stuck and fabricates a deadlock. A
	// pointer so fabric-level duplicate copies share one counter.
	wake *atomic.Int64
}

// InitWake arms the handshake wake counter; the mpi layer calls it
// when the fabric tracks quiescence. Without it NoteWake/WakeSeq are
// inert and the handshake is the plain channel protocol.
func (m *Message) InitWake() { m.wake = new(atomic.Int64) }

// NoteWake records a handshake event. Posters must call it BEFORE the
// channel send: readiness may only ever turn true early (delaying
// deadlock detection), never late (fabricating one).
func (m *Message) NoteWake() {
	if m.wake != nil {
		m.wake.Add(1)
	}
}

// WakeSeq returns the handshake event count.
func (m *Message) WakeSeq() int64 {
	if m.wake == nil {
		return 0
	}
	return m.wake.Load()
}

// matches reports whether the envelope satisfies a (ctx, src, tag)
// receive pattern. The context never matches a wildcard.
func (m *Message) matches(ctx, src, tag int) bool {
	if m.Ctx != ctx {
		return false
	}
	if src != AnySource && m.Src != src {
		return false
	}
	if tag != AnyTag && m.Tag != tag {
		return false
	}
	return true
}

// Counters aggregates per-endpoint traffic statistics. The tests use
// them to assert protocol behaviour (e.g. "this send was eager",
// "the derived-type send was chunked k times").
type Counters struct {
	EagerSends      int64
	RendezvousSends int64
	BytesInjected   int64
	BytesDelivered  int64
	MessagesMatched int64
	Probes          int64

	// Fault-injection attribution, counted against the sender (the
	// endpoint whose traffic was damaged) except IntegrityRejects,
	// which the verifying receiver counts.
	Drops            int64
	Corruptions      int64
	Truncations      int64
	Duplicates       int64
	Reorders         int64
	Delays           int64
	Retries          int64
	IntegrityRejects int64
}

// Fabric connects n endpoints. It is safe for concurrent use by the n
// rank goroutines.
type Fabric struct {
	n     int
	boxes []*mailbox
	group *vclock.Group

	mu       sync.Mutex
	counters []Counters
	groups   map[int]*vclock.Group // per-communicator sync groups, by ctx
	nextCtx  int
	shared   map[string]interface{} // window state registry

	// faults, when non-nil, is the armed fault plan with its per-link
	// injection counters; SetFaultPlan arms it before any traffic.
	faults *faultState

	// quiescence-detector bookkeeping (see fault.go).
	tracking atomic.Bool
	blockMu  sync.Mutex
	running  int
	blockSeq int
	blocked  map[int]*blockedRec

	abortMu  sync.Mutex
	abortErr error
	abortCh  chan struct{}
}

// New creates a fabric with n endpoints.
func New(n int) *Fabric {
	if n <= 0 {
		panic(fmt.Sprintf("simnet: fabric size %d", n))
	}
	f := &Fabric{n: n, group: vclock.NewGroup(n), counters: make([]Counters, n)}
	f.boxes = make([]*mailbox, n)
	for i := range f.boxes {
		f.boxes[i] = newMailbox()
	}
	f.blocked = make(map[int]*blockedRec)
	f.abortCh = make(chan struct{})
	return f
}

// SetFaultPlan arms a fault plan on the fabric; nil disarms. Arm it
// before any traffic flows: the per-link injection counters start at
// the moment of the call. Arming also turns on mailbox deduplication
// (consumed-sequence tracking for duplicate faults).
func (f *Fabric) SetFaultPlan(p *FaultPlan) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p == nil {
		f.faults = nil
		return
	}
	f.faults = newFaultState(p)
	for _, b := range f.boxes {
		b.mu.Lock()
		b.dedup = true
		b.mu.Unlock()
	}
}

// FaultsEnabled reports whether a fault plan is armed.
func (f *Fabric) FaultsEnabled() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.faults != nil
}

// PayloadFault draws the fault verdict for the next rendezvous payload
// transfer on (src → dst) of n bytes. It returns FaultNone when no
// plan is armed. Duplicate/reorder/delay make no sense for a
// handshake-synchronised stream, so they are folded into FaultNone.
func (f *Fabric) PayloadFault(src, dst int, n int64) Fault {
	f.mu.Lock()
	fs := f.faults
	f.mu.Unlock()
	if fs == nil {
		return Fault{}
	}
	fault, _ := fs.next(src, dst, n, true)
	switch fault.Kind {
	case FaultDuplicate, FaultReorder, FaultDelay:
		fault = Fault{}
	}
	if fault.Kind != FaultNone {
		f.noteFault(src, fault.Kind)
	}
	return fault
}

// noteFault records a fault against the sender's counters.
func (f *Fabric) noteFault(src int, kind FaultKind) {
	f.mu.Lock()
	c := &f.counters[src]
	switch kind {
	case FaultDrop:
		c.Drops++
	case FaultCorrupt:
		c.Corruptions++
	case FaultTruncate:
		c.Truncations++
	case FaultDuplicate:
		c.Duplicates++
	case FaultReorder:
		c.Reorders++
	case FaultDelay:
		c.Delays++
	}
	f.mu.Unlock()
}

// NoteRetry counts one protocol-level retransmission by src.
func (f *Fabric) NoteRetry(src int) {
	f.mu.Lock()
	f.counters[src].Retries++
	f.mu.Unlock()
}

// NoteIntegrityReject counts one checksum-verification rejection at
// the receiving rank.
func (f *Fabric) NoteIntegrityReject(rank int) {
	f.mu.Lock()
	f.counters[rank].IntegrityRejects++
	f.mu.Unlock()
}

// Size returns the endpoint count.
func (f *Fabric) Size() int { return f.n }

// Group returns the fabric-wide synchronisation group used by
// barriers and window fences.
func (f *Fabric) Group() *vclock.Group { return f.group }

// GroupFor returns the synchronisation group of the communicator with
// the given context, creating it with the given size on first use.
// Every member of the communicator asks for the same ctx/size, so the
// first caller creates and the rest share.
func (f *Fabric) GroupFor(ctx, size int) *vclock.Group {
	if ctx == 0 {
		if size != f.n {
			panic(fmt.Sprintf("simnet: world group size mismatch: %d vs %d", size, f.n))
		}
		return f.group
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.groups == nil {
		f.groups = make(map[int]*vclock.Group)
	}
	g, ok := f.groups[ctx]
	if !ok {
		g = vclock.NewGroup(size)
		f.groups[ctx] = g
	} else if g.Size() != size {
		panic(fmt.Sprintf("simnet: ctx %d group size mismatch: have %d want %d", ctx, g.Size(), size))
	}
	return g
}

// AllocCtxBlock reserves n fresh communicator contexts and returns the
// first. Rank 0 of a Split allocates and broadcasts; contexts start at
// 1 because 0 is the world communicator.
func (f *Fabric) AllocCtxBlock(n int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.nextCtx == 0 {
		f.nextCtx = 1
	}
	first := f.nextCtx
	f.nextCtx += n
	return first
}

// Shared returns the object registered under key, creating it with
// create on first use. One-sided windows use this to share their
// per-window state among ranks: the creation key is deterministic
// (communicator context and a per-communicator sequence number), so
// every member resolves the same object.
func (f *Fabric) Shared(key string, create func() interface{}) interface{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.shared == nil {
		f.shared = make(map[string]interface{})
	}
	v, ok := f.shared[key]
	if !ok {
		v = create()
		f.shared[key] = v
	}
	return v
}

// DropShared removes a registry entry (window free).
func (f *Fabric) DropShared(key string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.shared, key)
}

// Deliver enqueues an envelope at dst's mailbox, recording injection
// statistics against src, and returns the fault verdict the armed
// plan (if any) applied to the injection. The verdict is synchronous:
// a dropped envelope is simply not enqueued and the sender learns it
// immediately (the modeled ACK-timeout/backoff is the sender's clock
// advance, not a real-time wait); corrupted and truncated envelopes
// ARE enqueued, damaged, so receivers genuinely exercise their
// verification. Rendezvous (control) envelopes cannot be damaged in a
// meaningful way, so corrupt/truncate draws degrade to drops there.
func (f *Fabric) Deliver(dst int, m *Message) Fault {
	f.checkRank(dst)
	f.checkRank(m.Src)
	f.mu.Lock()
	c := &f.counters[m.Src]
	switch m.Kind {
	case KindEager:
		c.EagerSends++
	case KindRendezvous:
		c.RendezvousSends++
	}
	c.BytesInjected += m.Bytes
	fs := f.faults
	f.mu.Unlock()

	if fs == nil {
		f.boxes[dst].put(m, false)
		return Fault{}
	}

	fault, seq := fs.next(m.Src, dst, m.Bytes, false)
	m.Seq = seq
	if m.Kind == KindRendezvous && (fault.Kind == FaultCorrupt || fault.Kind == FaultTruncate) {
		// A damaged RTS fails its link-level CRC and is discarded
		// whole: the sender sees a drop.
		fault = Fault{Kind: FaultDrop}
	}
	if fault.Kind != FaultNone {
		f.noteFault(m.Src, fault.Kind)
	}
	switch fault.Kind {
	case FaultDrop:
		// Never enqueued; recycle a pooled transit payload so the
		// sender's retransmission does not drift the pool balance.
		buf.PutPooled(m.Payload)
		m.Payload = buf.Block{}
		return fault
	case FaultCorrupt:
		if data := m.Payload.Bytes(); len(data) > 0 {
			data[int(fault.Offset)%len(data)] ^= 0xFF
		} else {
			// Virtual payloads carry no bytes to flip: mark instead.
			m.Corrupt = true
		}
	case FaultTruncate:
		keep := fault.Keep
		if keep > int64(m.Payload.Len()) {
			keep = int64(m.Payload.Len())
		}
		if m.Payload.IsVirtual() {
			m.Payload = buf.Virtual(int(keep))
		} else if m.Payload.Len() > 0 {
			// Truncate (not Slice): the shortened block keeps its pool
			// identity, so the receive completion's release still works.
			m.Payload = m.Payload.Truncate(int(keep))
		}
		m.Err = fmt.Errorf("%w: %d of %d bytes arrived", ErrShortDelivery, keep, m.Bytes)
	case FaultDelay:
		m.Arrival += vclock.Time(fault.Delay)
	}
	front := fault.Kind == FaultReorder
	f.boxes[dst].put(m, front)
	if fault.Kind == FaultDuplicate {
		dup := *m
		f.boxes[dst].put(&dup, false)
	}
	return fault
}

// Match blocks until an envelope matching (src, tag) is available at
// rank's mailbox and removes it. Matching preserves pairwise FIFO
// order: among queued candidates of the matched source, the lowest
// link-sequence number wins (equal to arrival order on a clean run).
// On an aborted fabric it returns nil; use MatchCancel to observe the
// abort reason or cancel the wait.
func (f *Fabric) Match(rank, ctx, src, tag int) *Message {
	m, _ := f.MatchCancel(rank, ctx, src, tag, nil)
	return m
}

// MatchCancel is Match with teardown semantics: it returns early with
// an error when the fabric aborts or the cancel channel closes (the
// canceller must also call KickAll to wake the wait).
func (f *Fabric) MatchCancel(rank, ctx, src, tag int, cancel <-chan struct{}) (*Message, error) {
	f.checkRank(rank)
	m, err := f.boxes[rank].take(ctx, src, tag, f, cancel)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.counters[rank].MessagesMatched++
	f.counters[rank].BytesDelivered += m.Bytes
	f.mu.Unlock()
	return m, nil
}

// Pending reports whether a matching envelope is queued right now,
// without counting a probe or disturbing the queue — the readiness
// predicate the quiescence detector evaluates for blocked receives.
func (f *Fabric) Pending(rank, ctx, src, tag int) bool {
	f.checkRank(rank)
	return f.boxes[rank].peek(ctx, src, tag) != nil
}

// Takes returns the count of envelopes removed from rank's mailbox so
// far. A blocked receive captures it at block time; any take since
// counts as progress for the quiescence verdict even though the
// envelope is no longer queued (see mailbox.takes).
func (f *Fabric) Takes(rank int) int64 {
	f.checkRank(rank)
	return f.boxes[rank].takes.Load()
}

// TryMatch is the non-blocking Match used by Iprobe: it returns nil
// when nothing matches right now. The envelope is left in place.
func (f *Fabric) TryMatch(rank, ctx, src, tag int) *Message {
	f.checkRank(rank)
	f.mu.Lock()
	f.counters[rank].Probes++
	f.mu.Unlock()
	return f.boxes[rank].peek(ctx, src, tag)
}

// Probe blocks until a matching envelope is present and returns it
// without removing it. On an aborted fabric it returns nil.
func (f *Fabric) Probe(rank, ctx, src, tag int) *Message {
	m, _ := f.ProbeCancel(rank, ctx, src, tag, nil)
	return m
}

// ProbeCancel is Probe with teardown semantics (see MatchCancel).
func (f *Fabric) ProbeCancel(rank, ctx, src, tag int, cancel <-chan struct{}) (*Message, error) {
	f.checkRank(rank)
	f.mu.Lock()
	f.counters[rank].Probes++
	f.mu.Unlock()
	return f.boxes[rank].wait(ctx, src, tag, f, cancel)
}

// CountersFor returns a snapshot of rank's counters.
func (f *Fabric) CountersFor(rank int) Counters {
	f.checkRank(rank)
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counters[rank]
}

func (f *Fabric) checkRank(r int) {
	if r < 0 || r >= f.n {
		panic(fmt.Sprintf("simnet: rank %d out of range [0,%d)", r, f.n))
	}
}

// mailbox is an ordered queue with condition-variable matching.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	msgs []*Message
	// dedup turns on consumed-sequence tracking (duplicate faults):
	// a (src, seq) pair is consumed at most once.
	dedup    bool
	consumed map[uint64]struct{}
	// takes counts successful removals. Blocked receives capture it at
	// block time: a take that happened while the record was registered
	// is progress even after the message left the queue (the taker may
	// be the waiter itself, descheduled before deregistering).
	takes atomic.Int64
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// seqKey folds (src, seq) into one dedup key; sources are small rank
// indices and per-link sequences fit comfortably in 48 bits.
func seqKey(m *Message) uint64 {
	return uint64(m.Src)<<48 | uint64(m.Seq)&((1<<48)-1)
}

func (b *mailbox) put(m *Message, front bool) {
	b.mu.Lock()
	if front {
		b.msgs = append([]*Message{m}, b.msgs...)
	} else {
		b.msgs = append(b.msgs, m)
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// selectIdx returns the index of the matching envelope to deliver, or
// -1. The rule: take the first queue position whose envelope matches,
// then prefer a lower link-sequence number from the same source — on a
// clean run sequences arrive in queue order, so this IS pairwise FIFO;
// under reordering faults it restores injection order. Stale duplicate
// copies (consumed sequences) are dropped on the way.
func (b *mailbox) selectIdx(ctx, src, tag int) int {
	if b.dedup && len(b.consumed) > 0 {
		kept := b.msgs[:0]
		for _, m := range b.msgs {
			if _, dup := b.consumed[seqKey(m)]; dup {
				continue
			}
			kept = append(kept, m)
		}
		for i := len(kept); i < len(b.msgs); i++ {
			b.msgs[i] = nil
		}
		b.msgs = kept
	}
	best := -1
	for i, m := range b.msgs {
		if !m.matches(ctx, src, tag) {
			continue
		}
		if best == -1 {
			best = i
			continue
		}
		if m.Src == b.msgs[best].Src && m.Seq < b.msgs[best].Seq {
			best = i
		}
	}
	return best
}

func (b *mailbox) take(ctx, src, tag int, f *Fabric, cancel <-chan struct{}) (*Message, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if cancel != nil {
			select {
			case <-cancel:
				return nil, ErrCanceled
			default:
			}
		}
		if f != nil {
			if err := f.AbortErr(); err != nil {
				return nil, fmt.Errorf("%w: %w", ErrAborted, err)
			}
		}
		if i := b.selectIdx(ctx, src, tag); i >= 0 {
			m := b.msgs[i]
			b.msgs = append(b.msgs[:i], b.msgs[i+1:]...)
			if b.dedup {
				if b.consumed == nil {
					b.consumed = make(map[uint64]struct{})
				}
				b.consumed[seqKey(m)] = struct{}{}
			}
			b.takes.Add(1)
			return m, nil
		}
		b.cond.Wait()
	}
}

func (b *mailbox) peek(ctx, src, tag int) *Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	if i := b.selectIdx(ctx, src, tag); i >= 0 {
		return b.msgs[i]
	}
	return nil
}

func (b *mailbox) wait(ctx, src, tag int, f *Fabric, cancel <-chan struct{}) (*Message, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if cancel != nil {
			select {
			case <-cancel:
				return nil, ErrCanceled
			default:
			}
		}
		if f != nil {
			if err := f.AbortErr(); err != nil {
				return nil, fmt.Errorf("%w: %w", ErrAborted, err)
			}
		}
		if i := b.selectIdx(ctx, src, tag); i >= 0 {
			return b.msgs[i], nil
		}
		b.cond.Wait()
	}
}
