// Package simnet is the simulated interconnect fabric under the MPI
// runtime: per-rank mailboxes with MPI matching semantics (source/tag,
// wildcards, pairwise FIFO order), eager and rendezvous message
// envelopes, and per-endpoint traffic counters.
//
// The fabric is purely mechanical: it moves byte blocks and virtual
// timestamps between rank goroutines and enforces matching order. All
// *pricing* (what an operation costs in virtual time) happens in the
// mpi layer using perfmodel/memsim; all *payload* semantics (datatypes,
// packing) happen in the datatype layer.
//
// # Sharded matching
//
// Each mailbox shards its unexpected-message queue per (communicator
// context, source): an incoming envelope lands in the queue keyed by
// its (Ctx, Src), and a receive posted for a specific source takes the
// O(1) fast path — one map lookup plus one per-queue mutex, so the n²
// (rank × rank) traffic of a large job never serialises on a mailbox-
// wide lock. Cross-queue arrival order is preserved by a per-mailbox
// ticket counter stamped at enqueue time (reorder faults enqueue at
// the front with negative tickets, so they still overtake everything
// queued, exactly like the legacy whole-mailbox prepend).
//
// Wildcard (AnySource) receives take a slow path: phase one scans
// every queue of the context, locking each briefly, and records the
// ticket of its first tag-matching envelope; phase two locks the queue
// with the lowest such ticket and re-selects, restarting the scan if
// the winner was emptied concurrently. Within the winning queue the
// lowest link-sequence number wins (pairwise FIFO, healing reorder
// faults), which reproduces the legacy single-scan matcher's order
// exactly — the property the randomized differential test in
// shard_test.go pins against the reference implementation.
//
// Blocking receives wait on a per-mailbox version counter: every
// enqueue bumps the version and wakes waiters only when the waiter
// count is non-zero, so uncontended delivery is two atomic ops, not a
// mutex + broadcast.
package simnet

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/buf"
	"repro/internal/vclock"
)

// Wildcards for matching, mirroring MPI_ANY_SOURCE and MPI_ANY_TAG.
const (
	AnySource = -1
	AnyTag    = -1
)

// Kind discriminates message envelopes.
type Kind int

// Envelope kinds.
const (
	// KindEager carries the full payload with its arrival time.
	KindEager Kind = iota
	// KindRendezvous is a ready-to-send notice; payload transfer
	// happens through the handshake channels after matching.
	KindRendezvous
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindEager:
		return "eager"
	case KindRendezvous:
		return "rendezvous"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// RdvMatch is the receiver→sender half of the rendezvous handshake:
// when the receive was posted and where the payload should land.
type RdvMatch struct {
	// MatchTime is max(RTS arrival, receive post time) on the
	// receiver's clock.
	MatchTime vclock.Time
	// Dst is the receiver's buffer view the sender streams into.
	Dst buf.Block
	// FusedDst, when non-nil, is an opaque descriptor of the
	// receiver's non-contiguous user layout (owned by the mpi layer;
	// the fabric never inspects it). A fused-capable sender scatters
	// straight into the layout; Dst is then the raw user block the
	// descriptor covers, NOT a packed destination, and non-fusing
	// senders must consult the descriptor rather than streaming
	// packed bytes into Dst.
	FusedDst any
}

// RdvDone is the sender→receiver half: when the payload fully arrived
// and how many bytes were written. A receiver that exposed its layout
// through RdvMatch.FusedDst takes delivery in place — the sender
// always lands the payload in the layout (fused one-pass or its local
// staged equivalent), so no unpack follows.
type RdvDone struct {
	Arrival vclock.Time
	Bytes   int64
	Err     error

	// Sum is the sender's checksum of the payload's packed byte
	// stream, valid when HasSum: the receiver verifies what actually
	// landed against it and NACKs through Message.Ack on mismatch.
	Sum    uint64
	HasSum bool
	// Poisoned marks an attempt the sender already knows arrived
	// damaged but could not mechanically damage (virtual payloads,
	// checksum-less paths): the receiver must NACK it without
	// verifying.
	Poisoned bool
	// Final marks the sender's last attempt under its retry budget:
	// a NACK now becomes a permanent integrity error on both sides.
	Final bool

	// Selective-retransmission descriptor, present when Chunks > 0:
	// the packed stream's first Covered bytes were cut into Chunks
	// pieces of ChunkSize bytes (last one short). Sent marks the
	// chunks this attempt carried (all of them on the first attempt,
	// only the replayed ones afterwards); ChunkSums holds the
	// sender-side checksum per chunk (indexed by chunk, valid for
	// Sent chunks when HasSum); PoisonedChunks marks sent chunks the
	// sender knows arrived damaged but could not mechanically damage;
	// Dup marks sent chunks the fabric redelivered (the receiver must
	// suppress the duplicate if it already accepted the chunk).
	Chunks         int
	ChunkSize      int64
	Covered        int64
	Sent           ChunkBitmap
	PoisonedChunks ChunkBitmap
	Dup            ChunkBitmap
	ChunkSums      []uint64
}

// Message is one envelope in a mailbox.
type Message struct {
	// Ctx is the communicator context: messages only match receives
	// posted on the same communicator, so split communicators cannot
	// intercept each other's traffic.
	Ctx  int
	Src  int
	Tag  int
	Kind Kind

	// Payload: for eager messages, a transit copy owned by the fabric
	// (or a virtual block); for rendezvous, unused.
	Payload buf.Block
	// Bytes is the payload size in bytes for either kind.
	Bytes int64

	// Arrival is when the payload (eager) or the RTS notice
	// (rendezvous) lands at the receiver, in virtual time.
	Arrival vclock.Time

	// Packed marks payloads that were packed in user space, for the
	// Cray eager-limit artefact (perfmodel.PackedEagerFactor).
	Packed bool

	// Sendv marks a plan-driven fused rendezvous send (mpi.SendvType):
	// a typed receiver matching it may expose its user layout through
	// RdvMatch.FusedDst for the direct one-pass scatter instead of
	// allocating a packed staging buffer.
	Sendv bool

	// Match and Done carry the rendezvous handshake; nil for eager.
	Match chan RdvMatch
	Done  chan RdvDone
	// Ack carries the receiver's per-attempt verdict on a rendezvous
	// payload back to the sender: nil accepts, non-nil NACKs and asks
	// for a retransmission. Created (capacity 1) only when the fabric
	// has a fault plan armed; nil otherwise, and the handshake is the
	// classic two-message one.
	Ack chan error

	// Seq is the link-order sequence number stamped by Deliver: the
	// injection index on the directed (Src → dst) link. Matching takes
	// the lowest sequence among queued candidates of a source, which
	// equals FIFO order on a clean run and heals reordering faults;
	// duplicate-fault copies share one Seq and are consumed once.
	Seq int64

	// Sum is the checksum of the payload's packed byte stream when
	// HasSum; eager receivers verify it before accepting delivery.
	Sum    uint64
	HasSum bool
	// Corrupt marks an eager payload the fabric damaged but could not
	// mechanically alter (virtual blocks carry no bytes): receivers
	// treat it exactly like a checksum mismatch.
	Corrupt bool

	// Err is a delivery error attached in flight (ErrShortDelivery for
	// truncation): it surfaces as a typed error from Recv/Wait when no
	// retry machinery is armed to re-request the payload.
	Err error

	// OnConsume, if non-nil, runs when the receiver matches the
	// message. The Bsend buffer manager uses it to release the
	// attached-buffer region.
	OnConsume func()

	// ticket is the mailbox-wide arrival order stamped at enqueue
	// time: positive and increasing for normal deliveries, negative
	// and decreasing for reorder-fault front insertions. Wildcard
	// matching compares tickets across the per-source queues to find
	// the envelope the legacy whole-mailbox scan would have seen
	// first.
	ticket int64

	// wake counts handshake events posted on Match/Done/Ack. Blocked-
	// wait readiness predicates compare it against the count captured
	// at block time, so a wake that was consumed from the channel but
	// whose waiter has not yet deregistered from the quiescence
	// detector still reads as progress — without it, a descheduled
	// waiter in that window looks stuck and fabricates a deadlock. A
	// pointer so fabric-level duplicate copies share one counter.
	wake *atomic.Int64
}

// InitWake arms the handshake wake counter; the mpi layer calls it
// when the fabric tracks quiescence. Without it NoteWake/WakeSeq are
// inert and the handshake is the plain channel protocol.
func (m *Message) InitWake() { m.wake = new(atomic.Int64) }

// NoteWake records a handshake event. Posters must call it BEFORE the
// channel send: readiness may only ever turn true early (delaying
// deadlock detection), never late (fabricating one).
func (m *Message) NoteWake() {
	if m.wake != nil {
		m.wake.Add(1)
	}
}

// WakeSeq returns the handshake event count.
func (m *Message) WakeSeq() int64 {
	if m.wake == nil {
		return 0
	}
	return m.wake.Load()
}

// matches reports whether the envelope satisfies a (ctx, src, tag)
// receive pattern. The context never matches a wildcard.
func (m *Message) matches(ctx, src, tag int) bool {
	if m.Ctx != ctx {
		return false
	}
	if src != AnySource && m.Src != src {
		return false
	}
	if tag != AnyTag && m.Tag != tag {
		return false
	}
	return true
}

// Counters aggregates per-endpoint traffic statistics. The tests use
// them to assert protocol behaviour (e.g. "this send was eager",
// "the derived-type send was chunked k times").
type Counters struct {
	EagerSends      int64
	RendezvousSends int64
	BytesInjected   int64
	BytesDelivered  int64
	MessagesMatched int64
	Probes          int64

	// Fault-injection attribution, counted against the sender (the
	// endpoint whose traffic was damaged) except IntegrityRejects,
	// which the verifying receiver counts.
	Drops            int64
	Corruptions      int64
	Truncations      int64
	Duplicates       int64
	Reorders         int64
	Delays           int64
	Retries          int64
	IntegrityRejects int64

	// Selective-retransmission attribution: chunk replays and their
	// bytes count against the sender; suppressed duplicate chunk
	// deliveries count against the receiver that discarded them.
	ChunkRetransmits    int64
	RetransmitBytes     int64
	DupChunksSuppressed int64
}

// rankCounters is the hot-path mirror of Counters: one cache-line-
// padded struct of atomics per rank, so concurrent senders never share
// a lock (or a line) when bumping their own statistics.
type rankCounters struct {
	eagerSends      atomic.Int64
	rendezvousSends atomic.Int64
	bytesInjected   atomic.Int64
	bytesDelivered  atomic.Int64
	messagesMatched atomic.Int64
	probes          atomic.Int64

	drops            atomic.Int64
	corruptions      atomic.Int64
	truncations      atomic.Int64
	duplicates       atomic.Int64
	reorders         atomic.Int64
	delays           atomic.Int64
	retries          atomic.Int64
	integrityRejects atomic.Int64

	chunkRetransmits    atomic.Int64
	retransmitBytes     atomic.Int64
	dupChunksSuppressed atomic.Int64

	_ [56]byte // 17×8 B of counters + 56 B pad = three full 64 B lines
}

// snapshot loads a consistent-enough copy for reporting.
func (c *rankCounters) snapshot() Counters {
	return Counters{
		EagerSends:      c.eagerSends.Load(),
		RendezvousSends: c.rendezvousSends.Load(),
		BytesInjected:   c.bytesInjected.Load(),
		BytesDelivered:  c.bytesDelivered.Load(),
		MessagesMatched: c.messagesMatched.Load(),
		Probes:          c.probes.Load(),

		Drops:            c.drops.Load(),
		Corruptions:      c.corruptions.Load(),
		Truncations:      c.truncations.Load(),
		Duplicates:       c.duplicates.Load(),
		Reorders:         c.reorders.Load(),
		Delays:           c.delays.Load(),
		Retries:          c.retries.Load(),
		IntegrityRejects: c.integrityRejects.Load(),

		ChunkRetransmits:    c.chunkRetransmits.Load(),
		RetransmitBytes:     c.retransmitBytes.Load(),
		DupChunksSuppressed: c.dupChunksSuppressed.Load(),
	}
}

// MatchStats is the fabric-wide matching attribution: how many sharded
// queues exist and how the take traffic split between the O(1)
// specific-source fast path and the all-queue wildcard slow path. The
// scale harness reports it per cell so shard contention is visible.
type MatchStats struct {
	// Queues is the live (ctx, source) queue count across mailboxes.
	Queues int64
	// FastTakes counts specific-source matches (single queue lock).
	FastTakes int64
	// WildTakes counts AnySource matches (full context scan).
	WildTakes int64
}

// Sub returns the delta s - prev (Queues stays absolute).
func (s MatchStats) Sub(prev MatchStats) MatchStats {
	return MatchStats{
		Queues:    s.Queues,
		FastTakes: s.FastTakes - prev.FastTakes,
		WildTakes: s.WildTakes - prev.WildTakes,
	}
}

// Fabric connects n endpoints. It is safe for concurrent use by the n
// rank goroutines.
type Fabric struct {
	n        int
	boxes    []*mailbox
	group    *vclock.Group
	counters []rankCounters

	// faults, when non-nil, is the armed fault plan with its per-link
	// injection counters; SetFaultPlan arms it before any traffic.
	// An atomic pointer so FaultsEnabled/PayloadFault/Deliver read it
	// without touching the registry mutex on every payload op.
	faults atomic.Pointer[faultState]

	// mu guards the cold-path registries only (communicator groups,
	// context allocation, the shared-object table) — never the
	// per-message hot path.
	mu      sync.Mutex
	groups  map[int]*vclock.Group // per-communicator sync groups, by ctx
	nextCtx int
	shared  map[string]interface{} // window state registry

	// quiescence-detector bookkeeping (see fault.go).
	tracking atomic.Bool
	blockMu  sync.Mutex
	running  int
	blockSeq int
	blocked  map[int]*blockedRec

	abortMu  sync.Mutex
	abortErr error
	abortCh  chan struct{}
}

// New creates a fabric with n endpoints.
func New(n int) *Fabric {
	if n <= 0 {
		panic(fmt.Sprintf("simnet: fabric size %d", n))
	}
	f := &Fabric{n: n, group: vclock.NewGroup(n), counters: make([]rankCounters, n)}
	f.boxes = make([]*mailbox, n)
	for i := range f.boxes {
		f.boxes[i] = newMailbox()
	}
	f.blocked = make(map[int]*blockedRec)
	f.abortCh = make(chan struct{})
	return f
}

// SetFaultPlan arms a fault plan on the fabric; nil disarms. Arm it
// before any traffic flows: the per-link injection counters start at
// the moment of the call. Arming also turns on mailbox deduplication
// (consumed-sequence tracking for duplicate faults).
func (f *Fabric) SetFaultPlan(p *FaultPlan) {
	if p == nil {
		f.faults.Store(nil)
		return
	}
	f.faults.Store(newFaultState(p))
	for _, b := range f.boxes {
		b.dedup.Store(true)
	}
}

// FaultsEnabled reports whether a fault plan is armed. Lock-free: one
// atomic pointer load, so protocol code may consult it per payload.
func (f *Fabric) FaultsEnabled() bool {
	return f.faults.Load() != nil
}

// PayloadFault draws the fault verdict for the next rendezvous payload
// transfer on (src → dst) of n bytes. It returns FaultNone when no
// plan is armed (a single atomic load, no lock). Duplicate/reorder/
// delay make no sense for a handshake-synchronised stream, so they are
// folded into FaultNone.
func (f *Fabric) PayloadFault(src, dst int, n int64) Fault {
	fs := f.faults.Load()
	if fs == nil {
		return Fault{}
	}
	fault, _ := fs.next(src, dst, n, true)
	switch fault.Kind {
	case FaultDuplicate, FaultReorder, FaultDelay:
		fault = Fault{}
	}
	if fault.Kind != FaultNone {
		f.noteFault(src, fault.Kind)
	}
	return fault
}

// noteFault records a fault against the sender's counters.
func (f *Fabric) noteFault(src int, kind FaultKind) {
	c := &f.counters[src]
	switch kind {
	case FaultDrop:
		c.drops.Add(1)
	case FaultCorrupt:
		c.corruptions.Add(1)
	case FaultTruncate:
		c.truncations.Add(1)
	case FaultDuplicate:
		c.duplicates.Add(1)
	case FaultReorder:
		c.reorders.Add(1)
	case FaultDelay:
		c.delays.Add(1)
	}
}

// NoteRetry counts one protocol-level retransmission by src.
func (f *Fabric) NoteRetry(src int) {
	f.counters[src].retries.Add(1)
}

// NoteIntegrityReject counts one checksum-verification rejection at
// the receiving rank.
func (f *Fabric) NoteIntegrityReject(rank int) {
	f.counters[rank].integrityRejects.Add(1)
}

// Size returns the endpoint count.
func (f *Fabric) Size() int { return f.n }

// Group returns the fabric-wide synchronisation group used by
// barriers and window fences.
func (f *Fabric) Group() *vclock.Group { return f.group }

// GroupFor returns the synchronisation group of the communicator with
// the given context, creating it with the given size on first use.
// Every member of the communicator asks for the same ctx/size, so the
// first caller creates and the rest share.
func (f *Fabric) GroupFor(ctx, size int) *vclock.Group {
	if ctx == 0 {
		if size != f.n {
			panic(fmt.Sprintf("simnet: world group size mismatch: %d vs %d", size, f.n))
		}
		return f.group
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.groups == nil {
		f.groups = make(map[int]*vclock.Group)
	}
	g, ok := f.groups[ctx]
	if !ok {
		g = vclock.NewGroup(size)
		f.groups[ctx] = g
	} else if g.Size() != size {
		panic(fmt.Sprintf("simnet: ctx %d group size mismatch: have %d want %d", ctx, g.Size(), size))
	}
	return g
}

// AllocCtxBlock reserves n fresh communicator contexts and returns the
// first. Rank 0 of a Split allocates and broadcasts; contexts start at
// 1 because 0 is the world communicator.
func (f *Fabric) AllocCtxBlock(n int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.nextCtx == 0 {
		f.nextCtx = 1
	}
	first := f.nextCtx
	f.nextCtx += n
	return first
}

// Shared returns the object registered under key, creating it with
// create on first use. One-sided windows use this to share their
// per-window state among ranks: the creation key is deterministic
// (communicator context and a per-communicator sequence number), so
// every member resolves the same object.
func (f *Fabric) Shared(key string, create func() interface{}) interface{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.shared == nil {
		f.shared = make(map[string]interface{})
	}
	v, ok := f.shared[key]
	if !ok {
		v = create()
		f.shared[key] = v
	}
	return v
}

// DropShared removes a registry entry (window free).
func (f *Fabric) DropShared(key string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.shared, key)
}

// Deliver enqueues an envelope at dst's mailbox, recording injection
// statistics against src, and returns the fault verdict the armed
// plan (if any) applied to the injection. The verdict is synchronous:
// a dropped envelope is simply not enqueued and the sender learns it
// immediately (the modeled ACK-timeout/backoff is the sender's clock
// advance, not a real-time wait); corrupted and truncated envelopes
// ARE enqueued, damaged, so receivers genuinely exercise their
// verification. Rendezvous (control) envelopes cannot be damaged in a
// meaningful way, so corrupt/truncate draws degrade to drops there.
func (f *Fabric) Deliver(dst int, m *Message) Fault {
	f.checkRank(dst)
	f.checkRank(m.Src)
	c := &f.counters[m.Src]
	switch m.Kind {
	case KindEager:
		c.eagerSends.Add(1)
	case KindRendezvous:
		c.rendezvousSends.Add(1)
	}
	c.bytesInjected.Add(m.Bytes)
	fs := f.faults.Load()

	if fs == nil {
		f.boxes[dst].put(m, false)
		return Fault{}
	}

	fault, seq := fs.next(m.Src, dst, m.Bytes, false)
	m.Seq = seq
	if m.Kind == KindRendezvous && (fault.Kind == FaultCorrupt || fault.Kind == FaultTruncate) {
		// A damaged RTS fails its link-level CRC and is discarded
		// whole: the sender sees a drop.
		fault = Fault{Kind: FaultDrop}
	}
	if fault.Kind != FaultNone {
		f.noteFault(m.Src, fault.Kind)
	}
	switch fault.Kind {
	case FaultDrop:
		// Never enqueued; recycle a pooled transit payload so the
		// sender's retransmission does not drift the pool balance.
		buf.PutPooled(m.Payload)
		m.Payload = buf.Block{}
		return fault
	case FaultCorrupt:
		if data := m.Payload.Bytes(); len(data) > 0 {
			data[int(fault.Offset)%len(data)] ^= 0xFF
		} else {
			// Virtual payloads carry no bytes to flip: mark instead.
			m.Corrupt = true
		}
	case FaultTruncate:
		keep := fault.Keep
		if keep > int64(m.Payload.Len()) {
			keep = int64(m.Payload.Len())
		}
		if m.Payload.IsVirtual() {
			m.Payload = buf.Virtual(int(keep))
		} else if m.Payload.Len() > 0 {
			// Truncate (not Slice): the shortened block keeps its pool
			// identity, so the receive completion's release still works.
			m.Payload = m.Payload.Truncate(int(keep))
		}
		m.Err = fmt.Errorf("%w: %d of %d bytes arrived", ErrShortDelivery, keep, m.Bytes)
	case FaultDelay:
		m.Arrival += vclock.Time(fault.Delay)
	}
	front := fault.Kind == FaultReorder
	f.boxes[dst].put(m, front)
	if fault.Kind == FaultDuplicate {
		dup := *m
		f.boxes[dst].put(&dup, false)
	}
	return fault
}

// Match blocks until an envelope matching (src, tag) is available at
// rank's mailbox and removes it. Matching preserves pairwise FIFO
// order: among queued candidates of the matched source, the lowest
// link-sequence number wins (equal to arrival order on a clean run).
// On an aborted fabric it returns nil; use MatchCancel to observe the
// abort reason or cancel the wait.
func (f *Fabric) Match(rank, ctx, src, tag int) *Message {
	m, _ := f.MatchCancel(rank, ctx, src, tag, nil)
	return m
}

// MatchCancel is Match with teardown semantics: it returns early with
// an error when the fabric aborts or the cancel channel closes (the
// canceller must also call KickAll to wake the wait).
func (f *Fabric) MatchCancel(rank, ctx, src, tag int, cancel <-chan struct{}) (*Message, error) {
	f.checkRank(rank)
	m, err := f.boxes[rank].take(ctx, src, tag, f, cancel)
	if err != nil {
		return nil, err
	}
	c := &f.counters[rank]
	c.messagesMatched.Add(1)
	c.bytesDelivered.Add(m.Bytes)
	return m, nil
}

// Pending reports whether a matching envelope is queued right now,
// without counting a probe or disturbing the queue — the readiness
// predicate the quiescence detector evaluates for blocked receives.
func (f *Fabric) Pending(rank, ctx, src, tag int) bool {
	f.checkRank(rank)
	return f.boxes[rank].peek(ctx, src, tag) != nil
}

// Takes returns the count of envelopes removed from rank's mailbox so
// far. A blocked receive captures it at block time; any take since
// counts as progress for the quiescence verdict even though the
// envelope is no longer queued (see mailbox.takes).
func (f *Fabric) Takes(rank int) int64 {
	f.checkRank(rank)
	return f.boxes[rank].takes.Load()
}

// TryMatch is the non-blocking Match used by Iprobe: it returns nil
// when nothing matches right now. The envelope is left in place.
func (f *Fabric) TryMatch(rank, ctx, src, tag int) *Message {
	f.checkRank(rank)
	f.counters[rank].probes.Add(1)
	return f.boxes[rank].peek(ctx, src, tag)
}

// Probe blocks until a matching envelope is present and returns it
// without removing it. On an aborted fabric it returns nil.
func (f *Fabric) Probe(rank, ctx, src, tag int) *Message {
	m, _ := f.ProbeCancel(rank, ctx, src, tag, nil)
	return m
}

// ProbeCancel is Probe with teardown semantics (see MatchCancel).
func (f *Fabric) ProbeCancel(rank, ctx, src, tag int, cancel <-chan struct{}) (*Message, error) {
	f.checkRank(rank)
	f.counters[rank].probes.Add(1)
	return f.boxes[rank].wait(ctx, src, tag, f, cancel)
}

// CountersFor returns a snapshot of rank's counters.
func (f *Fabric) CountersFor(rank int) Counters {
	f.checkRank(rank)
	return f.counters[rank].snapshot()
}

// MatchStatsSnapshot sums the per-mailbox matching attribution.
func (f *Fabric) MatchStatsSnapshot() MatchStats {
	var s MatchStats
	for _, b := range f.boxes {
		b.qmu.RLock()
		s.Queues += int64(len(b.queues))
		b.qmu.RUnlock()
		s.FastTakes += b.fastTakes.Load()
		s.WildTakes += b.wildTakes.Load()
	}
	return s
}

func (f *Fabric) checkRank(r int) {
	if r < 0 || r >= f.n {
		panic(fmt.Sprintf("simnet: rank %d out of range [0,%d)", r, f.n))
	}
}

// qkey addresses one sharded queue: the (communicator, source) pair of
// its envelopes.
type qkey struct{ ctx, src int }

// srcQueue is one shard: the envelopes of a single (ctx, source) pair
// in ticket (arrival) order, with its own lock and consumed-sequence
// set. Specific-source receives touch exactly one srcQueue.
type srcQueue struct {
	mu   sync.Mutex
	msgs []*Message // ticket order: reorder-fault inserts at the front
	// consumed tracks delivered link sequences when dedup is armed
	// (duplicate faults): within one (ctx, src) shard the Seq alone
	// identifies the injection.
	consumed map[int64]struct{}
}

// selectLocked picks the envelope the matcher should deliver for tag,
// with q.mu held: the lowest link-sequence number among tag matches,
// earliest arrival breaking ties (the slice is ticket-ordered, so the
// first match is the earliest and is only displaced by a strictly
// lower Seq — exactly the legacy whole-mailbox rule restricted to one
// source). It also returns the ticket of the first (earliest) match,
// which the wildcard path compares across queues, and prunes consumed
// duplicate copies when dedup is on.
func (q *srcQueue) selectLocked(tag int, dedup bool) (best int, firstTicket int64) {
	if dedup && len(q.consumed) > 0 {
		kept := q.msgs[:0]
		for _, m := range q.msgs {
			if _, dup := q.consumed[m.Seq]; dup {
				continue
			}
			kept = append(kept, m)
		}
		for i := len(kept); i < len(q.msgs); i++ {
			q.msgs[i] = nil
		}
		q.msgs = kept
	}
	best = -1
	for i, m := range q.msgs {
		if tag != AnyTag && m.Tag != tag {
			continue
		}
		if best == -1 {
			best = i
			firstTicket = m.ticket
			continue
		}
		if m.Seq < q.msgs[best].Seq {
			best = i
		}
	}
	return best, firstTicket
}

// removeLocked takes the envelope at index i out of the shard, marking
// its sequence consumed when dedup is on. q.mu held.
func (q *srcQueue) removeLocked(i int, dedup bool) *Message {
	m := q.msgs[i]
	copy(q.msgs[i:], q.msgs[i+1:])
	q.msgs[len(q.msgs)-1] = nil
	q.msgs = q.msgs[:len(q.msgs)-1]
	if dedup {
		if q.consumed == nil {
			q.consumed = make(map[int64]struct{})
		}
		q.consumed[m.Seq] = struct{}{}
	}
	return m
}

// mailbox is one endpoint's unexpected-message store, sharded per
// (ctx, source). See the package comment for the matching design.
type mailbox struct {
	// qmu guards the queue registry (map + per-ctx index), NOT the
	// queues themselves: lookups take the read side, and a queue is
	// created at most once per (ctx, src), so steady-state delivery
	// never writes the registry.
	qmu    sync.RWMutex
	queues map[qkey]*srcQueue
	byCtx  map[int][]*srcQueue

	// ticket stamps normal arrivals (increasing from 1); fticket
	// stamps reorder-fault front insertions (decreasing from -1), so
	// a front-inserted envelope orders before everything already
	// queued and a later front insertion overtakes an earlier one —
	// the legacy whole-mailbox prepend semantics.
	ticket  atomic.Int64
	fticket atomic.Int64

	// version counts enqueues (and kicks); blocked receives wait for
	// it to move. Putters broadcast only when waiters is non-zero, so
	// uncontended delivery never takes waitMu.
	version atomic.Int64
	waiters atomic.Int64
	waitMu  sync.Mutex
	cond    *sync.Cond

	// dedup turns on consumed-sequence tracking (duplicate faults).
	dedup atomic.Bool
	// takes counts successful removals. Blocked receives capture it at
	// block time: a take that happened while the record was registered
	// is progress even after the message left the queue (the taker may
	// be the waiter itself, descheduled before deregistering).
	takes atomic.Int64

	// fast/wild split the take traffic for MatchStats attribution.
	fastTakes atomic.Int64
	wildTakes atomic.Int64
}

func newMailbox() *mailbox {
	b := &mailbox{
		queues: make(map[qkey]*srcQueue),
		byCtx:  make(map[int][]*srcQueue),
	}
	b.cond = sync.NewCond(&b.waitMu)
	return b
}

// queueFor returns the (ctx, src) shard, creating it on first use.
func (b *mailbox) queueFor(ctx, src int) *srcQueue {
	k := qkey{ctx, src}
	b.qmu.RLock()
	q := b.queues[k]
	b.qmu.RUnlock()
	if q != nil {
		return q
	}
	b.qmu.Lock()
	defer b.qmu.Unlock()
	if q = b.queues[k]; q != nil {
		return q
	}
	q = &srcQueue{}
	b.queues[k] = q
	b.byCtx[ctx] = append(b.byCtx[ctx], q)
	return q
}

// lookup returns the (ctx, src) shard or nil; receives use it so a
// posted receive never materialises an empty queue.
func (b *mailbox) lookup(ctx, src int) *srcQueue {
	b.qmu.RLock()
	q := b.queues[qkey{ctx, src}]
	b.qmu.RUnlock()
	return q
}

// ctxQueues snapshots the shard list of a context. The returned slice
// prefix is immutable (creators append under the write lock), so the
// caller may iterate without the registry lock.
func (b *mailbox) ctxQueues(ctx int) []*srcQueue {
	b.qmu.RLock()
	qs := b.byCtx[ctx]
	b.qmu.RUnlock()
	return qs
}

func (b *mailbox) put(m *Message, front bool) {
	q := b.queueFor(m.Ctx, m.Src)
	q.mu.Lock()
	if front {
		m.ticket = b.fticket.Add(-1)
		q.msgs = append(q.msgs, nil)
		copy(q.msgs[1:], q.msgs)
		q.msgs[0] = m
	} else {
		m.ticket = b.ticket.Add(1)
		q.msgs = append(q.msgs, m)
	}
	q.mu.Unlock()
	b.version.Add(1)
	if b.waiters.Load() > 0 {
		b.waitMu.Lock()
		b.cond.Broadcast()
		b.waitMu.Unlock()
	}
}

// kick wakes every blocked receive so it can re-check its cancel
// channel or the abort state.
func (b *mailbox) kick() {
	b.waitMu.Lock()
	b.version.Add(1)
	b.cond.Broadcast()
	b.waitMu.Unlock()
}

// tryTakeFrom attempts a removal from one shard.
func (b *mailbox) tryTakeFrom(q *srcQueue, tag int) *Message {
	dedup := b.dedup.Load()
	q.mu.Lock()
	defer q.mu.Unlock()
	i, _ := q.selectLocked(tag, dedup)
	if i < 0 {
		return nil
	}
	return q.removeLocked(i, dedup)
}

// tryTakeAny is the wildcard slow path: phase one scans every shard of
// the context and records the ticket of its earliest tag match; phase
// two locks the queue with the lowest such ticket and re-selects,
// restarting if a concurrent taker emptied it. With a single taker
// (the differential-test regime) nothing moves between phases and the
// result equals the legacy whole-mailbox scan exactly; with racing
// wildcard takers the linearisation is whichever scan wins, which MPI
// leaves unspecified anyway.
func (b *mailbox) tryTakeAny(ctx, tag int) *Message {
	dedup := b.dedup.Load()
	for {
		var win *srcQueue
		var winTicket int64
		for _, q := range b.ctxQueues(ctx) {
			q.mu.Lock()
			i, ft := q.selectLocked(tag, dedup)
			q.mu.Unlock()
			if i < 0 {
				continue
			}
			if win == nil || ft < winTicket {
				win, winTicket = q, ft
			}
		}
		if win == nil {
			return nil
		}
		win.mu.Lock()
		i, _ := win.selectLocked(tag, dedup)
		if i >= 0 {
			m := win.removeLocked(i, dedup)
			win.mu.Unlock()
			return m
		}
		win.mu.Unlock()
		// The winner was drained between the phases; rescan.
	}
}

// tryTake removes the matching envelope, or returns nil.
func (b *mailbox) tryTake(ctx, src, tag int) *Message {
	if src != AnySource {
		q := b.lookup(ctx, src)
		if q == nil {
			return nil
		}
		m := b.tryTakeFrom(q, tag)
		if m != nil {
			b.fastTakes.Add(1)
			b.takes.Add(1)
		}
		return m
	}
	m := b.tryTakeAny(ctx, tag)
	if m != nil {
		b.wildTakes.Add(1)
		b.takes.Add(1)
	}
	return m
}

// peekLocked-free peek: returns the envelope take would deliver,
// without removing it.
func (b *mailbox) peek(ctx, src, tag int) *Message {
	dedup := b.dedup.Load()
	if src != AnySource {
		q := b.lookup(ctx, src)
		if q == nil {
			return nil
		}
		q.mu.Lock()
		defer q.mu.Unlock()
		i, _ := q.selectLocked(tag, dedup)
		if i < 0 {
			return nil
		}
		return q.msgs[i]
	}
	var best *Message
	var bestTicket int64
	for _, q := range b.ctxQueues(ctx) {
		q.mu.Lock()
		i, ft := q.selectLocked(tag, dedup)
		if i >= 0 && (best == nil || ft < bestTicket) {
			best, bestTicket = q.msgs[i], ft
		}
		q.mu.Unlock()
	}
	return best
}

// block waits until the mailbox version moves past v (or a kick).
func (b *mailbox) block(v int64) {
	b.waitMu.Lock()
	b.waiters.Add(1)
	for b.version.Load() == v {
		b.cond.Wait()
	}
	b.waiters.Add(-1)
	b.waitMu.Unlock()
}

// checkLive surfaces cancellation and abort in blocking loops.
func checkLive(f *Fabric, cancel <-chan struct{}) error {
	if cancel != nil {
		select {
		case <-cancel:
			return ErrCanceled
		default:
		}
	}
	if f != nil {
		if err := f.AbortErr(); err != nil {
			return fmt.Errorf("%w: %w", ErrAborted, err)
		}
	}
	return nil
}

func (b *mailbox) take(ctx, src, tag int, f *Fabric, cancel <-chan struct{}) (*Message, error) {
	for {
		if err := checkLive(f, cancel); err != nil {
			return nil, err
		}
		v := b.version.Load()
		if m := b.tryTake(ctx, src, tag); m != nil {
			return m, nil
		}
		b.block(v)
	}
}

func (b *mailbox) wait(ctx, src, tag int, f *Fabric, cancel <-chan struct{}) (*Message, error) {
	for {
		if err := checkLive(f, cancel); err != nil {
			return nil, err
		}
		v := b.version.Load()
		if m := b.peek(ctx, src, tag); m != nil {
			return m, nil
		}
		b.block(v)
	}
}
