package simnet

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/vclock"
)

// This file is the fault-injection half of the fabric: a deterministic,
// seedable FaultPlan applied at injection time on the virtual clock,
// and the quiescence detector's bookkeeping (which goroutines are
// runnable, which are blocked, and on what).
//
// Faults are decided synchronously at Deliver/PayloadFault time from a
// counter-keyed hash of (seed, src, dst, sequence), never from Go
// scheduling or wall time, so a fault plan replays identically across
// runs — the property the chaos differential suite depends on.

// FaultKind classifies an injected fault.
type FaultKind int

// Fault kinds, in the order the per-link rates are evaluated.
const (
	FaultNone FaultKind = iota
	// FaultDrop discards the envelope (or payload transfer) entirely;
	// the sender must retransmit.
	FaultDrop
	// FaultCorrupt flips payload bytes in flight; checksums catch it.
	FaultCorrupt
	// FaultTruncate delivers only a prefix of the payload.
	FaultTruncate
	// FaultDuplicate enqueues the envelope twice with the same
	// sequence number; receivers deduplicate.
	FaultDuplicate
	// FaultReorder lets the envelope overtake earlier traffic on the
	// link; sequence-ordered matching heals it.
	FaultReorder
	// FaultDelay adds extra virtual latency to the arrival.
	FaultDelay
)

// String names the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultCorrupt:
		return "corrupt"
	case FaultTruncate:
		return "truncate"
	case FaultDuplicate:
		return "duplicate"
	case FaultReorder:
		return "reorder"
	case FaultDelay:
		return "delay"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one injected fault verdict: what happened to a particular
// envelope or payload transfer.
type Fault struct {
	Kind FaultKind
	// Delay is the extra arrival latency for FaultDelay.
	Delay vclock.Duration
	// Offset is the corrupted byte's position for FaultCorrupt,
	// modulo the payload length.
	Offset int64
	// Keep is the surviving prefix length for FaultTruncate (strictly
	// less than the payload length for non-empty payloads).
	Keep int64
}

// NeedsResend reports whether the payload did not arrive intact: the
// sender must retransmit (after the receiver's NACK or a modeled ACK
// timeout) for the transfer to complete.
func (f Fault) NeedsResend() bool {
	return f.Kind == FaultDrop || f.Kind == FaultCorrupt || f.Kind == FaultTruncate
}

// LinkFaults is the per-link fault-rate vector. Rates are
// probabilities in [0,1], evaluated in the declared order on one
// uniform draw per injection, so their sum should stay ≤ 1.
type LinkFaults struct {
	Drop      float64
	Corrupt   float64
	Truncate  float64
	Duplicate float64
	Reorder   float64
	Delay     float64
	// DelaySpan is the extra latency of a FaultDelay; zero means the
	// DefaultDelaySpan.
	DelaySpan vclock.Duration
}

// DefaultDelaySpan is the extra virtual latency of a delay fault when
// the plan does not specify one: long enough to reorder against
// in-flight traffic, short enough not to dominate a benchmark.
const DefaultDelaySpan = vclock.Duration(50_000) // 50µs

// Total returns the summed fault probability of the link.
func (lf LinkFaults) Total() float64 {
	return lf.Drop + lf.Corrupt + lf.Truncate + lf.Duplicate + lf.Reorder + lf.Delay
}

// Link identifies a directed fabric link.
type Link struct{ Src, Dst int }

// ScriptedFault is a one-shot fault pinned to the k-th injection
// (0-based, counted separately for envelopes and payload transfers) on
// a directed link — the deterministic "lose exactly the third message"
// construction regression tests want.
type ScriptedFault struct {
	Src, Dst int
	// Seq is the 0-based injection index on the link the fault hits.
	Seq int64
	// Payload selects the payload-transfer counter (rendezvous data
	// movement) instead of the envelope counter.
	Payload bool
	Kind    FaultKind
}

// FaultPlan is a deterministic, seedable description of everything
// that goes wrong on the fabric. The zero value injects nothing.
type FaultPlan struct {
	// Seed keys the per-injection hash; two runs with equal plans see
	// identical faults.
	Seed uint64
	// Default applies to every link without an explicit entry.
	Default LinkFaults
	// Links overrides specific directed links.
	Links map[Link]LinkFaults
	// Scripted one-shot faults, applied on top of (before) the random
	// rates.
	Scripted []ScriptedFault
}

// UniformFaults builds a plan whose every link fails each injection
// with the given total probability, split evenly across drop, corrupt,
// truncate, duplicate, reorder and delay — the chaos study's knob.
func UniformFaults(seed uint64, rate float64) *FaultPlan {
	per := rate / 6
	return &FaultPlan{
		Seed: seed,
		Default: LinkFaults{
			Drop: per, Corrupt: per, Truncate: per,
			Duplicate: per, Reorder: per, Delay: per,
		},
	}
}

// DropOnly builds a plan that only drops, at the given per-injection
// probability — the CI smoke configuration.
func DropOnly(seed uint64, rate float64) *FaultPlan {
	return &FaultPlan{Seed: seed, Default: LinkFaults{Drop: rate}}
}

// forLink resolves the effective rates of a directed link.
func (p *FaultPlan) forLink(src, dst int) LinkFaults {
	if p.Links != nil {
		if lf, ok := p.Links[Link{src, dst}]; ok {
			return lf
		}
	}
	return p.Default
}

// splitmix64 is the counter hash behind every fault draw: a
// well-mixed, allocation-free PRF of the (seed, link, sequence) key.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw returns a uniform [0,1) float and a raw hash for the given
// injection, deterministic in the key alone.
func (p *FaultPlan) draw(src, dst int, seq int64, payload bool) (float64, uint64) {
	k := p.Seed
	k = splitmix64(k ^ uint64(src)<<32 ^ uint64(dst))
	salt := uint64(0)
	if payload {
		salt = 0x5bf03635
	}
	k = splitmix64(k ^ uint64(seq) ^ salt<<24)
	// 53 mantissa bits give a uniform float in [0,1).
	return float64(k>>11) / (1 << 53), splitmix64(k)
}

// scriptedKey indexes the one-shot fault table.
type scriptedKey struct {
	src, dst int
	seq      int64
	payload  bool
}

// faultState is the fabric's armed fault plan plus per-link injection
// counters. Counters live here (not in the plan) so one plan value can
// arm several fabrics.
type faultState struct {
	plan     *FaultPlan
	scripted map[scriptedKey]FaultKind

	mu      sync.Mutex
	envSeq  map[Link]int64
	dataSeq map[Link]int64
}

func newFaultState(p *FaultPlan) *faultState {
	fs := &faultState{
		plan:    p,
		envSeq:  make(map[Link]int64),
		dataSeq: make(map[Link]int64),
	}
	if len(p.Scripted) > 0 {
		fs.scripted = make(map[scriptedKey]FaultKind, len(p.Scripted))
		for _, s := range p.Scripted {
			fs.scripted[scriptedKey{s.Src, s.Dst, s.Seq, s.Payload}] = s.Kind
		}
	}
	return fs
}

// next draws the fault verdict for the next injection on (src,dst) and
// returns it with the injection's link-sequence number.
func (fs *faultState) next(src, dst int, bytes int64, payload bool) (Fault, int64) {
	fs.mu.Lock()
	seqs := fs.envSeq
	if payload {
		seqs = fs.dataSeq
	}
	seq := seqs[Link{src, dst}]
	seqs[Link{src, dst}] = seq + 1
	fs.mu.Unlock()

	kind := FaultNone
	var h uint64
	if k, ok := fs.scripted[scriptedKey{src, dst, seq, payload}]; ok {
		kind = k
		_, h = fs.plan.draw(src, dst, seq, payload)
	} else {
		lf := fs.plan.forLink(src, dst)
		u, hh := fs.plan.draw(src, dst, seq, payload)
		h = hh
		switch {
		case u < lf.Drop:
			kind = FaultDrop
		case u < lf.Drop+lf.Corrupt:
			kind = FaultCorrupt
		case u < lf.Drop+lf.Corrupt+lf.Truncate:
			kind = FaultTruncate
		case u < lf.Drop+lf.Corrupt+lf.Truncate+lf.Duplicate:
			kind = FaultDuplicate
		case u < lf.Drop+lf.Corrupt+lf.Truncate+lf.Duplicate+lf.Reorder:
			kind = FaultReorder
		case u < lf.Total():
			kind = FaultDelay
		}
	}
	f := Fault{Kind: kind}
	switch kind {
	case FaultDelay:
		f.Delay = fs.plan.forLink(src, dst).DelaySpan
		if f.Delay <= 0 {
			f.Delay = DefaultDelaySpan
		}
	case FaultCorrupt:
		if bytes > 0 {
			f.Offset = int64(h % uint64(bytes))
		}
	case FaultTruncate:
		if bytes > 0 {
			f.Keep = int64(h % uint64(bytes)) // strictly shorter
		}
	}
	return f, seq
}

// ErrShortDelivery marks a payload that arrived shorter than its
// envelope advertised (a truncation fault): the typed error carried by
// Message.Err into Recv/Wait.
var ErrShortDelivery = fmt.Errorf("simnet: payload truncated in flight")

// ErrAborted is wrapped by every fabric operation that returns after
// Abort tore the run down.
var ErrAborted = fmt.Errorf("simnet: fabric aborted")

// ErrCanceled is returned by a blocking fabric operation whose
// per-operation cancel channel closed (a request deadline firing).
var ErrCanceled = fmt.Errorf("simnet: operation canceled")

// BlockInfo describes one blocked operation for the quiescence
// detector's report: who is stuck, on what, since when.
type BlockInfo struct {
	Rank int
	// Op is the protocol state, e.g. "recv", "rdv-match", "rdv-done",
	// "rdv-ack", "barrier", "wait".
	Op       string
	Ctx      int
	Src, Tag int
	Since    vclock.Time
	// Deadline marks waits that carry their own timeout: the global
	// detector defers to them instead of aborting the run.
	Deadline bool
}

// String formats one stuck endpoint.
func (b BlockInfo) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "rank %d blocked in %s", b.Rank, b.Op)
	if b.Op == "recv" || b.Op == "probe" {
		src := "any"
		if b.Src != AnySource {
			src = fmt.Sprint(b.Src)
		}
		tag := "any"
		if b.Tag != AnyTag {
			tag = fmt.Sprint(b.Tag)
		}
		fmt.Fprintf(&sb, " (ctx %d, src %s, tag %s)", b.Ctx, src, tag)
	} else if b.Src >= 0 || b.Tag >= 0 {
		fmt.Fprintf(&sb, " (ctx %d, peer %d, tag %d)", b.Ctx, b.Src, b.Tag)
	}
	fmt.Fprintf(&sb, " since %v", b.Since)
	return sb.String()
}

// blockedRec pairs the report info with the wait's readiness
// predicate. ready() must be safe to call from the detector goroutine
// and must return true whenever the wait could complete right now
// (matching message present, channel non-empty, epoch advanced, …) —
// the fail-safe direction: a true from a racing wake only delays
// detection, never fabricates a deadlock.
type blockedRec struct {
	info  BlockInfo
	ready func() bool
}

// Tracking reports whether worker/blocked accounting is armed (fault
// mode or an explicit deadlock detector). When false the bookkeeping
// entry points are no-ops, so the clean path pays nothing.
func (f *Fabric) Tracking() bool { return f.tracking.Load() }

// EnableTracking arms the worker/blocked accounting; called by the mpi
// layer before any rank goroutine starts.
func (f *Fabric) EnableTracking() { f.tracking.Store(true) }

// WorkerStart registers a runnable goroutine (a rank body or an async
// operation) with the quiescence detector.
func (f *Fabric) WorkerStart() {
	if !f.Tracking() {
		return
	}
	f.blockMu.Lock()
	f.running++
	f.blockMu.Unlock()
}

// WorkerDone unregisters a goroutine registered with WorkerStart.
func (f *Fabric) WorkerDone() {
	if !f.Tracking() {
		return
	}
	f.blockMu.Lock()
	f.running--
	f.blockMu.Unlock()
}

// EnterBlocked records that the calling (registered) goroutine is
// about to block on a wait described by info, completable exactly when
// ready() returns true. The returned release function must run when
// the wait ends. When tracking is off it is a no-op.
func (f *Fabric) EnterBlocked(info BlockInfo, ready func() bool) func() {
	if !f.Tracking() {
		return func() {}
	}
	f.blockMu.Lock()
	f.blockSeq++
	tok := f.blockSeq
	f.blocked[tok] = &blockedRec{info: info, ready: ready}
	f.running--
	f.blockMu.Unlock()
	return func() {
		f.blockMu.Lock()
		delete(f.blocked, tok)
		f.running++
		f.blockMu.Unlock()
	}
}

// Quiescent reports whether the run can no longer make progress: no
// registered goroutine is runnable, at least one is blocked, and no
// blocked wait's readiness predicate holds. It returns the stuck-
// endpoint report (sorted by rank) and whether any stuck wait carries
// its own deadline.
func (f *Fabric) Quiescent() (stuck []BlockInfo, anyDeadline bool, quiescent bool) {
	if !f.Tracking() {
		return nil, false, false
	}
	f.blockMu.Lock()
	defer f.blockMu.Unlock()
	if f.running != 0 || len(f.blocked) == 0 {
		return nil, false, false
	}
	for _, rec := range f.blocked {
		if rec.ready() {
			return nil, false, false
		}
	}
	stuck = make([]BlockInfo, 0, len(f.blocked))
	for _, rec := range f.blocked {
		stuck = append(stuck, rec.info)
		if rec.info.Deadline {
			anyDeadline = true
		}
	}
	sort.Slice(stuck, func(i, j int) bool {
		if stuck[i].Rank != stuck[j].Rank {
			return stuck[i].Rank < stuck[j].Rank
		}
		return stuck[i].Op < stuck[j].Op
	})
	return stuck, anyDeadline, true
}

// Abort tears the fabric down with err: every blocked and future
// fabric operation returns an error wrapping ErrAborted and err, and
// every synchronisation group is interrupted. The first Abort wins.
func (f *Fabric) Abort(err error) {
	f.abortMu.Lock()
	if f.abortErr == nil {
		if err == nil {
			err = ErrAborted
		}
		f.abortErr = err
		close(f.abortCh)
	}
	f.abortMu.Unlock()
	f.KickAll()
	f.group.Interrupt()
	f.mu.Lock()
	groups := make([]*vclock.Group, 0, len(f.groups))
	for _, g := range f.groups {
		groups = append(groups, g)
	}
	f.mu.Unlock()
	for _, g := range groups {
		g.Interrupt()
	}
}

// AbortErr returns the abort reason, or nil while the fabric is live.
func (f *Fabric) AbortErr() error {
	f.abortMu.Lock()
	defer f.abortMu.Unlock()
	return f.abortErr
}

// AbortChan is closed when the fabric aborts; channel waits in the
// protocol layer select on it.
func (f *Fabric) AbortChan() <-chan struct{} { return f.abortCh }

// KickAll wakes every goroutine blocked inside a mailbox so it can
// re-check its cancel channel or the abort state.
func (f *Fabric) KickAll() {
	for _, b := range f.boxes {
		b.kick()
	}
}

// WaitQuiesce polls the quiescence predicate from a detector
// goroutine: it blocks (in real time) until the run is quiescent or
// stop closes, returning the stuck report. Two consecutive positive
// snapshots are required, so a momentary all-blocked handoff between
// cond broadcasts cannot fire it.
func (f *Fabric) WaitQuiesce(stop <-chan struct{}, interval time.Duration, skipDeadline bool) ([]BlockInfo, bool) {
	if interval <= 0 {
		interval = 500 * time.Microsecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	streak := 0
	for {
		select {
		case <-stop:
			return nil, false
		case <-tick.C:
			stuck, anyDeadline, ok := f.Quiescent()
			if !ok || (skipDeadline && anyDeadline) {
				streak = 0
				continue
			}
			streak++
			if streak >= 2 {
				return stuck, true
			}
		}
	}
}
