package simnet

import (
	"errors"
	"testing"
	"time"

	"repro/internal/buf"
)

// drainVerdicts replays n envelope injections on (src→dst) and returns
// the verdict kinds.
func drainVerdicts(plan *FaultPlan, src, dst, n int) []FaultKind {
	fs := newFaultState(plan)
	out := make([]FaultKind, n)
	for i := range out {
		f, seq := fs.next(src, dst, 256, false)
		if seq != int64(i) {
			panic("sequence drift")
		}
		out[i] = f.Kind
	}
	return out
}

func TestFaultPlanDeterministic(t *testing.T) {
	plan := UniformFaults(1234, 0.3)
	a := drainVerdicts(plan, 0, 1, 500)
	b := drainVerdicts(plan, 0, 1, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("injection %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Distinct links and distinct seeds draw distinct streams.
	c := drainVerdicts(plan, 1, 0, 500)
	d := drainVerdicts(UniformFaults(1235, 0.3), 0, 1, 500)
	same := func(x []FaultKind) bool {
		for i := range a {
			if a[i] != x[i] {
				return false
			}
		}
		return true
	}
	if same(c) || same(d) {
		t.Fatal("link or seed does not key the draw stream")
	}
}

func TestFaultPlanRates(t *testing.T) {
	const n = 20000
	faults := 0
	for _, k := range drainVerdicts(UniformFaults(7, 0.12), 0, 1, n) {
		if k != FaultNone {
			faults++
		}
	}
	got := float64(faults) / n
	if got < 0.09 || got > 0.15 {
		t.Fatalf("fault rate %.4f, want ≈0.12", got)
	}
}

func TestScriptedFaultHitsExactInjection(t *testing.T) {
	plan := &FaultPlan{
		Seed:     1,
		Scripted: []ScriptedFault{{Src: 0, Dst: 1, Seq: 2, Kind: FaultDrop}},
	}
	ks := drainVerdicts(plan, 0, 1, 5)
	for i, k := range ks {
		want := FaultNone
		if i == 2 {
			want = FaultDrop
		}
		if k != want {
			t.Fatalf("injection %d = %v, want %v", i, k, want)
		}
	}
	// The payload counter is independent of the envelope counter.
	fs := newFaultState(plan)
	for i := 0; i < 5; i++ {
		if f, _ := fs.next(0, 1, 64, true); f.Kind != FaultNone {
			t.Fatalf("payload injection %d drew scripted envelope fault", i)
		}
	}
}

func TestTruncateAttachesShortDeliveryError(t *testing.T) {
	f := New(2)
	f.SetFaultPlan(&FaultPlan{
		Seed:     3,
		Scripted: []ScriptedFault{{Src: 0, Dst: 1, Seq: 0, Kind: FaultTruncate}},
	})
	f.Deliver(1, &Message{Src: 0, Tag: 0, Kind: KindEager, Payload: buf.Alloc(64), Bytes: 64})
	m := f.Match(1, 0, 0, 0)
	if m == nil {
		t.Fatal("truncated message not delivered")
	}
	if !errors.Is(m.Err, ErrShortDelivery) {
		t.Fatalf("Err = %v, want ErrShortDelivery", m.Err)
	}
	if int64(m.Payload.Len()) >= m.Bytes {
		t.Fatalf("payload %d bytes not shortened below %d", m.Payload.Len(), m.Bytes)
	}
}

func TestDuplicateConsumedOnce(t *testing.T) {
	f := New(2)
	f.SetFaultPlan(&FaultPlan{
		Seed:     9,
		Scripted: []ScriptedFault{{Src: 0, Dst: 1, Seq: 0, Kind: FaultDuplicate}},
	})
	f.Deliver(1, &Message{Src: 0, Tag: 0, Kind: KindEager, Payload: buf.Alloc(8), Bytes: 8})
	f.Deliver(1, &Message{Src: 0, Tag: 0, Kind: KindEager, Payload: buf.Alloc(8), Bytes: 8})
	// Two injections, one duplicated: three queued envelopes, but the
	// duplicate pair shares a sequence and must be consumed once.
	if m := f.Match(1, 0, 0, 0); m == nil || m.Seq != 0 {
		t.Fatalf("first match %+v", m)
	}
	if m := f.Match(1, 0, 0, 0); m == nil || m.Seq != 1 {
		t.Fatalf("second match %+v, want seq 1 (duplicate deduped)", m)
	}
	if m := f.TryMatch(1, 0, 0, 0); m != nil {
		t.Fatalf("stale duplicate still matchable: %+v", m)
	}
}

func TestReorderHealedBySequenceMatching(t *testing.T) {
	f := New(2)
	f.SetFaultPlan(&FaultPlan{
		Seed:     5,
		Scripted: []ScriptedFault{{Src: 0, Dst: 1, Seq: 1, Kind: FaultReorder}},
	})
	f.Deliver(1, &Message{Src: 0, Tag: 0, Kind: KindEager, Bytes: 1})
	f.Deliver(1, &Message{Src: 0, Tag: 0, Kind: KindEager, Bytes: 2})
	// Injection 1 was queued at the front; sequence-ordered matching
	// must still deliver injection 0 first.
	if m := f.Match(1, 0, 0, 0); m.Seq != 0 {
		t.Fatalf("first match seq %d, want 0", m.Seq)
	}
	if m := f.Match(1, 0, 0, 0); m.Seq != 1 {
		t.Fatalf("second match seq %d, want 1", m.Seq)
	}
}

func TestDelayPushesArrival(t *testing.T) {
	f := New(2)
	f.SetFaultPlan(&FaultPlan{
		Seed:     8,
		Scripted: []ScriptedFault{{Src: 0, Dst: 1, Seq: 0, Kind: FaultDelay}},
	})
	f.Deliver(1, &Message{Src: 0, Tag: 0, Kind: KindEager, Bytes: 1, Arrival: 100})
	if m := f.Match(1, 0, 0, 0); int64(m.Arrival) != 100+int64(DefaultDelaySpan) {
		t.Fatalf("arrival %d, want %d", m.Arrival, 100+int64(DefaultDelaySpan))
	}
}

func TestRendezvousDamageDegradesToDrop(t *testing.T) {
	f := New(2)
	f.SetFaultPlan(&FaultPlan{
		Seed:     2,
		Scripted: []ScriptedFault{{Src: 0, Dst: 1, Seq: 0, Kind: FaultCorrupt}},
	})
	m := &Message{Src: 0, Tag: 0, Kind: KindRendezvous, Bytes: 1 << 20}
	if v := f.Deliver(1, m); v.Kind != FaultDrop {
		t.Fatalf("damaged RTS verdict %v, want drop", v.Kind)
	}
	if f.TryMatch(1, 0, 0, 0) != nil {
		t.Fatal("dropped RTS was enqueued")
	}
}

func TestQuiescenceDetection(t *testing.T) {
	f := New(2)
	f.EnableTracking()
	f.WorkerStart()
	f.WorkerStart()

	// Both workers runnable: not quiescent.
	if _, _, q := f.Quiescent(); q {
		t.Fatal("quiescent with runnable workers")
	}
	relA := f.EnterBlocked(BlockInfo{Rank: 0, Op: "recv", Src: 1, Tag: 7},
		func() bool { return false })
	if _, _, q := f.Quiescent(); q {
		t.Fatal("quiescent with one worker runnable")
	}
	ready := false
	relB := f.EnterBlocked(BlockInfo{Rank: 1, Op: "recv", Src: 0, Tag: 7, Deadline: true},
		func() bool { return ready })
	stuck, anyDeadline, q := f.Quiescent()
	if !q || !anyDeadline || len(stuck) != 2 {
		t.Fatalf("quiescent=%v deadline=%v stuck=%v", q, anyDeadline, stuck)
	}
	if stuck[0].Rank != 0 || stuck[1].Rank != 1 {
		t.Fatalf("report not rank-sorted: %v", stuck)
	}

	// A wait that could complete suppresses the verdict.
	ready = true
	if _, _, q := f.Quiescent(); q {
		t.Fatal("quiescent with a ready wait")
	}
	ready = false
	if stuck, _ := f.WaitQuiesce(nil, time.Millisecond, false); len(stuck) != 2 {
		t.Fatalf("WaitQuiesce stuck=%v", stuck)
	}
	relA()
	relB()
	f.WorkerDone()
	f.WorkerDone()
}

func TestAbortFirstWins(t *testing.T) {
	f := New(2)
	first := errors.New("first")
	f.Abort(first)
	f.Abort(errors.New("second"))
	if !errors.Is(f.AbortErr(), first) {
		t.Fatalf("AbortErr = %v, want the first abort", f.AbortErr())
	}
	select {
	case <-f.AbortChan():
	default:
		t.Fatal("abort channel not closed")
	}
	if _, err := f.MatchCancel(0, 0, AnySource, AnyTag, nil); !errors.Is(err, ErrAborted) {
		t.Fatalf("MatchCancel after abort = %v, want ErrAborted", err)
	}
}

func TestMatchCancelObservesCancel(t *testing.T) {
	f := New(2)
	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := f.MatchCancel(0, 0, AnySource, AnyTag, cancel)
		done <- err
	}()
	close(cancel)
	f.KickAll()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("MatchCancel did not observe the cancel")
	}
}

func TestMessageWakeCounter(t *testing.T) {
	m := &Message{}
	if m.WakeSeq() != 0 {
		t.Fatal("uninitialised wake counter not zero")
	}
	m.NoteWake() // inert without InitWake
	if m.WakeSeq() != 0 {
		t.Fatal("NoteWake counted without InitWake")
	}
	m.InitWake()
	m.NoteWake()
	dup := *m // fabric duplicates share the counter
	dup.NoteWake()
	if m.WakeSeq() != 2 || dup.WakeSeq() != 2 {
		t.Fatalf("wake counts diverged: %d vs %d", m.WakeSeq(), dup.WakeSeq())
	}
}
