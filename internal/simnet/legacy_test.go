package simnet

import "sync/atomic"

// legacyMailbox is the pre-sharding reference matcher: one flat queue
// scanned under a single lock (here lock-free: the differential tests
// drive it single-threaded). It reproduces the historical mailbox
// byte-for-byte — put with whole-queue prepend for reorder faults, the
// first-position-then-lower-Seq selection rule, and (src, seq)
// consumed-set deduplication — so the sharded matcher can be verified
// to deliver the exact same envelope for the exact same history.
type legacyMailbox struct {
	msgs     []*Message
	dedup    bool
	consumed map[uint64]struct{}
	takes    atomic.Int64
}

// legacySeqKey folds (src, seq) into one dedup key, exactly as the
// historical seqKey did.
func legacySeqKey(m *Message) uint64 {
	return uint64(m.Src)<<48 | uint64(m.Seq)&((1<<48)-1)
}

func (b *legacyMailbox) put(m *Message, front bool) {
	if front {
		b.msgs = append([]*Message{m}, b.msgs...)
	} else {
		b.msgs = append(b.msgs, m)
	}
}

// selectIdx is the historical selection rule: take the first queue
// position whose envelope matches, then prefer a lower link-sequence
// number from the same source. Stale duplicate copies (consumed
// sequences) are dropped on the way.
func (b *legacyMailbox) selectIdx(ctx, src, tag int) int {
	if b.dedup && len(b.consumed) > 0 {
		kept := b.msgs[:0]
		for _, m := range b.msgs {
			if _, dup := b.consumed[legacySeqKey(m)]; dup {
				continue
			}
			kept = append(kept, m)
		}
		for i := len(kept); i < len(b.msgs); i++ {
			b.msgs[i] = nil
		}
		b.msgs = kept
	}
	best := -1
	for i, m := range b.msgs {
		if !m.matches(ctx, src, tag) {
			continue
		}
		if best == -1 {
			best = i
			continue
		}
		if m.Src == b.msgs[best].Src && m.Seq < b.msgs[best].Seq {
			best = i
		}
	}
	return best
}

// tryTake removes and returns the selected envelope, or nil.
func (b *legacyMailbox) tryTake(ctx, src, tag int) *Message {
	i := b.selectIdx(ctx, src, tag)
	if i < 0 {
		return nil
	}
	m := b.msgs[i]
	b.msgs = append(b.msgs[:i], b.msgs[i+1:]...)
	if b.dedup {
		if b.consumed == nil {
			b.consumed = make(map[uint64]struct{})
		}
		b.consumed[legacySeqKey(m)] = struct{}{}
	}
	b.takes.Add(1)
	return m
}

// peek returns the selected envelope without removing it, or nil.
func (b *legacyMailbox) peek(ctx, src, tag int) *Message {
	if i := b.selectIdx(ctx, src, tag); i >= 0 {
		return b.msgs[i]
	}
	return nil
}
