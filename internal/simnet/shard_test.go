package simnet

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/buf"
)

// ---------------------------------------------------------------------
// Randomized differential: the sharded matcher must deliver the exact
// same envelope as the legacy whole-mailbox scan for the same put/take
// history — including wildcards, reorder front-puts, duplicate copies
// and dedup.
// ---------------------------------------------------------------------

func runDifferential(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	shard := newMailbox()
	legacy := &legacyMailbox{}

	// Fault mode arms dedup and stamps link sequences (as Deliver does
	// under an armed plan); clean mode leaves Seq zero everywhere.
	faultMode := rng.Intn(2) == 0
	if faultMode {
		shard.dedup.Store(true)
		legacy.dedup = true
	}
	nctx := 1 + rng.Intn(3)
	nsrc := 1 + rng.Intn(6)
	ntag := 1 + rng.Intn(3)

	// Per-source link sequence counters, shared across contexts like
	// the real per-(src→dst) link counters.
	seq := make([]int64, nsrc)
	var id int64

	putBoth := func(m *Message, front bool) {
		shard.put(m, front)
		legacy.put(m, front)
	}

	for op := 0; op < 4000; op++ {
		if rng.Float64() < 0.55 {
			src := rng.Intn(nsrc)
			m := &Message{
				Ctx: rng.Intn(nctx), Src: src, Tag: rng.Intn(ntag),
				Bytes: id,
			}
			id++
			front := false
			if faultMode {
				m.Seq = seq[src]
				seq[src]++
				front = rng.Float64() < 0.15 // reorder fault
			}
			putBoth(m, front)
			if faultMode && rng.Float64() < 0.1 {
				dup := *m // duplicate fault: same Seq, consumed once
				putBoth(&dup, false)
			}
			continue
		}
		ctx := rng.Intn(nctx)
		src := rng.Intn(nsrc)
		if rng.Float64() < 0.35 {
			src = AnySource
		}
		tag := rng.Intn(ntag)
		if rng.Float64() < 0.35 {
			tag = AnyTag
		}
		if rng.Float64() < 0.2 {
			a, b := shard.peek(ctx, src, tag), legacy.peek(ctx, src, tag)
			if a != b {
				t.Fatalf("seed %d op %d: peek(ctx=%d src=%d tag=%d) sharded %+v legacy %+v",
					seed, op, ctx, src, tag, a, b)
			}
			continue
		}
		a, b := shard.tryTake(ctx, src, tag), legacy.tryTake(ctx, src, tag)
		if a != b {
			t.Fatalf("seed %d op %d: take(ctx=%d src=%d tag=%d) sharded %+v legacy %+v",
				seed, op, ctx, src, tag, a, b)
		}
	}

	// Drain both with pure wildcards per context: the full remaining
	// match order must agree.
	for ctx := 0; ctx < nctx; ctx++ {
		for i := 0; ; i++ {
			a, b := shard.tryTake(ctx, AnySource, AnyTag), legacy.tryTake(ctx, AnySource, AnyTag)
			if a != b {
				t.Fatalf("seed %d drain ctx %d step %d: sharded %+v legacy %+v", seed, ctx, i, a, b)
			}
			if a == nil {
				break
			}
		}
	}
	if got, want := shard.takes.Load(), legacy.takes.Load(); got != want {
		t.Fatalf("seed %d: takes diverged: sharded %d legacy %d", seed, got, want)
	}
}

func TestShardDifferentialRandom(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runDifferential(t, seed)
		})
	}
}

// ---------------------------------------------------------------------
// Matching-order semantics through the public fabric API.
// ---------------------------------------------------------------------

// TestAnySourceArrivalOrder pins wildcard fairness: an AnySource
// receive takes the earliest-arrived envelope across all per-source
// shards, not whichever shard the map iterates first.
func TestAnySourceArrivalOrder(t *testing.T) {
	f := New(8)
	order := []int{3, 1, 5, 1, 7, 2, 3}
	for i, src := range order {
		f.Deliver(0, &Message{Src: src, Tag: 1, Kind: KindEager, Bytes: int64(i)})
	}
	for i, src := range order {
		m := f.Match(0, 0, AnySource, AnyTag)
		if m == nil || m.Src != src || m.Bytes != int64(i) {
			t.Fatalf("wildcard match %d: got %+v, want src %d id %d", i, m, src, i)
		}
	}
}

// TestAnyTagWithinSource pins that AnyTag on a specific source honours
// arrival order within the shard while a concrete tag skips past
// non-matching envelopes.
func TestAnyTagWithinSource(t *testing.T) {
	f := New(2)
	for i, tag := range []int{4, 9, 4} {
		f.Deliver(1, &Message{Src: 0, Tag: tag, Kind: KindEager, Bytes: int64(i)})
	}
	if m := f.Match(1, 0, 0, 9); m.Bytes != 1 {
		t.Fatalf("tag-9 match got id %d, want 1", m.Bytes)
	}
	if m := f.Match(1, 0, 0, AnyTag); m.Bytes != 0 {
		t.Fatalf("AnyTag match got id %d, want 0 (earliest)", m.Bytes)
	}
	if m := f.Match(1, 0, 0, AnyTag); m.Bytes != 2 {
		t.Fatalf("AnyTag match got id %d, want 2", m.Bytes)
	}
}

// TestCrossCommunicatorIsolation pins that sharded queues keep split
// communicators invisible to each other, including under wildcards.
func TestCrossCommunicatorIsolation(t *testing.T) {
	f := New(4)
	f.Deliver(0, &Message{Ctx: 1, Src: 2, Tag: 7, Kind: KindEager, Bytes: 100})
	f.Deliver(0, &Message{Ctx: 2, Src: 2, Tag: 7, Kind: KindEager, Bytes: 200})
	f.Deliver(0, &Message{Ctx: 1, Src: 3, Tag: 7, Kind: KindEager, Bytes: 101})

	if m := f.TryMatch(0, 3, AnySource, AnyTag); m != nil {
		t.Fatalf("ctx 3 sees foreign traffic: %+v", m)
	}
	if m := f.Match(0, 2, AnySource, AnyTag); m.Bytes != 200 {
		t.Fatalf("ctx 2 wildcard got id %d, want 200", m.Bytes)
	}
	if m := f.Match(0, 1, AnySource, AnyTag); m.Bytes != 100 {
		t.Fatalf("ctx 1 wildcard got id %d, want 100 (earliest in ctx)", m.Bytes)
	}
	if m := f.Match(0, 1, 3, 7); m.Bytes != 101 {
		t.Fatalf("ctx 1 src 3 got id %d, want 101", m.Bytes)
	}
}

// TestFrontPutOvertakes pins the reorder-fault semantics on the
// sharded queues: a front insertion orders before everything queued,
// and a later front insertion overtakes an earlier one — the legacy
// whole-mailbox prepend behaviour via negative tickets.
func TestFrontPutOvertakes(t *testing.T) {
	b := newMailbox()
	mk := func(src int, id int64) *Message { return &Message{Src: src, Tag: 1, Bytes: id} }
	b.put(mk(0, 0), false)
	b.put(mk(1, 1), false)
	b.put(mk(2, 2), true) // reorder: jumps the queue
	b.put(mk(0, 3), true) // later reorder: jumps further
	want := []int64{3, 2, 0, 1}
	for i, id := range want {
		m := b.tryTake(0, AnySource, AnyTag)
		if m == nil || m.Bytes != id {
			t.Fatalf("take %d: got %+v, want id %d", i, m, id)
		}
	}
}

// TestShardedDuplicateConsumedOnce pins per-shard dedup: a duplicate
// fault's second copy is invisible once the sequence was consumed.
func TestShardedDuplicateConsumedOnce(t *testing.T) {
	b := newMailbox()
	b.dedup.Store(true)
	m := &Message{Src: 1, Tag: 2, Seq: 5, Bytes: 50}
	dup := *m
	b.put(m, false)
	b.put(&dup, false)
	b.put(&Message{Src: 1, Tag: 2, Seq: 6, Bytes: 60}, false)
	if got := b.tryTake(0, 1, 2); got.Seq != 5 {
		t.Fatalf("first take seq %d, want 5", got.Seq)
	}
	if got := b.tryTake(0, 1, 2); got == nil || got.Seq != 6 {
		t.Fatalf("second take %+v, want seq 6 (duplicate skipped)", got)
	}
	if got := b.tryTake(0, 1, 2); got != nil {
		t.Fatalf("third take %+v, want nil", got)
	}
}

// TestConcurrentMatchConservation hammers one mailbox from many
// senders while specific-source and wildcard receivers drain it
// concurrently: every envelope must be matched exactly once. Run under
// -race this is the sharded queues' data-race coverage.
func TestConcurrentMatchConservation(t *testing.T) {
	const (
		srcs   = 8
		perSrc = 200 // per tag class
	)
	f := New(srcs + 1)
	dst := srcs // rank receiving everything

	var wg sync.WaitGroup
	for s := 0; s < srcs; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSrc; i++ {
				// tag 1 is consumed by the specific receiver of s,
				// tag 2 by the shared wildcard pool — disjoint so a
				// wildcard can never starve a specific receive.
				f.Deliver(dst, &Message{Src: s, Tag: 1, Kind: KindEager, Bytes: int64(s*perSrc + i)})
				f.Deliver(dst, &Message{Src: s, Tag: 2, Kind: KindEager, Bytes: int64((srcs+s)*perSrc + i)})
			}
		}(s)
	}

	got := make(chan int64, 2*srcs*perSrc)
	for s := 0; s < srcs; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			prev := int64(-1)
			for i := 0; i < perSrc; i++ {
				m := f.Match(dst, 0, s, 1)
				if m.Bytes <= prev {
					t.Errorf("src %d: pairwise order broken: %d after %d", s, m.Bytes, prev)
					return
				}
				prev = m.Bytes
				got <- m.Bytes
			}
		}(s)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < srcs*perSrc/4; i++ {
				got <- f.Match(dst, 0, AnySource, 2).Bytes
			}
		}()
	}
	wg.Wait()
	close(got)

	seen := make(map[int64]bool, 2*srcs*perSrc)
	for id := range got {
		if seen[id] {
			t.Fatalf("envelope %d matched twice", id)
		}
		seen[id] = true
	}
	if len(seen) != 2*srcs*perSrc {
		t.Fatalf("matched %d envelopes, want %d", len(seen), 2*srcs*perSrc)
	}

	st := f.MatchStatsSnapshot()
	if st.FastTakes != srcs*perSrc || st.WildTakes != srcs*perSrc {
		t.Fatalf("match stats %+v, want %d fast and %d wild", st, srcs*perSrc, srcs*perSrc)
	}
	if st.Queues == 0 {
		t.Fatalf("match stats report zero live queues")
	}
}

// TestMatchStatsAttribution pins the fast/wild split and queue count.
func TestMatchStatsAttribution(t *testing.T) {
	f := New(4)
	f.Deliver(0, &Message{Src: 1, Tag: 1, Kind: KindEager, Payload: buf.Virtual(8), Bytes: 8})
	f.Deliver(0, &Message{Src: 2, Tag: 1, Kind: KindEager, Payload: buf.Virtual(8), Bytes: 8})
	f.Deliver(0, &Message{Src: 3, Tag: 1, Kind: KindEager, Payload: buf.Virtual(8), Bytes: 8})
	before := f.MatchStatsSnapshot()
	f.Match(0, 0, 1, 1)
	f.Match(0, 0, AnySource, AnyTag)
	d := f.MatchStatsSnapshot().Sub(before)
	if d.FastTakes != 1 || d.WildTakes != 1 {
		t.Fatalf("delta %+v, want 1 fast / 1 wild", d)
	}
	if d.Queues != 3 {
		t.Fatalf("live queues %d, want 3", d.Queues)
	}
}
