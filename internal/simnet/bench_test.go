package simnet

import (
	"fmt"
	"testing"
	"time"
)

// matchScaleFabric builds an n-rank fabric with rank 0's mailbox
// pre-loaded with one envelope per source, so every steady-state op
// below runs against a mailbox holding n-1 live shards.
func matchScaleFabric(n int) *Fabric {
	f := New(n)
	for s := 1; s < n; s++ {
		f.Deliver(0, &Message{Src: s, Tag: 1, Kind: KindEager, Bytes: 8})
	}
	return f
}

// matchScaleOp is one steady-state matching operation: refill from the
// next source, then match — specific-source (the sharded fast path) or
// wildcard (the all-shard slow path).
func matchScaleOp(f *Fabric, src int, wild bool) {
	f.Deliver(0, &Message{Src: src, Tag: 1, Kind: KindEager, Bytes: 8})
	if wild {
		f.Match(0, 0, AnySource, 1)
	} else {
		f.Match(0, 0, src, 1)
	}
}

// BenchmarkMatchScale measures matching throughput against rank count,
// with and without wildcard receivers. The fast path must stay flat as
// ranks grow (per-(ctx,src) shards make it O(1)); the wildcard path
// scans every live shard and is reported for contrast. The CI smoke
// runs each cell once; TestMatchScale pins the flatness numerically.
func BenchmarkMatchScale(b *testing.B) {
	for _, ranks := range []int{8, 64, 256, 1024} {
		for _, wild := range []bool{false, true} {
			b.Run(fmt.Sprintf("ranks=%d/wild=%v", ranks, wild), func(b *testing.B) {
				f := matchScaleFabric(ranks)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					matchScaleOp(f, 1+i%(ranks-1), wild)
				}
			})
		}
	}
}

// matchScaleCost returns the best-of-trials per-op cost of the
// specific-source fast path at the given rank count.
func matchScaleCost(ranks, ops, trials int) time.Duration {
	f := matchScaleFabric(ranks)
	best := time.Duration(1<<63 - 1)
	for t := 0; t < trials; t++ {
		start := time.Now()
		for i := 0; i < ops; i++ {
			matchScaleOp(f, 1+i%(ranks-1), false)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best / time.Duration(ops)
}

// TestMatchScale is the 1024-rank no-regression smoke: the sharded
// fast path's per-op cost may not grow more than 2x from 8 to 1024
// ranks (the legacy whole-mailbox scan was linear in live sources, a
// >100x blowup on this workload). The wall-time assertion is skipped
// under the race detector — instrumented timings are meaningless — but
// the 1024-rank functional pass still runs there for race coverage.
func TestMatchScale(t *testing.T) {
	ops, trials := 20000, 5
	if raceEnabled {
		ops, trials = 2000, 1
	}
	small := matchScaleCost(8, ops, trials)
	large := matchScaleCost(1024, ops, trials)
	t.Logf("per-op match cost: 8 ranks %v, 1024 ranks %v", small, large)
	if raceEnabled {
		t.Skip("race detector build: functional pass only, no wall-time gate")
	}
	// Guard against timer noise on very fast machines: only enforce
	// the ratio once the large-side cost is measurable.
	if large > 200*time.Nanosecond && large > 2*small {
		t.Fatalf("match cost not flat: %v at 8 ranks vs %v at 1024 ranks (>2x)", small, large)
	}
}
