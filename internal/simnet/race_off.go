//go:build !race

package simnet

// raceEnabled reports whether the race detector instruments this
// build; wall-time performance assertions are skipped under it.
const raceEnabled = false
