package simnet

import (
	"sync"
	"testing"

	"repro/internal/buf"
)

func TestDeliverMatch(t *testing.T) {
	f := New(2)
	f.Deliver(1, &Message{Src: 0, Tag: 5, Kind: KindEager, Payload: buf.Alloc(8), Bytes: 8})
	m := f.Match(1, 0, 0, 5)
	if m.Src != 0 || m.Tag != 5 || m.Bytes != 8 {
		t.Fatalf("matched %+v", m)
	}
}

func TestMatchBlocksUntilDelivery(t *testing.T) {
	f := New(2)
	done := make(chan *Message)
	go func() { done <- f.Match(1, 0, 0, 1) }()
	select {
	case <-done:
		t.Fatal("Match returned before delivery")
	default:
	}
	f.Deliver(1, &Message{Src: 0, Tag: 1, Kind: KindEager, Bytes: 4})
	if m := <-done; m.Bytes != 4 {
		t.Fatalf("got %+v", m)
	}
}

func TestPairwiseFIFO(t *testing.T) {
	f := New(2)
	for i := int64(0); i < 10; i++ {
		f.Deliver(1, &Message{Src: 0, Tag: 3, Kind: KindEager, Bytes: i})
	}
	for i := int64(0); i < 10; i++ {
		if m := f.Match(1, 0, 0, 3); m.Bytes != i {
			t.Fatalf("message %d out of order: %+v", i, m)
		}
	}
}

func TestWildcardMatching(t *testing.T) {
	f := New(3)
	f.Deliver(2, &Message{Src: 1, Tag: 9, Kind: KindEager, Bytes: 1})
	if m := f.Match(2, 0, AnySource, AnyTag); m.Src != 1 || m.Tag != 9 {
		t.Fatalf("wildcard matched %+v", m)
	}
}

func TestContextIsolation(t *testing.T) {
	f := New(2)
	f.Deliver(1, &Message{Ctx: 7, Src: 0, Tag: 0, Kind: KindEager, Bytes: 77})
	f.Deliver(1, &Message{Ctx: 0, Src: 0, Tag: 0, Kind: KindEager, Bytes: 11})
	// A ctx-0 receive must skip the ctx-7 envelope even though it was
	// delivered first.
	if m := f.Match(1, 0, 0, 0); m.Bytes != 11 {
		t.Fatalf("context leak: %+v", m)
	}
	if m := f.Match(1, 7, 0, 0); m.Bytes != 77 {
		t.Fatalf("ctx-7 message lost: %+v", m)
	}
}

func TestTagSelectiveMatchLeavesOthers(t *testing.T) {
	f := New(2)
	f.Deliver(1, &Message{Src: 0, Tag: 1, Kind: KindEager, Bytes: 1})
	f.Deliver(1, &Message{Src: 0, Tag: 2, Kind: KindEager, Bytes: 2})
	if m := f.Match(1, 0, 0, 2); m.Bytes != 2 {
		t.Fatalf("tag-2 match got %+v", m)
	}
	if m := f.TryMatch(1, 0, 0, 1); m == nil || m.Bytes != 1 {
		t.Fatalf("tag-1 message lost")
	}
}

func TestTryMatchNonDestructive(t *testing.T) {
	f := New(2)
	if m := f.TryMatch(1, 0, AnySource, AnyTag); m != nil {
		t.Fatal("TryMatch invented a message")
	}
	f.Deliver(1, &Message{Src: 0, Tag: 0, Kind: KindEager, Bytes: 5})
	if m := f.TryMatch(1, 0, 0, 0); m == nil {
		t.Fatal("TryMatch missed a delivered message")
	}
	// Still matchable afterwards.
	if m := f.Match(1, 0, 0, 0); m.Bytes != 5 {
		t.Fatal("TryMatch consumed the message")
	}
}

func TestCounters(t *testing.T) {
	f := New(2)
	f.Deliver(1, &Message{Src: 0, Tag: 0, Kind: KindEager, Bytes: 100})
	f.Deliver(1, &Message{Src: 0, Tag: 0, Kind: KindRendezvous, Bytes: 200})
	f.Match(1, 0, 0, 0)
	c0 := f.CountersFor(0)
	if c0.EagerSends != 1 || c0.RendezvousSends != 1 || c0.BytesInjected != 300 {
		t.Fatalf("sender counters = %+v", c0)
	}
	c1 := f.CountersFor(1)
	if c1.MessagesMatched != 1 || c1.BytesDelivered != 100 {
		t.Fatalf("receiver counters = %+v", c1)
	}
}

func TestGroupForSharedAndSized(t *testing.T) {
	f := New(4)
	g1 := f.GroupFor(3, 2)
	g2 := f.GroupFor(3, 2)
	if g1 != g2 {
		t.Fatal("GroupFor did not share")
	}
	if f.GroupFor(0, 4) != f.Group() {
		t.Fatal("ctx 0 is not the world group")
	}
}

func TestGroupForSizeMismatchPanics(t *testing.T) {
	f := New(4)
	f.GroupFor(5, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch accepted")
		}
	}()
	f.GroupFor(5, 3)
}

func TestAllocCtxBlock(t *testing.T) {
	f := New(2)
	a := f.AllocCtxBlock(3)
	b := f.AllocCtxBlock(1)
	if a < 1 {
		t.Fatalf("ctx block starts at %d", a)
	}
	if b != a+3 {
		t.Fatalf("blocks overlap: %d then %d", a, b)
	}
}

func TestSharedRegistry(t *testing.T) {
	f := New(2)
	calls := 0
	mk := func() interface{} { calls++; return &struct{ x int }{42} }
	v1 := f.Shared("k", mk)
	v2 := f.Shared("k", mk)
	if v1 != v2 || calls != 1 {
		t.Fatalf("Shared created %d times", calls)
	}
	f.DropShared("k")
	f.Shared("k", mk)
	if calls != 2 {
		t.Fatal("DropShared did not clear the entry")
	}
}

func TestConcurrentDeliverMatch(t *testing.T) {
	f := New(2)
	const k = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < k; i++ {
			f.Deliver(1, &Message{Src: 0, Tag: i % 7, Kind: KindEager, Bytes: int64(i)})
		}
	}()
	seen := make([]bool, k)
	go func() {
		defer wg.Done()
		for i := 0; i < k; i++ {
			m := f.Match(1, 0, AnySource, AnyTag)
			seen[m.Bytes] = true
		}
	}()
	wg.Wait()
	for i, ok := range seen {
		if !ok {
			t.Fatalf("message %d lost", i)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindEager.String() != "eager" || KindRendezvous.String() != "rendezvous" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestBadRankPanics(t *testing.T) {
	f := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range rank accepted")
		}
	}()
	f.Deliver(5, &Message{Src: 0})
}
