package datatype

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/buf"
)

// pipelineLayouts builds the committed layouts the pipeline
// differentials sweep: the canonical every-other vector, a blocked
// stride, an irregular indexed table, and a gapped layout over a
// resized (padded-extent) base — the dense-base-assumption class.
func pipelineLayouts(t testing.TB) map[string]*Type {
	t.Helper()
	mk := func(ty *Type, err error) *Type {
		if err != nil {
			t.Fatal(err)
		}
		if err := ty.Commit(); err != nil {
			t.Fatal(err)
		}
		return ty
	}
	rz := mk(Resized(Float64, 0, 24))
	return map[string]*Type{
		"everyOther": mk(Vector(4096, 1, 2, Float64)),
		"blocked16":  mk(Vector(256, 16, 24, Float64)),
		"indexed":    mk(Indexed([]int{3, 1, 5, 2}, []int{0, 7, 11, 29}, Float64)),
		"resized":    mk(Vector(512, 2, 3, rz)),
	}
}

// TestChunkPipelineMatchesPack pins the pipeline's stream byte-for-byte
// against the whole-message compiled pack across layouts, chunk sizes
// and ring depths, and checks the chunk attribution.
func TestChunkPipelineMatchesPack(t *testing.T) {
	for name, ty := range pipelineLayouts(t) {
		for _, count := range []int{1, 3} {
			want := make([]byte, ty.PackSize(count))
			src := buf.Alloc(userBufLen(ty, count))
			src.FillPattern(0x5C)
			if _, err := ty.Pack(src, count, buf.FromBytes(want)); err != nil {
				t.Fatal(err)
			}
			plan, err := ty.CompilePlan(count)
			if err != nil {
				t.Fatal(err)
			}
			for _, chunk := range []int64{64, 1 << 10, 1 << 20} {
				for _, depth := range []int{1, 2, 4} {
					t.Run(fmt.Sprintf("%s/count%d/chunk%d/depth%d", name, count, chunk, depth), func(t *testing.T) {
						before := PlanStatsSnapshot()
						cp, err := NewChunkPipeline(plan, src, 0, plan.Bytes(), chunk, depth, 1)
						if err != nil {
							t.Fatal(err)
						}
						defer cp.Close()
						got := make([]byte, 0, len(want))
						chunks := 0
						for {
							ch, ok := cp.Next()
							if !ok {
								break
							}
							if ch.Lo != int64(len(got)) {
								t.Fatalf("chunk starts at %d, want %d (in-order delivery)", ch.Lo, len(got))
							}
							got = append(got, ch.Data.Bytes()...)
							cp.Recycle(ch)
							chunks++
						}
						if !bytes.Equal(got, want) {
							t.Fatalf("pipelined stream differs from whole-message pack (%d vs %d bytes)", len(got), len(want))
						}
						if int64(chunks) != cp.Chunks() {
							t.Fatalf("yielded %d chunks, Chunks() = %d", chunks, cp.Chunks())
						}
						d := PlanStatsSnapshot().Sub(before)
						if d.PipelinedOps != int64(chunks) || d.PipelinedBytes != plan.Bytes() {
							t.Fatalf("pipelined attribution %d/%dB, want %d/%dB", d.PipelinedOps, d.PipelinedBytes, chunks, plan.Bytes())
						}
					})
				}
			}
		}
	}
}

// TestChunkPipelineRange pins mid-stream ranges against PackRange.
func TestChunkPipelineRange(t *testing.T) {
	ty := pipelineLayouts(t)["indexed"]
	const count = 5
	plan, err := ty.CompilePlan(count)
	if err != nil {
		t.Fatal(err)
	}
	src := buf.Alloc(userBufLen(ty, count))
	src.FillPattern(0x33)
	total := plan.Bytes()
	for _, r := range [][2]int64{{0, total}, {1, total - 1}, {total / 3, 2 * total / 3}, {7, 7}} {
		lo, hi := r[0], r[1]
		want := buf.Alloc(int(hi - lo))
		if err := plan.PackRange(src, want, lo, hi); err != nil {
			t.Fatal(err)
		}
		cp, err := NewChunkPipeline(plan, src, lo, hi, 13, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 0, hi-lo)
		for {
			ch, ok := cp.Next()
			if !ok {
				break
			}
			got = append(got, ch.Data.Bytes()...)
			cp.Recycle(ch)
		}
		cp.Close()
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("range [%d,%d): pipelined stream differs from PackRange", lo, hi)
		}
	}
}

// TestChunkPipelineSlotRing pins the fixed-footprint contract: a
// pipeline draws exactly depth pooled slots, recycles them in place,
// and returns all of them at Close — full drains and early exits
// alike.
func TestChunkPipelineSlotRing(t *testing.T) {
	ty := pipelineLayouts(t)["everyOther"]
	plan, err := ty.CompilePlan(1)
	if err != nil {
		t.Fatal(err)
	}
	src := buf.Alloc(userBufLen(ty, 1))
	for _, drain := range []int{-1, 0, 1} { // full drain, none, one chunk
		before := buf.PoolStatsSnapshot()
		cp, err := NewChunkPipeline(plan, src, 0, plan.Bytes(), 512, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		taken := 0
		for drain < 0 || taken < drain {
			ch, ok := cp.Next()
			if !ok {
				break
			}
			cp.Recycle(ch)
			taken++
		}
		cp.Close()
		d := buf.PoolStatsSnapshot().Sub(before)
		if d.Gets != 3 {
			t.Fatalf("drain=%d: drew %d pooled slots, want exactly the depth-3 ring", drain, d.Gets)
		}
		if d.Puts != 3 {
			t.Fatalf("drain=%d: returned %d slots, want 3", drain, d.Puts)
		}
		if d.Shards[2].Gets != 3 || d.Shards[2].Puts != 3 {
			t.Fatalf("drain=%d: ring not attributed to shard 2: %+v", drain, d.Shards[2])
		}
	}
}

// TestChunkPipelineVirtual pins that virtual users move no bytes and
// draw no pooled storage, while still attributing the chunks.
func TestChunkPipelineVirtual(t *testing.T) {
	ty := pipelineLayouts(t)["everyOther"]
	plan, err := ty.CompilePlan(1)
	if err != nil {
		t.Fatal(err)
	}
	src := buf.Virtual(userBufLen(ty, 1))
	poolBefore := buf.PoolStatsSnapshot()
	before := PlanStatsSnapshot()
	cp, err := NewChunkPipeline(plan, src, 0, plan.Bytes(), 1<<10, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(0)
	for {
		ch, ok := cp.Next()
		if !ok {
			break
		}
		if !ch.Data.IsVirtual() {
			t.Fatal("virtual pipeline yielded a real slot")
		}
		n += ch.Hi - ch.Lo
		cp.Recycle(ch)
	}
	cp.Close()
	if n != plan.Bytes() {
		t.Fatalf("virtual pipeline yielded %d bytes, want %d", n, plan.Bytes())
	}
	if d := buf.PoolStatsSnapshot().Sub(poolBefore); d.Gets != 0 {
		t.Fatalf("virtual pipeline drew %d pooled slots", d.Gets)
	}
	if d := PlanStatsSnapshot().Sub(before); d.PipelinedBytes != plan.Bytes() {
		t.Fatalf("virtual pipeline attributed %d bytes, want %d", d.PipelinedBytes, plan.Bytes())
	}
}

// TestChunkPipelineArgErrors pins the construction validation.
func TestChunkPipelineArgErrors(t *testing.T) {
	ty := pipelineLayouts(t)["everyOther"]
	plan, err := ty.CompilePlan(1)
	if err != nil {
		t.Fatal(err)
	}
	src := buf.Alloc(userBufLen(ty, 1))
	if _, err := NewChunkPipeline(plan, src, 0, plan.Bytes(), 0, 2, 0); err == nil {
		t.Error("zero chunk accepted")
	}
	if _, err := NewChunkPipeline(plan, src, -1, plan.Bytes(), 64, 2, 0); err == nil {
		t.Error("negative lo accepted")
	}
	if _, err := NewChunkPipeline(plan, src, 0, plan.Bytes()+1, 64, 2, 0); err == nil {
		t.Error("hi past stream accepted")
	}
	short := buf.Alloc(8)
	if _, err := NewChunkPipeline(plan, short, 0, plan.Bytes(), 64, 2, 0); err == nil {
		t.Error("short user buffer accepted")
	}
}

// TestSetPipelinedChunks pins the gate's default and toggling.
func TestSetPipelinedChunks(t *testing.T) {
	if !PipelinedChunks() {
		t.Fatal("pipelined chunks must default on")
	}
	SetPipelinedChunks(false)
	if PipelinedChunks() {
		t.Fatal("gate did not clear")
	}
	SetPipelinedChunks(true)
}
