// Package datatype implements MPI derived datatypes from scratch: the
// type constructors (contiguous, vector, hvector, indexed, hindexed,
// indexed-block, struct, subarray, resized), the size/extent algebra
// with lower/upper bounds, commit-time flattening, and pack/unpack
// engines.
//
// # Representation
//
// A committed type is canonicalised to a runs value: either a *regular*
// pattern (n runs of runLen bytes, gap bytes apart — closed form, O(1)
// random access, no materialisation even for 10⁸ segments) or an
// explicit sorted, coalesced segment list for irregular types, whose
// size is bounded by the user's constructor arrays. This mirrors what
// production MPIs do at MPI_Type_commit ("flattening") and is what
// makes million-segment vector types affordable.
//
// # Semantics
//
// Displacements are relative to the buffer a type is used with, as in
// MPI. Extent and repetition follow the MPI standard: element i of a
// count-element message starts i*extent into the buffer. Struct types
// pad the upper bound to the alignment of their largest basic
// component. Resized overrides lb/extent without moving data.
//
// # Execution tiers
//
// Pack and unpack traffic runs on one of three engines, from most to
// least specialized:
//
//  1. Compiled (whole message): a full-message Pack/Unpack — or a
//     Packer/Unpacker stream drained in one call — executes the
//     compiled plan (plan.go): a contig/stride/gather kernel bound to
//     (type, count), goroutine-parallel above
//     SetParallelPackThreshold. Plans are cached per type and count;
//     the program is compiled at Commit, so steady-state packing does
//     no compilation and no allocation.
//  2. Compiled-chunked: partial-range transfers (the chunked and
//     pipelined streaming of internal/mpi's rendezvous sends) enter
//     the same kernels mid-stream — O(log segments) positioning, then
//     the tight copy loop — resuming exactly where the previous chunk
//     stopped. This is the default for every kernel-executable range.
//  3. Interpreting cursor: the generic segment walker remains the true
//     fallback — packers over unplanned types, and any stream after
//     SetChunkedCompiled(false) — and doubles as the differential
//     oracle the compiled engines are tested against.
//
// PlanStats attributes every byte to the tier and kernel that moved
// it.
package datatype

import (
	"errors"
	"fmt"
)

// Kind discriminates the constructor family of a type.
type Kind int

// Constructor kinds.
const (
	KindBasic Kind = iota
	KindContiguous
	KindVector
	KindHvector
	KindIndexed
	KindHindexed
	KindIndexedBlock
	KindStruct
	KindSubarray
	KindResized
	KindDup
)

var kindNames = map[Kind]string{
	KindBasic:        "basic",
	KindContiguous:   "contiguous",
	KindVector:       "vector",
	KindHvector:      "hvector",
	KindIndexed:      "indexed",
	KindHindexed:     "hindexed",
	KindIndexedBlock: "indexed_block",
	KindStruct:       "struct",
	KindSubarray:     "subarray",
	KindResized:      "resized",
	KindDup:          "dup",
}

// String returns the constructor name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Errors returned by the datatype layer.
var (
	// ErrNotCommitted is returned when an uncommitted type is used in
	// communication or packing, mirroring MPI's requirement to call
	// MPI_Type_commit first.
	ErrNotCommitted = errors.New("datatype: type not committed")
	// ErrArgument is returned for invalid constructor arguments.
	ErrArgument = errors.New("datatype: invalid argument")
	// ErrBounds is returned when packing would touch bytes outside the
	// user buffer.
	ErrBounds = errors.New("datatype: access outside buffer bounds")
	// ErrTruncate is returned when a destination is too small for the
	// packed payload.
	ErrTruncate = errors.New("datatype: message truncated")
	// ErrOverlap is returned by constructors whose resulting typemap
	// would make repeated instances ambiguous for receive operations.
	ErrOverlap = errors.New("datatype: overlapping typemap")
)

// Type is an MPI-style datatype. Types are immutable after Commit and
// safe for concurrent use by multiple ranks.
type Type struct {
	kind      Kind
	name      string
	committed bool

	size int64 // payload bytes per instance
	lb   int64 // lower bound
	ub   int64 // upper bound (includes struct padding / resize)

	r runs // canonical flattened form (valid after construction)

	// alignment is the largest basic-type size in the tree; struct
	// extent is padded to it, as real MPIs do with the epsilon term.
	alignment int64

	// plans caches the compiled pack plan program (see plan.go). It is
	// allocated at Commit so the Type value stays copyable.
	plans *planCache
}

// Kind returns the constructor family.
func (t *Type) Kind() Kind { return t.kind }

// Name returns the debug name, settable with SetName.
func (t *Type) Name() string { return t.name }

// SetName assigns a debug name, like MPI_Type_set_name.
func (t *Type) SetName(name string) { t.name = name }

// Size returns the payload bytes of one instance (MPI_Type_size).
func (t *Type) Size() int64 { return t.size }

// Extent returns ub-lb (MPI_Type_get_extent).
func (t *Type) Extent() int64 { return t.ub - t.lb }

// LB returns the lower bound.
func (t *Type) LB() int64 { return t.lb }

// UB returns the upper bound.
func (t *Type) UB() int64 { return t.ub }

// TrueLB returns the lowest byte offset actually read or written,
// ignoring Resized adjustments (MPI_Type_get_true_extent).
func (t *Type) TrueLB() int64 {
	if t.r.n == 0 {
		return 0
	}
	return t.r.first()
}

// TrueExtent returns the span from the first to one past the last byte
// actually touched.
func (t *Type) TrueExtent() int64 {
	if t.r.n == 0 {
		return 0
	}
	return t.r.last() - t.r.first()
}

// Committed reports whether Commit has been called.
func (t *Type) Committed() bool { return t.committed }

// Commit finalises the type for use in communication, like
// MPI_Type_commit. Committing twice is a no-op. Basic types are born
// committed. Commit also compiles the type's pack-plan program (the
// count-independent kernel geometry), so the compile cost is paid here
// — outside any communication path — exactly where real MPIs flatten.
func (t *Type) Commit() error {
	if t == nil {
		return fmt.Errorf("%w: nil type", ErrArgument)
	}
	t.committed = true
	if t.plans == nil {
		t.plans = &planCache{}
	}
	t.prog()
	return nil
}

// SegmentCount returns the number of contiguous runs of one instance
// after flattening and coalescing.
func (t *Type) SegmentCount() int64 { return t.r.n }

// Contiguous reports whether one instance is a single dense run whose
// extent equals its size, i.e. repetition stays contiguous.
func (t *Type) IsContiguous() bool {
	return t.r.n == 1 && t.r.regular && t.size == t.Extent() && t.r.start == t.lb
}

// String renders the type for diagnostics.
func (t *Type) String() string {
	if t.name != "" {
		return t.name
	}
	return fmt.Sprintf("%s{size=%d extent=%d segs=%d}", t.kind, t.size, t.Extent(), t.r.n)
}
