package datatype

import (
	"fmt"
	"sync"

	"repro/internal/buf"
)

// This file implements the fused scatter/gather transfer engine: a
// resumable segment iterator over a compiled plan's packed stream, a
// pair iterator that zips two plans covering the same stream, and
// FusedCopy, which moves a message from one user layout straight into
// another in a single pass — no packed staging buffer, no second pass
// over the payload. It is the engine behind the mpi layer's fused
// rendezvous (sendv): the paper's central finding is that the software
// copy — not the wire — dominates non-contiguous sends, and the staged
// pack→staging→unpack pipeline reads and writes every payload byte
// twice. The fused pass does it once.

// SegIter enumerates the contiguous (userOff, len) runs of a compiled
// plan's packed stream in packed order. It is resumable: Seek
// positions it at any packed offset in O(log segments) (closed form
// for stride plans, binary search for gather tables), after which
// Run/Advance walk forward in O(1) per run. The zero value is not
// usable; obtain one from Plan.Segments.
type SegIter struct {
	p *Plan

	pos  int64 // packed position of the iterator head
	inst int64 // current instance
	j    int64 // run (stride) / segment (gather) index within instance
	off  int64 // bytes consumed within the current run
}

// Segments returns a segment iterator positioned at the start of the
// plan's packed stream.
func (p *Plan) Segments() SegIter {
	it := SegIter{p: p}
	it.SeekTo(0)
	return it
}

// SeekTo positions the iterator at packed offset pos (clamped to the
// stream length).
func (it *SegIter) SeekTo(pos int64) {
	p := it.p
	if pos >= p.total {
		pos = p.total
	}
	it.pos = pos
	it.inst, it.j, it.off = 0, 0, 0
	if pos >= p.total || p.kernel == KernelContig {
		return
	}
	pr := p.prog
	it.inst = pos / pr.instSize
	rem := pos - it.inst*pr.instSize
	switch p.kernel {
	case KernelStride:
		it.j = rem / pr.runLen
		it.off = rem - it.j*pr.runLen
	case KernelBlock:
		// Flat run index; Run decomposes it into the block levels.
		it.j = rem / pr.canon.runLen
		it.off = rem - it.j*pr.canon.runLen
	case KernelGather:
		if pr.uniform > 0 {
			it.j = rem / pr.uniform
			it.off = rem - it.j*pr.uniform
			return
		}
		lo, hi := 0, len(pr.segs)
		for lo < hi {
			mid := (lo + hi) / 2
			if pr.segs[mid].pos+pr.segs[mid].length > rem {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		it.j = int64(lo)
		it.off = rem - pr.segs[lo].pos
	}
}

// Pos returns the packed offset of the iterator head.
func (it *SegIter) Pos() int64 { return it.pos }

// Run returns the user offset and remaining length of the run the
// iterator head sits in. A zero length means the stream is exhausted.
func (it *SegIter) Run() (off, n int64) {
	p := it.p
	if it.pos >= p.total {
		return 0, 0
	}
	switch p.kernel {
	case KernelContig:
		return p.contigOff + it.pos, p.total - it.pos
	case KernelStride:
		pr := p.prog
		return it.inst*pr.ext + pr.start + it.j*pr.step + it.off, pr.runLen - it.off
	case KernelBlock:
		pr := p.prog
		return it.inst*pr.ext + pr.canon.offsetOf(it.j) + it.off, pr.canon.runLen - it.off
	default: // KernelGather
		pr := p.prog
		s := pr.segs[it.j]
		return it.inst*pr.ext + s.off + it.off, s.length - it.off
	}
}

// Advance consumes n bytes of the current run; n must not exceed the
// run remainder Run reported. Runs roll over to the next segment and
// instance automatically.
func (it *SegIter) Advance(n int64) {
	it.pos += n
	it.off += n
	p := it.p
	if it.pos >= p.total || p.kernel == KernelContig {
		return
	}
	pr := p.prog
	var runLen int64
	switch p.kernel {
	case KernelStride:
		runLen = pr.runLen
	case KernelBlock:
		runLen = pr.canon.runLen
	default:
		runLen = pr.segs[it.j].length
	}
	if it.off < runLen {
		return
	}
	it.off = 0
	it.j++
	var runs int64
	switch p.kernel {
	case KernelStride:
		runs = pr.runs
	case KernelBlock:
		runs = pr.canon.runsPerInst()
	default:
		runs = int64(len(pr.segs))
	}
	if it.j >= runs {
		it.j = 0
		it.inst++
	}
}

// PairIter zips the packed streams of two plans: each Next yields the
// longest (srcOff, dstOff, len) span over which both layouts are
// contiguous, in packed order, up to the shorter stream's length.
// This is the schedule a fused scatter/gather transfer executes.
type PairIter struct {
	src, dst SegIter
	limit    int64
	pos      int64
}

// NewPairIter builds the pair iterator for a source and destination
// plan. The iteration covers min(src.Bytes(), dst.Bytes()) packed
// bytes.
func NewPairIter(src, dst *Plan) PairIter {
	limit := src.total
	if dst.total < limit {
		limit = dst.total
	}
	return PairIter{src: src.Segments(), dst: dst.Segments(), limit: limit}
}

// NewPairIterRange builds a pair iterator over the packed byte range
// [lo, hi): both sides seek to lo in O(log segments) and Next yields
// spans until hi — the schedule of one worker's share of a parallel
// fused pass.
func NewPairIterRange(src, dst *Plan, lo, hi int64) PairIter {
	it := PairIter{src: src.Segments(), dst: dst.Segments(), limit: hi, pos: lo}
	it.src.SeekTo(lo)
	it.dst.SeekTo(lo)
	return it
}

// Remaining returns the packed bytes the iterator has not yielded yet.
func (it *PairIter) Remaining() int64 { return it.limit - it.pos }

// Next returns the next fused run: srcOff/dstOff are user-buffer
// offsets, n the span length. ok is false when the schedule is
// exhausted.
func (it *PairIter) Next() (srcOff, dstOff, n int64, ok bool) {
	if it.pos >= it.limit {
		return 0, 0, 0, false
	}
	so, sn := it.src.Run()
	do, dn := it.dst.Run()
	n = sn
	if dn < n {
		n = dn
	}
	if r := it.limit - it.pos; r < n {
		n = r
	}
	it.src.Advance(n)
	it.dst.Advance(n)
	it.pos += n
	return so, do, n, true
}

// Validate checks that a user buffer can carry the plan's message —
// the same bounds rule Pack/Unpack enforce — without executing
// anything. Protocol layers call it before committing to a transfer
// (e.g. before a rendezvous envelope enters the fabric), so argument
// errors surface locally instead of on the peer.
func (p *Plan) Validate(user buf.Block) error {
	return p.t.checkUse(int(p.count), user.Len())
}

// FusedDstSafe reports whether the plan can serve as the destination
// of a fused transfer: repeated instances must not overlap in the user
// buffer, so the packed-order single pass writes every byte exactly
// once. Plans over types whose extent was resized under the instance
// span interleave their instances; those take the staged path, whose
// sequential unpack defines the overlap semantics.
func (p *Plan) FusedDstSafe() bool {
	if p.count <= 1 || p.total == 0 {
		return true
	}
	t := p.t
	return t.Extent() >= t.r.last()-t.r.first()
}

// FusedCopy moves the packed-stream intersection of (srcPlan over src)
// into (dstPlan over dst) in one pass, with no intermediate staging:
// the compiled equivalent of Pack into a scratch buffer followed by
// Unpack, at half the memory traffic. It returns the bytes
// transferred: min(srcPlan.Bytes(), dstPlan.Bytes()).
//
// src and dst must not alias (see buf.Overlaps) and dstPlan must be
// FusedDstSafe; callers fall back to the staged path otherwise.
// Virtual participants record the transfer without moving bytes.
func FusedCopy(srcPlan, dstPlan *Plan, src, dst buf.Block) (int64, error) {
	if err := srcPlan.t.checkUse(int(srcPlan.count), src.Len()); err != nil {
		return 0, fmt.Errorf("fused source: %w", err)
	}
	if err := dstPlan.t.checkUse(int(dstPlan.count), dst.Len()); err != nil {
		return 0, fmt.Errorf("fused destination: %w", err)
	}
	total := srcPlan.total
	if dstPlan.total < total {
		total = dstPlan.total
	}
	if total == 0 {
		return 0, nil
	}
	// The parallel decision depends only on the size, so virtual
	// transfers are attributed exactly as their real counterparts
	// (and as the parallel pricers model them).
	parallel := total >= ParallelPackThreshold() && workersFor(total) > 1
	if !src.IsVirtual() && !dst.IsVirtual() {
		fusedExec(srcPlan, dstPlan, src, dst, total, parallel)
	}
	recordFused(total, parallel)
	return total, nil
}

// fusedExec dispatches the one-pass transfer to the tightest executor
// for the kernel pairing, splitting the packed range across goroutines
// when parallel is set (every executor can start mid-stream, so the
// split needs no segment alignment). A contiguous side turns the
// transfer into a plain pack or unpack running the unrolled compiled
// kernels against the peer's buffer window; a stride pair runs the
// fused stride kernel; anything involving a gather table walks the
// generic pair schedule.
func fusedExec(srcPlan, dstPlan *Plan, src, dst buf.Block, total int64, parallel bool) {
	if parallel {
		fusedExecParallel(srcPlan, dstPlan, src, dst, total, workersFor(total))
		return
	}
	switch {
	case dstPlan.kernel == KernelContig:
		// Gather straight into the destination window: the source
		// plan's own unrolled kernel, no staging in between.
		stream := dst.Slice(int(dstPlan.contigOff), int(total))
		srcPlan.runRange(src, stream, 0, total, 0, packDirection)
	case srcPlan.kernel == KernelContig:
		// Scatter straight out of the source window.
		stream := src.Slice(int(srcPlan.contigOff), int(total))
		dstPlan.runRange(dst, stream, 0, total, 0, unpackDirection)
	case srcPlan.kernel == KernelStride && dstPlan.kernel == KernelStride:
		fusedStrideStride(dst.Bytes(), src.Bytes(), srcPlan.prog, dstPlan.prog, total)
	default:
		fusedGeneric(dst.Bytes(), src.Bytes(), srcPlan, dstPlan)
	}
}

// fusedExecParallel splits the fused pass's packed byte range across w
// workers. The destination plan is FusedDstSafe (callers fall back to
// the staged path otherwise), so distinct packed ranges write distinct
// user bytes and the workers need no synchronisation beyond the final
// join — the same disjointness argument as runParallelRange.
func fusedExecParallel(srcPlan, dstPlan *Plan, src, dst buf.Block, total int64, w int) {
	share := total / int64(w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		lo := int64(i) * share
		hi := lo + share
		if i == w-1 {
			hi = total
		}
		wg.Add(1)
		go func(lo, hi int64) {
			defer wg.Done()
			fusedRange(srcPlan, dstPlan, src, dst, lo, hi, total)
		}(lo, hi)
	}
	wg.Wait()
}

// fusedRange executes the packed byte range [lo, hi) of the fused
// schedule: contiguous sides ride the compiled runRange kernels
// mid-stream, and layout×layout pairings walk seeked pair iterators.
func fusedRange(srcPlan, dstPlan *Plan, src, dst buf.Block, lo, hi, total int64) {
	switch {
	case dstPlan.kernel == KernelContig:
		stream := dst.Slice(int(dstPlan.contigOff), int(total))
		srcPlan.runRange(src, stream, lo, hi, 0, packDirection)
	case srcPlan.kernel == KernelContig:
		stream := src.Slice(int(srcPlan.contigOff), int(total))
		dstPlan.runRange(dst, stream, lo, hi, 0, unpackDirection)
	default:
		db, sb := dst.Bytes(), src.Bytes()
		it := NewPairIterRange(srcPlan, dstPlan, lo, hi)
		for {
			so, do, n, ok := it.Next()
			if !ok {
				return
			}
			copyRun(db[do:], sb[so:], n)
		}
	}
}

// fusedStrideStride is the fused kernel for a pair of regular run/gap
// layouts: both sides advance in closed form, so the schedule needs no
// segment tables and the canonical case — equal small runs on both
// sides, the paper's every-other-double exchanged between two strided
// layouts — moves whole words with no per-span dispatch.
func fusedStrideStride(db, sb []byte, sp, dp *planProg, total int64) {
	// Instance rollover: after the last run of an instance, the next
	// run starts at the next instance's first run.
	sAdj := sp.ext - sp.runs*sp.step
	dAdj := dp.ext - dp.runs*dp.step
	so, do := sp.start, dp.start
	var sJ, dJ int64
	if sp.runLen == 8 && dp.runLen == 8 {
		// Both streams advance 8 bytes per run — the canonical
		// every-other-double exchange. Batch the spans up to the next
		// instance rollover on either side, so the inner loop is pure
		// word moves with fixed strides, unrolled like gatherRuns.
		// Plan totals are multiples of the run length, so no tail
		// handling is needed.
		sStep, dStep := sp.step, dp.step
		for pos := int64(0); pos < total; {
			batch := sp.runs - sJ
			if m := dp.runs - dJ; m < batch {
				batch = m
			}
			if m := (total - pos) / 8; m < batch {
				batch = m
			}
			k := int64(0)
			for ; k+4 <= batch; k += 4 {
				*(*[8]byte)(db[do:]) = *(*[8]byte)(sb[so:])
				*(*[8]byte)(db[do+dStep:]) = *(*[8]byte)(sb[so+sStep:])
				*(*[8]byte)(db[do+2*dStep:]) = *(*[8]byte)(sb[so+2*sStep:])
				*(*[8]byte)(db[do+3*dStep:]) = *(*[8]byte)(sb[so+3*sStep:])
				so += 4 * sStep
				do += 4 * dStep
			}
			for ; k < batch; k++ {
				*(*[8]byte)(db[do:]) = *(*[8]byte)(sb[so:])
				so += sStep
				do += dStep
			}
			pos += batch * 8
			if sJ += batch; sJ == sp.runs {
				sJ = 0
				so += sAdj
			}
			if dJ += batch; dJ == dp.runs {
				dJ = 0
				do += dAdj
			}
		}
		return
	}
	var sOff, dOff int64
	for pos := int64(0); pos < total; {
		n := sp.runLen - sOff
		if m := dp.runLen - dOff; m < n {
			n = m
		}
		if m := total - pos; m < n {
			n = m
		}
		copyRun(db[do+dOff:], sb[so+sOff:], n)
		pos += n
		if sOff += n; sOff == sp.runLen {
			sOff = 0
			so += sp.step
			if sJ++; sJ == sp.runs {
				sJ = 0
				so += sAdj
			}
		}
		if dOff += n; dOff == dp.runLen {
			dOff = 0
			do += dp.step
			if dJ++; dJ == dp.runs {
				dJ = 0
				do += dAdj
			}
		}
	}
}

// fusedGeneric walks the pair schedule for kernel pairings involving
// a gather table. Table segments are typically longer than stride
// runs, so the per-span iterator bookkeeping amortises.
func fusedGeneric(db, sb []byte, srcPlan, dstPlan *Plan) {
	it := NewPairIter(srcPlan, dstPlan)
	for {
		so, do, n, ok := it.Next()
		if !ok {
			return
		}
		copyRun(db[do:], sb[so:], n)
	}
}
