package datatype

import (
	"sort"

	"repro/internal/layout"
)

// runs is the canonical flattened form of one type instance.
//
// Regular form: n runs of runLen bytes; run j starts at
// start + j*(runLen+gap). Random access is O(1), so pack cursors and
// chunked internal sends never materialise the segment list — vital
// for the 10⁸-element vector types at the top of the paper's sweeps.
//
// Irregular form (regular == false): segs holds one instance's sorted,
// coalesced segments. Its size is bounded by the user's constructor
// arrays (indexed/struct types), so materialisation is safe.
type runs struct {
	regular bool
	start   int64
	runLen  int64
	gap     int64
	n       int64

	segs []layout.Segment
}

// emptyRuns is the canonical zero-payload form.
func emptyRuns() runs { return runs{regular: true} }

// regularRuns builds a regular pattern, degenerating to a single run
// when the gap is zero or n <= 1.
func regularRuns(start, runLen, gap, n int64) runs {
	if n <= 0 || runLen <= 0 {
		return emptyRuns()
	}
	if gap == 0 && n > 1 {
		return runs{regular: true, start: start, runLen: runLen * n, gap: 0, n: 1}
	}
	if n == 1 {
		gap = 0
	}
	return runs{regular: true, start: start, runLen: runLen, gap: gap, n: n}
}

// irregularRuns sorts, validates and coalesces an explicit segment
// list, then promotes it back to regular form if a uniform pattern
// emerges.
func irregularRuns(segs []layout.Segment) (runs, error) {
	kept := segs[:0]
	for _, s := range segs {
		if s.Len > 0 {
			kept = append(kept, s)
		}
	}
	segs = kept
	if len(segs) == 0 {
		return emptyRuns(), nil
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Off < segs[j].Off })
	// Coalesce adjacent runs; reject overlaps.
	out := segs[:1]
	for _, s := range segs[1:] {
		lastIdx := len(out) - 1
		if s.Off < out[lastIdx].End() {
			return runs{}, ErrOverlap
		}
		if s.Off == out[lastIdx].End() {
			out[lastIdx].Len += s.Len
			continue
		}
		out = append(out, s)
	}
	if r, ok := promote(out); ok {
		return r, nil
	}
	return runs{segs: out, n: int64(len(out))}, nil
}

// promote detects a uniform run/gap pattern in a coalesced list.
func promote(segs []layout.Segment) (runs, bool) {
	if len(segs) == 0 {
		return emptyRuns(), true
	}
	if len(segs) == 1 {
		return runs{regular: true, start: segs[0].Off, runLen: segs[0].Len, n: 1}, true
	}
	runLen := segs[0].Len
	gap := segs[1].Off - segs[0].End()
	for i, s := range segs {
		if s.Len != runLen {
			return runs{}, false
		}
		if i > 0 && s.Off-segs[i-1].End() != gap {
			return runs{}, false
		}
	}
	return runs{regular: true, start: segs[0].Off, runLen: runLen, gap: gap, n: int64(len(segs))}, true
}

// first returns the offset of the first byte touched.
func (r runs) first() int64 {
	if r.n == 0 {
		return 0
	}
	if r.regular {
		return r.start
	}
	return r.segs[0].Off
}

// last returns one past the last byte touched.
func (r runs) last() int64 {
	if r.n == 0 {
		return 0
	}
	if r.regular {
		return r.start + (r.n-1)*(r.runLen+r.gap) + r.runLen
	}
	return r.segs[len(r.segs)-1].End()
}

// size returns the payload bytes of the instance.
func (r runs) size() int64 {
	if r.regular {
		return r.n * r.runLen
	}
	var s int64
	for _, seg := range r.segs {
		s += seg.Len
	}
	return s
}

// seg returns the j-th segment (0-based) of the instance.
func (r runs) seg(j int64) layout.Segment {
	if r.regular {
		return layout.Segment{Off: r.start + j*(r.runLen+r.gap), Len: r.runLen}
	}
	return r.segs[j]
}

// forEach iterates the instance's segments shifted by base.
func (r runs) forEach(base int64, fn func(layout.Segment) bool) bool {
	if r.regular {
		off := base + r.start
		step := r.runLen + r.gap
		for j := int64(0); j < r.n; j++ {
			if !fn(layout.Segment{Off: off, Len: r.runLen}) {
				return false
			}
			off += step
		}
		return true
	}
	for _, s := range r.segs {
		if !fn(layout.Segment{Off: base + s.Off, Len: s.Len}) {
			return false
		}
	}
	return true
}

// shifted returns a copy of the runs displaced by delta bytes.
func (r runs) shifted(delta int64) runs {
	if delta == 0 || r.n == 0 {
		return r
	}
	if r.regular {
		r.start += delta
		return r
	}
	segs := make([]layout.Segment, len(r.segs))
	for i, s := range r.segs {
		segs[i] = layout.Segment{Off: s.Off + delta, Len: s.Len}
	}
	r.segs = segs
	return r
}

// replicate lays count copies of r at offsets 0, extent, 2*extent …
// and re-canonicalises. Used by constructors that repeat a child type
// (contiguous, vector blocks over a non-basic child, …).
//
// Fast path: if the child is regular and repetition continues the
// pattern (or butts the copies against each other), the result stays
// regular with no materialisation.
func replicate(r runs, extent int64, count int64) (runs, error) {
	if count <= 0 || r.n == 0 {
		return emptyRuns(), nil
	}
	if count == 1 {
		return r, nil
	}
	if r.regular {
		step := r.runLen + r.gap
		// Pattern continues when the inter-instance spacing matches the
		// intra-instance step: first run of copy i+1 starts extent after
		// first run of copy i, and that equals n*step.
		if extent == r.n*step {
			return regularRuns(r.start, r.runLen, r.gap, r.n*count), nil
		}
		// Single-run child whose copies touch exactly (extent == runLen).
		if r.n == 1 && extent == r.runLen {
			return regularRuns(r.start, r.runLen*count, 0, 1), nil
		}
		// Single-run child spaced out: a new regular pattern.
		if r.n == 1 {
			if extent < r.runLen {
				return runs{}, ErrOverlap
			}
			return regularRuns(r.start, r.runLen, extent-r.runLen, count), nil
		}
	}
	// General (bounded) case: materialise count copies.
	total := r.n * count
	if total > maxMaterialize {
		return runs{}, errTooManySegments(total)
	}
	segs := make([]layout.Segment, 0, total)
	for i := int64(0); i < count; i++ {
		base := i * extent
		r.forEach(base, func(s layout.Segment) bool {
			segs = append(segs, s)
			return true
		})
	}
	return irregularRuns(segs)
}

// maxMaterialize bounds explicit segment lists; regular patterns have
// no such limit. 16M segments ≈ 384 MB of Segment values, refuse
// beyond that rather than dying on OOM.
const maxMaterialize = int64(16 << 20)

func errTooManySegments(n int64) error {
	return &TooManySegmentsError{N: n}
}

// TooManySegmentsError reports a constructor whose irregular flattened
// form would exceed the materialisation bound.
type TooManySegmentsError struct{ N int64 }

// Error implements error.
func (e *TooManySegmentsError) Error() string {
	return "datatype: irregular type would flatten to too many segments"
}
