package datatype

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/buf"
)

// This file is the differential-testing harness of the pack-plan
// compiler: every compiled kernel is checked byte-for-byte against the
// interpreting cursor on randomized types, counts and chunk
// boundaries, including resume-mid-segment streaming.

// randPlanType builds a random committed type covering every
// constructor family, nesting one level deep with probability ~1/3.
// All generated types have non-negative displacements and at least one
// payload byte.
func randPlanType(rng *rand.Rand, depth int) *Type {
	base := []*Type{Byte, Int32, Float64, Complex128}[rng.Intn(4)]
	if depth > 0 && rng.Intn(3) == 0 {
		base = randPlanType(rng, depth-1)
	}
	var ty *Type
	var err error
	switch rng.Intn(8) {
	case 0:
		ty, err = Contiguous(rng.Intn(6)+1, base)
	case 1:
		bl := rng.Intn(3) + 1
		ty, err = Vector(rng.Intn(20)+1, bl, bl+rng.Intn(4), base)
	case 2:
		bl := rng.Intn(3) + 1
		stride := int64(bl)*base.Extent() + int64(rng.Intn(24))
		ty, err = Hvector(rng.Intn(16)+1, bl, stride, base)
	case 3:
		n := rng.Intn(5) + 1
		blocklens := make([]int, n)
		displs := make([]int, n)
		pos := 0
		for i := range blocklens {
			blocklens[i] = rng.Intn(3) + 1
			displs[i] = pos
			pos += blocklens[i] + rng.Intn(4)
		}
		ty, err = Indexed(blocklens, displs, base)
	case 4:
		bl := rng.Intn(2) + 1
		n := rng.Intn(5) + 1
		displs := make([]int, n)
		pos := 0
		for i := range displs {
			displs[i] = pos
			pos += bl + rng.Intn(4)
		}
		ty, err = IndexedBlock(bl, displs, base)
	case 5:
		fields := []*Type{Int32, base, Float64}
		blocklens := make([]int, len(fields))
		displs := make([]int64, len(fields))
		var pos int64
		for i, f := range fields {
			blocklens[i] = rng.Intn(2) + 1
			displs[i] = pos
			pos += int64(blocklens[i])*f.Extent() + int64(rng.Intn(8))
		}
		ty, err = Struct(blocklens, displs, fields)
	case 6:
		rows, cols := rng.Intn(5)+1, rng.Intn(6)+1
		sr, sc := rng.Intn(rows), rng.Intn(cols)
		ty, err = Subarray([]int{rows, cols}, []int{rows - sr, cols - sc}, []int{sr, sc}, OrderC, base)
	case 7:
		var inner *Type
		inner, err = Vector(rng.Intn(6)+1, 1, 2, base)
		if err == nil {
			ty, err = Resized(inner, 0, inner.TrueExtent()+int64(rng.Intn(16)))
		}
	}
	if err != nil {
		// A rare invalid draw (e.g. a resize under the child span):
		// substitute the canonical workload type so every iteration
		// still exercises the engines.
		ty, err = Vector(4, 1, 2, Float64)
		if err != nil {
			panic(err)
		}
	}
	if err := ty.Commit(); err != nil {
		panic(err)
	}
	return ty
}

// userBufLen returns the buffer size count instances of ty need.
func userBufLen(ty *Type, count int) int {
	if count == 0 || ty.SegmentCount() == 0 {
		return 0
	}
	return int(int64(count-1)*ty.Extent() + ty.r.last())
}

// cursorPack packs (count × ty) through the raw interpreting cursor in
// random-sized chunks — the oracle for every compiled kernel.
func cursorPack(t *testing.T, ty *Type, src buf.Block, count int, rng *rand.Rand) []byte {
	t.Helper()
	c := newCursor(ty, src, count)
	out := make([]byte, 0, c.total())
	for c.remaining() > 0 {
		n := int64(rng.Intn(64) + 1)
		if n > c.remaining() {
			n = c.remaining()
		}
		piece := buf.Alloc(int(n))
		m, err := c.transfer(piece, packDirection)
		if err != nil {
			t.Fatalf("cursor pack: %v", err)
		}
		out = append(out, piece.Bytes()[:m]...)
	}
	return out
}

// cursorUnpack scatters packed bytes through the raw cursor in
// random-sized chunks into dst.
func cursorUnpack(t *testing.T, ty *Type, dst buf.Block, count int, packed []byte, rng *rand.Rand) {
	t.Helper()
	c := newCursor(ty, dst, count)
	off := 0
	for c.remaining() > 0 {
		n := rng.Intn(64) + 1
		if int64(n) > c.remaining() {
			n = int(c.remaining())
		}
		if _, err := c.transfer(buf.FromBytes(packed[off:off+n]), unpackDirection); err != nil {
			t.Fatalf("cursor unpack: %v", err)
		}
		off += n
	}
}

// TestPlanDifferentialRandom is the core property test: on randomized
// (type, count, chunk-split) triples, the compiled plan's Pack and
// Unpack output is byte-identical to the cursor path.
func TestPlanDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(0xC0FFEE))
	for iter := 0; iter < 400; iter++ {
		ty := randPlanType(rng, 1)
		count := rng.Intn(3) + 1
		bufLen := userBufLen(ty, count)
		src := buf.Alloc(bufLen)
		src.FillPattern(byte(iter))

		want := cursorPack(t, ty, src, count, rng)

		plan, err := ty.CompilePlan(count)
		if err != nil {
			t.Fatalf("iter %d (%v): compile: %v", iter, ty, err)
		}
		dst := buf.Alloc(int(ty.PackSize(count)))
		n, err := plan.Pack(src, dst)
		if err != nil {
			t.Fatalf("iter %d (%v, kernel %v): plan pack: %v", iter, ty, plan.Kernel(), err)
		}
		if n != int64(len(want)) {
			t.Fatalf("iter %d (%v): plan packed %d bytes, cursor %d", iter, ty, n, len(want))
		}
		if !bytes.Equal(dst.Bytes(), want) {
			t.Fatalf("iter %d (%v, kernel %v, count %d): plan pack differs from cursor",
				iter, ty, plan.Kernel(), count)
		}

		// Unpack differential: both engines scatter the same packed
		// bytes into zeroed buffers; the full buffers must agree (this
		// also pins that neither engine writes outside the layout).
		cursorDst := buf.Alloc(bufLen)
		cursorUnpack(t, ty, cursorDst, count, want, rng)
		planDst := buf.Alloc(bufLen)
		if _, err := plan.Unpack(dst, planDst); err != nil {
			t.Fatalf("iter %d (%v): plan unpack: %v", iter, ty, err)
		}
		if !bytes.Equal(planDst.Bytes(), cursorDst.Bytes()) {
			t.Fatalf("iter %d (%v, kernel %v, count %d): plan unpack differs from cursor",
				iter, ty, plan.Kernel(), count)
		}
	}
}

// TestPackerResumeMidSegment pins the streaming contract: a Packer
// that has already produced partial chunks (arbitrary, usually
// mid-segment boundaries) resumes on the cursor path and the
// concatenated stream still equals the compiled one-shot output. Same
// for the Unpacker.
func TestPackerResumeMidSegment(t *testing.T) {
	rng := rand.New(rand.NewSource(0xBEEF))
	for iter := 0; iter < 200; iter++ {
		ty := randPlanType(rng, 1)
		count := rng.Intn(3) + 1
		bufLen := userBufLen(ty, count)
		src := buf.Alloc(bufLen)
		src.FillPattern(byte(iter * 7))

		plan, err := ty.CompilePlan(count)
		if err != nil {
			t.Fatal(err)
		}
		oneShot := buf.Alloc(int(ty.PackSize(count)))
		if _, err := plan.Pack(src, oneShot); err != nil {
			t.Fatal(err)
		}

		// Stream a few partial chunks, then drain the rest in one call
		// (which must not take the plan path: the cursor is mid-stream).
		p, err := ty.NewPacker(src, count)
		if err != nil {
			t.Fatal(err)
		}
		var got []byte
		partials := rng.Intn(3) + 1
		for i := 0; i < partials && p.Remaining() > 1; i++ {
			n := rng.Intn(int(p.Remaining())) // may split mid-segment
			if n == 0 {
				n = 1
			}
			piece := buf.Alloc(n)
			m, err := p.Pack(piece)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, piece.Bytes()[:m]...)
		}
		for p.Remaining() > 0 {
			piece := buf.Alloc(int(p.Remaining()))
			m, err := p.Pack(piece)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, piece.Bytes()[:m]...)
		}
		if !bytes.Equal(got, oneShot.Bytes()) {
			t.Fatalf("iter %d (%v): resumed stream differs from one-shot plan", iter, ty)
		}

		// Unpacker resume: feed the packed stream in two arbitrary
		// pieces, compare with the plan's one-shot scatter.
		planDst := buf.Alloc(bufLen)
		if _, err := plan.Unpack(oneShot, planDst); err != nil {
			t.Fatal(err)
		}
		streamDst := buf.Alloc(bufLen)
		u, err := ty.NewUnpacker(streamDst, count)
		if err != nil {
			t.Fatal(err)
		}
		split := 0
		if n := int(u.Remaining()); n > 1 {
			split = rng.Intn(n-1) + 1
		}
		if split > 0 {
			if _, err := u.Unpack(oneShot.Slice(0, split)); err != nil {
				t.Fatal(err)
			}
		}
		if u.Remaining() > 0 {
			if _, err := u.Unpack(oneShot.Slice(split, int(u.Remaining()))); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(streamDst.Bytes(), planDst.Bytes()) {
			t.Fatalf("iter %d (%v): resumed unpack differs from one-shot plan", iter, ty)
		}
	}
}

// TestPlanParallelDifferential forces the goroutine-parallel executor
// with a low threshold and checks it against the cursor on large
// regular and irregular types.
func TestPlanParallelDifferential(t *testing.T) {
	SetParallelPackThreshold(64 << 10)
	defer SetParallelPackThreshold(DefaultParallelPackThreshold)

	rng := rand.New(rand.NewSource(0xFACADE))
	big := []*Type{
		mustType(Vector(300_000, 1, 2, Float64)),  // canonical every-other, 2.4 MB
		mustType(Vector(5_000, 64, 100, Float64)), // blocked vector, 2.56 MB
		func() *Type {
			displs := make([]int, 40_000)
			pos := 0
			for i := range displs {
				displs[i] = pos
				pos += 2 + rng.Intn(3)
			}
			return mustType(IndexedBlock(2, displs, Float64)) // irregular, 640 KB
		}(),
	}
	for _, ty := range big {
		for _, count := range []int{1, 2} {
			bufLen := userBufLen(ty, count)
			src := buf.Alloc(bufLen)
			src.FillPattern(0x5A)

			plan, err := ty.CompilePlan(count)
			if err != nil {
				t.Fatal(err)
			}
			if runtime.GOMAXPROCS(0) > 1 && !plan.Parallel() {
				t.Fatalf("%v count=%d: expected a parallel plan at %d bytes", ty, count, plan.Bytes())
			}
			dst := buf.Alloc(int(ty.PackSize(count)))
			if _, err := plan.Pack(src, dst); err != nil {
				t.Fatal(err)
			}
			want := cursorPack(t, ty, src, count, rng)
			if !bytes.Equal(dst.Bytes(), want) {
				t.Fatalf("%v count=%d: parallel pack differs from cursor", ty, count)
			}

			planDst := buf.Alloc(bufLen)
			if _, err := plan.Unpack(dst, planDst); err != nil {
				t.Fatal(err)
			}
			cursorDst := buf.Alloc(bufLen)
			cursorUnpack(t, ty, cursorDst, count, want, rng)
			if !bytes.Equal(planDst.Bytes(), cursorDst.Bytes()) {
				t.Fatalf("%v count=%d: parallel unpack differs from cursor", ty, count)
			}

			// Force the multi-range split regardless of GOMAXPROCS:
			// single-core machines would otherwise collapse workers()
			// to one and leave the split paths unexercised.
			for _, w := range []int{2, 3, 7} {
				forced := buf.Alloc(int(ty.PackSize(count)))
				plan.runParallelN(src, forced, packDirection, w)
				if !bytes.Equal(forced.Bytes(), want) {
					t.Fatalf("%v count=%d workers=%d: forced parallel pack differs from cursor", ty, count, w)
				}
				forcedDst := buf.Alloc(bufLen)
				plan.runParallelN(forcedDst, forced, unpackDirection, w)
				if !bytes.Equal(forcedDst.Bytes(), cursorDst.Bytes()) {
					t.Fatalf("%v count=%d workers=%d: forced parallel unpack differs from cursor", ty, count, w)
				}
			}
		}
	}
}

// TestPlanRunRangeDifferential drives the kernels' mid-stream entry
// directly: the packed range [0, total) is cut at random points and
// executed piecewise through Plan.run, which must reproduce the
// cursor's stream exactly — this is the machinery the parallel
// splitter relies on, exercised deterministically for every kernel.
func TestPlanRunRangeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(0xD1CE))
	for iter := 0; iter < 200; iter++ {
		ty := randPlanType(rng, 1)
		count := rng.Intn(3) + 1
		bufLen := userBufLen(ty, count)
		src := buf.Alloc(bufLen)
		src.FillPattern(byte(iter * 3))
		want := cursorPack(t, ty, src, count, rng)

		plan, err := ty.CompilePlan(count)
		if err != nil {
			t.Fatal(err)
		}
		total := plan.Bytes()
		// Random ascending cut points, deliberately unaligned.
		cuts := []int64{0}
		for c := int64(0); c < total; {
			c += rng.Int63n(total/4+1) + 1
			if c > total {
				c = total
			}
			cuts = append(cuts, c)
		}
		dst := buf.Alloc(int(total))
		for i := 0; i+1 < len(cuts); i++ {
			plan.run(src, dst, cuts[i], cuts[i+1], packDirection)
		}
		if !bytes.Equal(dst.Bytes(), want) {
			t.Fatalf("iter %d (%v, kernel %v): piecewise run differs from cursor (cuts %v)",
				iter, ty, plan.Kernel(), cuts)
		}

		// Unpack direction through the same cuts.
		back := buf.Alloc(bufLen)
		for i := 0; i+1 < len(cuts); i++ {
			plan.run(back, dst, cuts[i], cuts[i+1], unpackDirection)
		}
		cursorDst := buf.Alloc(bufLen)
		cursorUnpack(t, ty, cursorDst, count, want, rng)
		if !bytes.Equal(back.Bytes(), cursorDst.Bytes()) {
			t.Fatalf("iter %d (%v, kernel %v): piecewise unpack differs from cursor", iter, ty, plan.Kernel())
		}
	}
}

// TestPlanKernelSelection pins the compiler's kernel-selection rules.
func TestPlanKernelSelection(t *testing.T) {
	cases := []struct {
		name   string
		ty     *Type
		count  int
		kernel PlanKernel
	}{
		{"basic", Float64, 4, KernelContig},
		{"contiguous", mustType(Contiguous(13, Float64)), 3, KernelContig},
		{"dense vector", mustType(Vector(10, 4, 4, Float64)), 2, KernelContig},
		{"vector", mustType(Vector(10, 1, 2, Float64)), 1, KernelStride},
		{"vector multi", mustType(Vector(10, 1, 2, Float64)), 3, KernelStride},
		{"subarray row", mustType(Subarray([]int{4, 8}, []int{1, 3}, []int{2, 1}, OrderC, Float64)), 1, KernelContig},
		{"subarray block", mustType(Subarray([]int{4, 8}, []int{2, 3}, []int{1, 1}, OrderC, Float64)), 1, KernelStride},
		{"indexed", mustType(Indexed([]int{2, 1, 3}, []int{0, 4, 8}, Float64)), 1, KernelGather},
		{"struct", mustType(Struct([]int{1, 2}, []int64{0, 8}, []*Type{Int32, Float64})), 2, KernelGather},
	}
	for _, c := range cases {
		plan, err := c.ty.CompilePlan(c.count)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if plan.Kernel() != c.kernel {
			t.Errorf("%s: kernel = %v, want %v", c.name, plan.Kernel(), c.kernel)
		}
		if plan.Bytes() != c.ty.PackSize(c.count) {
			t.Errorf("%s: plan bytes = %d, want %d", c.name, plan.Bytes(), c.ty.PackSize(c.count))
		}
	}
}

// TestPlanStatsCounters checks that executions are attributed to the
// right counters: compiled kernels for whole-message calls, the
// compiled-chunked tier for streaming, and the cursor only when the
// compiled-chunked tier is switched off.
func TestPlanStatsCounters(t *testing.T) {
	ty := mustType(Vector(1000, 1, 2, Float64))
	src := buf.Alloc(int(ty.Extent()))
	src.FillPattern(3)
	dst := buf.Alloc(int(ty.Size()))

	before := PlanStatsSnapshot()
	if _, err := ty.Pack(src, 1, dst); err != nil {
		t.Fatal(err)
	}
	d := PlanStatsSnapshot().Sub(before)
	if d.StrideOps != 1 || d.StrideBytes != ty.Size() {
		t.Fatalf("stride delta = %+v, want 1 op / %d bytes", d, ty.Size())
	}
	if d.CursorOps != 0 {
		t.Fatalf("whole-message pack went through the cursor: %+v", d)
	}
	if d.ChunkOps != 0 {
		t.Fatalf("whole-message pack attributed to the chunk tier: %+v", d)
	}

	stream := func() PlanStats {
		before := PlanStatsSnapshot()
		p, err := ty.NewPacker(src, 1)
		if err != nil {
			t.Fatal(err)
		}
		chunk := buf.Alloc(128)
		for p.Remaining() > 0 {
			if _, err := p.Pack(chunk); err != nil {
				t.Fatal(err)
			}
		}
		return PlanStatsSnapshot().Sub(before)
	}

	// Default: chunked streaming runs on the compiled kernels.
	d = stream()
	if d.ChunkOps == 0 || d.ChunkBytes != ty.Size() {
		t.Fatalf("chunked stream not attributed to the compiled-chunked tier: %+v", d)
	}
	if d.StrideBytes != ty.Size() {
		t.Fatalf("chunked stream not attributed to the stride kernel: %+v", d)
	}
	if d.CursorOps != 0 {
		t.Fatalf("chunked stream fell back to the cursor: %+v", d)
	}

	// Fallback: with the compiled-chunked tier off, the cursor moves
	// the stream.
	SetChunkedCompiled(false)
	defer SetChunkedCompiled(true)
	d = stream()
	if d.CursorOps == 0 || d.CursorBytes != ty.Size() {
		t.Fatalf("fallback stream not attributed to the cursor: %+v", d)
	}
	if d.CompiledBytes() != 0 || d.ChunkOps != 0 {
		t.Fatalf("fallback stream attributed to compiled kernels: %+v", d)
	}
}

// TestPlanVirtualCountsWithoutMoving pins the virtual-payload
// contract on the plan path: full size reported, no bytes moved.
func TestPlanVirtualCountsWithoutMoving(t *testing.T) {
	ty := mustType(Vector(1000, 1, 2, Float64))
	plan, err := ty.CompilePlan(1)
	if err != nil {
		t.Fatal(err)
	}
	dst := buf.Alloc(int(ty.Size()))
	dst.FillPattern(9)
	n, err := plan.Pack(buf.Virtual(int(ty.Extent())), dst)
	if err != nil {
		t.Fatal(err)
	}
	if n != ty.Size() {
		t.Fatalf("virtual plan pack = %d, want %d", n, ty.Size())
	}
	if err := dst.VerifyPattern(9); err != nil {
		t.Fatalf("virtual plan pack wrote data: %v", err)
	}
}

// TestPlanErrors pins the validation surface.
func TestPlanErrors(t *testing.T) {
	ty, err := Vector(10, 1, 2, Float64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ty.CompilePlan(1); err != ErrNotCommitted {
		t.Fatalf("uncommitted compile: %v", err)
	}
	if err := ty.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := ty.CompilePlan(-1); err == nil {
		t.Fatal("negative count accepted")
	}
	plan, err := ty.CompilePlan(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Pack(buf.Alloc(int(ty.Extent())), buf.Alloc(4)); err == nil {
		t.Fatal("truncated destination accepted")
	}
	if _, err := plan.Pack(buf.Alloc(4), buf.Alloc(int(ty.Size()))); err == nil {
		t.Fatal("undersized source accepted")
	}
	if _, err := plan.Unpack(buf.Alloc(4), buf.Alloc(int(ty.Extent()))); err == nil {
		t.Fatal("truncated packed source accepted")
	}
}
