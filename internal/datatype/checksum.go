package datatype

import "repro/internal/buf"

// ChecksumRange folds the packed-stream bytes [lo, hi) of the plan
// over user into sum, walking the layout's contiguous runs in packed
// order — no staging, no allocation, exactly the zero-staging
// discipline of the fused paths. The fold is chunk-invariant (see
// buf.Checksum): a sender summing per internal chunk or pipeline slot
// and a receiver summing the whole stream agree.
//
// Virtual user blocks are skipped length-only, so both ends of a
// virtual transfer still produce matching sums.
func (p *Plan) ChecksumRange(user buf.Block, lo, hi int64, sum *buf.Checksum) {
	if hi > p.total {
		hi = p.total
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return
	}
	if user.IsVirtual() {
		sum.SkipVirtual(hi - lo)
		return
	}
	data := user.Bytes()
	it := p.Segments()
	it.SeekTo(lo)
	for pos := lo; pos < hi; {
		off, n := it.Run()
		if n == 0 {
			break
		}
		if pos+n > hi {
			n = hi - pos
		}
		sum.Write(data[off : off+n])
		it.Advance(n)
		pos += n
	}
}
