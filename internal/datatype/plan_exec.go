package datatype

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/buf"
)

// Pack gathers the plan's full message from src into dst, returning
// the bytes produced. It is the compiled equivalent of Type.Pack.
func (p *Plan) Pack(src, dst buf.Block) (int64, error) {
	if err := p.t.checkUse(int(p.count), src.Len()); err != nil {
		return 0, err
	}
	if int64(dst.Len()) < p.total {
		return 0, fmt.Errorf("%w: need %d bytes, destination has %d", ErrTruncate, p.total, dst.Len())
	}
	return p.execute(src, dst, packDirection), nil
}

// Unpack scatters the packed bytes of src into the plan's layout in
// dst, the compiled equivalent of Type.Unpack.
func (p *Plan) Unpack(src, dst buf.Block) (int64, error) {
	if err := p.t.checkUse(int(p.count), dst.Len()); err != nil {
		return 0, err
	}
	if int64(src.Len()) < p.total {
		return 0, fmt.Errorf("%w: need %d packed bytes, source has %d", ErrTruncate, p.total, src.Len())
	}
	return p.execute(dst, src, unpackDirection), nil
}

// PackRange gathers the packed byte range [lo, hi) of the plan's
// message from src into stream, whose byte 0 is packed position lo —
// the exported compiled-chunked entry the mpi protocol layer streams
// through without allocating a Packer. Buffers are validated; the
// execution is attributed to the chunk counters.
func (p *Plan) PackRange(src, stream buf.Block, lo, hi int64) error {
	if err := p.checkRange(src, stream, lo, hi); err != nil {
		return err
	}
	p.runChunk(src, stream, lo, hi, packDirection)
	return nil
}

// UnpackRange scatters the packed byte range [lo, hi) from stream
// (whose byte 0 is packed position lo) into the plan's layout in dst,
// the inverse of PackRange.
func (p *Plan) UnpackRange(stream, dst buf.Block, lo, hi int64) error {
	if err := p.checkRange(dst, stream, lo, hi); err != nil {
		return err
	}
	p.runChunk(dst, stream, lo, hi, unpackDirection)
	return nil
}

// checkRange validates a partial-range execution: user buffer bounds
// and the packed window against the stream block.
func (p *Plan) checkRange(user, stream buf.Block, lo, hi int64) error {
	if err := p.t.checkUse(int(p.count), user.Len()); err != nil {
		return err
	}
	if lo < 0 || hi < lo || hi > p.total {
		return fmt.Errorf("%w: packed range [%d,%d) of %d-byte stream", ErrArgument, lo, hi, p.total)
	}
	if int64(stream.Len()) < hi-lo {
		return fmt.Errorf("%w: range needs %d bytes, stream block has %d", ErrTruncate, hi-lo, stream.Len())
	}
	return nil
}

// execute runs the full message through the selected kernel, splitting
// across goroutines above the parallel threshold, and records the
// execution in the plan counters. Buffers must already be validated.
// Virtual participants record the execution without moving bytes.
func (p *Plan) execute(user, stream buf.Block, dir direction) int64 {
	if p.total == 0 {
		return 0
	}
	parallel := false
	if !user.IsVirtual() && !stream.IsVirtual() {
		if p.Parallel() {
			parallel = true
			p.runParallel(user, stream, dir)
		} else {
			p.run(user, stream, 0, p.total, dir)
		}
	}
	recordPlanExec(p.kernel, p.total, parallel)
	return p.total
}

// runChunk executes the packed byte range [lo, hi) of the message
// against a stream block whose byte 0 is packed position lo — the
// compiled-chunked tier behind Packer/Unpacker streaming. Large chunks
// split across goroutines like whole messages; virtual participants
// record the execution without moving bytes.
func (p *Plan) runChunk(user, stream buf.Block, lo, hi int64, dir direction) {
	if hi <= lo {
		return
	}
	parallel := false
	if !user.IsVirtual() && !stream.IsVirtual() {
		n := hi - lo
		if w := workersFor(n); n >= ParallelPackThreshold() && w > 1 {
			parallel = true
			p.runParallelRange(user, stream, lo, hi, lo, dir, w)
		} else {
			p.runRange(user, stream, lo, hi, lo, dir)
		}
	}
	recordPlanChunk(p.kernel, hi-lo, parallel)
}

// runParallel splits the packed byte range [0, total) across workers.
// Every kernel can start mid-stream in O(log segments), so the split
// points need no alignment; each worker touches disjoint packed and
// user ranges (runs never overlap), so no synchronisation beyond the
// final join is needed.
func (p *Plan) runParallel(user, stream buf.Block, dir direction) {
	p.runParallelN(user, stream, dir, p.workers())
}

// runParallelN is runParallel with an explicit worker count, so tests
// can exercise the multi-range split on machines where workers() would
// collapse to one.
func (p *Plan) runParallelN(user, stream buf.Block, dir direction, w int) {
	p.runParallelRange(user, stream, 0, p.total, 0, dir, w)
}

// runParallelRange splits the packed range [lo, hi) across w workers;
// soff is the packed position of the stream block's byte 0.
func (p *Plan) runParallelRange(user, stream buf.Block, lo, hi, soff int64, dir direction, w int) {
	share := (hi - lo) / int64(w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wlo := lo + int64(i)*share
		whi := wlo + share
		if i == w-1 {
			whi = hi
		}
		wg.Add(1)
		go func(wlo, whi int64) {
			defer wg.Done()
			p.runRange(user, stream, wlo, whi, soff, dir)
		}(wlo, whi)
	}
	wg.Wait()
}

// run executes the packed byte range [lo, hi) of the message against a
// stream block holding the whole packed message.
func (p *Plan) run(user, stream buf.Block, lo, hi int64, dir direction) {
	p.runRange(user, stream, lo, hi, 0, dir)
}

// runRange executes the packed byte range [lo, hi); soff is the packed
// position the stream block starts at (0 for whole-message streams,
// lo for standalone chunk blocks).
func (p *Plan) runRange(user, stream buf.Block, lo, hi, soff int64, dir direction) {
	if hi <= lo {
		return
	}
	switch p.kernel {
	case KernelContig:
		if dir == packDirection {
			buf.CopyAt(stream, int(lo-soff), user, int(p.contigOff+lo), int(hi-lo))
		} else {
			buf.CopyAt(user, int(p.contigOff+lo), stream, int(lo-soff), int(hi-lo))
		}
	case KernelStride:
		p.runStride(user, stream, lo, hi, soff, dir)
	case KernelGather:
		p.runGather(user, stream, lo, hi, soff, dir)
	case KernelBlock:
		p.runBlock(user, stream, lo, hi, soff, dir)
	}
}

// runStride is the regular run/gap kernel: closed-form addressing from
// any packed position, whole runs moved by the unrolled copiers. soff
// is the packed position of sb's byte 0.
func (p *Plan) runStride(user, stream buf.Block, lo, hi, soff int64, dir direction) {
	ub, sb := user.Bytes(), stream.Bytes()
	pr := p.prog
	runLen, step := pr.runLen, pr.step
	inst := lo / pr.instSize
	rem := lo - inst*pr.instSize
	j := rem / runLen
	runOff := rem - j*runLen
	pos := lo
	for pos < hi {
		if runOff != 0 {
			// Leading partial run (a split point landed mid-run).
			n := runLen - runOff
			if n > hi-pos {
				n = hi - pos
			}
			o := inst*pr.ext + pr.start + j*step + runOff
			sp := pos - soff
			if dir == packDirection {
				copyRun(sb[sp:], ub[o:], n)
			} else {
				copyRun(ub[o:], sb[sp:], n)
			}
			pos += n
			runOff = 0
			j++
		} else {
			nRuns := pr.runs - j
			if m := (hi - pos) / runLen; nRuns > m {
				nRuns = m
			}
			if nRuns > 0 {
				base := inst*pr.ext + pr.start + j*step
				if dir == packDirection {
					gatherRuns(sb, ub, pos-soff, base, step, runLen, nRuns)
				} else {
					scatterRuns(sb, ub, pos-soff, base, step, runLen, nRuns)
				}
				pos += nRuns * runLen
				j += nRuns
			}
			if pos >= hi {
				return
			}
			if j < pr.runs {
				// Trailing partial run (the range ends mid-run).
				n := hi - pos
				o := inst*pr.ext + pr.start + j*step
				sp := pos - soff
				if dir == packDirection {
					copyRun(sb[sp:], ub[o:], n)
				} else {
					copyRun(ub[o:], sb[sp:], n)
				}
				return
			}
		}
		if j >= pr.runs {
			j = 0
			inst++
		}
	}
}

// runGather is the irregular kernel: find the entry point in the
// flattened segment table — a division when the normalizer hoisted a
// uniform segment length, a binary search otherwise — then walk it
// linearly. soff is the packed position of sb's byte 0.
func (p *Plan) runGather(user, stream buf.Block, lo, hi, soff int64, dir direction) {
	ub, sb := user.Bytes(), stream.Bytes()
	pr := p.prog
	segs := pr.segs
	inst := lo / pr.instSize
	rem := lo - inst*pr.instSize
	var idx int
	if pr.uniform > 0 {
		idx = int(rem / pr.uniform)
	} else {
		idx = sort.Search(len(segs), func(i int) bool { return segs[i].pos+segs[i].length > rem })
	}
	pos := lo
	for pos < hi {
		userBase := inst * pr.ext
		packBase := inst * pr.instSize
		for idx < len(segs) && pos < hi {
			s := segs[idx]
			segOff := pos - (packBase + s.pos)
			n := s.length - segOff
			if n > hi-pos {
				n = hi - pos
			}
			o := userBase + s.off + segOff
			sp := pos - soff
			if dir == packDirection {
				copyRun(sb[sp:], ub[o:], n)
			} else {
				copyRun(ub[o:], sb[sp:], n)
			}
			pos += n
			idx++
		}
		if idx >= len(segs) {
			idx = 0
			inst++
		}
	}
}

// gatherRuns moves n whole runs of runLen bytes from the strided user
// buffer into the packed stream, dispatching to an unrolled fast path
// for the element sizes the paper's workloads use (4-, 8- and 16-byte
// blocks: float, double, double complex).
func gatherRuns(packed, strided []byte, ppos, base, step, runLen, n int64) {
	switch runLen {
	case 8:
		for ; n >= 4; n -= 4 {
			*(*[8]byte)(packed[ppos:]) = *(*[8]byte)(strided[base:])
			*(*[8]byte)(packed[ppos+8:]) = *(*[8]byte)(strided[base+step:])
			*(*[8]byte)(packed[ppos+16:]) = *(*[8]byte)(strided[base+2*step:])
			*(*[8]byte)(packed[ppos+24:]) = *(*[8]byte)(strided[base+3*step:])
			ppos += 32
			base += 4 * step
		}
		for ; n > 0; n-- {
			*(*[8]byte)(packed[ppos:]) = *(*[8]byte)(strided[base:])
			ppos += 8
			base += step
		}
	case 4:
		for ; n >= 4; n -= 4 {
			*(*[4]byte)(packed[ppos:]) = *(*[4]byte)(strided[base:])
			*(*[4]byte)(packed[ppos+4:]) = *(*[4]byte)(strided[base+step:])
			*(*[4]byte)(packed[ppos+8:]) = *(*[4]byte)(strided[base+2*step:])
			*(*[4]byte)(packed[ppos+12:]) = *(*[4]byte)(strided[base+3*step:])
			ppos += 16
			base += 4 * step
		}
		for ; n > 0; n-- {
			*(*[4]byte)(packed[ppos:]) = *(*[4]byte)(strided[base:])
			ppos += 4
			base += step
		}
	case 16:
		for ; n > 0; n-- {
			*(*[16]byte)(packed[ppos:]) = *(*[16]byte)(strided[base:])
			ppos += 16
			base += step
		}
	default:
		for ; n > 0; n-- {
			copyRun(packed[ppos:], strided[base:], runLen)
			ppos += runLen
			base += step
		}
	}
}

// scatterRuns is the inverse of gatherRuns: packed stream back into
// the strided user buffer.
func scatterRuns(packed, strided []byte, ppos, base, step, runLen, n int64) {
	switch runLen {
	case 8:
		for ; n >= 4; n -= 4 {
			*(*[8]byte)(strided[base:]) = *(*[8]byte)(packed[ppos:])
			*(*[8]byte)(strided[base+step:]) = *(*[8]byte)(packed[ppos+8:])
			*(*[8]byte)(strided[base+2*step:]) = *(*[8]byte)(packed[ppos+16:])
			*(*[8]byte)(strided[base+3*step:]) = *(*[8]byte)(packed[ppos+24:])
			ppos += 32
			base += 4 * step
		}
		for ; n > 0; n-- {
			*(*[8]byte)(strided[base:]) = *(*[8]byte)(packed[ppos:])
			ppos += 8
			base += step
		}
	case 4:
		for ; n >= 4; n -= 4 {
			*(*[4]byte)(strided[base:]) = *(*[4]byte)(packed[ppos:])
			*(*[4]byte)(strided[base+step:]) = *(*[4]byte)(packed[ppos+4:])
			*(*[4]byte)(strided[base+2*step:]) = *(*[4]byte)(packed[ppos+8:])
			*(*[4]byte)(strided[base+3*step:]) = *(*[4]byte)(packed[ppos+12:])
			ppos += 16
			base += 4 * step
		}
		for ; n > 0; n-- {
			*(*[4]byte)(strided[base:]) = *(*[4]byte)(packed[ppos:])
			ppos += 4
			base += step
		}
	case 16:
		for ; n > 0; n-- {
			*(*[16]byte)(strided[base:]) = *(*[16]byte)(packed[ppos:])
			ppos += 16
			base += step
		}
	default:
		for ; n > 0; n-- {
			copyRun(strided[base:], packed[ppos:], runLen)
			ppos += runLen
			base += step
		}
	}
}
