package datatype

import (
	"math/rand"
	"testing"

	"repro/internal/buf"
)

// TestChecksumRangeDifferential pins ChecksumRange against the staged
// oracle: packing the full stream and summing the packed bytes must
// give the same value as the zero-staging range walk, for any split of
// the stream into [lo, hi) windows.
func TestChecksumRangeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(0xFACADE))
	for iter := 0; iter < 200; iter++ {
		ty := randPlanType(rng, 1)
		count := rng.Intn(3) + 1
		src := buf.Alloc(userBufLen(ty, count))
		src.FillPattern(byte(iter*3 + 1))

		plan, err := ty.CompilePlan(count)
		if err != nil {
			t.Fatalf("iter %d (%v): compile: %v", iter, ty, err)
		}
		packed := buf.Alloc(int(ty.PackSize(count)))
		if _, err := plan.Pack(src, packed); err != nil {
			t.Fatalf("iter %d (%v): pack: %v", iter, ty, err)
		}
		var oracle buf.Checksum
		oracle.Write(packed.Bytes())
		want := oracle.Sum64()

		// Whole-stream walk.
		var whole buf.Checksum
		plan.ChecksumRange(src, 0, plan.Bytes(), &whole)
		if whole.Sum64() != want {
			t.Fatalf("iter %d (%v, kernel %v): whole-range sum %#x != packed %#x",
				iter, ty, plan.Kernel(), whole.Sum64(), want)
		}

		// Random window split: summing piecewise over a partition of
		// [0, total) must agree — the chunk-invariance the pipelined
		// and fused senders rely on.
		var split buf.Checksum
		for lo := int64(0); lo < plan.Bytes(); {
			hi := lo + 1 + rng.Int63n(plan.Bytes()-lo)
			plan.ChecksumRange(src, lo, hi, &split)
			lo = hi
		}
		if split.Sum64() != want {
			t.Fatalf("iter %d (%v, kernel %v): split-range sum %#x != packed %#x",
				iter, ty, plan.Kernel(), split.Sum64(), want)
		}
	}
}

// TestChecksumRangeVirtual checks that a virtual user block is skipped
// length-only and agrees with an explicit SkipVirtual of the range.
func TestChecksumRangeVirtual(t *testing.T) {
	ty, err := Vector(8, 2, 3, Float64)
	if err != nil {
		t.Fatal(err)
	}
	if err := ty.Commit(); err != nil {
		t.Fatal(err)
	}
	plan, err := ty.CompilePlan(2)
	if err != nil {
		t.Fatal(err)
	}
	user := buf.Virtual(userBufLen(ty, 2))

	var got buf.Checksum
	plan.ChecksumRange(user, 16, plan.Bytes(), &got)
	var want buf.Checksum
	want.SkipVirtual(plan.Bytes() - 16)
	if got.Sum64() != want.Sum64() {
		t.Fatalf("virtual range sum %#x != skip %#x", got.Sum64(), want.Sum64())
	}
}

// TestChecksumRangeClamps checks out-of-range windows are clamped and
// degenerate windows are no-ops.
func TestChecksumRangeClamps(t *testing.T) {
	ty, err := Vector(4, 1, 2, Float64)
	if err != nil {
		t.Fatal(err)
	}
	if err := ty.Commit(); err != nil {
		t.Fatal(err)
	}
	plan, err := ty.CompilePlan(1)
	if err != nil {
		t.Fatal(err)
	}
	src := buf.Alloc(userBufLen(ty, 1))
	src.FillPattern(9)

	var a, b buf.Checksum
	plan.ChecksumRange(src, -5, plan.Bytes()+100, &a)
	plan.ChecksumRange(src, 0, plan.Bytes(), &b)
	if a.Sum64() != b.Sum64() {
		t.Fatal("clamped range disagrees with exact range")
	}
	before := a.Sum64()
	plan.ChecksumRange(src, 8, 8, &a)
	plan.ChecksumRange(src, 10, 4, &a)
	if a.Sum64() != before {
		t.Fatal("degenerate range mutated the sum")
	}
}
