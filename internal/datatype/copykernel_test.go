package datatype

import (
	"bytes"
	"fmt"
	"testing"
)

// byteCopyOracle is the definitional byte loop copyRun must match.
func byteCopyOracle(dst, src []byte, n int64) {
	for i := int64(0); i < n; i++ {
		dst[i] = src[i]
	}
}

// TestCopyRunMatchesByteLoop sweeps every (srcOffset, dstOffset,
// length) combination over the alignment-relevant range — co-aligned,
// co-aligned mod 4 only, and mutually misaligned pairs, with 1–7-byte
// tails — and requires copyRun to reproduce the byte loop exactly,
// without touching a byte outside [dstOff, dstOff+n).
func TestCopyRunMatchesByteLoop(t *testing.T) {
	const room = 600
	lengths := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 15, 16, 17, 24, 31, 32, 33, 40, 63, 64, 65, 100, 255, longRunCopy - 1, longRunCopy, longRunCopy + 17}
	src := make([]byte, room)
	for i := range src {
		src[i] = byte(i*131 + 7)
	}
	for srcOff := 0; srcOff < 9; srcOff++ {
		for dstOff := 0; dstOff < 9; dstOff++ {
			for _, n := range lengths {
				dst := make([]byte, room)
				want := make([]byte, room)
				for i := range dst {
					dst[i] = 0xCC
					want[i] = 0xCC
				}
				copyRun(dst[dstOff:], src[srcOff:], n)
				byteCopyOracle(want[dstOff:], src[srcOff:], n)
				if !bytes.Equal(dst, want) {
					t.Fatalf("copyRun(dstOff=%d, srcOff=%d, n=%d) differs from byte loop", dstOff, srcOff, n)
				}
			}
		}
	}
}

// TestCopyRunBoundsPanic pins the bounds contract: a run longer than
// either slice panics instead of corrupting memory.
func TestCopyRunBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("copyRun over-length did not panic")
		}
	}()
	copyRun(make([]byte, 4), make([]byte, 16), 8)
}

// BenchmarkCopyRunShort measures the word kernel on the short-run
// lengths the paper's layouts produce, against the runtime memmove.
func BenchmarkCopyRunShort(b *testing.B) {
	for _, n := range []int64{8, 12, 24, 56} {
		src := make([]byte, 4096)
		dst := make([]byte, 4096)
		b.Run(fmt.Sprintf("copyRun/%dB", n), func(b *testing.B) {
			b.SetBytes(n)
			for i := 0; i < b.N; i++ {
				copyRun(dst[(i%64)*8:], src[(i%64)*8:], n)
			}
		})
		b.Run(fmt.Sprintf("memmove/%dB", n), func(b *testing.B) {
			b.SetBytes(n)
			for i := 0; i < b.N; i++ {
				o := (i % 64) * 8
				copy(dst[o:o+int(n)], src[o:o+int(n)])
			}
		})
	}
}
