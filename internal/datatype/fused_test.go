package datatype

import (
	"bytes"
	"testing"

	"repro/internal/buf"
)

// fusedOracle is the staged pipeline FusedCopy must reproduce: pack
// the source fully, then unpack the shared prefix into the
// destination layout.
func fusedOracle(t *testing.T, srcTy *Type, srcCount int, dstTy *Type, dstCount int, src buf.Block, dstLen int) []byte {
	t.Helper()
	staging := buf.Alloc(int(srcTy.PackSize(srcCount)))
	if _, err := srcTy.Pack(src, srcCount, staging); err != nil {
		t.Fatalf("oracle pack: %v", err)
	}
	dst := buf.Alloc(dstLen)
	need := dstTy.PackSize(dstCount)
	if int64(staging.Len()) > need {
		staging = staging.Slice(0, int(need))
	}
	u, err := dstTy.NewUnpacker(dst, dstCount)
	if err != nil {
		t.Fatalf("oracle unpacker: %v", err)
	}
	if staging.Len() > 0 {
		if _, err := u.Unpack(staging); err != nil {
			t.Fatalf("oracle unpack: %v", err)
		}
	}
	return dst.Bytes()
}

// userLen returns a buffer length covering count instances of ty.
func userLen(ty *Type, count int) int {
	if count == 0 {
		return 1
	}
	n := int64(count-1)*ty.Extent() + ty.r.last()
	if n < 1 {
		n = 1
	}
	return int(n)
}

// TestFusedCopyDifferential checks FusedCopy against the staged
// pack→unpack oracle across kernel pairings: stride↔stride with
// different geometries, gather↔stride, gather↔gather, contig on
// either side, and mismatched stream lengths (the pair iterator stops
// at the shorter stream).
func TestFusedCopyDifferential(t *testing.T) {
	vec := func(count, bl, str int) *Type {
		return mustType(Vector(count, bl, str, Float64))
	}
	idx := func(bl int, displs ...int) *Type {
		return mustType(IndexedBlock(bl, displs, Float64))
	}
	contig := func(n int) *Type {
		return mustType(Contiguous(n, Float64))
	}

	cases := []struct {
		name               string
		srcTy, dstTy       *Type
		srcCount, dstCount int
	}{
		{"everyOther->everyThird", vec(64, 1, 2), vec(64, 1, 3), 1, 1},
		{"blocked->everyOther", vec(16, 4, 6), vec(64, 1, 2), 1, 1},
		{"stride->contig", vec(64, 1, 2), contig(64), 1, 1},
		{"contig->stride", contig(64), vec(64, 1, 2), 1, 1},
		{"gather->stride", idx(2, 0, 5, 9, 14, 22), vec(10, 1, 2), 1, 1},
		{"stride->gather", vec(10, 1, 2), idx(2, 0, 5, 9, 14, 22), 1, 1},
		{"gather->gather", idx(1, 0, 3, 5, 10), idx(2, 0, 4), 1, 1},
		{"counted->counted", vec(8, 1, 2), vec(4, 2, 3), 3, 3},
		{"srcShorter", vec(8, 1, 2), vec(64, 1, 2), 1, 1},
		{"dstShorter", vec(64, 1, 2), vec(8, 1, 2), 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srcLen := userLen(tc.srcTy, tc.srcCount)
			dstLen := userLen(tc.dstTy, tc.dstCount)
			src := buf.Alloc(srcLen)
			src.FillPattern(0x3D)

			srcPlan, err := tc.srcTy.CompilePlan(tc.srcCount)
			if err != nil {
				t.Fatal(err)
			}
			dstPlan, err := tc.dstTy.CompilePlan(tc.dstCount)
			if err != nil {
				t.Fatal(err)
			}
			if !dstPlan.FusedDstSafe() {
				t.Fatalf("test layout unexpectedly overlap-unsafe")
			}

			dst := buf.Alloc(dstLen)
			n, err := FusedCopy(srcPlan, dstPlan, src, dst)
			if err != nil {
				t.Fatal(err)
			}
			wantN := srcPlan.Bytes()
			if dstPlan.Bytes() < wantN {
				wantN = dstPlan.Bytes()
			}
			if n != wantN {
				t.Fatalf("FusedCopy moved %d bytes, want %d", n, wantN)
			}
			want := fusedOracle(t, tc.srcTy, tc.srcCount, tc.dstTy, tc.dstCount, src, dstLen)
			if !bytes.Equal(dst.Bytes(), want) {
				t.Fatalf("fused transfer differs from staged pack→unpack oracle")
			}
		})
	}
}

// TestPairIterCoversStream pins the pair iterator invariants: spans
// are positive, contiguous in packed order, and sum to the shorter
// stream.
func TestPairIterCoversStream(t *testing.T) {
	srcTy := mustType(Vector(32, 3, 5, Float64))
	dstTy := mustType(IndexedBlock(4, []int{0, 7, 15, 26, 40, 55, 71, 88, 106, 125, 145, 166, 188, 211, 235, 260, 286, 313, 341, 370, 400, 431, 463, 496}, Float64))
	srcPlan, err := srcTy.CompilePlan(1)
	if err != nil {
		t.Fatal(err)
	}
	dstPlan, err := dstTy.CompilePlan(1)
	if err != nil {
		t.Fatal(err)
	}
	it := NewPairIter(srcPlan, dstPlan)
	var total int64
	for {
		_, _, n, ok := it.Next()
		if !ok {
			break
		}
		if n <= 0 {
			t.Fatalf("non-positive span %d", n)
		}
		total += n
	}
	want := srcPlan.Bytes()
	if dstPlan.Bytes() < want {
		want = dstPlan.Bytes()
	}
	if total != want {
		t.Fatalf("pair iterator covered %d bytes, want %d", total, want)
	}
	if it.Remaining() != 0 {
		t.Fatalf("Remaining = %d after exhaustion", it.Remaining())
	}
}

// TestSegIterSeekMatchesWalk pins SeekTo: for a set of packed offsets,
// seeking directly must land on the same (userOff, remainder) state a
// fresh iterator reaches by advancing.
func TestSegIterSeekMatchesWalk(t *testing.T) {
	for _, ty := range []*Type{
		mustType(Vector(16, 3, 7, Float64)),
		mustType(IndexedBlock(2, []int{0, 5, 11, 20, 28}, Float64)),
		mustType(Contiguous(9, Float64)),
	} {
		plan, err := ty.CompilePlan(3)
		if err != nil {
			t.Fatal(err)
		}
		for pos := int64(0); pos <= plan.Bytes(); pos += 5 {
			walked := plan.Segments()
			for walked.Pos() < pos {
				_, n := walked.Run()
				step := pos - walked.Pos()
				if step > n {
					step = n
				}
				walked.Advance(step)
			}
			var sought SegIter = plan.Segments()
			sought.SeekTo(pos)
			wo, wn := walked.Run()
			so, sn := sought.Run()
			if wo != so || wn != sn {
				t.Fatalf("%v pos %d: seek run (%d,%d) != walked run (%d,%d)", ty, pos, so, sn, wo, wn)
			}
		}
	}
}

// TestFusedDstSafe pins the overlap rule: plans whose repeated
// instances interleave (extent resized under the instance span) must
// refuse fused-destination duty, single instances and dense
// repetitions must accept it.
func TestFusedDstSafe(t *testing.T) {
	vec := mustType(Vector(8, 1, 2, Float64))
	p, err := vec.CompilePlan(4)
	if err != nil {
		t.Fatal(err)
	}
	if !p.FusedDstSafe() {
		t.Fatal("regular vector plan reported overlap-unsafe")
	}

	// Indexed layout spanning 24 bytes, resized to an 8-byte extent:
	// repeated instances interleave.
	inner, err := Indexed([]int{1, 1}, []int{0, 2}, Float64)
	if err != nil {
		t.Fatal(err)
	}
	shrunk := mustType(Resized(inner, 0, 8))
	single, err := shrunk.CompilePlan(1)
	if err != nil {
		t.Fatal(err)
	}
	if !single.FusedDstSafe() {
		t.Fatal("count-1 plan must always be fused-safe")
	}
	multi, err := shrunk.CompilePlan(3)
	if err != nil {
		t.Fatal(err)
	}
	if multi.FusedDstSafe() {
		t.Fatal("interleaving-instance plan reported fused-safe")
	}
	// The staged oracle and FusedCopy still agree byte-for-byte on the
	// *source* side of an interleaved layout (reads may overlap).
	src := buf.Alloc(userLen(shrunk, 3))
	src.FillPattern(9)
	dstTy := mustType(Contiguous(int(shrunk.PackSize(3)/8), Float64))
	dstPlan, err := dstTy.CompilePlan(1)
	if err != nil {
		t.Fatal(err)
	}
	dst := buf.Alloc(int(dstTy.Size()))
	if _, err := FusedCopy(multi, dstPlan, src, dst); err != nil {
		t.Fatal(err)
	}
	want := fusedOracle(t, shrunk, 3, dstTy, 1, src, dst.Len())
	if !bytes.Equal(dst.Bytes(), want) {
		t.Fatal("fused gather over interleaved source differs from oracle")
	}
}

// TestFusedCopyVirtual pins the virtual path: lengths flow, no bytes
// move, stats are recorded.
func TestFusedCopyVirtual(t *testing.T) {
	ty := mustType(Vector(128, 1, 2, Float64))
	plan, err := ty.CompilePlan(1)
	if err != nil {
		t.Fatal(err)
	}
	before := PlanStatsSnapshot()
	n, err := FusedCopy(plan, plan, buf.Virtual(userLen(ty, 1)), buf.Virtual(userLen(ty, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if n != plan.Bytes() {
		t.Fatalf("virtual fused copy moved %d, want %d", n, plan.Bytes())
	}
	d := PlanStatsSnapshot().Sub(before)
	if d.FusedOps != 1 || d.FusedBytes != plan.Bytes() {
		t.Fatalf("fused attribution delta %+v", d)
	}
}

// TestFusedCopySteadyStateAllocs pins the zero-allocation contract of
// the fused hot path: with plans bound, a fused transfer allocates
// nothing.
func TestFusedCopySteadyStateAllocs(t *testing.T) {
	srcTy := mustType(Vector(512, 1, 2, Float64))
	dstTy := mustType(Vector(512, 1, 3, Float64))
	srcPlan, err := srcTy.CompilePlan(1)
	if err != nil {
		t.Fatal(err)
	}
	dstPlan, err := dstTy.CompilePlan(1)
	if err != nil {
		t.Fatal(err)
	}
	src := buf.Alloc(userLen(srcTy, 1))
	src.FillPattern(1)
	dst := buf.Alloc(userLen(dstTy, 1))
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := FusedCopy(srcPlan, dstPlan, src, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("fused copy allocated %.1f objects/op in steady state", allocs)
	}
}

// TestFusedCopyParallelMatchesSerial pins the parallel fused pass:
// with the threshold lowered so the pair schedule splits across
// workers, every kernel pairing must produce byte-identical results to
// the serial pass, and the execution must be attributed parallel.
func TestFusedCopyParallelMatchesSerial(t *testing.T) {
	vec := func(count, bl, str int) *Type {
		return mustType(Vector(count, bl, str, Float64))
	}
	const elems = 1 << 16 // 512 KiB payload
	cases := []struct {
		name         string
		srcTy, dstTy *Type
	}{
		{"stride->stride", vec(elems, 1, 2), vec(elems, 1, 3)},
		{"stride->contig", vec(elems, 1, 2), mustType(Contiguous(elems, Float64))},
		{"contig->stride", mustType(Contiguous(elems, Float64)), vec(elems, 1, 2)},
		{"gather->stride", mustType(Indexed(
			[]int{elems / 2, elems / 4, elems / 4},
			[]int{0, elems/2 + 3, elems + 9}, Float64)), vec(elems, 1, 2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srcPlan := mustPlan(t, tc.srcTy, 1)
			dstPlan := mustPlan(t, tc.dstTy, 1)
			src := buf.Alloc(userLen(tc.srcTy, 1))
			src.FillPattern(0x8D)

			// Serial reference: threshold above the payload.
			SetParallelPackThreshold(int64(elems)*8 + 1)
			defer SetParallelPackThreshold(DefaultParallelPackThreshold)
			want := buf.Alloc(userLen(tc.dstTy, 1))
			if _, err := FusedCopy(srcPlan, dstPlan, src, want); err != nil {
				t.Fatal(err)
			}

			// Parallel run: threshold far below the payload.
			SetParallelPackThreshold(64 << 10)
			before := PlanStatsSnapshot()
			got := buf.Alloc(userLen(tc.dstTy, 1))
			if _, err := FusedCopy(srcPlan, dstPlan, src, got); err != nil {
				t.Fatal(err)
			}
			if !buf.Equal(got, want) {
				t.Fatal("parallel fused pass differs from serial")
			}
			d := PlanStatsSnapshot().Sub(before)
			if d.FusedOps != 1 {
				t.Fatalf("fused attribution %+v", d)
			}
			if workersFor(srcPlan.Bytes()) > 1 && d.ParallelOps != 1 {
				t.Fatalf("parallel attribution %+v (workers %d)", d, workersFor(srcPlan.Bytes()))
			}
		})
	}
}

// mustPlan compiles a plan or fails the test.
func mustPlan(t *testing.T, ty *Type, count int) *Plan {
	t.Helper()
	p, err := ty.CompilePlan(count)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
