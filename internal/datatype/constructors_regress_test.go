package datatype

import (
	"bytes"
	"errors"
	"sort"
	"testing"

	"repro/internal/buf"
	"repro/internal/layout"
)

// This file is the dense-base-assumption sweep: every constructor that
// replicates a base type is checked over derived bases whose flattened
// form is NOT a dense block — gapped (vector) bases and resized bases
// whose extent disagrees with their true span — against an oracle built
// from the constructor's definition. The Subarray-over-derived-base
// flattening bug (PR 1, found by the fuzzer) was exactly this class.

// baseAt appends base's instance runs displaced by off bytes.
func baseAt(t *testing.T, base *Type, off int64, segs []layout.Segment) []layout.Segment {
	t.Helper()
	base.r.forEach(off, func(s layout.Segment) bool {
		segs = append(segs, s)
		return true
	})
	return segs
}

// oraclePack reads the expected packed stream of count instances of a
// type whose single-instance segments are given by one call to
// instSegs: the segments of each instance sorted by offset, instances
// in order — the typemap semantics the constructors must flatten to.
func oraclePack(t *testing.T, src buf.Block, instSegs []layout.Segment, count int, ext int64) []byte {
	t.Helper()
	sorted := append([]layout.Segment(nil), instSegs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Off < sorted[j].Off })
	var out []byte
	for i := 0; i < count; i++ {
		base := int64(i) * ext
		for _, s := range sorted {
			lo := base + s.Off
			out = append(out, src.Bytes()[lo:lo+s.Len]...)
		}
	}
	return out
}

// checkAgainstOracle packs count instances of ty and compares with the
// definitional segment list.
func checkAgainstOracle(t *testing.T, name string, ty *Type, instSegs []layout.Segment, count int) {
	t.Helper()
	if err := ty.Commit(); err != nil {
		t.Fatalf("%s: commit: %v", name, err)
	}
	var expectBytes int64
	for _, s := range instSegs {
		expectBytes += s.Len
	}
	if got := ty.Size(); got != expectBytes {
		t.Fatalf("%s: size %d, definition says %d", name, got, expectBytes)
	}
	src := buf.Alloc(userBufLen(ty, count))
	src.FillPattern(0x3D)
	want := oraclePack(t, src, instSegs, count, ty.Extent())
	dst := buf.Alloc(int(ty.PackSize(count)))
	if _, err := ty.Pack(src, count, dst); err != nil {
		t.Fatalf("%s: pack: %v", name, err)
	}
	if !bytes.Equal(dst.Bytes(), want) {
		t.Fatalf("%s (count %d): flattened pack differs from the constructor definition", name, count)
	}
}

// nonDenseBases returns the derived bases the sweep replicates over: a
// gapped vector (multi-run flattening) and a padded resize of it
// (extent beyond the true span).
func nonDenseBases(t *testing.T) map[string]*Type {
	t.Helper()
	gapped := mustType(Vector(3, 1, 2, Float64)) // runs at 0,16,32; size 24, extent 40
	padded, err := Resized(gapped, 0, 48)
	if err != nil {
		t.Fatal(err)
	}
	if err := padded.Commit(); err != nil {
		t.Fatal(err)
	}
	return map[string]*Type{"gapped": gapped, "padded": padded}
}

// TestConstructorsNonDenseBaseDifferential sweeps the replicating
// constructors over non-dense bases against the definitional oracle.
func TestConstructorsNonDenseBaseDifferential(t *testing.T) {
	for baseName, base := range nonDenseBases(t) {
		ext := base.Extent()
		for count := 1; count <= 2; count++ {
			// Contiguous: copies at i*extent.
			{
				ty, err := Contiguous(3, base)
				if err != nil {
					t.Fatal(err)
				}
				var segs []layout.Segment
				for i := int64(0); i < 3; i++ {
					segs = baseAt(t, base, i*ext, segs)
				}
				checkAgainstOracle(t, baseName+"/contiguous", ty, segs, count)
			}
			// Hvector: blocks at j*stride bytes, elements at k*extent.
			{
				stride := 2*ext + 8
				ty, err := Hvector(3, 2, stride, base)
				if err != nil {
					t.Fatal(err)
				}
				var segs []layout.Segment
				for j := int64(0); j < 3; j++ {
					for k := int64(0); k < 2; k++ {
						segs = baseAt(t, base, j*stride+k*ext, segs)
					}
				}
				checkAgainstOracle(t, baseName+"/hvector", ty, segs, count)
			}
			// Indexed: blocks of base copies at displacements in extents.
			{
				blens, displs := []int{2, 1}, []int{0, 3}
				ty, err := Indexed(blens, displs, base)
				if err != nil {
					t.Fatal(err)
				}
				var segs []layout.Segment
				for i := range blens {
					for k := int64(0); k < int64(blens[i]); k++ {
						segs = baseAt(t, base, (int64(displs[i])+k)*ext, segs)
					}
				}
				checkAgainstOracle(t, baseName+"/indexed", ty, segs, count)
			}
			// Struct: fields at byte displacements, copies at the
			// field's extent.
			{
				fields := []*Type{Int32, base}
				blens := []int{1, 2}
				displs := []int64{0, 8}
				ty, err := Struct(blens, displs, fields)
				if err != nil {
					t.Fatal(err)
				}
				var segs []layout.Segment
				for i, f := range fields {
					for k := int64(0); k < int64(blens[i]); k++ {
						segs = baseAt(t, f, displs[i]+k*f.Extent(), segs)
					}
				}
				checkAgainstOracle(t, baseName+"/struct", ty, segs, count)
			}
			// Subarray: selected elements at their parent element
			// offsets times the base extent.
			{
				sizes, subs, starts := []int{3, 4}, []int{2, 2}, []int{1, 1}
				ty, err := Subarray(sizes, subs, starts, OrderC, base)
				if err != nil {
					t.Fatal(err)
				}
				var segs []layout.Segment
				for r := 0; r < subs[0]; r++ {
					for c := 0; c < subs[1]; c++ {
						elem := int64((starts[0]+r)*sizes[1] + starts[1] + c)
						segs = baseAt(t, base, elem*ext, segs)
					}
				}
				// Subarray extent spans the whole parent array, so
				// count > 1 needs no special care.
				checkAgainstOracle(t, baseName+"/subarray", ty, segs, count)
			}
		}
	}
}

// TestVectorResizedShrunkBaseOverlap is the regression for the sweep's
// finding: the single-run hvector/vector fast path checked the stride
// against the block *extent* only, so a Resized base whose extent is
// shrunk under its payload run produced silently overlapping regular
// runs with a negative gap (the multi-run path rejects the same shape
// with ErrOverlap). All four shapes must now agree.
func TestVectorResizedShrunkBaseOverlap(t *testing.T) {
	base, err := Contiguous(4, Byte) // one 4-byte run
	if err != nil {
		t.Fatal(err)
	}
	shrunk, err := Resized(base, 0, 2) // extent under the run
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Hvector(2, 1, 2, shrunk); !errors.Is(err, ErrOverlap) {
		t.Errorf("hvector blocklen=1 over shrunk base: %v, want ErrOverlap", err)
	}
	if _, err := Hvector(2, 2, 4, shrunk); !errors.Is(err, ErrOverlap) {
		t.Errorf("hvector blocklen=2 over shrunk base: %v, want ErrOverlap", err)
	}
	if _, err := Vector(2, 1, 1, shrunk); !errors.Is(err, ErrOverlap) {
		t.Errorf("vector blocklen=1 over shrunk base: %v, want ErrOverlap", err)
	}
	if _, err := Contiguous(2, shrunk); !errors.Is(err, ErrOverlap) {
		t.Errorf("contiguous over shrunk base: %v, want ErrOverlap", err)
	}

	// A stride that clears the real run stays valid and must flatten
	// to the run pattern, not the shrunken extent.
	ok, err := Hvector(2, 1, 8, shrunk)
	if err != nil {
		t.Fatalf("hvector with clearing stride: %v", err)
	}
	var segs []layout.Segment
	for j := int64(0); j < 2; j++ {
		segs = baseAt(t, shrunk, j*8, segs)
	}
	checkAgainstOracle(t, "shrunk/hvector-clearing", ok, segs, 1)
}
