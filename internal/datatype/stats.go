package datatype

import (
	"math"

	"repro/internal/layout"
)

// Stats returns the layout statistics of count instances in closed
// form: regular runs never iterate, and irregular runs iterate one
// instance only, combining across instances analytically. The memory
// model prices gather loops from these numbers, so this must stay O(1)
// in the payload size.
func (t *Type) Stats(count int) layout.Stats {
	c := int64(count)
	if c <= 0 || t.r.n == 0 || t.size == 0 {
		return layout.Stats{}
	}
	ext := t.Extent()
	span := t.r.last() - t.r.first()
	st := layout.Stats{
		Segments: int(c * t.r.n),
		Bytes:    c * t.size,
		Extent:   (c-1)*ext + t.r.last(),
	}

	// Per-instance block statistics.
	var blockMin, blockMax, blockSum int64
	var gapAcc gapAccumulator
	if t.r.regular {
		blockMin, blockMax = t.r.runLen, t.r.runLen
		blockSum = t.r.n * t.r.runLen
		if t.r.n > 1 {
			gapAcc.add(t.r.gap, t.r.n-1)
		}
	} else {
		blockMin = math.MaxInt64
		var prevEnd int64 = -1
		for _, s := range t.r.segs {
			blockSum += s.Len
			if s.Len < blockMin {
				blockMin = s.Len
			}
			if s.Len > blockMax {
				blockMax = s.Len
			}
			if prevEnd >= 0 {
				gapAcc.add(s.Off-prevEnd, 1)
			}
			prevEnd = s.End()
		}
	}
	st.MinBlock, st.MaxBlock = blockMin, blockMax
	st.AvgBlock = float64(blockSum) / float64(t.r.n)

	// Scale intra-instance gaps by the instance count and add the
	// cross-instance gaps.
	gapAcc.scale(c)
	if c > 1 {
		// Instance i ends at i*ext+first+span; instance i+1's first run
		// starts at (i+1)*ext+first, so the cross-instance gap is
		// ext-span (span includes the final run's length).
		cross := ext - span
		if cross < 0 {
			cross = 0
		}
		gapAcc.add(cross, c-1)
	}
	st.MinGap, st.MaxGap, st.AvgGap, st.GapJitter = gapAcc.summary()
	if st.Extent > 0 {
		st.Density = float64(st.Bytes) / float64(st.Extent)
	}
	return st
}

// gapAccumulator combines gap populations (value, multiplicity) into
// min/max/mean/jitter without enumerating them.
type gapAccumulator struct {
	n     int64
	sum   float64
	sumSq float64
	min   int64
	max   int64
	any   bool
}

func (g *gapAccumulator) add(gap, times int64) {
	if times <= 0 {
		return
	}
	if !g.any || gap < g.min {
		g.min = gap
	}
	if !g.any || gap > g.max {
		g.max = gap
	}
	g.any = true
	g.n += times
	g.sum += float64(gap) * float64(times)
	g.sumSq += float64(gap) * float64(gap) * float64(times)
}

// scale multiplies every recorded population count by k (instances).
func (g *gapAccumulator) scale(k int64) {
	if k <= 1 {
		return
	}
	g.n *= k
	g.sum *= float64(k)
	g.sumSq *= float64(k)
}

func (g *gapAccumulator) summary() (min, max int64, mean, jitter float64) {
	if g.n == 0 {
		return 0, 0, 0, 0
	}
	mean = g.sum / float64(g.n)
	variance := g.sumSq/float64(g.n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	if mean > 0 {
		jitter = math.Sqrt(variance) / mean
	}
	return g.min, g.max, mean, jitter
}
