package datatype

import (
	"fmt"
	"sync/atomic"

	"repro/internal/buf"
)

// This file implements the chunk-slot pipeline: a software-pipelined
// execution of a compiled plan's packed stream through a bounded ring
// of pooled slots. The paper's cost model (§2.3) shows the chunked
// derived-type send serialising pack and inject — the sender packs a
// chunk into an internal buffer, transmits it, packs the next — and
// observes that "with enough support of the NIC and its firmware, it
// would be possible for this scheme to pipeline the reads and sends".
// The NIC support is hardware; the ChunkPipeline is the software
// equivalent: a pack worker runs a configurable depth ahead of the
// consumer, so chunk k+1 packs while chunk k injects (or unpacks, for
// a staged scatter). The ring is fixed at construction — depth pooled
// slots and nothing else — so the steady state allocates nothing.

// pipelinedChunks gates the pipelined execution tier: protocol layers
// consult it (together with ChunkedCompiled) before routing a chunked
// transfer through a ChunkPipeline. It exists so differential tests
// and studies can pin the pipelined paths byte-for-byte and
// cost-for-cost against the serial chunk loop.
var pipelinedChunks atomic.Bool

func init() { pipelinedChunks.Store(true) }

// SetPipelinedChunks enables or disables the pipelined chunk engine;
// disabled, the protocol layers fall back to the serial chunk loop.
func SetPipelinedChunks(on bool) { pipelinedChunks.Store(on) }

// PipelinedChunks reports whether chunked transfers may run on the
// pipelined engine.
func PipelinedChunks() bool { return pipelinedChunks.Load() }

// PipeChunk is one packed chunk handed from the pipeline's pack worker
// to its consumer: Data holds the packed bytes of stream range
// [Lo, Hi), backed by a ring slot that Recycle returns to the packer.
type PipeChunk struct {
	Data   buf.Block
	Lo, Hi int64

	slot buf.Block // the ring slot backing Data
}

// ChunkPipeline drives Plan.PackRange over a bounded ring of pooled
// slots with a pack worker running up to depth chunks ahead of the
// consumer. Obtain chunks in stream order with Next, hand each slot
// back with Recycle, and Close when done (early exits included) —
// Close joins the worker and returns the ring storage to the pool.
//
// The ring is the pipeline's entire footprint: depth slots drawn from
// the caller's pool shard at construction, recycled in place, released
// at Close. A consumer that holds every chunk without recycling
// deadlocks against its own worker, exactly like a bounded queue.
type ChunkPipeline struct {
	plan   *Plan
	user   buf.Block
	lo, hi int64
	chunk  int64
	depth  int

	slots []buf.Block
	ready chan PipeChunk
	free  chan buf.Block
	quit  chan struct{}
	done  bool
}

// NewChunkPipeline validates and starts a pipeline packing the plan's
// packed byte range [lo, hi) out of user in chunk-sized pieces through
// a depth-slot ring drawn from the given pool shard (the caller's
// rank). depth is clamped to [1, chunks]; chunk must be positive.
func NewChunkPipeline(plan *Plan, user buf.Block, lo, hi, chunk int64, depth, shard int) (*ChunkPipeline, error) {
	if chunk <= 0 {
		return nil, fmt.Errorf("%w: pipeline chunk %d", ErrArgument, chunk)
	}
	if lo < 0 || hi < lo || hi > plan.total {
		return nil, fmt.Errorf("%w: pipeline range [%d,%d) of %d-byte stream", ErrArgument, lo, hi, plan.total)
	}
	if err := plan.Validate(user); err != nil {
		return nil, err
	}
	chunks := int((hi - lo + chunk - 1) / chunk)
	if depth < 1 {
		depth = 1
	}
	if chunks > 0 && depth > chunks {
		depth = chunks
	}
	cp := &ChunkPipeline{
		plan:  plan,
		user:  user,
		lo:    lo,
		hi:    hi,
		chunk: chunk,
		depth: depth,
		slots: make([]buf.Block, depth),
		ready: make(chan PipeChunk, depth),
		free:  make(chan buf.Block, depth),
		quit:  make(chan struct{}),
	}
	for i := range cp.slots {
		if user.IsVirtual() {
			cp.slots[i] = buf.Virtual(int(chunk))
		} else {
			cp.slots[i] = buf.GetPooledFor(shard, int(chunk))
		}
		cp.free <- cp.slots[i]
	}
	go cp.worker()
	return cp, nil
}

// Chunks returns how many chunks the pipeline yields in total.
func (cp *ChunkPipeline) Chunks() int64 {
	if cp.hi <= cp.lo {
		return 0
	}
	return (cp.hi - cp.lo + cp.chunk - 1) / cp.chunk
}

// Depth returns the effective ring depth.
func (cp *ChunkPipeline) Depth() int { return cp.depth }

// worker is the pack stage: it fills free slots ahead of the consumer
// and hands them over in stream order.
func (cp *ChunkPipeline) worker() {
	defer close(cp.ready)
	pos := cp.lo
	for pos < cp.hi {
		var slot buf.Block
		select {
		case slot = <-cp.free:
		case <-cp.quit:
			return
		}
		hi := pos + cp.chunk
		if hi > cp.hi {
			hi = cp.hi
		}
		cp.plan.runChunk(cp.user, slot, pos, hi, packDirection)
		recordPipelined(hi - pos)
		ch := PipeChunk{Data: slot.Slice(0, int(hi-pos)), Lo: pos, Hi: hi, slot: slot}
		select {
		case cp.ready <- ch:
		case <-cp.quit:
			return
		}
		pos = hi
	}
}

// Next returns the next packed chunk in stream order; ok is false once
// the range is exhausted. The chunk's slot belongs to the consumer
// until Recycle hands it back.
func (cp *ChunkPipeline) Next() (PipeChunk, bool) {
	ch, ok := <-cp.ready
	return ch, ok
}

// Recycle returns a consumed chunk's slot to the pack worker.
func (cp *ChunkPipeline) Recycle(ch PipeChunk) {
	if ch.slot.Len() == 0 && ch.Hi == ch.Lo {
		return
	}
	select {
	case cp.free <- ch.slot:
	case <-cp.quit:
	}
}

// RecordPipelinedChunk attributes one chunk whose local work ran
// overlapped against its neighbour's flight outside a ChunkPipeline —
// the chunk-streamed collective hops — so PlanStats carries the
// overlap attribution of every pipelined path.
func RecordPipelinedChunk(n int64) { recordPipelined(n) }

// Close stops the worker (if still running), waits for it to exit and
// returns the ring storage to the pool. It is safe after a full drain
// and after an early exit; the pipeline must not be used afterwards.
func (cp *ChunkPipeline) Close() {
	if cp.done {
		return
	}
	cp.done = true
	close(cp.quit)
	// The worker either observed quit or finished and closed ready;
	// draining ready synchronises with its exit either way.
	for range cp.ready {
	}
	for _, s := range cp.slots {
		buf.PutPooled(s)
	}
}
