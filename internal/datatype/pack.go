package datatype

import (
	"fmt"

	"repro/internal/buf"
	"repro/internal/layout"
)

// PackSize returns the number of bytes count instances pack to
// (MPI_Pack_size without the implementation slack).
func (t *Type) PackSize(count int) int64 {
	if count <= 0 {
		return 0
	}
	return int64(count) * t.size
}

// checkUse validates a communication/pack use of the type against a
// buffer of bufLen bytes.
func (t *Type) checkUse(count int, bufLen int) error {
	if !t.committed {
		return ErrNotCommitted
	}
	if count < 0 {
		return fmt.Errorf("%w: negative count %d", ErrArgument, count)
	}
	if count == 0 || t.size == 0 {
		return nil
	}
	if t.r.first() < 0 {
		return fmt.Errorf("%w: type touches offset %d before buffer start", ErrBounds, t.r.first())
	}
	last := int64(count-1)*t.Extent() + t.r.last()
	if last > int64(bufLen) {
		return fmt.Errorf("%w: type needs %d bytes, buffer has %d", ErrBounds, last, bufLen)
	}
	return nil
}

// Pack gathers count instances of the type from src into dst,
// returning the bytes written (MPI_Pack of the full message). dst must
// hold at least PackSize(count) bytes. The call executes the cached
// compiled plan directly: in steady state it compiles nothing and
// allocates nothing.
func (t *Type) Pack(src buf.Block, count int, dst buf.Block) (int64, error) {
	need := t.PackSize(count)
	if int64(dst.Len()) < need {
		return 0, fmt.Errorf("%w: need %d bytes, destination has %d", ErrTruncate, need, dst.Len())
	}
	if err := t.checkUse(count, src.Len()); err != nil {
		return 0, err
	}
	return t.plan(count).execute(src, dst, packDirection), nil
}

// Unpack scatters packed bytes from src into count instances of the
// type laid out in dst (MPI_Unpack of the full message). Like Pack, it
// runs the cached compiled plan with no steady-state allocation.
func (t *Type) Unpack(src buf.Block, count int, dst buf.Block) (int64, error) {
	need := t.PackSize(count)
	if int64(src.Len()) < need {
		return 0, fmt.Errorf("%w: need %d packed bytes, source has %d", ErrTruncate, need, src.Len())
	}
	if err := t.checkUse(count, dst.Len()); err != nil {
		return 0, err
	}
	return t.plan(count).execute(dst, src, unpackDirection), nil
}

// Packer streams the packed byte sequence of (count × type) out of a
// user buffer in arbitrary-sized pieces. The MPI-internal chunked
// sends of internal/simnet drain one chunk at a time; packing(v)
// drains everything at once.
//
// A whole-message Pack call from the start of the stream executes the
// compiled plan (see plan.go): a specialized kernel, parallel above
// the threshold. Partial chunks enter the same kernels mid-stream
// (tier 2, compiled-chunked): each kernel positions itself at the
// resume point in O(log segments) and runs its tight copy loop for
// just the requested range. The interpreting cursor remains the true
// fallback (unplanned types, SetChunkedCompiled(false)).
type Packer struct {
	c    cursor
	plan *Plan // bound lazily from the type's plan cache
}

// NewPacker validates the (buffer, count, type) triple and returns a
// streaming packer.
func (t *Type) NewPacker(src buf.Block, count int) (*Packer, error) {
	if err := t.checkUse(count, src.Len()); err != nil {
		return nil, err
	}
	return &Packer{c: newCursor(t, src, count)}, nil
}

// Plan returns the compiled plan the packer executes. The plan comes
// from the type's count-keyed cache, so binding it is a map lookup.
func (p *Packer) Plan() *Plan {
	if p.plan == nil {
		p.plan = p.c.t.plan(int(p.c.count))
	}
	return p.plan
}

// Remaining returns the unpacked bytes left in the stream.
func (p *Packer) Remaining() int64 { return p.c.remaining() }

// Pack fills dst with the next min(dst.Len(), Remaining()) bytes of
// the packed stream and returns how many were produced.
func (p *Packer) Pack(dst buf.Block) (int64, error) {
	if p.c.done == 0 && int64(dst.Len()) >= p.c.remaining() {
		n := p.Plan().execute(p.c.user, dst, packDirection)
		p.c.done = n
		return n, nil
	}
	if p.c.t.plans != nil && ChunkedCompiled() {
		want := int64(dst.Len())
		if r := p.c.remaining(); want > r {
			want = r
		}
		if want == 0 {
			return 0, nil
		}
		p.Plan().runChunk(p.c.user, dst, p.c.done, p.c.done+want, packDirection)
		p.c.skip(want)
		return want, nil
	}
	return p.c.transfer(dst, packDirection)
}

// Unpacker is the inverse stream: packed bytes in, scattered layout
// out. Like Packer, a whole-message Unpack executes the compiled plan
// and partial chunks run compiled-chunked, with the cursor as the true
// fallback.
type Unpacker struct {
	c    cursor
	plan *Plan
}

// NewUnpacker validates the triple and returns a streaming unpacker
// writing into dst.
func (t *Type) NewUnpacker(dst buf.Block, count int) (*Unpacker, error) {
	if err := t.checkUse(count, dst.Len()); err != nil {
		return nil, err
	}
	return &Unpacker{c: newCursor(t, dst, count)}, nil
}

// Plan returns the compiled plan the unpacker executes, bound from the
// type's plan cache like Packer.Plan.
func (u *Unpacker) Plan() *Plan {
	if u.plan == nil {
		u.plan = u.c.t.plan(int(u.c.count))
	}
	return u.plan
}

// Remaining returns the packed bytes still expected.
func (u *Unpacker) Remaining() int64 { return u.c.remaining() }

// Unpack consumes src and scatters it into the user buffer, returning
// the bytes consumed.
func (u *Unpacker) Unpack(src buf.Block) (int64, error) {
	if u.c.done == 0 && int64(src.Len()) >= u.c.remaining() {
		n := u.Plan().execute(u.c.user, src, unpackDirection)
		u.c.done = n
		return n, nil
	}
	if u.c.t.plans != nil && ChunkedCompiled() {
		want := int64(src.Len())
		if r := u.c.remaining(); want > r {
			want = r
		}
		if want == 0 {
			return 0, nil
		}
		u.Plan().runChunk(u.c.user, src, u.c.done, u.c.done+want, unpackDirection)
		u.c.skip(want)
		return want, nil
	}
	return u.c.transfer(src, unpackDirection)
}

type direction int

const (
	packDirection direction = iota
	unpackDirection
)

// cursor tracks a position in the packed byte stream of (count×type)
// over a user buffer.
type cursor struct {
	t     *Type
	user  buf.Block
	count int64

	inst   int64 // current instance
	segIdx int64 // segment index within instance
	segOff int64 // bytes consumed within current segment
	done   int64 // total bytes transferred
}

func newCursor(t *Type, user buf.Block, count int) cursor {
	return cursor{t: t, user: user, count: int64(count)}
}

func (c *cursor) total() int64     { return c.count * c.t.size }
func (c *cursor) remaining() int64 { return c.total() - c.done }

// transfer moves up to other.Len() bytes between the packed stream
// (other) and the user buffer, in the given direction.
func (c *cursor) transfer(other buf.Block, dir direction) (int64, error) {
	want := int64(other.Len())
	if r := c.remaining(); want > r {
		want = r
	}
	if want == 0 {
		return 0, nil
	}
	recordCursor(want)
	// Virtual fast path: no byte movement, just cursor arithmetic.
	if c.user.IsVirtual() || other.IsVirtual() {
		c.skip(want)
		return want, nil
	}
	var moved int64
	ext := c.t.Extent()
	for moved < want {
		seg := c.t.r.seg(c.segIdx)
		segBase := c.inst*ext + seg.Off
		n := seg.Len - c.segOff
		if n > want-moved {
			n = want - moved
		}
		userOff := segBase + c.segOff
		switch dir {
		case packDirection:
			buf.CopyAt(other, int(moved), c.user, int(userOff), int(n))
		case unpackDirection:
			buf.CopyAt(c.user, int(userOff), other, int(moved), int(n))
		}
		moved += n
		c.advance(n)
	}
	return moved, nil
}

// advance moves the cursor n bytes forward within the current segment,
// rolling over segments and instances.
func (c *cursor) advance(n int64) {
	c.segOff += n
	c.done += n
	for c.segOff >= c.t.r.seg(c.segIdx).Len && c.done < c.total() {
		c.segOff = 0
		c.segIdx++
		if c.segIdx >= c.t.r.n {
			c.segIdx = 0
			c.inst++
		}
	}
}

// skip advances the cursor by n stream bytes without touching data.
func (c *cursor) skip(n int64) {
	if c.t.size == 0 {
		return
	}
	pos := c.done + n
	c.done = pos
	if pos >= c.total() {
		return
	}
	c.inst = pos / c.t.size
	rem := pos % c.t.size
	if c.t.r.regular {
		c.segIdx = rem / c.t.r.runLen
		c.segOff = rem % c.t.r.runLen
		return
	}
	c.segIdx = 0
	for rem >= c.t.r.segs[c.segIdx].Len {
		rem -= c.t.r.segs[c.segIdx].Len
		c.segIdx++
	}
	c.segOff = rem
}

// typeLayout adapts (count × type) to the layout.Layout interface.
type typeLayout struct {
	t     *Type
	count int64
}

// Layout exposes count instances of the type as a geometric layout for
// the memory model and the harness. Iteration is lazy; nothing is
// materialised.
func (t *Type) Layout(count int) layout.Layout {
	return typeLayout{t: t, count: int64(count)}
}

// Size implements layout.Layout.
func (l typeLayout) Size() int64 { return l.count * l.t.size }

// Extent implements layout.Layout: the highest byte offset one past
// the last touched byte.
func (l typeLayout) Extent() int64 {
	if l.count == 0 || l.t.r.n == 0 {
		return 0
	}
	return (l.count-1)*l.t.Extent() + l.t.r.last()
}

// SegmentCount implements layout.Layout (cross-instance coalescing is
// not counted).
func (l typeLayout) SegmentCount() int { return int(l.count * l.t.r.n) }

// ForEach implements layout.Layout.
func (l typeLayout) ForEach(fn func(layout.Segment) bool) {
	ext := l.t.Extent()
	for i := int64(0); i < l.count; i++ {
		if !l.t.r.forEach(i*ext, fn) {
			return
		}
	}
}

// Name implements layout.Layout.
func (l typeLayout) Name() string { return l.t.kind.String() }

// DescribeFast lets layout.Describe use the closed-form statistics.
func (l typeLayout) DescribeFast() (layout.Stats, bool) {
	return l.t.Stats(int(l.count)), true
}
