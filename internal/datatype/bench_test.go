package datatype

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/buf"
)

func benchVector(b *testing.B, count, blocklen, stride int) (*Type, buf.Block, buf.Block) {
	b.Helper()
	ty, err := Vector(count, blocklen, stride, Float64)
	if err != nil {
		b.Fatal(err)
	}
	if err := ty.Commit(); err != nil {
		b.Fatal(err)
	}
	src := buf.Alloc(int(ty.Extent()))
	src.FillPattern(1)
	dst := buf.Alloc(int(ty.Size()))
	return ty, src, dst
}

func BenchmarkPackEveryOther1MB(b *testing.B) {
	ty, src, dst := benchVector(b, 1<<17, 1, 2)
	b.SetBytes(ty.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ty.Pack(src, 1, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPackBlocked1MB(b *testing.B) {
	ty, src, dst := benchVector(b, 1<<11, 64, 128)
	b.SetBytes(ty.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ty.Pack(src, 1, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnpackEveryOther1MB(b *testing.B) {
	ty, src, dst := benchVector(b, 1<<17, 1, 2)
	if _, err := ty.Pack(src, 1, dst); err != nil {
		b.Fatal(err)
	}
	back := buf.Alloc(int(ty.Extent()))
	b.SetBytes(ty.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ty.Unpack(dst, 1, back); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChunkedPacker(b *testing.B) {
	ty, src, _ := benchVector(b, 1<<17, 1, 2)
	chunk := buf.Alloc(64 << 10)
	b.SetBytes(ty.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := ty.NewPacker(src, 1)
		if err != nil {
			b.Fatal(err)
		}
		for p.Remaining() > 0 {
			if _, err := p.Pack(chunk); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchGeometries is the paper-style sweep for the engine comparison:
// the canonical every-other-element layout and a blocked layout, from
// cache-resident to DRAM-bound sizes.
var benchGeometries = []struct {
	name             string
	blocklen, stride int
	payloads         []int64 // packed bytes
}{
	{"everyOther", 1, 2, []int64{64 << 10, 1 << 20, 16 << 20}},
	{"blocked64", 64, 128, []int64{64 << 10, 1 << 20, 16 << 20}},
}

// BenchmarkPackEngines compares the three pack engines on the same
// (geometry, size) grid: the interpreting cursor, the compiled plan
// restricted to one goroutine, and the parallel plan. The recorded
// MB/s ratios are the repository's compiled-vs-interpreted speedup
// evidence (BENCH_*.json tracks them).
func BenchmarkPackEngines(b *testing.B) {
	for _, g := range benchGeometries {
		for _, payload := range g.payloads {
			count := int(payload) / (g.blocklen * 8)
			ty, src, dst := benchVector(b, count, g.blocklen, g.stride)
			name := fmt.Sprintf("%s/%s", g.name, sizeLabel(payload))
			b.Run("cursor/"+name, func(b *testing.B) {
				b.SetBytes(ty.Size())
				for i := 0; i < b.N; i++ {
					c := newCursor(ty, src, 1)
					if _, err := c.transfer(dst, packDirection); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("compiled/"+name, func(b *testing.B) {
				// Threshold above the payload: single-goroutine kernels.
				SetParallelPackThreshold(payload + 1)
				defer SetParallelPackThreshold(DefaultParallelPackThreshold)
				plan, err := ty.CompilePlan(1)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(ty.Size())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := plan.Pack(src, dst); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("parallel/"+name, func(b *testing.B) {
				SetParallelPackThreshold(1)
				defer SetParallelPackThreshold(DefaultParallelPackThreshold)
				plan, err := ty.CompilePlan(1)
				if err != nil {
					b.Fatal(err)
				}
				if !plan.Parallel() {
					// Too small for >1 worker (or single-core): this
					// cell would silently re-measure the serial kernel.
					b.Skipf("payload %d B cannot engage the parallel splitter", payload)
				}
				b.SetBytes(ty.Size())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := plan.Pack(src, dst); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("steadyState/"+name, func(b *testing.B) {
				// The full steady-state hot path: plan-cache lookup +
				// kernel, as Comm.PackCompiled runs it. Run with
				// -benchmem: zero CompilePlan calls, zero allocs/op.
				if _, err := ty.Pack(src, 1, dst); err != nil {
					b.Fatal(err)
				}
				before := PlanStatsSnapshot()
				b.ReportAllocs()
				b.SetBytes(ty.Size())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := ty.Pack(src, 1, dst); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if d := PlanStatsSnapshot().Sub(before); d.Compiled != 0 || d.PlanMisses != 0 {
					b.Fatalf("steady state compiled %d programs / missed %d lookups", d.Compiled, d.PlanMisses)
				}
			})
			b.Run("chunkedCursor/"+name, func(b *testing.B) {
				SetChunkedCompiled(false)
				defer SetChunkedCompiled(true)
				benchChunkedStream(b, ty, src)
			})
			b.Run("chunkedCompiled/"+name, func(b *testing.B) {
				benchChunkedStream(b, ty, src)
			})
			// The rendezvous typed→typed shapes: staged moves the
			// payload twice (pack into staging, unpack out of it, the
			// classic typed rendezvous), fused moves it once with no
			// staging buffer (the sendv engine). The fused/staged
			// MB/s ratio on everyOther is the repository's
			// fused-rendezvous speedup evidence (≥1.5x expected).
			b.Run("stagedPair/"+name, func(b *testing.B) {
				dst := buf.Alloc(int(ty.Extent()))
				staging := buf.Alloc(int(ty.Size()))
				plan, err := ty.CompilePlan(1)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(ty.Size())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := plan.Pack(src, staging); err != nil {
						b.Fatal(err)
					}
					if _, err := plan.Unpack(staging, dst); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("fusedPair/"+name, func(b *testing.B) {
				dst := buf.Alloc(int(ty.Extent()))
				plan, err := ty.CompilePlan(1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.SetBytes(ty.Size())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := FusedCopy(plan, plan, src, dst); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// benchChunkedStream drains one message through a Packer in 64 KiB
// chunks — the internal-chunk streaming shape of rendezvous sends.
func benchChunkedStream(b *testing.B, ty *Type, src buf.Block) {
	b.Helper()
	chunk := buf.Alloc(64 << 10)
	b.SetBytes(ty.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := ty.NewPacker(src, 1)
		if err != nil {
			b.Fatal(err)
		}
		for p.Remaining() > 0 {
			if _, err := p.Pack(chunk); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkUnpackEngines is the scatter-side mirror of
// BenchmarkPackEngines on the canonical geometry.
func BenchmarkUnpackEngines(b *testing.B) {
	const payload = 1 << 20
	ty, src, dst := benchVector(b, payload/8, 1, 2)
	if _, err := ty.Pack(src, 1, dst); err != nil {
		b.Fatal(err)
	}
	back := buf.Alloc(int(ty.Extent()))
	b.Run("cursor", func(b *testing.B) {
		b.SetBytes(ty.Size())
		for i := 0; i < b.N; i++ {
			c := newCursor(ty, back, 1)
			if _, err := c.transfer(dst, unpackDirection); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		SetParallelPackThreshold(payload + 1)
		defer SetParallelPackThreshold(DefaultParallelPackThreshold)
		plan, err := ty.CompilePlan(1)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(ty.Size())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plan.Unpack(dst, back); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		SetParallelPackThreshold(1)
		defer SetParallelPackThreshold(DefaultParallelPackThreshold)
		plan, err := ty.CompilePlan(1)
		if err != nil {
			b.Fatal(err)
		}
		if !plan.Parallel() {
			b.Skipf("payload %d B cannot engage the parallel splitter", payload)
		}
		b.SetBytes(ty.Size())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plan.Unpack(dst, back); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGatherKernel compares the engines on an irregular
// (indexed-block) layout, where the compiled plan walks its flattened
// segment table.
func BenchmarkGatherKernel(b *testing.B) {
	displs := make([]int, 1<<15)
	pos := 0
	for i := range displs {
		displs[i] = pos
		pos += 2 + (i*7)%3
	}
	ty, err := IndexedBlock(2, displs, Float64)
	if err != nil {
		b.Fatal(err)
	}
	if err := ty.Commit(); err != nil {
		b.Fatal(err)
	}
	src := buf.Alloc(int(ty.r.last()))
	src.FillPattern(1)
	dst := buf.Alloc(int(ty.Size()))
	b.Run("cursor", func(b *testing.B) {
		b.SetBytes(ty.Size())
		for i := 0; i < b.N; i++ {
			c := newCursor(ty, src, 1)
			if _, err := c.transfer(dst, packDirection); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		plan, err := ty.CompilePlan(1)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(ty.Size())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plan.Pack(src, dst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func sizeLabel(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}

// benchNestedBlock builds the 2-D canonical hvector-of-vector shape —
// rows × runs runs at a broken outer pitch, so the flattener emits an
// irregular table the normalizer collapses — compiled under the given
// normalization gate. The +16 pad keeps the outer stride off the inner
// continuation, which would stay on the stride kernel.
func benchNestedBlock(b *testing.B, on bool, rows, runs, bl int) (*Type, buf.Block, buf.Block) {
	b.Helper()
	var ty *Type
	withNormalize(on, func() {
		in, err := Vector(runs, bl, 2*bl, Float64)
		if err != nil {
			b.Fatal(err)
		}
		ty, err = Hvector(rows, 1, in.TrueExtent()+16, in)
		if err != nil {
			b.Fatal(err)
		}
		if err := ty.Commit(); err != nil {
			b.Fatal(err)
		}
	})
	src := buf.Alloc(int(ty.Extent()))
	src.FillPattern(1)
	dst := buf.Alloc(int(ty.Size()))
	return ty, src, dst
}

// benchPackSerial measures the single-goroutine compiled pack of ty —
// the kernel itself, with the parallel splitter held off.
func benchPackSerial(b *testing.B, ty *Type, src, dst buf.Block) {
	b.Helper()
	SetParallelPackThreshold(ty.Size() + 1)
	defer SetParallelPackThreshold(DefaultParallelPackThreshold)
	plan, err := ty.CompilePlan(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(ty.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Pack(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNormalizedKernels compares the raw compiled programs against
// their canonicalised forms on the normalizer's layout families:
// every-other doubles (stride kernel either way — a parity cell), the
// 2-D block of 8-byte runs (the hot unrolled Elem8 tile), and the 2-D
// block of 64-byte runs (the element-agnostic tile). The smoke cell is
// the CI gate: the canonical 2-D block kernel must beat the generic
// gather by >=1.3x and must not allocate in steady state, measured as
// min-of-reps so the verdict holds at -benchtime=1x.
func BenchmarkNormalizedKernels(b *testing.B) {
	const rows, runs = 4096, 16 // 512 KiB of 8-byte runs
	payload := int64(rows * runs * 8)
	b.Run("everyOther/canon", func(b *testing.B) {
		var ty *Type
		withNormalize(true, func() { ty, _, _ = benchVector(b, 1<<16, 1, 2) })
		src := buf.Alloc(int(ty.Extent()))
		src.FillPattern(1)
		benchPackSerial(b, ty, src, buf.Alloc(int(ty.Size())))
	})
	b.Run("everyOther/raw", func(b *testing.B) {
		var ty *Type
		withNormalize(false, func() { ty, _, _ = benchVector(b, 1<<16, 1, 2) })
		src := buf.Alloc(int(ty.Extent()))
		src.FillPattern(1)
		benchPackSerial(b, ty, src, buf.Alloc(int(ty.Size())))
	})
	b.Run("block2dRuns8B/canon", func(b *testing.B) {
		ty, src, dst := benchNestedBlock(b, true, rows, runs, 1)
		benchPackSerial(b, ty, src, dst)
	})
	b.Run("block2dRuns8B/rawGather", func(b *testing.B) {
		ty, src, dst := benchNestedBlock(b, false, rows, runs, 1)
		benchPackSerial(b, ty, src, dst)
	})
	b.Run("block2dRuns64B/canon", func(b *testing.B) {
		ty, src, dst := benchNestedBlock(b, true, 512, runs, 8)
		benchPackSerial(b, ty, src, dst)
	})
	b.Run("block2dRuns64B/rawGather", func(b *testing.B) {
		ty, src, dst := benchNestedBlock(b, false, 512, runs, 8)
		benchPackSerial(b, ty, src, dst)
	})
	b.Run("smoke", func(b *testing.B) {
		canonTy, src, dst := benchNestedBlock(b, true, rows, runs, 1)
		rawTy, _, _ := benchNestedBlock(b, false, rows, runs, 1)
		SetParallelPackThreshold(payload + 1)
		defer SetParallelPackThreshold(DefaultParallelPackThreshold)
		canon, err := canonTy.CompilePlan(1)
		if err != nil {
			b.Fatal(err)
		}
		raw, err := rawTy.CompilePlan(1)
		if err != nil {
			b.Fatal(err)
		}
		if canon.Kernel() != KernelBlock || raw.Kernel() != KernelGather {
			b.Fatalf("smoke geometry compiled to %v/%v, want block/gather", canon.Kernel(), raw.Kernel())
		}
		minPack := func(p *Plan) time.Duration {
			best := time.Duration(1 << 62)
			for r := 0; r < 9; r++ {
				start := time.Now()
				if _, err := p.Pack(src, dst); err != nil {
					b.Fatal(err)
				}
				if el := time.Since(start); el < best {
					best = el
				}
			}
			return best
		}
		minPack(canon) // warm the caches before the measured reps
		minPack(raw)
		canonBest, rawBest := minPack(canon), minPack(raw)
		speedup := float64(rawBest) / float64(canonBest)
		if speedup < 1.3 {
			b.Fatalf("canonical block kernel %.2fx vs generic gather, want >= 1.3x (canon %v, raw %v)",
				speedup, canonBest, rawBest)
		}
		if allocs := testing.AllocsPerRun(10, func() {
			if _, err := canon.Pack(src, dst); err != nil {
				b.Fatal(err)
			}
		}); allocs != 0 {
			b.Fatalf("canonical pack allocates %.0f objects/op in steady state", allocs)
		}
		b.ReportMetric(speedup, "x-speedup")
		b.SetBytes(payload)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := canon.Pack(src, dst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkVectorConstructHuge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ty, err := Vector(100_000_000, 1, 2, Float64)
		if err != nil {
			b.Fatal(err)
		}
		if err := ty.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStatsClosedForm(b *testing.B) {
	ty, err := Vector(100_000_000, 1, 2, Float64)
	if err != nil {
		b.Fatal(err)
	}
	_ = ty.Commit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := ty.Stats(1)
		if st.Segments == 0 {
			b.Fatal("empty stats")
		}
	}
}

func BenchmarkVirtualPackHuge(b *testing.B) {
	ty, err := Vector(100_000_000, 1, 2, Float64)
	if err != nil {
		b.Fatal(err)
	}
	_ = ty.Commit()
	src := buf.Virtual(int(ty.Extent()))
	chunk := buf.Virtual(512 << 10)
	b.SetBytes(ty.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := ty.NewPacker(src, 1)
		if err != nil {
			b.Fatal(err)
		}
		for p.Remaining() > 0 {
			if _, err := p.Pack(chunk); err != nil {
				b.Fatal(err)
			}
		}
	}
}
