package datatype

import (
	"fmt"
	"testing"

	"repro/internal/buf"
)

func benchVector(b *testing.B, count, blocklen, stride int) (*Type, buf.Block, buf.Block) {
	b.Helper()
	ty, err := Vector(count, blocklen, stride, Float64)
	if err != nil {
		b.Fatal(err)
	}
	if err := ty.Commit(); err != nil {
		b.Fatal(err)
	}
	src := buf.Alloc(int(ty.Extent()))
	src.FillPattern(1)
	dst := buf.Alloc(int(ty.Size()))
	return ty, src, dst
}

func BenchmarkPackEveryOther1MB(b *testing.B) {
	ty, src, dst := benchVector(b, 1<<17, 1, 2)
	b.SetBytes(ty.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ty.Pack(src, 1, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPackBlocked1MB(b *testing.B) {
	ty, src, dst := benchVector(b, 1<<11, 64, 128)
	b.SetBytes(ty.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ty.Pack(src, 1, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnpackEveryOther1MB(b *testing.B) {
	ty, src, dst := benchVector(b, 1<<17, 1, 2)
	if _, err := ty.Pack(src, 1, dst); err != nil {
		b.Fatal(err)
	}
	back := buf.Alloc(int(ty.Extent()))
	b.SetBytes(ty.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ty.Unpack(dst, 1, back); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChunkedPacker(b *testing.B) {
	ty, src, _ := benchVector(b, 1<<17, 1, 2)
	chunk := buf.Alloc(64 << 10)
	b.SetBytes(ty.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := ty.NewPacker(src, 1)
		if err != nil {
			b.Fatal(err)
		}
		for p.Remaining() > 0 {
			if _, err := p.Pack(chunk); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchGeometries is the paper-style sweep for the engine comparison:
// the canonical every-other-element layout and a blocked layout, from
// cache-resident to DRAM-bound sizes.
var benchGeometries = []struct {
	name             string
	blocklen, stride int
	payloads         []int64 // packed bytes
}{
	{"everyOther", 1, 2, []int64{64 << 10, 1 << 20, 16 << 20}},
	{"blocked64", 64, 128, []int64{64 << 10, 1 << 20, 16 << 20}},
}

// BenchmarkPackEngines compares the three pack engines on the same
// (geometry, size) grid: the interpreting cursor, the compiled plan
// restricted to one goroutine, and the parallel plan. The recorded
// MB/s ratios are the repository's compiled-vs-interpreted speedup
// evidence (BENCH_*.json tracks them).
func BenchmarkPackEngines(b *testing.B) {
	for _, g := range benchGeometries {
		for _, payload := range g.payloads {
			count := int(payload) / (g.blocklen * 8)
			ty, src, dst := benchVector(b, count, g.blocklen, g.stride)
			name := fmt.Sprintf("%s/%s", g.name, sizeLabel(payload))
			b.Run("cursor/"+name, func(b *testing.B) {
				b.SetBytes(ty.Size())
				for i := 0; i < b.N; i++ {
					c := newCursor(ty, src, 1)
					if _, err := c.transfer(dst, packDirection); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("compiled/"+name, func(b *testing.B) {
				// Threshold above the payload: single-goroutine kernels.
				SetParallelPackThreshold(payload + 1)
				defer SetParallelPackThreshold(DefaultParallelPackThreshold)
				plan, err := ty.CompilePlan(1)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(ty.Size())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := plan.Pack(src, dst); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("parallel/"+name, func(b *testing.B) {
				SetParallelPackThreshold(1)
				defer SetParallelPackThreshold(DefaultParallelPackThreshold)
				plan, err := ty.CompilePlan(1)
				if err != nil {
					b.Fatal(err)
				}
				if !plan.Parallel() {
					// Too small for >1 worker (or single-core): this
					// cell would silently re-measure the serial kernel.
					b.Skipf("payload %d B cannot engage the parallel splitter", payload)
				}
				b.SetBytes(ty.Size())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := plan.Pack(src, dst); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("steadyState/"+name, func(b *testing.B) {
				// The full steady-state hot path: plan-cache lookup +
				// kernel, as Comm.PackCompiled runs it. Run with
				// -benchmem: zero CompilePlan calls, zero allocs/op.
				if _, err := ty.Pack(src, 1, dst); err != nil {
					b.Fatal(err)
				}
				before := PlanStatsSnapshot()
				b.ReportAllocs()
				b.SetBytes(ty.Size())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := ty.Pack(src, 1, dst); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if d := PlanStatsSnapshot().Sub(before); d.Compiled != 0 || d.PlanMisses != 0 {
					b.Fatalf("steady state compiled %d programs / missed %d lookups", d.Compiled, d.PlanMisses)
				}
			})
			b.Run("chunkedCursor/"+name, func(b *testing.B) {
				SetChunkedCompiled(false)
				defer SetChunkedCompiled(true)
				benchChunkedStream(b, ty, src)
			})
			b.Run("chunkedCompiled/"+name, func(b *testing.B) {
				benchChunkedStream(b, ty, src)
			})
			// The rendezvous typed→typed shapes: staged moves the
			// payload twice (pack into staging, unpack out of it, the
			// classic typed rendezvous), fused moves it once with no
			// staging buffer (the sendv engine). The fused/staged
			// MB/s ratio on everyOther is the repository's
			// fused-rendezvous speedup evidence (≥1.5x expected).
			b.Run("stagedPair/"+name, func(b *testing.B) {
				dst := buf.Alloc(int(ty.Extent()))
				staging := buf.Alloc(int(ty.Size()))
				plan, err := ty.CompilePlan(1)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(ty.Size())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := plan.Pack(src, staging); err != nil {
						b.Fatal(err)
					}
					if _, err := plan.Unpack(staging, dst); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("fusedPair/"+name, func(b *testing.B) {
				dst := buf.Alloc(int(ty.Extent()))
				plan, err := ty.CompilePlan(1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.SetBytes(ty.Size())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := FusedCopy(plan, plan, src, dst); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// benchChunkedStream drains one message through a Packer in 64 KiB
// chunks — the internal-chunk streaming shape of rendezvous sends.
func benchChunkedStream(b *testing.B, ty *Type, src buf.Block) {
	b.Helper()
	chunk := buf.Alloc(64 << 10)
	b.SetBytes(ty.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := ty.NewPacker(src, 1)
		if err != nil {
			b.Fatal(err)
		}
		for p.Remaining() > 0 {
			if _, err := p.Pack(chunk); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkUnpackEngines is the scatter-side mirror of
// BenchmarkPackEngines on the canonical geometry.
func BenchmarkUnpackEngines(b *testing.B) {
	const payload = 1 << 20
	ty, src, dst := benchVector(b, payload/8, 1, 2)
	if _, err := ty.Pack(src, 1, dst); err != nil {
		b.Fatal(err)
	}
	back := buf.Alloc(int(ty.Extent()))
	b.Run("cursor", func(b *testing.B) {
		b.SetBytes(ty.Size())
		for i := 0; i < b.N; i++ {
			c := newCursor(ty, back, 1)
			if _, err := c.transfer(dst, unpackDirection); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		SetParallelPackThreshold(payload + 1)
		defer SetParallelPackThreshold(DefaultParallelPackThreshold)
		plan, err := ty.CompilePlan(1)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(ty.Size())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plan.Unpack(dst, back); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		SetParallelPackThreshold(1)
		defer SetParallelPackThreshold(DefaultParallelPackThreshold)
		plan, err := ty.CompilePlan(1)
		if err != nil {
			b.Fatal(err)
		}
		if !plan.Parallel() {
			b.Skipf("payload %d B cannot engage the parallel splitter", payload)
		}
		b.SetBytes(ty.Size())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plan.Unpack(dst, back); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGatherKernel compares the engines on an irregular
// (indexed-block) layout, where the compiled plan walks its flattened
// segment table.
func BenchmarkGatherKernel(b *testing.B) {
	displs := make([]int, 1<<15)
	pos := 0
	for i := range displs {
		displs[i] = pos
		pos += 2 + (i*7)%3
	}
	ty, err := IndexedBlock(2, displs, Float64)
	if err != nil {
		b.Fatal(err)
	}
	if err := ty.Commit(); err != nil {
		b.Fatal(err)
	}
	src := buf.Alloc(int(ty.r.last()))
	src.FillPattern(1)
	dst := buf.Alloc(int(ty.Size()))
	b.Run("cursor", func(b *testing.B) {
		b.SetBytes(ty.Size())
		for i := 0; i < b.N; i++ {
			c := newCursor(ty, src, 1)
			if _, err := c.transfer(dst, packDirection); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		plan, err := ty.CompilePlan(1)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(ty.Size())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plan.Pack(src, dst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func sizeLabel(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}

func BenchmarkVectorConstructHuge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ty, err := Vector(100_000_000, 1, 2, Float64)
		if err != nil {
			b.Fatal(err)
		}
		if err := ty.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStatsClosedForm(b *testing.B) {
	ty, err := Vector(100_000_000, 1, 2, Float64)
	if err != nil {
		b.Fatal(err)
	}
	_ = ty.Commit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := ty.Stats(1)
		if st.Segments == 0 {
			b.Fatal("empty stats")
		}
	}
}

func BenchmarkVirtualPackHuge(b *testing.B) {
	ty, err := Vector(100_000_000, 1, 2, Float64)
	if err != nil {
		b.Fatal(err)
	}
	_ = ty.Commit()
	src := buf.Virtual(int(ty.Extent()))
	chunk := buf.Virtual(512 << 10)
	b.SetBytes(ty.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := ty.NewPacker(src, 1)
		if err != nil {
			b.Fatal(err)
		}
		for p.Remaining() > 0 {
			if _, err := p.Pack(chunk); err != nil {
				b.Fatal(err)
			}
		}
	}
}
