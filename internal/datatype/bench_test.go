package datatype

import (
	"testing"

	"repro/internal/buf"
)

func benchVector(b *testing.B, count, blocklen, stride int) (*Type, buf.Block, buf.Block) {
	b.Helper()
	ty, err := Vector(count, blocklen, stride, Float64)
	if err != nil {
		b.Fatal(err)
	}
	if err := ty.Commit(); err != nil {
		b.Fatal(err)
	}
	src := buf.Alloc(int(ty.Extent()))
	src.FillPattern(1)
	dst := buf.Alloc(int(ty.Size()))
	return ty, src, dst
}

func BenchmarkPackEveryOther1MB(b *testing.B) {
	ty, src, dst := benchVector(b, 1<<17, 1, 2)
	b.SetBytes(ty.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ty.Pack(src, 1, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPackBlocked1MB(b *testing.B) {
	ty, src, dst := benchVector(b, 1<<11, 64, 128)
	b.SetBytes(ty.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ty.Pack(src, 1, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnpackEveryOther1MB(b *testing.B) {
	ty, src, dst := benchVector(b, 1<<17, 1, 2)
	if _, err := ty.Pack(src, 1, dst); err != nil {
		b.Fatal(err)
	}
	back := buf.Alloc(int(ty.Extent()))
	b.SetBytes(ty.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ty.Unpack(dst, 1, back); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChunkedPacker(b *testing.B) {
	ty, src, _ := benchVector(b, 1<<17, 1, 2)
	chunk := buf.Alloc(64 << 10)
	b.SetBytes(ty.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := ty.NewPacker(src, 1)
		if err != nil {
			b.Fatal(err)
		}
		for p.Remaining() > 0 {
			if _, err := p.Pack(chunk); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkVectorConstructHuge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ty, err := Vector(100_000_000, 1, 2, Float64)
		if err != nil {
			b.Fatal(err)
		}
		if err := ty.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStatsClosedForm(b *testing.B) {
	ty, err := Vector(100_000_000, 1, 2, Float64)
	if err != nil {
		b.Fatal(err)
	}
	_ = ty.Commit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := ty.Stats(1)
		if st.Segments == 0 {
			b.Fatal("empty stats")
		}
	}
}

func BenchmarkVirtualPackHuge(b *testing.B) {
	ty, err := Vector(100_000_000, 1, 2, Float64)
	if err != nil {
		b.Fatal(err)
	}
	_ = ty.Commit()
	src := buf.Virtual(int(ty.Extent()))
	chunk := buf.Virtual(512 << 10)
	b.SetBytes(ty.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := ty.NewPacker(src, 1)
		if err != nil {
			b.Fatal(err)
		}
		for p.Remaining() > 0 {
			if _, err := p.Pack(chunk); err != nil {
				b.Fatal(err)
			}
		}
	}
}
