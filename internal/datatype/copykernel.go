package datatype

import "unsafe"

// This file implements the word-wide copy kernel behind the compiled
// plan executors and the fused transfer engine. The runs a
// non-contiguous layout decomposes into are mostly short — the paper's
// canonical case is an 8-byte double every 16 bytes — and at those
// lengths the per-call dispatch of the runtime memmove costs more than
// the move itself. copyRun moves whole machine words instead of bytes:
// an aligned fast path issues true 8-byte (or 4-byte) loads and
// stores, a mutually-misaligned path falls back to alignment-free
// [8]byte array moves (which the compiler lowers to wide instructions
// on the targets we care about and to safe byte sequences elsewhere),
// and a byte tail finishes the 1–7 remaining bytes.
//
// Contract: dst and src must not overlap (the copy is forward-only and
// word-granular); callers owning potentially-aliased buffers must use
// the staged path. Bounds: len(dst) >= n and len(src) >= n — enforced
// by the initial reslice, so a violating caller panics instead of
// corrupting memory.

// longRunCopy is the run length beyond which the runtime memmove —
// with its vectorised bulk loops — wins over the word loop and the
// call overhead is amortised anyway.
const longRunCopy = 256

// copyRun copies n bytes from src to dst, word-wide. See the file
// comment for the overlap and bounds contract.
func copyRun(dst, src []byte, n int64) {
	if n <= 0 {
		return
	}
	dst, src = dst[:n], src[:n] // one bounds check; panics on misuse
	if n >= longRunCopy {
		copy(dst, src)
		return
	}
	dp := unsafe.Pointer(&dst[0])
	sp := unsafe.Pointer(&src[0])
	var i int64
	switch {
	case (uintptr(dp)^uintptr(sp))&7 == 0:
		// Co-aligned mod 8: a byte head brings both pointers to an
		// 8-byte boundary, then true word loads/stores.
		for ; i < n && uintptr(unsafe.Add(dp, i))&7 != 0; i++ {
			dst[i] = src[i]
		}
		for ; i+32 <= n; i += 32 {
			*(*uint64)(unsafe.Add(dp, i)) = *(*uint64)(unsafe.Add(sp, i))
			*(*uint64)(unsafe.Add(dp, i+8)) = *(*uint64)(unsafe.Add(sp, i+8))
			*(*uint64)(unsafe.Add(dp, i+16)) = *(*uint64)(unsafe.Add(sp, i+16))
			*(*uint64)(unsafe.Add(dp, i+24)) = *(*uint64)(unsafe.Add(sp, i+24))
		}
		for ; i+8 <= n; i += 8 {
			*(*uint64)(unsafe.Add(dp, i)) = *(*uint64)(unsafe.Add(sp, i))
		}
	case (uintptr(dp)^uintptr(sp))&3 == 0:
		// Co-aligned mod 4 only: 4-byte words after a byte head.
		for ; i < n && uintptr(unsafe.Add(dp, i))&3 != 0; i++ {
			dst[i] = src[i]
		}
		for ; i+4 <= n; i += 4 {
			*(*uint32)(unsafe.Add(dp, i)) = *(*uint32)(unsafe.Add(sp, i))
		}
	default:
		// Mutually misaligned: [8]byte has alignment 1, so these array
		// moves are legal at any address on every platform.
		for ; i+8 <= n; i += 8 {
			*(*[8]byte)(unsafe.Add(dp, i)) = *(*[8]byte)(unsafe.Add(sp, i))
		}
	}
	if i+4 <= n {
		*(*[4]byte)(unsafe.Add(dp, i)) = *(*[4]byte)(unsafe.Add(sp, i))
		i += 4
	}
	for ; i < n; i++ {
		dst[i] = src[i]
	}
}
