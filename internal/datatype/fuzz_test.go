package datatype

import (
	"bytes"
	"testing"

	"repro/internal/buf"
	"repro/internal/layout"
)

// fuzzDecoder turns a fuzz byte string into bounded constructor
// arguments: a deterministic mapping so every corpus entry is a
// reproducible (type, count, seed) triple.
type fuzzDecoder struct {
	data []byte
	pos  int
}

func (d *fuzzDecoder) byte() byte {
	if d.pos >= len(d.data) {
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

// intn returns a value in [0, n).
func (d *fuzzDecoder) intn(n int) int { return int(d.byte()) % n }

// decodeType builds a committed type from the fuzz stream, recursing
// one level for nested indexed/struct-of-vector shapes. It returns nil
// when the stream encodes invalid constructor arguments (those draws
// are skipped, not failed: rejecting them is the constructors' job and
// covered by unit tests).
func decodeType(d *fuzzDecoder, depth int) *Type {
	base := []*Type{Byte, Int32, Float64, Complex128}[d.intn(4)]
	if depth > 0 && d.intn(4) == 0 {
		base = decodeType(d, depth-1)
		if base == nil {
			return nil
		}
	}
	if d.intn(5) == 0 {
		// Resized base: pad the extent past the true span, so every
		// constructor is exercised over a base whose extent disagrees
		// with its payload (the dense-base-assumption class).
		rz, err := Resized(base, 0, base.TrueExtent()+int64(d.intn(16)))
		if err != nil {
			return nil
		}
		base = rz
	}
	var ty *Type
	var err error
	switch d.intn(8) {
	case 0:
		ty, err = Contiguous(d.intn(8)+1, base)
	case 1:
		bl := d.intn(4) + 1
		ty, err = Vector(d.intn(30)+1, bl, bl+d.intn(5), base)
	case 2:
		bl := d.intn(3) + 1
		ty, err = Hvector(d.intn(20)+1, bl, int64(bl)*base.Extent()+int64(d.intn(32)), base)
	case 3:
		n := d.intn(6) + 1
		blocklens := make([]int, n)
		displs := make([]int, n)
		pos := 0
		for i := 0; i < n; i++ {
			blocklens[i] = d.intn(4) + 1
			displs[i] = pos
			pos += blocklens[i] + d.intn(5)
		}
		ty, err = Indexed(blocklens, displs, base)
	case 4:
		bl := d.intn(3) + 1
		n := d.intn(6) + 1
		displs := make([]int, n)
		pos := 0
		for i := 0; i < n; i++ {
			displs[i] = pos
			pos += bl + d.intn(5)
		}
		ty, err = IndexedBlock(bl, displs, base)
	case 5:
		fields := []*Type{Int32, base, Float64}
		blocklens := make([]int, len(fields))
		displs := make([]int64, len(fields))
		var pos int64
		for i, f := range fields {
			blocklens[i] = d.intn(3) + 1
			displs[i] = pos
			pos += int64(blocklens[i])*f.Extent() + int64(d.intn(9))
		}
		ty, err = Struct(blocklens, displs, fields)
	case 6:
		rows, cols := d.intn(6)+1, d.intn(8)+1
		sr, sc := d.intn(rows), d.intn(cols)
		ty, err = Subarray([]int{rows, cols}, []int{rows - sr, cols - sc}, []int{sr, sc}, OrderC, base)
	case 7:
		// 3-D subarray with strictly partial rows: the
		// subarray-of-contiguous family the normalizer collapses into a
		// block form, exercised here over every base element.
		planes, rows, cols := d.intn(3)+1, d.intn(4)+1, d.intn(6)+2
		sp, sr := d.intn(planes), d.intn(rows)
		sc := d.intn(cols-1) + 1
		ty, err = Subarray([]int{planes, rows, cols},
			[]int{planes - sp, rows - sr, cols - sc},
			[]int{sp, sr, sc}, OrderC, base)
	}
	if err != nil {
		return nil
	}
	if err := ty.Commit(); err != nil {
		return nil
	}
	return ty
}

// FuzzPackRoundtrip fuzzes the Pack→Unpack roundtrip over
// indexed/struct/nested types through the compiled-plan path and
// cross-checks the packed bytes against the interpreting cursor. The
// seed corpus encodes the constructor cases of pack_test.go.
func FuzzPackRoundtrip(f *testing.F) {
	// Corpus: first byte pair selects base/nesting, then constructor
	// selector and parameters; trailing bytes are count and fill seed.
	f.Add([]byte{2, 1, 0, 12, 1, 7})               // contiguous(13, Float64)
	f.Add([]byte{2, 1, 1, 8, 1, 3, 2, 11})         // vector(9,2,5)
	f.Add([]byte{2, 1, 2, 6, 0, 16, 1, 5})         // hvector
	f.Add([]byte{2, 1, 3, 2, 1, 0, 0, 2, 2, 1})    // indexed
	f.Add([]byte{2, 1, 4, 1, 2, 0, 4, 3, 13})      // indexed block
	f.Add([]byte{2, 1, 5, 0, 1, 0, 1, 0, 2, 17})   // struct
	f.Add([]byte{2, 1, 6, 5, 5, 2, 3, 1, 29})      // subarray
	f.Add([]byte{0, 0, 1, 0, 0, 0, 0, 0})          // byte-element vector
	f.Add([]byte{3, 4, 3, 1, 1, 1, 1, 1, 1, 1, 1}) // nested indexed over a derived base
	// Fused sender/receiver pairs: a first type, count and seed, then
	// chunk splits, then a second type for the fused differential.
	f.Add([]byte{2, 1, 1, 8, 1, 3, 2, 11, 40, 40, 2, 1, 1, 5, 2, 4, 1})      // vector -> vector, different stride
	f.Add([]byte{2, 1, 1, 8, 1, 3, 2, 11, 40, 40, 2, 1, 0, 12, 1})           // vector -> contiguous
	f.Add([]byte{2, 1, 3, 2, 1, 0, 0, 2, 2, 1, 30, 30, 2, 1, 1, 6, 1, 2, 2}) // indexed -> vector
	f.Add([]byte{2, 1, 0, 12, 1, 7, 25, 25, 2, 1, 3, 2, 1, 0, 0, 2, 2})      // contiguous -> indexed
	f.Add([]byte{2, 6, 1, 8, 1, 3, 2, 11, 40, 40, 2, 6, 2, 6, 0, 16, 1})     // resized vector -> resized hvector
	// Pipelined chunk splits: the trailing byte pair after the chunked
	// splits draws the slot-ring chunk size and depth.
	f.Add([]byte{2, 1, 1, 8, 1, 3, 2, 11, 16, 16, 16, 16, 0, 1})     // vector through 1-byte chunks, depth 2
	f.Add([]byte{2, 1, 3, 2, 1, 0, 0, 2, 2, 1, 9, 9, 9, 9, 6, 3})    // indexed through 7-byte chunks, depth 4
	f.Add([]byte{2, 6, 1, 8, 1, 3, 2, 11, 12, 12, 12, 12, 254, 0})   // resized vector through 255-byte chunks, depth 1
	f.Add([]byte{3, 4, 3, 1, 1, 1, 1, 1, 1, 1, 1, 8, 8, 8, 8, 2, 2}) // nested indexed, 3-byte chunks
	// Normalizer shapes: hvector-of-vector (the 2-D canonical block
	// family) and a 3-D subarray with strictly partial rows, so the
	// on/off differential below covers the collapsed kernels.
	f.Add([]byte{2, 0, 2, 1, 1, 7, 0, 1, 1, 2, 0, 5, 16, 0, 7}) // hvector(6) of vector(8,1,2,f64), broken pitch
	f.Add([]byte{2, 1, 1, 7, 1, 2, 4, 0, 0, 1, 0, 11})          // subarray [2,3,6]->[2,3,4] partial rows

	f.Fuzz(func(t *testing.T, data []byte) {
		d := &fuzzDecoder{data: data}
		ty := decodeType(d, 1)
		if ty == nil {
			t.Skip("draw encodes invalid constructor arguments")
		}
		count := d.intn(3) + 1
		seed := d.byte()

		bufLen := userBufLen(ty, count)
		src := buf.Alloc(bufLen)
		src.FillPattern(seed)

		// Compiled pack.
		packed := buf.Alloc(int(ty.PackSize(count)))
		n, err := ty.Pack(src, count, packed)
		if err != nil {
			t.Fatalf("pack (%v): %v", ty, err)
		}
		if n != ty.PackSize(count) {
			t.Fatalf("pack (%v): %d bytes, want %d", ty, n, ty.PackSize(count))
		}

		// Differential: the cursor must produce the identical stream.
		c := newCursor(ty, src, count)
		oracle := buf.Alloc(int(ty.PackSize(count)))
		if _, err := c.transfer(oracle, packDirection); err != nil {
			t.Fatalf("cursor pack (%v): %v", ty, err)
		}
		if !bytes.Equal(packed.Bytes(), oracle.Bytes()) {
			t.Fatalf("compiled pack differs from cursor for %v count=%d", ty, count)
		}

		// Chunked differential: stream the same message through
		// Packer/Unpacker in fuzz-chosen split sizes — the
		// compiled-chunked tier — and require the identical stream and
		// the identical scatter.
		p, err := ty.NewPacker(src, count)
		if err != nil {
			t.Fatalf("packer (%v): %v", ty, err)
		}
		streamed := make([]byte, 0, len(packed.Bytes()))
		for p.Remaining() > 0 {
			n := int64(d.byte()) + 1
			if n > p.Remaining() {
				n = p.Remaining()
			}
			piece := buf.Alloc(int(n))
			m, err := p.Pack(piece)
			if err != nil {
				t.Fatalf("chunked pack (%v): %v", ty, err)
			}
			streamed = append(streamed, piece.Bytes()[:m]...)
		}
		if !bytes.Equal(streamed, packed.Bytes()) {
			t.Fatalf("compiled-chunked stream differs from whole-message pack for %v count=%d", ty, count)
		}
		chunkDst := buf.Alloc(bufLen)
		u, err := ty.NewUnpacker(chunkDst, count)
		if err != nil {
			t.Fatalf("unpacker (%v): %v", ty, err)
		}
		off := 0
		for u.Remaining() > 0 {
			n := int(d.byte()) + 1
			if int64(n) > u.Remaining() {
				n = int(u.Remaining())
			}
			if _, err := u.Unpack(buf.FromBytes(streamed[off : off+n])); err != nil {
				t.Fatalf("chunked unpack (%v): %v", ty, err)
			}
			off += n
		}

		// Pipelined differential: drive the chunk-slot pipeline over a
		// fuzz-drawn chunk size and ring depth and require the
		// reassembled stream to match the whole-message pack — the
		// chunk-split shape of the pipelined rendezvous.
		if total := ty.PackSize(count); total > 0 {
			chunk := int64(d.byte()) + 1
			depth := d.intn(4) + 1
			plan, err := ty.CompilePlan(count)
			if err != nil {
				t.Fatalf("plan (%v): %v", ty, err)
			}
			cp, err := NewChunkPipeline(plan, src, 0, total, chunk, depth, 0)
			if err != nil {
				t.Fatalf("pipeline (%v chunk=%d depth=%d): %v", ty, chunk, depth, err)
			}
			piped := make([]byte, 0, total)
			for {
				ch, ok := cp.Next()
				if !ok {
					break
				}
				piped = append(piped, ch.Data.Bytes()...)
				cp.Recycle(ch)
			}
			cp.Close()
			if !bytes.Equal(piped, packed.Bytes()) {
				t.Fatalf("pipelined stream differs from whole-message pack for %v count=%d chunk=%d depth=%d", ty, count, chunk, depth)
			}
		}

		// Fused differential: draw a second (receiver) type from the
		// remaining stream and require the one-pass fused transfer to
		// reproduce the staged pack→unpack pipeline byte for byte —
		// the sender/receiver pair shape of the sendv rendezvous.
		if dstTy := decodeType(d, 1); dstTy != nil {
			dstCount := d.intn(3) + 1
			srcPlan, err := ty.CompilePlan(count)
			if err != nil {
				t.Fatalf("src plan (%v): %v", ty, err)
			}
			dstPlan, err := dstTy.CompilePlan(dstCount)
			if err != nil {
				t.Fatalf("dst plan (%v): %v", dstTy, err)
			}
			if dstPlan.FusedDstSafe() {
				dstLen := userBufLen(dstTy, dstCount)
				fusedDst := buf.Alloc(dstLen)
				if _, err := FusedCopy(srcPlan, dstPlan, src, fusedDst); err != nil {
					t.Fatalf("fused copy (%v -> %v): %v", ty, dstTy, err)
				}
				// Oracle: the staged pipeline over the shared prefix.
				oracleDst := buf.Alloc(dstLen)
				prefix := ty.PackSize(count)
				if need := dstTy.PackSize(dstCount); need < prefix {
					prefix = need
				}
				if prefix > 0 {
					u, err := dstTy.NewUnpacker(oracleDst, dstCount)
					if err != nil {
						t.Fatalf("oracle unpacker (%v): %v", dstTy, err)
					}
					if _, err := u.Unpack(packed.Slice(0, int(prefix))); err != nil {
						t.Fatalf("oracle unpack (%v): %v", dstTy, err)
					}
				}
				if !bytes.Equal(fusedDst.Bytes(), oracleDst.Bytes()) {
					t.Fatalf("fused transfer differs from staged oracle for %v count=%d -> %v count=%d", ty, count, dstTy, dstCount)
				}
			}
		}

		// Roundtrip: unpack into a fresh buffer; layout bytes must
		// match the source and non-layout bytes must stay zero.
		back := buf.Alloc(bufLen)
		if _, err := ty.Unpack(packed, count, back); err != nil {
			t.Fatalf("unpack (%v): %v", ty, err)
		}
		if !bytes.Equal(chunkDst.Bytes(), back.Bytes()) {
			t.Fatalf("compiled-chunked unpack differs from whole-message unpack for %v count=%d", ty, count)
		}
		inLayout := make([]bool, bufLen)
		ext := ty.Extent()
		for i := 0; i < count; i++ {
			ty.r.forEach(int64(i)*ext, func(s layout.Segment) bool {
				for off := s.Off; off < s.End(); off++ {
					inLayout[off] = true
				}
				return true
			})
		}
		for i := 0; i < bufLen; i++ {
			if inLayout[i] {
				if back.Bytes()[i] != src.Bytes()[i] {
					t.Fatalf("roundtrip (%v count=%d): layout byte %d differs", ty, count, i)
				}
			} else if back.Bytes()[i] != 0 {
				t.Fatalf("roundtrip (%v count=%d): wrote outside the layout at %d", ty, count, i)
			}
		}

		// Normalization differential: rebuild the identical draw with
		// the Commit-time normalizer disabled and require the raw
		// program to produce the same packed stream, the same scatter
		// and the same ChecksumRange folds — the canonical program must
		// be byte-for-byte indistinguishable from the table walk.
		var rawTy *Type
		withNormalize(false, func() { rawTy = decodeType(&fuzzDecoder{data: data}, 1) })
		if rawTy == nil {
			t.Fatalf("raw re-decode diverged for %v", ty)
		}
		rawPacked := buf.Alloc(int(rawTy.PackSize(count)))
		if _, err := rawTy.Pack(src, count, rawPacked); err != nil {
			t.Fatalf("raw pack (%v): %v", rawTy, err)
		}
		if !bytes.Equal(rawPacked.Bytes(), packed.Bytes()) {
			t.Fatalf("normalized pack differs from raw for %v count=%d (%s)", ty, count, ty.CanonicalString())
		}
		rawBack := buf.Alloc(bufLen)
		if _, err := rawTy.Unpack(packed, count, rawBack); err != nil {
			t.Fatalf("raw unpack (%v): %v", rawTy, err)
		}
		if !bytes.Equal(rawBack.Bytes(), back.Bytes()) {
			t.Fatalf("normalized unpack differs from raw for %v count=%d (%s)", ty, count, ty.CanonicalString())
		}
		if total := ty.PackSize(count); total > 0 {
			normPlan, err := ty.CompilePlan(count)
			if err != nil {
				t.Fatalf("norm plan (%v): %v", ty, err)
			}
			rawPlan, err := rawTy.CompilePlan(count)
			if err != nil {
				t.Fatalf("raw plan (%v): %v", rawTy, err)
			}
			var sumN, sumR buf.Checksum
			mid := total / 3
			normPlan.ChecksumRange(src, 0, mid, &sumN)
			normPlan.ChecksumRange(src, mid, total, &sumN)
			rawPlan.ChecksumRange(src, 0, mid, &sumR)
			rawPlan.ChecksumRange(src, mid, total, &sumR)
			if sumN.Sum64() != sumR.Sum64() {
				t.Fatalf("normalized checksum differs from raw for %v count=%d (%s)", ty, count, ty.CanonicalString())
			}
		}
	})
}
