package datatype

import (
	"fmt"

	"repro/internal/layout"
)

// Basic predeclared types, mirroring the MPI basic datatypes the
// benchmark uses. They are committed at package initialisation.
var (
	Byte       = newBasic("MPI_BYTE", 1)
	Char       = newBasic("MPI_CHAR", 1)
	Int32      = newBasic("MPI_INT32", 4)
	Int64      = newBasic("MPI_INT64", 8)
	Float32    = newBasic("MPI_FLOAT", 4)
	Float64    = newBasic("MPI_DOUBLE", 8)
	Complex128 = newBasic("MPI_DOUBLE_COMPLEX", 16)
)

func newBasic(name string, size int64) *Type {
	return &Type{
		kind:      KindBasic,
		name:      name,
		committed: true,
		size:      size,
		lb:        0,
		ub:        size,
		alignment: size,
		r:         regularRuns(0, size, 0, 1),
		plans:     &planCache{},
	}
}

// Packed is the analogue of MPI_PACKED: a committed byte type used as
// the element type of explicitly packed buffers.
var Packed = newBasic("MPI_PACKED", 1)

// Contiguous builds a type of count consecutive copies of base
// (MPI_Type_contiguous).
func Contiguous(count int, base *Type) (*Type, error) {
	if err := checkBase(base); err != nil {
		return nil, err
	}
	if count < 0 {
		return nil, fmt.Errorf("%w: contiguous count %d", ErrArgument, count)
	}
	r, err := replicate(base.r, base.Extent(), int64(count))
	if err != nil {
		return nil, err
	}
	t := &Type{
		kind:      KindContiguous,
		size:      int64(count) * base.size,
		lb:        base.lb,
		ub:        base.lb + int64(count)*base.Extent(),
		alignment: base.alignment,
		r:         r,
	}
	if count == 0 {
		t.lb, t.ub = 0, 0
	}
	return t, nil
}

// Vector builds count blocks of blocklen base elements whose starts
// are stride base-extents apart (MPI_Type_vector). stride may exceed
// blocklen (gaps) or equal it (contiguous); negative strides are not
// supported because our buffers are addressed from offset zero.
func Vector(count, blocklen, stride int, base *Type) (*Type, error) {
	if err := checkBase(base); err != nil {
		return nil, err
	}
	return hvector(KindVector, count, blocklen, int64(stride)*base.Extent(), base)
}

// Hvector is Vector with the stride given in bytes
// (MPI_Type_create_hvector).
func Hvector(count, blocklen int, strideBytes int64, base *Type) (*Type, error) {
	if err := checkBase(base); err != nil {
		return nil, err
	}
	return hvector(KindHvector, count, blocklen, strideBytes, base)
}

func hvector(kind Kind, count, blocklen int, strideBytes int64, base *Type) (*Type, error) {
	if count < 0 || blocklen < 0 {
		return nil, fmt.Errorf("%w: vector count %d blocklen %d", ErrArgument, count, blocklen)
	}
	if count > 0 && blocklen > 0 && strideBytes < 0 {
		return nil, fmt.Errorf("%w: negative stride %d not supported", ErrArgument, strideBytes)
	}
	// One block: blocklen contiguous copies of base.
	block, err := replicate(base.r, base.Extent(), int64(blocklen))
	if err != nil {
		return nil, err
	}
	blockExtent := int64(blocklen) * base.Extent()
	if count > 0 && blocklen > 0 && strideBytes < blockExtent {
		return nil, fmt.Errorf("%w: stride %d bytes under block extent %d", ErrOverlap, strideBytes, blockExtent)
	}
	var r runs
	if block.regular && block.n == 1 {
		// The common dense-block case: a pure regular pattern. The
		// stride must clear the block's real payload run, not just its
		// extent: a Resized base can shrink the extent under the run,
		// and blockExtent alone would let this path build overlapping
		// runs with a negative gap (the general replicate path below
		// rejects the same shape with ErrOverlap).
		if count > 1 && strideBytes < block.runLen {
			return nil, fmt.Errorf("%w: stride %d bytes under block run of %d", ErrOverlap, strideBytes, block.runLen)
		}
		r = regularRuns(block.start, block.runLen, strideBytes-block.runLen, int64(count))
	} else {
		r, err = replicate(block, strideBytes, int64(count))
		if err != nil {
			return nil, err
		}
	}
	var ub int64
	if count > 0 && blocklen > 0 {
		ub = base.lb + int64(count-1)*strideBytes + blockExtent
	}
	t := &Type{
		kind:      kind,
		size:      int64(count) * int64(blocklen) * base.size,
		lb:        base.lb,
		ub:        ub,
		alignment: base.alignment,
		r:         r,
	}
	if t.size == 0 {
		t.lb, t.ub = 0, 0
	}
	return t, nil
}

// Indexed builds blocks of blocklens[i] base elements displaced by
// displs[i] base-extents (MPI_Type_indexed).
func Indexed(blocklens, displs []int, base *Type) (*Type, error) {
	if err := checkBase(base); err != nil {
		return nil, err
	}
	if len(blocklens) != len(displs) {
		return nil, fmt.Errorf("%w: %d blocklens but %d displacements", ErrArgument, len(blocklens), len(displs))
	}
	bdispls := make([]int64, len(displs))
	for i, d := range displs {
		bdispls[i] = int64(d) * base.Extent()
	}
	blens := append([]int(nil), blocklens...)
	return hindexed(KindIndexed, blens, bdispls, base)
}

// Hindexed is Indexed with byte displacements
// (MPI_Type_create_hindexed).
func Hindexed(blocklens []int, displsBytes []int64, base *Type) (*Type, error) {
	if err := checkBase(base); err != nil {
		return nil, err
	}
	if len(blocklens) != len(displsBytes) {
		return nil, fmt.Errorf("%w: %d blocklens but %d displacements", ErrArgument, len(blocklens), len(displsBytes))
	}
	return hindexed(KindHindexed, append([]int(nil), blocklens...), append([]int64(nil), displsBytes...), base)
}

// IndexedBlock builds equally sized blocks at the given base-extent
// displacements (MPI_Type_create_indexed_block).
func IndexedBlock(blocklen int, displs []int, base *Type) (*Type, error) {
	if err := checkBase(base); err != nil {
		return nil, err
	}
	blocklens := make([]int, len(displs))
	bdispls := make([]int64, len(displs))
	for i, d := range displs {
		blocklens[i] = blocklen
		bdispls[i] = int64(d) * base.Extent()
	}
	return hindexed(KindIndexedBlock, blocklens, bdispls, base)
}

func hindexed(kind Kind, blocklens []int, displs []int64, base *Type) (*Type, error) {
	var segs []layout.Segment
	var size int64
	lb, ub := int64(0), int64(0)
	first := true
	for i, bl := range blocklens {
		if bl < 0 {
			return nil, fmt.Errorf("%w: blocklen %d", ErrArgument, bl)
		}
		if bl == 0 {
			continue
		}
		block, err := replicate(base.r, base.Extent(), int64(bl))
		if err != nil {
			return nil, err
		}
		block = block.shifted(displs[i])
		if !block.forEach(0, func(s layout.Segment) bool {
			segs = append(segs, s)
			return int64(len(segs)) <= maxMaterialize
		}) {
			return nil, errTooManySegments(int64(len(segs)))
		}
		size += int64(bl) * base.size
		blb := displs[i] + base.lb
		bub := displs[i] + base.lb + int64(bl)*base.Extent()
		if first || blb < lb {
			lb = blb
		}
		if first || bub > ub {
			ub = bub
		}
		first = false
	}
	r, err := irregularRuns(segs)
	if err != nil {
		return nil, err
	}
	return &Type{
		kind:      kind,
		size:      size,
		lb:        lb,
		ub:        ub,
		alignment: base.alignment,
		r:         r,
	}, nil
}

// Struct builds a heterogeneous type: blocklens[i] copies of types[i]
// at byte displacement displs[i] (MPI_Type_create_struct). The extent
// is padded to the alignment of the largest basic component, the
// "epsilon" of the MPI standard.
func Struct(blocklens []int, displs []int64, types []*Type) (*Type, error) {
	if len(blocklens) != len(displs) || len(blocklens) != len(types) {
		return nil, fmt.Errorf("%w: struct arrays disagree: %d/%d/%d", ErrArgument, len(blocklens), len(displs), len(types))
	}
	if len(types) == 0 {
		return nil, fmt.Errorf("%w: empty struct", ErrArgument)
	}
	var segs []layout.Segment
	var size int64
	var align int64 = 1
	lb, ub := int64(0), int64(0)
	first := true
	for i, ft := range types {
		if err := checkBase(ft); err != nil {
			return nil, fmt.Errorf("struct field %d: %w", i, err)
		}
		if blocklens[i] < 0 {
			return nil, fmt.Errorf("%w: struct field %d blocklen %d", ErrArgument, i, blocklens[i])
		}
		if ft.alignment > align {
			align = ft.alignment
		}
		if blocklens[i] == 0 {
			continue
		}
		block, err := replicate(ft.r, ft.Extent(), int64(blocklens[i]))
		if err != nil {
			return nil, err
		}
		block = block.shifted(displs[i])
		if !block.forEach(0, func(s layout.Segment) bool {
			segs = append(segs, s)
			return int64(len(segs)) <= maxMaterialize
		}) {
			return nil, errTooManySegments(int64(len(segs)))
		}
		size += int64(blocklens[i]) * ft.size
		flb := displs[i] + ft.lb
		fub := displs[i] + ft.lb + int64(blocklens[i])*ft.Extent()
		if first || flb < lb {
			lb = flb
		}
		if first || fub > ub {
			ub = fub
		}
		first = false
	}
	// Pad the upper bound to the strictest member alignment.
	if span := ub - lb; span%align != 0 {
		ub += align - span%align
	}
	r, err := irregularRuns(segs)
	if err != nil {
		return nil, err
	}
	return &Type{
		kind:      KindStruct,
		size:      size,
		lb:        lb,
		ub:        ub,
		alignment: align,
		r:         r,
	}, nil
}

// Order selects array storage order for Subarray.
type Order int

// Storage orders, mirroring MPI_ORDER_C and MPI_ORDER_FORTRAN.
const (
	OrderC Order = iota
	OrderFortran
)

// Subarray selects a rectangular region of an N-dimensional array
// (MPI_Type_create_subarray): sizes is the full array shape, subsizes
// the selected block, starts its origin, all in elements of base.
// Like MPI, the extent of the resulting type is the extent of the
// whole parent array.
func Subarray(sizes, subsizes, starts []int, order Order, base *Type) (*Type, error) {
	if err := checkBase(base); err != nil {
		return nil, err
	}
	nd := len(sizes)
	if nd == 0 || len(subsizes) != nd || len(starts) != nd {
		return nil, fmt.Errorf("%w: subarray dims disagree: %d/%d/%d", ErrArgument, nd, len(subsizes), len(starts))
	}
	for d := 0; d < nd; d++ {
		if sizes[d] <= 0 || subsizes[d] < 0 || starts[d] < 0 || starts[d]+subsizes[d] > sizes[d] {
			return nil, fmt.Errorf("%w: subarray dim %d: size %d subsize %d start %d", ErrArgument, d, sizes[d], subsizes[d], starts[d])
		}
	}
	// Normalise to C order: dimension 0 slowest.
	csizes := append([]int(nil), sizes...)
	csub := append([]int(nil), subsizes...)
	cstart := append([]int(nil), starts...)
	if order == OrderFortran {
		reverse(csizes)
		reverse(csub)
		reverse(cstart)
	}
	ext := base.Extent()
	// A dense base (one run filling its whole extent from offset zero)
	// lets whole rows collapse to single closed-form runs. Non-dense
	// bases (derived types with gaps) replicate their real run pattern
	// instead — treating them as ext-sized blocks would build a type
	// whose flattened runs disagree with its payload size.
	dense := base.IsContiguous() && base.lb == 0
	// Row length in elements of the fastest dimension.
	rowElems := int64(csub[nd-1])
	parentRow := int64(csizes[nd-1])
	// One innermost row of the selection: rowElems consecutive copies
	// of the base pattern.
	rowRuns, err := replicate(base.r, ext, rowElems)
	if err != nil {
		return nil, err
	}
	// Build the runs: iterate all outer index tuples, emit one row per
	// innermost index. The row count is the product of outer subsizes.
	nrows := int64(1)
	for d := 0; d < nd-1; d++ {
		nrows *= int64(csub[d])
	}
	var totalElems int64 = nrows * rowElems
	var r runs
	switch {
	case totalElems == 0:
		r = emptyRuns()
	case nd == 1 || nrows == 1:
		off := int64(0)
		stride := int64(1)
		for d := nd - 1; d >= 0; d-- {
			off += int64(cstart[d]) * stride
			stride *= int64(csizes[d])
		}
		if dense {
			r = regularRuns(off*ext, rowElems*ext, 0, 1)
		} else {
			r = rowRuns.shifted(off * ext)
		}
	case nd == 2 && dense:
		off := (int64(cstart[0])*parentRow + int64(cstart[1])) * ext
		r = regularRuns(off, rowElems*ext, (parentRow-rowElems)*ext, int64(csub[0]))
	default:
		// General case (N-d, or a non-dense base): materialise the
		// rows, one run per row for dense bases, the replicated base
		// pattern otherwise. Division keeps the bound overflow-safe for
		// huge outer subsizes.
		if rowRuns.n > 0 && nrows > maxMaterialize/rowRuns.n {
			return nil, errTooManySegments(nrows)
		}
		strides := make([]int64, nd) // element stride of each dim in the parent
		strides[nd-1] = 1
		for d := nd - 2; d >= 0; d-- {
			strides[d] = strides[d+1] * int64(csizes[d+1])
		}
		idx := make([]int, nd-1)
		segs := make([]layout.Segment, 0, nrows*rowRuns.n)
		for {
			off := int64(cstart[nd-1])
			for d := 0; d < nd-1; d++ {
				off += int64(cstart[d]+idx[d]) * strides[d]
			}
			if dense {
				segs = append(segs, layout.Segment{Off: off * ext, Len: rowElems * ext})
			} else {
				rowRuns.forEach(off*ext, func(s layout.Segment) bool {
					segs = append(segs, s)
					return true
				})
			}
			// Odometer increment over the outer dimensions.
			d := nd - 2
			for ; d >= 0; d-- {
				idx[d]++
				if idx[d] < csub[d] {
					break
				}
				idx[d] = 0
			}
			if d < 0 {
				break
			}
		}
		r, err = irregularRuns(segs)
		if err != nil {
			return nil, err
		}
	}
	parentElems := int64(1)
	for _, s := range csizes {
		parentElems *= int64(s)
	}
	return &Type{
		kind:      KindSubarray,
		size:      totalElems * base.size,
		lb:        0,
		ub:        parentElems * ext, // MPI: extent of the whole parent array
		alignment: base.alignment,
		r:         r,
	}, nil
}

func reverse(xs []int) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Resized overrides lb and extent without moving data
// (MPI_Type_create_resized).
func Resized(base *Type, lb, extent int64) (*Type, error) {
	if err := checkBase(base); err != nil {
		return nil, err
	}
	if extent < 0 {
		return nil, fmt.Errorf("%w: negative extent %d", ErrArgument, extent)
	}
	return &Type{
		kind:      KindResized,
		size:      base.size,
		lb:        lb,
		ub:        lb + extent,
		alignment: base.alignment,
		r:         base.r,
	}, nil
}

// Dup clones a type (MPI_Type_dup). The clone starts uncommitted
// unless the source is basic.
func Dup(base *Type) (*Type, error) {
	if err := checkBase(base); err != nil {
		return nil, err
	}
	t := *base
	t.kind = KindDup
	t.committed = base.kind == KindBasic
	t.name = ""
	return &t, nil
}

func checkBase(base *Type) error {
	if base == nil {
		return fmt.Errorf("%w: nil base type", ErrArgument)
	}
	return nil
}
