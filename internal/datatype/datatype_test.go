package datatype

import (
	"errors"
	"testing"

	"repro/internal/buf"
	"repro/internal/layout"
)

// mustType commits a freshly constructed type, panicking on error;
// the panic surfaces as a test failure with a useful stack.
func mustType(ty *Type, err error) *Type {
	if err != nil {
		panic(err)
	}
	if err := ty.Commit(); err != nil {
		panic(err)
	}
	return ty
}

func TestBasicTypes(t *testing.T) {
	cases := []struct {
		ty   *Type
		size int64
	}{
		{Byte, 1}, {Char, 1}, {Int32, 4}, {Int64, 8},
		{Float32, 4}, {Float64, 8}, {Complex128, 16}, {Packed, 1},
	}
	for _, c := range cases {
		if c.ty.Size() != c.size || c.ty.Extent() != c.size {
			t.Errorf("%s: size=%d extent=%d, want %d", c.ty, c.ty.Size(), c.ty.Extent(), c.size)
		}
		if !c.ty.Committed() {
			t.Errorf("%s: basic type not committed", c.ty)
		}
		if !c.ty.IsContiguous() {
			t.Errorf("%s: basic type not contiguous", c.ty)
		}
	}
}

func TestContiguous(t *testing.T) {
	ty := mustType(Contiguous(10, Float64))
	if ty.Size() != 80 || ty.Extent() != 80 {
		t.Fatalf("size=%d extent=%d", ty.Size(), ty.Extent())
	}
	if !ty.IsContiguous() || ty.SegmentCount() != 1 {
		t.Fatalf("contiguous type fragmented: %d segments", ty.SegmentCount())
	}
}

func TestContiguousZeroCount(t *testing.T) {
	ty := mustType(Contiguous(0, Float64))
	if ty.Size() != 0 || ty.Extent() != 0 || ty.SegmentCount() != 0 {
		t.Fatalf("zero contiguous: %+v", ty)
	}
}

func TestContiguousNegativeCount(t *testing.T) {
	if _, err := Contiguous(-1, Float64); !errors.Is(err, ErrArgument) {
		t.Fatalf("err = %v", err)
	}
}

func TestVectorEveryOther(t *testing.T) {
	// The paper's canonical type: every other double.
	ty := mustType(Vector(100, 1, 2, Float64))
	if ty.Size() != 800 {
		t.Fatalf("size = %d", ty.Size())
	}
	if ty.Extent() != 99*16+8 {
		t.Fatalf("extent = %d", ty.Extent())
	}
	if ty.SegmentCount() != 100 {
		t.Fatalf("segments = %d", ty.SegmentCount())
	}
	segs := layout.Segments(ty.Layout(1))
	if segs[0] != (layout.Segment{Off: 0, Len: 8}) || segs[1] != (layout.Segment{Off: 16, Len: 8}) {
		t.Fatalf("segments = %+v", segs[:2])
	}
}

func TestVectorDenseCoalesces(t *testing.T) {
	ty := mustType(Vector(8, 4, 4, Float64))
	if !ty.IsContiguous() {
		t.Fatalf("stride==blocklen should coalesce to contiguous, got %d segs", ty.SegmentCount())
	}
	if ty.Size() != 8*4*8 {
		t.Fatalf("size = %d", ty.Size())
	}
}

func TestVectorBlockLen(t *testing.T) {
	ty := mustType(Vector(3, 2, 5, Int32))
	// Blocks of 2 int32 (8 bytes) every 20 bytes.
	segs := layout.Segments(ty.Layout(1))
	want := []layout.Segment{{Off: 0, Len: 8}, {Off: 20, Len: 8}, {Off: 40, Len: 8}}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("seg %d = %+v want %+v", i, segs[i], want[i])
		}
	}
	if ty.Extent() != 48 {
		t.Fatalf("extent = %d", ty.Extent())
	}
}

func TestVectorOverlapRejected(t *testing.T) {
	if _, err := Vector(4, 3, 2, Float64); !errors.Is(err, ErrOverlap) {
		t.Fatalf("err = %v", err)
	}
}

func TestVectorNegativeStrideRejected(t *testing.T) {
	if _, err := Vector(4, 1, -2, Float64); !errors.Is(err, ErrArgument) {
		t.Fatalf("err = %v", err)
	}
}

func TestHvectorByteStride(t *testing.T) {
	ty := mustType(Hvector(4, 1, 24, Float64))
	segs := layout.Segments(ty.Layout(1))
	for i, s := range segs {
		if s.Off != int64(i*24) || s.Len != 8 {
			t.Fatalf("seg %d = %+v", i, s)
		}
	}
}

func TestIndexedType(t *testing.T) {
	// FEM-style irregular gather: elements 0, 3, 4, 9.
	ty := mustType(IndexedBlock(1, []int{0, 3, 4, 9}, Float64))
	if ty.Size() != 32 {
		t.Fatalf("size = %d", ty.Size())
	}
	segs := layout.Segments(ty.Layout(1))
	// 3 and 4 are adjacent and must coalesce.
	want := []layout.Segment{{Off: 0, Len: 8}, {Off: 24, Len: 16}, {Off: 72, Len: 8}}
	if len(segs) != len(want) {
		t.Fatalf("segments = %+v", segs)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("seg %d = %+v want %+v", i, segs[i], want[i])
		}
	}
}

func TestIndexedVariableBlocks(t *testing.T) {
	ty := mustType(Indexed([]int{2, 1}, []int{0, 4}, Float64))
	if ty.Size() != 24 {
		t.Fatalf("size = %d", ty.Size())
	}
	segs := layout.Segments(ty.Layout(1))
	want := []layout.Segment{{Off: 0, Len: 16}, {Off: 32, Len: 8}}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("seg %d = %+v want %+v", i, segs[i], want[i])
		}
	}
}

func TestIndexedLengthMismatch(t *testing.T) {
	if _, err := Indexed([]int{1}, []int{0, 1}, Float64); !errors.Is(err, ErrArgument) {
		t.Fatalf("err = %v", err)
	}
}

func TestHindexedNegativeDisplacementAllowed(t *testing.T) {
	// MPI permits negative displacements in the typemap; use fails at
	// pack time if it would escape the buffer.
	ty, err := Hindexed([]int{1, 1}, []int64{8, -8}, Float64)
	if err != nil {
		t.Fatal(err)
	}
	if ty.LB() != -8 {
		t.Fatalf("lb = %d", ty.LB())
	}
	if err := ty.Commit(); err != nil {
		t.Fatal(err)
	}
	src := buf.Alloc(64)
	if _, err := ty.Pack(src, 1, buf.Alloc(16)); !errors.Is(err, ErrBounds) {
		t.Fatalf("negative offset pack err = %v", err)
	}
}

func TestStructType(t *testing.T) {
	// {int32 at 0, float64 at 8} — C struct with padding.
	ty := mustType(Struct([]int{1, 1}, []int64{0, 8}, []*Type{Int32, Float64}))
	if ty.Size() != 12 {
		t.Fatalf("size = %d", ty.Size())
	}
	// Extent padded to the 8-byte alignment of the double.
	if ty.Extent() != 16 {
		t.Fatalf("extent = %d", ty.Extent())
	}
}

func TestStructAlignmentPadding(t *testing.T) {
	// {float64 at 0, byte at 8}: span 9, padded to 16.
	ty := mustType(Struct([]int{1, 1}, []int64{0, 8}, []*Type{Float64, Byte}))
	if ty.Extent() != 16 {
		t.Fatalf("extent = %d, want 16", ty.Extent())
	}
}

func TestStructEmpty(t *testing.T) {
	if _, err := Struct(nil, nil, nil); !errors.Is(err, ErrArgument) {
		t.Fatalf("err = %v", err)
	}
}

func TestSubarray2DMatchesLayout(t *testing.T) {
	// 2x3 block at (1,1) of a 4x8 array of doubles — must equal the
	// geometric Subarray2D layout.
	ty := mustType(Subarray([]int{4, 8}, []int{2, 3}, []int{1, 1}, OrderC, Float64))
	want := layout.Segments(layout.Subarray2D{Elem: 8, ParentCols: 8, StartRow: 1, StartCol: 1, Rows: 2, Cols: 3})
	got := layout.Segments(ty.Layout(1))
	if len(got) != len(want) {
		t.Fatalf("segments: got %+v want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seg %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	// MPI semantics: extent covers the whole parent array.
	if ty.Extent() != 4*8*8 {
		t.Fatalf("extent = %d, want parent size %d", ty.Extent(), 4*8*8)
	}
}

func TestSubarrayFortranOrder(t *testing.T) {
	// Fortran order: first dimension fastest. A column of a 2-D array
	// is contiguous in Fortran.
	ty := mustType(Subarray([]int{8, 4}, []int{8, 1}, []int{0, 2}, OrderFortran, Float64))
	if ty.SegmentCount() != 1 {
		t.Fatalf("fortran column should be contiguous, got %d segs", ty.SegmentCount())
	}
	segs := layout.Segments(ty.Layout(1))
	if segs[0] != (layout.Segment{Off: 2 * 8 * 8, Len: 64}) {
		t.Fatalf("seg = %+v", segs[0])
	}
}

func TestSubarray3D(t *testing.T) {
	ty := mustType(Subarray([]int{4, 4, 4}, []int{2, 2, 2}, []int{1, 1, 1}, OrderC, Float64))
	if ty.Size() != 8*8 {
		t.Fatalf("size = %d", ty.Size())
	}
	if ty.SegmentCount() != 4 {
		t.Fatalf("segments = %d, want 4 rows", ty.SegmentCount())
	}
	segs := layout.Segments(ty.Layout(1))
	first := int64((1*16 + 1*4 + 1) * 8)
	if segs[0] != (layout.Segment{Off: first, Len: 16}) {
		t.Fatalf("first seg = %+v", segs[0])
	}
}

func TestSubarrayBadArgs(t *testing.T) {
	if _, err := Subarray([]int{4}, []int{5}, []int{0}, OrderC, Float64); !errors.Is(err, ErrArgument) {
		t.Fatalf("oversized subarray err = %v", err)
	}
	if _, err := Subarray([]int{4}, []int{2}, []int{3}, OrderC, Float64); !errors.Is(err, ErrArgument) {
		t.Fatalf("out-of-range start err = %v", err)
	}
}

func TestResized(t *testing.T) {
	base, _ := Vector(2, 1, 2, Float64) // 8 bytes at 0, 8 at 16; extent 24
	ty := mustType(Resized(base, 0, 32))
	if ty.Extent() != 32 {
		t.Fatalf("extent = %d", ty.Extent())
	}
	if ty.Size() != base.Size() {
		t.Fatalf("resize changed size")
	}
	if ty.TrueExtent() != 24 {
		t.Fatalf("true extent = %d, want 24", ty.TrueExtent())
	}
	// Repetition now strides by 32.
	segs := layout.Segments(ty.Layout(2))
	want := []layout.Segment{{Off: 0, Len: 8}, {Off: 16, Len: 8}, {Off: 32, Len: 8}, {Off: 48, Len: 8}}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("seg %d = %+v want %+v", i, segs[i], want[i])
		}
	}
}

func TestDup(t *testing.T) {
	base := mustType(Vector(4, 1, 2, Float64))
	d, err := Dup(base)
	if err != nil {
		t.Fatal(err)
	}
	if d.Committed() {
		t.Fatal("dup of a derived type should start uncommitted")
	}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	if d.Size() != base.Size() || d.Extent() != base.Extent() {
		t.Fatal("dup changed geometry")
	}
}

func TestNestedVectorOfVector(t *testing.T) {
	// Rows of a blocked matrix: vector of (vector of 2 doubles).
	inner, err := Vector(2, 1, 2, Float64) // 2 doubles, every other; extent 24
	if err != nil {
		t.Fatal(err)
	}
	outer := mustType(Hvector(3, 1, 64, inner))
	if outer.Size() != 3*16 {
		t.Fatalf("size = %d", outer.Size())
	}
	segs := layout.Segments(outer.Layout(1))
	want := []layout.Segment{{Off: 0, Len: 8}, {Off: 16, Len: 8}, {Off: 64, Len: 8}, {Off: 80, Len: 8}, {Off: 128, Len: 8}, {Off: 144, Len: 8}}
	if len(segs) != len(want) {
		t.Fatalf("segs = %+v", segs)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("seg %d = %+v want %+v", i, segs[i], want[i])
		}
	}
}

func TestContigOfVectorCoalescesSeams(t *testing.T) {
	// contiguous(3) of every-other-double: the vector's extent ends
	// right after its last block, so instance i's last block touches
	// instance i+1's first block and the seams coalesce: 12 - 2 = 10
	// canonical segments.
	inner, err := Vector(4, 1, 2, Float64)
	if err != nil {
		t.Fatal(err)
	}
	outer := mustType(Contiguous(3, inner))
	if outer.Size() != 3*32 {
		t.Fatalf("size = %d", outer.Size())
	}
	if got := outer.SegmentCount(); got != 10 {
		t.Fatalf("segments = %d, want 10", got)
	}
}

func TestUncommittedUseFails(t *testing.T) {
	ty, err := Vector(4, 1, 2, Float64)
	if err != nil {
		t.Fatal(err)
	}
	src := buf.Alloc(int(ty.Extent()))
	if _, err := ty.Pack(src, 1, buf.Alloc(64)); !errors.Is(err, ErrNotCommitted) {
		t.Fatalf("err = %v", err)
	}
}

func TestHugeVectorNoMaterialization(t *testing.T) {
	// 10⁸ blocks: must construct and answer stats in O(1).
	const count = 100_000_000
	ty := mustType(Vector(count, 1, 2, Float64))
	if ty.Size() != count*8 {
		t.Fatalf("size = %d", ty.Size())
	}
	if ty.SegmentCount() != count {
		t.Fatalf("segments = %d", ty.SegmentCount())
	}
	st := ty.Stats(1)
	if st.Bytes != count*8 || st.Segments != count {
		t.Fatalf("stats = %+v", st)
	}
	if st.AvgGap != 8 || st.GapJitter != 0 {
		t.Fatalf("gap stats = %+v", st)
	}
}

func TestStatsMatchDescribe(t *testing.T) {
	// Closed-form Stats must agree with iterating the layout.
	types := map[string]*Type{
		"vector":   mustType(Vector(50, 3, 7, Float64)),
		"indexed":  mustType(IndexedBlock(2, []int{0, 5, 11, 20}, Float64)),
		"subarray": mustType(Subarray([]int{8, 8}, []int{3, 4}, []int{2, 1}, OrderC, Float64)),
		"struct":   mustType(Struct([]int{1, 2}, []int64{0, 16}, []*Type{Int32, Float64})),
	}
	for name, ty := range types {
		for _, count := range []int{1, 2, 5} {
			fast := ty.Stats(count)
			slow := layoutDescribeSlow(ty.Layout(count))
			if fast.Segments != slow.Segments || fast.Bytes != slow.Bytes || fast.Extent != slow.Extent {
				t.Errorf("%s count=%d: fast=%+v slow=%+v", name, count, fast, slow)
			}
			if !feq(fast.AvgBlock, slow.AvgBlock) || !feq(fast.AvgGap, slow.AvgGap) || !feq(fast.GapJitter, slow.GapJitter) {
				t.Errorf("%s count=%d gap/block: fast=%+v slow=%+v", name, count, fast, slow)
			}
		}
	}
}

// layoutDescribeSlow forces the iterating path by wrapping the layout
// in a type that does not implement layout.Fast.
func layoutDescribeSlow(l layout.Layout) layout.Stats {
	return layout.Describe(opaque{l})
}

type opaque struct{ layout.Layout }

func (o opaque) ForEach(fn func(layout.Segment) bool) { o.Layout.ForEach(fn) }

func feq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+a+b) || d < 1e-12
}

func TestKindString(t *testing.T) {
	if KindVector.String() != "vector" {
		t.Fatalf("KindVector = %q", KindVector)
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind empty")
	}
}
