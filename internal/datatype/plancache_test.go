package datatype

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/buf"
)

// This file tests the plan cache (steady-state amortisation, identity,
// concurrency) and the compiled-chunked streaming tier against the
// interpreting-cursor oracle.

// TestPlanCacheIdentityAndStats pins the cache contract: the first
// CompilePlan for a count is a miss that binds the plan, every later
// one is a hit returning the same *Plan, and distinct counts get
// distinct plans.
func TestPlanCacheIdentityAndStats(t *testing.T) {
	ty := mustType(Vector(64, 1, 2, Float64))
	before := PlanStatsSnapshot()
	p1, err := ty.CompilePlan(1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ty.CompilePlan(1)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("repeated CompilePlan returned distinct plans")
	}
	p3, err := ty.CompilePlan(3)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("distinct counts share a plan")
	}
	if p3.Bytes() != 3*ty.Size() {
		t.Fatalf("count-3 plan bytes = %d", p3.Bytes())
	}
	d := PlanStatsSnapshot().Sub(before)
	if d.PlanMisses != 2 {
		t.Fatalf("misses = %d, want 2 (two counts): %v", d.PlanMisses, d)
	}
	if d.PlanHits != 1 {
		t.Fatalf("hits = %d, want 1: %v", d.PlanHits, d)
	}
	if d.Compiled != 0 {
		t.Fatalf("CompilePlan recompiled the program committed at Commit: %v", d)
	}
	if got := d.HitRate(); got <= 0 || got >= 1 {
		t.Fatalf("hit rate = %v, want in (0,1)", got)
	}
}

// TestPlanCacheSteadyStateZeroCost is the acceptance pin: after the
// first call, whole-message packing through Type.Pack compiles
// nothing, misses nothing, and allocates nothing per call.
func TestPlanCacheSteadyStateZeroCost(t *testing.T) {
	ty := mustType(Vector(1024, 1, 2, Float64))
	src := buf.Alloc(int(ty.Extent()))
	src.FillPattern(7)
	dst := buf.Alloc(int(ty.Size()))
	if _, err := ty.Pack(src, 1, dst); err != nil { // prime
		t.Fatal(err)
	}

	before := PlanStatsSnapshot()
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := ty.Pack(src, 1, dst); err != nil {
			t.Fatal(err)
		}
	})
	d := PlanStatsSnapshot().Sub(before)
	if allocs != 0 {
		t.Errorf("steady-state Pack allocates %.1f objects per call, want 0", allocs)
	}
	if d.Compiled != 0 || d.PlanMisses != 0 {
		t.Errorf("steady-state Pack still compiling: %v", d)
	}
	if d.PlanHits == 0 {
		t.Errorf("steady-state Pack not hitting the plan cache: %v", d)
	}
}

// TestPlanCacheConcurrent hammers one shared type's plan cache from
// many goroutines mixing counts, lookups and real packs; run under
// -race (CI does) it pins the locking discipline, and afterwards the
// cache must have settled on one plan per count.
func TestPlanCacheConcurrent(t *testing.T) {
	ty := mustType(Vector(128, 1, 2, Float64))
	const (
		workers = 16
		iters   = 300
		counts  = 4
	)
	src := buf.Alloc(userBufLen(ty, counts))
	src.FillPattern(9)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed)))
			for i := 0; i < iters; i++ {
				count := rng.Intn(counts) + 1
				plan, err := ty.CompilePlan(count)
				if err != nil {
					t.Error(err)
					return
				}
				if plan.Bytes() != int64(count)*ty.Size() {
					t.Errorf("plan for count %d reports %d bytes", count, plan.Bytes())
					return
				}
				if i%8 == 0 {
					dst := buf.Alloc(int(plan.Bytes()))
					if _, err := plan.Pack(src, dst); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	for count := 1; count <= counts; count++ {
		a, err := ty.CompilePlan(count)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ty.CompilePlan(count)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("count %d did not settle on one cached plan", count)
		}
	}
}

// TestPlanCacheBounded pins the cap: a count sweep far past
// maxCachedPlans still works and the map stops growing.
func TestPlanCacheBounded(t *testing.T) {
	ty := mustType(Vector(4, 1, 2, Float64))
	for count := 1; count <= maxCachedPlans+50; count++ {
		if _, err := ty.CompilePlan(count); err != nil {
			t.Fatal(err)
		}
	}
	ty.plans.mu.RLock()
	n := len(ty.plans.byCount)
	ty.plans.mu.RUnlock()
	if n > maxCachedPlans {
		t.Fatalf("cache grew to %d entries, cap is %d", n, maxCachedPlans)
	}
}

// TestChunkedCompiledDifferential is the tier-2 property test: on
// randomized (type, count) draws, streaming through Packer/Unpacker in
// randomized chunk splits — which now run on the compiled kernels —
// produces output byte-identical to the raw interpreting cursor.
func TestChunkedCompiledDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(0xCAC4E))
	for iter := 0; iter < 300; iter++ {
		ty := randPlanType(rng, 1)
		count := rng.Intn(3) + 1
		bufLen := userBufLen(ty, count)
		src := buf.Alloc(bufLen)
		src.FillPattern(byte(iter * 5))
		want := cursorPack(t, ty, src, count, rng)

		// Chunked compiled pack: random split sizes, at least one
		// partial chunk so the whole-message fast path cannot fire.
		p, err := ty.NewPacker(src, count)
		if err != nil {
			t.Fatal(err)
		}
		before := PlanStatsSnapshot()
		var got []byte
		for p.Remaining() > 0 {
			n := int64(rng.Intn(48) + 1)
			if n > p.Remaining() {
				n = p.Remaining()
			}
			piece := buf.Alloc(int(n))
			m, err := p.Pack(piece)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, piece.Bytes()[:m]...)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("iter %d (%v, kernel %v, count %d): compiled-chunked stream differs from cursor",
				iter, ty, p.Plan().Kernel(), count)
		}
		if len(want) > 48 {
			// The stream was genuinely chunked: tier 2 must have fired
			// and the cursor must not.
			d := PlanStatsSnapshot().Sub(before)
			if d.ChunkOps == 0 {
				t.Fatalf("iter %d (%v): chunked stream did not use the compiled tier: %v", iter, ty, d)
			}
			if d.CursorOps != 0 {
				t.Fatalf("iter %d (%v): chunked stream fell back to the cursor: %v", iter, ty, d)
			}
		}

		// Chunked compiled unpack of the same stream.
		streamDst := buf.Alloc(bufLen)
		u, err := ty.NewUnpacker(streamDst, count)
		if err != nil {
			t.Fatal(err)
		}
		off := 0
		for u.Remaining() > 0 {
			n := rng.Intn(48) + 1
			if int64(n) > u.Remaining() {
				n = int(u.Remaining())
			}
			if _, err := u.Unpack(buf.FromBytes(want[off : off+n])); err != nil {
				t.Fatal(err)
			}
			off += n
		}
		cursorDst := buf.Alloc(bufLen)
		cursorUnpack(t, ty, cursorDst, count, want, rng)
		if !bytes.Equal(streamDst.Bytes(), cursorDst.Bytes()) {
			t.Fatalf("iter %d (%v, count %d): compiled-chunked unpack differs from cursor", iter, ty, count)
		}
	}
}

// TestChunkedCompiledLargeChunkParallel drives a mid-stream chunk big
// enough to engage the parallel splitter and checks it against the
// cursor.
func TestChunkedCompiledLargeChunkParallel(t *testing.T) {
	SetParallelPackThreshold(256 << 10)
	defer SetParallelPackThreshold(DefaultParallelPackThreshold)

	rng := rand.New(rand.NewSource(0xB16))
	ty := mustType(Vector(300_000, 1, 2, Float64)) // 2.4 MB payload
	src := buf.Alloc(userBufLen(ty, 1))
	src.FillPattern(0x42)
	want := cursorPack(t, ty, src, 1, rng)

	p, err := ty.NewPacker(src, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A small leading chunk forces mid-stream resume, then one big
	// chunk over the threshold.
	head := buf.Alloc(1000)
	if _, err := p.Pack(head); err != nil {
		t.Fatal(err)
	}
	rest := buf.Alloc(int(p.Remaining()))
	before := PlanStatsSnapshot()
	if _, err := p.Pack(rest); err != nil {
		t.Fatal(err)
	}
	d := PlanStatsSnapshot().Sub(before)
	got := append(append([]byte(nil), head.Bytes()...), rest.Bytes()...)
	if !bytes.Equal(got, want) {
		t.Fatal("parallel mid-stream chunk differs from cursor")
	}
	if d.ChunkOps == 0 {
		t.Fatalf("large chunk not attributed to the chunk tier: %v", d)
	}
	if workersFor(int64(rest.Len())) > 1 && d.ParallelOps == 0 {
		t.Fatalf("large chunk did not engage the parallel splitter: %v", d)
	}
}
