package datatype

import (
	"fmt"
	"sync/atomic"
)

// This file implements the Commit-time datatype normalizer (the TEMPI
// direction): equivalent derived-type trees — hvector-of-vector,
// subarray-of-contiguous-rows, strided struct tilings — flatten to
// gather tables whose offsets are really a small closed-form 2-D/3-D
// strided-block pattern. The normalizer canonicalises a freshly
// compiled program by merging abutting table segments, hoisting the
// uniform element size where one exists, and collapsing recognised
// block patterns into a canonForm descriptor executed by the
// specialized kernel registry (registry.go) instead of the generic
// table walk. Every execution tier — Plan.Pack/Unpack, the chunked
// PackRange/UnpackRange, SegIter/FusedCopy, ChunkPipeline and
// ChecksumRange — runs the normalized program, so the denser IR speeds
// up the packed, fused, pipelined, collective and retry paths at once.
//
// The pass is semantics-preserving by construction: a candidate form
// is accepted only after every table offset has been reproduced from
// the closed form, so the canonical program enumerates exactly the
// (userOff, packedOff, len) runs of the raw table, in the same packed
// order.

// normalizeEnabled gates the Commit-time normalization pass. Enabled by
// default; the raw compiled program is kept as the exact fallback so
// differential tests and studies can measure it (the way
// SetChunkedCompiled keeps the interpreting cursor).
var normalizeEnabled atomic.Bool

func init() { normalizeEnabled.Store(true) }

// SetNormalize enables or disables the Commit-time normalization pass.
// The gate is read when a type's program is first compiled (at
// Commit), so toggling it affects types committed afterwards, not
// programs already cached.
func SetNormalize(on bool) { normalizeEnabled.Store(on) }

// NormalizeEnabled reports whether newly committed types are
// normalized.
func NormalizeEnabled() bool { return normalizeEnabled.Load() }

// canonForm is the canonical strided-block descriptor of a normalized
// gather program: uniform runs of runLen bytes arranged in up to three
// nested stride levels (innermost first). Level counts multiply to the
// raw table's segment count, and the user offset of flat run j is
//
//	start + (j/(cnt0*cnt1))*str2 + ((j/cnt0)%cnt1)*str1 + (j%cnt0)*str0
//
// so the whole table collapses to dims stride descriptors.
type canonForm struct {
	dims   int   // nested stride levels (2 or 3)
	runLen int64 // uniform run length in bytes
	start  int64 // user offset of the first run within an instance
	cnt    [3]int64
	str    [3]int64
}

// runsPerInst returns the flat run count of one instance.
func (cf *canonForm) runsPerInst() int64 {
	n := cf.cnt[0] * cf.cnt[1]
	if cf.dims == 3 {
		n *= cf.cnt[2]
	}
	return n
}

// offsetOf returns the instance-relative user offset of flat run j.
func (cf *canonForm) offsetOf(j int64) int64 {
	col := j % cf.cnt[0]
	row := j / cf.cnt[0]
	var plane int64
	if cf.dims == 3 {
		plane = row / cf.cnt[1]
		row -= plane * cf.cnt[1]
	}
	return cf.start + plane*cf.str[2] + row*cf.str[1] + col*cf.str[0]
}

// normalizeProg canonicalises a freshly compiled program in place.
// Contig and stride programs are already canonical (one run, or a
// single closed-form stride level); gather tables are merged, matched
// against the 2-D/3-D block forms, and collapsed on a hit — or at
// least get their uniform element size hoisted so the table walk can
// enter by division instead of binary search.
func normalizeProg(p *planProg) {
	if p.kernel != KernelGather || len(p.segs) < 2 {
		return
	}
	if m := mergeAbutting(p); m > 0 {
		planCounters.runsMerged.Add(m)
	}
	if cf, ok := detectCanon(p.segs); ok {
		p.canon = cf
		p.merged = int64(len(p.segs)) - int64(cf.dims)
		p.kernel = KernelBlock
		p.class = KernelClass{Elem: elemClassOf(cf.runLen), Stride: StrideRegular, Dims: cf.dims}
		p.bk = lookupBlockKernels(p.class)
		p.segs = nil
		planCounters.canonHits.Add(1)
		planCounters.runsMerged.Add(p.merged)
		return
	}
	if u := uniformSegLen(p.segs); u > 0 {
		// Contiguous-run gather: the table stays, but with a single
		// hoisted element size the entry point is a division and the
		// walk needs no per-segment length fetch.
		p.uniform = u
		p.class = KernelClass{Elem: elemClassOf(u), Stride: StrideIrregular, Dims: 1}
	}
	planCounters.canonMisses.Add(1)
}

// mergeAbutting coalesces table segments that abut in both the user
// buffer and the packed stream, returning how many were folded away.
// The flattener already coalesces adjacent runs, so this is a
// defensive pass that keeps the invariant local to the normalizer.
func mergeAbutting(p *planProg) int64 {
	segs := p.segs
	out := segs[:1]
	for _, s := range segs[1:] {
		last := &out[len(out)-1]
		if s.off == last.off+last.length {
			last.length += s.length
			continue
		}
		out = append(out, s)
	}
	merged := int64(len(segs) - len(out))
	if merged > 0 {
		p.segs = out
	}
	return merged
}

// uniformSegLen returns the common segment length of the table, or 0
// when lengths differ.
func uniformSegLen(segs []planSeg) int64 {
	u := segs[0].length
	for _, s := range segs[1:] {
		if s.length != u {
			return 0
		}
	}
	return u
}

// detectCanon matches a gather table against the canonical 2-D/3-D
// strided-block forms. The table is sorted by offset with uniform
// packed order, so the match is: uniform lengths, an innermost level
// of equal offset deltas, and outer levels whose period divides the
// table — then every offset is verified against the closed form before
// the match is accepted, which is what makes the collapse
// semantics-preserving rather than heuristic.
func detectCanon(segs []planSeg) (canonForm, bool) {
	n := int64(len(segs))
	if n < 4 {
		return canonForm{}, false
	}
	runLen := uniformSegLen(segs)
	if runLen == 0 {
		return canonForm{}, false
	}
	d0 := segs[1].off - segs[0].off
	c0 := int64(1)
	for c0 < n && segs[c0].off-segs[c0-1].off == d0 {
		c0++
	}
	if c0 == n {
		// A single uniform level is the regular run/gap form; the
		// flattener's promote pass keeps those on KernelStride, so a
		// fully uniform table here would be redundant, not canonical.
		return canonForm{}, false
	}
	if c0 < 2 || n%c0 != 0 {
		return canonForm{}, false
	}
	rows := n / c0
	d1 := segs[c0].off - segs[0].off
	cf := canonForm{dims: 2, runLen: runLen, start: segs[0].off}
	cf.cnt[0], cf.str[0] = c0, d0
	cf.cnt[1], cf.str[1] = rows, d1
	if verifyCanon(segs, &cf) {
		return cf, true
	}
	// 2-D failed: look for a third level (row groups of equal pitch
	// repeated at a plane pitch).
	c1 := int64(1)
	for c1 < rows && segs[c1*c0].off-segs[(c1-1)*c0].off == d1 {
		c1++
	}
	if c1 < 2 || c1 == rows || rows%c1 != 0 {
		return canonForm{}, false
	}
	planes := rows / c1
	cf = canonForm{dims: 3, runLen: runLen, start: segs[0].off}
	cf.cnt[0], cf.str[0] = c0, d0
	cf.cnt[1], cf.str[1] = c1, d1
	cf.cnt[2], cf.str[2] = planes, segs[c1*c0].off-segs[0].off
	if verifyCanon(segs, &cf) {
		return cf, true
	}
	return canonForm{}, false
}

// verifyCanon checks that the closed form reproduces every table
// offset.
func verifyCanon(segs []planSeg, cf *canonForm) bool {
	for j := range segs {
		if segs[j].off != cf.offsetOf(int64(j)) {
			return false
		}
	}
	return true
}

// Canon reports whether the plan executes a canonical strided-block
// program, along with the raw per-instance run count the normalizer
// collapsed and the canonical form's dimensionality — the run-count
// reduction the E19 study charts.
func (p *Plan) Canon() (ok bool, rawRuns int64, dims int) {
	pr := p.prog
	if pr.kernel != KernelBlock {
		return false, 0, 0
	}
	return true, pr.canon.runsPerInst(), pr.canon.dims
}

// KernelClass returns the registry class of the program the plan
// executes: the (element size × stride class × dimensionality) key the
// specialized kernel was resolved under, or the generic class of the
// raw kernel.
func (p *Plan) KernelClass() KernelClass {
	if p.kernel == KernelContig {
		return KernelClass{Elem: ElemAny, Stride: StrideNone, Dims: 1}
	}
	return p.prog.class
}

// CanonicalString renders the committed type's compiled program after
// normalization — the kernel, its geometry, the registry class it
// resolved to, and (for collapsed tables) the run-count reduction — as
// a debug aid for understanding what a nested derived type actually
// executes.
func (t *Type) CanonicalString() string {
	pr := t.prog()
	if t.IsContiguous() {
		// Dense repetition executes as one run regardless of the
		// instance program's nominal kernel.
		return fmt.Sprintf("canon{contig %dB}", pr.instSize)
	}
	switch pr.kernel {
	case KernelContig:
		return fmt.Sprintf("canon{contig %dB}", pr.instSize)
	case KernelStride:
		return fmt.Sprintf("canon{stride %d×%dB step=%d class=%v}",
			pr.runs, pr.runLen, pr.step, pr.class)
	case KernelBlock:
		cf := &pr.canon
		s := fmt.Sprintf("canon{block%dd %d×%dB str=%d", cf.dims, cf.cnt[0], cf.runLen, cf.str[0])
		for l := 1; l < cf.dims; l++ {
			s += fmt.Sprintf(" × %d str=%d", cf.cnt[l], cf.str[l])
		}
		return s + fmt.Sprintf(" class=%v runs %d→%d}", pr.class, cf.runsPerInst(), cf.dims)
	default: // KernelGather
		if pr.uniform > 0 {
			return fmt.Sprintf("canon{gather segs=%d uniform=%dB class=%v}",
				len(pr.segs), pr.uniform, pr.class)
		}
		return fmt.Sprintf("canon{gather segs=%d class=%v}", len(pr.segs), pr.class)
	}
}
