package datatype

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the pack-plan compiler: Commit-time analysis of
// a type's flattened runs into an executable plan that chooses a
// specialized copy kernel instead of interpreting the type tree
// generically per byte. The motivation is the paper's central finding
// that pack throughput — not the network — dominates non-contiguous
// sends, and the observation (Carpen-Amarie/Hunold/Träff,
// arXiv:1607.00178) that real MPI implementations lose to hand-written
// copy loops because they walk the type representation at pack time.
//
// Kernel selection rules, applied in order when a plan is bound to a
// (type, count) pair:
//
//  1. KernelContig  — the whole message is one dense run (the type is
//     contiguous and repetition stays dense, or count == 1 with a
//     single-run instance): a single copy.
//  2. KernelStride  — the instance flattens to the regular run/gap
//     form (vector, hvector, subarray rows, …): a closed-form loop
//     with unrolled fast paths for 4/8/16-byte runs, the paper's
//     canonical small-block strides.
//  3. KernelGather  — irregular instances (indexed, struct, jittered
//     hindexed): a flattened (userOff, packedOff, len) segment table
//     walked with a tight copy loop; the table is built once at
//     compile time, never re-derived per pack.
//
// Independently of the kernel, messages of at least
// ParallelPackThreshold() bytes execute goroutine-parallel: the packed
// byte range is split across workers, and every kernel can start
// mid-stream in O(log n) (closed form for stride, binary search for
// gather), so the split needs no segment alignment.

// PlanKernel identifies the specialized copy kernel a compiled plan
// executes.
type PlanKernel int

// The plan kernels, in specialization order.
const (
	// KernelContig moves the whole message with a single copy.
	KernelContig PlanKernel = iota
	// KernelStride runs the closed-form regular run/gap loop with
	// unrolled small-block fast paths.
	KernelStride
	// KernelGather walks a flattened per-instance segment table.
	KernelGather
	// KernelBlock executes a canonical 2-D/3-D strided-block form the
	// normalizer collapsed a gather table into, through the
	// specialized kernel registry (normalize.go, registry.go).
	KernelBlock
)

var kernelNames = map[PlanKernel]string{
	KernelContig: "contig",
	KernelStride: "stride",
	KernelGather: "gather",
	KernelBlock:  "block",
}

// String returns the kernel name.
func (k PlanKernel) String() string {
	if s, ok := kernelNames[k]; ok {
		return s
	}
	return fmt.Sprintf("PlanKernel(%d)", int(k))
}

// DefaultParallelPackThreshold is the message size, in bytes, above
// which compiled plans split the packed range across goroutines. Below
// it, goroutine startup costs more than the copy saves.
const DefaultParallelPackThreshold = 4 << 20

var parallelPackThreshold atomic.Int64

func init() { parallelPackThreshold.Store(DefaultParallelPackThreshold) }

// SetParallelPackThreshold sets the parallel-pack threshold in bytes.
// Zero or negative disables parallel packing entirely.
func SetParallelPackThreshold(n int64) {
	if n <= 0 {
		n = int64(1)<<62 - 1
	}
	parallelPackThreshold.Store(n)
}

// ParallelPackThreshold returns the current parallel-pack threshold.
func ParallelPackThreshold() int64 { return parallelPackThreshold.Load() }

// chunkedCompiled gates the compiled-chunked execution tier: when set
// (the default), Packer/Unpacker route partial-range transfers through
// the compiled kernels; when cleared they stream through the
// interpreting cursor. The switch exists as the true fallback and so
// studies/benchmarks can measure the cursor baseline.
var chunkedCompiled atomic.Bool

func init() { chunkedCompiled.Store(true) }

// SetChunkedCompiled enables or disables compiled-kernel execution of
// chunked (partial-range) transfers; disabled streams fall back to the
// interpreting cursor.
func SetChunkedCompiled(on bool) { chunkedCompiled.Store(on) }

// ChunkedCompiled reports whether chunked transfers run on the
// compiled kernels.
func ChunkedCompiled() bool { return chunkedCompiled.Load() }

// maxPackWorkers caps the parallel fan-out: memory bandwidth saturates
// long before high core counts, so more workers only add scheduling
// noise.
const maxPackWorkers = 16

// minBytesPerWorker keeps each worker's share large enough that the
// goroutine handoff stays amortised.
const minBytesPerWorker = 256 << 10

// planSeg is one flattened segment of an irregular instance: its user
// offset, its position in the packed stream, and its length. All
// instance-relative; instance i adds i*extent to off and i*size to pos.
type planSeg struct {
	off, pos, length int64
}

// planProg is the count-independent part of a compiled plan: the
// kernel and the per-instance geometry. It is compiled once per type
// and cached on the Type, so repeated packers pay nothing.
type planProg struct {
	kernel   PlanKernel
	instSize int64 // payload bytes per instance
	ext      int64 // byte distance between instances

	// KernelStride parameters (regular runs).
	start, runLen, step int64
	runs                int64

	// KernelGather table (irregular runs).
	segs []planSeg
	// uniform is the hoisted uniform segment length of a gather table
	// (0 when lengths are mixed): the entry point becomes a division
	// instead of a binary search.
	uniform int64

	// KernelBlock canonical form and its resolved registry kernels
	// (normalize.go, registry.go).
	canon canonForm
	bk    BlockKernels
	// merged counts the raw table segments the canonical form
	// replaced.
	merged int64

	// class is the kernel-registry class of the program.
	class KernelClass
}

// compileProg flattens one instance of the type into its program and,
// under the normalization gate, canonicalises it.
func compileProg(t *Type) *planProg {
	p := &planProg{instSize: t.size, ext: t.Extent()}
	switch {
	case t.r.n == 0 || t.size == 0:
		p.kernel = KernelContig
		p.class = KernelClass{Elem: ElemAny, Stride: StrideNone, Dims: 1}
	case t.r.regular:
		p.kernel = KernelStride
		p.start = t.r.start
		p.runLen = t.r.runLen
		p.step = t.r.runLen + t.r.gap
		p.runs = t.r.n
		p.class = KernelClass{Elem: elemClassOf(p.runLen), Stride: StrideRegular, Dims: 1}
	default:
		p.kernel = KernelGather
		p.segs = make([]planSeg, len(t.r.segs))
		var pos int64
		for i, s := range t.r.segs {
			p.segs[i] = planSeg{off: s.Off, pos: pos, length: s.Len}
			pos += s.Len
		}
		p.class = KernelClass{Elem: ElemAny, Stride: StrideIrregular, Dims: 1}
	}
	if NormalizeEnabled() {
		normalizeProg(p)
	}
	return p
}

// maxCachedPlans bounds the per-type count→Plan map. Real programs
// reuse a handful of counts per type (1 for the ping-pong schemes, a
// few for collectives); past the bound, plans are still built but not
// retained, so a pathological count sweep cannot leak memory.
const maxCachedPlans = 128

// planCache holds a type's compiled instance program plus the bound
// plans keyed by count. It is allocated at Commit (and for predeclared
// basic types), so the Type value itself stays copyable — Dup shares
// the cache with its source, which is correct because the geometry is
// shared too. The count map is read-mostly: steady-state lookups take
// only the read lock and allocate nothing.
type planCache struct {
	p atomic.Pointer[planProg]

	mu      sync.RWMutex
	byCount map[int64]*Plan
}

// prog returns the cached instance program, compiling it on first use.
// Types are immutable after Commit, so a benign compile race only
// wastes one compilation.
func (t *Type) prog() *planProg {
	c := t.plans
	if c == nil {
		// Only reachable through unvalidated internal paths on an
		// uncommitted type; compile without caching.
		return compileProg(t)
	}
	if p := c.p.Load(); p != nil {
		return p
	}
	p := compileProg(t)
	planCounters.compiled.Add(1)
	c.p.Store(p)
	return p
}

// Plan is an executable pack/unpack program for (count × type): the
// compiled alternative to the interpreting cursor. A Plan is immutable
// and safe for concurrent use.
type Plan struct {
	t      *Type
	prog   *planProg
	count  int64
	total  int64
	kernel PlanKernel
	// contigOff is the user offset of the single run when kernel is
	// KernelContig.
	contigOff int64
}

// CompilePlan compiles count instances of the committed type into an
// executable plan. Plans are cached on the type keyed by count, so in
// steady state this is a read-locked map lookup: no compilation, no
// allocation. Cache traffic is visible through PlanStats
// (PlanHits/PlanMisses).
func (t *Type) CompilePlan(count int) (*Plan, error) {
	if !t.committed {
		return nil, ErrNotCommitted
	}
	if count < 0 {
		return nil, fmt.Errorf("%w: negative count %d", ErrArgument, count)
	}
	return t.plan(count), nil
}

// plan returns the cached plan for count, building and caching it on
// first use. No validation: callers check committedness.
func (t *Type) plan(count int) *Plan {
	c := t.plans
	if c == nil {
		// Unvalidated internal path on an uncommitted type.
		return t.buildPlan(count)
	}
	key := int64(count)
	c.mu.RLock()
	p := c.byCount[key]
	c.mu.RUnlock()
	if p != nil {
		planCounters.planHits.Add(1)
		return p
	}
	planCounters.planMisses.Add(1)
	p = t.buildPlan(count)
	c.mu.Lock()
	if q, ok := c.byCount[key]; ok {
		// Lost a benign build race; keep the first stored plan so
		// callers settle on one identity.
		p = q
	} else if len(c.byCount) < maxCachedPlans {
		if c.byCount == nil {
			c.byCount = make(map[int64]*Plan, 4)
		}
		c.byCount[key] = p
	}
	c.mu.Unlock()
	return p
}

// buildPlan binds the cached program to a count without caching.
func (t *Type) buildPlan(count int) *Plan {
	prog := t.prog()
	p := &Plan{
		t:      t,
		prog:   prog,
		count:  int64(count),
		total:  int64(count) * t.size,
		kernel: prog.kernel,
	}
	if p.total == 0 {
		p.kernel = KernelContig
		return p
	}
	// Whole-message contiguity promotions.
	switch {
	case t.IsContiguous():
		// Dense repetition: count instances form one run.
		p.kernel = KernelContig
		p.contigOff = t.r.first()
	case count == 1 && prog.kernel == KernelStride && prog.runs == 1:
		// A single single-run instance is contiguous regardless of
		// extent (resized types, subarray single rows, …).
		p.kernel = KernelContig
		p.contigOff = prog.start
	}
	return p
}

// Kernel returns the selected kernel.
func (p *Plan) Kernel() PlanKernel { return p.kernel }

// ContigWindow returns the user-buffer offset of the single dense run
// when the whole message is contiguous (kernel KernelContig), so
// protocol layers can route dense typed legs over the raw contiguous
// paths. ok is false for strided and irregular plans.
func (p *Plan) ContigWindow() (off int64, ok bool) {
	if p.kernel != KernelContig {
		return 0, false
	}
	return p.contigOff, true
}

// Bytes returns the packed size of the full message.
func (p *Plan) Bytes() int64 { return p.total }

// Parallel reports whether executing the plan on real buffers would
// split across goroutines under the current threshold.
func (p *Plan) Parallel() bool {
	return p.total >= ParallelPackThreshold() && p.workers() > 1
}

// Workers returns the goroutine fan-out a full-message execution of
// this plan uses: 1 below the parallel threshold. Cost models use it
// to price the parallel-pack term.
func (p *Plan) Workers() int {
	return ParallelWorkersFor(p.total)
}

// workers returns the parallel fan-out for this plan's size, ignoring
// the threshold (execute checks that separately).
func (p *Plan) workers() int { return workersFor(p.total) }

// ParallelWorkersFor returns the goroutine fan-out the pack engine
// uses for an n-byte message under the current threshold: 1 when the
// message stays serial.
func ParallelWorkersFor(n int64) int {
	if n < ParallelPackThreshold() {
		return 1
	}
	return workersFor(n)
}

// workersFor is the raw fan-out rule: GOMAXPROCS capped by
// maxPackWorkers and by the minimum per-worker share.
func workersFor(n int64) int {
	w := runtime.GOMAXPROCS(0)
	if w > maxPackWorkers {
		w = maxPackWorkers
	}
	if byShare := int(n / minBytesPerWorker); w > byShare {
		w = byShare
	}
	if w < 1 {
		w = 1
	}
	return w
}

// PlanStats is a snapshot of the package-wide plan-engine counters:
// how many programs were compiled, how the per-(type,count) plan cache
// performed (PlanHits/PlanMisses), how many pack/unpack executions and
// bytes each kernel handled — whole-message and chunked
// (ChunkOps/ChunkBytes) — how many of those ran parallel, and how much
// traffic fell back to the interpreting cursor. The harness reports
// per-measurement deltas of these so the figures can show
// compiled-vs-interpreted bandwidth and cache hit rates.
type PlanStats struct {
	Compiled int64

	// PlanHits and PlanMisses count lookups of the per-type plan
	// cache: a hit returns a previously bound plan with no compilation
	// and no allocation.
	PlanHits, PlanMisses int64

	ContigOps, ContigBytes     int64
	StrideOps, StrideBytes     int64
	GatherOps, GatherBytes     int64
	// BlockOps and BlockBytes count executions of canonical
	// strided-block programs — gather tables the normalizer collapsed
	// into closed 2-D/3-D forms served by the specialized kernel
	// registry.
	BlockOps, BlockBytes       int64
	ParallelOps, ParallelBytes int64

	// CanonHits and CanonMisses count Commit-time normalization
	// outcomes over gather programs (contig/stride programs are
	// already canonical and count as neither); RunsMerged counts the
	// raw table segments folded away into canonical descriptors.
	CanonHits, CanonMisses int64
	RunsMerged             int64
	// ChunkOps and ChunkBytes count compiled-kernel executions of
	// partial packed ranges (the chunked/pipelined streaming tier);
	// their bytes are also attributed to the owning kernel above.
	ChunkOps, ChunkBytes   int64
	CursorOps, CursorBytes int64

	// PipelinedOps and PipelinedBytes count chunks executed by the
	// chunk-slot pipeline's pack worker (ChunkPipeline) — the overlap
	// attribution of the software-pipelined rendezvous and collective
	// paths. Pipelined chunks are also counted in ChunkOps/ChunkBytes
	// and their owning kernel, like any partial-range execution.
	PipelinedOps, PipelinedBytes int64

	// FusedOps and FusedBytes count one-pass fused scatter/gather
	// transfers (FusedCopy: user layout → user layout, no staging);
	// StagedOps and StagedBytes count rendezvous typed transfers that
	// went through the two-pass pack→staging→unpack pipeline instead
	// (recorded by the mpi layer via RecordStagedTransfer). Together
	// they attribute every typed rendezvous payload to the engine that
	// moved it.
	FusedOps, FusedBytes   int64
	StagedOps, StagedBytes int64
}

// HitRate returns PlanHits/(PlanHits+PlanMisses), or 0 with no
// lookups.
func (s PlanStats) HitRate() float64 {
	total := s.PlanHits + s.PlanMisses
	if total == 0 {
		return 0
	}
	return float64(s.PlanHits) / float64(total)
}

// CompiledOps returns the total compiled-kernel executions.
func (s PlanStats) CompiledOps() int64 {
	return s.ContigOps + s.StrideOps + s.GatherOps + s.BlockOps
}

// CompiledBytes returns the bytes moved by compiled kernels.
func (s PlanStats) CompiledBytes() int64 {
	return s.ContigBytes + s.StrideBytes + s.GatherBytes + s.BlockBytes
}

// Sub returns the counter-wise difference s - o, for windowed deltas.
func (s PlanStats) Sub(o PlanStats) PlanStats {
	return PlanStats{
		Compiled:       s.Compiled - o.Compiled,
		PlanHits:       s.PlanHits - o.PlanHits,
		PlanMisses:     s.PlanMisses - o.PlanMisses,
		ContigOps:      s.ContigOps - o.ContigOps,
		ContigBytes:    s.ContigBytes - o.ContigBytes,
		StrideOps:      s.StrideOps - o.StrideOps,
		StrideBytes:    s.StrideBytes - o.StrideBytes,
		GatherOps:      s.GatherOps - o.GatherOps,
		GatherBytes:    s.GatherBytes - o.GatherBytes,
		BlockOps:       s.BlockOps - o.BlockOps,
		BlockBytes:     s.BlockBytes - o.BlockBytes,
		CanonHits:      s.CanonHits - o.CanonHits,
		CanonMisses:    s.CanonMisses - o.CanonMisses,
		RunsMerged:     s.RunsMerged - o.RunsMerged,
		ParallelOps:    s.ParallelOps - o.ParallelOps,
		ParallelBytes:  s.ParallelBytes - o.ParallelBytes,
		ChunkOps:       s.ChunkOps - o.ChunkOps,
		ChunkBytes:     s.ChunkBytes - o.ChunkBytes,
		CursorOps:      s.CursorOps - o.CursorOps,
		CursorBytes:    s.CursorBytes - o.CursorBytes,
		PipelinedOps:   s.PipelinedOps - o.PipelinedOps,
		PipelinedBytes: s.PipelinedBytes - o.PipelinedBytes,
		FusedOps:       s.FusedOps - o.FusedOps,
		FusedBytes:     s.FusedBytes - o.FusedBytes,
		StagedOps:      s.StagedOps - o.StagedOps,
		StagedBytes:    s.StagedBytes - o.StagedBytes,
	}
}

// String renders the snapshot compactly for logs and study output.
func (s PlanStats) String() string {
	return fmt.Sprintf("plan{compiled=%d cache=%d/%d contig=%d/%dB stride=%d/%dB gather=%d/%dB block=%d/%dB canon=%d/%d merged=%d parallel=%d/%dB chunk=%d/%dB pipelined=%d/%dB cursor=%d/%dB fused=%d/%dB staged=%d/%dB}",
		s.Compiled, s.PlanHits, s.PlanMisses, s.ContigOps, s.ContigBytes, s.StrideOps, s.StrideBytes,
		s.GatherOps, s.GatherBytes, s.BlockOps, s.BlockBytes, s.CanonHits, s.CanonMisses, s.RunsMerged,
		s.ParallelOps, s.ParallelBytes, s.ChunkOps, s.ChunkBytes,
		s.PipelinedOps, s.PipelinedBytes, s.CursorOps, s.CursorBytes, s.FusedOps, s.FusedBytes,
		s.StagedOps, s.StagedBytes)
}

// planCounters holds the live counters behind PlanStatsSnapshot.
var planCounters struct {
	compiled             atomic.Int64
	planHits, planMisses atomic.Int64

	contigOps, contigBytes       atomic.Int64
	strideOps, strideBytes       atomic.Int64
	gatherOps, gatherBytes       atomic.Int64
	blockOps, blockBytes         atomic.Int64
	canonHits, canonMisses       atomic.Int64
	runsMerged                   atomic.Int64
	parallelOps, parallelBytes   atomic.Int64
	chunkOps, chunkBytes         atomic.Int64
	pipelinedOps, pipelinedBytes atomic.Int64
	cursorOps, cursorBytes       atomic.Int64
	fusedOps, fusedBytes         atomic.Int64
	stagedOps, stagedBytes       atomic.Int64
}

// PlanStatsSnapshot returns the current plan-engine counters.
func PlanStatsSnapshot() PlanStats {
	return PlanStats{
		Compiled:       planCounters.compiled.Load(),
		PlanHits:       planCounters.planHits.Load(),
		PlanMisses:     planCounters.planMisses.Load(),
		ContigOps:      planCounters.contigOps.Load(),
		ContigBytes:    planCounters.contigBytes.Load(),
		StrideOps:      planCounters.strideOps.Load(),
		StrideBytes:    planCounters.strideBytes.Load(),
		GatherOps:      planCounters.gatherOps.Load(),
		GatherBytes:    planCounters.gatherBytes.Load(),
		BlockOps:       planCounters.blockOps.Load(),
		BlockBytes:     planCounters.blockBytes.Load(),
		CanonHits:      planCounters.canonHits.Load(),
		CanonMisses:    planCounters.canonMisses.Load(),
		RunsMerged:     planCounters.runsMerged.Load(),
		ParallelOps:    planCounters.parallelOps.Load(),
		ParallelBytes:  planCounters.parallelBytes.Load(),
		ChunkOps:       planCounters.chunkOps.Load(),
		ChunkBytes:     planCounters.chunkBytes.Load(),
		PipelinedOps:   planCounters.pipelinedOps.Load(),
		PipelinedBytes: planCounters.pipelinedBytes.Load(),
		CursorOps:      planCounters.cursorOps.Load(),
		CursorBytes:    planCounters.cursorBytes.Load(),
		FusedOps:       planCounters.fusedOps.Load(),
		FusedBytes:     planCounters.fusedBytes.Load(),
		StagedOps:      planCounters.stagedOps.Load(),
		StagedBytes:    planCounters.stagedBytes.Load(),
	}
}

// ResetPlanStats zeroes the plan-engine counters.
func ResetPlanStats() {
	planCounters.compiled.Store(0)
	planCounters.planHits.Store(0)
	planCounters.planMisses.Store(0)
	planCounters.contigOps.Store(0)
	planCounters.contigBytes.Store(0)
	planCounters.strideOps.Store(0)
	planCounters.strideBytes.Store(0)
	planCounters.gatherOps.Store(0)
	planCounters.gatherBytes.Store(0)
	planCounters.blockOps.Store(0)
	planCounters.blockBytes.Store(0)
	planCounters.canonHits.Store(0)
	planCounters.canonMisses.Store(0)
	planCounters.runsMerged.Store(0)
	planCounters.parallelOps.Store(0)
	planCounters.parallelBytes.Store(0)
	planCounters.chunkOps.Store(0)
	planCounters.chunkBytes.Store(0)
	planCounters.pipelinedOps.Store(0)
	planCounters.pipelinedBytes.Store(0)
	planCounters.cursorOps.Store(0)
	planCounters.cursorBytes.Store(0)
	planCounters.fusedOps.Store(0)
	planCounters.fusedBytes.Store(0)
	planCounters.stagedOps.Store(0)
	planCounters.stagedBytes.Store(0)
}

// recordPlanExec attributes one full-message execution to its kernel.
func recordPlanExec(k PlanKernel, n int64, parallel bool) {
	switch k {
	case KernelContig:
		planCounters.contigOps.Add(1)
		planCounters.contigBytes.Add(n)
	case KernelStride:
		planCounters.strideOps.Add(1)
		planCounters.strideBytes.Add(n)
	case KernelGather:
		planCounters.gatherOps.Add(1)
		planCounters.gatherBytes.Add(n)
	case KernelBlock:
		planCounters.blockOps.Add(1)
		planCounters.blockBytes.Add(n)
	}
	if parallel {
		planCounters.parallelOps.Add(1)
		planCounters.parallelBytes.Add(n)
	}
}

// recordPlanChunk attributes one compiled partial-range execution to
// its kernel and the chunk counters.
func recordPlanChunk(k PlanKernel, n int64, parallel bool) {
	recordPlanExec(k, n, parallel)
	planCounters.chunkOps.Add(1)
	planCounters.chunkBytes.Add(n)
}

// recordPipelined attributes one chunk executed by the chunk-slot
// pipeline's pack worker.
func recordPipelined(n int64) {
	planCounters.pipelinedOps.Add(1)
	planCounters.pipelinedBytes.Add(n)
}

// recordFused attributes one fused one-pass transfer; parallel
// executions also count toward the parallel attribution, like plan
// executions do.
func recordFused(n int64, parallel bool) {
	planCounters.fusedOps.Add(1)
	planCounters.fusedBytes.Add(n)
	if parallel {
		planCounters.parallelOps.Add(1)
		planCounters.parallelBytes.Add(n)
	}
}

// RecordFusedTransfer attributes one rendezvous typed transfer that
// moved in a single pass without a staging buffer but outside
// FusedCopy (the plan packing straight into a remote contiguous
// destination), so PlanStats sees every zero-staging transfer as
// fused.
func RecordFusedTransfer(n int64) { recordFused(n, false) }

// RecordStagedTransfer attributes one rendezvous typed transfer that
// moved through the two-pass pack→staging→unpack pipeline. The mpi
// protocol layer calls it wherever a typed rendezvous payload could
// not be fused, so PlanStats carries fused-vs-staged attribution.
func RecordStagedTransfer(n int64) {
	planCounters.stagedOps.Add(1)
	planCounters.stagedBytes.Add(n)
}

// recordCursor attributes interpreted traffic (the true-fallback tier:
// cursor streaming with compiled chunking disabled, or packers built
// on unplanned types) to the fallback counters.
func recordCursor(n int64) {
	planCounters.cursorOps.Add(1)
	planCounters.cursorBytes.Add(n)
}
