package datatype

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/buf"
)

// This file tests the Commit-time normalizer: canonical-form detection
// on the nested shapes TEMPI targets, and — the load-bearing property —
// byte-identical behaviour of the normalized program against the raw
// one across pack, unpack, chunked streaming, fused copy and
// ChecksumRange.

// withNormalize runs fn under the given normalization gate setting,
// restoring the previous one. Types must be constructed inside fn: the
// gate is read when a type's program is first compiled.
func withNormalize(on bool, fn func()) {
	prev := NormalizeEnabled()
	SetNormalize(on)
	defer SetNormalize(prev)
	fn()
}

// hvecOfVec builds the canonical 2-D block shape: an hvector of outer
// strided vectors whose pitch breaks the regular continuation, so the
// flattener materialises an irregular table the normalizer collapses.
func hvecOfVec(t *testing.T, outer, inner, bl int, pad int64) *Type {
	t.Helper()
	in, err := Vector(inner, bl, 2*bl, Float64)
	if err != nil {
		t.Fatalf("inner vector: %v", err)
	}
	ty, err := Hvector(outer, 1, in.TrueExtent()+pad, in)
	if err != nil {
		t.Fatalf("hvector: %v", err)
	}
	if err := ty.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	return ty
}

func TestNormalizeHvectorOfVector(t *testing.T) {
	var ty *Type
	withNormalize(true, func() { ty = hvecOfVec(t, 6, 16, 1, 16) })
	plan, err := ty.CompilePlan(2)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if plan.Kernel() != KernelBlock {
		t.Fatalf("kernel = %v, want block (%s)", plan.Kernel(), ty.CanonicalString())
	}
	ok, raw, dims := plan.Canon()
	if !ok || raw != 6*16 || dims != 2 {
		t.Fatalf("Canon() = (%v, %d, %d), want (true, 96, 2)", ok, raw, dims)
	}
	want := KernelClass{Elem: Elem8, Stride: StrideRegular, Dims: 2}
	if plan.KernelClass() != want {
		t.Fatalf("class = %v, want %v", plan.KernelClass(), want)
	}
}

func TestNormalize3DNesting(t *testing.T) {
	// Three stride levels: runs within a row, rows within a plane,
	// planes — each pitch breaking the level below's continuation.
	var ty *Type
	withNormalize(true, func() {
		in, err := Vector(4, 1, 2, Float64)
		if err != nil {
			t.Fatal(err)
		}
		mid, err := Hvector(3, 1, 72, in)
		if err != nil {
			t.Fatal(err)
		}
		ty, err = Hvector(2, 1, 240, mid)
		if err != nil {
			t.Fatal(err)
		}
		if err := ty.Commit(); err != nil {
			t.Fatal(err)
		}
	})
	plan, err := ty.CompilePlan(1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kernel() != KernelBlock {
		t.Fatalf("kernel = %v, want block (%s)", plan.Kernel(), ty.CanonicalString())
	}
	if ok, raw, dims := plan.Canon(); !ok || raw != 24 || dims != 3 {
		t.Fatalf("Canon() = (%v, %d, %d), want (true, 24, 3)", ok, raw, dims)
	}
}

func TestNormalizeSubarrayOfContiguous(t *testing.T) {
	// A 3-D subarray with partial rows: contiguous row pieces at a row
	// pitch within each plane, planes at a plane pitch — collapses to
	// a block form with one run per row (the subarray-of-contiguous
	// family).
	var ty *Type
	withNormalize(true, func() {
		var err error
		ty, err = Subarray([]int{4, 4, 8}, []int{2, 3, 3}, []int{1, 0, 0}, OrderC, Float64)
		if err != nil {
			t.Fatal(err)
		}
		if err := ty.Commit(); err != nil {
			t.Fatal(err)
		}
	})
	plan, err := ty.CompilePlan(1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kernel() != KernelBlock {
		t.Fatalf("kernel = %v, want block (%s)", plan.Kernel(), ty.CanonicalString())
	}
	if ok, raw, _ := plan.Canon(); !ok || raw != 6 {
		t.Fatalf("Canon() = (%v, %d, _), want (true, 6, _)", ok, raw)
	}
	// 24-byte rows land outside the unrolled element classes: the
	// registry must have fallen back to the element-agnostic tile.
	if c := plan.KernelClass(); c.Elem != ElemAny || c.Stride != StrideRegular {
		t.Fatalf("class = %v, want any/regular", c)
	}
}

func TestNormalizeUniformHoist(t *testing.T) {
	// Irregular offsets with a uniform block length: no canonical form,
	// but the uniform element size is hoisted onto the gather table.
	var ty *Type
	withNormalize(true, func() {
		var err error
		ty, err = IndexedBlock(1, []int{0, 3, 7, 12, 14, 21}, Float64)
		if err != nil {
			t.Fatal(err)
		}
		if err := ty.Commit(); err != nil {
			t.Fatal(err)
		}
	})
	plan, err := ty.CompilePlan(2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kernel() != KernelGather {
		t.Fatalf("kernel = %v, want gather (%s)", plan.Kernel(), ty.CanonicalString())
	}
	if u := plan.prog.uniform; u != 8 {
		t.Fatalf("uniform = %d, want 8", u)
	}
	want := KernelClass{Elem: Elem8, Stride: StrideIrregular, Dims: 1}
	if plan.KernelClass() != want {
		t.Fatalf("class = %v, want %v", plan.KernelClass(), want)
	}
}

func TestNormalizeStats(t *testing.T) {
	before := PlanStatsSnapshot()
	var ty *Type
	withNormalize(true, func() { ty = hvecOfVec(t, 4, 8, 1, 24) })
	plan, err := ty.CompilePlan(1)
	if err != nil {
		t.Fatal(err)
	}
	src := buf.Alloc(userBufLen(ty, 1))
	src.FillPattern(7)
	dst := buf.Alloc(int(plan.Bytes()))
	if _, err := plan.Pack(src, dst); err != nil {
		t.Fatal(err)
	}
	d := PlanStatsSnapshot().Sub(before)
	if d.CanonHits != 1 {
		t.Fatalf("CanonHits = %d, want 1", d.CanonHits)
	}
	if d.RunsMerged != 32-2 {
		t.Fatalf("RunsMerged = %d, want 30", d.RunsMerged)
	}
	if d.BlockOps != 1 || d.BlockBytes != plan.Bytes() {
		t.Fatalf("block attribution = %d/%dB, want 1/%dB", d.BlockOps, d.BlockBytes, plan.Bytes())
	}
	if d.CompiledOps() < 1 || d.CompiledBytes() < plan.Bytes() {
		t.Fatalf("block execution missing from compiled totals: %+v", d)
	}
}

func TestKernelRegistryLookup(t *testing.T) {
	if RegisteredKernelClasses() == 0 {
		t.Fatal("empty kernel registry")
	}
	// Exact hit for the hot 8-byte 2-D class.
	k := lookupBlockKernels(KernelClass{Elem8, StrideRegular, 2})
	if k.GatherTile == nil || k.ScatterTile == nil {
		t.Fatal("elem8/regular/2d resolved nil kernels")
	}
	// Unknown class falls back to the generic tile.
	g := lookupBlockKernels(KernelClass{ElemAny, StrideRegular, 5})
	if g.GatherTile == nil || g.ScatterTile == nil {
		t.Fatal("fallback resolved nil kernels")
	}
}

func TestCanonicalString(t *testing.T) {
	cases := []struct {
		build func() *Type
		want  string
	}{
		{func() *Type { return mustType(Contiguous(4, Float64)) }, "canon{contig"},
		{func() *Type { return mustType(Vector(8, 1, 2, Float64)) }, "canon{stride"},
		{func() *Type { return hvecOfVec(t, 4, 8, 1, 24) }, "canon{block2d"},
		{func() *Type { return mustType(IndexedBlock(1, []int{0, 3, 7, 12, 14, 21}, Float64)) }, "canon{gather"},
	}
	withNormalize(true, func() {
		for _, c := range cases {
			ty := c.build()
			if err := ty.Commit(); err != nil {
				t.Fatal(err)
			}
			if s := ty.CanonicalString(); !bytes.Contains([]byte(s), []byte(c.want)) {
				t.Errorf("CanonicalString() = %q, want prefix %q", s, c.want)
			}
		}
	})
}

// normalizeCorpus returns constructor closures covering the families
// the normalizer touches, including the Resized/Subarray edge cases
// from the PR 1–2 regressions. Each closure builds a fresh committed
// type so the gate applies at its Commit.
func normalizeCorpus(t *testing.T) map[string]func() *Type {
	t.Helper()
	mk := func(ty *Type, err error) *Type {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if err := ty.Commit(); err != nil {
			t.Fatal(err)
		}
		return ty
	}
	return map[string]func() *Type{
		"hvec-of-vec":   func() *Type { return hvecOfVec(t, 6, 16, 1, 16) },
		"hvec-of-vec4":  func() *Type { return hvecOfVec(t, 5, 7, 1, 4) },
		"hvec-of-block": func() *Type { return hvecOfVec(t, 4, 6, 8, 24) },
		"3d-nest": func() *Type {
			in := mustType(Vector(4, 1, 2, Float64))
			mid := mustType(Hvector(3, 1, 72, in))
			return mk(Hvector(2, 1, 240, mid))
		},
		"subarray-3d": func() *Type {
			return mk(Subarray([]int{4, 4, 8}, []int{2, 3, 3}, []int{1, 0, 0}, OrderC, Float64))
		},
		"subarray-2d": func() *Type {
			return mk(Subarray([]int{5, 8}, []int{3, 3}, []int{1, 2}, OrderC, Float64))
		},
		"indexed-irregular": func() *Type {
			return mk(Indexed([]int{2, 1, 3, 1}, []int{0, 5, 8, 16}, Float64))
		},
		"indexed-uniform": func() *Type {
			return mk(IndexedBlock(1, []int{0, 3, 7, 12, 14, 21}, Float64))
		},
		"struct-mixed": func() *Type {
			return mk(Struct([]int{1, 2, 1}, []int64{0, 8, 40}, []*Type{Int32, Float64, Complex128}))
		},
		"resized-hvec": func() *Type {
			in := mustType(Vector(4, 1, 2, Float64))
			rz := mk(Resized(in, 0, in.TrueExtent()+8))
			return mk(Hvector(3, 1, rz.Extent()+8, rz))
		},
		"hvec-of-subarray": func() *Type {
			sub := mk(Subarray([]int{4, 6}, []int{2, 3}, []int{1, 1}, OrderC, Float64))
			return mk(Hvector(3, 1, sub.Extent()+16, sub))
		},
	}
}

// TestNormalizeDifferential is the load-bearing property: for every
// corpus shape, the normalized program's pack, unpack, chunked
// streaming, fused copy and ChecksumRange results are byte-identical
// to the raw program's.
func TestNormalizeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(0xCA11))
	for name, build := range normalizeCorpus(t) {
		t.Run(name, func(t *testing.T) {
			var tyN, tyR *Type
			withNormalize(true, func() { tyN = build() })
			withNormalize(false, func() { tyR = build() })
			for _, count := range []int{1, 2, 3} {
				planN, err := tyN.CompilePlan(count)
				if err != nil {
					t.Fatal(err)
				}
				planR, err := tyR.CompilePlan(count)
				if err != nil {
					t.Fatal(err)
				}
				if planR.Kernel() == KernelBlock {
					t.Fatal("raw plan normalized: gate leaked")
				}
				total := planN.Bytes()
				if total != planR.Bytes() {
					t.Fatalf("sizes differ: %d vs %d", total, planR.Bytes())
				}
				src := buf.Alloc(userBufLen(tyN, count))
				src.FillPattern(byte(count))

				// Whole-message pack.
				dstN := buf.Alloc(int(total))
				dstR := buf.Alloc(int(total))
				if _, err := planN.Pack(src, dstN); err != nil {
					t.Fatal(err)
				}
				if _, err := planR.Pack(src, dstR); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(dstN.Bytes(), dstR.Bytes()) {
					t.Fatalf("count %d: normalized pack differs from raw (%s)", count, tyN.CanonicalString())
				}

				// Whole-message unpack into junk-filled buffers.
				outN := buf.Alloc(userBufLen(tyN, count))
				outR := buf.Alloc(userBufLen(tyR, count))
				outN.FillPattern(0xEE)
				outR.FillPattern(0xEE)
				if _, err := planN.Unpack(dstN, outN); err != nil {
					t.Fatal(err)
				}
				if _, err := planR.Unpack(dstR, outR); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(outN.Bytes(), outR.Bytes()) {
					t.Fatalf("count %d: normalized unpack differs from raw", count)
				}

				// Chunked streaming at odd split points (mid-run
				// entries exercise the block kernel's resumable
				// addressing).
				chunkN := buf.Alloc(int(total))
				chunkR := buf.Alloc(int(total))
				var lo int64
				for lo < total {
					hi := lo + int64(rng.Intn(97)+1)
					if hi > total {
						hi = total
					}
					if err := planN.PackRange(src, buf.FromBytes(chunkN.Bytes()[lo:hi]), lo, hi); err != nil {
						t.Fatal(err)
					}
					if err := planR.PackRange(src, buf.FromBytes(chunkR.Bytes()[lo:hi]), lo, hi); err != nil {
						t.Fatal(err)
					}
					lo = hi
				}
				if !bytes.Equal(chunkN.Bytes(), chunkR.Bytes()) {
					t.Fatalf("count %d: chunked normalized pack differs from raw", count)
				}

				// ChecksumRange over a random split.
				var sumN, sumR buf.Checksum
				mid := total / 3
				planN.ChecksumRange(src, 0, mid, &sumN)
				planN.ChecksumRange(src, mid, total, &sumN)
				planR.ChecksumRange(src, 0, mid, &sumR)
				planR.ChecksumRange(src, mid, total, &sumR)
				if sumN.Sum64() != sumR.Sum64() {
					t.Fatalf("count %d: normalized checksum differs from raw", count)
				}

				// Fused copy: layout → layout in one pass on both
				// programs.
				if planN.FusedDstSafe() && planR.FusedDstSafe() {
					fN := buf.Alloc(userBufLen(tyN, count))
					fR := buf.Alloc(userBufLen(tyR, count))
					fN.FillPattern(0xAB)
					fR.FillPattern(0xAB)
					if _, err := FusedCopy(planN, planN, src, fN); err != nil {
						t.Fatal(err)
					}
					if _, err := FusedCopy(planR, planR, src, fR); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(fN.Bytes(), fR.Bytes()) {
						t.Fatalf("count %d: normalized fused copy differs from raw", count)
					}
				}
			}
		})
	}
}

// TestNormalizeParallelRange drives the block kernel through the
// multi-worker split so the mid-stream entry decomposition is
// exercised at arbitrary split points.
func TestNormalizeParallelRange(t *testing.T) {
	var ty *Type
	withNormalize(true, func() { ty = hvecOfVec(t, 32, 64, 1, 16) })
	plan, err := ty.CompilePlan(2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kernel() != KernelBlock {
		t.Fatalf("kernel = %v, want block", plan.Kernel())
	}
	src := buf.Alloc(userBufLen(ty, 2))
	src.FillPattern(3)
	want := buf.Alloc(int(plan.Bytes()))
	got := buf.Alloc(int(plan.Bytes()))
	plan.run(src, want, 0, plan.Bytes(), packDirection)
	for _, w := range []int{2, 3, 5, 7} {
		got.FillPattern(0)
		plan.runParallelN(src, got, packDirection, w)
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("parallel block pack differs at %d workers", w)
		}
	}
	// And the inverse direction.
	back := buf.Alloc(userBufLen(ty, 2))
	ref := buf.Alloc(userBufLen(ty, 2))
	back.FillPattern(0xEE)
	ref.FillPattern(0xEE)
	plan.run(ref, want, 0, plan.Bytes(), unpackDirection)
	plan.runParallelN(back, want, unpackDirection, 5)
	if !bytes.Equal(ref.Bytes(), back.Bytes()) {
		t.Fatal("parallel block unpack differs from serial")
	}
}

// TestNormalizePipeline runs a canonical block program through the
// chunk-slot pipeline against the raw program's packed stream.
func TestNormalizePipeline(t *testing.T) {
	var tyN, tyR *Type
	withNormalize(true, func() { tyN = hvecOfVec(t, 16, 32, 1, 16) })
	withNormalize(false, func() { tyR = hvecOfVec(t, 16, 32, 1, 16) })
	planN, err := tyN.CompilePlan(1)
	if err != nil {
		t.Fatal(err)
	}
	planR, err := tyR.CompilePlan(1)
	if err != nil {
		t.Fatal(err)
	}
	src := buf.Alloc(userBufLen(tyN, 1))
	src.FillPattern(9)
	want := buf.Alloc(int(planR.Bytes()))
	if _, err := planR.Pack(src, want); err != nil {
		t.Fatal(err)
	}
	pl, err := NewChunkPipeline(planN, src, 0, planN.Bytes(), 512, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 0, planN.Bytes())
	for {
		ch, ok := pl.Next()
		if !ok {
			break
		}
		got = append(got, ch.Data.Bytes()...)
		pl.Recycle(ch)
	}
	pl.Close()
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("pipelined block stream differs from raw pack")
	}
}
