package datatype

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/buf"
	"repro/internal/layout"
)

// randIndexed builds a random valid indexed-block type: sorted,
// non-overlapping displacements.
func randIndexed(rng *rand.Rand) (*Type, error) {
	n := rng.Intn(12) + 1
	blocklen := rng.Intn(3) + 1
	displs := make([]int, n)
	pos := 0
	for i := range displs {
		displs[i] = pos
		pos += blocklen + rng.Intn(5)
	}
	ty, err := IndexedBlock(blocklen, displs, Float64)
	if err != nil {
		return nil, err
	}
	return ty, ty.Commit()
}

// Property: pack∘unpack is the identity on the selected bytes for
// random indexed types.
func TestQuickIndexedPackUnpackIdentity(t *testing.T) {
	f := func(seed int64, fill byte) bool {
		rng := rand.New(rand.NewSource(seed))
		ty, err := randIndexed(rng)
		if err != nil {
			return false
		}
		bufLen := int(ty.r.last())
		if bufLen == 0 {
			return true
		}
		src := buf.Alloc(bufLen)
		src.FillPattern(fill)
		packed := buf.Alloc(int(ty.Size()))
		if _, err := ty.Pack(src, 1, packed); err != nil {
			return false
		}
		back := buf.Alloc(bufLen)
		if _, err := ty.Unpack(packed, 1, back); err != nil {
			return false
		}
		ok := true
		ty.Layout(1).ForEach(func(s layout.Segment) bool {
			for off := s.Off; off < s.End(); off++ {
				if back.Bytes()[off] != src.Bytes()[off] {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: a struct of (int32, k×float64) has size 4+8k and an extent
// padded to 8.
func TestQuickStructSizeLaws(t *testing.T) {
	f := func(kRaw uint8) bool {
		k := int(kRaw)%8 + 1
		ty, err := Struct([]int{1, k}, []int64{0, 8}, []*Type{Int32, Float64})
		if err != nil {
			return false
		}
		if ty.Size() != int64(4+8*k) {
			return false
		}
		return ty.Extent()%8 == 0 && ty.Extent() >= int64(8+8*k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Stats payload equals PackSize for any count.
func TestQuickStatsPayloadLaw(t *testing.T) {
	f := func(cnt, bl, extra, count uint8) bool {
		c := int(cnt)%30 + 1
		b := int(bl)%4 + 1
		s := b + int(extra)%5
		k := int(count)%5 + 1
		ty, err := Vector(c, b, s, Float64)
		if err != nil {
			return false
		}
		_ = ty.Commit()
		return ty.Stats(k).Bytes == ty.PackSize(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the layout exposed by a committed type validates under the
// layout package's ordering contract (non-overlap, ascending) for any
// vector geometry and count.
func TestQuickTypeLayoutValidates(t *testing.T) {
	f := func(cnt, bl, extra, count uint8) bool {
		c := int(cnt)%20 + 1
		b := int(bl)%3 + 1
		s := b + int(extra)%4
		k := int(count)%4 + 1
		ty, err := Vector(c, b, s, Float64)
		if err != nil {
			return false
		}
		_ = ty.Commit()
		return layout.Validate(ty.Layout(k)) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: promote() round trip — the canonical form of a regular
// pattern re-derived from its own segments is identical.
func TestQuickPromoteRoundTrip(t *testing.T) {
	f := func(start, runLen, gap, n uint8) bool {
		r := regularRuns(int64(start), int64(runLen%32)+1, int64(gap%16), int64(n%20)+1)
		var segs []layout.Segment
		r.forEach(0, func(s layout.Segment) bool {
			segs = append(segs, s)
			return true
		})
		r2, ok := promote(segs)
		if !ok {
			return false
		}
		return r2.start == r.start && r2.runLen == r.runLen && r2.n == r.n &&
			(r2.n == 1 || r2.gap == r.gap)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTooManySegmentsRefused(t *testing.T) {
	// An irregular repetition that would materialise beyond the bound
	// must fail cleanly, not OOM. Nested irregular-over-regular with a
	// huge count hits replicate's materialisation path.
	inner, err := Vector(2, 1, 3, Float64) // irregular-ish: 2 runs, extent ≠ n*step
	if err != nil {
		t.Fatal(err)
	}
	_, err = Contiguous(20_000_000, inner) // 40M segments > maxMaterialize
	var tooMany *TooManySegmentsError
	if !errors.As(err, &tooMany) {
		t.Fatalf("err = %v, want TooManySegmentsError", err)
	}
}

func TestResizedShrinkOverlapStillPacks(t *testing.T) {
	// Resized with extent smaller than the span: repetition interleaves
	// instances. Pack must still follow instance-major typemap order.
	base, err := Vector(2, 1, 4, Float64) // bytes 0-8 and 32-40, span 40
	if err != nil {
		t.Fatal(err)
	}
	ty, err := Resized(base, 0, 16) // instances 16 bytes apart: interleaved
	if err != nil {
		t.Fatal(err)
	}
	if err := ty.Commit(); err != nil {
		t.Fatal(err)
	}
	src := buf.Alloc(16*3 + 40)
	src.FillPattern(9)
	packed := buf.Alloc(int(ty.PackSize(3)))
	if _, err := ty.Pack(src, 3, packed); err != nil {
		t.Fatal(err)
	}
	// Manual oracle: instance i at offset 16i selects [0,8) and [32,40).
	var want []byte
	for i := 0; i < 3; i++ {
		base := 16 * i
		want = append(want, src.Bytes()[base:base+8]...)
		want = append(want, src.Bytes()[base+32:base+40]...)
	}
	for i, w := range want {
		if packed.Bytes()[i] != w {
			t.Fatalf("byte %d = %#x, want %#x", i, packed.Bytes()[i], w)
		}
	}
}

func TestTrueExtentVsExtent(t *testing.T) {
	// Subarray: extent is the whole parent array, true extent only the
	// touched span.
	ty := mustType(Subarray([]int{8, 8}, []int{2, 2}, []int{3, 3}, OrderC, Float64))
	if ty.Extent() != 8*8*8 {
		t.Fatalf("extent = %d", ty.Extent())
	}
	firstByte := int64((3*8 + 3) * 8)
	lastByte := int64((4*8+3+2)*8) - firstByte
	if ty.TrueLB() != firstByte || ty.TrueExtent() != lastByte {
		t.Fatalf("true lb/extent = %d/%d, want %d/%d", ty.TrueLB(), ty.TrueExtent(), firstByte, lastByte)
	}
}
