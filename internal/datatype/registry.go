package datatype

import (
	"fmt"

	"repro/internal/buf"
)

// This file implements the specialized kernel registry behind the
// canonical strided-block programs produced by the normalizer
// (normalize.go). Kernels are keyed by (element size × stride class ×
// dimensionality); the hot classes — 8-byte regular strides (the
// paper's every-other-double family), 2-D/3-D blocks, 4- and 16-byte
// elements — get unrolled tile specializations, and everything else
// falls back to generic row loops over the existing gatherRuns/
// scatterRuns copiers. Registration happens at init; lookups happen
// once per type at Commit and the resolved kernels are stored on the
// compiled program, so execution pays no registry dispatch.

// ElemClass buckets a canonical run length into the unrolled element
// classes the paper's workloads use (float, double, double complex).
type ElemClass uint8

// The element classes.
const (
	ElemAny ElemClass = iota
	Elem4
	Elem8
	Elem16
)

var elemClassNames = map[ElemClass]string{
	ElemAny: "any", Elem4: "elem4", Elem8: "elem8", Elem16: "elem16",
}

// String returns the element-class name.
func (e ElemClass) String() string {
	if s, ok := elemClassNames[e]; ok {
		return s
	}
	return fmt.Sprintf("ElemClass(%d)", int(e))
}

// elemClassOf buckets a run length.
func elemClassOf(runLen int64) ElemClass {
	switch runLen {
	case 4:
		return Elem4
	case 8:
		return Elem8
	case 16:
		return Elem16
	default:
		return ElemAny
	}
}

// StrideClass classifies how a program addresses the user buffer.
type StrideClass uint8

// The stride classes.
const (
	// StrideNone is a contiguous program: one dense run.
	StrideNone StrideClass = iota
	// StrideRegular is closed-form strided addressing (the stride and
	// canonical block kernels).
	StrideRegular
	// StrideIrregular is a gather table walk.
	StrideIrregular
)

var strideClassNames = map[StrideClass]string{
	StrideNone: "contig", StrideRegular: "regular", StrideIrregular: "irregular",
}

// String returns the stride-class name.
func (s StrideClass) String() string {
	if n, ok := strideClassNames[s]; ok {
		return n
	}
	return fmt.Sprintf("StrideClass(%d)", int(s))
}

// KernelClass is the registry key: which specialization family a
// canonical program resolves to.
type KernelClass struct {
	Elem   ElemClass
	Stride StrideClass
	Dims   int
}

// String renders the class as elem/stride/dims.
func (c KernelClass) String() string {
	return fmt.Sprintf("%v/%v/%dd", c.Elem, c.Stride, c.Dims)
}

// RowKernel copies n whole runs of runLen bytes between the packed
// stream (at ppos) and a strided row of the user buffer (runs at base,
// base+step, …). gatherRuns and scatterRuns have exactly this shape.
type RowKernel func(packed, strided []byte, ppos, base, step, runLen, n int64)

// TileKernel copies rows whole rows of runsPerRow runs each: the 2-D
// inner loop of a canonical block program, specialized so the row loop
// needs no per-row dispatch.
type TileKernel func(packed, strided []byte, ppos, base, step, runLen, runsPerRow, rowStride, rows int64)

// BlockKernels is one registry entry: the row and tile kernels a
// canonical block program executes in each direction.
type BlockKernels struct {
	GatherRow   RowKernel
	ScatterRow  RowKernel
	GatherTile  TileKernel
	ScatterTile TileKernel
}

// genericBlockKernels is the universal fallback: row loops over the
// generic copiers.
var genericBlockKernels = BlockKernels{
	GatherRow:   gatherRuns,
	ScatterRow:  scatterRuns,
	GatherTile:  gatherTileAny,
	ScatterTile: scatterTileAny,
}

// blockRegistry maps kernel classes to their specializations. It is
// populated at init and read-only afterwards, so Commit-time lookups
// need no locking.
var blockRegistry = map[KernelClass]BlockKernels{}

// registerBlockKernel installs a specialization. Init-time only.
func registerBlockKernel(c KernelClass, k BlockKernels) { blockRegistry[c] = k }

func init() {
	for _, dims := range []int{2, 3} {
		registerBlockKernel(KernelClass{Elem8, StrideRegular, dims},
			BlockKernels{gatherRuns, scatterRuns, gatherTile8, scatterTile8})
		registerBlockKernel(KernelClass{Elem4, StrideRegular, dims},
			BlockKernels{gatherRuns, scatterRuns, gatherTile4, scatterTile4})
		registerBlockKernel(KernelClass{Elem16, StrideRegular, dims},
			BlockKernels{gatherRuns, scatterRuns, gatherTile16, scatterTile16})
	}
}

// lookupBlockKernels resolves a class against the registry: exact
// match, then the element-agnostic class, then the generic fallback.
func lookupBlockKernels(c KernelClass) BlockKernels {
	if k, ok := blockRegistry[c]; ok {
		return k
	}
	c.Elem = ElemAny
	if k, ok := blockRegistry[c]; ok {
		return k
	}
	return genericBlockKernels
}

// RegisteredKernelClasses returns the registry's specialization count,
// for attribution and tests.
func RegisteredKernelClasses() int { return len(blockRegistry) }

// runBlock executes a canonical strided-block program over the packed
// byte range [lo, hi); soff is the packed position of the stream
// block's byte 0. Like every kernel it can start mid-stream in O(1):
// the flat run index is a division, and its decomposition into
// (plane, row, col) is two more. Whole rows go through the registry's
// unrolled tile kernel; row remainders through the row kernel;
// split-point partial runs through copyRun.
func (p *Plan) runBlock(user, stream buf.Block, lo, hi, soff int64, dir direction) {
	ub, sb := user.Bytes(), stream.Bytes()
	pr := p.prog
	cf := &pr.canon
	runLen := cf.runLen
	rowRuns := cf.cnt[0]
	rowBytes := rowRuns * runLen
	inst := lo / pr.instSize
	rem := lo - inst*pr.instSize
	r := rem / runLen
	runOff := rem - r*runLen
	row := r / rowRuns
	col := r - row*rowRuns
	var plane int64
	rows := cf.cnt[1]
	planes := int64(1)
	if cf.dims == 3 {
		plane = row / rows
		row -= plane * rows
		planes = cf.cnt[2]
	}
	pos := lo
	for pos < hi {
		base := inst*pr.ext + cf.start + plane*cf.str[2] + row*cf.str[1] + col*cf.str[0]
		switch {
		case runOff != 0:
			// Leading partial run (a split point landed mid-run).
			n := runLen - runOff
			if n > hi-pos {
				n = hi - pos
			}
			sp := pos - soff
			if dir == packDirection {
				copyRun(sb[sp:], ub[base+runOff:], n)
			} else {
				copyRun(ub[base+runOff:], sb[sp:], n)
			}
			pos += n
			runOff = 0
			col++
		case col == 0 && hi-pos >= rowBytes:
			// Whole-row batch through the tile specialization.
			nRows := rows - row
			if m := (hi - pos) / rowBytes; m < nRows {
				nRows = m
			}
			if dir == packDirection {
				pr.bk.GatherTile(sb, ub, pos-soff, base, cf.str[0], runLen, rowRuns, cf.str[1], nRows)
			} else {
				pr.bk.ScatterTile(sb, ub, pos-soff, base, cf.str[0], runLen, rowRuns, cf.str[1], nRows)
			}
			pos += nRows * rowBytes
			row += nRows
		default:
			// Row remainder: whole runs to the row edge or range end.
			nRuns := rowRuns - col
			if m := (hi - pos) / runLen; m < nRuns {
				nRuns = m
			}
			if nRuns > 0 {
				if dir == packDirection {
					pr.bk.GatherRow(sb, ub, pos-soff, base, cf.str[0], runLen, nRuns)
				} else {
					pr.bk.ScatterRow(sb, ub, pos-soff, base, cf.str[0], runLen, nRuns)
				}
				pos += nRuns * runLen
				col += nRuns
			}
			if pos >= hi {
				return
			}
			if col < rowRuns {
				// Trailing partial run (the range ends mid-run).
				n := hi - pos
				o := inst*pr.ext + cf.start + plane*cf.str[2] + row*cf.str[1] + col*cf.str[0]
				sp := pos - soff
				if dir == packDirection {
					copyRun(sb[sp:], ub[o:], n)
				} else {
					copyRun(ub[o:], sb[sp:], n)
				}
				return
			}
		}
		if col >= rowRuns {
			col = 0
			row++
		}
		if row >= rows {
			row = 0
			plane++
		}
		if plane >= planes {
			plane = 0
			inst++
		}
	}
}

// gatherTileAny is the generic tile: a row loop over gatherRuns.
func gatherTileAny(packed, strided []byte, ppos, base, step, runLen, runsPerRow, rowStride, rows int64) {
	rowBytes := runsPerRow * runLen
	for ; rows > 0; rows-- {
		gatherRuns(packed, strided, ppos, base, step, runLen, runsPerRow)
		ppos += rowBytes
		base += rowStride
	}
}

// scatterTileAny is the generic inverse tile.
func scatterTileAny(packed, strided []byte, ppos, base, step, runLen, runsPerRow, rowStride, rows int64) {
	rowBytes := runsPerRow * runLen
	for ; rows > 0; rows-- {
		scatterRuns(packed, strided, ppos, base, step, runLen, runsPerRow)
		ppos += rowBytes
		base += rowStride
	}
}

// gatherTile8 is the unrolled 8-byte tile (the every-other-double
// family laid out 2-D): pure word moves with fixed strides, no per-row
// dispatch.
func gatherTile8(packed, strided []byte, ppos, base, step, _, runsPerRow, rowStride, rows int64) {
	for ; rows > 0; rows-- {
		o := base
		n := runsPerRow
		for ; n >= 4; n -= 4 {
			*(*[8]byte)(packed[ppos:]) = *(*[8]byte)(strided[o:])
			*(*[8]byte)(packed[ppos+8:]) = *(*[8]byte)(strided[o+step:])
			*(*[8]byte)(packed[ppos+16:]) = *(*[8]byte)(strided[o+2*step:])
			*(*[8]byte)(packed[ppos+24:]) = *(*[8]byte)(strided[o+3*step:])
			ppos += 32
			o += 4 * step
		}
		for ; n > 0; n-- {
			*(*[8]byte)(packed[ppos:]) = *(*[8]byte)(strided[o:])
			ppos += 8
			o += step
		}
		base += rowStride
	}
}

// scatterTile8 is the inverse 8-byte tile.
func scatterTile8(packed, strided []byte, ppos, base, step, _, runsPerRow, rowStride, rows int64) {
	for ; rows > 0; rows-- {
		o := base
		n := runsPerRow
		for ; n >= 4; n -= 4 {
			*(*[8]byte)(strided[o:]) = *(*[8]byte)(packed[ppos:])
			*(*[8]byte)(strided[o+step:]) = *(*[8]byte)(packed[ppos+8:])
			*(*[8]byte)(strided[o+2*step:]) = *(*[8]byte)(packed[ppos+16:])
			*(*[8]byte)(strided[o+3*step:]) = *(*[8]byte)(packed[ppos+24:])
			ppos += 32
			o += 4 * step
		}
		for ; n > 0; n-- {
			*(*[8]byte)(strided[o:]) = *(*[8]byte)(packed[ppos:])
			ppos += 8
			o += step
		}
		base += rowStride
	}
}

// gatherTile4 is the unrolled 4-byte (float) tile.
func gatherTile4(packed, strided []byte, ppos, base, step, _, runsPerRow, rowStride, rows int64) {
	for ; rows > 0; rows-- {
		o := base
		n := runsPerRow
		for ; n >= 4; n -= 4 {
			*(*[4]byte)(packed[ppos:]) = *(*[4]byte)(strided[o:])
			*(*[4]byte)(packed[ppos+4:]) = *(*[4]byte)(strided[o+step:])
			*(*[4]byte)(packed[ppos+8:]) = *(*[4]byte)(strided[o+2*step:])
			*(*[4]byte)(packed[ppos+12:]) = *(*[4]byte)(strided[o+3*step:])
			ppos += 16
			o += 4 * step
		}
		for ; n > 0; n-- {
			*(*[4]byte)(packed[ppos:]) = *(*[4]byte)(strided[o:])
			ppos += 4
			o += step
		}
		base += rowStride
	}
}

// scatterTile4 is the inverse 4-byte tile.
func scatterTile4(packed, strided []byte, ppos, base, step, _, runsPerRow, rowStride, rows int64) {
	for ; rows > 0; rows-- {
		o := base
		n := runsPerRow
		for ; n >= 4; n -= 4 {
			*(*[4]byte)(strided[o:]) = *(*[4]byte)(packed[ppos:])
			*(*[4]byte)(strided[o+step:]) = *(*[4]byte)(packed[ppos+4:])
			*(*[4]byte)(strided[o+2*step:]) = *(*[4]byte)(packed[ppos+8:])
			*(*[4]byte)(strided[o+3*step:]) = *(*[4]byte)(packed[ppos+12:])
			ppos += 16
			o += 4 * step
		}
		for ; n > 0; n-- {
			*(*[4]byte)(strided[o:]) = *(*[4]byte)(packed[ppos:])
			ppos += 4
			o += step
		}
		base += rowStride
	}
}

// gatherTile16 is the 16-byte (double complex) tile.
func gatherTile16(packed, strided []byte, ppos, base, step, _, runsPerRow, rowStride, rows int64) {
	for ; rows > 0; rows-- {
		o := base
		for n := runsPerRow; n > 0; n-- {
			*(*[16]byte)(packed[ppos:]) = *(*[16]byte)(strided[o:])
			ppos += 16
			o += step
		}
		base += rowStride
	}
}

// scatterTile16 is the inverse 16-byte tile.
func scatterTile16(packed, strided []byte, ppos, base, step, _, runsPerRow, rowStride, rows int64) {
	for ; rows > 0; rows-- {
		o := base
		for n := runsPerRow; n > 0; n-- {
			*(*[16]byte)(strided[o:]) = *(*[16]byte)(packed[ppos:])
			ppos += 16
			o += step
		}
		base += rowStride
	}
}
