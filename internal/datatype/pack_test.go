package datatype

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/buf"
	"repro/internal/elem"
	"repro/internal/layout"
)

// gatherReference gathers the layout bytes with a plain loop, the
// oracle every pack engine must match.
func gatherReference(src buf.Block, l layout.Layout) []byte {
	out := make([]byte, 0, l.Size())
	l.ForEach(func(s layout.Segment) bool {
		out = append(out, src.Bytes()[s.Off:s.End()]...)
		return true
	})
	return out
}

func TestPackVectorMatchesReference(t *testing.T) {
	ty := mustType(Vector(100, 1, 2, Float64))
	src := buf.Alloc(int(ty.Extent()))
	src.FillPattern(5)
	dst := buf.Alloc(int(ty.Size()))
	n, err := ty.Pack(src, 1, dst)
	if err != nil {
		t.Fatal(err)
	}
	if n != ty.Size() {
		t.Fatalf("packed %d, want %d", n, ty.Size())
	}
	want := gatherReference(src, ty.Layout(1))
	for i, w := range want {
		if dst.Bytes()[i] != w {
			t.Fatalf("byte %d = %#x, want %#x", i, dst.Bytes()[i], w)
		}
	}
}

func TestPackUnpackRoundTripEveryConstructor(t *testing.T) {
	types := map[string]*Type{
		"contiguous":   mustType(Contiguous(13, Float64)),
		"vector":       mustType(Vector(9, 2, 5, Float64)),
		"hvector":      mustType(Hvector(7, 1, 24, Float64)),
		"indexed":      mustType(Indexed([]int{2, 1, 3}, []int{0, 4, 8}, Float64)),
		"hindexed":     mustType(Hindexed([]int{1, 2}, []int64{8, 48}, Float64)),
		"indexedblock": mustType(IndexedBlock(2, []int{0, 5, 9}, Float64)),
		"struct":       mustType(Struct([]int{1, 2}, []int64{0, 8}, []*Type{Int32, Float64})),
		"subarray":     mustType(Subarray([]int{6, 6}, []int{2, 3}, []int{1, 2}, OrderC, Float64)),
	}
	for name, ty := range types {
		for _, count := range []int{1, 3} {
			bufLen := int(int64(count-1)*ty.Extent() + ty.r.last())
			src := buf.Alloc(bufLen)
			src.FillPattern(byte(len(name)))
			packed := buf.Alloc(int(ty.PackSize(count)))
			n, err := ty.Pack(src, count, packed)
			if err != nil {
				t.Fatalf("%s count=%d: pack: %v", name, count, err)
			}
			if n != ty.PackSize(count) {
				t.Fatalf("%s: packed %d want %d", name, n, ty.PackSize(count))
			}
			// Unpack into a fresh buffer and compare only the layout
			// bytes.
			back := buf.Alloc(bufLen)
			if _, err := ty.Unpack(packed, count, back); err != nil {
				t.Fatalf("%s: unpack: %v", name, err)
			}
			ty.Layout(count).ForEach(func(s layout.Segment) bool {
				for off := s.Off; off < s.End(); off++ {
					if back.Bytes()[off] != src.Bytes()[off] {
						t.Fatalf("%s count=%d: byte %d differs after round trip", name, count, off)
					}
				}
				return true
			})
			// Bytes outside the layout stay zero.
			sel := make([]bool, bufLen)
			ty.Layout(count).ForEach(func(s layout.Segment) bool {
				for off := s.Off; off < s.End(); off++ {
					sel[off] = true
				}
				return true
			})
			for i, inLayout := range sel {
				if !inLayout && back.Bytes()[i] != 0 {
					t.Fatalf("%s count=%d: unpack wrote outside the layout at %d", name, count, i)
				}
			}
		}
	}
}

func TestPackTruncate(t *testing.T) {
	ty := mustType(Vector(10, 1, 2, Float64))
	src := buf.Alloc(int(ty.Extent()))
	if _, err := ty.Pack(src, 1, buf.Alloc(8)); !errors.Is(err, ErrTruncate) {
		t.Fatalf("err = %v", err)
	}
}

func TestPackBufferTooSmall(t *testing.T) {
	ty := mustType(Vector(10, 1, 2, Float64))
	src := buf.Alloc(16) // far smaller than the 152-byte extent
	if _, err := ty.Pack(src, 1, buf.Alloc(80)); !errors.Is(err, ErrBounds) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnpackShortSource(t *testing.T) {
	ty := mustType(Vector(10, 1, 2, Float64))
	dst := buf.Alloc(int(ty.Extent()))
	if _, err := ty.Unpack(buf.Alloc(8), 1, dst); !errors.Is(err, ErrTruncate) {
		t.Fatalf("err = %v", err)
	}
}

func TestChunkedPackerEqualsOneShot(t *testing.T) {
	ty := mustType(Vector(64, 3, 7, Float64))
	src := buf.Alloc(int(ty.Extent()))
	src.FillPattern(11)
	oneShot := buf.Alloc(int(ty.Size()))
	if _, err := ty.Pack(src, 1, oneShot); err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 3, 8, 64, 1000, 1536, 10000} {
		p, err := ty.NewPacker(src, 1)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 0, ty.Size())
		for p.Remaining() > 0 {
			n := chunk
			if int64(n) > p.Remaining() {
				n = int(p.Remaining())
			}
			piece := buf.Alloc(n)
			m, err := p.Pack(piece)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, piece.Bytes()[:m]...)
		}
		if len(got) != oneShot.Len() {
			t.Fatalf("chunk=%d: got %d bytes, want %d", chunk, len(got), oneShot.Len())
		}
		for i := range got {
			if got[i] != oneShot.Bytes()[i] {
				t.Fatalf("chunk=%d: byte %d differs", chunk, i)
			}
		}
	}
}

func TestChunkedUnpackerEqualsOneShot(t *testing.T) {
	ty := mustType(Vector(64, 3, 7, Float64))
	src := buf.Alloc(int(ty.Extent()))
	src.FillPattern(23)
	packed := buf.Alloc(int(ty.Size()))
	if _, err := ty.Pack(src, 1, packed); err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 5, 64, 777} {
		dst := buf.Alloc(int(ty.Extent()))
		u, err := ty.NewUnpacker(dst, 1)
		if err != nil {
			t.Fatal(err)
		}
		off := 0
		for u.Remaining() > 0 {
			n := chunk
			if int64(n) > u.Remaining() {
				n = int(u.Remaining())
			}
			if _, err := u.Unpack(packed.Slice(off, n)); err != nil {
				t.Fatal(err)
			}
			off += n
		}
		ty.Layout(1).ForEach(func(s layout.Segment) bool {
			for o := s.Off; o < s.End(); o++ {
				if dst.Bytes()[o] != src.Bytes()[o] {
					t.Fatalf("chunk=%d: byte %d differs", chunk, o)
				}
			}
			return true
		})
	}
}

func TestVirtualPackCountsWithoutMoving(t *testing.T) {
	ty := mustType(Vector(1000, 1, 2, Float64))
	src := buf.Virtual(int(ty.Extent()))
	dst := buf.Alloc(int(ty.Size()))
	dst.FillPattern(9)
	n, err := ty.Pack(src, 1, dst)
	if err != nil {
		t.Fatal(err)
	}
	if n != ty.Size() {
		t.Fatalf("virtual pack = %d, want %d", n, ty.Size())
	}
	// Destination untouched: virtual source moves no bytes.
	if err := dst.VerifyPattern(9); err != nil {
		t.Fatalf("virtual pack wrote data: %v", err)
	}
}

func TestVirtualChunkedPackerProgress(t *testing.T) {
	ty := mustType(Vector(1_000_000, 1, 2, Float64))
	p, err := ty.NewPacker(buf.Virtual(int(ty.Extent())), 1)
	if err != nil {
		t.Fatal(err)
	}
	chunk := buf.Virtual(512 << 10)
	var total int64
	steps := 0
	for p.Remaining() > 0 {
		n, err := p.Pack(chunk)
		if err != nil {
			t.Fatal(err)
		}
		total += n
		steps++
	}
	if total != ty.Size() {
		t.Fatalf("total = %d, want %d", total, ty.Size())
	}
	wantSteps := int((ty.Size() + (512 << 10) - 1) / (512 << 10))
	if steps != wantSteps {
		t.Fatalf("steps = %d, want %d", steps, wantSteps)
	}
}

func TestPackFloat64Values(t *testing.T) {
	// Semantic check with real element values, not byte patterns:
	// every other double out of [0,1,2,...].
	const n = 32
	src := buf.Alloc(n * 8)
	for i := 0; i < n; i++ {
		elem.PutFloat64(src, i, float64(i))
	}
	ty := mustType(Vector(n/2, 1, 2, Float64))
	dst := buf.Alloc(n / 2 * 8)
	if _, err := ty.Pack(src, 1, dst); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n/2; i++ {
		if got := elem.Float64(dst, i); got != float64(2*i) {
			t.Fatalf("element %d = %v, want %v", i, got, float64(2*i))
		}
	}
}

// Property: pack∘unpack is the identity on the layout bytes for random
// vector geometries and counts.
func TestQuickPackUnpackIdentity(t *testing.T) {
	f := func(cnt, bl, extra, count uint8, seed byte) bool {
		c := int(cnt)%20 + 1
		b := int(bl)%4 + 1
		s := b + int(extra)%5
		k := int(count)%3 + 1
		ty, err := Vector(c, b, s, Float64)
		if err != nil {
			return false
		}
		if err := ty.Commit(); err != nil {
			return false
		}
		bufLen := int(int64(k-1)*ty.Extent() + ty.r.last())
		src := buf.Alloc(bufLen)
		src.FillPattern(seed)
		packed := buf.Alloc(int(ty.PackSize(k)))
		if _, err := ty.Pack(src, k, packed); err != nil {
			return false
		}
		back := buf.Alloc(bufLen)
		if _, err := ty.Unpack(packed, k, back); err != nil {
			return false
		}
		ok := true
		ty.Layout(k).ForEach(func(sg layout.Segment) bool {
			for off := sg.Off; off < sg.End(); off++ {
				if back.Bytes()[off] != src.Bytes()[off] {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: chunked packing with random chunk sizes equals one-shot
// packing, byte for byte.
func TestQuickChunkedPackEquivalence(t *testing.T) {
	f := func(geometrySeed int64, chunkSeed int64) bool {
		rng := rand.New(rand.NewSource(geometrySeed))
		c := rng.Intn(40) + 1
		b := rng.Intn(3) + 1
		s := b + rng.Intn(4)
		ty, err := Vector(c, b, s, Float64)
		if err != nil {
			return false
		}
		_ = ty.Commit()
		src := buf.Alloc(int(ty.Extent()))
		src.FillPattern(byte(geometrySeed))
		oneShot := buf.Alloc(int(ty.Size()))
		if _, err := ty.Pack(src, 1, oneShot); err != nil {
			return false
		}
		p, err := ty.NewPacker(src, 1)
		if err != nil {
			return false
		}
		crng := rand.New(rand.NewSource(chunkSeed))
		var got []byte
		for p.Remaining() > 0 {
			n := crng.Intn(17) + 1
			if int64(n) > p.Remaining() {
				n = int(p.Remaining())
			}
			piece := buf.Alloc(n)
			if _, err := p.Pack(piece); err != nil {
				return false
			}
			got = append(got, piece.Bytes()...)
		}
		if len(got) != oneShot.Len() {
			return false
		}
		for i := range got {
			if got[i] != oneShot.Bytes()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: size/extent laws. size(vector) = count*blocklen*base.size;
// extent(contig(k, T)) = k*extent(T) for dense repetition.
func TestQuickSizeExtentLaws(t *testing.T) {
	f := func(cnt, bl, extra, k uint8) bool {
		c := int(cnt)%30 + 1
		b := int(bl)%5 + 1
		s := b + int(extra)%6
		kk := int(k)%10 + 1
		v, err := Vector(c, b, s, Float64)
		if err != nil {
			return false
		}
		if v.Size() != int64(c*b)*8 {
			return false
		}
		ct, err := Contiguous(kk, Float64)
		if err != nil {
			return false
		}
		return ct.Extent() == int64(kk)*Float64.Extent() && ct.Size() == ct.Extent()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
