package figures

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/harness"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/plot"
	"repro/internal/stats"
)

// EagerStudy is E5 (§4.5): behaviour around the eager limit, and the
// effect of raising the limit beyond the maximum message size.
type EagerStudy struct {
	Profile *perfmodel.Profile
	// Default and Raised hold per-scheme time series with the
	// profile's eager limit and with the limit raised above the
	// largest message.
	Default []*stats.Series
	Raised  []*stats.Series
	Sizes   []int64
}

// BuildEagerStudy sweeps sizes bracketing the eager limit for the
// reference, vector-type and packing(v) schemes, then repeats with the
// limit raised over the maximum size.
func BuildEagerStudy(profileName string, opt harness.Options) (*EagerStudy, error) {
	prof, err := perfmodel.ByName(profileName)
	if err != nil {
		return nil, err
	}
	limit := prof.EagerLimit
	sizes := []int64{}
	for _, f := range []float64{0.25, 0.5, 0.8, 1.0, 1.2, 1.6, 2.0, 2.4, 4, 8, 64, 1024} {
		n := int64(f*float64(limit)) / 8 * 8
		if n >= 8 {
			sizes = append(sizes, n)
		}
	}
	st := &EagerStudy{Profile: prof, Sizes: sizes}
	schemes := []core.Scheme{core.Reference, core.VectorType, core.PackVector}
	for pass := 0; pass < 2; pass++ {
		o := opt
		if pass == 1 {
			o.EagerLimitOverride = sizes[len(sizes)-1] * 4
		}
		for _, s := range schemes {
			ms, err := harness.MeasureSweep(prof, s, harness.Workloads(sizes, o), o)
			if err != nil {
				return nil, err
			}
			series := &stats.Series{Label: s.String()}
			for _, m := range ms {
				// Per-byte time exposes the drop at the protocol
				// switch better than absolute time.
				series.Append(float64(m.Bytes), m.Time()/float64(m.Bytes)*1e9)
			}
			if pass == 0 {
				st.Default = append(st.Default, series)
			} else {
				st.Raised = append(st.Raised, series)
			}
		}
	}
	return st, nil
}

// Render prints the two passes side by side.
func (st *EagerStudy) Render(w io.Writer) error {
	fmt.Fprintf(w, "== E5 eager limit study — %s (limit %d bytes) ==\n\n", st.Profile.Name, st.Profile.EagerLimit)
	cfg := plot.Config{Title: "ns per byte, default eager limit", XLabel: "message bytes", YLabel: "ns/B", LogX: true, LogY: true}
	if err := plot.ASCII(w, cfg, st.Default); err != nil {
		return err
	}
	cfg.Title = "ns per byte, eager limit raised over max size"
	if err := plot.ASCII(w, cfg, st.Raised); err != nil {
		return err
	}
	return nil
}

// LargeUnchangedByRaisedLimit reports the relative change of the
// largest message's reference time when the eager limit is raised —
// the paper found "this did not appreciably change the results for
// large messages".
func (st *EagerStudy) LargeUnchangedByRaisedLimit() float64 {
	d := st.Default[0]
	r := st.Raised[0]
	if d.Len() == 0 || r.Len() == 0 {
		return 0
	}
	a := d.Y[d.Len()-1]
	b := r.Y[r.Len()-1]
	if a == 0 {
		return 0
	}
	diff := (b - a) / a
	if diff < 0 {
		diff = -diff
	}
	return diff
}

// CacheStudy is E6 (§4.6): the effect of not flushing caches between
// ping-pongs.
type CacheStudy struct {
	Profile *perfmodel.Profile
	Flushed []*stats.Series // time per scheme with inter-ping-pong flush
	Warm    []*stats.Series // without flushing
	Speedup *stats.Series   // flushed/warm time ratio for the copying scheme
}

// BuildCacheStudy measures intermediate sizes with and without the
// 50 M-array rewrite between ping-pongs.
func BuildCacheStudy(profileName string, opt harness.Options) (*CacheStudy, error) {
	prof, err := perfmodel.ByName(profileName)
	if err != nil {
		return nil, err
	}
	sizes := harness.LogSizes(10_000, 20_000_000, 2)
	st := &CacheStudy{Profile: prof}
	schemes := []core.Scheme{core.Copying, core.VectorType, core.PackVector}
	for pass := 0; pass < 2; pass++ {
		o := opt
		o.FlushCache = pass == 0
		for _, s := range schemes {
			ms, err := harness.MeasureSweep(prof, s, harness.Workloads(sizes, o), o)
			if err != nil {
				return nil, err
			}
			series := &stats.Series{Label: s.String()}
			for _, m := range ms {
				series.Append(float64(m.Bytes), m.Time())
			}
			if pass == 0 {
				st.Flushed = append(st.Flushed, series)
			} else {
				st.Warm = append(st.Warm, series)
			}
		}
	}
	st.Speedup = stats.Ratio("copying flush/warm", st.Flushed[0], st.Warm[0])
	return st, nil
}

// Render prints the warm-vs-flushed comparison.
func (st *CacheStudy) Render(w io.Writer) error {
	fmt.Fprintf(w, "== E6 cache flushing study — %s ==\n\n", st.Profile.Name)
	if err := plot.ASCII(w, plot.Config{Title: "time, caches flushed between ping-pongs", XLabel: "bytes", YLabel: "sec", LogX: true, LogY: true}, st.Flushed); err != nil {
		return err
	}
	if err := plot.ASCII(w, plot.Config{Title: "time, caches left warm", XLabel: "bytes", YLabel: "sec", LogX: true, LogY: true}, st.Warm); err != nil {
		return err
	}
	return plot.ASCII(w, plot.Config{Title: "copying speedup from warm caches (x)", XLabel: "bytes", YLabel: "x", LogX: true}, []*stats.Series{st.Speedup})
}

// SpacingStudy is the §4.7 stride-irregularity prediction (E7): less
// regular spacing hurts through reduced prefetch effectiveness.
type SpacingStudy struct {
	Profile *perfmodel.Profile
	Jitters []float64
	// Times per scheme: index matches Jitters.
	Times map[core.Scheme][]float64
}

// BuildSpacingStudy measures a fixed payload under increasing gap
// jitter for the copying and derived-type schemes.
func BuildSpacingStudy(profileName string, payloadBytes int64, opt harness.Options) (*SpacingStudy, error) {
	prof, err := perfmodel.ByName(profileName)
	if err != nil {
		return nil, err
	}
	st := &SpacingStudy{
		Profile: prof,
		Jitters: []float64{0, 0.25, 0.5, 0.75, 1.0},
		Times:   map[core.Scheme][]float64{},
	}
	schemes := []core.Scheme{core.Copying, core.VectorType}
	for _, s := range schemes {
		for _, j := range st.Jitters {
			w := core.ForBytes(payloadBytes)
			w.Stride = 8 // wider gaps leave room for element-aligned jitter
			w.Jitter = j
			w.Virtual = payloadBytes > opt.MaxRealBytes
			m, err := harness.Measure(prof, s, w, opt)
			if err != nil {
				return nil, err
			}
			st.Times[s] = append(st.Times[s], m.Time())
		}
	}
	return st, nil
}

// Render prints the jitter table.
func (st *SpacingStudy) Render(w io.Writer) error {
	fmt.Fprintf(w, "== E7 spacing irregularity study — %s ==\n", st.Profile.Name)
	series := []*stats.Series{}
	for _, s := range []core.Scheme{core.Copying, core.VectorType} {
		sr := &stats.Series{Label: s.String()}
		for i, j := range st.Jitters {
			sr.Append(j, st.Times[s][i])
		}
		series = append(series, sr)
	}
	return plot.Table(w, "jitter", series)
}

// BlockSizeStudy is the §4.7 block-size prediction (E8): larger blocks
// perform better through higher cache-line utilisation.
type BlockSizeStudy struct {
	Profile   *perfmodel.Profile
	BlockLens []int
	Times     map[core.Scheme][]float64
}

// BuildBlockSizeStudy measures a fixed payload at constant density 1/2
// with growing block length.
func BuildBlockSizeStudy(profileName string, payloadBytes int64, opt harness.Options) (*BlockSizeStudy, error) {
	prof, err := perfmodel.ByName(profileName)
	if err != nil {
		return nil, err
	}
	st := &BlockSizeStudy{
		Profile:   prof,
		BlockLens: []int{1, 2, 4, 8, 16, 32, 64},
		Times:     map[core.Scheme][]float64{},
	}
	elems := int(payloadBytes / core.ElemSize)
	schemes := []core.Scheme{core.Copying, core.VectorType}
	for _, s := range schemes {
		for _, bl := range st.BlockLens {
			w := core.Workload{
				Count:    elems / bl,
				BlockLen: bl,
				Stride:   2 * bl, // density stays 1/2
				Virtual:  payloadBytes > opt.MaxRealBytes,
			}
			m, err := harness.Measure(prof, s, w, opt)
			if err != nil {
				return nil, err
			}
			st.Times[s] = append(st.Times[s], m.Time())
		}
	}
	return st, nil
}

// Render prints the block-size table.
func (st *BlockSizeStudy) Render(w io.Writer) error {
	fmt.Fprintf(w, "== E8 block size study — %s ==\n", st.Profile.Name)
	series := []*stats.Series{}
	for _, s := range []core.Scheme{core.Copying, core.VectorType} {
		sr := &stats.Series{Label: s.String()}
		for i, bl := range st.BlockLens {
			sr.Append(float64(bl), st.Times[s][i])
		}
		series = append(series, sr)
	}
	return plot.Table(w, "blocklen", series)
}

// NodeScalingStudy is the §4.7 all-processes-per-node test (E9): with
// p pairs communicating simultaneously, per-pair performance must not
// degrade.
type NodeScalingStudy struct {
	Profile *perfmodel.Profile
	Pairs   []int
	Times   []float64 // pair-0 ping-pong time per configuration
	Bytes   int64
}

// BuildNodeScalingStudy runs 1…maxPairs concurrent ping-pong pairs on
// split communicators and reports pair 0's time.
func BuildNodeScalingStudy(profileName string, maxPairs int, payloadBytes int64, reps int) (*NodeScalingStudy, error) {
	prof, err := perfmodel.ByName(profileName)
	if err != nil {
		return nil, err
	}
	st := &NodeScalingStudy{Profile: prof, Bytes: payloadBytes}
	for pairs := 1; pairs <= maxPairs; pairs++ {
		var t0 float64
		w := core.ForBytes(payloadBytes)
		w.Virtual = true
		err := mpi.Run(2*pairs, mpi.Options{Profile: prof, WallLimit: 2 * time.Minute}, func(c *mpi.Comm) error {
			pair, err := c.Split(c.Rank()/2, c.Rank()%2)
			if err != nil {
				return err
			}
			runner, err := core.NewRunner(core.VectorType)
			if err != nil {
				return err
			}
			if err := runner.Setup(pair, w, 1-pair.Rank()); err != nil {
				return err
			}
			pair.Barrier()
			start := pair.Wtime()
			for rep := 0; rep < reps; rep++ {
				if pair.Rank() == 0 {
					if err := runner.Ping(); err != nil {
						return err
					}
				} else if err := runner.Pong(); err != nil {
					return err
				}
			}
			if c.Rank() == 0 {
				t0 = (pair.Wtime() - start) / float64(reps)
			}
			return runner.Teardown()
		})
		if err != nil {
			return nil, err
		}
		st.Pairs = append(st.Pairs, pairs)
		st.Times = append(st.Times, t0)
	}
	return st, nil
}

// Render prints the scaling table.
func (st *NodeScalingStudy) Render(w io.Writer) error {
	fmt.Fprintf(w, "== E9 node scaling study — %s (%d bytes per pair) ==\n", st.Profile.Name, st.Bytes)
	sr := &stats.Series{Label: "pair-0 ping-pong time"}
	for i, p := range st.Pairs {
		sr.Append(float64(p), st.Times[i])
	}
	return plot.Table(w, "pairs", []*stats.Series{sr})
}

// MaxDegradation returns the worst-case relative slowdown of pair 0
// as pairs are added; the paper reports "no performance degradation".
func (st *NodeScalingStudy) MaxDegradation() float64 {
	if len(st.Times) == 0 {
		return 0
	}
	base := st.Times[0]
	worst := 0.0
	for _, t := range st.Times[1:] {
		if d := (t - base) / base; d > worst {
			worst = d
		}
	}
	return worst
}

// CostModelCheck is E10: the §2 cost-model factors at a large size.
type CostModelCheck struct {
	Profile          *perfmodel.Profile
	Bytes            int64
	CopyingSlowdown  float64 // expected ≈3 (§2.2)
	PackVsCopy       float64 // packing(v)/copying time, expected ≈1 (§4.3)
	VectorDegraded   float64 // vector/copying at 10⁹, expected >1 (§4.1)
	BufferedPenalty  float64 // buffered/copying, expected >1 (§4.2)
	PackElementRatio float64 // packing(e)/copying, expected ≫1 (§2.6)
}

// BuildCostModelCheck measures the factor relationships the paper's
// cost model predicts.
func BuildCostModelCheck(profileName string, n int64, opt harness.Options) (*CostModelCheck, error) {
	prof, err := perfmodel.ByName(profileName)
	if err != nil {
		return nil, err
	}
	times := map[core.Scheme]float64{}
	for _, s := range []core.Scheme{core.Reference, core.Copying, core.VectorType, core.Buffered, core.PackElement, core.PackVector} {
		ws := harness.Workloads([]int64{n}, opt)
		ms, err := harness.MeasureSweep(prof, s, ws, opt)
		if err != nil {
			return nil, err
		}
		times[s] = ms[0].Time()
	}
	return &CostModelCheck{
		Profile:          prof,
		Bytes:            n,
		CopyingSlowdown:  times[core.Copying] / times[core.Reference],
		PackVsCopy:       times[core.PackVector] / times[core.Copying],
		VectorDegraded:   times[core.VectorType] / times[core.Copying],
		BufferedPenalty:  times[core.Buffered] / times[core.Copying],
		PackElementRatio: times[core.PackElement] / times[core.Copying],
	}, nil
}

// Render prints the factor table with the paper's expectations.
func (ck *CostModelCheck) Render(w io.Writer) error {
	fmt.Fprintf(w, "== E10 cost-model factors — %s at %d bytes ==\n", ck.Profile.Name, ck.Bytes)
	fmt.Fprintf(w, "  copying/reference   = %5.2f   (paper §2.2: ≈3)\n", ck.CopyingSlowdown)
	fmt.Fprintf(w, "  packing(v)/copying  = %5.2f   (paper §4.3: ≈1)\n", ck.PackVsCopy)
	fmt.Fprintf(w, "  vector/copying      = %5.2f   (paper §4.1: >1 at large sizes)\n", ck.VectorDegraded)
	fmt.Fprintf(w, "  buffered/copying    = %5.2f   (paper §4.2: >1)\n", ck.BufferedPenalty)
	fmt.Fprintf(w, "  packing(e)/copying  = %5.2f   (paper §2.6: ≫1)\n", ck.PackElementRatio)
	return nil
}

// PackPlanStudy is E12: compiled-vs-interpreted pack bandwidth — the
// packing(v) column (generic interpretation at pack time) against the
// packing(c) column (compiled pack plan), with the plan-engine
// counters of every compiled cell.
type PackPlanStudy struct {
	Profile *perfmodel.Profile
	Sizes   []int64

	// Interpreted and Compiled are the effective bandwidths (GB/s) of
	// packing(v) and packing(c); Speedup is their time ratio
	// (interpreted / compiled, >1 when compiling wins).
	Interpreted *stats.Series
	Compiled    *stats.Series
	Speedup     *stats.Series

	// PlanStats holds the per-size plan-engine counter deltas of the
	// compiled sweep: which kernels executed and whether the parallel
	// splitter engaged.
	PlanStats []datatype.PlanStats
}

// BuildPackPlanStudy sweeps the canonical workload over sizes for the
// interpreted and compiled pack schemes.
func BuildPackPlanStudy(profileName string, sizes []int64, opt harness.Options) (*PackPlanStudy, error) {
	prof, err := perfmodel.ByName(profileName)
	if err != nil {
		return nil, err
	}
	st := &PackPlanStudy{
		Profile:     prof,
		Sizes:       sizes,
		Interpreted: &stats.Series{Label: core.PackVector.String()},
		Compiled:    &stats.Series{Label: core.PackCompiled.String()},
	}
	workloads := harness.Workloads(sizes, opt)
	interp, err := harness.MeasureSweep(prof, core.PackVector, workloads, opt)
	if err != nil {
		return nil, err
	}
	compiled, err := harness.MeasureSweep(prof, core.PackCompiled, workloads, opt)
	if err != nil {
		return nil, err
	}
	for i := range interp {
		st.Interpreted.Append(float64(interp[i].Bytes), interp[i].Bandwidth()/1e9)
		st.Compiled.Append(float64(compiled[i].Bytes), compiled[i].Bandwidth()/1e9)
		st.PlanStats = append(st.PlanStats, compiled[i].PlanStats)
	}
	// Bandwidth ratio compiled/interpreted: >1 means compiling wins.
	st.Speedup = stats.Ratio("speedup", st.Compiled, st.Interpreted)
	return st, nil
}

// Render prints the two bandwidth curves, the speedup, and the kernel
// attribution of the compiled sweep.
func (st *PackPlanStudy) Render(w io.Writer) error {
	fmt.Fprintf(w, "== E12 pack-plan compiler study — %s ==\n\n", st.Profile.Name)
	cfg := plot.Config{Title: "pack bandwidth, interpreted vs compiled (GB/s)", XLabel: "message bytes", YLabel: "GB/s", LogX: true}
	if err := plot.ASCII(w, cfg, []*stats.Series{st.Interpreted, st.Compiled}); err != nil {
		return err
	}
	if err := plot.ASCII(w, plot.Config{Title: "compiled speedup (x)", XLabel: "message bytes", YLabel: "x", LogX: true}, []*stats.Series{st.Speedup}); err != nil {
		return err
	}
	fmt.Fprintln(w, "kernel attribution per size (compiled sweep):")
	for i, ps := range st.PlanStats {
		fmt.Fprintf(w, "  %12d B  %v\n", st.Sizes[i], ps)
	}
	return nil
}

// CompiledSpeedupAt returns the compiled/interpreted speedup at the
// sweep size closest to n bytes.
func (st *PackPlanStudy) CompiledSpeedupAt(n int64) float64 {
	best, bestDist := 0.0, int64(-1)
	for i, x := range st.Speedup.X {
		d := int64(x) - n
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist {
			bestDist, best = d, st.Speedup.Y[i]
		}
	}
	return best
}
