package figures

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/perfmodel"
)

func TestPipeliningStudyRecoversReference(t *testing.T) {
	sizes := []int64{1_000_000, 100_000_000, 1_000_000_000}
	st, err := BuildPipeliningStudy("skx-impi", sizes, shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	// §2.3 / ref [2]: with NIC pipelining a derived-type send would
	// perform "similarly to the reference case" — slowdown must
	// approach 1–2 at large sizes, far below the measured ≈6.
	last := len(sizes) - 1
	base := st.Baseline.Y[last]
	piped := st.Pipelined.Y[last]
	if base < 4 {
		t.Fatalf("baseline vector-type slowdown at 1 GB = %.2f, expected the degraded ≈6", base)
	}
	if piped > 2.2 {
		t.Fatalf("pipelined vector-type slowdown at 1 GB = %.2f, expected ≈1–2 (ref [2])", piped)
	}
	if g := st.LargeGain(); g < 2 {
		t.Fatalf("pipelining gain at 1 GB = %.2fx, expected ≥2x", g)
	}
}

func TestPipeliningDoesNotChangeBaselineProfiles(t *testing.T) {
	// All measured installations must keep pipelining off (§2.3: "in
	// practice we don't see this performance").
	for _, name := range []string{"skx-impi", "skx-mvapich", "ls5-cray", "knl-impi"} {
		p, err := perfmodel.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.NICPipelining {
			t.Errorf("%s ships with pipelining enabled", name)
		}
		q := p.WithPipelining()
		if !q.NICPipelining || p.NICPipelining {
			t.Errorf("WithPipelining mutated the original or failed to set the copy")
		}
		if !strings.Contains(q.Name, name) {
			t.Errorf("derived profile name %q should reference %q", q.Name, name)
		}
	}
}

func TestPipeliningStudyRender(t *testing.T) {
	st, err := BuildPipeliningStudy("skx-impi", []int64{1_000_000, 1_000_000_000}, shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := st.Render(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E11") {
		t.Error("render missing study id")
	}
}
