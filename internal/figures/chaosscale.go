package figures

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/memsim"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/simnet"
)

// ChaosScaleStudy is E21: chaos at scale. The E20 concurrent job mix —
// several independent ring communicators over one fabric, every rank
// holding multiple typed transfers in flight — runs with the fault
// injector armed, swept across rank count × fault rate. Every cell
// reports the goodput degradation against its clean baseline, the p99
// tail inflation, and the fabric's recovery attribution: retries,
// integrity rejections, and the selective-retransmission split
// (chunks and bytes replayed instead of whole transfers, duplicates
// suppressed).
//
// Every faulted cell is measured twice: once with the selective
// chunk protocol live (damage repaired chunk-by-chunk) and once with
// mpi.RetryPolicy.WholeReplay set, which reverts recovery to PR 7's
// whole-transfer replay while keeping chunking, checksumming, fault
// plan and every other cost identical. Both arms normalise against
// the shared clean baseline, so the two goodput-retention ratios
// compare the recovery protocols and nothing else. The selective
// curve sitting strictly above the whole-replay one is the study's
// point. A model panel prices the same per-transfer comparison
// analytically alongside.
type ChaosScaleStudy struct {
	Profile *perfmodel.Profile
	Bytes   int64
	Rates   []float64

	Cells []ChaosScaleCell
	Model []ChaosScaleModelRow
}

// ChaosScaleCell is one (ranks × rate) grid point. Faulted cells
// average several independently seeded trials: the mix's elapsed time
// is a max over ranks, an extreme-value statistic a single unlucky
// fault draw can swing, and the trial mean is what makes the
// selective-vs-whole-replay comparison stable.
type ChaosScaleCell struct {
	Ranks, Jobs int
	Rate        float64
	Delivered   bool
	Trials      int

	// GoodputGBs is the mean aggregate payload rate over the cell's
	// trials; GoodputRatio divides it by the clean (rate 0) baseline
	// at the same rank count, and TailInflation is the mean-p99 ratio
	// the same way. Ratios are 1 in the clean row, 0 when every trial
	// exhausted its retry budget.
	GoodputGBs    float64
	GoodputRatio  float64
	TailInflation float64
	// WholeReplayRatio is the measured counterfactual: the same mix
	// and fault plans with selective retransmission disabled
	// (mpi.RetryPolicy.WholeReplay), so every repair replays the whole
	// transfer. 0 when that arm did not deliver.
	WholeReplayRatio float64

	// Recovery sums the selective arm's fault and repair attribution
	// over the cell's trials.
	Recovery harness.RecoveryStats
}

// ChaosScaleModelRow is the reliability model's per-transfer
// prediction at one rate: the goodput retention under selective chunk
// recovery and under the whole-transfer-replay baseline, with the
// delivery probability of the selective protocol.
type ChaosScaleModelRow struct {
	Rate             float64
	SelectiveRatio   float64
	WholeReplayRatio float64
	DeliveryProb     float64
	Recommended      string
}

// DefaultChaosScaleRanks is the study's rank axis. Kept modest: every
// cell runs ranks×InFlight concurrent recoverable transfers, and the
// rate axis multiplies the grid.
func DefaultChaosScaleRanks() []int { return []int{32, 64, 128} }

// BuildChaosScaleStudy measures the study for one profile. ranks
// sweeps the world size (nil selects DefaultChaosScaleRanks), rates
// the injected fault rate (nil selects 0, 0.02, 0.05; the clean 0 row
// is always included as the ratio baseline).
func BuildChaosScaleStudy(profileName string, ranks []int, rates []float64) (*ChaosScaleStudy, error) {
	prof, err := perfmodel.ByName(profileName)
	if err != nil {
		return nil, err
	}
	if len(ranks) == 0 {
		ranks = DefaultChaosScaleRanks()
	}
	if len(rates) == 0 {
		rates = []float64{0, 0.02, 0.05}
	}
	if rates[0] != 0 {
		rates = append([]float64{0}, rates...)
	}
	st := &ChaosScaleStudy{Profile: prof, Bytes: 1 << 20, Rates: rates}

	// Many chunks per transfer give the selective protocol something
	// to be selective about: 64 KiB over the 1 MiB payload spans 16,
	// so one damaged chunk replays 1/16th of the transfer where the
	// whole-replay arm resends everything.
	selProf := *prof
	if chunk := st.Bytes / 16; selProf.Mem.InternalChunk <= 0 || selProf.Mem.InternalChunk > chunk {
		selProf.Mem.InternalChunk = chunk
	}

	const trials = 3
	for _, r := range ranks {
		jobs := 2
		if r >= 128 {
			jobs = 4
		}
		run := func(plan *simnet.FaultPlan, wholeReplay bool) (harness.JobMixResult, error) {
			return harness.RunJobMix(harness.JobMix{
				Ranks: r, Jobs: jobs, InFlight: 2, Rounds: 4,
				Bytes: st.Bytes, Profile: &selProf,
				WallLimit: 4 * time.Minute,
				Faults:    plan,
				Retry:     mpi.RetryPolicy{WholeReplay: wholeReplay},
			})
		}
		// One clean baseline serves both arms: WholeReplay only changes
		// behaviour once faults damage an attempt.
		clean, err := run(nil, false)
		if err != nil {
			// A failed clean baseline is a study failure, not a data
			// point.
			return nil, fmt.Errorf("chaos-scale clean cell %d ranks: %w", r, err)
		}
		for i, rate := range rates {
			cell := ChaosScaleCell{Ranks: r, Jobs: jobs, Rate: rate}
			if rate == 0 {
				cell.Delivered = true
				cell.Trials = 1
				cell.GoodputGBs = clean.AggregateGBs
				cell.GoodputRatio = 1
				cell.TailInflation = 1
				cell.WholeReplayRatio = 1
				st.Cells = append(st.Cells, cell)
				continue
			}
			var selAgg, wrAgg, tail float64
			wrTrials := 0
			for tr := 0; tr < trials; tr++ {
				seed := uint64(7919 + 1009*i + 613*tr + r)
				if res, err := run(simnet.UniformFaults(seed, rate), false); err == nil {
					cell.Trials++
					selAgg += res.AggregateGBs
					tail += res.P99
					cell.Recovery.Merge(res.Recovery)
				}
				if wr, err := run(simnet.UniformFaults(seed, rate), true); err == nil {
					wrTrials++
					wrAgg += wr.AggregateGBs
				}
			}
			if cell.Trials > 0 {
				cell.Delivered = true
				cell.GoodputGBs = selAgg / float64(cell.Trials)
				if clean.AggregateGBs > 0 {
					cell.GoodputRatio = cell.GoodputGBs / clean.AggregateGBs
				}
				if clean.P99 > 0 {
					cell.TailInflation = tail / float64(cell.Trials) / clean.P99
				}
			}
			if wrTrials > 0 && clean.AggregateGBs > 0 {
				cell.WholeReplayRatio = wrAgg / float64(wrTrials) / clean.AggregateGBs
			}
			st.Cells = append(st.Cells, cell)
		}
	}

	rp := mpi.DefaultRetryPolicy()
	for _, rate := range rates {
		fp := memsim.FaultProfile{
			// UniformFaults spreads rate over six kinds; the resend
			// class (drop, corrupt, truncate) is half of it.
			LegLossRate: rate / 2,
			MaxRetries:  rp.MaxRetries,
			BaseBackoff: float64(rp.BaseBackoff) / 1e9,
			MaxBackoff:  float64(rp.MaxBackoff) / 1e9,
		}
		m := core.PricePackingUnderFaults(st.Bytes, &selProf, fp)
		row := ChaosScaleModelRow{Rate: rate, SelectiveRatio: 1, WholeReplayRatio: 1, DeliveryProb: m.DeliveryProb}
		if fp.Enabled() && m.FusedSend > 0 {
			// The mix's transfers ride the fused sendv rendezvous; the
			// goodput retention is clean-over-lossy expected time.
			if m.FaultyFusedSend > 0 {
				row.SelectiveRatio = m.FusedSend / m.FaultyFusedSend
			}
			wr := fp.InflateTransfer(m.FusedSend, m.FusedSend, m.Legs)
			if wr > 0 {
				row.WholeReplayRatio = m.FusedSend / wr
			}
		}
		row.Recommended = core.RecommendUnderFaults(st.Bytes, false, core.GoalFastest, &selProf, fp).Scheme.String()
		st.Model = append(st.Model, row)
	}
	return st, nil
}

// GoodputRatioAt returns the measured goodput retention of the cell
// closest to (ranks, rate); 0 when no such cell delivered.
func (st *ChaosScaleStudy) GoodputRatioAt(ranks int, rate float64) float64 {
	for _, c := range st.Cells {
		if c.Ranks == ranks && c.Rate == rate && c.Delivered {
			return c.GoodputRatio
		}
	}
	return 0
}

// WholeReplayRatioAt returns the measured whole-replay arm's goodput
// retention at (ranks, rate); 0 when no such cell delivered.
func (st *ChaosScaleStudy) WholeReplayRatioAt(ranks int, rate float64) float64 {
	for _, c := range st.Cells {
		if c.Ranks == ranks && c.Rate == rate && c.Delivered {
			return c.WholeReplayRatio
		}
	}
	return 0
}

// ModelRowAt returns the model row for rate (zero row when absent).
func (st *ChaosScaleStudy) ModelRowAt(rate float64) ChaosScaleModelRow {
	for _, m := range st.Model {
		if m.Rate == rate {
			return m
		}
	}
	return ChaosScaleModelRow{}
}

// Render prints the study: the per-cell degradation and recovery
// attribution, then the model panel.
func (st *ChaosScaleStudy) Render(w io.Writer) error {
	fmt.Fprintf(w, "== E21 chaos-at-scale study — %s (%d-byte virtual typed transfers, concurrent job mix, virtual clock) ==\n\n",
		st.Profile.Name, st.Bytes)
	fmt.Fprintln(w, "per-cell degradation against the clean baseline (recovery counters summed across ranks):")
	lastRanks := -1
	for _, c := range st.Cells {
		if c.Ranks != lastRanks {
			fmt.Fprintf(w, "  %4d ranks × %d jobs\n", c.Ranks, c.Jobs)
			lastRanks = c.Ranks
		}
		if !c.Delivered {
			fmt.Fprintf(w, "    rate %5.2f  RETRY BUDGET EXHAUSTED\n", c.Rate)
			continue
		}
		fmt.Fprintf(w, "    rate %5.2f  goodput %8.2f GB/s (%5.1f%% of clean, whole-replay arm %5.1f%%)  p99 ×%5.2f  faults %5d  retries %4d  rejects %4d  chunk retx %4d (%d B)  dup suppressed %d\n",
			c.Rate, c.GoodputGBs, 100*c.GoodputRatio, 100*c.WholeReplayRatio, c.TailInflation,
			c.Recovery.Drops+c.Recovery.Corruptions+c.Recovery.Truncations,
			c.Recovery.Retries, c.Recovery.IntegrityRejects,
			c.Recovery.ChunkRetransmits, c.Recovery.RetransmitBytes, c.Recovery.DupChunksSuppressed)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "reliability model per transfer (selective chunk recovery vs the whole-transfer-replay baseline):")
	for _, m := range st.Model {
		fmt.Fprintf(w, "  rate %5.2f  selective retention %5.1f%%  whole-replay retention %5.1f%%  delivery prob %.6f  fastest under faults: %s\n",
			m.Rate, 100*m.SelectiveRatio, 100*m.WholeReplayRatio, m.DeliveryProb, m.Recommended)
	}
	fmt.Fprintln(w)
	return nil
}
