package figures

import (
	"fmt"
	"io"

	"repro/internal/buf"
	"repro/internal/datatype"
	"repro/internal/harness"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
)

// HaloStudy is E15: a 2-D/3-D halo exchange over subarray face types,
// comparing the typed collectives (AllgatherType over face layouts —
// fused self-leg, fused sendv remote legs past the eager limit)
// against the manual-pack pipeline the paper's schemes hand-roll (pack
// the face, run the contiguous collective over packed slots, unpack
// every slot into the halo layout). Each cell reports both strategies'
// modeled bandwidth and the PlanStats delta of the typed rounds, whose
// fused-vs-staged attribution shows which engine moved the faces.
//
// The grids are the classic stencil shapes: 4 ranks as a 2×2 tile grid
// exchanging column faces (strided, the paper's canonical layout
// family) and row faces (contiguous), and 8 ranks as a 2×2×2 brick
// grid exchanging the three plane orientations (contiguous,
// row-blocked and fully strided). Face slots land via
// extent-resized subarray types, the TEMPI-style trick that makes
// Allgather slot placement follow the halo geometry.
type HaloStudy struct {
	Profile *perfmodel.Profile
	Rounds  int
	Panels  []HaloPanel
}

// HaloPanel is one face orientation's sweep over tile sizes.
type HaloPanel struct {
	Name  string
	Dim   int
	Cells []HaloCell
}

// HaloCell is one (orientation, tile size) measurement.
type HaloCell struct {
	TileN     int
	FaceBytes int64
	// Virtual marks cells whose tiles exceeded MaxRealBytes and ran
	// with length-only buffers (costs modeled, no bytes moved).
	Virtual bool
	// TypedGBs and ManualGBs are the modeled exchange bandwidths of
	// the typed collective and the manual pack pipeline.
	TypedGBs, ManualGBs float64
	// Stats is the plan-counter delta over the typed rounds: fused
	// ops/bytes are the one-pass legs (self-leg always, remote legs
	// past the eager limit), staged ops/bytes the eager fallbacks.
	Stats datatype.PlanStats
}

// Speedup returns typed/manual bandwidth for the cell.
func (c HaloCell) Speedup() float64 {
	if c.ManualGBs <= 0 {
		return 0
	}
	return c.TypedGBs / c.ManualGBs
}

// haloGeometry describes one exchange orientation: the process grid,
// the sub-communicator split for the exchange axis, and the face and
// halo-slot types for a tile of N.
type haloGeometry struct {
	name  string
	dim   int
	ranks int
	color func(rank int) int
	key   func(rank int) int
	// build returns the committed boundary-face type over the tile,
	// the committed (extent-resized) halo-slot type over the slab, and
	// the slab size in bytes, for an N-point tile edge.
	build func(n int) (face, slot *datatype.Type, slabBytes int64, err error)
}

// committed commits every type or returns the first error.
func committed(tys ...*datatype.Type) error {
	for _, ty := range tys {
		if err := ty.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// resizedSlot builds the halo-slot type: a subarray face of the slab
// whose extent is resized to the slot pitch, so Allgather slot r lands
// at the r-th halo position.
func resizedSlot(sizes, subsizes, starts []int, pitch int64) (*datatype.Type, error) {
	sub, err := datatype.Subarray(sizes, subsizes, starts, datatype.OrderC, datatype.Float64)
	if err != nil {
		return nil, err
	}
	return datatype.Resized(sub, 0, pitch)
}

var haloGeometries = []haloGeometry{
	{
		name: "2d-x column (strided)", dim: 2, ranks: 4,
		color: func(r int) int { return r >> 1 }, // grid row
		key:   func(r int) int { return r & 1 },  // grid column
		build: func(n int) (*datatype.Type, *datatype.Type, int64, error) {
			face, err := datatype.Subarray([]int{n, n}, []int{n, 1}, []int{0, n - 1}, datatype.OrderC, datatype.Float64)
			if err != nil {
				return nil, nil, 0, err
			}
			slot, err := resizedSlot([]int{n, 2}, []int{n, 1}, []int{0, 0}, 8)
			if err != nil {
				return nil, nil, 0, err
			}
			return face, slot, int64(n) * 2 * 8, committed(face, slot)
		},
	},
	{
		name: "2d-y row (contig)", dim: 2, ranks: 4,
		color: func(r int) int { return r & 1 },
		key:   func(r int) int { return r >> 1 },
		build: func(n int) (*datatype.Type, *datatype.Type, int64, error) {
			face, err := datatype.Subarray([]int{n, n}, []int{1, n}, []int{n - 1, 0}, datatype.OrderC, datatype.Float64)
			if err != nil {
				return nil, nil, 0, err
			}
			slot, err := datatype.Contiguous(n, datatype.Float64)
			if err != nil {
				return nil, nil, 0, err
			}
			return face, slot, int64(n) * 2 * 8, committed(face, slot)
		},
	},
	{
		name: "3d-z plane (contig)", dim: 3, ranks: 8,
		color: func(r int) int { return r & 3 },
		key:   func(r int) int { return r >> 2 },
		build: func(n int) (*datatype.Type, *datatype.Type, int64, error) {
			face, err := datatype.Subarray([]int{n, n, n}, []int{1, n, n}, []int{n - 1, 0, 0}, datatype.OrderC, datatype.Float64)
			if err != nil {
				return nil, nil, 0, err
			}
			slot, err := datatype.Contiguous(n*n, datatype.Float64)
			if err != nil {
				return nil, nil, 0, err
			}
			return face, slot, int64(n) * int64(n) * 2 * 8, committed(face, slot)
		},
	},
	{
		name: "3d-y plane (row blocks)", dim: 3, ranks: 8,
		color: func(r int) int { return (r>>2)*2 + (r & 1) },
		key:   func(r int) int { return (r >> 1) & 1 },
		build: func(n int) (*datatype.Type, *datatype.Type, int64, error) {
			face, err := datatype.Subarray([]int{n, n, n}, []int{n, 1, n}, []int{0, n - 1, 0}, datatype.OrderC, datatype.Float64)
			if err != nil {
				return nil, nil, 0, err
			}
			slot, err := resizedSlot([]int{n, 2, n}, []int{n, 1, n}, []int{0, 0, 0}, int64(n)*8)
			if err != nil {
				return nil, nil, 0, err
			}
			return face, slot, int64(n) * int64(n) * 2 * 8, committed(face, slot)
		},
	},
	{
		name: "3d-x plane (strided)", dim: 3, ranks: 8,
		color: func(r int) int { return r >> 1 },
		key:   func(r int) int { return r & 1 },
		build: func(n int) (*datatype.Type, *datatype.Type, int64, error) {
			face, err := datatype.Subarray([]int{n, n, n}, []int{n, n, 1}, []int{0, 0, n - 1}, datatype.OrderC, datatype.Float64)
			if err != nil {
				return nil, nil, 0, err
			}
			slot, err := resizedSlot([]int{n, n, 2}, []int{n, n, 1}, []int{0, 0, 0}, 8)
			if err != nil {
				return nil, nil, 0, err
			}
			return face, slot, int64(n) * int64(n) * 2 * 8, committed(face, slot)
		},
	},
}

// haloTiles lists the tile edge sizes per dimensionality: an
// eager-sized face, an intermediate one, and a rendezvous-sized face
// whose remote legs ride the fused sendv path (its tile exceeds
// MaxRealBytes and runs virtual).
var haloTiles = map[int][]int{
	2: {256, 1024, 16384},
	3: {16, 64, 256},
}

// BuildHaloStudy measures every halo geometry and tile size on the
// named profile. opt.Reps is the exchange-round count per cell;
// opt.MaxRealBytes bounds materialised tiles (larger cells run
// virtual, costs modeled on the virtual clock either way).
func BuildHaloStudy(profileName string, opt harness.Options) (*HaloStudy, error) {
	prof, err := perfmodel.ByName(profileName)
	if err != nil {
		return nil, err
	}
	rounds := opt.Reps
	if rounds == 0 {
		rounds = 6
	}
	maxReal := opt.MaxRealBytes
	if maxReal == 0 {
		maxReal = 16 << 20
	}
	st := &HaloStudy{Profile: prof, Rounds: rounds}
	for _, g := range haloGeometries {
		panel := HaloPanel{Name: g.name, Dim: g.dim}
		for _, n := range haloTiles[g.dim] {
			cell, err := measureHaloCell(prof, g, n, rounds, maxReal)
			if err != nil {
				return nil, fmt.Errorf("figures: halo %s N=%d: %w", g.name, n, err)
			}
			panel.Cells = append(panel.Cells, cell)
		}
		st.Panels = append(st.Panels, panel)
	}
	return st, nil
}

// measureHaloCell runs one (geometry, tile) cell: the typed
// AllgatherType exchange and the manual pack → contiguous Allgather →
// unpack pipeline, both over the same face and slot types.
func measureHaloCell(prof *perfmodel.Profile, g haloGeometry, n, rounds int, maxReal int64) (HaloCell, error) {
	var tileBytes int64 = int64(n) * int64(n) * 8
	if g.dim == 3 {
		tileBytes *= int64(n)
	}
	virtual := tileBytes > maxReal
	var typedSec, manualSec float64
	var stats datatype.PlanStats
	var faceBytes int64
	err := mpi.Run(g.ranks, mpi.Options{Profile: prof}, func(c *mpi.Comm) error {
		grp, err := c.Split(g.color(c.Rank()), g.key(c.Rank()))
		if err != nil {
			return err
		}
		face, slot, slabBytes, err := g.build(n)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			faceBytes = face.Size()
		}
		alloc := func(bytes int64) buf.Block {
			if virtual {
				return buf.Virtual(int(bytes))
			}
			b := buf.Alloc(int(bytes))
			return b
		}
		tile := alloc(tileBytes)
		tile.FillPattern(byte(0x40 + c.Rank()))
		slab := alloc(slabBytes)

		// Typed leg: the layout-aware collective straight between the
		// tile's face and the slab's halo slots.
		c.Barrier()
		before := datatype.PlanStatsSnapshot()
		c.Barrier() // no rank starts before every rank's snapshot
		t0 := c.Wtime()
		for r := 0; r < rounds; r++ {
			if err := grp.AllgatherType(tile, 1, face, slab, 1, slot); err != nil {
				return err
			}
		}
		c.Barrier()
		if c.Rank() == 0 {
			typedSec = c.Wtime() - t0
			stats = datatype.PlanStatsSnapshot().Sub(before)
		}
		c.Barrier()

		// Manual leg: pack the face, contiguous Allgather over packed
		// slots, unpack every slot into the same halo layout.
		scratch := alloc(face.Size())
		packedSlab := alloc(face.Size() * int64(grp.Size()))
		c.Barrier()
		t0 = c.Wtime()
		for r := 0; r < rounds; r++ {
			var pos int64
			if err := c.Pack(tile, 1, face, scratch, &pos); err != nil {
				return err
			}
			if err := grp.Allgather(scratch, packedSlab); err != nil {
				return err
			}
			for s := 0; s < grp.Size(); s++ {
				view := slab.Slice(int(int64(s)*slot.Extent()), slab.Len()-int(int64(s)*slot.Extent()))
				p := int64(s) * face.Size()
				if err := c.Unpack(packedSlab, &p, view, 1, slot); err != nil {
					return err
				}
			}
		}
		c.Barrier()
		if c.Rank() == 0 {
			manualSec = c.Wtime() - t0
		}
		return nil
	})
	if err != nil {
		return HaloCell{}, err
	}
	moved := float64(faceBytes) * 2 * float64(rounds) // both halo slots, per round
	bw := func(secs float64) float64 {
		if secs <= 0 {
			return 0
		}
		return moved / secs / 1e9
	}
	return HaloCell{
		TileN:     n,
		FaceBytes: faceBytes,
		Virtual:   virtual,
		TypedGBs:  bw(typedSec),
		ManualGBs: bw(manualSec),
		Stats:     stats,
	}, nil
}

// Render prints the study as one table per orientation with the typed
// rounds' fused-vs-staged attribution.
func (st *HaloStudy) Render(w io.Writer) error {
	fmt.Fprintf(w, "== E15 halo-exchange study — %s (%d rounds, virtual time) ==\n\n", st.Profile.Name, st.Rounds)
	for _, p := range st.Panels {
		fmt.Fprintf(w, "%dD %s: typed collective vs manual pack+collective\n", p.Dim, p.Name)
		for _, c := range p.Cells {
			mark := ""
			if c.Virtual {
				mark = " (virtual)"
			}
			fmt.Fprintf(w, "  N=%-6d face %8d B  typed %7.3f GB/s  manual %7.3f GB/s  typed/manual %.2fx%s\n",
				c.TileN, c.FaceBytes, c.TypedGBs, c.ManualGBs, c.Speedup(), mark)
			fmt.Fprintf(w, "           typed rounds: %v\n", c.Stats)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// TypedSpeedupAt returns typed/manual bandwidth for the named panel at
// the largest measured tile (0 when the panel is unknown).
func (st *HaloStudy) TypedSpeedupAt(panelName string) float64 {
	for _, p := range st.Panels {
		if p.Name != panelName || len(p.Cells) == 0 {
			continue
		}
		return p.Cells[len(p.Cells)-1].Speedup()
	}
	return 0
}
