package figures

import (
	"fmt"
	"io"
	"time"

	"repro/internal/buf"
	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/memsim"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/plot"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// ChaosStudy is E18: the fault-recovery study. The same typed payload
// moves between two ranks under the three rendezvous engines — the
// serial chunk loop (SendType), the pipelined slot ring (SendpType)
// and the fused zero-copy pass (SendvType) — while the fabric injects
// a swept rate of uniform faults (drops, corruption, truncation,
// duplication, reordering, delays) and the checksum/ACK/retry
// machinery recovers. Every cell reports goodput, the p99 of the
// per-message completion times (retries fatten the tail long before
// they move the mean), and the fabric's own recovery attribution:
// retries, integrity rejections and raw fault counts from the
// injection counters.
//
// The model panel prices the same sweep through
// core.PricePackingUnderFaults — expected attempts over the
// envelope+chunk legs, exponential backoff, truncated retry budget —
// and reports the predicted typed-send slowdown, the delivery
// probability within the budget, and the fault-adjusted
// recommendation, so the measured degradation can be read against the
// first-order reliability model.
type ChaosStudy struct {
	Profile *perfmodel.Profile
	Ranks   int
	Bytes   int64
	Reps    int
	Rates   []float64

	Schemes []ChaosSchemeResult
	Model   []ChaosModelRow

	// ty is the study's shared every-other-double layout.
	ty *datatype.Type
}

// ChaosSchemeResult is one engine's sweep across fault rates.
type ChaosSchemeResult struct {
	Name    string
	Goodput *stats.Series // GB/s against injected fault rate
	P99     *stats.Series // p99 per-message completion seconds against rate

	// Recovery attribution per rate, summed across ranks.
	Retries   []int64
	Rejects   []int64
	Faults    []int64 // injected drops+corruptions+truncations
	Transfers []int64 // completed eager+rendezvous sends, the retry denominator
	Delivered []bool  // the run survived its retry budget
}

// ChaosModelRow is the reliability model's prediction at one rate,
// alongside the profile calibrated back from the sweep's own counters:
// the per-leg loss rate inverted from observed retries-per-transfer
// through the leg-compounding model (memsim.EstimateLegLossRate), and
// the slowdown that observed profile prices. Configured and observed
// columns agreeing is the study's closed loop — the model's leg
// accounting matches what the fabric actually did.
type ChaosModelRow struct {
	Rate         float64
	Slowdown     float64 // predicted typed-send inflation
	DeliveryProb float64
	Recommended  string

	ObservedLegLoss  float64 // calibrated from summed retries/transfers
	ObservedSlowdown float64 // slowdown priced under the observed profile

	// The pipelined engine's predicted goodput retention (clean cost
	// over lossy cost) under the selective chunk protocol and under
	// the displaced whole-transfer replay, with their quotient. The
	// selective column sitting above the whole-replay one at every
	// lossy rate is what flips PR 7's conclusion: pipelining keeps its
	// edge under loss once repairs stop replaying the whole transfer.
	SelectiveRetention   float64
	WholeReplayRetention float64
	SelectiveGain        float64
}

// BuildChaosStudy measures the study for one profile. rates sweeps the
// injected fault rate (nil selects the defaults, including the clean
// baseline at 0); reps is the number of messages per cell.
func BuildChaosStudy(profileName string, rates []float64, reps int) (*ChaosStudy, error) {
	prof, err := perfmodel.ByName(profileName)
	if err != nil {
		return nil, err
	}
	if len(rates) == 0 {
		rates = []float64{0, 0.01, 0.02, 0.05, 0.10}
	}
	if reps <= 0 {
		reps = 16
	}
	st := &ChaosStudy{Profile: prof, Ranks: 2, Bytes: 4 << 20, Reps: reps, Rates: rates}
	ty, err := vectorFor(st.Bytes, 1, 2)
	if err != nil {
		return nil, err
	}
	st.ty = ty

	engines := []struct {
		name string
		send func(*mpi.Comm, buf.Block) error
	}{
		{"serial typed (SendType)", func(c *mpi.Comm, src buf.Block) error {
			return c.SendType(src, 1, ty, 1, 0)
		}},
		{"pipelined (SendpType)", func(c *mpi.Comm, src buf.Block) error {
			return c.SendpType(src, 1, ty, 1, 0)
		}},
		{"fused zero-copy (SendvType)", func(c *mpi.Comm, src buf.Block) error {
			return c.SendvType(src, 1, ty, 1, 0)
		}},
	}

	for _, eng := range engines {
		res := ChaosSchemeResult{
			Name:    eng.name,
			Goodput: &stats.Series{Label: eng.name},
			P99:     &stats.Series{Label: eng.name},
		}
		for i, rate := range rates {
			cell, err := st.measureCell(profileName, eng.send, rate, uint64(4021+131*i))
			if err != nil {
				return nil, err
			}
			res.Goodput.Append(rate, cell.goodput)
			res.P99.Append(rate, cell.p99)
			res.Retries = append(res.Retries, cell.retries)
			res.Rejects = append(res.Rejects, cell.rejects)
			res.Faults = append(res.Faults, cell.faults)
			res.Transfers = append(res.Transfers, cell.transfers)
			res.Delivered = append(res.Delivered, cell.delivered)
		}
		st.Schemes = append(st.Schemes, res)
	}

	rp := mpi.DefaultRetryPolicy()
	// The faultable legs per rendezvous transfer: the envelope plus one
	// data leg per internal chunk — the same accounting the executor's
	// retry loop compounds over.
	legs := 1 + prof.Chunks(st.Bytes)
	for i, rate := range rates {
		fp := memsim.FaultProfile{
			// UniformFaults spreads rate evenly over six kinds; the
			// resend class (drop, corrupt, truncate) is half of it.
			LegLossRate: rate / 2,
			MaxRetries:  rp.MaxRetries,
			BaseBackoff: float64(rp.BaseBackoff) / 1e9,
			MaxBackoff:  float64(rp.MaxBackoff) / 1e9,
		}
		// Calibrate the observed profile back from the sweep's own
		// counters, summed across the three engines at this rate.
		var retries, transfers int64
		for _, s := range st.Schemes {
			retries += s.Retries[i]
			transfers += s.Transfers[i]
		}
		obs, _ := fp.Calibrated(retries, transfers, legs)
		m := core.PricePackingUnderFaults(st.Bytes, prof, fp)
		om := core.PricePackingUnderFaults(st.Bytes, prof, obs)
		rec := core.RecommendUnderFaults(st.Bytes, false, core.GoalFastest, prof, fp)
		row := ChaosModelRow{
			Rate:                 rate,
			Slowdown:             m.Slowdown(),
			DeliveryProb:         m.DeliveryProb,
			Recommended:          rec.Scheme.String(),
			ObservedLegLoss:      obs.LegLossRate,
			ObservedSlowdown:     om.Slowdown(),
			SelectiveRetention:   1,
			WholeReplayRetention: 1,
			SelectiveGain:        m.SelectiveGain(),
		}
		if m.FaultyPipelinedSend > 0 {
			row.SelectiveRetention = m.PipelinedSend / m.FaultyPipelinedSend
		}
		if m.WholeReplayPipelinedSend > 0 {
			row.WholeReplayRetention = m.PipelinedSend / m.WholeReplayPipelinedSend
		}
		st.Model = append(st.Model, row)
	}
	return st, nil
}

type chaosCell struct {
	goodput   float64
	p99       float64
	retries   int64
	rejects   int64
	faults    int64
	transfers int64
	delivered bool
}

// measureCell runs reps messages of the study payload through one
// engine under one fault rate and collects timing plus the fabric's
// recovery attribution. Rate 0 runs the clean fabric (no plan armed),
// so the baseline also measures the zero-cost property of the
// checksum machinery being gated off.
func (st *ChaosStudy) measureCell(profileName string, send func(*mpi.Comm, buf.Block) error, rate float64, seed uint64) (chaosCell, error) {
	prof, err := perfmodel.ByName(profileName)
	if err != nil {
		return chaosCell{}, err
	}
	opts := mpi.Options{Profile: prof, ColdCaches: true, WallLimit: 2 * time.Minute}
	if rate > 0 {
		opts.Faults = simnet.UniformFaults(seed, rate)
	}
	var (
		perMsg   []float64
		total    float64
		counters [2]simnet.Counters
	)
	runErr := mpi.Run(st.Ranks, opts, func(c *mpi.Comm) error {
		defer func() { counters[c.Rank()] = c.Counters() }()
		if c.Rank() == 0 {
			src := buf.Alloc(int(st.ty.Extent()))
			for i := 0; i < st.Reps; i++ {
				t0 := c.Wtime()
				if err := send(c, src); err != nil {
					return err
				}
				perMsg = append(perMsg, c.Wtime()-t0)
			}
			total = c.Wtime()
			return nil
		}
		dst := buf.Alloc(int(st.ty.Size()))
		for i := 0; i < st.Reps; i++ {
			if _, err := c.Recv(dst, 0, 0); err != nil {
				return err
			}
		}
		return nil
	})
	cell := chaosCell{delivered: runErr == nil}
	if runErr != nil {
		// A cell that exhausts its retry budget is a data point, not a
		// study failure: it renders as zero goodput, undelivered.
		return cell, nil
	}
	if total > 0 {
		cell.goodput = float64(st.ty.Size()) * float64(st.Reps) / total / 1e9
	}
	cell.p99 = stats.Quantile(perMsg, 0.99)
	for _, ct := range counters {
		cell.retries += ct.Retries
		cell.rejects += ct.IntegrityRejects
		cell.faults += ct.Drops + ct.Corruptions + ct.Truncations
		cell.transfers += ct.EagerSends + ct.RendezvousSends
	}
	return cell, nil
}

// CleanOverheadAt returns the goodput ratio lossy/clean for the named
// engine at the rate closest to r (0 when unknown).
func (st *ChaosStudy) CleanOverheadAt(name string, r float64) float64 {
	for _, s := range st.Schemes {
		if s.Name != name || s.Goodput.Len() == 0 || s.Goodput.Y[0] <= 0 {
			continue
		}
		best, bestDist := 0.0, -1.0
		for i := range s.Goodput.X {
			d := s.Goodput.X[i] - r
			if d < 0 {
				d = -d
			}
			if bestDist < 0 || d < bestDist {
				bestDist = d
				best = s.Goodput.Y[i] / s.Goodput.Y[0]
			}
		}
		return best
	}
	return 0
}

// Render prints the study: the goodput-vs-rate panel, the p99 tail
// panel, the per-cell recovery attribution, and the model panel.
func (st *ChaosStudy) Render(w io.Writer) error {
	fmt.Fprintf(w, "== E18 fault-recovery chaos study — %s (%d-byte typed messages, %d reps, virtual clock) ==\n\n",
		st.Profile.Name, st.Bytes, st.Reps)
	good := make([]*stats.Series, len(st.Schemes))
	tail := make([]*stats.Series, len(st.Schemes))
	for i := range st.Schemes {
		good[i] = st.Schemes[i].Goodput
		tail[i] = st.Schemes[i].P99
	}
	if err := plot.ASCII(w, plot.Config{
		Title:  "goodput (GB/s) against injected fault rate",
		XLabel: "fault rate", YLabel: "GB/s",
	}, good); err != nil {
		return err
	}
	if err := plot.ASCII(w, plot.Config{
		Title:  "p99 per-message completion (s) against injected fault rate",
		XLabel: "fault rate", YLabel: "seconds",
	}, tail); err != nil {
		return err
	}
	fmt.Fprintln(w, "recovery attribution per cell (counters summed across ranks):")
	for _, s := range st.Schemes {
		fmt.Fprintf(w, "  %s\n", s.Name)
		for i := range st.Rates {
			status := "delivered"
			if !s.Delivered[i] {
				status = "RETRY BUDGET EXHAUSTED"
			}
			fmt.Fprintf(w, "    rate %5.2f  goodput %6.2f GB/s  p99 %9.3gs  faults %4d  retries %4d  integrity rejects %3d  %s\n",
				st.Rates[i], s.Goodput.Y[i], s.P99.Y[i], s.Faults[i], s.Retries[i], s.Rejects[i], status)
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "reliability model (core.PricePackingUnderFaults, resend-class legs = envelope + internal chunks);")
	fmt.Fprintln(w, "observed columns calibrate the leg-loss rate back from the sweep's retries-per-transfer;")
	fmt.Fprintln(w, "pipelined retention compares selective chunk recovery against whole-transfer replay:")
	for _, m := range st.Model {
		fmt.Fprintf(w, "  rate %5.2f (leg loss %.3f)  predicted typed slowdown %5.2fx  delivery prob %.6f  fastest under faults: %s  |  observed leg loss %.3f  slowdown %5.2fx  |  pipelined retention %5.1f%% selective vs %5.1f%% whole-replay (gain %.2fx)\n",
			m.Rate, m.Rate/2, m.Slowdown, m.DeliveryProb, m.Recommended, m.ObservedLegLoss, m.ObservedSlowdown,
			100*m.SelectiveRetention, 100*m.WholeReplayRetention, m.SelectiveGain)
	}
	fmt.Fprintln(w)
	return nil
}
