package figures

import (
	"fmt"
	"io"
	"time"

	"repro/internal/buf"
	"repro/internal/datatype"
	"repro/internal/harness"
	"repro/internal/perfmodel"
	"repro/internal/plot"
	"repro/internal/stats"
)

// FusedStudy is E14: the fused scatter/gather transfer engine against
// the staged pipeline it replaces, measured in real (wall-clock) time
// across the paper's layouts.
//
// Each panel compares three engines moving the same message from one
// user layout into another:
//
//   - fused: datatype.FusedCopy — one pass over the pair schedule of
//     the two compiled plans, no staging buffer (the engine behind the
//     sendv rendezvous);
//   - staged: compiled Pack into a staging buffer, compiled Unpack out
//     of it — two passes, the shape of the classic typed rendezvous;
//   - cursor: the same staged pipeline through the interpreting
//     cursor, the true-fallback baseline.
//
// The fused engine's headroom is the paper's point made mechanical:
// the staged pipeline's second pass (and its staging traffic) is pure
// software overhead, and removing it roughly doubles the attainable
// rate for DRAM-resident messages.
type FusedStudy struct {
	Profile *perfmodel.Profile
	Reps    int

	// Panels holds one bandwidth comparison per layout.
	Panels []FusedPanel
}

// FusedPanel is one layout's fused/staged/cursor comparison.
type FusedPanel struct {
	Layout string
	Sizes  []int64

	Fused, Staged, Cursor *stats.Series

	// Stats is the plan-counter delta of the fused sweep per size; it
	// must attribute every fused byte to FusedOps/FusedBytes.
	Stats []datatype.PlanStats
}

// fusedGeometry describes one study layout: the canonical every-other
// double, the 64-element blocked variant, and an every-third
// destination so the sender and receiver layouts differ (the
// halo-exchange shape the staged pipeline was built for).
type fusedGeometry struct {
	name                string
	srcBlock, srcStride int
	dstBlock, dstStride int
}

var fusedGeometries = []fusedGeometry{
	{"everyOther->contig", 1, 2, 0, 0},     // dstBlock 0 = contiguous destination
	{"everyOther->everyThird", 1, 2, 1, 3}, // layout-to-layout scatter
	{"blocked64->blocked64", 64, 128, 64, 128},
}

// fusedStudyMinBytes keeps every measured message well above the
// cursor leg's streaming chunk, so the chunked streams never take a
// whole-message fast path.
const fusedStudyMinBytes = 64 << 10

// BuildFusedStudy measures the three engines for each layout and
// size. Sizes above opt.MaxRealBytes (or under fusedStudyMinBytes)
// are skipped: the study times real byte movement.
func BuildFusedStudy(profileName string, sizes []int64, opt harness.Options) (*FusedStudy, error) {
	prof, err := perfmodel.ByName(profileName)
	if err != nil {
		return nil, err
	}
	if opt.Reps == 0 {
		opt.Reps = 12
	}
	if opt.MaxRealBytes == 0 {
		opt.MaxRealBytes = 16 << 20
	}
	st := &FusedStudy{Profile: prof, Reps: opt.Reps}
	for _, g := range fusedGeometries {
		panel := FusedPanel{
			Layout: g.name,
			Fused:  &stats.Series{Label: "fused (one pass, no staging)"},
			Staged: &stats.Series{Label: "staged (pack + unpack)"},
			Cursor: &stats.Series{Label: "staged, cursor"},
		}
		for _, n := range sizes {
			if n > opt.MaxRealBytes || n < fusedStudyMinBytes {
				continue
			}
			if err := panel.measure(g, n, opt.Reps); err != nil {
				return nil, err
			}
			panel.Sizes = append(panel.Sizes, n)
		}
		if len(panel.Sizes) == 0 {
			return nil, fmt.Errorf("figures: no fused-study sizes at or under MaxRealBytes=%d", opt.MaxRealBytes)
		}
		st.Panels = append(st.Panels, panel)
	}
	return st, nil
}

// vectorFor builds the committed vector covering n payload bytes with
// the given block/stride (in float64 elements).
func vectorFor(n int64, block, stride int) (*datatype.Type, error) {
	count := int(n) / (block * 8)
	if count < 1 {
		count = 1
	}
	ty, err := datatype.Vector(count, block, stride, datatype.Float64)
	if err != nil {
		return nil, err
	}
	return ty, ty.Commit()
}

// userBlock allocates a pattern-filled buffer covering one instance.
func userBlock(ty *datatype.Type, fill bool) buf.Block {
	b := buf.Alloc(int(ty.Extent()))
	if fill {
		b.FillPattern(0x6B)
	}
	return b
}

// measure runs the three engines for one (layout, size) cell.
func (p *FusedPanel) measure(g fusedGeometry, n int64, reps int) error {
	srcTy, err := vectorFor(n, g.srcBlock, g.srcStride)
	if err != nil {
		return err
	}
	srcPlan, err := srcTy.CompilePlan(1)
	if err != nil {
		return err
	}
	src := userBlock(srcTy, true)

	var dstTy *datatype.Type
	if g.dstBlock == 0 {
		dstTy, err = datatype.Contiguous(int(srcTy.Size()/8), datatype.Float64)
		if err == nil {
			err = dstTy.Commit()
		}
	} else {
		dstTy, err = vectorFor(n, g.dstBlock, g.dstStride)
	}
	if err != nil {
		return err
	}
	dstPlan, err := dstTy.CompilePlan(1)
	if err != nil {
		return err
	}
	dst := userBlock(dstTy, false)
	staging := buf.Alloc(int(srcTy.Size()))

	moved := float64(minInt64Fig(srcPlan.Bytes(), dstPlan.Bytes())) * float64(reps)
	bw := func(secs float64) float64 {
		if secs <= 0 {
			return 0
		}
		return moved / secs / 1e9
	}

	// Fused: one pass, with attribution checked by the study test.
	before := datatype.PlanStatsSnapshot()
	start := time.Now()
	for r := 0; r < reps; r++ {
		if _, err := datatype.FusedCopy(srcPlan, dstPlan, src, dst); err != nil {
			return err
		}
	}
	fused := time.Since(start).Seconds()
	p.Stats = append(p.Stats, datatype.PlanStatsSnapshot().Sub(before))

	// Staged: compiled pack + compiled unpack through staging.
	start = time.Now()
	for r := 0; r < reps; r++ {
		if _, err := srcPlan.Pack(src, staging); err != nil {
			return err
		}
		if err := dstPlan.UnpackRange(staging, dst, 0, minInt64Fig(srcPlan.Bytes(), dstPlan.Bytes())); err != nil {
			return err
		}
	}
	staged := time.Since(start).Seconds()

	// Cursor: the same staged pipeline on the interpreting engine,
	// streamed in sub-message chunks so neither stream takes the
	// whole-message compiled fast path (the study's sizes sit above
	// fusedStudyMinBytes, which is larger than the chunk).
	prevChunked := datatype.ChunkedCompiled()
	datatype.SetChunkedCompiled(false)
	defer datatype.SetChunkedCompiled(prevChunked)
	const chunk = int64(32 << 10)
	limit := minInt64Fig(srcPlan.Bytes(), dstPlan.Bytes())
	start = time.Now()
	for r := 0; r < reps; r++ {
		pk, err := srcTy.NewPacker(src, 1)
		if err != nil {
			return err
		}
		var off int64
		for pk.Remaining() > 0 {
			sz := minInt64Fig(pk.Remaining(), chunk)
			if _, err := pk.Pack(staging.Slice(int(off), int(sz))); err != nil {
				return err
			}
			off += sz
		}
		up, err := dstTy.NewUnpacker(dst, 1)
		if err != nil {
			return err
		}
		for off = 0; off < limit; {
			sz := minInt64Fig(limit-off, chunk)
			if _, err := up.Unpack(staging.Slice(int(off), int(sz))); err != nil {
				return err
			}
			off += sz
		}
	}
	cursor := time.Since(start).Seconds()

	p.Fused.Append(float64(n), bw(fused))
	p.Staged.Append(float64(n), bw(staged))
	p.Cursor.Append(float64(n), bw(cursor))
	return nil
}

// Render prints one bandwidth panel per layout plus the fused
// attribution counters.
func (st *FusedStudy) Render(w io.Writer) error {
	fmt.Fprintf(w, "== E14 fused-transfer study — %s (%d reps, wall time) ==\n\n", st.Profile.Name, st.Reps)
	for _, p := range st.Panels {
		cfg := plot.Config{
			Title:  fmt.Sprintf("%s: fused vs staged vs cursor transfer bandwidth (GB/s)", p.Layout),
			XLabel: "message bytes", YLabel: "GB/s", LogX: true,
		}
		if err := plot.ASCII(w, cfg, []*stats.Series{p.Fused, p.Staged, p.Cursor}); err != nil {
			return err
		}
		fmt.Fprintf(w, "%s fused-vs-staged per size:\n", p.Layout)
		for i, n := range p.Sizes {
			speed := 0.0
			if p.Staged.Y[i] > 0 {
				speed = p.Fused.Y[i] / p.Staged.Y[i]
			}
			fmt.Fprintf(w, "  %12d B  fused %6.2f GB/s  staged %6.2f GB/s  cursor %6.2f GB/s  fused/staged %.2fx  %v\n",
				n, p.Fused.Y[i], p.Staged.Y[i], p.Cursor.Y[i], speed, p.Stats[i])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// FusedSpeedupAt returns fused/staged bandwidth for the named layout
// at the size closest to n (0 when the layout is unknown).
func (st *FusedStudy) FusedSpeedupAt(layoutName string, n int64) float64 {
	for _, p := range st.Panels {
		if p.Layout != layoutName {
			continue
		}
		best, bestDist := 0.0, int64(-1)
		for i := range p.Sizes {
			d := p.Sizes[i] - n
			if d < 0 {
				d = -d
			}
			if (bestDist < 0 || d < bestDist) && p.Staged.Y[i] > 0 {
				bestDist = d
				best = p.Fused.Y[i] / p.Staged.Y[i]
			}
		}
		return best
	}
	return 0
}

func minInt64Fig(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
