package figures

import (
	"fmt"
	"io"
	"time"

	"repro/internal/harness"
	"repro/internal/perfmodel"
	"repro/internal/plot"
	"repro/internal/stats"
)

// ScaleStudy is E20: the sustained-throughput study at O(10³) ranks.
// Each cell runs a concurrent job mix — several independent ring
// communicators over one fabric, every rank holding multiple typed
// transfers in flight — and reports the aggregate payload rate, the
// per-transfer completion tail, and the fabric's shard-contention
// attribution (fast-path vs wildcard matches, live shard queues,
// pool-pressure adaptations). Payloads are virtual, so the rank axis
// reaches the scale-out regime on a laptop; all times are virtual
// clock. The machine carries a node hierarchy (NodeSize consecutive
// ranks per node with an intra-node latency discount), so the mix's
// collectives and barriers ride the two-level topologies.
type ScaleStudy struct {
	Profile  *perfmodel.Profile
	Bytes    int64
	NodeSize int

	Cells []harness.JobMixResult

	Throughput *stats.Series // aggregate GB/s against rank count
	Tail       *stats.Series // p99 completion seconds against rank count
}

// ScaleCellSpec is one grid point of the study.
type ScaleCellSpec struct {
	Ranks, Jobs, InFlight, Rounds int
}

// DefaultScaleGrid is the study's rank×job sweep. The 256-rank cell
// with 4 jobs and 4 transfers in flight is the acceptance regime:
// ≥1000 concurrent typed transfers across ≥4 communicators.
func DefaultScaleGrid() []ScaleCellSpec {
	return []ScaleCellSpec{
		{Ranks: 64, Jobs: 2, InFlight: 4, Rounds: 2},
		{Ranks: 128, Jobs: 4, InFlight: 4, Rounds: 2},
		{Ranks: 256, Jobs: 4, InFlight: 4, Rounds: 2},
		{Ranks: 512, Jobs: 8, InFlight: 4, Rounds: 2},
		{Ranks: 1024, Jobs: 8, InFlight: 4, Rounds: 1},
	}
}

// BuildScaleStudy measures the grid on one installation. A nil grid
// selects DefaultScaleGrid.
func BuildScaleStudy(profileName string, grid []ScaleCellSpec) (*ScaleStudy, error) {
	prof, err := perfmodel.ByName(profileName)
	if err != nil {
		return nil, err
	}
	if len(grid) == 0 {
		grid = DefaultScaleGrid()
	}
	st := &ScaleStudy{
		Profile: prof, Bytes: 1 << 20, NodeSize: 16,
		Throughput: &stats.Series{Label: "aggregate GB/s"},
		Tail:       &stats.Series{Label: "p99 completion (s)"},
	}
	for _, cell := range grid {
		res, err := harness.RunJobMix(harness.JobMix{
			Ranks: cell.Ranks, Jobs: cell.Jobs,
			InFlight: cell.InFlight, Rounds: cell.Rounds,
			Bytes: st.Bytes, Profile: prof, NodeSize: st.NodeSize,
			WallLimit: 4 * time.Minute,
		})
		if err != nil {
			return nil, fmt.Errorf("scale cell %d ranks × %d jobs: %w", cell.Ranks, cell.Jobs, err)
		}
		st.Cells = append(st.Cells, res)
		st.Throughput.Append(float64(res.Ranks), res.AggregateGBs)
		st.Tail.Append(float64(res.Ranks), res.P99)
	}
	return st, nil
}

// PeakInFlight returns the largest concurrent-transfer high-water
// mark across the grid.
func (st *ScaleStudy) PeakInFlight() int64 {
	var peak int64
	for _, c := range st.Cells {
		if c.InFlightPeak > peak {
			peak = c.InFlightPeak
		}
	}
	return peak
}

// Render prints the study: the throughput and tail panels against the
// rank axis, then the per-cell shard-contention attribution.
func (st *ScaleStudy) Render(w io.Writer) error {
	fmt.Fprintf(w, "== E20 sustained-throughput scale study — %s (%d-byte virtual typed transfers, %d ranks/node, virtual clock) ==\n\n",
		st.Profile.Name, st.Bytes, st.NodeSize)
	if err := plot.ASCII(w, plot.Config{
		Title:  "aggregate payload rate against rank count (concurrent job mix)",
		XLabel: "ranks", YLabel: "GB/s",
	}, []*stats.Series{st.Throughput}); err != nil {
		return err
	}
	if err := plot.ASCII(w, plot.Config{
		Title:  "p99 per-transfer completion against rank count",
		XLabel: "ranks", YLabel: "seconds",
	}, []*stats.Series{st.Tail}); err != nil {
		return err
	}
	fmt.Fprintln(w, "per-cell attribution (matching totals are the run's own; pool deltas over the run):")
	for _, c := range st.Cells {
		fmt.Fprintf(w, "  %4d ranks × %d jobs × %d in flight × %d rounds\n", c.Ranks, c.Jobs, c.InFlight, c.Rounds)
		fmt.Fprintf(w, "    %6d transfers  peak in flight %5d  aggregate %8.2f GB/s  p50 %9.3gs  p99 %9.3gs\n",
			c.Transfers, c.InFlightPeak, c.AggregateGBs, c.P50, c.P99)
		fmt.Fprintf(w, "    matching: %d shard queues live, %d fast-path takes, %d wildcard takes\n",
			c.Matching.Queues, c.Matching.FastTakes, c.Matching.WildTakes)
		fmt.Fprintf(w, "    pool: %d gets (%d hits), %d eager adaptations, %d cap degradations\n",
			c.Pool.Gets, c.Pool.Hits, c.Pool.EagerAdaptations, c.Pool.Degradations)
	}
	fmt.Fprintln(w)
	return nil
}
