package figures

import (
	"fmt"
	"io"
	"time"

	"repro/internal/buf"
	"repro/internal/datatype"
	"repro/internal/harness"
	"repro/internal/plot"
	"repro/internal/stats"
)

// CanonStudy is E19: the Commit-time datatype normalizer and its
// specialized kernel registry (the TEMPI direction), measured in real
// (wall-clock) time.
//
// Each panel packs one nested derived type twice — once with the
// normalization pass enabled (the canonical strided-block program
// served by the kernel registry) and once with it disabled (the raw
// flattened gather table) — and charts both rates. Alongside the
// bandwidths the study records what the pass actually did to each
// type: the per-instance run count it collapsed, the dimensionality of
// the closed form, the registry class the program resolved to, and the
// CanonicalString rendering, so the chart ties the speedup to the IR
// transformation that produced it.
//
// The third family is the deliberate miss: an irregular indexed type
// no closed form matches, where the normalizer can only hoist the
// uniform element size. Its canon-vs-raw ratio near 1 is the study's
// control — the pass helps where a canonical form exists and costs
// nothing where one doesn't.
type CanonStudy struct {
	Reps int

	// Panels holds one canon-vs-raw comparison per type family.
	Panels []CanonPanel
}

// CanonPanel is one type family's normalized/raw comparison.
type CanonPanel struct {
	Layout string
	Sizes  []int64

	Canon, Raw *stats.Series // pack bandwidth, GB/s

	// Per-size attribution of the normalized program: the raw run
	// count the pass collapsed (0 when it fell back to the table),
	// the canonical dimensionality, the registry class, and the
	// CanonicalString rendering.
	RawRuns []int64
	Dims    []int
	Classes []string
	Forms   []string

	// Stats is the plan-counter delta of the canon sweep per size; for
	// collapsing families every packed byte must land on BlockOps.
	Stats []datatype.PlanStats
}

// canonGeometry builds one study type covering about n payload bytes.
type canonGeometry struct {
	name      string
	collapses bool // whether the normalizer should find a closed form
	build     func(n int64) (*datatype.Type, error)
}

// canonHvecOfVec is the paper's nested motif: a strided vector of 8-byte
// runs replicated by an hvector whose byte stride breaks the inner
// continuation (inner Vector(16,1,2) continues at 256B; TrueExtent
// 248B + 16B pad = 264B ≠ 256B), so the flattener emits the irregular
// table the normalizer collapses to a 2-D block form.
func canonHvecOfVec(n int64) (*datatype.Type, error) {
	const innerRuns = 16
	inner, err := datatype.Vector(innerRuns, 1, 2, datatype.Float64)
	if err != nil {
		return nil, err
	}
	rows := n / (innerRuns * 8)
	if rows < 2 {
		rows = 2
	}
	return datatype.Hvector(int(rows), 1, inner.TrueExtent()+16, inner)
}

// canonSubarray3d selects a 3-D face with strictly partial rows
// (32-of-48 doubles), the shape that collapses to the 3-D block form.
func canonSubarray3d(n int64) (*datatype.Type, error) {
	const rows, rowFull, cols, colsFull = 8, 12, 32, 48
	planes := n / (rows * cols * 8)
	if planes < 2 {
		planes = 2
	}
	return datatype.Subarray(
		[]int{int(planes) + 2, rowFull, colsFull},
		[]int{int(planes), rows, cols},
		[]int{1, 2, 4},
		datatype.OrderC, datatype.Float64)
}

// canonIndexedIrregular builds a single-element indexed type whose
// displacement gaps cycle through 2..6 elements — never uniform, never
// abutting — so no closed form verifies and the normalizer can only
// hoist the uniform 8-byte run length.
func canonIndexedIrregular(n int64) (*datatype.Type, error) {
	count := int(n / 8)
	if count < 4 {
		count = 4
	}
	displs := make([]int, count)
	d := 0
	for i := range displs {
		displs[i] = d
		d += 2 + i%5
	}
	return datatype.IndexedBlock(1, displs, datatype.Float64)
}

var canonGeometries = []canonGeometry{
	{"hvecOfVec8B", true, canonHvecOfVec},
	{"subarray3d", true, canonSubarray3d},
	{"indexedIrregular", false, canonIndexedIrregular},
}

// canonStudyMinBytes keeps the measured messages large enough that the
// per-pack fixed costs don't dominate the timed loop.
const canonStudyMinBytes = 64 << 10

// BuildCanonStudy measures normalized-vs-raw pack bandwidth for each
// family and size. Sizes above opt.MaxRealBytes (or under
// canonStudyMinBytes) are skipped: the study times real byte movement.
// The normalization gate is restored on return.
func BuildCanonStudy(sizes []int64, opt harness.Options) (*CanonStudy, error) {
	if opt.Reps == 0 {
		opt.Reps = 12
	}
	if opt.MaxRealBytes == 0 {
		opt.MaxRealBytes = 16 << 20
	}
	prev := datatype.NormalizeEnabled()
	defer datatype.SetNormalize(prev)
	st := &CanonStudy{Reps: opt.Reps}
	for _, g := range canonGeometries {
		panel := CanonPanel{
			Layout: g.name,
			Canon:  &stats.Series{Label: "normalized (canonical program)"},
			Raw:    &stats.Series{Label: "raw (flattened table walk)"},
		}
		for _, n := range sizes {
			if n > opt.MaxRealBytes || n < canonStudyMinBytes {
				continue
			}
			if err := panel.measure(g, n, opt.Reps); err != nil {
				return nil, err
			}
			panel.Sizes = append(panel.Sizes, n)
		}
		if len(panel.Sizes) == 0 {
			return nil, fmt.Errorf("figures: no canon-study sizes at or under MaxRealBytes=%d", opt.MaxRealBytes)
		}
		st.Panels = append(st.Panels, panel)
	}
	return st, nil
}

// canonPackTime builds the geometry's type under the given gate
// setting and times reps compiled packs, returning seconds, the moved
// bytes per pack, and the committed type for attribution.
func canonPackTime(g canonGeometry, n int64, on bool, reps int) (float64, int64, *datatype.Type, error) {
	datatype.SetNormalize(on)
	ty, err := g.build(n)
	if err != nil {
		return 0, 0, nil, err
	}
	if err := ty.Commit(); err != nil {
		return 0, 0, nil, err
	}
	plan, err := ty.CompilePlan(1)
	if err != nil {
		return 0, 0, nil, err
	}
	src := buf.Alloc(int(ty.Extent()))
	src.FillPattern(0x19)
	packed := buf.Alloc(int(plan.Bytes()))
	start := time.Now()
	for r := 0; r < reps; r++ {
		if _, err := plan.Pack(src, packed); err != nil {
			return 0, 0, nil, err
		}
	}
	return time.Since(start).Seconds(), plan.Bytes(), ty, nil
}

// measure runs both gate settings for one (family, size) cell.
func (p *CanonPanel) measure(g canonGeometry, n int64, reps int) error {
	before := datatype.PlanStatsSnapshot()
	canonSecs, moved, ty, err := canonPackTime(g, n, true, reps)
	if err != nil {
		return err
	}
	p.Stats = append(p.Stats, datatype.PlanStatsSnapshot().Sub(before))

	rawSecs, _, _, err := canonPackTime(g, n, false, reps)
	if err != nil {
		return err
	}

	plan, err := ty.CompilePlan(1)
	if err != nil {
		return err
	}
	_, rawRuns, dims := plan.Canon()
	p.RawRuns = append(p.RawRuns, rawRuns)
	p.Dims = append(p.Dims, dims)
	p.Classes = append(p.Classes, plan.KernelClass().String())
	p.Forms = append(p.Forms, ty.CanonicalString())

	bw := func(secs float64) float64 {
		if secs <= 0 {
			return 0
		}
		return float64(moved) * float64(reps) / secs / 1e9
	}
	p.Canon.Append(float64(n), bw(canonSecs))
	p.Raw.Append(float64(n), bw(rawSecs))
	return nil
}

// Render prints one bandwidth panel per family plus the canonical-form
// attribution lines.
func (st *CanonStudy) Render(w io.Writer) error {
	fmt.Fprintf(w, "== E19 canonical-normalizer study (%d reps, wall time) ==\n\n", st.Reps)
	for _, p := range st.Panels {
		cfg := plot.Config{
			Title:  fmt.Sprintf("%s: normalized vs raw pack bandwidth (GB/s)", p.Layout),
			XLabel: "message bytes", YLabel: "GB/s", LogX: true,
		}
		if err := plot.ASCII(w, cfg, []*stats.Series{p.Canon, p.Raw}); err != nil {
			return err
		}
		fmt.Fprintf(w, "%s per size:\n", p.Layout)
		for i, n := range p.Sizes {
			speed := 0.0
			if p.Raw.Y[i] > 0 {
				speed = p.Canon.Y[i] / p.Raw.Y[i]
			}
			reduction := "table kept (uniform hoist)"
			if p.RawRuns[i] > 0 {
				reduction = fmt.Sprintf("runs %d→%d (block%dd)", p.RawRuns[i], p.Dims[i], p.Dims[i])
			}
			fmt.Fprintf(w, "  %12d B  canon %6.2f GB/s  raw %6.2f GB/s  canon/raw %.2fx  class %s  %s\n",
				n, p.Canon.Y[i], p.Raw.Y[i], speed, p.Classes[i], reduction)
			fmt.Fprintf(w, "                 %s  %v\n", p.Forms[i], p.Stats[i])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// CanonSpeedupAt returns normalized/raw bandwidth for the named family
// at the size closest to n (0 when the family is unknown).
func (st *CanonStudy) CanonSpeedupAt(layoutName string, n int64) float64 {
	for _, p := range st.Panels {
		if p.Layout != layoutName {
			continue
		}
		best, bestDist := 0.0, int64(-1)
		for i := range p.Sizes {
			d := p.Sizes[i] - n
			if d < 0 {
				d = -d
			}
			if (bestDist < 0 || d < bestDist) && p.Raw.Y[i] > 0 {
				bestDist = d
				best = p.Canon.Y[i] / p.Raw.Y[i]
			}
		}
		return best
	}
	return 0
}
