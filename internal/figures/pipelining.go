package figures

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/perfmodel"
	"repro/internal/plot"
	"repro/internal/stats"
)

// PipeliningStudy is E11: the what-if of the paper's reference [2]
// (Li et al., user-mode memory registration). §2.3 observes that with
// enough NIC support a derived-type send could pipeline reads and
// sends "similarly to the reference case", but "in practice we don't
// see this performance". The study measures the vector-type scheme
// with and without the capability and compares both against the
// reference rate.
type PipeliningStudy struct {
	Profile *perfmodel.Profile
	Sizes   []int64
	// Slowdowns vs the contiguous reference.
	Baseline  *stats.Series // vector type, measured-installation behaviour
	Pipelined *stats.Series // vector type under NIC pipelining
}

// BuildPipeliningStudy measures the ablation on one installation.
func BuildPipeliningStudy(profileName string, sizes []int64, opt harness.Options) (*PipeliningStudy, error) {
	prof, err := perfmodel.ByName(profileName)
	if err != nil {
		return nil, err
	}
	st := &PipeliningStudy{Profile: prof, Sizes: sizes}
	workloads := harness.Workloads(sizes, opt)

	measure := func(p *perfmodel.Profile, scheme core.Scheme) (*stats.Series, error) {
		ms, err := harness.MeasureSweep(p, scheme, workloads, opt)
		if err != nil {
			return nil, err
		}
		s := &stats.Series{Label: scheme.String()}
		for _, m := range ms {
			s.Append(float64(m.Bytes), m.Time())
		}
		return s, nil
	}

	ref, err := measure(prof, core.Reference)
	if err != nil {
		return nil, err
	}
	base, err := measure(prof, core.VectorType)
	if err != nil {
		return nil, err
	}
	piped, err := measure(prof.WithPipelining(), core.VectorType)
	if err != nil {
		return nil, err
	}
	st.Baseline = stats.Ratio("vector type (measured behaviour)", base, ref)
	st.Pipelined = stats.Ratio("vector type (NIC pipelining, ref [2])", piped, ref)
	return st, nil
}

// Render prints the ablation.
func (st *PipeliningStudy) Render(w io.Writer) error {
	fmt.Fprintf(w, "== E11 NIC datatype-pipelining what-if — %s ==\n\n", st.Profile.Name)
	if err := plot.ASCII(w, plot.Config{
		Title:  "vector-type slowdown vs reference, with and without pipelining",
		XLabel: "message bytes", YLabel: "x", LogX: true, YMax: 10,
	}, []*stats.Series{st.Baseline, st.Pipelined}); err != nil {
		return err
	}
	return plot.Table(w, "bytes", []*stats.Series{st.Baseline, st.Pipelined})
}

// LargeGain returns baseline/pipelined slowdown at the largest size:
// how much the reference-[2] capability would recover.
func (st *PipeliningStudy) LargeGain() float64 {
	if st.Baseline.Len() == 0 || st.Pipelined.Len() == 0 {
		return 0
	}
	a := st.Baseline.Y[st.Baseline.Len()-1]
	b := st.Pipelined.Y[st.Pipelined.Len()-1]
	if b == 0 {
		return 0
	}
	return a / b
}
