// Package figures regenerates the paper's evaluation artefacts: the
// four installation figures (each with time, bandwidth and slowdown
// panels over eight schemes, Figures 1–4) and the section-4 studies
// (eager limit §4.5, cache flushing §4.6, spacing/block size and
// node scaling §4.7, and the §2 cost-model factors).
//
// Every experiment has an identifier (E1…E10) mapped in DESIGN.md and
// recorded in EXPERIMENTS.md.
package figures

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/perfmodel"
	"repro/internal/plot"
	"repro/internal/stats"
)

// FigureByProfile names the paper figure each installation appears in.
var FigureByProfile = map[string]string{
	"skx-impi":    "Figure 1",
	"skx-mvapich": "Figure 2",
	"ls5-cray":    "Figure 3",
	"knl-impi":    "Figure 4",
}

// Figure holds one installation's full sweep: the paper's three
// panels over all eight schemes.
type Figure struct {
	Profile *perfmodel.Profile
	Title   string
	Sizes   []int64

	// Panels, one series per scheme in legend order.
	Time      []*stats.Series
	Bandwidth []*stats.Series
	Slowdown  []*stats.Series

	// Raw measurements per scheme.
	Measurements map[core.Scheme][]harness.Measurement
}

// DefaultSizes is the paper's x axis: 10³ … 10⁹ bytes.
func DefaultSizes(perDecade int) []int64 {
	return harness.LogSizes(1_000, 1_000_000_000, perDecade)
}

// Build measures every scheme of the figure for one installation.
func Build(profileName string, sizes []int64, opt harness.Options) (*Figure, error) {
	prof, err := perfmodel.ByName(profileName)
	if err != nil {
		return nil, err
	}
	title := FigureByProfile[profileName]
	if title == "" {
		title = "custom figure"
	}
	f := &Figure{
		Profile:      prof,
		Title:        fmt.Sprintf("%s — %s", title, prof.Description),
		Sizes:        sizes,
		Measurements: map[core.Scheme][]harness.Measurement{},
	}
	workloads := harness.Workloads(sizes, opt)
	for _, scheme := range core.Schemes() {
		ms, err := harness.MeasureSweep(prof, scheme, workloads, opt)
		if err != nil {
			return nil, fmt.Errorf("%s / %v: %w", profileName, scheme, err)
		}
		f.Measurements[scheme] = ms
		ts := &stats.Series{Label: scheme.String()}
		bw := &stats.Series{Label: scheme.String()}
		for _, m := range ms {
			ts.Append(float64(m.Bytes), m.Time())
			bw.Append(float64(m.Bytes), m.Bandwidth()/1e9) // GB/s
		}
		f.Time = append(f.Time, ts)
		f.Bandwidth = append(f.Bandwidth, bw)
	}
	ref := f.Time[0] // reference is first in legend order
	for _, ts := range f.Time {
		f.Slowdown = append(f.Slowdown, stats.Ratio(ts.Label, ts, ref))
	}
	return f, nil
}

// Render writes the three ASCII panels, mirroring the paper's layout.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n\n", f.Title); err != nil {
		return err
	}
	panels := []struct {
		cfg    plot.Config
		series []*stats.Series
	}{
		{plot.Config{Title: "Time (sec)", XLabel: "message bytes", YLabel: "sec", LogX: true, LogY: true}, f.Time},
		{plot.Config{Title: "bwidth (GB/s)", XLabel: "message bytes", YLabel: "GB/s", LogX: true}, f.Bandwidth},
		{plot.Config{Title: "slowdown vs reference", XLabel: "message bytes", YLabel: "x", LogX: true, YMax: 10}, f.Slowdown},
	}
	for _, p := range panels {
		if err := plot.ASCII(w, p.cfg, p.series); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the three panels as CSV blocks separated by blank
// lines: time, bandwidth (GB/s), slowdown.
func (f *Figure) WriteCSV(w io.Writer) error {
	for i, panel := range [][]*stats.Series{f.Time, f.Bandwidth, f.Slowdown} {
		header := []string{"# time (s) vs bytes", "# bandwidth (GB/s) vs bytes", "# slowdown vs bytes"}[i]
		if _, err := fmt.Fprintln(w, header); err != nil {
			return err
		}
		if err := plot.CSV(w, "bytes", panel); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// SchemeSlowdownAt returns a scheme's slowdown at the sweep size
// closest to n bytes.
func (f *Figure) SchemeSlowdownAt(s core.Scheme, n int64) (float64, error) {
	idx := -1
	for i, sd := range f.Slowdown {
		if sd.Label == s.String() {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0, fmt.Errorf("figures: scheme %v not in figure", s)
	}
	sd := f.Slowdown[idx]
	best, bestDist := 0.0, int64(-1)
	for i, x := range sd.X {
		d := int64(x) - n
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist {
			bestDist, best = d, sd.Y[i]
		}
	}
	if bestDist < 0 {
		return 0, fmt.Errorf("figures: empty slowdown series for %v", s)
	}
	return best, nil
}
