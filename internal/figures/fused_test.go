package figures

import (
	"strings"
	"testing"

	"repro/internal/harness"
)

// TestFusedStudy pins the E14 contract: every panel has positive
// bandwidths for all three engines, the fused sweep attributes its
// bytes to FusedOps with no staged leakage, oversize and undersize
// points are skipped, and Render reports the fused-vs-staged ratios.
func TestFusedStudy(t *testing.T) {
	opt := harness.Options{Reps: 3, MaxRealBytes: 1 << 20}
	st, err := BuildFusedStudy("skx-impi", []int64{8 << 10, 128 << 10, 512 << 10, 64 << 20}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Panels) != len(fusedGeometries) {
		t.Fatalf("panels = %d, want %d", len(st.Panels), len(fusedGeometries))
	}
	for _, p := range st.Panels {
		if len(p.Sizes) != 2 {
			t.Fatalf("%s kept sizes %v, want the two inside [min,max]", p.Layout, p.Sizes)
		}
		for i, n := range p.Sizes {
			if p.Fused.Y[i] <= 0 || p.Staged.Y[i] <= 0 || p.Cursor.Y[i] <= 0 {
				t.Fatalf("%s: non-positive bandwidth at %d B", p.Layout, n)
			}
			d := p.Stats[i]
			if d.FusedOps != int64(st.Reps) {
				t.Errorf("%s at %d B: fused sweep attributed %d ops, want %d", p.Layout, n, d.FusedOps, st.Reps)
			}
			if d.StagedOps != 0 {
				t.Errorf("%s at %d B: staged attribution leaked into the fused sweep", p.Layout, n)
			}
		}
	}
	if st.FusedSpeedupAt("everyOther->everyThird", 512<<10) <= 0 {
		t.Error("fused speedup not computable")
	}
	var sb strings.Builder
	if err := st.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"E14", "fused (one pass, no staging)", "fused/staged"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q", want)
		}
	}
}
