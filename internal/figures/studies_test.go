package figures

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/perfmodel"
)

func TestEagerStudyShape(t *testing.T) {
	st, err := BuildEagerStudy("skx-impi", shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	// §4.5: raising the limit must not appreciably change large
	// messages.
	if d := st.LargeUnchangedByRaisedLimit(); d > 0.05 {
		t.Errorf("raised limit changed the largest size by %.1f%%", d*100)
	}
	// The per-byte reference curve must show a bump just over the
	// limit relative to just under it (the protocol-switch drop).
	ref := st.Default[0]
	limit := float64(st.Profile.EagerLimit)
	var under, over float64
	for i, x := range ref.X {
		if x <= limit {
			under = ref.Y[i]
		}
		if x > limit && over == 0 {
			over = ref.Y[i]
		}
	}
	if over <= under {
		t.Errorf("no eager drop: %.3f ns/B under vs %.3f ns/B over the limit", under, over)
	}
	var out bytes.Buffer
	if err := st.Render(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E5") {
		t.Error("render missing study id")
	}
}

func TestCacheStudyShape(t *testing.T) {
	st, err := BuildCacheStudy("skx-impi", shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	// §4.6: warm caches help at intermediate sizes — the copying
	// scheme must be faster somewhere without the flush.
	best := 0.0
	for _, y := range st.Speedup.Y {
		if y > best {
			best = y
		}
	}
	if best < 1.1 {
		t.Errorf("peak warm-cache speedup = %.2fx, want > 1.1x", best)
	}
	// And never slower.
	for i, y := range st.Speedup.Y {
		if y < 0.99 {
			t.Errorf("warm run slower at %g bytes: %.2fx", st.Speedup.X[i], y)
		}
	}
}

func TestSpacingStudyMonotone(t *testing.T) {
	st, err := BuildSpacingStudy("skx-impi", 2<<20, shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []core.Scheme{core.Copying, core.VectorType} {
		ts := st.Times[s]
		if ts[len(ts)-1] <= ts[0] {
			t.Errorf("%v: full jitter (%g) not slower than regular (%g)", s, ts[len(ts)-1], ts[0])
		}
		for i := 1; i < len(ts); i++ {
			if ts[i] < ts[i-1]*0.999 {
				t.Errorf("%v: time fell from %g to %g at jitter %g", s, ts[i-1], ts[i], st.Jitters[i])
			}
		}
	}
}

func TestBlockSizeStudyMonotone(t *testing.T) {
	st, err := BuildBlockSizeStudy("skx-impi", 2<<20, shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []core.Scheme{core.Copying, core.VectorType} {
		ts := st.Times[s]
		if ts[len(ts)-1] >= ts[0] {
			t.Errorf("%v: 64-element blocks (%g) not faster than single elements (%g)", s, ts[len(ts)-1], ts[0])
		}
	}
}

func TestNodeScalingNoDegradation(t *testing.T) {
	st, err := BuildNodeScalingStudy("skx-impi", 4, 1<<20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d := st.MaxDegradation(); d > 0.01 {
		t.Errorf("pair-0 degraded %.2f%% with concurrent pairs (paper: none)", d*100)
	}
}

func TestCostModelCheckFactors(t *testing.T) {
	ck, err := BuildCostModelCheck("skx-impi", 100_000_000, shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if ck.CopyingSlowdown < 2.3 || ck.CopyingSlowdown > 4.2 {
		t.Errorf("copying/reference = %.2f, want ≈3", ck.CopyingSlowdown)
	}
	if ck.PackVsCopy < 0.95 || ck.PackVsCopy > 1.05 {
		t.Errorf("packing(v)/copying = %.2f, want ≈1", ck.PackVsCopy)
	}
	if ck.VectorDegraded <= 1 {
		t.Errorf("vector/copying = %.2f, want >1", ck.VectorDegraded)
	}
	if ck.BufferedPenalty <= 1 {
		t.Errorf("buffered/copying = %.2f, want >1", ck.BufferedPenalty)
	}
	if ck.PackElementRatio < 2 {
		t.Errorf("packing(e)/copying = %.2f, want ≫1", ck.PackElementRatio)
	}
	var out bytes.Buffer
	if err := ck.Render(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E10") {
		t.Error("render missing study id")
	}
}

func TestPackPlanStudyShape(t *testing.T) {
	o := shapeOpts()
	o.MaxRealBytes = 1 << 20 // real payloads: exercise the kernels, not just accounting
	sizes := []int64{8 << 10, 256 << 10, 8 << 20}
	st, err := BuildPackPlanStudy("skx-impi", sizes, o)
	if err != nil {
		t.Fatal(err)
	}
	if st.Interpreted.Len() != len(sizes) || st.Compiled.Len() != len(sizes) {
		t.Fatalf("series lengths %d/%d, want %d", st.Interpreted.Len(), st.Compiled.Len(), len(sizes))
	}
	// The compiled engine amortises the per-segment bookkeeping, so it
	// must never lose to interpretation and must win visibly on the
	// small-block canonical layout at large sizes.
	for i, y := range st.Speedup.Y {
		if y < 0.99 {
			t.Errorf("size %d: compiled slower than interpreted (%.3fx)", st.Sizes[i], y)
		}
	}
	if s := st.CompiledSpeedupAt(8 << 20); s <= 1.0 {
		t.Errorf("compiled speedup at 8 MB = %.3fx, want > 1", s)
	}
	// Every real compiled cell must attribute its pack traffic to a
	// compiled kernel (the canonical workload is a regular stride).
	for i, ps := range st.PlanStats {
		if sizes[i] > o.MaxRealBytes {
			continue
		}
		if ps.StrideOps == 0 {
			t.Errorf("size %d: no stride-kernel executions in compiled sweep: %v", sizes[i], ps)
		}
	}
	var out bytes.Buffer
	if err := st.Render(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E12") {
		t.Error("render missing study id")
	}
}

// TestMeasurementPlanStats pins the harness surfacing: a packing(c)
// measurement window attributes bytes to compiled kernels with plan
// cache hits after the first rep, while the derived-type scheme's
// chunked rendezvous streaming runs on the compiled-chunked tier (the
// cursor is only the true fallback).
func TestMeasurementPlanStats(t *testing.T) {
	prof, err := perfmodel.ByName("skx-impi")
	if err != nil {
		t.Fatal(err)
	}
	o := shapeOpts()
	o.MaxRealBytes = 16 << 20
	w := core.ForBytes(4 << 20)

	m, err := harness.Measure(prof, core.PackCompiled, w, o)
	if err != nil {
		t.Fatal(err)
	}
	if m.PlanStats.CompiledBytes() == 0 {
		t.Errorf("packing(c) window shows no compiled bytes: %v", m.PlanStats)
	}
	if m.PlanStats.PlanHits == 0 {
		t.Errorf("packing(c) window shows no plan-cache hits: %v", m.PlanStats)
	}

	// A large derived-type send goes rendezvous: the internal chunk
	// loop must run on the compiled-chunked tier, not the cursor.
	m, err = harness.Measure(prof, core.VectorType, w, o)
	if err != nil {
		t.Fatal(err)
	}
	if m.PlanStats.ChunkBytes == 0 {
		t.Errorf("vector-type rendezvous window shows no compiled-chunked traffic: %v", m.PlanStats)
	}
	if m.PlanStats.CursorBytes != 0 {
		t.Errorf("vector-type rendezvous window fell back to the cursor: %v", m.PlanStats)
	}
}
