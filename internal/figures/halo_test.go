package figures

import (
	"io"
	"testing"

	"repro/internal/harness"
)

// TestHaloStudyBuilds runs E15 on the Skylake profile and pins its
// invariants: every panel measures all tiles, bandwidths are positive,
// the typed rounds carry fused attribution (the self-leg is always a
// fused copy), and the rendezvous-sized cells run all-fused with no
// staged traffic.
func TestHaloStudyBuilds(t *testing.T) {
	st, err := BuildHaloStudy("skx-impi", harness.Options{Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Panels) != len(haloGeometries) {
		t.Fatalf("panels = %d, want %d", len(st.Panels), len(haloGeometries))
	}
	for _, p := range st.Panels {
		if len(p.Cells) != len(haloTiles[p.Dim]) {
			t.Fatalf("%s: cells = %d, want %d", p.Name, len(p.Cells), len(haloTiles[p.Dim]))
		}
		for _, c := range p.Cells {
			if c.TypedGBs <= 0 || c.ManualGBs <= 0 {
				t.Errorf("%s N=%d: non-positive bandwidth typed %g manual %g", p.Name, c.TileN, c.TypedGBs, c.ManualGBs)
			}
			if c.Stats.FusedOps == 0 {
				t.Errorf("%s N=%d: typed rounds carry no fused attribution: %v", p.Name, c.TileN, c.Stats)
			}
		}
		// The largest tile's faces are rendezvous-sized: every typed
		// leg must ride the fused engine.
		last := p.Cells[len(p.Cells)-1]
		if !last.Virtual {
			t.Errorf("%s: largest tile N=%d expected to run virtual", p.Name, last.TileN)
		}
		if last.Stats.StagedOps != 0 {
			t.Errorf("%s N=%d: staged traffic on rendezvous-sized typed rounds: %v", p.Name, last.TileN, last.Stats)
		}
	}
	// The contiguous-face panels pay pack+unpack only on the manual
	// side, so the typed collective must win there at the largest tile.
	for _, name := range []string{"2d-y row (contig)", "3d-z plane (contig)"} {
		if sp := st.TypedSpeedupAt(name); sp <= 1 {
			t.Errorf("%s: typed/manual %.2fx at the largest tile, want >1", name, sp)
		}
	}
	if err := st.Render(io.Discard); err != nil {
		t.Fatal(err)
	}
}
