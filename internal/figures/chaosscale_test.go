package figures

import (
	"bytes"
	"strings"
	"testing"
)

// TestChaosScaleStudy runs a compact E21 grid and pins the PR's
// acceptance criterion: the measured pipelined goodput retention under
// a ≥2% fault rate must sit strictly above what the
// whole-transfer-replay baseline predicts — the selective chunk
// protocol is where the difference comes from.
func TestChaosScaleStudy(t *testing.T) {
	ranks := []int{32, 64}
	rates := []float64{0, 0.02, 0.05}
	st, err := BuildChaosScaleStudy("skx-impi", ranks, rates)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Cells) != len(ranks)*len(rates) {
		t.Fatalf("got %d cells, want %d", len(st.Cells), len(ranks)*len(rates))
	}
	if len(st.Model) != len(rates) {
		t.Fatalf("got %d model rows, want %d", len(st.Model), len(rates))
	}

	for _, r := range ranks {
		if got := st.GoodputRatioAt(r, 0); got != 1 {
			t.Errorf("%d ranks: clean baseline ratio %g, want 1", r, got)
		}
		for _, rate := range rates[1:] {
			measured := st.GoodputRatioAt(r, rate)
			if measured <= 0 || measured > 1 {
				t.Errorf("%d ranks @ %.0f%%: goodput ratio %g outside (0,1]", r, 100*rate, measured)
				continue
			}
			var wr float64
			for _, c := range st.Cells {
				if c.Ranks == r && c.Rate == rate {
					wr = c.WholeReplayRatio
				}
			}
			if wr <= 0 {
				t.Errorf("%d ranks @ %.0f%%: whole-replay arm did not deliver", r, 100*rate)
				continue
			}
			if measured <= wr {
				t.Errorf("%d ranks @ %.0f%%: selective goodput retention %.4f not above measured whole-replay %.4f",
					r, 100*rate, measured, wr)
			}
		}
	}

	// The faulted cells must attribute their recovery to the selective
	// machinery: injected damage repaired by chunk retransmits, not
	// whole-transfer replays alone.
	var sawChunkRepair bool
	for _, c := range st.Cells {
		if c.Rate == 0 || !c.Delivered {
			continue
		}
		if !c.Recovery.Faulted() {
			t.Errorf("%d ranks @ %.0f%%: no injected faults recorded: %+v", c.Ranks, 100*c.Rate, c.Recovery)
		}
		if c.Recovery.ChunkRetransmits > 0 {
			sawChunkRepair = true
		}
		if c.TailInflation < 1 {
			t.Errorf("%d ranks @ %.0f%%: p99 tail deflated ×%.3f under faults", c.Ranks, 100*c.Rate, c.TailInflation)
		}
	}
	if !sawChunkRepair {
		t.Error("no faulted cell recorded selective chunk retransmits")
	}

	// Model panel: selective retention beats whole-replay at every
	// lossy rate and both degrade monotonically.
	prev := ChaosScaleModelRow{SelectiveRatio: 1, WholeReplayRatio: 1}
	for i, m := range st.Model {
		if m.Rate == 0 {
			continue
		}
		if m.SelectiveRatio <= m.WholeReplayRatio {
			t.Errorf("rate %.0f%%: selective retention %.4f not above whole-replay %.4f",
				100*m.Rate, m.SelectiveRatio, m.WholeReplayRatio)
		}
		if m.SelectiveRatio >= prev.SelectiveRatio || m.WholeReplayRatio >= prev.WholeReplayRatio {
			t.Errorf("rate %.0f%% (row %d): retention not strictly degrading (%.4f/%.4f after %.4f/%.4f)",
				100*m.Rate, i, m.SelectiveRatio, m.WholeReplayRatio, prev.SelectiveRatio, prev.WholeReplayRatio)
		}
		// The default retry policy retries until the budget clock runs
		// out, so the modeled delivery probability can be 1 exactly.
		if m.DeliveryProb <= 0 || m.DeliveryProb > 1 {
			t.Errorf("rate %.0f%%: delivery prob %g outside (0,1]", 100*m.Rate, m.DeliveryProb)
		}
		prev = m
	}

	var buf bytes.Buffer
	if err := st.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"E21", "goodput", "chunk retx", "whole-replay retention", "fastest under faults"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
