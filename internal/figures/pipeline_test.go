package figures

import (
	"bytes"
	"strings"
	"testing"
)

// pipeCache builds the study once: it runs real protocol worlds per
// cell, so the shape assertions share one build.
var pipeCache *PipelineStudy

func pipelineStudyFor(t *testing.T) *PipelineStudy {
	t.Helper()
	if pipeCache != nil {
		return pipeCache
	}
	st, err := BuildPipelineStudy("skx-impi",
		[]int64{256 << 10, 512 << 10},
		[]int64{256 << 10, 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	pipeCache = st
	return st
}

// TestPipelineStudyShape pins E16's headline relations: the pipelined
// path beats the serial chunk loop on every cell, never beats the
// fused upper bound, and the acceptance floor — ≥1.3x on every-other
// doubles at the rendezvous size — holds.
func TestPipelineStudyShape(t *testing.T) {
	st := pipelineStudyFor(t)
	if len(st.Panels) == 0 {
		t.Fatal("no panels")
	}
	for _, p := range st.Panels {
		for i := range p.Chunks {
			if p.Pipelined.Y[i] <= p.Serial.Y[i] {
				t.Errorf("%s chunk %d: pipelined %.2f GB/s not above serial %.2f",
					p.Layout, p.Chunks[i], p.Pipelined.Y[i], p.Serial.Y[i])
			}
			if p.Pipelined.Y[i] > p.Fused.Y[i]*1.02 {
				t.Errorf("%s chunk %d: pipelined %.2f GB/s above the fused bound %.2f",
					p.Layout, p.Chunks[i], p.Pipelined.Y[i], p.Fused.Y[i])
			}
			if p.Overlap[i] <= 0 {
				t.Errorf("%s chunk %d: overlap attribution %.3f not positive", p.Layout, p.Chunks[i], p.Overlap[i])
			}
		}
	}
	if sp := st.PipelinedSpeedupAt("everyOther", 512<<10); sp < 1.3 {
		t.Errorf("everyOther pipelined speedup %.2fx, want >= 1.3x", sp)
	}
}

// TestPipelineStudyAttribution pins that every pipelined cell carries
// its chunk attribution: the whole payload through PipelinedOps, and
// no cursor fallback.
func TestPipelineStudyAttribution(t *testing.T) {
	st := pipelineStudyFor(t)
	for _, p := range st.Panels {
		for i, d := range p.Stats {
			if d.PipelinedBytes != st.Bytes {
				t.Errorf("%s chunk %d: pipelined bytes %d, want %d", p.Layout, p.Chunks[i], d.PipelinedBytes, st.Bytes)
			}
			want := (st.Bytes + p.Chunks[i] - 1) / p.Chunks[i]
			if d.PipelinedOps != want {
				t.Errorf("%s chunk %d: pipelined chunks %d, want %d", p.Layout, p.Chunks[i], d.PipelinedOps, want)
			}
			if d.CursorOps != 0 {
				t.Errorf("%s chunk %d: %d cursor fallbacks on the pipelined path", p.Layout, p.Chunks[i], d.CursorOps)
			}
		}
	}
	for i, d := range st.Bcast.Stats {
		if d.PipelinedOps == 0 || d.PipelinedBytes == 0 {
			t.Errorf("bcast size %d: no pipelined attribution (%v)", st.Bcast.Sizes[i], d)
		}
	}
}

// TestPipelineStudyBcast pins the collective panel: the pipelined
// scatter+allgather must beat the binomial tree at 8 ranks on every
// swept size.
func TestPipelineStudyBcast(t *testing.T) {
	st := pipelineStudyFor(t)
	b := st.Bcast
	if len(b.Sizes) == 0 {
		t.Fatal("no bcast sizes")
	}
	for i, n := range b.Sizes {
		if b.Pipelined.Y[i] >= b.Tree.Y[i] {
			t.Errorf("bcast %d B: pipelined %.3gs not below tree %.3gs", n, b.Pipelined.Y[i], b.Tree.Y[i])
		}
	}
}

func TestPipelineStudyRender(t *testing.T) {
	st := pipelineStudyFor(t)
	var out bytes.Buffer
	if err := st.Render(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"E16", "pipelined", "serial", "fused", "overlap", "scatter+allgather"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
