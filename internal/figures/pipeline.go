package figures

import (
	"fmt"
	"io"

	"repro/internal/buf"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/plot"
	"repro/internal/stats"
)

// PipelineStudy is E16: the software-pipelined chunk engine against
// the serial chunk loop and the fused rendezvous, across the paper's
// layouts and a sweep of internal chunk sizes, on the virtual clock.
//
// Each p2p panel fixes the paper's rendezvous-sized message and sweeps
// the internal chunk size, comparing three protocol paths moving the
// same typed payload between two ranks:
//
//   - serial: SendType — the measured installations' chunk loop, pack
//     then inject per chunk with no overlap (§2.3);
//   - pipelined: SendpType — the chunk-slot pipeline, pack of chunk
//     k+1 overlapped against the injection of chunk k through the
//     bounded slot ring (memsim.PipelinedChunkCost);
//   - fused: SendvType — the zero-copy rendezvous, one pass straight
//     into the receiver's buffer (no chunking at all), the upper
//     bound the pipeline approaches from below.
//
// The collective panel compares the pipelined scatter+allgather
// broadcast against the binomial tree at 8 ranks across message
// sizes. Every pipelined cell carries its PlanStats delta — the
// PipelinedOps/PipelinedBytes chunk attribution — plus the modeled
// overlap fraction (1 - pipelined/serial).
type PipelineStudy struct {
	Profile *perfmodel.Profile
	// Bytes is the fixed p2p message size of the chunk-size sweep.
	Bytes int64

	Panels []PipelinePanel
	Bcast  PipelineBcastPanel
}

// PipelinePanel is one layout's serial/pipelined/fused comparison
// across chunk sizes.
type PipelinePanel struct {
	Layout string
	Chunks []int64 // swept internal chunk sizes

	Serial, Pipelined, Fused *stats.Series // GB/s against chunk size

	// Overlap is the realised overlap fraction per chunk size:
	// 1 - pipelined/serial on the virtual clock.
	Overlap []float64
	// Stats is the plan-counter delta of each pipelined cell; it must
	// attribute the payload to PipelinedOps/PipelinedBytes.
	Stats []datatype.PlanStats
}

// PipelineBcastPanel compares BcastType's pipelined scatter+allgather
// schedule against the binomial tree at a fixed world size.
type PipelineBcastPanel struct {
	Ranks int
	Sizes []int64

	Tree, Pipelined *stats.Series // completion seconds against size

	Overlap []float64
	Stats   []datatype.PlanStats
}

// pipelineGeometries are the swept layouts: the canonical
// every-other-double and the 64-element blocked variant (§4.7's
// block-size axis).
var pipelineGeometries = []struct {
	name          string
	block, stride int
}{
	{"everyOther", 1, 2},
	{"blocked64", 64, 128},
}

// BuildPipelineStudy measures the study for one profile. chunkSizes
// sweeps the internal chunk; bcastSizes the collective panel's message
// sizes. Zero-length slices select the defaults.
func BuildPipelineStudy(profileName string, chunkSizes, bcastSizes []int64) (*PipelineStudy, error) {
	prof, err := perfmodel.ByName(profileName)
	if err != nil {
		return nil, err
	}
	if len(chunkSizes) == 0 {
		chunkSizes = []int64{128 << 10, 256 << 10, 512 << 10, 1 << 20}
	}
	if len(bcastSizes) == 0 {
		bcastSizes = []int64{256 << 10, 1 << 20, 4 << 20}
	}
	st := &PipelineStudy{Profile: prof, Bytes: 4 << 20}
	for _, g := range pipelineGeometries {
		panel := PipelinePanel{
			Layout:    g.name,
			Serial:    &stats.Series{Label: "serial chunk loop (SendType)"},
			Pipelined: &stats.Series{Label: "pipelined slot ring (SendpType)"},
			Fused:     &stats.Series{Label: "fused zero-copy (SendvType)"},
		}
		for _, cs := range chunkSizes {
			if err := panel.measure(profileName, st.Bytes, g.block, g.stride, cs); err != nil {
				return nil, err
			}
			panel.Chunks = append(panel.Chunks, cs)
		}
		st.Panels = append(st.Panels, panel)
	}
	if err := st.Bcast.measure(profileName, bcastSizes); err != nil {
		return nil, err
	}
	return st, nil
}

// measure fills one (layout, chunk size) cell: the same typed payload
// under the three protocol paths, timed on the sender's virtual clock
// with cold caches so every cell prices the same way. The chunk size
// is a hierarchy calibration, so each cell runs on a profile copy
// with Mem.InternalChunk swept.
func (p *PipelinePanel) measure(profileName string, n int64, block, stride int, chunk int64) error {
	ty, err := vectorFor(n, block, stride)
	if err != nil {
		return err
	}
	prof, err := perfmodel.ByName(profileName)
	if err != nil {
		return err
	}
	prof.Mem.InternalChunk = chunk
	run := func(send func(*mpi.Comm, buf.Block) error) (float64, error) {
		var elapsed float64
		err := mpi.Run(2, mpi.Options{Profile: prof, ColdCaches: true}, func(c *mpi.Comm) error {
			if c.Rank() == 0 {
				src := buf.Alloc(int(ty.Extent()))
				if err := send(c, src); err != nil {
					return err
				}
				elapsed = c.Wtime()
				return nil
			}
			dst := buf.Alloc(int(ty.Size()))
			_, err := c.Recv(dst, 0, 0)
			return err
		})
		return elapsed, err
	}
	serial, err := run(func(c *mpi.Comm, src buf.Block) error { return c.SendType(src, 1, ty, 1, 0) })
	if err != nil {
		return err
	}
	before := datatype.PlanStatsSnapshot()
	piped, err := run(func(c *mpi.Comm, src buf.Block) error { return c.SendpType(src, 1, ty, 1, 0) })
	if err != nil {
		return err
	}
	p.Stats = append(p.Stats, datatype.PlanStatsSnapshot().Sub(before))
	fused, err := run(func(c *mpi.Comm, src buf.Block) error { return c.SendvType(src, 1, ty, 1, 0) })
	if err != nil {
		return err
	}
	bw := func(secs float64) float64 {
		if secs <= 0 {
			return 0
		}
		return float64(ty.Size()) / secs / 1e9
	}
	p.Serial.Append(float64(chunk), bw(serial))
	p.Pipelined.Append(float64(chunk), bw(piped))
	p.Fused.Append(float64(chunk), bw(fused))
	overlap := 0.0
	if serial > 0 {
		overlap = 1 - piped/serial
	}
	p.Overlap = append(p.Overlap, overlap)
	return nil
}

// measure fills the collective panel: BcastType at 8 ranks, pipelined
// scatter+allgather against the binomial tree.
func (b *PipelineBcastPanel) measure(profileName string, sizes []int64) error {
	b.Ranks = 8
	b.Tree = &stats.Series{Label: "binomial tree"}
	b.Pipelined = &stats.Series{Label: "pipelined scatter+allgather"}
	for _, n := range sizes {
		ty, err := vectorFor(n, 1, 2)
		if err != nil {
			return err
		}
		run := func() (float64, error) {
			prof, err := perfmodel.ByName(profileName)
			if err != nil {
				return 0, err
			}
			var worst float64
			err = mpi.Run(b.Ranks, mpi.Options{Profile: prof, ColdCaches: true}, func(c *mpi.Comm) error {
				blk := buf.Alloc(int(ty.Extent()))
				if c.Rank() == 0 {
					blk.FillPattern(0x2F)
				}
				if err := c.BcastType(blk, 1, ty, 0); err != nil {
					return err
				}
				c.Barrier()
				if c.Rank() == 0 {
					worst = c.Wtime()
				}
				return nil
			})
			return worst, err
		}
		before := datatype.PlanStatsSnapshot()
		piped, err := run()
		if err != nil {
			return err
		}
		b.Stats = append(b.Stats, datatype.PlanStatsSnapshot().Sub(before))

		datatype.SetPipelinedChunks(false)
		tree, err := run()
		datatype.SetPipelinedChunks(true)
		if err != nil {
			return err
		}
		b.Sizes = append(b.Sizes, n)
		b.Tree.Append(float64(n), tree)
		b.Pipelined.Append(float64(n), piped)
		overlap := 0.0
		if tree > 0 {
			overlap = 1 - piped/tree
		}
		b.Overlap = append(b.Overlap, overlap)
	}
	return nil
}

// PipelinedSpeedupAt returns serial/pipelined bandwidth for the named
// layout at the chunk size closest to cs (0 when the layout is
// unknown).
func (st *PipelineStudy) PipelinedSpeedupAt(layoutName string, cs int64) float64 {
	for _, p := range st.Panels {
		if p.Layout != layoutName {
			continue
		}
		best, bestDist := 0.0, int64(-1)
		for i := range p.Chunks {
			d := p.Chunks[i] - cs
			if d < 0 {
				d = -d
			}
			if (bestDist < 0 || d < bestDist) && p.Serial.Y[i] > 0 {
				bestDist = d
				best = p.Pipelined.Y[i] / p.Serial.Y[i]
			}
		}
		return best
	}
	return 0
}

// Render prints the study: one bandwidth panel per layout across chunk
// sizes, the collective panel, and the overlap attribution per cell.
func (st *PipelineStudy) Render(w io.Writer) error {
	fmt.Fprintf(w, "== E16 pipelined chunk engine — %s (%d-byte messages, virtual clock) ==\n\n", st.Profile.Name, st.Bytes)
	for _, p := range st.Panels {
		cfg := plot.Config{
			Title:  fmt.Sprintf("%s: serial vs pipelined vs fused bandwidth (GB/s) across internal chunk sizes", p.Layout),
			XLabel: "internal chunk bytes", YLabel: "GB/s", LogX: true,
		}
		if err := plot.ASCII(w, cfg, []*stats.Series{p.Serial, p.Pipelined, p.Fused}); err != nil {
			return err
		}
		fmt.Fprintf(w, "%s per chunk size:\n", p.Layout)
		for i, cs := range p.Chunks {
			fmt.Fprintf(w, "  %9d B chunks  serial %6.2f GB/s  pipelined %6.2f GB/s  fused %6.2f GB/s  overlap %4.1f%%  %v\n",
				cs, p.Serial.Y[i], p.Pipelined.Y[i], p.Fused.Y[i], 100*p.Overlap[i], p.Stats[i])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "BcastType at %d ranks: pipelined scatter+allgather vs binomial tree (completion seconds):\n", st.Bcast.Ranks)
	for i, n := range st.Bcast.Sizes {
		speed := 0.0
		if st.Bcast.Pipelined.Y[i] > 0 {
			speed = st.Bcast.Tree.Y[i] / st.Bcast.Pipelined.Y[i]
		}
		fmt.Fprintf(w, "  %9d B  tree %.3gs  pipelined %.3gs  speedup %.2fx  overlap %4.1f%%  %v\n",
			n, st.Bcast.Tree.Y[i], st.Bcast.Pipelined.Y[i], speed, 100*st.Bcast.Overlap[i], st.Bcast.Stats[i])
	}
	fmt.Fprintln(w)
	return nil
}
