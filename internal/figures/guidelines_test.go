package figures

import (
	"strings"
	"testing"
)

func TestGuidelinesStudyRender(t *testing.T) {
	st, err := BuildGuidelinesStudy("skx-impi")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := st.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"E17 performance-guidelines verifier — skx-impi",
		"typed<=pack+send",
		"recommended<=alternatives",
		"collective<=p2p",
		"lhs plan: fused",
		"gate vs baseline:",
		"self-tuned recommender",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// skx-impi has no waivers: the study must pass the gate and every
	// tuned choice must satisfy the recommender guideline.
	if !st.Clean() {
		t.Errorf("skx-impi study failed the gate: %v", st.Fresh)
	}
	if len(st.Tuned) == 0 {
		t.Fatal("no self-tuning cells")
	}
	for _, tc := range st.Tuned {
		if !tc.Satisfied(st.Report.Tolerance) {
			t.Errorf("tuned choice %v at %d B misses the guideline (%.3g s vs best %.3g s)",
				tc.Tuned, tc.Bytes, tc.TunedTime, tc.BestTime)
		}
	}
}
