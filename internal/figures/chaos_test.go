package figures

import (
	"bytes"
	"strings"
	"testing"
)

func TestChaosStudy(t *testing.T) {
	st, err := BuildChaosStudy("skx-impi", []float64{0, 0.05}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Schemes) != 3 {
		t.Fatalf("%d schemes", len(st.Schemes))
	}
	for _, s := range st.Schemes {
		if s.Goodput.Len() != 2 || s.P99.Len() != 2 {
			t.Fatalf("%s: sweep lengths %d/%d", s.Name, s.Goodput.Len(), s.P99.Len())
		}
		if !s.Delivered[0] || s.Goodput.Y[0] <= 0 {
			t.Fatalf("%s: clean baseline failed (delivered=%v goodput=%g)",
				s.Name, s.Delivered[0], s.Goodput.Y[0])
		}
		if s.Faults[0] != 0 || s.Retries[0] != 0 {
			t.Fatalf("%s: clean baseline attributed faults (%d) or retries (%d)",
				s.Name, s.Faults[0], s.Retries[0])
		}
		// The lossy cell must actually have injected and recovered.
		if s.Delivered[1] {
			if s.Faults[1] == 0 {
				t.Fatalf("%s: lossy cell injected nothing", s.Name)
			}
			if s.Retries[1] == 0 {
				t.Fatalf("%s: lossy cell recovered without retries", s.Name)
			}
			if s.Goodput.Y[1] >= s.Goodput.Y[0] {
				t.Fatalf("%s: faults did not cost goodput (%g vs %g)",
					s.Name, s.Goodput.Y[1], s.Goodput.Y[0])
			}
			if s.P99.Y[1] <= s.P99.Y[0] {
				t.Fatalf("%s: faults did not fatten the tail (%g vs %g)",
					s.Name, s.P99.Y[1], s.P99.Y[0])
			}
		}
	}
	if len(st.Model) != 2 {
		t.Fatalf("%d model rows", len(st.Model))
	}
	if st.Model[0].Slowdown != 1 || st.Model[0].DeliveryProb != 1 {
		t.Fatalf("clean model row %+v", st.Model[0])
	}
	if st.Model[1].Slowdown <= 1 || st.Model[1].DeliveryProb >= 1 {
		t.Fatalf("lossy model row %+v", st.Model[1])
	}
	// The observed columns close the loop: the clean row calibrates to
	// zero, the lossy row inverts its measured retries back to a leg
	// loss within the configured resend-class rate and an inflation
	// above one.
	if st.Model[0].ObservedLegLoss != 0 || st.Model[0].ObservedSlowdown != 1 {
		t.Fatalf("clean observed columns %+v", st.Model[0])
	}
	if got := st.Model[1].ObservedLegLoss; got <= 0 || got > 0.05 {
		t.Fatalf("observed leg loss %g, want in (0, 0.05]", got)
	}
	if st.Model[1].ObservedSlowdown <= 1 {
		t.Fatalf("observed slowdown %g, want > 1", st.Model[1].ObservedSlowdown)
	}
	// The PR's acceptance column: at a lossy rate the pipelined
	// engine's predicted goodput retention under selective chunk
	// recovery sits strictly above the whole-transfer-replay baseline.
	if m := st.Model[0]; m.SelectiveRetention != 1 || m.WholeReplayRetention != 1 || m.SelectiveGain != 1 {
		t.Fatalf("clean retention columns %+v", m)
	}
	if m := st.Model[1]; !(m.SelectiveRetention > m.WholeReplayRetention) || m.SelectiveGain <= 1 {
		t.Fatalf("lossy retention columns: selective %.4f vs whole-replay %.4f (gain %.3f), want selective strictly above",
			m.SelectiveRetention, m.WholeReplayRetention, m.SelectiveGain)
	}

	var out bytes.Buffer
	if err := st.Render(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E18", "goodput", "p99", "reliability model", "fastest under faults"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, out.String())
		}
	}
}

func TestChaosStudyDeterministic(t *testing.T) {
	a, err := BuildChaosStudy("skx-impi", []float64{0.08}, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildChaosStudy("skx-impi", []float64{0.08}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Schemes {
		if a.Schemes[i].Goodput.Y[0] != b.Schemes[i].Goodput.Y[0] ||
			a.Schemes[i].Retries[0] != b.Schemes[i].Retries[0] {
			t.Fatalf("%s not deterministic: %v/%d vs %v/%d", a.Schemes[i].Name,
				a.Schemes[i].Goodput.Y[0], a.Schemes[i].Retries[0],
				b.Schemes[i].Goodput.Y[0], b.Schemes[i].Retries[0])
		}
	}
}
