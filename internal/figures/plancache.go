package figures

import (
	"fmt"
	"io"
	"time"

	"repro/internal/buf"
	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/harness"
	"repro/internal/perfmodel"
	"repro/internal/plot"
	"repro/internal/stats"
)

// PlanCacheStudy is E13: the steady-state value of the pack-plan
// cache and the compiled-chunked streaming tier, measured in real
// (wall-clock) time on the canonical every-other-double layout.
//
// The cold curve pays the full per-message software stack the paper
// blames for non-contiguous overhead — type construction, commit-time
// flattening, plan compilation — on every pack; the warm curve reuses
// one committed type so every pack is a plan-cache hit executing the
// stride kernel. The chunked pair compares 64 KiB streaming through
// the interpreting cursor against the same stream on the compiled
// kernels (tier 2).
type PlanCacheStudy struct {
	Profile *perfmodel.Profile
	Sizes   []int64
	Reps    int

	// Cold and Warm are pack bandwidths (GB/s): cold rebuilds and
	// recompiles the type per pack, warm runs entirely from the plan
	// cache.
	Cold, Warm *stats.Series

	// ChunkCursor and ChunkCompiled are chunked-streaming bandwidths
	// (GB/s) through the interpreting cursor and the compiled-chunked
	// tier.
	ChunkCursor, ChunkCompiled *stats.Series

	// HitRates is the warm pass's plan-cache hit rate per size, and
	// WarmStats the full counter deltas (which must show zero
	// compilations in steady state).
	HitRates  []float64
	WarmStats []datatype.PlanStats
}

// planCacheChunk is the streaming granularity of the chunked panels,
// matching the profiles' internal chunk order of magnitude.
const planCacheChunk = 64 << 10

// BuildPlanCacheStudy measures cold-vs-warm plan-cache pack bandwidth
// and cursor-vs-compiled chunked streaming for each size. Sizes above
// opt.MaxRealBytes are skipped: this study times real byte movement.
func BuildPlanCacheStudy(profileName string, sizes []int64, opt harness.Options) (*PlanCacheStudy, error) {
	prof, err := perfmodel.ByName(profileName)
	if err != nil {
		return nil, err
	}
	if opt.Reps == 0 {
		opt.Reps = 20
	}
	if opt.MaxRealBytes == 0 {
		opt.MaxRealBytes = 16 << 20
	}
	st := &PlanCacheStudy{
		Profile:       prof,
		Reps:          opt.Reps,
		Cold:          &stats.Series{Label: "cold (construct+commit+compile+pack)"},
		Warm:          &stats.Series{Label: "warm (plan-cache hit)"},
		ChunkCursor:   &stats.Series{Label: "chunked, cursor"},
		ChunkCompiled: &stats.Series{Label: "chunked, compiled"},
	}
	for _, n := range sizes {
		if n > opt.MaxRealBytes || n < 2*core.ElemSize {
			continue
		}
		if err := st.measureSize(n, opt.Reps); err != nil {
			return nil, err
		}
		st.Sizes = append(st.Sizes, n)
	}
	if len(st.Sizes) == 0 {
		return nil, fmt.Errorf("figures: no plan-cache sizes at or under MaxRealBytes=%d", opt.MaxRealBytes)
	}
	return st, nil
}

// measureSize runs the four measurements for one payload size.
func (st *PlanCacheStudy) measureSize(n int64, reps int) error {
	count := int(n / core.ElemSize)
	ty, err := datatype.Vector(count, 1, 2, datatype.Float64)
	if err != nil {
		return err
	}
	if err := ty.Commit(); err != nil {
		return err
	}
	src := buf.Alloc(int(ty.Extent()))
	src.FillPattern(0x5C)
	dst := buf.Alloc(int(ty.Size()))

	// Cold: the whole software stack per pack.
	coldStart := time.Now()
	for r := 0; r < reps; r++ {
		cty, err := datatype.Vector(count, 1, 2, datatype.Float64)
		if err != nil {
			return err
		}
		if err := cty.Commit(); err != nil {
			return err
		}
		plan, err := cty.CompilePlan(1)
		if err != nil {
			return err
		}
		if _, err := plan.Pack(src, dst); err != nil {
			return err
		}
	}
	cold := time.Since(coldStart).Seconds()

	// Warm: steady state, every pack a cache hit.
	if _, err := ty.CompilePlan(1); err != nil { // prime the count binding
		return err
	}
	warmBefore := datatype.PlanStatsSnapshot()
	warmStart := time.Now()
	for r := 0; r < reps; r++ {
		plan, err := ty.CompilePlan(1)
		if err != nil {
			return err
		}
		if _, err := plan.Pack(src, dst); err != nil {
			return err
		}
	}
	warm := time.Since(warmStart).Seconds()
	delta := datatype.PlanStatsSnapshot().Sub(warmBefore)

	// Chunked streaming: cursor fallback vs compiled-chunked tier.
	chunked := func(compiled bool) (float64, error) {
		datatype.SetChunkedCompiled(compiled)
		defer datatype.SetChunkedCompiled(true)
		start := time.Now()
		for r := 0; r < reps; r++ {
			p, err := ty.NewPacker(src, 1)
			if err != nil {
				return 0, err
			}
			for p.Remaining() > 0 {
				sz := p.Remaining()
				if sz > planCacheChunk {
					sz = planCacheChunk
				}
				if _, err := p.Pack(dst.Slice(0, int(sz))); err != nil {
					return 0, err
				}
			}
		}
		return time.Since(start).Seconds(), nil
	}
	cursorT, err := chunked(false)
	if err != nil {
		return err
	}
	compiledT, err := chunked(true)
	if err != nil {
		return err
	}

	moved := float64(n) * float64(reps)
	bw := func(secs float64) float64 {
		if secs <= 0 {
			return 0
		}
		return moved / secs / 1e9
	}
	st.Cold.Append(float64(n), bw(cold))
	st.Warm.Append(float64(n), bw(warm))
	st.ChunkCursor.Append(float64(n), bw(cursorT))
	st.ChunkCompiled.Append(float64(n), bw(compiledT))
	st.HitRates = append(st.HitRates, delta.HitRate())
	st.WarmStats = append(st.WarmStats, delta)
	return nil
}

// Render prints the two bandwidth panels and the per-size cache
// counters.
func (st *PlanCacheStudy) Render(w io.Writer) error {
	fmt.Fprintf(w, "== E13 plan-cache study — %s (%d reps, wall time) ==\n\n", st.Profile.Name, st.Reps)
	cfg := plot.Config{Title: "whole-message pack bandwidth, cold vs warm plan cache (GB/s)", XLabel: "message bytes", YLabel: "GB/s", LogX: true}
	if err := plot.ASCII(w, cfg, []*stats.Series{st.Cold, st.Warm}); err != nil {
		return err
	}
	cfg.Title = "chunked streaming bandwidth, cursor vs compiled kernels (GB/s)"
	if err := plot.ASCII(w, cfg, []*stats.Series{st.ChunkCursor, st.ChunkCompiled}); err != nil {
		return err
	}
	fmt.Fprintln(w, "plan-cache behaviour per size (warm sweep):")
	for i, n := range st.Sizes {
		fmt.Fprintf(w, "  %12d B  hit rate %.2f  %v\n", n, st.HitRates[i], st.WarmStats[i])
	}
	return nil
}

// WarmSpeedupAt returns warm/cold bandwidth at the size closest to n.
func (st *PlanCacheStudy) WarmSpeedupAt(n int64) float64 {
	best, bestDist := 0.0, int64(-1)
	for i := range st.Sizes {
		d := st.Sizes[i] - n
		if d < 0 {
			d = -d
		}
		if (bestDist < 0 || d < bestDist) && st.Cold.Y[i] > 0 {
			bestDist = d
			best = st.Warm.Y[i] / st.Cold.Y[i]
		}
	}
	return best
}

// SteadyStateClean reports whether every warm sweep ran without a
// single program compilation and with a perfect (or empty) hit rate.
func (st *PlanCacheStudy) SteadyStateClean() bool {
	for _, d := range st.WarmStats {
		if d.Compiled != 0 || d.PlanMisses != 0 {
			return false
		}
	}
	return true
}
