package figures

import (
	"bytes"
	"strings"
	"testing"
)

// TestScaleStudy runs a compact grid including the acceptance cell
// (256 ranks × 4 jobs × 4 in flight → ≥1000 concurrent typed
// transfers across 4 communicators) and checks the panels and the
// attribution render.
func TestScaleStudy(t *testing.T) {
	grid := []ScaleCellSpec{
		{Ranks: 64, Jobs: 2, InFlight: 2, Rounds: 1},
		{Ranks: 256, Jobs: 4, InFlight: 4, Rounds: 1},
	}
	st, err := BuildScaleStudy("skx-impi", grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Cells) != 2 || st.Throughput.Len() != 2 || st.Tail.Len() != 2 {
		t.Fatalf("cell/panel lengths: %d cells, %d/%d points", len(st.Cells), st.Throughput.Len(), st.Tail.Len())
	}
	if got := st.PeakInFlight(); got < 1000 {
		t.Errorf("peak in flight %d, acceptance wants ≥1000", got)
	}
	for _, c := range st.Cells {
		if c.AggregateGBs <= 0 || c.P99 <= 0 {
			t.Errorf("cell %d ranks: degenerate throughput %g or tail %g", c.Ranks, c.AggregateGBs, c.P99)
		}
		if c.Matching.FastTakes == 0 {
			t.Errorf("cell %d ranks: no fast-path matching attribution", c.Ranks)
		}
		if want := int64(c.Ranks * c.InFlight * c.Rounds); c.Transfers != want {
			t.Errorf("cell %d ranks: %d transfers, want %d", c.Ranks, c.Transfers, want)
		}
	}
	var buf bytes.Buffer
	if err := st.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"E20", "aggregate payload rate", "p99 per-transfer completion", "shard queues live", "eager adaptations"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
