package figures

import (
	"strings"
	"testing"

	"repro/internal/datatype"
	"repro/internal/harness"
)

// TestCanonStudy pins the E19 contract: the collapsing families resolve
// to block kernels with positive run-count reductions and regular-class
// registry keys, every packed byte of their canon sweeps lands on
// BlockOps, the irregular control keeps its gather table, size bounds
// are honoured, and Render reports the per-size attribution.
func TestCanonStudy(t *testing.T) {
	opt := harness.Options{Reps: 3, MaxRealBytes: 1 << 20}
	st, err := BuildCanonStudy([]int64{8 << 10, 128 << 10, 512 << 10, 64 << 20}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Panels) != len(canonGeometries) {
		t.Fatalf("panels = %d, want %d", len(st.Panels), len(canonGeometries))
	}
	for pi, p := range st.Panels {
		g := canonGeometries[pi]
		if len(p.Sizes) != 2 {
			t.Fatalf("%s kept sizes %v, want the two inside [min,max]", p.Layout, p.Sizes)
		}
		for i, n := range p.Sizes {
			if p.Canon.Y[i] <= 0 || p.Raw.Y[i] <= 0 {
				t.Fatalf("%s: non-positive bandwidth at %d B", p.Layout, n)
			}
			d := p.Stats[i]
			if g.collapses {
				if p.RawRuns[i] <= int64(p.Dims[i]) || p.Dims[i] < 2 {
					t.Errorf("%s at %d B: runs %d dims %d, want a real collapse",
						p.Layout, n, p.RawRuns[i], p.Dims[i])
				}
				if !strings.Contains(p.Classes[i], "regular") {
					t.Errorf("%s at %d B: class %q, want a regular registry key", p.Layout, n, p.Classes[i])
				}
				if !strings.Contains(p.Forms[i], "canon{block") {
					t.Errorf("%s at %d B: form %q, want a block canonical form", p.Layout, n, p.Forms[i])
				}
				if d.BlockOps < int64(st.Reps) || d.GatherOps != 0 {
					t.Errorf("%s at %d B: canon sweep block=%d gather=%d, want all packs on the block kernel",
						p.Layout, n, d.BlockOps, d.GatherOps)
				}
			} else {
				if p.RawRuns[i] != 0 || p.Dims[i] != 0 {
					t.Errorf("%s at %d B: control collapsed (runs %d dims %d)",
						p.Layout, n, p.RawRuns[i], p.Dims[i])
				}
				if !strings.Contains(p.Forms[i], "canon{gather") {
					t.Errorf("%s at %d B: form %q, want the gather fallback", p.Layout, n, p.Forms[i])
				}
				if d.GatherOps < int64(st.Reps) {
					t.Errorf("%s at %d B: control ran %d gather ops, want >= %d",
						p.Layout, n, d.GatherOps, st.Reps)
				}
			}
		}
	}
	if st.CanonSpeedupAt("hvecOfVec8B", 512<<10) <= 0 {
		t.Error("canon speedup not computable")
	}
	if !datatype.NormalizeEnabled() {
		t.Error("study left the normalization gate disabled")
	}
	var sb strings.Builder
	if err := st.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"E19", "normalized (canonical program)", "canon/raw", "canon{block"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q", want)
		}
	}
}
