package figures

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
)

// shapeOpts runs everything virtual and with few reps: shape tests
// assert relationships between model times, which are deterministic,
// so speed matters more than sample counts.
func shapeOpts() harness.Options {
	o := harness.DefaultOptions()
	o.Reps = 2
	o.MaxRealBytes = 1 // everything virtual
	o.Verify = false
	return o
}

// buildFig caches one figure per profile for all shape tests.
var figCache = map[string]*Figure{}

func figureFor(t *testing.T, profile string) *Figure {
	t.Helper()
	if f, ok := figCache[profile]; ok {
		return f
	}
	sizes := []int64{1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000}
	f, err := Build(profile, sizes, shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	figCache[profile] = f
	return f
}

func slowdown(t *testing.T, f *Figure, s core.Scheme, n int64) float64 {
	t.Helper()
	v, err := f.SchemeSlowdownAt(s, n)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// E1/§2.2: manual copying costs ≈3× the reference for large messages.
func TestShapeCopyingFactorThree(t *testing.T) {
	f := figureFor(t, "skx-impi")
	for _, n := range []int64{10_000_000, 100_000_000, 1_000_000_000} {
		sd := slowdown(t, f, core.Copying, n)
		if sd < 2.3 || sd > 4.2 {
			t.Errorf("copying slowdown at %d = %.2f, paper expects ≈3", n, sd)
		}
	}
}

// §4.3: packing a vector datatype performs the same as manual copying,
// everywhere.
func TestShapePackVectorTracksCopying(t *testing.T) {
	for _, prof := range []string{"skx-impi", "skx-mvapich", "ls5-cray", "knl-impi"} {
		f := figureFor(t, prof)
		for _, n := range f.Sizes {
			pv := slowdown(t, f, core.PackVector, n)
			cp := slowdown(t, f, core.Copying, n)
			// At tiny sizes the single extra MPI_Pack call is visible
			// (≈1 µs on KNL), so the tolerance is looser there.
			tol := 0.07
			if n < 100_000 {
				tol = 0.16
			}
			if pv < cp*(1-tol) || pv > cp*(1+tol) {
				t.Errorf("%s at %d: packing(v) %.3f vs copying %.3f — must track within %d%%", prof, n, pv, cp, int(tol*100))
			}
		}
	}
}

// §4.1: derived-type sends track copying up to tens of MB, then
// degrade; packing(v) does not degrade.
func TestShapeDerivedTypeDegradesAtLarge(t *testing.T) {
	f := figureFor(t, "skx-impi")
	mid := slowdown(t, f, core.VectorType, 10_000_000)
	cpMid := slowdown(t, f, core.Copying, 10_000_000)
	if mid > cpMid*1.15 {
		t.Errorf("vector type at 10 MB (%.2f) should track copying (%.2f)", mid, cpMid)
	}
	big := slowdown(t, f, core.VectorType, 1_000_000_000)
	cpBig := slowdown(t, f, core.Copying, 1_000_000_000)
	if big < cpBig*1.3 {
		t.Errorf("vector type at 1 GB (%.2f) should degrade well past copying (%.2f)", big, cpBig)
	}
	pvBig := slowdown(t, f, core.PackVector, 1_000_000_000)
	if pvBig > cpBig*1.07 {
		t.Errorf("packing(v) at 1 GB (%.2f) must not degrade (copying %.2f)", pvBig, cpBig)
	}
}

// §2.3: vector and subarray construct the same layout and perform the
// same.
func TestShapeSubarrayMatchesVector(t *testing.T) {
	f := figureFor(t, "skx-impi")
	for _, n := range f.Sizes {
		v := slowdown(t, f, core.VectorType, n)
		s := slowdown(t, f, core.Subarray, n)
		if s < v*0.95 || s > v*1.05 {
			t.Errorf("at %d: subarray %.3f vs vector %.3f", n, s, v)
		}
	}
}

// §4.2: buffered sends perform worse than plain ones even at
// intermediate sizes, and raising a fully allocated user buffer does
// not rescue large messages.
func TestShapeBufferedWorse(t *testing.T) {
	for _, prof := range []string{"skx-impi", "skx-mvapich", "ls5-cray", "knl-impi"} {
		f := figureFor(t, prof)
		for _, n := range []int64{1_000_000, 10_000_000, 1_000_000_000} {
			bs := slowdown(t, f, core.Buffered, n)
			cp := slowdown(t, f, core.Copying, n)
			if bs <= cp {
				t.Errorf("%s at %d: buffered (%.2f) not worse than copying (%.2f)", prof, n, bs, cp)
			}
		}
	}
}

// §4.4: one-sided transfer is slow for small messages (fence
// overhead), competitive at intermediate sizes on Intel MPI, and
// rarely competitive at large sizes.
func TestShapeOneSidedSmallSlow(t *testing.T) {
	f := figureFor(t, "skx-impi")
	small := slowdown(t, f, core.OneSided, 1_000)
	if small < 1.8 {
		t.Errorf("one-sided at 1 KB = %.2f, expect ≥1.8 (fence overhead)", small)
	}
	mid := slowdown(t, f, core.OneSided, 1_000_000)
	cp := slowdown(t, f, core.Copying, 1_000_000)
	if mid > cp*1.6 {
		t.Errorf("one-sided at 1 MB (%.2f) should be competitive on impi (copying %.2f)", mid, cp)
	}
	big := slowdown(t, f, core.OneSided, 1_000_000_000)
	vec := slowdown(t, f, core.VectorType, 1_000_000_000)
	if big < vec {
		t.Errorf("one-sided at 1 GB (%.2f) should not beat the derived type (%.2f) on impi", big, vec)
	}
}

// §4.4: under MVAPICH2 one-sided is "several factors slower" at
// intermediate sizes.
func TestShapeMvapichOneSidedPenalty(t *testing.T) {
	impi := figureFor(t, "skx-impi")
	mva := figureFor(t, "skx-mvapich")
	n := int64(1_000_000)
	a := slowdown(t, impi, core.OneSided, n)
	b := slowdown(t, mva, core.OneSided, n)
	if b < a*1.5 {
		t.Errorf("mvapich one-sided at 1 MB (%.2f) should be well above impi (%.2f)", b, a)
	}
	if b < 2*slowdown(t, mva, core.Copying, n) {
		t.Errorf("mvapich one-sided (%.2f) should be several factors over copying (%.2f)",
			b, slowdown(t, mva, core.Copying, n))
	}
}

// §4.8: on Cray, large one-sided is on par with the derived types.
func TestShapeCrayOneSidedParity(t *testing.T) {
	f := figureFor(t, "ls5-cray")
	n := int64(1_000_000_000)
	os := slowdown(t, f, core.OneSided, n)
	vec := slowdown(t, f, core.VectorType, n)
	if os < vec*0.8 || os > vec*1.25 {
		t.Errorf("cray one-sided at 1 GB (%.2f) should be at parity with vector (%.2f)", os, vec)
	}
}

// §2.6: element-wise packing performs predictably very badly.
func TestShapePackElementWorst(t *testing.T) {
	for _, prof := range []string{"skx-impi", "knl-impi"} {
		f := figureFor(t, prof)
		for _, n := range []int64{1_000_000, 100_000_000} {
			pe := slowdown(t, f, core.PackElement, n)
			for _, other := range []core.Scheme{core.Copying, core.VectorType, core.PackVector, core.Buffered} {
				if o := slowdown(t, f, other, n); pe <= o {
					t.Errorf("%s at %d: packing(e) (%.2f) not worse than %v (%.2f)", prof, n, pe, other, o)
				}
			}
		}
	}
}

// §4.8: KNL has the same network peak but weak cores hamper buffer
// construction.
func TestShapeKnlCoreBound(t *testing.T) {
	skx := figureFor(t, "skx-impi")
	knl := figureFor(t, "knl-impi")
	n := int64(1_000_000_000)
	// Reference peak bandwidth within ~25%: the paper's "same peak
	// network performance". Peak = max over the sweep, since the very
	// largest KNL points pay the memory-bound injection.
	peak := func(f *Figure) float64 {
		best := 0.0
		for _, y := range f.Bandwidth[0].Y {
			if y > best {
				best = y
			}
		}
		return best
	}
	skxBW, knlBW := peak(skx), peak(knl)
	if knlBW < skxBW*0.7 || knlBW > skxBW*1.2 {
		t.Errorf("KNL reference peak %.1f GB/s vs SKX %.1f GB/s — paper: same peak", knlBW, skxBW)
	}
	// Copying slowdown at least twice as bad.
	if k, s := slowdown(t, knl, core.Copying, n), slowdown(t, skx, core.Copying, n); k < 2*s {
		t.Errorf("KNL copying slowdown (%.2f) should dwarf SKX (%.2f)", k, s)
	}
}

// §5: conclusion — packing(v) is the consistently best non-contiguous
// scheme at the largest sizes, on every installation.
func TestShapePackVectorWinsLarge(t *testing.T) {
	for _, prof := range []string{"skx-impi", "skx-mvapich", "ls5-cray", "knl-impi"} {
		f := figureFor(t, prof)
		n := int64(1_000_000_000)
		pv := slowdown(t, f, core.PackVector, n)
		for _, other := range []core.Scheme{core.Buffered, core.VectorType, core.Subarray, core.OneSided, core.PackElement} {
			if o := slowdown(t, f, other, n); pv > o*1.02 {
				t.Errorf("%s: packing(v) (%.2f) beaten by %v (%.2f) at 1 GB", prof, pv, other, o)
			}
		}
	}
}

// Bandwidth panel: the reference plateau must sit near the profile's
// injection bandwidth for every installation, and Cray's must be
// distinctly lower than SKX's (8 vs 12.5 GB/s panels in the paper).
func TestShapeBandwidthPlateaus(t *testing.T) {
	plateau := func(profile string) float64 {
		f := figureFor(t, profile)
		ref := f.Bandwidth[0]
		return ref.Y[ref.Len()-1] // GB/s at the largest size
	}
	skx := plateau("skx-impi")
	cray := plateau("ls5-cray")
	if skx < 10 || skx > 13 {
		t.Errorf("SKX reference plateau = %.1f GB/s, want ≈12.5", skx)
	}
	if cray < 6.5 || cray > 9 {
		t.Errorf("Cray reference plateau = %.1f GB/s, want ≈8", cray)
	}
	if cray >= skx {
		t.Error("Cray plateau should sit below SKX")
	}
}

func TestFigureRenderAndCSV(t *testing.T) {
	f := figureFor(t, "skx-impi")
	var out bytes.Buffer
	if err := f.Render(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"Time (sec)", "bwidth", "slowdown", "reference", "packing(v)"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
	out.Reset()
	if err := f.WriteCSV(&out); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(out.String(), "\n"); lines < 3*len(f.Sizes) {
		t.Errorf("CSV too short: %d lines", lines)
	}
}

func TestSchemeSlowdownAtUnknownScheme(t *testing.T) {
	f := figureFor(t, "skx-impi")
	if _, err := f.SchemeSlowdownAt(core.Scheme(77), 1000); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
