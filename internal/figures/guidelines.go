package figures

import (
	"fmt"
	"io"

	"repro/internal/guidelines"
)

// GuidelinesStudy is E17: the performance-guidelines verifier run as a
// report. The full rule table sweeps one installation's grid, each
// cell printed with both measured sides, its ratio and the PlanStats
// attribution of the bounded engine; violations are diffed against the
// checked-in waiver baseline exactly as the CI gate does, and a final
// self-tuning panel shows the calibrated vs observed-fit recommender
// side by side — the loop that makes acting on a violated guideline
// structurally impossible.
type GuidelinesStudy struct {
	Report   *guidelines.Report
	Baseline *guidelines.Baseline
	// Fresh are the gate's findings: violations that are neither waived
	// nor within slack of their waived ratio. Empty means the study
	// would pass CI.
	Fresh []guidelines.Result
	// Tuned is the self-tuning demonstration over the first layout
	// family of the sweep grid.
	Tuned []guidelines.TunedChoice
}

// Clean reports whether the study would pass the CI gate.
func (st *GuidelinesStudy) Clean() bool { return len(st.Fresh) == 0 }

// BuildGuidelinesStudy sweeps the full rule grid on one installation
// and closes the self-tuning loop on its canonical layout family. The
// sweep always runs at the default grid's repetition count — the
// conditions the waiver baseline was recorded under — so the gate
// verdict matches CI: at lower rep counts the unamortised first-round
// plan-compile cost shifts ratios enough to flip borderline cells.
func BuildGuidelinesStudy(profile string) (*GuidelinesStudy, error) {
	cfg := guidelines.DefaultConfig()
	cfg.Profiles = []string{profile}
	rp, err := guidelines.Sweep(cfg)
	if err != nil {
		return nil, err
	}
	base := guidelines.LoadBaseline()
	tuned, err := guidelines.SelfTune(profile, cfg.Layouts[0], cfg.Sizes, cfg.Reps)
	if err != nil {
		return nil, err
	}
	return &GuidelinesStudy{
		Report:   rp,
		Baseline: base,
		Fresh:    base.Gate(rp),
		Tuned:    tuned,
	}, nil
}

// Render prints the rule tables, the violation verdicts against the
// baseline, and the self-tuning panel.
func (st *GuidelinesStudy) Render(w io.Writer) error {
	profile := "?"
	if len(st.Report.Results) > 0 {
		profile = st.Report.Results[0].Profile
	}
	fmt.Fprintf(w, "== E17 performance-guidelines verifier — %s (tolerance %.2f, virtual time) ==\n\n",
		profile, st.Report.Tolerance)
	byRule := st.Report.ByRule()
	for _, rule := range guidelines.Rules() {
		cells := byRule[rule]
		if len(cells) == 0 {
			continue
		}
		fmt.Fprintf(w, "%s:\n", rule)
		for _, r := range cells {
			verdict := "ok"
			if r.Violated {
				verdict = "VIOLATED"
				if _, ok := st.Baseline.Waived(r.Key()); ok {
					verdict = "violated (waived)"
				}
			}
			fmt.Fprintf(w, "  %-8s %10d B  ranks %d  %-16s %9.3g s  vs %-22s %9.3g s  ratio %.3f  %s\n",
				r.Layout, r.Bytes, r.Ranks, r.LhsName, r.Lhs, r.RhsName, r.Rhs, r.Ratio, verdict)
			fmt.Fprintf(w, "           lhs plan: %s\n", r.Attribution())
		}
		fmt.Fprintln(w)
	}

	viol := st.Report.Violations()
	fmt.Fprintf(w, "violations: %d of %d cells (%d waived in baseline)\n",
		len(viol), len(st.Report.Results), st.Baseline.Len())
	for _, r := range viol {
		status := "FRESH — would fail the CI gate"
		if waivedRatio, ok := st.Baseline.Waived(r.Key()); ok {
			status = fmt.Sprintf("waived at %.3f", waivedRatio)
			if r.Ratio > waivedRatio*guidelines.BaselineSlack {
				status += " — WORSENED past slack, would fail the CI gate"
			}
		}
		fmt.Fprintf(w, "  %s  ratio %.3f  [%s]\n", r.Key(), r.Ratio, status)
	}
	gate := "PASS"
	if !st.Clean() {
		gate = "FAIL"
	}
	fmt.Fprintf(w, "gate vs baseline: %s\n\n", gate)

	fmt.Fprintf(w, "self-tuned recommender (observed virtual-clock fits fed back via memsim.ObservedHierarchy):\n")
	for _, tc := range st.Tuned {
		note := "guideline satisfied"
		if !tc.Satisfied(st.Report.Tolerance) {
			note = "GUIDELINE VIOLATED"
		}
		change := ""
		if tc.Tuned != tc.Calibrated {
			change = fmt.Sprintf(" (calibrated picked %s, %.3g s)", tc.Calibrated, tc.CalibratedTime)
		}
		fmt.Fprintf(w, "  %-8s %10d B  tuned -> %-16s %9.3g s  best %-16s %9.3g s  %s%s\n",
			tc.Layout, tc.Bytes, tc.Tuned, tc.TunedTime, tc.Best, tc.BestTime, note, change)
	}
	fmt.Fprintln(w)
	return nil
}
