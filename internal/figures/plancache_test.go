package figures

import (
	"strings"
	"testing"

	"repro/internal/harness"
)

// TestPlanCacheStudy pins the E13 contract: the warm sweep is pure
// steady state (zero compilations, perfect hit rate), every panel has
// a positive bandwidth, oversize points are skipped, and Render
// reports the hit rates.
func TestPlanCacheStudy(t *testing.T) {
	opt := harness.Options{Reps: 3, MaxRealBytes: 1 << 20}
	st, err := BuildPlanCacheStudy("skx-impi", []int64{64 << 10, 256 << 10, 64 << 20}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Sizes) != 2 {
		t.Fatalf("sizes kept = %v, want the two under MaxRealBytes", st.Sizes)
	}
	for i := range st.Sizes {
		if st.Cold.Y[i] <= 0 || st.Warm.Y[i] <= 0 || st.ChunkCursor.Y[i] <= 0 || st.ChunkCompiled.Y[i] <= 0 {
			t.Fatalf("non-positive bandwidth at %d B", st.Sizes[i])
		}
		if st.HitRates[i] != 1 {
			t.Errorf("warm hit rate at %d B = %v, want 1", st.Sizes[i], st.HitRates[i])
		}
	}
	if !st.SteadyStateClean() {
		t.Errorf("warm sweep compiled or missed: %+v", st.WarmStats)
	}
	if st.WarmSpeedupAt(256<<10) <= 0 {
		t.Error("warm speedup not computable")
	}
	var sb strings.Builder
	if err := st.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "hit rate 1.00") {
		t.Error("render does not report the cache hit rate")
	}

	if _, err := BuildPlanCacheStudy("no-such-profile", []int64{64 << 10}, opt); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := BuildPlanCacheStudy("skx-impi", []int64{1 << 30}, opt); err == nil {
		t.Error("all-oversize sweep accepted")
	}
}
