package plot

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stats"
)

func sample() []*stats.Series {
	a := &stats.Series{Label: "alpha"}
	b := &stats.Series{Label: "beta"}
	for i := 1; i <= 5; i++ {
		a.Append(float64(i)*1000, float64(i))
		b.Append(float64(i)*1000, float64(i*i))
	}
	return []*stats.Series{a, b}
}

func TestASCIIRenders(t *testing.T) {
	var out bytes.Buffer
	cfg := Config{Title: "demo", XLabel: "bytes", YLabel: "sec", LogX: true}
	if err := ASCII(&out, cfg, sample()); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "demo") {
		t.Error("title missing")
	}
	if !strings.Contains(text, "r=alpha") || !strings.Contains(text, "c=beta") {
		t.Errorf("legend missing:\n%s", text)
	}
	if !strings.ContainsRune(text, 'r') || !strings.ContainsRune(text, 'c') {
		t.Error("markers not plotted")
	}
}

func TestASCIIEmpty(t *testing.T) {
	var out bytes.Buffer
	if err := ASCII(&out, Config{Title: "none"}, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no data") {
		t.Error("empty plot not reported")
	}
}

func TestASCIIClipsYMax(t *testing.T) {
	s := &stats.Series{Label: "spike"}
	s.Append(1, 1)
	s.Append(2, 1000)
	var out bytes.Buffer
	if err := ASCII(&out, Config{YMax: 10, Height: 5, Width: 20}, []*stats.Series{s}); err != nil {
		t.Fatal(err)
	}
	// The top label must be the clipped maximum, not 1000.
	if strings.Contains(out.String(), "1e+03") || strings.Contains(out.String(), "1000") {
		t.Errorf("y axis not clipped:\n%s", out.String())
	}
}

func TestASCIILogSkipsNonPositive(t *testing.T) {
	s := &stats.Series{Label: "z"}
	s.Append(0, 1) // log10(0) invalid
	s.Append(10, 2)
	var out bytes.Buffer
	if err := ASCII(&out, Config{LogX: true, LogY: true}, []*stats.Series{s}); err != nil {
		t.Fatal(err)
	}
}

func TestCSV(t *testing.T) {
	var out bytes.Buffer
	if err := CSV(&out, "bytes", sample()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if lines[0] != "bytes,alpha,beta" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 6 {
		t.Fatalf("rows = %d", len(lines))
	}
	if lines[1] != "1000,1,1" {
		t.Fatalf("row 1 = %q", lines[1])
	}
}

func TestCSVMissingCells(t *testing.T) {
	a := &stats.Series{Label: "a"}
	a.Append(1, 10)
	b := &stats.Series{Label: "b"}
	b.Append(2, 20)
	var out bytes.Buffer
	if err := CSV(&out, "x", []*stats.Series{a, b}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if lines[1] != "1,10," || lines[2] != "2,,20" {
		t.Fatalf("rows = %q", lines[1:])
	}
}

func TestTableAligns(t *testing.T) {
	var out bytes.Buffer
	if err := Table(&out, "x", sample()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("rows = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "x") || !strings.Contains(lines[0], "alpha") {
		t.Fatalf("header = %q", lines[0])
	}
}
