// Package plot renders the benchmark's result series as ASCII charts
// (for terminals and logs) and CSV (for external plotting). The three
// panels of each paper figure — time, bandwidth, slowdown against
// message size — are log-log, log-linear and log-linear respectively,
// matching the originals.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Markers assigns one plot character per series, in legend order.
var Markers = []byte{'r', 'c', 'b', 'v', 's', 'o', 'e', 'p', '1', '2', '3', '4', '5', '6'}

// Config controls an ASCII chart.
type Config struct {
	Title  string
	XLabel string
	YLabel string
	Width  int  // plot area columns; 0 means 68
	Height int  // plot area rows; 0 means 20
	LogX   bool // log10 x axis
	LogY   bool // log10 y axis
	// YMax clips the y axis (the paper clips the slowdown panel at
	// 10); 0 means auto.
	YMax float64
}

// ASCII renders the series into w as a character grid with axes and a
// legend. Points landing on the same cell keep the first series'
// marker (legend order is priority order, so the reference curve stays
// visible).
func ASCII(w io.Writer, cfg Config, series []*stats.Series) error {
	width, height := cfg.Width, cfg.Height
	if width <= 0 {
		width = 68
	}
	if height <= 0 {
		height = 20
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			x, y := cfg.tx(s.X[i]), cfg.ty(s.Y[i], cfg.YMax)
			if math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if xmin > xmax || ymin > ymax {
		_, err := fmt.Fprintf(w, "%s: no data\n", cfg.Title)
		return err
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si := len(series) - 1; si >= 0; si-- {
		s := series[si]
		marker := Markers[si%len(Markers)]
		for i := range s.X {
			x, y := cfg.tx(s.X[i]), cfg.ty(s.Y[i], cfg.YMax)
			if math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			col := int((x - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((y-ymin)/(ymax-ymin)*float64(height-1))
			grid[row][col] = marker
		}
	}
	if cfg.Title != "" {
		if _, err := fmt.Fprintf(w, "  %s\n", cfg.Title); err != nil {
			return err
		}
	}
	topLabel, botLabel := cfg.fmtY(ymax), cfg.fmtY(ymin)
	labelW := len(topLabel)
	if len(botLabel) > labelW {
		labelW = len(botLabel)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelW, topLabel)
		case height - 1:
			label = fmt.Sprintf("%*s", labelW, botLabel)
		}
		if _, err := fmt.Fprintf(w, "%s |%s|\n", label, string(grid[r])); err != nil {
			return err
		}
	}
	xl := cfg.fmtX(xmin)
	xr := cfg.fmtX(xmax)
	pad := width - len(xl) - len(xr)
	if pad < 1 {
		pad = 1
	}
	if _, err := fmt.Fprintf(w, "%s  %s%s%s\n", strings.Repeat(" ", labelW), xl, strings.Repeat(" ", pad), xr); err != nil {
		return err
	}
	// Legend.
	var b strings.Builder
	for si, s := range series {
		fmt.Fprintf(&b, "  %c=%s", Markers[si%len(Markers)], s.Label)
	}
	axes := ""
	if cfg.XLabel != "" || cfg.YLabel != "" {
		axes = fmt.Sprintf("  [x: %s, y: %s]", cfg.XLabel, cfg.YLabel)
	}
	_, err := fmt.Fprintf(w, "%s%s\n", b.String(), axes)
	return err
}

func (cfg Config) tx(x float64) float64 {
	if cfg.LogX {
		if x <= 0 {
			return math.NaN()
		}
		return math.Log10(x)
	}
	return x
}

func (cfg Config) ty(y, ymax float64) float64 {
	if ymax > 0 && y > ymax {
		y = ymax
	}
	if cfg.LogY {
		if y <= 0 {
			return math.NaN()
		}
		return math.Log10(y)
	}
	return y
}

func (cfg Config) fmtX(v float64) string {
	if cfg.LogX {
		return fmt.Sprintf("1e%.1f", v)
	}
	return fmt.Sprintf("%.3g", v)
}

func (cfg Config) fmtY(v float64) string {
	if cfg.LogY {
		return fmt.Sprintf("1e%.1f", v)
	}
	return fmt.Sprintf("%.3g", v)
}

// CSV writes the series as a table: the union of x values in the first
// column, one column per series label, empty cells where a series has
// no point. Columns appear in series order.
func CSV(w io.Writer, xHeader string, series []*stats.Series) error {
	xsSet := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			xsSet[x] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	cols := make([]string, 0, len(series)+1)
	cols = append(cols, xHeader)
	for _, s := range series {
		cols = append(cols, s.Label)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, x := range xs {
		row := make([]string, 0, len(series)+1)
		row = append(row, fmt.Sprintf("%g", x))
		for _, s := range series {
			if y, ok := s.YAt(x); ok {
				row = append(row, fmt.Sprintf("%g", y))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Table renders the series as an aligned text table, one row per x.
func Table(w io.Writer, xHeader string, series []*stats.Series) error {
	var b strings.Builder
	if err := CSV(&b, xHeader, series); err != nil {
		return err
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	rows := make([][]string, len(lines))
	widths := []int{}
	for i, line := range lines {
		rows[i] = strings.Split(line, ",")
		for j, cell := range rows[i] {
			if j >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[j] {
				widths[j] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for j, cell := range row {
			if _, err := fmt.Fprintf(w, "%-*s  ", widths[j], cell); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
