package harness

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buf"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// JobMix drives many independent communicators over one fabric at
// once — the scale-out regime the sharded matcher exists for. The
// world splits into Jobs ring communicators (job j owns the world
// ranks with rank%Jobs == j), and every rank keeps InFlight typed
// transfers outstanding to its ring neighbours per round: InFlight
// IrecvType posts from the left neighbour, InFlight IsendvType posts
// to the right. A world barrier between the post phase and the drain
// phase makes the in-flight peak deterministic: every transfer of a
// round is posted before any is reaped, so the fabric holds
// Ranks×InFlight concurrent typed transfers across all Jobs
// communicators at the peak.
//
// Payloads are the canonical every-other-double layout, virtual
// (length-only) so O(10³)-rank mixes stay wall-time cheap: every
// protocol step, match, and virtual-clock cost happens; only the
// bytes are elided.
type JobMix struct {
	// Ranks is the world size; Jobs the communicator count (world
	// rank r serves job r%Jobs).
	Ranks, Jobs int
	// InFlight is the outstanding typed transfers per rank per round;
	// Rounds repeats the post/drain cycle.
	InFlight, Rounds int
	// Bytes is the per-transfer payload (data bytes of the layout);
	// default 1 MiB, past every profile's eager limit so transfers
	// ride the rendezvous engines.
	Bytes int64
	// Profile selects the installation; nil means perfmodel.Generic.
	Profile *perfmodel.Profile
	// NodeSize, when >0, overlays a node hierarchy on the profile
	// (blocks of NodeSize consecutive world ranks share a node, with
	// a NetLatency/10 intra-node discount unless the profile already
	// sets one).
	NodeSize int
	// WallLimit is the deadlock watchdog; zero means 2 minutes.
	WallLimit time.Duration

	// Faults, when non-nil, arms the fault-injecting fabric under the
	// whole mix — the chaos-at-scale regime (E21): every job's typed
	// transfers recover through the checksum/NACK/selective-retransmit
	// machinery while competing for the same sharded matcher.
	Faults *simnet.FaultPlan
	// Retry bounds the recovery machinery when Faults is armed; the
	// zero value selects mpi.DefaultRetryPolicy.
	Retry mpi.RetryPolicy
}

// RecoveryStats is the fault/recovery attribution of a mix, summed
// from every rank's fabric counters: what the injector did (drops,
// corruptions, truncations), what the recovery machinery paid for it
// (retries, integrity rejections), and how much of the repair traffic
// the selective chunk protocol confined (chunks and bytes
// retransmitted instead of whole transfers, duplicates suppressed).
type RecoveryStats struct {
	Drops, Corruptions, Truncations   int64
	Retries, IntegrityRejects         int64
	ChunkRetransmits, RetransmitBytes int64
	DupChunksSuppressed               int64
}

// Faulted reports whether the run recorded any injected faults.
func (r RecoveryStats) Faulted() bool {
	return r.Drops+r.Corruptions+r.Truncations > 0
}

// Merge folds another run's attribution in (multi-trial studies sum
// their per-trial recovery work).
func (r *RecoveryStats) Merge(o RecoveryStats) {
	r.Drops += o.Drops
	r.Corruptions += o.Corruptions
	r.Truncations += o.Truncations
	r.Retries += o.Retries
	r.IntegrityRejects += o.IntegrityRejects
	r.ChunkRetransmits += o.ChunkRetransmits
	r.RetransmitBytes += o.RetransmitBytes
	r.DupChunksSuppressed += o.DupChunksSuppressed
}

// add folds one rank's counters in.
func (r *RecoveryStats) add(ct simnet.Counters) {
	r.Drops += ct.Drops
	r.Corruptions += ct.Corruptions
	r.Truncations += ct.Truncations
	r.Retries += ct.Retries
	r.IntegrityRejects += ct.IntegrityRejects
	r.ChunkRetransmits += ct.ChunkRetransmits
	r.RetransmitBytes += ct.RetransmitBytes
	r.DupChunksSuppressed += ct.DupChunksSuppressed
}

// JobMixResult is one mix's sustained-throughput measurement with the
// shard-contention attribution the scale study reports.
type JobMixResult struct {
	Ranks, Jobs, InFlight, Rounds int
	Bytes                         int64

	// Transfers is the completed typed transfer count; Elapsed the
	// slowest rank's virtual time; AggregateGBs the fabric-wide
	// payload rate Transfers×Bytes/Elapsed.
	Transfers    int64
	Elapsed      float64
	AggregateGBs float64
	// P50 and P99 summarise per-transfer completion times (post of
	// the round to that transfer's drain, seconds).
	P50, P99 float64
	// InFlightPeak is the high-water mark of concurrently posted,
	// not-yet-drained typed transfers across the whole fabric.
	InFlightPeak int64

	// Matching is the fabric's matching attribution for the run
	// (fresh fabric, so totals are the run's own): live shard queues
	// at the end, fast-path vs wildcard takes.
	Matching simnet.MatchStats
	// Pool is the block-pool counter delta over the run, including
	// per-shard contention splits and eager-limit adaptations.
	Pool buf.PoolStats

	// Recovery sums the per-rank fault and recovery counters; zero on
	// clean runs.
	Recovery RecoveryStats
}

// RunJobMix executes the mix and reports the sustained throughput.
func RunJobMix(m JobMix) (JobMixResult, error) {
	if m.Ranks < 2 {
		return JobMixResult{}, fmt.Errorf("harness: job mix needs at least 2 ranks, got %d", m.Ranks)
	}
	if m.Jobs < 1 {
		m.Jobs = 1
	}
	if m.Ranks/m.Jobs < 2 {
		return JobMixResult{}, fmt.Errorf("harness: %d ranks over %d jobs leaves rings under 2 ranks", m.Ranks, m.Jobs)
	}
	if m.InFlight < 1 {
		m.InFlight = 1
	}
	if m.Rounds < 1 {
		m.Rounds = 1
	}
	if m.Bytes <= 0 {
		m.Bytes = 1 << 20
	}
	if m.WallLimit == 0 {
		m.WallLimit = 2 * time.Minute
	}
	prof := perfmodel.Generic()
	if m.Profile != nil {
		p := *m.Profile
		prof = &p
	}
	if m.NodeSize > 0 {
		prof.Mem.NodeSize = m.NodeSize
		if prof.IntraNodeLatency == 0 {
			prof.IntraNodeLatency = prof.NetLatency / 10
		}
	}

	// The canonical every-other-double layout carrying m.Bytes of
	// data per transfer.
	elems := int(m.Bytes / 8)
	if elems < 1 {
		elems = 1
	}
	ty, err := datatype.Vector(elems, 1, 2, datatype.Float64)
	if err != nil {
		return JobMixResult{}, err
	}
	if err := ty.Commit(); err != nil {
		return JobMixResult{}, err
	}
	need := int(ty.TrueLB() + ty.TrueExtent())

	res := JobMixResult{
		Ranks: m.Ranks, Jobs: m.Jobs, InFlight: m.InFlight, Rounds: m.Rounds,
		Bytes: int64(elems) * 8,
	}
	var (
		inFlight, peak, transfers atomic.Int64
		elapsedMu                 sync.Mutex
		elapsed                   float64
		completions               = make([][]float64, m.Ranks)
	)
	poolBefore := buf.PoolStatsSnapshot()
	err = mpi.Run(m.Ranks, mpi.Options{Profile: prof, WallLimit: m.WallLimit, Faults: m.Faults, Retry: m.Retry}, func(c *mpi.Comm) error {
		job, err := c.Split(c.Rank()%m.Jobs, c.Rank())
		if err != nil {
			return err
		}
		right := (job.Rank() + 1) % job.Size()
		left := (job.Rank() - 1 + job.Size()) % job.Size()
		send := buf.Virtual(need)
		recvs := make([]buf.Block, m.InFlight)
		for i := range recvs {
			recvs[i] = buf.Virtual(need)
		}
		times := make([]float64, 0, m.Rounds*m.InFlight)
		for round := 0; round < m.Rounds; round++ {
			t0 := c.Wtime()
			rreqs := make([]*mpi.Request, m.InFlight)
			sreqs := make([]*mpi.Request, m.InFlight)
			for i := 0; i < m.InFlight; i++ {
				if rreqs[i], err = job.IrecvType(recvs[i], 1, ty, left, i); err != nil {
					return err
				}
			}
			for i := 0; i < m.InFlight; i++ {
				if sreqs[i], err = job.IsendvType(send, 1, ty, right, i); err != nil {
					return err
				}
				cur := inFlight.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
			}
			// Every transfer of the round is posted fabric-wide before
			// any rank starts draining: the peak gauge reads the true
			// concurrent mix, not a scheduling accident.
			c.Barrier()
			for i := 0; i < m.InFlight; i++ {
				if _, err := rreqs[i].Wait(); err != nil {
					return err
				}
				times = append(times, c.Wtime()-t0)
			}
			for i := 0; i < m.InFlight; i++ {
				if _, err := sreqs[i].Wait(); err != nil {
					return err
				}
				inFlight.Add(-1)
				transfers.Add(1)
			}
		}
		c.Barrier()
		completions[c.Rank()] = times
		elapsedMu.Lock()
		if t := c.Wtime(); t > elapsed {
			elapsed = t
		}
		res.Recovery.add(c.Counters())
		elapsedMu.Unlock()
		if c.Rank() == 0 {
			res.Matching = c.MatchStats()
		}
		return nil
	})
	if err != nil {
		return JobMixResult{}, err
	}
	res.Pool = buf.PoolStatsSnapshot().Sub(poolBefore)
	res.Transfers = transfers.Load()
	res.InFlightPeak = peak.Load()
	res.Elapsed = elapsed
	if elapsed > 0 {
		res.AggregateGBs = float64(res.Transfers) * float64(res.Bytes) / elapsed / 1e9
	}
	var all []float64
	for _, ts := range completions {
		all = append(all, ts...)
	}
	sort.Float64s(all)
	res.P50 = stats.Quantile(all, 0.50)
	res.P99 = stats.Quantile(all, 0.99)
	return res, nil
}
