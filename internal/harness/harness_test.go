package harness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/perfmodel"
)

func fastOpts() Options {
	o := DefaultOptions()
	o.Reps = 4
	o.MaxRealBytes = 1 << 20
	return o
}

func TestMeasureAllSchemesReal(t *testing.T) {
	prof := perfmodel.Generic()
	opt := fastOpts()
	w := core.ForBytes(64 << 10)
	for _, s := range core.Schemes() {
		m, err := Measure(prof, s, w, opt)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if m.Time() <= 0 {
			t.Errorf("%v: non-positive time", s)
		}
		if !m.Verified {
			t.Errorf("%v: payload not verified", s)
		}
		if m.Bytes != w.Bytes() {
			t.Errorf("%v: bytes = %d", s, m.Bytes)
		}
	}
}

// TestSendvMeasurementFusedAttribution pins the fused-vs-staged
// attribution the harness carries: a rendezvous-sized sendv cell moves
// every ping through the fused engine with zero staged traffic and in
// less time than the staged datatype send, while a vector-type cell
// of the same size reports only staged traffic.
func TestSendvMeasurementFusedAttribution(t *testing.T) {
	prof := perfmodel.Generic()
	opt := fastOpts()
	opt.MaxRealBytes = 4 << 20
	w := core.ForBytes(1 << 20) // over the 64 KiB eager limit: rendezvous
	fused, err := Measure(prof, core.Sendv, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !fused.Verified {
		t.Error("sendv payload not verified")
	}
	if fused.PlanStats.FusedOps < int64(opt.Reps) || fused.PlanStats.FusedBytes < int64(opt.Reps)*w.Bytes() {
		t.Errorf("sendv cell fused attribution too low: %v", fused.PlanStats)
	}
	if fused.PlanStats.StagedOps != 0 {
		t.Errorf("sendv cell recorded staged transfers: %v", fused.PlanStats)
	}
	typed, err := Measure(prof, core.VectorType, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	// The staged datatype send streams through the internal chunk
	// loop (its receive side is contiguous, so no unpack staging);
	// none of its traffic may claim the fused engine.
	if typed.PlanStats.ChunkOps == 0 {
		t.Errorf("vector-type cell recorded no chunked streaming: %v", typed.PlanStats)
	}
	if typed.PlanStats.FusedOps != 0 {
		t.Errorf("vector-type cell recorded fused transfers: %v", typed.PlanStats)
	}
	if !(fused.Time() < typed.Time()) {
		t.Errorf("sendv %.3gs not under the staged datatype send %.3gs", fused.Time(), typed.Time())
	}
}

func TestMeasureDeterministic(t *testing.T) {
	prof := perfmodel.Generic()
	opt := fastOpts()
	w := core.ForBytes(1 << 16)
	a, err := Measure(prof, core.VectorType, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Measure(prof, core.VectorType, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time() != b.Time() {
		t.Fatalf("model times differ across runs: %g vs %g", a.Time(), b.Time())
	}
}

func TestVirtualAndRealAgree(t *testing.T) {
	// The virtual-payload fast path must not change the model's time;
	// it only skips the byte movement.
	prof := perfmodel.Generic()
	opt := fastOpts()
	w := core.ForBytes(1 << 18)
	real, err := Measure(prof, core.PackVector, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	wv := w
	wv.Virtual = true
	virt, err := Measure(prof, core.PackVector, wv, opt)
	if err != nil {
		t.Fatal(err)
	}
	if real.Time() != virt.Time() {
		t.Fatalf("virtual (%g) and real (%g) times diverge", virt.Time(), real.Time())
	}
}

func TestNoFlushHelpsIntermediate(t *testing.T) {
	// §4.6: skipping the inter-ping-pong cache flush helps
	// intermediate sizes.
	prof := perfmodel.Generic()
	opt := fastOpts()
	w := core.ForBytes(1 << 20)
	flushed, err := Measure(prof, core.Copying, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	o2 := opt
	o2.FlushCache = false
	warm, err := Measure(prof, core.Copying, w, o2)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Time() >= flushed.Time() {
		t.Fatalf("warm caches (%g) not faster than flushed (%g)", warm.Time(), flushed.Time())
	}
}

func TestEagerLimitOverride(t *testing.T) {
	// §4.5: raising the eager limit above the message size turns a
	// rendezvous send into an eager one and must not slow it down at
	// large sizes.
	prof := perfmodel.Generic()
	opt := fastOpts()
	w := core.ForBytes(100 << 20)
	w.Virtual = true
	def, err := Measure(prof, core.Reference, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	o2 := opt
	o2.EagerLimitOverride = 1 << 30
	raised, err := Measure(prof, core.Reference, w, o2)
	if err != nil {
		t.Fatal(err)
	}
	rel := (raised.Time() - def.Time()) / def.Time()
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.1 {
		t.Fatalf("raising the limit changed the large-message time by %.1f%% (paper: not appreciable)", rel*100)
	}
}

func TestWorkloadsVirtualCap(t *testing.T) {
	opt := fastOpts()
	ws := Workloads([]int64{1 << 10, 1 << 25}, opt)
	if ws[0].Virtual {
		t.Error("small workload marked virtual")
	}
	if !ws[1].Virtual {
		t.Error("over-cap workload not virtual")
	}
}

func TestLogSizes(t *testing.T) {
	sizes := LogSizes(1_000, 1_000_000, 3)
	if len(sizes) < 9 {
		t.Fatalf("too few points: %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatalf("sizes not strictly increasing: %v", sizes)
		}
		if sizes[i]%core.ElemSize != 0 {
			t.Fatalf("size %d not element aligned", sizes[i])
		}
	}
	if sizes[0] > 1_000 || sizes[len(sizes)-1] < 999_000 {
		t.Fatalf("range not covered: %v", sizes)
	}
}

func TestRealTimeModeRuns(t *testing.T) {
	prof := perfmodel.Generic()
	opt := fastOpts()
	opt.RealTime = true
	opt.Reps = 2
	m, err := Measure(prof, core.Reference, core.ForBytes(4096), opt)
	if err != nil {
		t.Fatal(err)
	}
	if m.Time() <= 0 {
		t.Fatal("real-time measurement non-positive")
	}
}

func TestDismissalNeverNeededInModel(t *testing.T) {
	// §3.2: "in practice this test is never needed" — deterministic
	// virtual timing must never trigger the 1-σ dismissal.
	prof := perfmodel.Generic()
	opt := fastOpts()
	opt.Reps = 10
	for _, n := range []int64{1 << 10, 1 << 18, 1 << 24} {
		ws := Workloads([]int64{n}, opt)
		ms, err := MeasureSweep(prof, core.VectorType, ws, opt)
		if err != nil {
			t.Fatal(err)
		}
		if ms[0].Dismissed != 0 {
			t.Errorf("size %d: %d measurements dismissed", n, ms[0].Dismissed)
		}
	}
}
