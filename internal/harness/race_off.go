//go:build !race

package harness

// raceEnabled gates scale smoke sizes under the race detector.
const raceEnabled = false
