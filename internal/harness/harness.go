// Package harness implements the paper's measurement protocol (§3.2):
// ping-pongs between two ranks where the ping is the non-contiguous
// send and the pong a zero-byte reply (or the window fences, for the
// one-sided scheme); every ping-pong timed individually with Wtime;
// measurements more than one standard deviation from the average
// dismissed; buffers allocated, aligned and zeroed outside the timing
// loop; caches flushed between ping-pongs by rewriting a large array.
package harness

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/stats"
)

// Options configures a measurement run.
type Options struct {
	// Reps is the ping-pong count per size; the paper uses 20.
	Reps int
	// FlushCache rewrites a 50 M array between ping-pongs (§3.2); the
	// §4.6 ablation turns it off.
	FlushCache bool
	// OutlierSigma is the dismissal threshold in standard deviations;
	// the paper uses 1. Zero disables dismissal.
	OutlierSigma float64
	// MaxRealBytes caps materialised payloads: workloads above it run
	// with virtual (length-only) buffers so the 10⁹-byte end of the
	// sweep stays affordable. Zero means the default of 16 MiB.
	MaxRealBytes int64
	// Verify checks received payloads byte-for-byte after the last
	// ping-pong (real payloads only).
	Verify bool
	// RealTime measures Go wall time instead of virtual time.
	RealTime bool
	// ColdCaches disables warmth tracking entirely (stronger than
	// FlushCache: even one ping-pong sees no reuse).
	ColdCaches bool
	// WallLimit is the per-Run deadlock watchdog; zero means 2 min.
	WallLimit time.Duration
	// EagerLimitOverride, when non-zero, replaces the profile's eager
	// limit — the §4.5 "set the eager limit over the maximum message
	// size" experiment.
	EagerLimitOverride int64
}

// withDefaults fills the zero values.
func (o Options) withDefaults() Options {
	if o.Reps == 0 {
		o.Reps = 20
	}
	if o.MaxRealBytes == 0 {
		o.MaxRealBytes = 16 << 20
	}
	if o.WallLimit == 0 {
		o.WallLimit = 2 * time.Minute
	}
	return o
}

// DefaultOptions returns the paper's measurement protocol: 20 reps,
// cache flushing on, 1-σ dismissal, verification on.
func DefaultOptions() Options {
	return Options{
		Reps:         20,
		FlushCache:   true,
		OutlierSigma: 1,
		Verify:       true,
	}.withDefaults()
}

// Measurement is the result of one (scheme, size) cell.
type Measurement struct {
	Scheme    core.Scheme
	Bytes     int64
	Workload  core.Workload
	Times     []float64 // kept per-ping-pong times, seconds
	Dismissed int
	Summary   stats.Summary
	Verified  bool
	// PlanStats is the delta of the pack-plan engine counters over
	// this cell's measurement window (both ranks: sender packs,
	// receiver unpacks, plus the final verification pass). It shows
	// which tier — compiled whole-message kernels, compiled-chunked
	// streaming, parallel execution, or the interpreting-cursor
	// fallback — moved the cell's bytes, how the plan cache behaved
	// (PlanHits/PlanMisses, PlanStats.HitRate), and how each typed
	// rendezvous payload travelled: FusedOps/FusedBytes for one-pass
	// fused transfers (the sendv scheme's zero-staging path),
	// StagedOps/StagedBytes for the two-pass pack→staging→unpack
	// pipeline. Studies use the fused-vs-staged split to verify the
	// sendv cells really skipped the staging buffer.
	PlanStats datatype.PlanStats
}

// Time returns the reported time per ping-pong: the mean of the kept
// samples, matching "total time divided by the number of ping-pongs"
// after dismissal.
func (m Measurement) Time() float64 { return m.Summary.Mean }

// Bandwidth returns the effective bandwidth in bytes/second for the
// one-way payload.
func (m Measurement) Bandwidth() float64 {
	if m.Summary.Mean <= 0 {
		return 0
	}
	return float64(m.Bytes) / m.Summary.Mean
}

// MeasureSweep runs one scheme over a list of workloads on a fresh
// two-rank world and returns one Measurement per workload. Rank 0 is
// the origin, rank 1 the target, as in the paper.
func MeasureSweep(profile *perfmodel.Profile, scheme core.Scheme, workloads []core.Workload, opt Options) ([]Measurement, error) {
	opt = opt.withDefaults()
	prof := *profile // private copy; overrides must not leak to callers
	if opt.EagerLimitOverride != 0 {
		prof.EagerLimit = opt.EagerLimitOverride
	}
	results := make([]Measurement, len(workloads))
	verified := make([]bool, len(workloads))
	err := mpi.Run(2, mpi.Options{
		Profile:    &prof,
		RealTime:   opt.RealTime,
		ColdCaches: opt.ColdCaches,
		WallLimit:  opt.WallLimit,
	}, func(c *mpi.Comm) error {
		for wi, w := range workloads {
			runner, err := core.NewRunner(scheme)
			if err != nil {
				return err
			}
			peer := 1 - c.Rank()
			if err := runner.Setup(c, w, peer); err != nil {
				return fmt.Errorf("%v setup (%d bytes): %w", scheme, w.Bytes(), err)
			}
			c.Barrier()
			// The barrier above and the one below bracket the cell's
			// pack-engine activity of both ranks; the counter delta is
			// read on rank 0 only, after the closing barrier.
			planBefore := datatype.PlanStatsSnapshot()
			times := make([]float64, 0, opt.Reps)
			for rep := 0; rep < opt.Reps; rep++ {
				if opt.FlushCache {
					// The 50 M-array rewrite: outside the timed window,
					// but it still consumes (virtual) time and empties
					// the cache (§3.2).
					c.Charge(c.Cache().FlushCost())
					c.Cache().Flush()
				}
				if c.Rank() == 0 {
					t0 := c.Wtime()
					if err := runner.Ping(); err != nil {
						return fmt.Errorf("%v ping %d: %w", scheme, rep, err)
					}
					times = append(times, c.Wtime()-t0)
				} else {
					if err := runner.Pong(); err != nil {
						return fmt.Errorf("%v pong %d: %w", scheme, rep, err)
					}
				}
			}
			if opt.Verify && !w.Virtual && c.Rank() == 1 {
				if err := runner.Check(); err != nil {
					return fmt.Errorf("%v verify (%d bytes): %w", scheme, w.Bytes(), err)
				}
				verified[wi] = true
			}
			if err := runner.Teardown(); err != nil {
				return fmt.Errorf("%v teardown: %w", scheme, err)
			}
			c.Barrier()
			if c.Rank() == 0 {
				kept, dismissed := times, 0
				if opt.OutlierSigma > 0 {
					kept, dismissed = stats.DismissOutliers(times, opt.OutlierSigma)
				}
				results[wi] = Measurement{
					Scheme:    scheme,
					Bytes:     w.Bytes(),
					Workload:  w,
					Times:     kept,
					Dismissed: dismissed,
					Summary:   stats.Summarize(kept),
					PlanStats: datatype.PlanStatsSnapshot().Sub(planBefore),
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for wi := range results {
		results[wi].Verified = verified[wi]
	}
	return results, nil
}

// Measure runs a single (scheme, workload) cell.
func Measure(profile *perfmodel.Profile, scheme core.Scheme, w core.Workload, opt Options) (Measurement, error) {
	ms, err := MeasureSweep(profile, scheme, []core.Workload{w}, opt)
	if err != nil {
		return Measurement{}, err
	}
	return ms[0], nil
}

// Workloads builds the canonical every-other-element workloads for a
// list of payload sizes, marking those above the real-size cap as
// virtual.
func Workloads(sizes []int64, opt Options) []core.Workload {
	opt = opt.withDefaults()
	out := make([]core.Workload, len(sizes))
	for i, n := range sizes {
		w := core.ForBytes(n)
		w.Virtual = n > opt.MaxRealBytes
		out[i] = w
	}
	return out
}

// LogSizes returns payload sizes from lo to hi with the given number
// of points per decade, rounded to whole elements — the x axis of the
// paper's figures (10³ … 10⁹ bytes).
func LogSizes(lo, hi int64, perDecade int) []int64 {
	if perDecade <= 0 {
		perDecade = 3
	}
	var out []int64
	ratio := pow10(1.0 / float64(perDecade))
	x := float64(lo)
	for {
		n := int64(x + 0.5)
		if n > hi {
			break
		}
		n = n / core.ElemSize * core.ElemSize
		if n < core.ElemSize {
			n = core.ElemSize
		}
		if len(out) == 0 || out[len(out)-1] != n {
			out = append(out, n)
		}
		x *= ratio
	}
	if len(out) == 0 || out[len(out)-1] < hi {
		out = append(out, hi/core.ElemSize*core.ElemSize)
	}
	return out
}

func pow10(x float64) float64 { return math.Pow(10, x) }
