package harness

import (
	"testing"
	"time"

	"repro/internal/simnet"
)

// TestJobMixScaleSmoke is the concurrent job-mix smoke at scale: four
// ring communicators over one fabric, every rank holding several typed
// transfers in flight. Under the race detector the mix is capped so
// the instrumented run stays fast; the plain run drives 256 ranks with
// 1024 concurrent transfers — the acceptance regime.
func TestJobMixScaleSmoke(t *testing.T) {
	mix := JobMix{Ranks: 256, Jobs: 4, InFlight: 4, Rounds: 2, Bytes: 1 << 20,
		NodeSize: 16, WallLimit: 4 * time.Minute}
	if raceEnabled {
		mix.Ranks, mix.InFlight, mix.Rounds = 64, 2, 1
	}
	res, err := RunJobMix(mix)
	if err != nil {
		t.Fatal(err)
	}
	wantTransfers := int64(mix.Ranks * mix.InFlight * mix.Rounds)
	if res.Transfers != wantTransfers {
		t.Errorf("completed %d transfers, want %d", res.Transfers, wantTransfers)
	}
	wantPeak := int64(mix.Ranks * mix.InFlight)
	if res.InFlightPeak < wantPeak {
		t.Errorf("in-flight peak %d, want ≥ %d (the post/drain barrier pins it)", res.InFlightPeak, wantPeak)
	}
	if !raceEnabled && res.InFlightPeak < 1000 {
		t.Errorf("in-flight peak %d, acceptance wants ≥1000 concurrent typed transfers", res.InFlightPeak)
	}
	if res.AggregateGBs <= 0 {
		t.Errorf("aggregate throughput %.3f GB/s, want >0", res.AggregateGBs)
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Errorf("completion quantiles p50=%g p99=%g, want 0 < p50 ≤ p99", res.P50, res.P99)
	}
	if res.Matching.FastTakes == 0 {
		t.Errorf("matching attribution recorded no fast-path takes: %+v", res.Matching)
	}
	if res.Matching.Queues == 0 {
		t.Errorf("matching attribution recorded no shard queues: %+v", res.Matching)
	}
	if res.Elapsed <= 0 {
		t.Errorf("elapsed virtual time %g, want >0", res.Elapsed)
	}
}

// TestJobMixUnderFaults is the chaos-at-scale smoke: the same
// concurrent mix with the fault injector armed. The run must still
// complete every transfer, the recovery attribution must show both the
// injected damage and the machinery that repaired it, and the repair
// traffic must be selective — chunks, not whole transfers.
func TestJobMixUnderFaults(t *testing.T) {
	mix := JobMix{Ranks: 32, Jobs: 2, InFlight: 2, Rounds: 2, Bytes: 1 << 20,
		WallLimit: 4 * time.Minute,
		Faults:    simnet.UniformFaults(97, 0.04)}
	if raceEnabled {
		mix.Ranks, mix.InFlight = 16, 1
	}
	res, err := RunJobMix(mix)
	if err != nil {
		t.Fatal(err)
	}
	wantTransfers := int64(mix.Ranks * mix.InFlight * mix.Rounds)
	if res.Transfers != wantTransfers {
		t.Errorf("completed %d transfers, want %d", res.Transfers, wantTransfers)
	}
	if res.AggregateGBs <= 0 {
		t.Errorf("aggregate throughput %.3f GB/s, want >0", res.AggregateGBs)
	}
	if !res.Recovery.Faulted() {
		t.Errorf("4%% fault rate recorded no injected faults: %+v", res.Recovery)
	}
	if res.Recovery.Retries == 0 && res.Recovery.ChunkRetransmits == 0 {
		t.Errorf("recovery attribution shows no repair work: %+v", res.Recovery)
	}
	// Clean baseline for comparison: same mix, no faults.
	mix.Faults = nil
	clean, err := RunJobMix(mix)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Recovery != (RecoveryStats{}) {
		t.Errorf("clean mix recorded recovery activity: %+v", clean.Recovery)
	}
	if res.Elapsed < clean.Elapsed {
		t.Errorf("faulted mix finished in %g s, under the clean %g s", res.Elapsed, clean.Elapsed)
	}
}

// TestJobMixValidation pins the mix's argument checks.
func TestJobMixValidation(t *testing.T) {
	if _, err := RunJobMix(JobMix{Ranks: 1}); err == nil {
		t.Error("1-rank mix accepted")
	}
	if _, err := RunJobMix(JobMix{Ranks: 4, Jobs: 3}); err == nil {
		t.Error("4 ranks over 3 jobs accepted (rings under 2 ranks)")
	}
}
