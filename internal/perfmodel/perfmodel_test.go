package perfmodel

import (
	"testing"

	"repro/internal/memsim"
)

func TestAllProfilesValidate(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s: %v", name, err)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("bluegene"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestByNameReturnsFreshCopies(t *testing.T) {
	a, _ := ByName("skx-impi")
	b, _ := ByName("skx-impi")
	a.NetBandwidth = 1
	if b.NetBandwidth == 1 {
		t.Fatal("profiles share state")
	}
}

func TestEagerDecision(t *testing.T) {
	p := SkxImpi()
	if !p.Eager(p.EagerLimit, false) {
		t.Fatal("at-limit message should be eager")
	}
	if p.Eager(p.EagerLimit+1, false) {
		t.Fatal("over-limit message should rendezvous")
	}
}

func TestPackedEagerFactorCray(t *testing.T) {
	p := Ls5Cray()
	n := p.EagerLimit + 1
	if p.Eager(n, false) {
		t.Fatal("contiguous over-limit message eager")
	}
	if !p.Eager(n, true) {
		t.Fatal("Cray packed sends should stay eager to 2× the limit (§4.5)")
	}
	if p.Eager(2*p.EagerLimit+1, true) {
		t.Fatal("packed eager limit not bounded at 2×")
	}
}

func TestInternalBWDegrades(t *testing.T) {
	p := SkxImpi()
	under := p.InternalBW(p.DegradeBytes)
	if under != p.NetBandwidth {
		t.Fatalf("no degradation expected at the threshold, got %g", under)
	}
	over := p.InternalBW(1e9)
	if over >= under {
		t.Fatalf("InternalBW(1e9) = %g, want < %g (§4.1 degradation)", over, under)
	}
	if over < p.NetBandwidth/6 {
		t.Fatalf("degradation unreasonably deep: %g", over)
	}
}

func TestOneSidedBWMvapichPenalty(t *testing.T) {
	impi := SkxImpi()
	mva := SkxMvapich()
	n := int64(1 << 20) // intermediate size
	if mva.OneSidedBW(n) >= 0.5*impi.OneSidedBW(n) {
		t.Fatalf("mvapich one-sided (%g) should be several factors below impi (%g) (§4.4)",
			mva.OneSidedBW(n), impi.OneSidedBW(n))
	}
}

func TestCrayOneSidedParityAtLarge(t *testing.T) {
	p := Ls5Cray()
	n := int64(5e8)
	two := p.InternalBW(n)
	one := p.OneSidedBW(n)
	// §4.8: on Cray, large one-sided ≈ derived types.
	if one < 0.8*two || one > 1.2*two {
		t.Fatalf("cray large one-sided %g vs two-sided internal %g not at parity", one, two)
	}
}

func TestWireTime(t *testing.T) {
	p := SkxImpi()
	if p.WireTime(0) != 0 {
		t.Fatal("zero bytes has wire time")
	}
	got := p.WireTime(int64(p.NetBandwidth))
	if got < 0.999 || got > 1.001 {
		t.Fatalf("one-second payload wire time = %g", got)
	}
}

func TestChunks(t *testing.T) {
	p := SkxImpi()
	if p.Chunks(0) != 0 {
		t.Fatal("zero payload has chunks")
	}
	if p.Chunks(1) != 1 {
		t.Fatal("tiny payload needs one chunk")
	}
	if got := p.Chunks(p.InternalChunk()*3 + 1); got != 4 {
		t.Fatalf("chunks = %d, want 4", got)
	}
}

// TestInternalChunkPromotion pins the per-profile calibration of the
// internal chunk size and the pipeline slot-ring depth on the memory
// hierarchy, with the documented defaults for uncalibrated profiles —
// the same promotion shape as ParallelBWScale.
func TestInternalChunkPromotion(t *testing.T) {
	cases := []struct {
		prof  *Profile
		chunk int64
		depth int
	}{
		{SkxImpi(), 512 << 10, 3},
		{SkxMvapich(), 512 << 10, 3},
		{Ls5Cray(), 256 << 10, 2},
		{KnlImpi(), 512 << 10, 4},
	}
	for _, c := range cases {
		if got := c.prof.InternalChunk(); got != c.chunk {
			t.Errorf("%s: InternalChunk = %d, want %d", c.prof.Name, got, c.chunk)
		}
		if got := c.prof.PipelineDepth(); got != c.depth {
			t.Errorf("%s: PipelineDepth = %d, want %d", c.prof.Name, got, c.depth)
		}
		if err := c.prof.Validate(); err != nil {
			t.Errorf("%s: %v", c.prof.Name, err)
		}
	}
	// Uncalibrated hierarchies fall back to the documented defaults.
	p := SkxImpi()
	p.Mem.InternalChunk = 0
	p.Mem.PipelineDepth = 0
	if got := p.InternalChunk(); got != memsim.DefaultInternalChunk {
		t.Errorf("default InternalChunk = %d, want %d", got, memsim.DefaultInternalChunk)
	}
	if got := p.PipelineDepth(); got != memsim.DefaultPipelineDepth {
		t.Errorf("default PipelineDepth = %d, want %d", got, memsim.DefaultPipelineDepth)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("defaulted profile must validate: %v", err)
	}
	// Negative calibrations are rejected by the hierarchy validation.
	p.Mem.InternalChunk = -1
	if err := p.Validate(); err == nil {
		t.Error("negative InternalChunk accepted")
	}
	p.Mem.InternalChunk = 0
	p.Mem.PipelineDepth = -2
	if err := p.Validate(); err == nil {
		t.Error("negative PipelineDepth accepted")
	}
}

func TestKnlWeakCores(t *testing.T) {
	knl := KnlImpi()
	skx := SkxImpi()
	if knl.Mem.CopyBW >= skx.Mem.CopyBW/2 {
		t.Fatal("KNL copy bandwidth should be far below SKX (§4.8)")
	}
	if knl.CallOverhead <= skx.CallOverhead {
		t.Fatal("KNL per-call overhead should exceed SKX")
	}
	// Peak network within 20% of each other ("same peak network
	// performance").
	ratio := knl.NetBandwidth / skx.NetBandwidth
	if ratio < 0.75 || ratio > 1.1 {
		t.Fatalf("KNL/SKX network ratio = %v", ratio)
	}
}

func TestBsendWorse(t *testing.T) {
	for _, name := range []string{"skx-impi", "skx-mvapich", "ls5-cray", "knl-impi"} {
		p, _ := ByName(name)
		if p.BsendWireFactor <= 1 {
			t.Errorf("%s: Bsend should carry a wire penalty (§4.2)", name)
		}
		if p.BsendOverhead <= 0 {
			t.Errorf("%s: Bsend should carry fixed overhead", name)
		}
	}
}

func TestZeroByteLatencyNearPaperMinimum(t *testing.T) {
	// §3.2: the minimum measurement ever was ≈6 µs. A zero-byte
	// ping-pong costs 2*(SendOverhead+NetLatency+RecvOverhead).
	p := SkxImpi()
	rt := 2 * (p.SendOverhead + p.NetLatency + p.RecvOverhead)
	if rt < 3e-6 || rt > 12e-6 {
		t.Fatalf("zero-byte ping-pong = %g s, want on the order of 6 µs", rt)
	}
}

func TestCollectiveTreeLimit(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		limit := p.CollectiveTreeLimit()
		if limit < p.EagerLimit {
			t.Errorf("%s: tree limit %d under the eager limit %d", name, limit, p.EagerLimit)
		}
		if limit <= 0 {
			t.Errorf("%s: non-positive tree limit %d", name, limit)
		}
	}
}
