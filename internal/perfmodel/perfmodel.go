// Package perfmodel holds the machine profiles of the four
// installations the paper measures and the network-side cost model the
// simulated fabric (internal/simnet) prices operations with.
//
// A Profile is a bag of measured-scale constants: link latency and
// bandwidth, the eager limit, MPI-internal buffer behaviour, call
// overheads, one-sided penalties. The memory side lives in
// memsim.Hierarchy. None of the constants claim to be the authors'
// hardware measured to the digit — the task is to reproduce the
// *shape* of the figures: who wins, by what rough factor, and where
// the crossovers fall. Every knob is documented with the paper
// observation it encodes.
package perfmodel

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/memsim"
)

// Profile describes one hardware/MPI installation.
type Profile struct {
	Name        string
	Description string

	// Mem is the memory-side model (cache hierarchy, copy bandwidths).
	Mem memsim.Hierarchy

	// NetLatency is the one-way wire latency of a small message.
	// SendOverhead/RecvOverhead are the CPU-side per-message costs on
	// each end. A zero-byte ping-pong costs
	// 2*(SendOverhead+NetLatency+RecvOverhead), which the profiles
	// calibrate to the ≈6 µs minimum the paper reports (§3.2).
	NetLatency   float64
	SendOverhead float64
	RecvOverhead float64

	// NetBandwidth is the peak injection bandwidth in bytes/second —
	// the plateau of the figures' bandwidth panel.
	NetBandwidth float64

	// IntraNodeLatency is the one-way latency between two ranks on the
	// same node when Mem.NodeSize groups ranks into nodes (the
	// shared-memory transport's hop). 0 means NetLatency — the flat
	// model every measured paper profile uses; scale studies set it
	// (with Mem.NodeSize) to exercise the two-level collective
	// topologies.
	IntraNodeLatency float64

	// EagerLimit is the protocol switch point (§4.5): messages at or
	// under it are sent eagerly (no handshake, but an extra
	// receive-side copy out of the bounce buffer); larger messages use
	// a rendezvous handshake (two extra latencies, zero-copy).
	EagerLimit int64

	// PackedEagerFactor scales the eager limit for sends of
	// user-packed buffers. It is 1 everywhere except Cray MPICH, where
	// the paper observes the drop "at double the data sizes for the
	// packing scheme" (§4.5) — an artefact the paper itself cannot
	// explain and which we therefore encode directly.
	PackedEagerFactor float64

	// ContigOnlyEagerDrop models the Cray observation that the eager
	// drop is visible for the reference (contiguous) send but "for the
	// other schemes not much of a drop is visible" (§4.5): when true,
	// internally chunked sends hide the rendezvous handshake behind
	// the first chunk's packing.
	ContigOnlyEagerDrop bool

	// The size of MPI's internal pack buffer chunks — a derived-type
	// send packs and transmits the payload through these pieces,
	// without pipelining overlap (§2.3: "in practice we don't see this
	// performance") — lives in Mem.InternalChunk, calibrated per
	// profile like the other memory-system constants, together with
	// the software pipeline's slot-ring depth (Mem.PipelineDepth).
	// Read them through InternalChunk() and PipelineDepth().

	// DegradeBytes and DegradeFactor model §4.1: "a drop in
	// performance for messages beyond a few tens of megabytes. We
	// assume that for such relatively large messages the internal
	// buffer bookkeeping of MPI becomes complicated". Internal-buffer
	// sends of n > DegradeBytes run at
	// NetBandwidth / (1 + DegradeFactor*log10(n/DegradeBytes)).
	DegradeBytes  int64
	DegradeFactor float64

	// ChunkOverhead is the fixed bookkeeping cost per internal chunk.
	ChunkOverhead float64

	// CallOverhead is the cost of one MPI call that does almost no
	// work — the per-element MPI_Pack of the packing(e) scheme (§2.6).
	CallOverhead float64

	// PackCallOverhead is the fixed cost of a single MPI_Pack call on
	// a whole datatype (packing(v)).
	PackCallOverhead float64

	// FenceCost is the per-MPI_Win_fence synchronisation constant;
	// PutSetup the per-MPI_Put origin-side setup. Together they make
	// one-sided transfer slow for small messages (§4.4).
	FenceCost float64
	PutSetup  float64

	// OneSidedBWFactor derates the wire bandwidth of puts (≤1).
	// MVAPICH2's intermediate-size penalty (§4.4: "several factors
	// slower") is this factor. OneSidedDegradeFactor replaces
	// DegradeFactor for puts at large sizes; on Cray it equals the
	// two-sided value, reproducing "one-sided performance for large
	// sizes is on par with the derived types" (§4.8).
	OneSidedBWFactor      float64
	OneSidedDegradeFactor float64

	// BsendOverhead and BsendWireFactor price MPI_Bsend's
	// attached-buffer management; the wire factor > 1 makes buffered
	// sends lag even at intermediate sizes (§4.2: "in most MPI
	// implementations it performs worse").
	BsendOverhead   float64
	BsendWireFactor float64

	// NICPipelining enables the hardware capability of the paper's
	// reference [2] (user-mode memory registration on the NIC): the
	// internal pack of a derived-type send overlaps chunk-by-chunk
	// with wire injection instead of serialising before it. §2.3:
	// "with enough support of the NIC and its firmware, it would be
	// possible for this scheme to pipeline the reads and sends
	// similarly to the reference case… In practice we don't see this
	// performance" — so it is off in all measured profiles and exists
	// for the E11 what-if ablation.
	NICPipelining bool
}

// WithPipelining returns a copy of the profile with reference-[2]
// NIC pipelining enabled, for the E11 ablation.
func (p *Profile) WithPipelining() *Profile {
	q := *p
	q.Name = p.Name + "+umr"
	q.Description = p.Description + " (hypothetical UMR/NIC datatype pipelining, paper ref [2])"
	q.NICPipelining = true
	return &q
}

// Validate sanity-checks a profile.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("perfmodel: unnamed profile")
	}
	if err := p.Mem.Validate(); err != nil {
		return fmt.Errorf("profile %s: %w", p.Name, err)
	}
	switch {
	case p.NetBandwidth <= 0:
		return fmt.Errorf("profile %s: NetBandwidth %g", p.Name, p.NetBandwidth)
	case p.NetLatency < 0 || p.SendOverhead < 0 || p.RecvOverhead < 0:
		return fmt.Errorf("profile %s: negative latency/overhead", p.Name)
	case p.IntraNodeLatency < 0:
		return fmt.Errorf("profile %s: IntraNodeLatency %g", p.Name, p.IntraNodeLatency)
	case p.EagerLimit < 0:
		return fmt.Errorf("profile %s: EagerLimit %d", p.Name, p.EagerLimit)
	case p.PackedEagerFactor <= 0:
		return fmt.Errorf("profile %s: PackedEagerFactor %g", p.Name, p.PackedEagerFactor)
	case p.OneSidedBWFactor <= 0 || p.OneSidedBWFactor > 1:
		return fmt.Errorf("profile %s: OneSidedBWFactor %g", p.Name, p.OneSidedBWFactor)
	case p.BsendWireFactor < 1:
		return fmt.Errorf("profile %s: BsendWireFactor %g", p.Name, p.BsendWireFactor)
	}
	return nil
}

// WireTime is the pure bandwidth term of an n-byte transfer.
func (p *Profile) WireTime(n int64) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) / p.NetBandwidth
}

// Eager reports whether an n-byte message goes out under the eager
// protocol. packed marks messages whose payload is a user-packed
// buffer (see PackedEagerFactor).
func (p *Profile) Eager(n int64, packed bool) bool {
	limit := p.EagerLimit
	if packed {
		limit = int64(float64(limit) * p.PackedEagerFactor)
	}
	return n <= limit
}

// InternalBW is the effective bandwidth of a send that flows through
// MPI's internal pack buffers: full bandwidth up to DegradeBytes, then
// logarithmically derated (§4.1).
func (p *Profile) InternalBW(n int64) float64 {
	return p.deratedBW(n, p.DegradeFactor)
}

// OneSidedBW is the effective put bandwidth at size n, combining the
// flat derate with the large-size degradation.
func (p *Profile) OneSidedBW(n int64) float64 {
	return p.deratedBW(n, p.OneSidedDegradeFactor) * p.OneSidedBWFactor
}

func (p *Profile) deratedBW(n int64, factor float64) float64 {
	bw := p.NetBandwidth
	if factor <= 0 || p.DegradeBytes <= 0 || n <= p.DegradeBytes {
		return bw
	}
	return bw / (1 + factor*math.Log10(float64(n)/float64(p.DegradeBytes)))
}

// InternalChunk returns the installation's internal pack-buffer chunk
// size (Mem.InternalChunk, defaulted).
func (p *Profile) InternalChunk() int64 { return p.Mem.InternalChunkSize() }

// PipelineDepth returns the slot-ring depth the software-pipelined
// chunk engine uses on this installation (Mem.PipelineDepth,
// defaulted).
func (p *Profile) PipelineDepth() int { return p.Mem.ChunkPipelineDepth() }

// Chunks returns the internal chunk count for an n-byte payload.
func (p *Profile) Chunks(n int64) int64 {
	chunk := p.InternalChunk()
	if n <= 0 {
		return 0
	}
	return (n + chunk - 1) / chunk
}

// CollectiveTreeLimit returns the per-leg payload size up to which
// fan-in/fan-out collectives (gather/scatter shapes) prefer the
// binomial tree over the linear fan. Tree rounds forward payloads
// through intermediate ranks — every hop is another full memory pass
// and another wire crossing — so the tree only wins while the latency
// it saves dominates the copies it adds: at or below the eager limit
// (where a leg is latency-bound anyway), and below the size whose
// single-core copy time overtakes the wire latency, a bound derived
// from the installation's memory hierarchy (bytes/CopyBW ≤
// NetLatency). Above the limit the engines run the linear fan, whose
// legs each cross the memory system once.
func (p *Profile) CollectiveTreeLimit() int64 {
	limit := p.EagerLimit
	if byMem := int64(p.NetLatency * p.Mem.CopyBW); byMem > limit {
		limit = byMem
	}
	return limit
}

// TreeAggregateHop returns the largest block a binomial fan over ranks
// ranks forwards through an intermediate rank when every rank
// contributes n bytes: subtree blocks combine on the way, so inner
// hops carry multiples of the per-rank payload.
func TreeAggregateHop(ranks int, n int64) int64 {
	var max int64
	for rel := 1; rel < ranks; rel++ {
		span := int64(rel & -rel)
		if r := int64(ranks - rel); r < span {
			span = r
		}
		if span > max {
			max = span
		}
	}
	return max * n
}

// UseCollectiveTree reports whether the fan-in/fan-out engines should
// run the binomial tree for per-rank contributions of n bytes over
// ranks ranks: the per-leg size must sit in the latency-bound regime
// (CollectiveTreeLimit), and every aggregated store-and-forward hop
// must stay eager — a rendezvous handshake inside the tree costs the
// very round trip the tree exists to avoid, which is how a tree
// gather loses to the linear fan near the eager limit on
// small-eager installations (the collective ≤ p2p-decomposition
// guideline).
func (p *Profile) UseCollectiveTree(ranks int, n int64) bool {
	return n > 0 && ranks > 2 && n <= p.CollectiveTreeLimit() &&
		TreeAggregateHop(ranks, n) <= p.EagerLimit
}

// registry of the four installations, keyed by canonical name.
var registry = map[string]func() *Profile{
	"skx-impi":    SkxImpi,
	"skx-mvapich": SkxMvapich,
	"ls5-cray":    Ls5Cray,
	"knl-impi":    KnlImpi,
	"generic":     Generic,
}

// Names lists the registered profile names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ByName returns a fresh copy of the named profile.
func ByName(name string) (*Profile, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("perfmodel: unknown profile %q (have %v)", name, Names())
	}
	return f(), nil
}

// SkxImpi is Stampede2-SKX with Intel MPI over OmniPath (Figure 1):
// dual Skylake nodes, 100 Gb/s fabric, 12.5 GB/s injection plateau.
func SkxImpi() *Profile {
	return &Profile{
		Name:        "skx-impi",
		Description: "Stampede2 Skylake, OmniPath, Intel MPI (paper Figure 1)",
		Mem: memsim.Hierarchy{
			LineSize:         64,
			L1:               32 << 10,
			L2:               1 << 20,
			LLC:              33 << 20,
			CopyBW:           12.2e9,
			StreamBW:         13.5e9,
			CacheBW:          38e9,
			MissLatency:      90e-9,
			PrefetchMinBlock: 256,
			PrefetchStreams:  16,
			SegmentOverhead:  0.15e-9,
			// A Skylake core's copy loop runs close to the socket's
			// sustainable rate: ~3.5 cores saturate it.
			ParallelBWScale: 3.5,
			// Intel MPI stages derived-type sends through 512 KiB
			// internal chunks; with the core packing near the OmniPath
			// injection rate, triple buffering keeps the NIC fed when
			// pack and inject alternate which stage is slower.
			InternalChunk: 512 << 10,
			PipelineDepth: 3,
		},
		NetLatency:            2.0e-6,
		SendOverhead:          0.5e-6,
		RecvOverhead:          0.5e-6,
		NetBandwidth:          12.3e9,
		EagerLimit:            64 << 10,
		PackedEagerFactor:     1,
		DegradeBytes:          32 << 20,
		DegradeFactor:         1.8,
		ChunkOverhead:         0.7e-6,
		CallOverhead:          5e-9,
		PackCallOverhead:      0.35e-6,
		FenceCost:             6e-6,
		PutSetup:              1.2e-6,
		OneSidedBWFactor:      0.72,
		OneSidedDegradeFactor: 2.2,
		BsendOverhead:         1.2e-6,
		BsendWireFactor:       1.22,
	}
}

// SkxMvapich is Stampede2-SKX with MVAPICH2 (Figure 2): "largely the
// same results" as Intel MPI except one-sided transfer "is several
// factors slower" at intermediate sizes (§4.4).
func SkxMvapich() *Profile {
	p := SkxImpi()
	p.Name = "skx-mvapich"
	p.Description = "Stampede2 Skylake, OmniPath, MVAPICH2 (paper Figure 2)"
	p.EagerLimit = 16 << 10
	p.OneSidedBWFactor = 0.22
	p.OneSidedDegradeFactor = 2.9
	p.FenceCost = 7.5e-6
	p.DegradeFactor = 1.9
	p.BsendWireFactor = 1.3
	return p
}

// Ls5Cray is Lonestar5, a Cray XC40 with the Aries interconnect and
// Cray MPICH 7.3 (Figure 3): lower peak (≈8 GB/s plateau in the
// paper's bandwidth panel), eager drop visible mainly on the
// reference curve and at twice the size for packed sends, one-sided
// on par with derived types at large sizes (§4.8).
func Ls5Cray() *Profile {
	return &Profile{
		Name:        "ls5-cray",
		Description: "Lonestar5 Cray XC40, Aries, Cray MPICH (paper Figure 3)",
		Mem: memsim.Hierarchy{
			LineSize:         64,
			L1:               32 << 10,
			L2:               256 << 10,
			LLC:              30 << 20,
			CopyBW:           11e9,
			StreamBW:         12.5e9,
			CacheBW:          34e9,
			MissLatency:      85e-9,
			PrefetchMinBlock: 256,
			PrefetchStreams:  16,
			SegmentOverhead:  0.16e-9,
			// Aries-era Haswell sockets saturate slightly earlier than
			// Skylake under a scalar copy loop.
			ParallelBWScale: 3.2,
			// Cray MPICH's smaller 256 KiB staging chunks double the
			// chunk rate, so plain double buffering already hides the
			// faster stage behind the slower one.
			InternalChunk: 256 << 10,
			PipelineDepth: 2,
		},
		NetLatency:            1.6e-6,
		SendOverhead:          0.5e-6,
		RecvOverhead:          0.5e-6,
		NetBandwidth:          8.1e9,
		EagerLimit:            8 << 10,
		PackedEagerFactor:     2, // §4.5: drop at double the size for packing
		ContigOnlyEagerDrop:   true,
		DegradeBytes:          24 << 20,
		DegradeFactor:         1.6,
		ChunkOverhead:         0.6e-6,
		CallOverhead:          6e-9,
		PackCallOverhead:      0.3e-6,
		FenceCost:             5e-6,
		PutSetup:              1.0e-6,
		OneSidedBWFactor:      0.9,
		OneSidedDegradeFactor: 1.6, // §4.8: parity with derived types at large sizes
		BsendOverhead:         1.0e-6,
		BsendWireFactor:       1.28,
	}
}

// KnlImpi is Stampede2-KNL with Intel MPI (Figure 4): "the same peak
// network performance, but the performance of our non-contiguous tests
// is hampered by the core performance in constructing the send buffer"
// (§4.8) — a weak in-order core gives low copy bandwidth and high call
// overheads.
func KnlImpi() *Profile {
	return &Profile{
		Name:        "knl-impi",
		Description: "Stampede2 Knights Landing, OmniPath, Intel MPI (paper Figure 4)",
		Mem: memsim.Hierarchy{
			LineSize:         64,
			L1:               32 << 10,
			L2:               512 << 10,
			LLC:              16 << 30, // MCDRAM operating as cache
			CopyBW:           2.9e9,    // weak scalar core building buffers
			StreamBW:         9.5e9,
			CacheBW:          5.2e9, // single-core read of MCDRAM-resident data
			MissLatency:      150e-9,
			PrefetchMinBlock: 512,
			PrefetchStreams:  4,
			SegmentOverhead:  0.5e-9,
			// A single weak in-order KNL core is nowhere near MCDRAM's
			// aggregate bandwidth, so parallel packing keeps scaling
			// much further than on the Xeon sockets.
			ParallelBWScale: 6.5,
			// The weak core packs far below the injection rate, so the
			// pipeline is pack-bound: a deeper ring of the 512 KiB
			// chunks keeps the wire busy across the in-order core's
			// erratic chunk times.
			InternalChunk: 512 << 10,
			PipelineDepth: 4,
		},
		NetLatency:            3.0e-6,
		SendOverhead:          1.2e-6,
		RecvOverhead:          1.2e-6,
		NetBandwidth:          10.2e9,
		EagerLimit:            64 << 10,
		PackedEagerFactor:     1,
		DegradeBytes:          32 << 20,
		DegradeFactor:         1.5,
		ChunkOverhead:         2.5e-6,
		CallOverhead:          15e-9,
		PackCallOverhead:      1.1e-6,
		FenceCost:             15e-6,
		PutSetup:              3e-6,
		OneSidedBWFactor:      0.7,
		OneSidedDegradeFactor: 2.4,
		BsendOverhead:         3e-6,
		BsendWireFactor:       1.25,
	}
}

// Generic is a neutral mid-range profile for tests and examples that
// do not model a specific installation.
func Generic() *Profile {
	p := SkxImpi()
	p.Name = "generic"
	p.Description = "neutral test profile (Skylake-like)"
	return p
}
