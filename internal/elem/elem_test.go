package elem

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/buf"
)

func TestFloat64RoundTrip(t *testing.T) {
	b := buf.Alloc(8 * 4)
	vals := []float64{0, -1.5, math.Pi, math.Inf(1)}
	for i, v := range vals {
		PutFloat64(b, i, v)
	}
	for i, v := range vals {
		if got := Float64(b, i); got != v {
			t.Errorf("elem %d = %v, want %v", i, got, v)
		}
	}
}

func TestFloat32RoundTrip(t *testing.T) {
	b := buf.Alloc(4 * 2)
	PutFloat32(b, 0, 1.25)
	PutFloat32(b, 1, -7)
	if Float32(b, 0) != 1.25 || Float32(b, 1) != -7 {
		t.Fatalf("got %v %v", Float32(b, 0), Float32(b, 1))
	}
}

func TestIntRoundTrips(t *testing.T) {
	b := buf.Alloc(64)
	PutInt32(b, 2, -123456)
	if Int32(b, 2) != -123456 {
		t.Fatalf("int32 = %d", Int32(b, 2))
	}
	PutInt64(b, 3, -1<<40)
	if Int64(b, 3) != -1<<40 {
		t.Fatalf("int64 = %d", Int64(b, 3))
	}
}

func TestComplexLayoutIsRealImagPairs(t *testing.T) {
	// The layout property the whole study rests on: real parts are
	// every other float64.
	b := buf.Alloc(16 * 2)
	PutComplex128(b, 0, complex(1, 2))
	PutComplex128(b, 1, complex(3, 4))
	want := []float64{1, 2, 3, 4}
	for i, w := range want {
		if got := Float64(b, i); got != w {
			t.Fatalf("float64 view[%d] = %v, want %v", i, got, w)
		}
	}
	if Complex128(b, 1) != complex(3, 4) {
		t.Fatalf("complex read back %v", Complex128(b, 1))
	}
}

func TestSliceHelpers(t *testing.T) {
	in := []float64{1, 2, 3}
	b := Float64s(in)
	out := ToFloat64s(b)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("out[%d] = %v", i, out[i])
		}
	}
	cs := []complex128{1 + 2i, 3 - 4i}
	cb := Complex128s(cs)
	back := ToComplex128s(cb)
	for i := range cs {
		if back[i] != cs[i] {
			t.Fatalf("complex[%d] = %v", i, back[i])
		}
	}
}

func TestVirtualBlockReadsZero(t *testing.T) {
	v := buf.Virtual(64)
	PutFloat64(v, 0, 42) // must not panic
	if Float64(v, 0) != 0 {
		t.Fatal("virtual read non-zero")
	}
	if Complex128(v, 0) != 0 {
		t.Fatal("virtual complex non-zero")
	}
}

// Property: Put/Get round-trips hold for arbitrary values and indices.
func TestQuickFloat64(t *testing.T) {
	b := buf.Alloc(8 * 64)
	f := func(v float64, idx uint8) bool {
		i := int(idx) % 64
		PutFloat64(b, i, v)
		got := Float64(b, i)
		return got == v || (math.IsNaN(v) && math.IsNaN(got))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickComplex128(t *testing.T) {
	b := buf.Alloc(16 * 32)
	f := func(re, im float64, idx uint8) bool {
		if math.IsNaN(re) || math.IsNaN(im) {
			return true
		}
		i := int(idx) % 32
		PutComplex128(b, i, complex(re, im))
		return Complex128(b, i) == complex(re, im)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
