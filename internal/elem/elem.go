// Package elem provides typed element views over byte blocks.
//
// The runtime moves raw bytes (internal/buf); applications think in
// float64 grids, complex128 signals and int32 index lists. elem bridges
// the two with explicit little-endian encoding from the standard
// library — no unsafe — which keeps the data movement observable and
// portable at the cost of a conversion the real MPI would not pay.
// That cost is irrelevant here because measured time comes from the
// virtual clock, not from Go's execution speed.
package elem

import (
	"encoding/binary"
	"math"

	"repro/internal/buf"
)

// Sizes of the supported element types in bytes, mirroring the MPI
// basic datatypes the paper's benchmark uses.
const (
	Float64Size    = 8
	Float32Size    = 4
	Int32Size      = 4
	Int64Size      = 8
	Complex128Size = 16
	ByteSize       = 1
)

// PutFloat64 stores v as the i-th float64 of the block.
func PutFloat64(b buf.Block, i int, v float64) {
	if b.IsVirtual() {
		return
	}
	binary.LittleEndian.PutUint64(b.Bytes()[i*Float64Size:], math.Float64bits(v))
}

// Float64 loads the i-th float64 of the block. Virtual blocks read as
// zero.
func Float64(b buf.Block, i int) float64 {
	if b.IsVirtual() {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b.Bytes()[i*Float64Size:]))
}

// PutFloat32 stores v as the i-th float32 of the block.
func PutFloat32(b buf.Block, i int, v float32) {
	if b.IsVirtual() {
		return
	}
	binary.LittleEndian.PutUint32(b.Bytes()[i*Float32Size:], math.Float32bits(v))
}

// Float32 loads the i-th float32 of the block.
func Float32(b buf.Block, i int) float32 {
	if b.IsVirtual() {
		return 0
	}
	return math.Float32frombits(binary.LittleEndian.Uint32(b.Bytes()[i*Float32Size:]))
}

// PutInt32 stores v as the i-th int32 of the block.
func PutInt32(b buf.Block, i int, v int32) {
	if b.IsVirtual() {
		return
	}
	binary.LittleEndian.PutUint32(b.Bytes()[i*Int32Size:], uint32(v))
}

// Int32 loads the i-th int32 of the block.
func Int32(b buf.Block, i int) int32 {
	if b.IsVirtual() {
		return 0
	}
	return int32(binary.LittleEndian.Uint32(b.Bytes()[i*Int32Size:]))
}

// PutInt64 stores v as the i-th int64 of the block.
func PutInt64(b buf.Block, i int, v int64) {
	if b.IsVirtual() {
		return
	}
	binary.LittleEndian.PutUint64(b.Bytes()[i*Int64Size:], uint64(v))
}

// Int64 loads the i-th int64 of the block.
func Int64(b buf.Block, i int) int64 {
	if b.IsVirtual() {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b.Bytes()[i*Int64Size:]))
}

// PutComplex128 stores v as the i-th complex128 of the block (real
// part first, then imaginary, both little-endian float64 — the same
// memory layout C and Fortran use, which is what makes "send only the
// real parts" a strided layout with stride 16 and block length 8).
func PutComplex128(b buf.Block, i int, v complex128) {
	if b.IsVirtual() {
		return
	}
	off := i * Complex128Size
	binary.LittleEndian.PutUint64(b.Bytes()[off:], math.Float64bits(real(v)))
	binary.LittleEndian.PutUint64(b.Bytes()[off+8:], math.Float64bits(imag(v)))
}

// Complex128 loads the i-th complex128 of the block.
func Complex128(b buf.Block, i int) complex128 {
	if b.IsVirtual() {
		return 0
	}
	off := i * Complex128Size
	re := math.Float64frombits(binary.LittleEndian.Uint64(b.Bytes()[off:]))
	im := math.Float64frombits(binary.LittleEndian.Uint64(b.Bytes()[off+8:]))
	return complex(re, im)
}

// Float64s copies a []float64 into a fresh real block.
func Float64s(vs []float64) buf.Block {
	b := buf.Alloc(len(vs) * Float64Size)
	for i, v := range vs {
		PutFloat64(b, i, v)
	}
	return b
}

// ToFloat64s decodes an entire block as float64 values. The block
// length must be a multiple of 8.
func ToFloat64s(b buf.Block) []float64 {
	n := b.Len() / Float64Size
	out := make([]float64, n)
	if b.IsVirtual() {
		return out
	}
	for i := range out {
		out[i] = Float64(b, i)
	}
	return out
}

// Complex128s copies a []complex128 into a fresh real block.
func Complex128s(vs []complex128) buf.Block {
	b := buf.Alloc(len(vs) * Complex128Size)
	for i, v := range vs {
		PutComplex128(b, i, v)
	}
	return b
}

// ToComplex128s decodes an entire block as complex128 values.
func ToComplex128s(b buf.Block) []complex128 {
	n := b.Len() / Complex128Size
	out := make([]complex128, n)
	if b.IsVirtual() {
		return out
	}
	for i := range out {
		out[i] = Complex128(b, i)
	}
	return out
}
