package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/buf"
	"repro/internal/datatype"
	"repro/internal/elem"
	"repro/internal/memsim"
	"repro/internal/perfmodel"
	"repro/internal/simnet"
)

// pat is the deterministic payload pattern of the chaos suite: a
// receiver can always reconstruct what the sender must have written.
func pat(src, dst, i int) byte { return byte(src*31 + dst*17 + i*7 + 5) }

func fillPat(b buf.Block, src, dst int) {
	d := b.Bytes()
	for i := range d {
		d[i] = pat(src, dst, i)
	}
}

// chaosScheme is one communication pattern of the differential suite.
// run executes the pattern and appends everything this rank received
// to out; the same workload must produce the same bytes with and
// without an armed fault plan.
type chaosScheme struct {
	name     string
	minRanks int
	run      func(c *Comm, out *bytes.Buffer) error
}

func ringPeers(c *Comm) (next, prev int) {
	return (c.Rank() + 1) % c.Size(), (c.Rank() - 1 + c.Size()) % c.Size()
}

// chaosVector is the derived layout the typed schemes exercise: 16
// float64 pairs at stride 3 (128 packed bytes, 384-byte extent).
func chaosVector(t testing.TB) *datatype.Type {
	ty, err := datatype.Vector(16, 2, 3, datatype.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if err := ty.Commit(); err != nil {
		t.Fatal(err)
	}
	return ty
}

func chaosSchemes(t testing.TB) []chaosScheme {
	ty := chaosVector(t)
	tyNeed := int(ty.PackSize(1) * 4) // 4 instances: 512 packed bytes
	tyExtent := 3 * 8 * 16 * 4        // extent of 4 instances
	return []chaosScheme{
		{"eager-ring", 2, func(c *Comm, out *bytes.Buffer) error {
			next, prev := ringPeers(c)
			rb := buf.Alloc(256)
			for i := 0; i < 4; i++ {
				sb := buf.Alloc(256)
				fillPat(sb, c.Rank(), next)
				if err := c.Send(sb, next, i); err != nil {
					return err
				}
				if _, err := c.Recv(rb, prev, i); err != nil {
					return err
				}
				out.Write(rb.Bytes())
			}
			return nil
		}},
		{"rendezvous-ring", 2, func(c *Comm, out *bytes.Buffer) error {
			next, prev := ringPeers(c)
			rb := buf.Alloc(8192)
			sb := buf.Alloc(8192)
			fillPat(sb, c.Rank(), next)
			req, err := c.Irecv(rb, prev, 0)
			if err != nil {
				return err
			}
			if err := c.Ssend(sb, next, 0); err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			out.Write(rb.Bytes())
			return nil
		}},
		{"typed-rdv-ring", 2, func(c *Comm, out *bytes.Buffer) error {
			next, prev := ringPeers(c)
			sb := buf.Alloc(tyExtent)
			rb := buf.Alloc(tyExtent)
			fillPat(sb, c.Rank(), next)
			req, err := c.IrecvType(rb, 4, chaosVector(t), prev, 0)
			if err != nil {
				return err
			}
			if err := c.SsendType(sb, 4, chaosVector(t), next, 0); err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			out.Write(rb.Bytes())
			return nil
		}},
		{"sendv-fused-ring", 2, func(c *Comm, out *bytes.Buffer) error {
			next, prev := ringPeers(c)
			sb := buf.Alloc(tyExtent)
			rb := buf.Alloc(tyExtent)
			fillPat(sb, c.Rank(), next)
			req, err := c.IrecvType(rb, 4, chaosVector(t), prev, 0)
			if err != nil {
				return err
			}
			if err := c.SsendvType(sb, 4, chaosVector(t), next, 0); err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			out.Write(rb.Bytes())
			return nil
		}},
		{"pipelined-ring", 2, func(c *Comm, out *bytes.Buffer) error {
			next, prev := ringPeers(c)
			sb := buf.Alloc(tyExtent)
			rb := buf.Alloc(tyExtent)
			fillPat(sb, c.Rank(), next)
			req, err := c.IrecvType(rb, 4, chaosVector(t), prev, 0)
			if err != nil {
				return err
			}
			if err := c.SsendpType(sb, 4, chaosVector(t), next, 0); err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			out.Write(rb.Bytes())
			return nil
		}},
		{"bsend-ring", 2, func(c *Comm, out *bytes.Buffer) error {
			next, prev := ringPeers(c)
			if err := c.BufferAttach(buf.Alloc(4096)); err != nil {
				return err
			}
			sb := buf.Alloc(512)
			rb := buf.Alloc(512)
			fillPat(sb, c.Rank(), next)
			if err := c.Bsend(sb, next, 0); err != nil {
				return err
			}
			if _, err := c.Recv(rb, prev, 0); err != nil {
				return err
			}
			out.Write(rb.Bytes())
			if _, err := c.BufferDetach(); err != nil {
				return err
			}
			return nil
		}},
		{"bcast-type", 1, func(c *Comm, out *bytes.Buffer) error {
			b := buf.Alloc(tyExtent)
			if c.Rank() == 0 {
				fillPat(b, 0, 0)
			}
			if err := c.BcastType(b, 4, chaosVector(t), 0); err != nil {
				return err
			}
			out.Write(b.Bytes())
			return nil
		}},
		{"gather-type", 1, func(c *Comm, out *bytes.Buffer) error {
			sb := buf.Alloc(tyExtent)
			fillPat(sb, c.Rank(), 0)
			rb := buf.Alloc(tyNeed * c.Size())
			cnt, cty, err := contigView(tyNeed)
			if err != nil {
				return err
			}
			if err := c.GatherType(sb, 4, chaosVector(t), rb, cnt, cty, 0); err != nil {
				return err
			}
			if c.Rank() == 0 {
				out.Write(rb.Bytes())
			}
			return nil
		}},
		{"scatter-type", 1, func(c *Comm, out *bytes.Buffer) error {
			sb := buf.Alloc(tyNeed * c.Size())
			if c.Rank() == 0 {
				fillPat(sb, 0, 1)
			}
			rb := buf.Alloc(tyExtent)
			cnt, cty, err := contigView(tyNeed)
			if err != nil {
				return err
			}
			if err := c.ScatterType(sb, cnt, cty, rb, 4, chaosVector(t), 0); err != nil {
				return err
			}
			out.Write(rb.Bytes())
			return nil
		}},
		{"allgather-type", 1, func(c *Comm, out *bytes.Buffer) error {
			sb := buf.Alloc(tyExtent)
			fillPat(sb, c.Rank(), 2)
			rb := buf.Alloc(tyNeed * c.Size())
			cnt, cty, err := contigView(tyNeed)
			if err != nil {
				return err
			}
			if err := c.AllgatherType(sb, 4, chaosVector(t), rb, cnt, cty); err != nil {
				return err
			}
			out.Write(rb.Bytes())
			return nil
		}},
		{"alltoall-type", 1, func(c *Comm, out *bytes.Buffer) error {
			block := 128
			sb := buf.Alloc(block * c.Size())
			fillPat(sb, c.Rank(), 3)
			rb := buf.Alloc(block * c.Size())
			if err := c.Alltoall(sb, rb, block); err != nil {
				return err
			}
			out.Write(rb.Bytes())
			return nil
		}},
		{"gatherv-scatterv", 1, func(c *Comm, out *bytes.Buffer) error {
			counts := make([]int, c.Size())
			displs := make([]int, c.Size())
			total := 0
			for r := range counts {
				counts[r] = 64 + 32*r
				displs[r] = total
				total += counts[r]
			}
			sb := buf.Alloc(counts[c.Rank()])
			fillPat(sb, c.Rank(), 4)
			rb := buf.Alloc(total)
			if err := c.Gatherv(sb, rb, counts, displs, 0); err != nil {
				return err
			}
			if c.Rank() == 0 {
				out.Write(rb.Bytes())
			}
			back := buf.Alloc(counts[c.Rank()])
			if err := c.Scatterv(rb, counts, displs, back, 0); err != nil {
				return err
			}
			out.Write(back.Bytes())
			return nil
		}},
		{"reduce-scan", 1, func(c *Comm, out *bytes.Buffer) error {
			const n = 32
			send := buf.Alloc(n * elem.Float64Size)
			for i := 0; i < n; i++ {
				elem.PutFloat64(send, i, float64(c.Rank()*n+i))
			}
			recv := buf.Alloc(n * elem.Float64Size)
			if err := c.Allreduce(send, recv, n, OpSum); err != nil {
				return err
			}
			out.Write(recv.Bytes())
			scanOut := buf.Alloc(n * elem.Float64Size)
			if err := c.Scan(send, scanOut, n, OpMax); err != nil {
				return err
			}
			out.Write(scanOut.Bytes())
			c.Barrier()
			return nil
		}},
	}
}

// runChaos executes one scheme across size ranks under the given fault
// plan and returns each rank's received bytes.
func runChaos(t testing.TB, size int, faults *simnet.FaultPlan, s chaosScheme) [][]byte {
	t.Helper()
	outs := make([][]byte, size)
	err := Run(size, Options{WallLimit: 60 * time.Second, Faults: faults}, func(c *Comm) error {
		var bb bytes.Buffer
		if err := s.run(c, &bb); err != nil {
			return fmt.Errorf("rank %d: %w", c.Rank(), err)
		}
		outs[c.Rank()] = bb.Bytes()
		return nil
	})
	if err != nil {
		t.Fatalf("%s/%d ranks (faults=%v): %v", s.name, size, faults != nil, err)
	}
	return outs
}

// TestChaosDifferential is the heart of the robustness acceptance: for
// every protocol scheme and world size 1–8, a run under a randomized
// fault plan with the default retry budget must deliver byte-identical
// results to the fault-free oracle run.
func TestChaosDifferential(t *testing.T) {
	sizes := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		sizes = []int{1, 2, 5}
	}
	for _, s := range chaosSchemes(t) {
		s := s
		t.Run(s.name, func(t *testing.T) {
			t.Parallel()
			for _, size := range sizes {
				if size < s.minRanks {
					continue
				}
				oracle := runChaos(t, size, nil, s)
				plan := simnet.UniformFaults(uint64(size)*1009+77, 0.05)
				got := runChaos(t, size, plan, s)
				for r := range oracle {
					if !bytes.Equal(oracle[r], got[r]) {
						t.Fatalf("%s/%d ranks: rank %d bytes diverge under faults", s.name, size, r)
					}
				}
			}
		})
	}
}

// TestChaosSmoke is the CI gate: a fixed seed, a 1% drop rate, and the
// default retry budget must deliver 100% of a message batch with the
// drops actually exercised.
func TestChaosSmoke(t *testing.T) {
	const msgs = 200
	var counters simnet.Counters
	err := Run(2, Options{
		WallLimit: 60 * time.Second,
		Faults:    simnet.DropOnly(7, 0.01),
	}, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				sb := buf.Alloc(512)
				fillPat(sb, 0, i)
				if err := c.Send(sb, 1, 0); err != nil {
					return err
				}
			}
			return nil
		}
		rb := buf.Alloc(512)
		for i := 0; i < msgs; i++ {
			if _, err := c.Recv(rb, 0, 0); err != nil {
				return err
			}
			for j, b := range rb.Bytes() {
				if b != pat(0, i, j) {
					return fmt.Errorf("message %d byte %d = %#x, want %#x", i, j, b, pat(0, i, j))
				}
			}
		}
		counters = c.Counters()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The receiver's counters see the sender's drops via the shared
	// fabric totals on its own links; assert on the world's totals
	// instead: re-run summing both ranks is overkill — the fixed seed
	// guarantees drops on link 0→1, counted at the sender. Spot-check
	// that delivery still happened.
	if counters.MessagesMatched != msgs {
		t.Fatalf("matched %d of %d messages", counters.MessagesMatched, msgs)
	}
}

// TestChaosDeterminism: equal fault plans must produce identical
// virtual times and identical fault attribution, run to run.
func TestChaosDeterminism(t *testing.T) {
	run := func() (float64, simnet.Counters) {
		var w float64
		var cnt simnet.Counters
		err := Run(2, Options{WallLimit: 30 * time.Second, Faults: simnet.UniformFaults(42, 0.08)}, func(c *Comm) error {
			next, prev := ringPeers(c)
			sb := buf.Alloc(4096)
			rb := buf.Alloc(4096)
			fillPat(sb, c.Rank(), next)
			for i := 0; i < 8; i++ {
				req, err := c.Irecv(rb, prev, i)
				if err != nil {
					return err
				}
				if err := c.Ssend(sb, next, i); err != nil {
					return err
				}
				if _, err := req.Wait(); err != nil {
					return err
				}
			}
			if c.Rank() == 0 {
				w = c.Wtime()
				cnt = c.Counters()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return w, cnt
	}
	w1, c1 := run()
	w2, c2 := run()
	if w1 != w2 {
		t.Fatalf("virtual time diverged: %v vs %v", w1, w2)
	}
	if c1 != c2 {
		t.Fatalf("fault counters diverged:\n%+v\n%+v", c1, c2)
	}
}

// TestWaitTimeout: a receive that can never complete returns a typed
// TimeoutError within its virtual deadline instead of hanging.
func TestWaitTimeout(t *testing.T) {
	err := Run(2, Options{WallLimit: 30 * time.Second, DetectDeadlock: true}, func(c *Comm) error {
		if c.Rank() != 0 {
			return nil // never sends
		}
		req, err := c.Irecv(buf.Alloc(64), 1, 0)
		if err != nil {
			return err
		}
		req.SetDeadline(2_000_000) // 2ms virtual
		before := c.Clock().Now()
		_, werr := req.Wait()
		if !errors.Is(werr, ErrTimeout) {
			return fmt.Errorf("Wait error = %v, want ErrTimeout", werr)
		}
		var te *TimeoutError
		if !errors.As(werr, &te) || te.Deadline != 2_000_000 {
			return fmt.Errorf("timeout detail = %+v", te)
		}
		if got := c.Clock().Now() - before; got != 2_000_000 {
			return fmt.Errorf("clock advanced %d ns, want the 2ms deadline", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDeadlockDetector: two ranks receiving from each other with no
// sender must abort with a structured report naming both stuck
// endpoints, instead of hanging until the watchdog.
func TestDeadlockDetector(t *testing.T) {
	rankErrs := make([]error, 2)
	err := Run(2, Options{WallLimit: 30 * time.Second, DetectDeadlock: true}, func(c *Comm) error {
		_, err := c.Recv(buf.Alloc(8), 1-c.Rank(), 3)
		rankErrs[c.Rank()] = err
		return err
	})
	if err == nil {
		t.Fatal("deadlocked run returned nil")
	}
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("no DeadlockError in %v", err)
	}
	seen := map[int]bool{}
	for _, b := range de.Report.Stuck {
		seen[b.Rank] = true
		if b.Op != "recv" {
			t.Errorf("stuck op = %q, want recv", b.Op)
		}
		if b.Tag != 3 {
			t.Errorf("stuck tag = %d, want 3", b.Tag)
		}
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("report names ranks %v, want both 0 and 1: %s", seen, de.Report)
	}
	for r, rerr := range rankErrs {
		if !errors.Is(rerr, ErrDeadlock) {
			t.Errorf("rank %d unwound with %v, want ErrDeadlock", r, rerr)
		}
	}
}

// TestRequestMisuse: double Wait and Test-after-completion are typed
// errors, not silent no-ops.
func TestRequestMisuse(t *testing.T) {
	run2(t, func(c *Comm) error {
		if c.Rank() == 0 {
			req, err := c.Isend(buf.Alloc(32), 1, 0)
			if err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			_, werr := req.Wait()
			if !errors.Is(werr, ErrRequestInactive) {
				t.Errorf("double Wait = %v, want ErrRequestInactive", werr)
			}
			var rse *RequestStateError
			if !errors.As(werr, &rse) || rse.Op != "wait" || rse.State != "finished" || rse.ID == 0 {
				t.Errorf("double Wait detail = %+v, want typed wait-on-finished state", rse)
			}
			if _, _, err := req.Test(); !errors.Is(err, ErrRequestInactive) {
				t.Errorf("Test after Wait = %v, want ErrRequestInactive", err)
			}
			return nil
		}
		_, err := c.Recv(buf.Alloc(32), 0, 0)
		return err
	})
}

// TestPersistentMisuse: the persistent request lifecycle errors are
// typed — Start while active, Free while active, Wait while inactive,
// anything after Free.
func TestPersistentMisuseTyped(t *testing.T) {
	run2(t, func(c *Comm) error {
		if c.Rank() != 0 {
			_, err := c.Recv(buf.Alloc(16), 0, 0)
			return err
		}
		req, err := c.SendInit(buf.Alloc(16), 1, 0)
		if err != nil {
			return err
		}
		if _, err := req.Wait(); !errors.Is(err, ErrRequestInactive) {
			t.Errorf("Wait while inactive = %v, want ErrRequestInactive", err)
		}
		if err := req.Start(); err != nil {
			return err
		}
		if err := req.Start(); !errors.Is(err, ErrRequestActive) {
			t.Errorf("Start while active = %v, want ErrRequestActive", err)
		}
		if err := req.Free(); !errors.Is(err, ErrRequestActive) {
			t.Errorf("Free while active = %v, want ErrRequestActive", err)
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		if err := req.Free(); err != nil {
			return err
		}
		ferr := req.Free()
		if !errors.Is(ferr, ErrRequestFreed) {
			t.Errorf("double Free = %v, want ErrRequestFreed", ferr)
		}
		var rse *RequestStateError
		if !errors.As(ferr, &rse) || rse.Op != "free" || rse.State != "freed" {
			t.Errorf("double Free detail = %+v, want typed free-on-freed state", rse)
		}
		if err := req.Start(); !errors.Is(err, ErrRequestFreed) {
			t.Errorf("Start after Free = %v, want ErrRequestFreed", err)
		}
		if _, err := req.Wait(); !errors.Is(err, ErrRequestFreed) {
			t.Errorf("Wait after Free = %v, want ErrRequestFreed", err)
		}
		return nil
	})
}

// TestWaitAfterAbortCarriesReason: a second Wait on a request that
// completed with a fabric-abort error is still misuse, but the typed
// error preserves the abort reason instead of swallowing it behind a
// bare "request is not active".
func TestWaitAfterAbortCarriesReason(t *testing.T) {
	plan := &simnet.FaultPlan{Seed: 5, Default: simnet.LinkFaults{Drop: 1}}
	_ = Run(2, Options{
		WallLimit: 30 * time.Second,
		Faults:    plan,
		Retry:     RetryPolicy{MaxRetries: 0},
	}, func(c *Comm) error {
		if c.Rank() != 0 {
			_, err := c.Recv(buf.Alloc(256<<10), 0, 0)
			return err
		}
		req, err := c.Isend(buf.Alloc(256<<10), 1, 0)
		if err != nil {
			return err
		}
		if _, err := req.Wait(); err == nil {
			t.Error("total-loss Isend completed cleanly")
		}
		_, werr := req.Wait()
		var rse *RequestStateError
		if !errors.As(werr, &rse) {
			t.Fatalf("Wait after abort = %v, want RequestStateError", werr)
		}
		if rse.Prior == nil {
			t.Errorf("Wait-after-abort detail %+v lost the original failure", rse)
		}
		if !errors.Is(werr, ErrRequestInactive) {
			t.Errorf("Wait after abort = %v, want ErrRequestInactive match", werr)
		}
		return nil
	})
}

// TestShortDeliverySurfaces: a truncated eager payload injected on a
// clean fabric (no retry machinery armed) surfaces as a typed
// ErrShortDelivery from Recv instead of silently corrupting the
// receive.
func TestShortDeliverySurfaces(t *testing.T) {
	err := Run(2, Options{WallLimit: 30 * time.Second}, func(c *Comm) error {
		if c.Rank() == 0 {
			// A raw fabric injection advertising more bytes than travel.
			m := &simnet.Message{
				Ctx: 0, Src: 0, Tag: 0, Kind: simnet.KindEager,
				Payload: buf.Alloc(8), Bytes: 64, Arrival: 0,
			}
			c.fabric.Deliver(1, m)
			return nil
		}
		_, err := c.Recv(buf.Alloc(64), 0, 0)
		if !errors.Is(err, ErrShortDelivery) {
			t.Errorf("Recv = %v, want ErrShortDelivery", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRetriesExhausted: with retries disabled, a certain drop becomes
// a typed DeliveryError at the sender.
func TestRetriesExhausted(t *testing.T) {
	rankErrs := make([]error, 2)
	plan := &simnet.FaultPlan{Seed: 1, Default: simnet.LinkFaults{Drop: 1}}
	err := Run(2, Options{
		WallLimit: 30 * time.Second,
		Faults:    plan,
		Retry:     RetryPolicy{MaxRetries: -1},
	}, func(c *Comm) error {
		if c.Rank() == 0 {
			rankErrs[0] = c.Send(buf.Alloc(64), 1, 0)
		}
		return nil
	})
	_ = err // rank 1 may unwind with an abort error; the sender verdict matters
	if !errors.Is(rankErrs[0], ErrRetriesExhausted) {
		t.Fatalf("sender error = %v, want ErrRetriesExhausted", rankErrs[0])
	}
	var de *DeliveryError
	if !errors.As(rankErrs[0], &de) || de.Peer != 1 || de.Attempts != 1 {
		t.Fatalf("delivery detail = %+v", de)
	}
}

// TestCollectiveFaultPropagation: when one leg of a collective
// exhausts its budget, every participant unwinds with a typed
// CollectiveError instead of deadlocking in a later leg.
func TestCollectiveFaultPropagation(t *testing.T) {
	const size = 4
	rankErrs := make([]error, size)
	plan := &simnet.FaultPlan{Seed: 3, Default: simnet.LinkFaults{Drop: 1}}
	err := Run(size, Options{
		WallLimit: 30 * time.Second,
		Faults:    plan,
		Retry:     RetryPolicy{MaxRetries: -1},
	}, func(c *Comm) error {
		b := buf.Alloc(256)
		rankErrs[c.Rank()] = c.Bcast(b, 0)
		return rankErrs[c.Rank()]
	})
	if err == nil {
		t.Fatal("total-loss collective returned nil")
	}
	for r, rerr := range rankErrs {
		if rerr == nil {
			t.Errorf("rank %d error = nil, want a propagated collective failure", r)
			continue
		}
		var ce *CollectiveError
		if !errors.As(rerr, &ce) {
			t.Errorf("rank %d error %v carries no CollectiveError", r, rerr)
		}
	}
}

// TestCollectiveLegAttribution: a failed typed-collective leg names the
// topology role and the peer rank of the exact edge that lost it, so a
// chaos run can attribute the failure to a specific link instead of
// just "the collective failed".
func TestCollectiveLegAttribution(t *testing.T) {
	const size = 4
	ty, err := datatype.Vector(16, 1, 2, datatype.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if err := ty.Commit(); err != nil {
		t.Fatal(err)
	}
	rankErrs := make([]error, size)
	plan := &simnet.FaultPlan{Seed: 11, Default: simnet.LinkFaults{Drop: 1}}
	runErr := Run(size, Options{
		WallLimit: 30 * time.Second,
		Faults:    plan,
		Retry:     RetryPolicy{MaxRetries: -1},
	}, func(c *Comm) error {
		b := buf.Alloc(int(ty.Extent()))
		rankErrs[c.Rank()] = c.BcastType(b, 1, ty, 0)
		return rankErrs[c.Rank()]
	})
	if runErr == nil {
		t.Fatal("total-loss typed collective returned nil")
	}
	attributed := false
	for r, rerr := range rankErrs {
		if rerr == nil {
			t.Errorf("rank %d error = nil, want a propagated collective failure", r)
			continue
		}
		var ce *CollectiveError
		if !errors.As(rerr, &ce) {
			t.Errorf("rank %d error %v carries no CollectiveError", r, rerr)
			continue
		}
		if ce.Op != "BcastType" {
			t.Errorf("rank %d attributed op %q", r, ce.Op)
		}
		if ce.Leg != "" {
			if ce.Peer < 0 || ce.Peer >= size {
				t.Errorf("rank %d leg %q carries peer %d", r, ce.Leg, ce.Peer)
			}
			if ce.Leg != "tree-parent" && ce.Leg != "tree-child" {
				t.Errorf("rank %d leg %q, want a bcast tree role", r, ce.Leg)
			}
			if !strings.Contains(ce.Error(), ce.Leg) {
				t.Errorf("rank %d error text %q omits the leg", r, ce.Error())
			}
			attributed = true
		}
	}
	if !attributed {
		t.Error("no rank attributed the failure to a topology leg")
	}
}

// TestBackpressureDegradesToRendezvous: past the pool occupancy cap an
// eager-sized send falls back to rendezvous and the degradation is
// recorded in the pool stats.
func TestBackpressureDegradesToRendezvous(t *testing.T) {
	old := buf.SetPoolCap(1) // everything is over cap
	defer buf.SetPoolCap(old)
	before := buf.PoolStatsSnapshot()
	err := Run(2, Options{WallLimit: 30 * time.Second}, func(c *Comm) error {
		if c.Rank() == 0 {
			sb := buf.Alloc(512)
			fillPat(sb, 0, 1)
			if err := c.Send(sb, 1, 0); err != nil {
				return err
			}
			eager, rdv := c.Counters().EagerSends, c.Counters().RendezvousSends
			if eager != 0 || rdv == 0 {
				return fmt.Errorf("eager=%d rdv=%d, want the send degraded to rendezvous", eager, rdv)
			}
			return nil
		}
		rb := buf.Alloc(512)
		if _, err := c.Recv(rb, 0, 0); err != nil {
			return err
		}
		for j, b := range rb.Bytes() {
			if b != pat(0, 1, j) {
				return fmt.Errorf("byte %d = %#x, want %#x", j, b, pat(0, 1, j))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := buf.PoolStatsSnapshot().Degradations - before.Degradations; d == 0 {
		t.Fatal("no pool degradation recorded")
	}
}

// TestEagerAdaptationUnderPressure: past half of the pool occupancy
// cap the effective eager limit shrinks, so a nominally eager-sized
// send goes rendezvous BEFORE the hard over-cap wall — and the
// adaptation is counted separately from the cliff degradations.
func TestEagerAdaptationUnderPressure(t *testing.T) {
	base := buf.PoolInUse()
	hold := buf.GetPooled(64 << 10) // occupancy ≈ cap → ratio ≈ 1
	defer buf.PutPooled(hold)
	old := buf.SetPoolCap(base + (64 << 10))
	defer buf.SetPoolCap(old)

	before := buf.PoolStatsSnapshot()
	err := Run(2, Options{WallLimit: 30 * time.Second}, func(c *Comm) error {
		if c.Rank() == 0 {
			sb := buf.Alloc(512)
			fillPat(sb, 0, 1)
			if err := c.Send(sb, 1, 0); err != nil {
				return err
			}
			eager, rdv := c.Counters().EagerSends, c.Counters().RendezvousSends
			if eager != 0 || rdv == 0 {
				return fmt.Errorf("eager=%d rdv=%d, want the send adapted to rendezvous", eager, rdv)
			}
			return nil
		}
		rb := buf.Alloc(512)
		_, err := c.Recv(rb, 0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	d := buf.PoolStatsSnapshot().Sub(before)
	if d.EagerAdaptations == 0 {
		t.Fatal("no eager adaptation recorded")
	}
	if d.Degradations != 0 {
		t.Fatalf("%d hard degradations recorded; the adaptive limit should act first", d.Degradations)
	}
}

// FuzzFaultRecovery drives the differential property from arbitrary
// (seed, rate, size) corners: whatever the fault plan, a run within
// the default retry budget either delivers byte-identical results or
// fails with a typed error — never silent corruption, never a hang.
func FuzzFaultRecovery(f *testing.F) {
	f.Add(uint64(1), uint16(200), uint8(2))
	f.Add(uint64(99), uint16(800), uint8(3))
	f.Add(uint64(123456), uint16(50), uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, rateMilli uint16, size uint8) {
		n := int(size%7) + 2
		rate := float64(rateMilli%1000) / 1000 * 0.12 // ≤ 12% per injection
		scheme := chaosScheme{name: "fuzz", minRanks: 2, run: func(c *Comm, out *bytes.Buffer) error {
			next, prev := ringPeers(c)
			sb := buf.Alloc(1024)
			rb := buf.Alloc(1024)
			fillPat(sb, c.Rank(), next)
			req, err := c.Irecv(rb, prev, 0)
			if err != nil {
				return err
			}
			if err := c.Send(sb, next, 0); err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			out.Write(rb.Bytes())
			return nil
		}}
		oracle := runChaos(t, n, nil, scheme)
		got := runChaos(t, n, simnet.UniformFaults(seed, rate), scheme)
		for r := range oracle {
			if !bytes.Equal(oracle[r], got[r]) {
				t.Fatalf("rank %d bytes diverge (seed=%d rate=%g size=%d)", r, seed, rate, n)
			}
		}

		// Selective-retransmission split: a typed rendezvous transfer
		// under a fuzz-chosen internal chunk size with scripted
		// multi-chunk damage on top of the random rates. Recovery must
		// reproduce the fault-free oracle while replaying strictly less
		// than the whole packed stream.
		chunkSz := int64(1024) << (seed % 2)
		prof := perfmodel.Generic()
		prof.Mem.InternalChunk = chunkSz
		ty, err := datatype.Vector(2048, 1, 2, datatype.Float64)
		if err != nil {
			t.Fatal(err)
		}
		if err := ty.Commit(); err != nil {
			t.Fatal(err)
		}
		total := ty.PackSize(1) // 16 KiB packed
		nchunks := (total + chunkSz - 1) / chunkSz
		plan := simnet.UniformFaults(seed^0x9e3779b97f4a7c15, rate/2)
		plan.Scripted = []simnet.ScriptedFault{
			{Src: 0, Dst: 1, Seq: int64(seed) % nchunks, Payload: true, Kind: simnet.FaultCorrupt},
			{Src: 0, Dst: 1, Seq: int64(seed>>8) % nchunks, Payload: true, Kind: simnet.FaultTruncate},
		}
		need := int(ty.TrueLB() + ty.TrueExtent())
		typedRun := func(faults *simnet.FaultPlan) ([]byte, simnet.Counters) {
			var out []byte
			var sc simnet.Counters
			err := Run(2, Options{Profile: prof, WallLimit: 60 * time.Second, Faults: faults}, func(c *Comm) error {
				if c.Rank() == 0 {
					src := buf.Alloc(need)
					fillPat(src, 0, 1)
					err := c.SsendType(src, 1, ty, 1, 0)
					sc = c.Counters()
					return err
				}
				dst := buf.Alloc(need)
				if _, err := c.RecvType(dst, 1, ty, 0, 0); err != nil {
					return err
				}
				out = append([]byte(nil), dst.Bytes()...)
				return nil
			})
			if err != nil {
				t.Fatalf("typed split (seed=%d rate=%g): %v", seed, rate, err)
			}
			return out, sc
		}
		tOracle, _ := typedRun(nil)
		tGot, sc := typedRun(plan)
		if !bytes.Equal(tOracle, tGot) {
			t.Fatalf("typed recovery diverges from oracle (seed=%d rate=%g chunk=%d)", seed, rate, chunkSz)
		}
		if sc.RetransmitBytes == 0 {
			t.Fatalf("scripted chunk damage triggered no selective replay (seed=%d)", seed)
		}
		if sc.RetransmitBytes >= total {
			t.Fatalf("selective replay resent %d of %d bytes (seed=%d rate=%g)", sc.RetransmitBytes, total, seed, rate)
		}
	})
}

// TestObservedFaultProfile: the calibrated profile tracks what the
// fabric actually did — a lossy run estimates a positive per-leg rate
// in the injector's neighbourhood, a clean run estimates zero — and
// carries the communicator's own retry-policy pricing fields converted
// to seconds.
func TestObservedFaultProfile(t *testing.T) {
	observe := func(faults *simnet.FaultPlan) memsim.FaultProfile {
		var prof memsim.FaultProfile
		err := Run(2, Options{WallLimit: 30 * time.Second, Faults: faults}, func(c *Comm) error {
			// Before any traffic the counters carry no evidence: the
			// profile must report the explicit not-calibrated state.
			if _, ok := c.ObservedFaultProfile(2); ok {
				t.Error("zero-transfer counters reported a calibrated profile")
			}
			next, prev := ringPeers(c)
			sb := buf.Alloc(4096)
			rb := buf.Alloc(4096)
			fillPat(sb, c.Rank(), next)
			for i := 0; i < 32; i++ {
				req, err := c.Irecv(rb, prev, i)
				if err != nil {
					return err
				}
				if err := c.Ssend(sb, next, i); err != nil {
					return err
				}
				if _, err := req.Wait(); err != nil {
					return err
				}
			}
			if c.Rank() == 0 {
				var ok bool
				if prof, ok = c.ObservedFaultProfile(2); !ok {
					t.Error("completed traffic reported not-calibrated")
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return prof
	}

	const rate = 0.2 // resend-class per-leg rate rate/2 = 0.1
	lossy := observe(simnet.UniformFaults(97, rate))
	if !lossy.Enabled() {
		t.Fatal("lossy run calibrated a clean profile")
	}
	// Loose bounds: the estimate should land in the injector's
	// neighbourhood, not reproduce it exactly (finite sample, and the
	// legs model is first-order).
	if lossy.LegLossRate < rate/40 || lossy.LegLossRate > rate {
		t.Fatalf("observed rate %g implausible for injected resend-class rate %g", lossy.LegLossRate, rate/2)
	}
	def := DefaultRetryPolicy()
	if lossy.MaxRetries != def.MaxRetries {
		t.Fatalf("MaxRetries = %d, want policy's %d", lossy.MaxRetries, def.MaxRetries)
	}
	if want := float64(def.BaseBackoff) / 1e9; lossy.BaseBackoff != want {
		t.Fatalf("BaseBackoff = %g s, want %g s", lossy.BaseBackoff, want)
	}

	clean := observe(nil)
	if clean.Enabled() {
		t.Fatalf("clean run calibrated rate %g", clean.LegLossRate)
	}
}
