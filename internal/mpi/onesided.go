package mpi

import (
	"fmt"
	"sync"

	"repro/internal/buf"
	"repro/internal/datatype"
	"repro/internal/elem"
	"repro/internal/vclock"
)

// Win is a one-sided communication window over each rank's exposed
// buffer, the analogue of MPI_Win. Epochs are delimited with Fence
// (active target synchronisation), exactly the mode the paper's
// one-sided scheme uses (§2.5: "we use MPI_Win_fence").
type Win struct {
	comm   *Comm
	shared *winShared
	seq    int
	freed  bool
}

// winShared is the cross-rank window state, registered in the fabric.
type winShared struct {
	mu      sync.Mutex
	blocks  []buf.Block   // exposed buffer of each rank
	pending [][]winAccess // incoming accesses per target rank, this epoch
	created map[int]bool  // which ranks registered their block
}

type winAccess struct {
	arrival vclock.Time
}

// WinCreate collectively creates a window exposing local on every
// rank, like MPI_Win_create. Every rank of the communicator must call
// it in the same order relative to other collectives.
func (c *Comm) WinCreate(local buf.Block) (*Win, error) {
	c.winSeq++
	key := fmt.Sprintf("win/%d/%d", c.ctx, c.winSeq)
	sh := c.fabric.Shared(key, func() interface{} {
		return &winShared{
			blocks:  make([]buf.Block, c.size),
			pending: make([][]winAccess, c.size),
			created: make(map[int]bool),
		}
	}).(*winShared)
	sh.mu.Lock()
	sh.blocks[c.rank] = local
	sh.created[c.rank] = true
	sh.mu.Unlock()
	w := &Win{comm: c, shared: sh, seq: c.winSeq}
	// Window creation is collective and synchronising: no rank may use
	// the window before every rank registered its buffer.
	c.groupSync()
	return w, nil
}

// Fence closes the current access epoch and opens the next, like
// MPI_Win_fence with zero assertions: it synchronises all ranks and
// completes every Put/Get/Accumulate issued in the epoch, at the
// profile's fence cost — the overhead that makes one-sided transfer
// slow for small messages (§4.4).
func (w *Win) Fence() error {
	if w.freed {
		return fmt.Errorf("%w: fence on freed window", ErrWin)
	}
	c := w.comm
	// Phase 1: every rank has issued its epoch's accesses (program
	// order: accesses precede the fence call on the origin).
	c.groupSync()
	// Drain accesses targeted at me; my epoch cannot close before the
	// last one has landed.
	w.shared.mu.Lock()
	t := c.clock.Now()
	for _, a := range w.shared.pending[c.rank] {
		if a.arrival > t {
			t = a.arrival
		}
	}
	w.shared.pending[c.rank] = w.shared.pending[c.rank][:0]
	w.shared.mu.Unlock()
	c.clock.AdvanceTo(t)
	// Phase 2: the epoch closes for everyone at the global maximum.
	c.groupSync()
	c.clock.Advance(vclock.FromSeconds(c.prof.FenceCost))
	return nil
}

// Put transfers count instances of a datatype from origin memory into
// the target rank's window at targetOff bytes, like MPI_Put. The call
// returns once the origin buffer is reusable; remote completion is
// only guaranteed by the closing Fence.
func (w *Win) Put(origin buf.Block, count int, ty *datatype.Type, target int, targetOff int64) error {
	return w.access(origin, count, ty, target, targetOff, accessPut)
}

// Get transfers from the target window into origin memory, like
// MPI_Get.
func (w *Win) Get(origin buf.Block, count int, ty *datatype.Type, target int, targetOff int64) error {
	return w.access(origin, count, ty, target, targetOff, accessGet)
}

// AccumulateSum adds count float64 values from origin into the target
// window at targetOff, like MPI_Accumulate with MPI_SUM.
func (w *Win) AccumulateSum(origin buf.Block, count int, target int, targetOff int64) error {
	if err := w.checkAccess(target, targetOff, int64(count)*8); err != nil {
		return err
	}
	c := w.comm
	n := int64(count) * 8
	cost := c.prof.PutSetup + c.cache.StreamCost(origin.Region(), n)
	c.clock.Advance(vclock.FromSeconds(cost))
	wire := float64(n) / c.prof.OneSidedBW(n)
	arrival := c.clock.Now() + dur(c.prof.NetLatency+wire)
	w.shared.mu.Lock()
	tblock := w.shared.blocks[target]
	if !tblock.IsVirtual() && !origin.IsVirtual() {
		for i := 0; i < count; i++ {
			cur := elem.Float64(tblock.Slice(int(targetOff), count*8), i)
			add := elem.Float64(origin, i)
			elem.PutFloat64(tblock.Slice(int(targetOff), count*8), i, cur+add)
		}
	}
	w.shared.pending[target] = append(w.shared.pending[target], winAccess{arrival: arrival})
	w.shared.mu.Unlock()
	return nil
}

type accessKind int

const (
	accessPut accessKind = iota
	accessGet
)

func (w *Win) access(origin buf.Block, count int, ty *datatype.Type, target int, targetOff int64, kind accessKind) error {
	n := ty.PackSize(count)
	if err := w.checkAccess(target, targetOff, n); err != nil {
		return err
	}
	c := w.comm
	st := ty.Stats(count)
	var gather float64
	switch kind {
	case accessPut:
		gather = c.cache.GatherCost(origin.Region(), c.internal.Region(), st)
	case accessGet:
		gather = c.cache.ScatterCost(c.internal.Region(), origin.Region(), st)
	}
	c.clock.Advance(vclock.FromSeconds(c.prof.PutSetup + gather))
	wire := 0.0
	if n > 0 {
		wire = float64(n) / c.prof.OneSidedBW(n)
	}
	extraLat := c.prof.NetLatency
	if kind == accessGet {
		extraLat *= 2 // request + response
	}
	arrival := c.clock.Now() + dur(extraLat+wire)

	w.shared.mu.Lock()
	tblock := w.shared.blocks[target]
	switch kind {
	case accessPut:
		if n > 0 {
			packer, err := ty.NewPacker(origin, count)
			if err != nil {
				w.shared.mu.Unlock()
				return err
			}
			if _, err := packer.Pack(tblock.Slice(int(targetOff), int(n))); err != nil {
				w.shared.mu.Unlock()
				return err
			}
		}
		w.shared.pending[target] = append(w.shared.pending[target], winAccess{arrival: arrival})
	case accessGet:
		if n > 0 {
			unpacker, err := ty.NewUnpacker(origin, count)
			if err != nil {
				w.shared.mu.Unlock()
				return err
			}
			if _, err := unpacker.Unpack(tblock.Slice(int(targetOff), int(n))); err != nil {
				w.shared.mu.Unlock()
				return err
			}
		}
		// A get completes locally: the origin's own epoch waits on it.
		w.shared.pending[w.comm.rank] = append(w.shared.pending[w.comm.rank], winAccess{arrival: arrival})
	}
	w.shared.mu.Unlock()
	return nil
}

func (w *Win) checkAccess(target int, targetOff, n int64) error {
	if w.freed {
		return fmt.Errorf("%w: access on freed window", ErrWin)
	}
	c := w.comm
	if err := c.checkRank(target); err != nil {
		return err
	}
	w.shared.mu.Lock()
	defer w.shared.mu.Unlock()
	tblock := w.shared.blocks[target]
	if targetOff < 0 || targetOff+n > int64(tblock.Len()) {
		return fmt.Errorf("%w: access [%d,%d) outside %d-byte window of rank %d",
			ErrWin, targetOff, targetOff+n, tblock.Len(), target)
	}
	return nil
}

// Free releases the window collectively, like MPI_Win_free.
func (w *Win) Free() error {
	if w.freed {
		return fmt.Errorf("%w: double free", ErrWin)
	}
	w.freed = true
	c := w.comm
	c.groupSync()
	c.fabric.DropShared(fmt.Sprintf("win/%d/%d", c.ctx, w.seq))
	return nil
}
