package mpi

import (
	"bytes"
	"testing"

	"repro/internal/buf"
	"repro/internal/datatype"
)

// everyOther returns a committed every-other-double vector of count
// elements.
func everyOther(t testing.TB, count int) *datatype.Type {
	t.Helper()
	ty, err := datatype.Vector(count, 1, 2, datatype.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if err := ty.Commit(); err != nil {
		t.Fatal(err)
	}
	return ty
}

// packedOracle returns the packed stream of (ty, count) over a
// pattern-filled source.
func packedOracle(t testing.TB, ty *datatype.Type, count int, seed byte) []byte {
	t.Helper()
	src := buf.Alloc(int(int64(count-1)*ty.Extent() + ty.TrueLB() + ty.TrueExtent()))
	src.FillPattern(seed)
	dst := buf.Alloc(int(ty.PackSize(count)))
	if _, err := ty.Pack(src, count, dst); err != nil {
		t.Fatal(err)
	}
	return dst.Bytes()
}

// TestSendvTypedToTypedZeroStaging pins the tentpole contract: a
// rendezvous sendv between two typed layouts moves the payload in one
// fused pass — zero pool allocations (no transit, no staging), fused
// attribution, no staged attribution — and the receiver's layout holds
// exactly what a staged transfer would deliver.
func TestSendvTypedToTypedZeroStaging(t *testing.T) {
	const count = 1 << 17 // 1 MiB payload, far over every eager limit
	const reps = 3
	poolBefore := buf.PoolStatsSnapshot()
	planBefore := datatype.PlanStatsSnapshot()
	err := Run(2, Options{}, func(c *Comm) error {
		ty := everyOther(t, count)
		if c.Rank() == 0 {
			src := buf.Alloc(int(ty.Extent()))
			src.FillPattern(0xA7)
			for rep := 0; rep < reps; rep++ {
				if err := c.SendvType(src, 1, ty, 1, 7); err != nil {
					return err
				}
			}
		} else {
			for rep := 0; rep < reps; rep++ {
				dst := buf.Alloc(int(ty.Extent()))
				st, err := c.RecvType(dst, 1, ty, 0, 7)
				if err != nil {
					return err
				}
				if st.Count != ty.Size() {
					t.Errorf("status count %d, want %d", st.Count, ty.Size())
				}
				// Every layout byte must match the source pattern; gap
				// bytes stay zero.
				want := buf.Alloc(int(ty.Extent()))
				want.FillPattern(0xA7)
				for i := 0; i < dst.Len(); i += 16 {
					for j := 0; j < 8; j++ {
						if dst.Bytes()[i+j] != want.Bytes()[i+j] {
							t.Fatalf("layout byte %d differs", i+j)
						}
					}
					for j := 8; j < 16 && i+j < dst.Len(); j++ {
						if dst.Bytes()[i+j] != 0 {
							t.Fatalf("gap byte %d written", i+j)
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := buf.PoolStatsSnapshot().Sub(poolBefore); d.Gets != 0 {
		t.Fatalf("fused rendezvous drew %d pooled staging/transit blocks, want 0 (%+v)", d.Gets, d)
	}
	d := datatype.PlanStatsSnapshot().Sub(planBefore)
	if d.FusedOps != reps || d.FusedBytes != reps*int64(count)*8 {
		t.Fatalf("fused attribution %d ops / %d B, want %d / %d", d.FusedOps, d.FusedBytes, reps, reps*int64(count)*8)
	}
	if d.StagedOps != 0 {
		t.Fatalf("staged attribution leaked into the fused path: %+v", d)
	}
}

// TestSendvToContigRecv pins the typed→contiguous fused pass: the
// packed stream lands in the receiver's buffer with no staging pool
// draw, attributed as fused.
func TestSendvToContigRecv(t *testing.T) {
	const count = 1 << 16
	want := packedOracle(t, everyOther(t, count), 1, 0x51)
	poolBefore := buf.PoolStatsSnapshot()
	planBefore := datatype.PlanStatsSnapshot()
	err := Run(2, Options{}, func(c *Comm) error {
		ty := everyOther(t, count)
		if c.Rank() == 0 {
			src := buf.Alloc(int(ty.Extent()))
			src.FillPattern(0x51)
			return c.SendvType(src, 1, ty, 1, 3)
		}
		dst := buf.Alloc(int(ty.Size()))
		if _, err := c.Recv(dst, 0, 3); err != nil {
			return err
		}
		if !bytes.Equal(dst.Bytes(), want) {
			t.Error("contiguous receive differs from the packed stream")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := buf.PoolStatsSnapshot().Sub(poolBefore); d.Gets != 0 {
		t.Fatalf("typed→contig fused send drew %d pooled blocks, want 0", d.Gets)
	}
	d := datatype.PlanStatsSnapshot().Sub(planBefore)
	if d.FusedOps != 1 || d.StagedOps != 0 {
		t.Fatalf("attribution fused=%d staged=%d, want 1/0", d.FusedOps, d.StagedOps)
	}
}

// TestSendvEagerFallsBackStaged pins the eager fallback: small sendv
// payloads ride the ordinary staged typed path, byte-identically.
func TestSendvEagerFallsBackStaged(t *testing.T) {
	const count = 256 // 2 KiB payload, under every eager limit
	planBefore := datatype.PlanStatsSnapshot()
	err := Run(2, Options{}, func(c *Comm) error {
		ty := everyOther(t, count)
		if c.Rank() == 0 {
			src := buf.Alloc(int(ty.Extent()))
			src.FillPattern(0x13)
			return c.SendvType(src, 1, ty, 1, 0)
		}
		dst := buf.Alloc(int(ty.Extent()))
		if _, err := c.RecvType(dst, 1, ty, 0, 0); err != nil {
			return err
		}
		want := buf.Alloc(int(ty.Extent()))
		want.FillPattern(0x13)
		for i := 0; i < dst.Len(); i += 16 {
			if !bytes.Equal(dst.Bytes()[i:i+8], want.Bytes()[i:i+8]) {
				t.Fatalf("layout byte %d differs after eager fallback", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	d := datatype.PlanStatsSnapshot().Sub(planBefore)
	if d.FusedOps != 0 {
		t.Fatalf("eager-sized sendv ran the fused path: %+v", d)
	}
	if d.StagedOps == 0 {
		t.Fatalf("eager-sized sendv recorded no staged transfer: %+v", d)
	}
}

// TestSendvAliasedBuffersStaged pins the overlap fallback: when the
// sender's and receiver's buffers alias (the rank goroutines share one
// allocation), the fused engine must not scatter over bytes it has yet
// to read — the sender-local staged emulation runs instead and the
// result matches the staged oracle.
func TestSendvAliasedBuffersStaged(t *testing.T) {
	const count = 1 << 15 // over the eager limit
	shared := buf.Alloc(3 * count * 8)
	shared.FillPattern(0x2C)

	// Oracle: snapshot-pack the sender view, then unpack into the
	// receiver view of a copy.
	oracle := buf.Alloc(shared.Len())
	buf.Copy(oracle, shared)
	srcTyO := everyOther(t, count)
	packed := buf.Alloc(int(srcTyO.PackSize(1)))
	if _, err := srcTyO.Pack(oracle, 1, packed); err != nil {
		t.Fatal(err)
	}
	dstTyO, err := datatype.Vector(count, 1, 3, datatype.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if err := dstTyO.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := dstTyO.Unpack(packed, 1, oracle); err != nil {
		t.Fatal(err)
	}

	planBefore := datatype.PlanStatsSnapshot()
	err = Run(2, Options{}, func(c *Comm) error {
		if c.Rank() == 0 {
			ty := everyOther(t, count)
			return c.SendvType(shared, 1, ty, 1, 9)
		}
		ty, err := datatype.Vector(count, 1, 3, datatype.Float64)
		if err != nil {
			return err
		}
		if err := ty.Commit(); err != nil {
			return err
		}
		_, rerr := c.RecvType(shared, 1, ty, 0, 9)
		return rerr
	})
	if err != nil {
		t.Fatal(err)
	}
	if !buf.Equal(shared, oracle) {
		t.Fatal("aliased sendv differs from the staged oracle")
	}
	d := datatype.PlanStatsSnapshot().Sub(planBefore)
	if d.StagedOps == 0 {
		t.Fatalf("aliased sendv did not run the staged emulation: %+v", d)
	}
	if d.FusedOps != 0 {
		t.Fatalf("aliased sendv ran the fused fast path: %+v", d)
	}
}

// TestSendvOverlapUnsafeReceiverStages pins the receiver-side decline:
// a destination layout with interleaving repeated instances refuses
// the fused offer, the transfer stages, and the payload still arrives
// exactly as a staged typed send would deliver it.
func TestSendvOverlapUnsafeReceiverStages(t *testing.T) {
	// Receiver type: 24-byte span resized to an 8-byte extent, count 3
	// — repeated instances interleave, FusedDstSafe is false.
	mk := func() *datatype.Type {
		inner, err := datatype.Indexed([]int{1, 1}, []int{0, 2}, datatype.Float64)
		if err != nil {
			t.Fatal(err)
		}
		rz, err := datatype.Resized(inner, 0, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := rz.Commit(); err != nil {
			t.Fatal(err)
		}
		return rz
	}
	recvTy := mk()
	const recvCount = 1 << 13
	n := recvTy.PackSize(recvCount) // 16 B per instance

	// Sender: a contiguous-count vector with the same packed size,
	// over the eager limit.
	srcCount := int(n / 8)
	planBefore := datatype.PlanStatsSnapshot()
	var got []byte
	err := Run(2, Options{}, func(c *Comm) error {
		if c.Rank() == 0 {
			ty := everyOther(t, srcCount)
			src := buf.Alloc(int(ty.Extent()))
			src.FillPattern(0x77)
			return c.SendvType(src, 1, ty, 1, 4)
		}
		dst := buf.Alloc(int(int64(recvCount-1)*recvTy.Extent() + recvTy.TrueExtent()))
		if _, err := c.RecvType(dst, recvCount, recvTy, 0, 4); err != nil {
			return err
		}
		got = append([]byte(nil), dst.Bytes()...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: staged pack→unpack.
	packed := packedOracle(t, everyOther(t, srcCount), 1, 0x77)
	want := make([]byte, len(got))
	if _, err := recvTy.Unpack(buf.FromBytes(packed), recvCount, buf.FromBytes(want)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("overlap-unsafe receiver's staged delivery differs from oracle")
	}
	d := datatype.PlanStatsSnapshot().Sub(planBefore)
	if d.FusedOps != 0 || d.StagedOps == 0 {
		t.Fatalf("attribution fused=%d staged=%d, want 0/>0", d.FusedOps, d.StagedOps)
	}
}

// TestSendvMismatchedBytesStaged pins the size-mismatch fallback: a
// receiver posting more instances than the sender ships gets the
// prefix via the staged emulation, like any typed rendezvous.
func TestSendvMismatchedBytesStaged(t *testing.T) {
	const sendCount = 1 << 15
	const recvCount = sendCount + 1024
	planBefore := datatype.PlanStatsSnapshot()
	err := Run(2, Options{}, func(c *Comm) error {
		if c.Rank() == 0 {
			ty := everyOther(t, sendCount)
			src := buf.Alloc(int(ty.Extent()))
			src.FillPattern(0x66)
			return c.SendvType(src, 1, ty, 1, 5)
		}
		ty := everyOther(t, recvCount)
		dst := buf.Alloc(int(ty.Extent()))
		st, err := c.RecvType(dst, 1, ty, 0, 5)
		if err != nil {
			return err
		}
		if st.Count != int64(sendCount)*8 {
			t.Errorf("status count %d, want %d", st.Count, sendCount*8)
		}
		want := buf.Alloc(int(ty.Extent()))
		want.FillPattern(0x66)
		for i := 0; i < sendCount*16; i += 16 {
			if !bytes.Equal(dst.Bytes()[i:i+8], want.Bytes()[i:i+8]) {
				t.Fatalf("prefix layout byte %d differs", i)
			}
		}
		for i := sendCount * 16; i < dst.Len(); i++ {
			if dst.Bytes()[i] != 0 {
				t.Fatalf("byte %d beyond the shipped prefix was written", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	d := datatype.PlanStatsSnapshot().Sub(planBefore)
	if d.FusedOps != 0 || d.StagedOps == 0 {
		t.Fatalf("attribution fused=%d staged=%d, want 0/>0", d.FusedOps, d.StagedOps)
	}
}

// TestSendvVirtual pins the virtual-payload path end to end: protocol
// and costs run, no bytes move, attribution still lands.
func TestSendvVirtual(t *testing.T) {
	const count = 1 << 20
	planBefore := datatype.PlanStatsSnapshot()
	err := Run(2, Options{}, func(c *Comm) error {
		ty := everyOther(t, count)
		if c.Rank() == 0 {
			return c.SendvType(buf.Virtual(int(ty.Extent())), 1, ty, 1, 2)
		}
		st, err := c.RecvType(buf.Virtual(int(ty.Extent())), 1, ty, 0, 2)
		if err != nil {
			return err
		}
		if st.Count != ty.Size() {
			t.Errorf("virtual sendv status count %d, want %d", st.Count, ty.Size())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := datatype.PlanStatsSnapshot().Sub(planBefore); d.FusedOps != 1 {
		t.Fatalf("virtual sendv fused attribution %+v", d)
	}
}

// TestSendvBufferTooSmallFailsLocally pins SendType parity: a send
// buffer that cannot carry the message errors on the caller before
// any envelope enters the fabric, so the peer's receive is untouched
// and still matches a subsequent good send.
func TestSendvBufferTooSmallFailsLocally(t *testing.T) {
	const count = 1 << 15 // rendezvous-sized
	err := Run(2, Options{}, func(c *Comm) error {
		ty := everyOther(t, count)
		if c.Rank() == 0 {
			short := buf.Alloc(int(ty.Extent() / 2))
			if err := c.SendvType(short, 1, ty, 1, 0); err == nil {
				t.Error("undersized sendv buffer accepted")
			}
			// The failed call must not have consumed the peer's
			// receive: a good send still matches it.
			src := buf.Alloc(int(ty.Extent()))
			src.FillPattern(1)
			return c.SendvType(src, 1, ty, 1, 0)
		}
		dst := buf.Alloc(int(ty.Extent()))
		_, err := c.RecvType(dst, 1, ty, 0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSendvFasterThanTyped pins the model: on the same workload the
// fused rendezvous completes in less virtual time than the staged
// derived-type send.
func TestSendvFasterThanTyped(t *testing.T) {
	const count = 1 << 17
	timeOf := func(send func(c *Comm, ty *datatype.Type, src buf.Block) error) float64 {
		var elapsed float64
		err := Run(2, Options{}, func(c *Comm) error {
			ty := everyOther(t, count)
			if c.Rank() == 0 {
				src := buf.Alloc(int(ty.Extent()))
				t0 := c.Wtime()
				if err := send(c, ty, src); err != nil {
					return err
				}
				if _, err := c.Recv(buf.Alloc(0), 1, 1); err != nil {
					return err
				}
				elapsed = c.Wtime() - t0
				return nil
			}
			dst := buf.Alloc(int(ty.Extent()))
			if _, err := c.RecvType(dst, 1, ty, 0, 0); err != nil {
				return err
			}
			return c.Send(buf.Alloc(0), 0, 1)
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	typed := timeOf(func(c *Comm, ty *datatype.Type, src buf.Block) error {
		return c.SendType(src, 1, ty, 1, 0)
	})
	fused := timeOf(func(c *Comm, ty *datatype.Type, src buf.Block) error {
		return c.SendvType(src, 1, ty, 1, 0)
	})
	if !(fused < typed) {
		t.Fatalf("fused ping-pong %.3gs not under staged typed %.3gs", fused, typed)
	}
}

// TestIsendvTypeZeroStagingAsync pins the non-blocking fused variant:
// driving the fused rendezvous through IsendvType still draws zero
// pooled staging blocks and keeps fused attribution, and the payload
// lands exactly as the blocking SendvType delivers it.
func TestIsendvTypeZeroStagingAsync(t *testing.T) {
	const count = 1 << 16 // 512 KiB payload, past every eager limit
	poolBefore := buf.PoolStatsSnapshot()
	planBefore := datatype.PlanStatsSnapshot()
	err := Run(2, Options{}, func(c *Comm) error {
		ty := everyOther(t, count)
		if c.Rank() == 0 {
			src := buf.Alloc(int(ty.Extent()))
			src.FillPattern(0x9E)
			req, err := c.IsendvType(src, 1, ty, 1, 6)
			if err != nil {
				return err
			}
			_, err = req.Wait()
			return err
		}
		dst := buf.Alloc(int(ty.Extent()))
		if _, err := c.RecvType(dst, 1, ty, 0, 6); err != nil {
			return err
		}
		want := buf.Alloc(int(ty.Extent()))
		want.FillPattern(0x9E)
		for i := 0; i < dst.Len(); i += 16 {
			if !bytes.Equal(dst.Bytes()[i:i+8], want.Bytes()[i:i+8]) {
				t.Fatalf("async fused layout byte %d differs", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := buf.PoolStatsSnapshot().Sub(poolBefore); d.Gets != 0 {
		t.Fatalf("async fused path drew %d pooled staging blocks, want 0 (%+v)", d.Gets, d)
	}
	d := datatype.PlanStatsSnapshot().Sub(planBefore)
	if d.FusedOps != 1 || d.StagedOps != 0 {
		t.Fatalf("async fused attribution fused=%d staged=%d, want 1/0", d.FusedOps, d.StagedOps)
	}
}

// TestIssendvTypeForcesRendezvous pins the synchronous non-blocking
// variant: an eager-sized payload still takes the fused handshake.
func TestIssendvTypeForcesRendezvous(t *testing.T) {
	const count = 64 // tiny, would be eager normally
	planBefore := datatype.PlanStatsSnapshot()
	err := Run(2, Options{}, func(c *Comm) error {
		ty := everyOther(t, count)
		if c.Rank() == 0 {
			src := buf.Alloc(int(ty.Extent()))
			src.FillPattern(0x4B)
			req, err := c.IssendvType(src, 1, ty, 1, 0)
			if err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			if got := c.Counters().RendezvousSends; got != 1 {
				t.Errorf("IssendvType not rendezvous: %+v", c.Counters())
			}
			return nil
		}
		dst := buf.Alloc(int(ty.Extent()))
		_, err := c.RecvType(dst, 1, ty, 0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := datatype.PlanStatsSnapshot().Sub(planBefore); d.FusedOps != 1 {
		t.Fatalf("forced-rendezvous fused attribution %+v", d)
	}
}

// TestIrecvTypeOverlappedExchange pins the typed non-blocking receive:
// two ranks post IrecvType, fire IsendvType at each other, and both
// layouts arrive fused — the overlap shape a typed halo exchange uses.
func TestIrecvTypeOverlappedExchange(t *testing.T) {
	const count = 1 << 15
	err := Run(2, Options{}, func(c *Comm) error {
		ty := everyOther(t, count)
		peer := 1 - c.Rank()
		src := buf.Alloc(int(ty.Extent()))
		src.FillPattern(byte(0x60 + c.Rank()))
		dst := buf.Alloc(int(ty.Extent()))
		rreq, err := c.IrecvType(dst, 1, ty, peer, 0)
		if err != nil {
			return err
		}
		sreq, err := c.IsendvType(src, 1, ty, peer, 0)
		if err != nil {
			return err
		}
		if _, err := rreq.Wait(); err != nil {
			return err
		}
		if _, err := sreq.Wait(); err != nil {
			return err
		}
		want := buf.Alloc(int(ty.Extent()))
		want.FillPattern(byte(0x60 + peer))
		for i := 0; i < dst.Len(); i += 16 {
			if !bytes.Equal(dst.Bytes()[i:i+8], want.Bytes()[i:i+8]) {
				t.Fatalf("rank %d overlapped layout byte %d differs", c.Rank(), i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestIrecvTypeMatchesSendType pins IrecvType against the classic
// staged typed send, including the status count.
func TestIrecvTypeMatchesSendType(t *testing.T) {
	const count = 1 << 12
	run2(t, func(c *Comm) error {
		ty := everyOther(t, count)
		if c.Rank() == 0 {
			src := buf.Alloc(int(ty.Extent()))
			src.FillPattern(3)
			return c.SendType(src, 1, ty, 1, 0)
		}
		dst := buf.Alloc(int(ty.Extent()))
		req, err := c.IrecvType(dst, 1, ty, 0, 0)
		if err != nil {
			return err
		}
		st, err := req.Wait()
		if err != nil {
			return err
		}
		if st.Count != ty.Size() {
			t.Errorf("IrecvType status count %d, want %d", st.Count, ty.Size())
		}
		want := buf.Alloc(int(ty.Extent()))
		want.FillPattern(3)
		for i := 0; i < dst.Len(); i += 16 {
			if !bytes.Equal(dst.Bytes()[i:i+8], want.Bytes()[i:i+8]) {
				t.Fatalf("IrecvType layout byte %d differs", i)
			}
		}
		return nil
	})
}

// BenchmarkFusedRendezvous is the CI smoke cell for the zero-staging
// contract: one fused exchange per iteration; any pooled staging or
// transit draw on the fused path fails the bench.
func BenchmarkFusedRendezvous(b *testing.B) {
	const count = 1 << 16
	before := buf.PoolStatsSnapshot()
	b.SetBytes(int64(count) * 8)
	for i := 0; i < b.N; i++ {
		err := Run(2, Options{}, func(c *Comm) error {
			ty := everyOther(b, count)
			if c.Rank() == 0 {
				src := buf.Alloc(int(ty.Extent()))
				return c.SendvType(src, 1, ty, 1, 0)
			}
			dst := buf.Alloc(int(ty.Extent()))
			_, err := c.RecvType(dst, 1, ty, 0, 0)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if d := buf.PoolStatsSnapshot().Sub(before); d.Gets != 0 {
		b.Fatalf("fused rendezvous path drew %d pooled staging blocks, want 0 (%+v)", d.Gets, d)
	}
}
