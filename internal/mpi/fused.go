package mpi

import (
	"fmt"
	"math"

	"repro/internal/buf"
	"repro/internal/datatype"
	"repro/internal/layout"
	"repro/internal/memsim"
	"repro/internal/simnet"
	"repro/internal/vclock"
)

// errNegativeCount mirrors the inline ErrCount wrapping of p2p.go.
func errNegativeCount(count int) error {
	return fmt.Errorf("%w: %d", ErrCount, count)
}

// This file implements the fused zero-copy rendezvous: the sendv
// path, where a plan-driven typed send copies directly from the
// sender's user layout into the receiver's user layout in one pass.
// The staged rendezvous moves every payload byte twice — pack into a
// staging buffer, unpack out of it — which is exactly the redundant
// software copy the paper blames for non-contiguous sends losing to
// the manual-copy bound. The fused path removes the staging buffer,
// the second pass, and the internal-chunk bookkeeping: the sender
// walks the pair schedule of the two compiled plans
// (datatype.FusedCopy) and the payload crosses each memory system
// once, like an XPMEM/CMA single-copy or a scatter-capable NIC.
//
// Fallbacks keep the semantics of the staged path byte-for-byte:
//
//   - eager-sized messages take the ordinary staged typed path (the
//     fused engine needs the rendezvous handshake to learn the
//     receiver's layout);
//   - receivers whose layout cannot legally take a one-pass scatter
//     (overlapping instances, uncompilable plans) stage as before;
//   - aliased sender/receiver buffers (a fused self-send) and
//     mismatched payload sizes run a sender-local staged emulation, so
//     the receiver still never unpacks.

// fusedDst is the receiver→sender descriptor of a typed rendezvous
// receive whose layout the sender may scatter into directly. It rides
// simnet.RdvMatch.FusedDst as an opaque value; only this package
// creates and consumes it.
type fusedDst struct {
	user  buf.Block
	plan  *datatype.Plan
	stats layout.Stats
	need  int64
}

// SendvType is the plan-driven fused send of a derived datatype, the
// "sendv" scheme: under the rendezvous protocol the payload moves
// straight from this rank's user layout into the receiver's buffer in
// a single compiled pass — no MPI-internal chunk buffers, no staging
// allocation, no receive-side unpack. Eager-sized messages fall back
// to the staged typed path, as do layouts the fused engine cannot
// serve (see the file comment); the call is then semantically
// identical to SendType.
func (c *Comm) SendvType(b buf.Block, count int, ty *datatype.Type, dest, tag int) error {
	if err := c.checkP2P(dest, tag); err != nil {
		return err
	}
	if count < 0 {
		return errNegativeCount(count)
	}
	return c.sendTypedFused(b, count, ty, dest, tag, sendFlags{})
}

// SsendvType is SendvType under forced rendezvous: even eager-sized
// payloads take the fused handshake path.
func (c *Comm) SsendvType(b buf.Block, count int, ty *datatype.Type, dest, tag int) error {
	if err := c.checkP2P(dest, tag); err != nil {
		return err
	}
	if count < 0 {
		return errNegativeCount(count)
	}
	return c.sendTypedFused(b, count, ty, dest, tag, sendFlags{forceRdv: true})
}

// IsendvType starts a non-blocking fused send with SendvType
// semantics, like an MPI_Isend that scatters straight into the typed
// receiver's layout: the envelope enters the fabric before the call
// returns (program order holds), the rendezvous completes in the
// background, and the fused path still performs zero staging
// allocations.
func (c *Comm) IsendvType(b buf.Block, count int, ty *datatype.Type, dest, tag int) (*Request, error) {
	if err := c.checkP2P(dest, tag); err != nil {
		return nil, err
	}
	if count < 0 {
		return nil, errNegativeCount(count)
	}
	return c.startAsyncSend(func(cc *Comm, fl sendFlags) error {
		return cc.sendTypedFused(b, count, ty, dest, tag, fl)
	})
}

// IssendvType is IsendvType under forced rendezvous: even eager-sized
// payloads take the fused handshake path.
func (c *Comm) IssendvType(b buf.Block, count int, ty *datatype.Type, dest, tag int) (*Request, error) {
	if err := c.checkP2P(dest, tag); err != nil {
		return nil, err
	}
	if count < 0 {
		return nil, errNegativeCount(count)
	}
	return c.startAsyncSend(func(cc *Comm, fl sendFlags) error {
		fl.forceRdv = true
		return cc.sendTypedFused(b, count, ty, dest, tag, fl)
	})
}

// sendTypedFused is the sender side of the fused rendezvous.
func (c *Comm) sendTypedFused(b buf.Block, count int, ty *datatype.Type, dest, tag int, fl sendFlags) error {
	p := c.prof
	n := ty.PackSize(count)
	if n == 0 || (!fl.forceRdv && c.eagerOK(n, fl.packed, !fl.asyncReturn && !b.IsVirtual())) {
		// Eager-sized (or empty): stage through the ordinary typed path.
		return c.sendTyped(b, count, ty, dest, tag, fl)
	}
	plan, err := ty.CompilePlan(count)
	if err != nil {
		return err
	}
	if err := plan.Validate(b); err != nil {
		// Argument errors surface locally, before the rendezvous
		// envelope enters the fabric — the same order as SendType,
		// whose NewPacker validates before anything is delivered.
		return err
	}
	st := ty.Stats(count)
	wireBW := fl.wireBW
	if wireBW == 0 {
		// No MPI-internal buffers are involved, so the internal-pool
		// degradation of large typed sends does not apply: the wire
		// term runs at the nominal injection bandwidth, like the
		// reference send.
		wireBW = p.NetBandwidth
	}
	wire := float64(n) / wireBW

	fl.sendv = true
	c.clock.Advance(vclock.FromSeconds(p.SendOverhead))
	m := c.newRdvMessage(dest, tag, n, fl)
	err = c.deliverRdv(m, dest, tag)
	fl.signalDelivered()
	if err != nil {
		return err
	}
	match, err := c.awaitMatch(m, dest, tag)
	if err != nil {
		return err
	}
	ctsAt := match.MatchTime + dur(c.linkLatency(dest))
	c.clock.AdvanceTo(ctsAt)

	if c.faultsOn() && !c.retry.WholeReplay && m.Ack != nil {
		fd, hasFd := match.FusedDst.(*fusedDst)
		hasFd = hasFd && fd != nil
		covered := minInt64(n, int64(match.Dst.Len()))
		if hasFd {
			covered = minInt64(n, fd.need)
		}
		chunkSz := p.InternalChunk()
		if schunks := int((covered + chunkSz - 1) / chunkSz); schunks > 1 {
			// Selective chunk retransmission over the fused rendezvous:
			// replays re-pack only the damaged stream ranges — through a
			// chunk-sized staging hop into a fused receiver's layout, or
			// straight into a contiguous receiver's block.
			var attemptCost float64
			x := &chunkedXfer{
				covered: covered, chunkSize: chunkSz, chunks: schunks,
				drainAll: func() error {
					var copyCost float64
					var xferErr error
					if hasFd {
						if n == fd.need && !buf.Overlaps(b, fd.user) {
							if w := datatype.ParallelWorkersFor(n); w > 1 {
								copyCost = c.cache.ParallelFusedCopyCost(b.Region(), fd.user.Region(), st, fd.stats, w)
							} else {
								copyCost = c.cache.FusedCopyCost(b.Region(), fd.user.Region(), st, fd.stats)
							}
							_, xferErr = datatype.FusedCopy(plan, fd.plan, b, fd.user)
						} else {
							copyCost, xferErr = c.stagedScatter(plan, fd, b, st, n)
						}
					} else {
						dst := match.Dst
						dstSt := layout.Stats{Segments: 1, Bytes: covered, Extent: covered, AvgBlock: float64(covered), MinBlock: covered, MaxBlock: covered, Density: 1}
						if w := datatype.ParallelWorkersFor(covered); w > 1 {
							copyCost = c.cache.ParallelFusedCopyCost(b.Region(), dst.Region(), st, dstSt, w)
						} else {
							copyCost = c.cache.FusedCopyCost(b.Region(), dst.Region(), st, dstSt)
						}
						if covered > 0 {
							xferErr = plan.PackRange(b, dst, 0, covered)
						}
					}
					if xferErr != nil {
						return xferErr
					}
					attemptCost = math.Max(copyCost, wire)
					c.clock.Advance(vclock.FromSeconds(attemptCost))
					return nil
				},
				resend: func(lo, hi int64) error {
					if hasFd {
						scratch := c.transitAlloc(b, hi-lo)
						err := plan.PackRange(b, scratch, lo, hi)
						if err == nil {
							err = fd.plan.UnpackRange(scratch, fd.user, lo, hi)
						}
						buf.PutPooled(scratch)
						if err != nil {
							return err
						}
					} else if err := plan.PackRange(b, match.Dst.Slice(int(lo), int(hi-lo)), lo, hi); err != nil {
						return err
					}
					c.clock.Advance(vclock.FromSeconds(attemptCost * float64(hi-lo) / float64(covered)))
					return nil
				},
				sum: func(lo, hi int64) (uint64, bool) {
					recvReal := (hasFd && !fd.user.IsVirtual()) || (!hasFd && !match.Dst.IsVirtual())
					if b.IsVirtual() || !recvReal || hi <= lo {
						return 0, false
					}
					var cs buf.Checksum
					plan.ChecksumRange(b, lo, hi, &cs)
					return cs.Sum64(), true
				},
				damage: func(f simnet.Fault, lo, hi int64) bool {
					if hasFd {
						return damagePlanRange(fd.plan, fd.user, lo, hi, f)
					}
					return damageContigRange(match.Dst, lo, hi, f)
				},
			}
			return c.rdvSendSelective(m, dest, tag, n, x)
		}
	}

	// Each attempt re-runs the one-pass (or staged-emulation) transfer;
	// under faults the drawn damage lands in the receiver's layout
	// through its own plan, and the checksum claim covers the packed
	// stream both sides can compute without staging.
	return c.rdvSendLoop(m, dest, tag, n, func(f simnet.Fault) (uint64, bool, bool, error) {
		var copyCost float64
		var xferErr error
		var sum uint64
		hasSum := false
		poisoned := false
		if fd, ok := match.FusedDst.(*fusedDst); ok && fd != nil {
			if n == fd.need && !buf.Overlaps(b, fd.user) {
				// The fused fast path: one pass, layout to layout, split
				// across workers (and priced at the saturating parallel
				// speedup) above the parallel-pack threshold.
				if w := datatype.ParallelWorkersFor(n); w > 1 {
					copyCost = c.cache.ParallelFusedCopyCost(b.Region(), fd.user.Region(), st, fd.stats, w)
				} else {
					copyCost = c.cache.FusedCopyCost(b.Region(), fd.user.Region(), st, fd.stats)
				}
				_, xferErr = datatype.FusedCopy(plan, fd.plan, b, fd.user)
			} else {
				// Aliased buffers or a size mismatch: sender-local staged
				// emulation. The receiver still takes delivery in its
				// layout; the two passes are paid here.
				copyCost, xferErr = c.stagedScatter(plan, fd, b, st, n)
			}
			if xferErr == nil {
				nCopy := minInt64(n, fd.need)
				poisoned = f.NeedsResend() && !damagePlan(fd.plan, fd.user, nCopy, f)
				if m.Ack != nil && !b.IsVirtual() && !fd.user.IsVirtual() && nCopy > 0 {
					var cs buf.Checksum
					plan.ChecksumRange(b, 0, nCopy, &cs)
					sum = cs.Sum64()
					hasSum = true
				}
			}
		} else {
			// Contiguous (or fused-declining) receiver: pack the plan
			// straight into the remote destination block in one pass.
			dst := match.Dst
			nCopy := minInt64(n, int64(dst.Len()))
			dstSt := layout.Stats{Segments: 1, Bytes: nCopy, Extent: nCopy, AvgBlock: float64(nCopy), MinBlock: nCopy, MaxBlock: nCopy, Density: 1}
			if w := datatype.ParallelWorkersFor(nCopy); w > 1 {
				copyCost = c.cache.ParallelFusedCopyCost(b.Region(), dst.Region(), st, dstSt, w)
			} else {
				copyCost = c.cache.FusedCopyCost(b.Region(), dst.Region(), st, dstSt)
			}
			if nCopy > 0 {
				xferErr = plan.PackRange(b, dst, 0, nCopy)
			}
			// Attribution happens at the receiver: a contiguous receive
			// records the transfer as fused (one pass, no staging), a
			// fused-declining typed receiver records it as staged when it
			// unpacks. The sender cannot tell the two destinations apart.
			if xferErr == nil {
				poisoned = f.NeedsResend() && !damageContig(dst, nCopy, f)
				if m.Ack != nil && !b.IsVirtual() && !dst.IsVirtual() && nCopy > 0 {
					var cs buf.Checksum
					plan.ChecksumRange(b, 0, nCopy, &cs)
					sum = cs.Sum64()
					hasSum = true
				}
			}
		}
		if xferErr != nil {
			return 0, false, false, xferErr
		}
		// The single pass and the wire pipeline: the pass feeds the wire
		// run-by-run, so the sender is occupied for the longer of the two.
		c.clock.Advance(vclock.FromSeconds(math.Max(copyCost, wire)))
		return sum, hasSum, poisoned, nil
	})
}

// stagedScatter is the sender-local staged emulation of a fused
// transfer that cannot legally run in one pass: pack the plan into
// staging, scatter it into the receiver's layout, release the staging.
// Two memory passes — but when the payload spans several internal
// chunks the passes run on the chunk-slot pipeline: the pack worker
// fills slot k+1 while this goroutine scatters slot k into the
// receiver's layout, so the cost collapses from gather+scatter to the
// two-stage pipeline bound and the staging footprint shrinks from the
// whole message to the slot ring.
func (c *Comm) stagedScatter(plan *datatype.Plan, fd *fusedDst, b buf.Block, st layout.Stats, n int64) (float64, error) {
	nCopy := minInt64(n, fd.need)
	gather := c.cache.CompiledGatherCost(b.Region(), c.internal.Region(), st)
	scatter := c.cache.CompiledScatterCost(c.internal.Region(), fd.user.Region(), fd.stats)
	chunk := c.prof.InternalChunk()
	chunks := c.prof.Chunks(nCopy)
	// Aliased buffers (a fused self-send) must stage the whole message:
	// the pipeline's pack worker would read user bytes the consumer is
	// concurrently scattering over.
	if chunks > 1 && pipelineEnabled() && !buf.Overlaps(b, fd.user) {
		cost := memsim.PipelinedChunkCost(gather, scatter, chunks, c.prof.PipelineDepth())
		cp, err := datatype.NewChunkPipeline(plan, b, 0, nCopy, chunk, c.prof.PipelineDepth(), c.rank)
		if err != nil {
			return cost, err
		}
		defer cp.Close()
		for {
			ch, ok := cp.Next()
			if !ok {
				break
			}
			if err := fd.plan.UnpackRange(ch.Data, fd.user, ch.Lo, ch.Hi); err != nil {
				return cost, err
			}
			cp.Recycle(ch)
		}
		datatype.RecordStagedTransfer(nCopy)
		return cost, nil
	}
	staging := c.transitAlloc(b, nCopy)
	defer buf.PutPooled(staging)
	cost := gather + scatter
	if nCopy > 0 {
		if err := plan.PackRange(b, staging, 0, nCopy); err != nil {
			return cost, err
		}
		if err := fd.plan.UnpackRange(staging, fd.user, 0, nCopy); err != nil {
			return cost, err
		}
	}
	datatype.RecordStagedTransfer(nCopy)
	return cost, nil
}

// offerFusedDst builds the fused descriptor a typed rendezvous
// receiver hands to a sendv sender, or nil when the layout cannot
// legally take a one-pass scatter (uncompilable plan, overlapping
// repeated instances).
func (c *Comm) offerFusedDst(b buf.Block, count int, ty *datatype.Type, need int64) *fusedDst {
	plan, err := ty.CompilePlan(count)
	if err != nil || !plan.FusedDstSafe() {
		return nil
	}
	return &fusedDst{user: b, plan: plan, stats: ty.Stats(count), need: need}
}
