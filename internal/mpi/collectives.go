package mpi

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/buf"
	"repro/internal/elem"
	"repro/internal/vclock"
)

// collTag is the reserved tag for collective-internal traffic. User
// tags are non-negative, so collective messages can never be matched
// by user receives; MPI's same-order-on-all-ranks rule for collectives
// makes a single tag sufficient.
const collTag = -2

// csend/crecv are the unvalidated internal p2p used by collective
// algorithms.
func (c *Comm) csend(b buf.Block, dest int) error {
	return c.sendContig(b, dest, collTag, sendFlags{})
}

func (c *Comm) crecv(b buf.Block, src int) error {
	_, err := c.recvContig(b, src, collTag)
	return err
}

// Barrier blocks until all ranks of the communicator arrive, like
// MPI_Barrier. Virtual time resumes at the latest arrival plus a
// dissemination-pattern cost of ⌈log₂ n⌉ latencies.
func (c *Comm) Barrier() {
	c.groupSync()
	if c.size > 1 {
		rounds := math.Ceil(math.Log2(float64(c.size)))
		c.clock.Advance(vclock.FromSeconds(rounds * (c.prof.NetLatency + c.prof.SendOverhead)))
	}
}

// Bcast broadcasts root's buffer to all ranks over a binomial tree,
// like MPI_Bcast. It is a thin wrapper over BcastType with a
// datatype.Contiguous layout; dense legs ride the raw contiguous
// protocol paths unchanged.
func (c *Comm) Bcast(b buf.Block, root int) error {
	count, ty, err := contigView(b.Len())
	if err != nil {
		return err
	}
	return c.BcastType(b, count, ty, root)
}

// Op is a reduction operator over float64 element slices: it folds in
// into acc element-wise.
type Op func(acc, in []float64)

// Predefined reduction operators, the analogues of MPI_SUM, MPI_MAX,
// MPI_MIN and MPI_PROD over MPI_DOUBLE.
var (
	OpSum Op = func(acc, in []float64) {
		for i := range acc {
			acc[i] += in[i]
		}
	}
	OpMax Op = func(acc, in []float64) {
		for i := range acc {
			if in[i] > acc[i] {
				acc[i] = in[i]
			}
		}
	}
	OpMin Op = func(acc, in []float64) {
		for i := range acc {
			if in[i] < acc[i] {
				acc[i] = in[i]
			}
		}
	}
	OpProd Op = func(acc, in []float64) {
		for i := range acc {
			acc[i] *= in[i]
		}
	}
)

// Reduce folds every rank's send buffer of count float64s into recv at
// the root over a binomial tree, like MPI_Reduce on MPI_DOUBLE.
func (c *Comm) Reduce(send, recv buf.Block, count int, op Op, root int) error {
	return c.collErr("Reduce", c.reduce(send, recv, count, op, root))
}

func (c *Comm) reduce(send, recv buf.Block, count int, op Op, root int) error {
	if err := c.checkRank(root); err != nil {
		return err
	}
	if count < 0 {
		return fmt.Errorf("%w: %d", ErrCount, count)
	}
	n := count * elem.Float64Size
	acc := elem.ToFloat64s(send.Slice(0, n))
	// Merge scratch: pooled, fully received before each read.
	tmpBlock := buf.GetPooledFor(c.rank, n)
	defer buf.PutPooled(tmpBlock)
	rel := (c.rank - root + c.size) % c.size
	abs := func(r int) int { return (r + root) % c.size }
	// Charge the local combine: one pass over the operands per merge.
	combineCost := func() float64 {
		return float64(n) / c.prof.Mem.CopyBW
	}
	for mask := 1; mask < c.size; mask <<= 1 {
		if rel&mask != 0 {
			peer := abs(rel - mask)
			out := elem.Float64s(acc)
			if err := c.csend(out, peer); err != nil {
				return err
			}
			return nil // contributed and done
		}
		peer := rel | mask
		if peer < c.size {
			if err := c.crecv(tmpBlock, abs(peer)); err != nil {
				return err
			}
			op(acc, elem.ToFloat64s(tmpBlock))
			c.clock.Advance(vclock.FromSeconds(combineCost()))
		}
	}
	if c.rank == root {
		for i, v := range acc {
			elem.PutFloat64(recv, i, v)
		}
	}
	return nil
}

// Allreduce is Reduce to rank 0 followed by Bcast, like a simple
// MPI_Allreduce.
func (c *Comm) Allreduce(send, recv buf.Block, count int, op Op) error {
	if err := c.Reduce(send, recv, count, op, 0); err != nil {
		return err
	}
	return c.Bcast(recv.Slice(0, count*elem.Float64Size), 0)
}

// Gather concentrates equal-sized contributions at the root in rank
// order, like MPI_Gather. recv is only read at the root and must hold
// size*send.Len() bytes. It is a thin wrapper over GatherType with a
// datatype.Contiguous layout.
func (c *Comm) Gather(send buf.Block, recv buf.Block, root int) error {
	count, ty, err := contigView(send.Len())
	if err != nil {
		return err
	}
	return c.GatherType(send, count, ty, recv, count, ty, root)
}

// Scatter distributes equal slices of the root's buffer, like
// MPI_Scatter. send is only read at the root; each rank receives
// recv.Len() bytes. It is a thin wrapper over ScatterType with a
// datatype.Contiguous layout.
func (c *Comm) Scatter(send buf.Block, recv buf.Block, root int) error {
	count, ty, err := contigView(recv.Len())
	if err != nil {
		return err
	}
	return c.ScatterType(send, count, ty, recv, count, ty, root)
}

// Allgather concentrates every rank's contribution at every rank using
// the ring algorithm, like MPI_Allgather. recv must hold
// size*send.Len() bytes; slot r receives rank r's contribution. It is
// a thin wrapper over AllgatherType with a datatype.Contiguous layout.
func (c *Comm) Allgather(send buf.Block, recv buf.Block) error {
	count, ty, err := contigView(send.Len())
	if err != nil {
		return err
	}
	return c.AllgatherType(send, count, ty, recv, count, ty)
}

// Alltoall exchanges the r-th slice of send with rank r, like
// MPI_Alltoall with equal block sizes. send and recv hold size blocks
// of blockLen bytes each. It is a thin wrapper over AlltoallType with
// a datatype.Contiguous layout.
func (c *Comm) Alltoall(send, recv buf.Block, blockLen int) error {
	count, ty, err := contigView(blockLen)
	if err != nil {
		return err
	}
	return c.AlltoallType(send, count, ty, recv, count, ty)
}

// Scan computes the inclusive prefix reduction over ranks, like
// MPI_Scan on MPI_DOUBLE: rank r receives op-fold of ranks 0..r.
func (c *Comm) Scan(send, recv buf.Block, count int, op Op) error {
	return c.collErr("Scan", c.scan(send, recv, count, op))
}

func (c *Comm) scan(send, recv buf.Block, count int, op Op) error {
	if count < 0 {
		return fmt.Errorf("%w: %d", ErrCount, count)
	}
	n := count * elem.Float64Size
	acc := elem.ToFloat64s(send.Slice(0, n))
	if c.rank > 0 {
		prev := buf.GetPooledFor(c.rank, n)
		// acc aliases prev below, and sends copy before returning, so
		// the release can wait for function exit.
		defer buf.PutPooled(prev)
		if err := c.crecv(prev, c.rank-1); err != nil {
			return err
		}
		upstream := elem.ToFloat64s(prev)
		op(upstream, acc)
		acc = upstream
	}
	if c.rank < c.size-1 {
		if err := c.csend(elem.Float64s(acc), c.rank+1); err != nil {
			return err
		}
	}
	for i, v := range acc {
		elem.PutFloat64(recv, i, v)
	}
	return nil
}

// Split partitions the communicator by color, ordering ranks within
// each new communicator by key then by old rank, like MPI_Comm_split.
// It is collective over the parent communicator.
func (c *Comm) Split(color, key int) (*Comm, error) {
	// Exchange (color, key) pairs via Allgather.
	mine := buf.Alloc(16)
	elem.PutInt64(mine, 0, int64(color))
	elem.PutInt64(mine, 1, int64(key))
	all := buf.Alloc(16 * c.size)
	if err := c.Allgather(mine, all); err != nil {
		return nil, err
	}
	type member struct{ color, key, rank int }
	members := make([]member, c.size)
	colors := map[int]bool{}
	for r := 0; r < c.size; r++ {
		members[r] = member{
			color: int(elem.Int64(all.Slice(16*r, 16), 0)),
			key:   int(elem.Int64(all.Slice(16*r, 16), 1)),
			rank:  r,
		}
		colors[members[r].color] = true
	}
	// Rank 0 allocates a contiguous ctx block, one per distinct color,
	// and broadcasts the base.
	distinct := make([]int, 0, len(colors))
	for col := range colors {
		distinct = append(distinct, col)
	}
	sort.Ints(distinct)
	base := buf.Alloc(8)
	if c.rank == 0 {
		elem.PutInt64(base, 0, int64(c.fabric.AllocCtxBlock(len(distinct))))
	}
	if err := c.Bcast(base, 0); err != nil {
		return nil, err
	}
	ctxBase := int(elem.Int64(base, 0))
	colorIdx := sort.SearchInts(distinct, color)

	// My group, ordered by (key, old rank).
	var group []member
	for _, m := range members {
		if m.color == color {
			group = append(group, m)
		}
	}
	sort.Slice(group, func(i, j int) bool {
		if group[i].key != group[j].key {
			return group[i].key < group[j].key
		}
		return group[i].rank < group[j].rank
	})
	newMembers := make([]int, len(group))
	newRank := -1
	for i, m := range group {
		newMembers[i] = c.endpoint(m.rank)
		if m.rank == c.rank {
			newRank = i
		}
	}
	nc := &Comm{
		rank:     newRank,
		size:     len(group),
		ctx:      ctxBase + colorIdx,
		members:  newMembers,
		fabric:   c.fabric,
		prof:     c.prof,
		clock:    c.clock,
		cache:    c.cache,
		realTime: c.realTime,
		start:    c.start,
		internal: c.internal,
		faults:   c.faults,
		retry:    c.retry,
	}
	// Materialise the group's sync object before anyone uses it.
	c.fabric.GroupFor(nc.ctx, nc.size)
	return nc, nil
}
