package mpi

import (
	"testing"

	"repro/internal/buf"
)

func TestPersistentSendRecv(t *testing.T) {
	run2(t, func(c *Comm) error {
		const reps = 5
		b := buf.Alloc(256)
		if c.Rank() == 0 {
			req, err := c.SendInit(b, 1, 0)
			if err != nil {
				return err
			}
			for i := 0; i < reps; i++ {
				b.FillPattern(byte(i))
				if err := req.Start(); err != nil {
					return err
				}
				if _, err := req.Wait(); err != nil {
					return err
				}
			}
			return nil
		}
		req, err := c.RecvInit(b, 0, 0)
		if err != nil {
			return err
		}
		for i := 0; i < reps; i++ {
			if err := req.Start(); err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			if err := b.VerifyPattern(byte(i)); err != nil {
				t.Errorf("rep %d: %v", i, err)
			}
		}
		return nil
	})
}

func TestPersistentTypedPingPong(t *testing.T) {
	run2(t, func(c *Comm) error {
		ty := mustVec(t, 64, 1, 2)
		if c.Rank() == 0 {
			src := buf.Alloc(int(ty.Extent()))
			src.FillPattern(3)
			req, err := c.SendTypeInit(src, 1, ty, 1, 0)
			if err != nil {
				return err
			}
			for i := 0; i < 3; i++ {
				if err := req.Start(); err != nil {
					return err
				}
				if _, err := req.Wait(); err != nil {
					return err
				}
			}
			return nil
		}
		dst := buf.Alloc(int(ty.Size()))
		for i := 0; i < 3; i++ {
			if _, err := c.Recv(dst, 0, 0); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestPersistentMisuse(t *testing.T) {
	run2(t, func(c *Comm) error {
		if c.Rank() != 0 {
			_, err := c.Recv(buf.Alloc(8), 0, 0)
			return err
		}
		req, err := c.SendInit(buf.Alloc(8), 1, 0)
		if err != nil {
			return err
		}
		if _, err := req.Wait(); err == nil {
			t.Error("Wait on inactive persistent request succeeded")
		}
		if err := req.Start(); err != nil {
			return err
		}
		if err := req.Start(); err == nil {
			t.Error("double Start succeeded")
		}
		_, err = req.Wait()
		return err
	})
}

func TestStartAll(t *testing.T) {
	run2(t, func(c *Comm) error {
		if c.Rank() == 0 {
			a, err := c.SendInit(buf.Alloc(8), 1, 0)
			if err != nil {
				return err
			}
			b, err := c.SendInit(buf.Alloc(8), 1, 1)
			if err != nil {
				return err
			}
			if err := StartAll(a, b); err != nil {
				return err
			}
			if _, err := a.Wait(); err != nil {
				return err
			}
			_, err = b.Wait()
			return err
		}
		if _, err := c.Recv(buf.Alloc(8), 0, 0); err != nil {
			return err
		}
		_, err := c.Recv(buf.Alloc(8), 0, 1)
		return err
	})
}

func TestGatherv(t *testing.T) {
	runN(t, 3, func(c *Comm) error {
		// Rank r contributes r+1 8-byte chunks.
		n := (c.Rank() + 1) * 8
		send := buf.Alloc(n)
		send.FillPattern(byte(c.Rank()))
		counts := []int{8, 16, 24}
		displs := []int{0, 8, 24}
		recv := buf.Alloc(48)
		if err := c.Gatherv(send, recv, counts, displs, 0); err != nil {
			return err
		}
		if c.Rank() == 0 {
			for r := 0; r < 3; r++ {
				if err := recv.Slice(displs[r], counts[r]).VerifyPattern(byte(r)); err != nil {
					t.Errorf("slot %d: %v", r, err)
				}
			}
		}
		return nil
	})
}

func TestScatterv(t *testing.T) {
	runN(t, 3, func(c *Comm) error {
		counts := []int{8, 16, 24}
		displs := []int{0, 8, 24}
		send := buf.Alloc(48)
		if c.Rank() == 0 {
			for r := 0; r < 3; r++ {
				send.Slice(displs[r], counts[r]).FillPattern(byte(10 + r))
			}
		}
		recv := buf.Alloc(counts[c.Rank()])
		if err := c.Scatterv(send, counts, displs, recv, 0); err != nil {
			return err
		}
		return recv.VerifyPattern(byte(10 + c.Rank()))
	})
}

func TestGathervBadGeometry(t *testing.T) {
	runN(t, 2, func(c *Comm) error {
		if c.Rank() != 0 {
			// Non-roots just contribute; counts/displs are root-only.
			return c.Gatherv(buf.Alloc(8), buf.Block{}, nil, nil, 0)
		}
		// Root first tries a malformed geometry, then a correct call
		// that actually consumes the contribution.
		if err := c.Gatherv(buf.Alloc(8), buf.Alloc(16), []int{8}, []int{0}, 0); err == nil {
			t.Error("short counts accepted")
		}
		return c.Gatherv(buf.Alloc(8), buf.Alloc(16), []int{8, 8}, []int{0, 8}, 0)
	})
}
