package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/buf"
	"repro/internal/datatype"
	"repro/internal/memsim"
)

// mustResized builds a committed gapped vector whose extent is
// stretched by pad bytes (MPI_Type_create_resized over a vector).
func mustResized(t *testing.T, count, blocklen, stride int, pad int64) *datatype.Type {
	t.Helper()
	base, err := datatype.Vector(count, blocklen, stride, datatype.Float64)
	if err != nil {
		t.Fatal(err)
	}
	ty, err := datatype.Resized(base, 0, base.Extent()+pad)
	if err != nil {
		t.Fatal(err)
	}
	if err := ty.Commit(); err != nil {
		t.Fatal(err)
	}
	return ty
}

// TestPersistentDifferentialRoundTrip pins persistent typed round
// trips byte-for-byte against blocking sends: every rank passes the
// same payload around a ring twice — once through
// SendTypeInit/RecvTypeInit requests restarted with StartAll, once
// through SendType/RecvType — and the two received buffers must be
// identical at every world size from 1 to 8 and on both a gapped and
// a resized layout. Payloads are eager-sized, so the blocking ring
// (and the one-rank self-loop) cannot deadlock.
func TestPersistentDifferentialRoundTrip(t *testing.T) {
	layouts := []struct {
		name string
		ty   *datatype.Type
	}{
		{"gapped", mustVec(t, 32, 2, 5)},
		{"resized", mustResized(t, 16, 1, 3, 64)},
	}
	const reps = 3
	for _, lay := range layouts {
		for n := 1; n <= 8; n++ {
			ty := lay.ty
			t.Run(fmt.Sprintf("%s/ranks=%d", lay.name, n), func(t *testing.T) {
				runN(t, n, func(c *Comm) error {
					r := c.Rank()
					next, prev := (r+1)%n, (r+n-1)%n
					ext := int(ty.Extent())
					src := buf.Alloc(ext)
					pdst := buf.Alloc(ext) // persistent-path landing zone
					bdst := buf.Alloc(ext) // blocking-path landing zone
					sreq, err := c.SendTypeInit(src, 1, ty, next, 7)
					if err != nil {
						return err
					}
					rreq, err := c.RecvTypeInit(pdst, 1, ty, prev, 7)
					if err != nil {
						return err
					}
					for rep := 0; rep < reps; rep++ {
						src.FillPattern(byte(16*r ^ rep))
						pdst.Zero()
						bdst.Zero()
						// Persistent round: the receive must be started
						// alongside the send so the one-rank self-loop
						// has its receive posted.
						if err := StartAll(sreq, rreq); err != nil {
							return err
						}
						if err := WaitAllPersistent(sreq, rreq); err != nil {
							return err
						}
						got := append([]byte(nil), pdst.Bytes()...)
						// Blocking round over the same layout and seed.
						if err := c.SendType(src, 1, ty, next, 8); err != nil {
							return err
						}
						if _, err := c.RecvType(bdst, 1, ty, prev, 8); err != nil {
							return err
						}
						if !bytes.Equal(got, bdst.Bytes()) {
							t.Errorf("%s ranks=%d rep %d: persistent and blocking receives differ", lay.name, n, rep)
						}
					}
					if err := sreq.Free(); err != nil {
						return err
					}
					return rreq.Free()
				})
			})
		}
	}
}

// TestPersistentContigDifferential does the same differential over the
// contiguous SendInit/RecvInit pair.
func TestPersistentContigDifferential(t *testing.T) {
	for n := 1; n <= 8; n++ {
		t.Run(fmt.Sprintf("ranks=%d", n), func(t *testing.T) {
			runN(t, n, func(c *Comm) error {
				r := c.Rank()
				next, prev := (r+1)%n, (r+n-1)%n
				src, pdst, bdst := buf.Alloc(512), buf.Alloc(512), buf.Alloc(512)
				sreq, err := c.SendInit(src, next, 7)
				if err != nil {
					return err
				}
				rreq, err := c.RecvInit(pdst, prev, 7)
				if err != nil {
					return err
				}
				for rep := 0; rep < 3; rep++ {
					src.FillPattern(byte(32*r ^ rep))
					pdst.Zero()
					bdst.Zero()
					if err := StartAll(sreq, rreq); err != nil {
						return err
					}
					if err := WaitAllPersistent(sreq, rreq); err != nil {
						return err
					}
					got := append([]byte(nil), pdst.Bytes()...)
					if err := c.Send(src, next, 8); err != nil {
						return err
					}
					if _, err := c.Recv(bdst, prev, 8); err != nil {
						return err
					}
					if !bytes.Equal(got, bdst.Bytes()) {
						t.Errorf("ranks=%d rep %d: persistent and blocking receives differ", n, rep)
					}
				}
				if err := sreq.Free(); err != nil {
					return err
				}
				return rreq.Free()
			})
		})
	}
}

// TestPersistentFree pins the Free error path: freeing an active
// request fails, freeing an inactive one retires it, Start after Free
// fails, and double Free is a no-op.
func TestPersistentFree(t *testing.T) {
	run2(t, func(c *Comm) error {
		if c.Rank() != 0 {
			_, err := c.Recv(buf.Alloc(8), 0, 0)
			return err
		}
		req, err := c.SendInit(buf.Alloc(8), 1, 0)
		if err != nil {
			return err
		}
		if err := req.Start(); err != nil {
			return err
		}
		if !req.Active() {
			t.Error("started request not active")
		}
		if err := req.Free(); err == nil {
			t.Error("Free while active succeeded")
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		if err := req.Free(); err != nil {
			t.Errorf("Free on inactive request: %v", err)
		}
		if err := req.Free(); !errors.Is(err, ErrRequestFreed) {
			t.Errorf("double Free = %v, want ErrRequestFreed", err)
		}
		if err := req.Start(); err == nil {
			t.Error("Start after Free succeeded")
		}
		return nil
	})
}

// TestPersistentObservation pins the self-tuning hook: with an
// observed-cost sink attached, repeated typed and contiguous
// persistent sends record one sample per Start/Wait cycle under their
// path names, at enough distinct sizes for a usable latency+bandwidth
// fit; without a sink nothing is recorded.
func TestPersistentObservation(t *testing.T) {
	o := memsim.NewObservedHierarchy(nil)
	counts := []int{64, 512, 4096}
	run2(t, func(c *Comm) error {
		c.ObserveInto(o)
		if got := c.Observed(); got != o {
			t.Error("Observed() does not return the attached sink")
		}
		for _, cnt := range counts {
			ty, err := datatype.Vector(cnt, 1, 2, datatype.Float64)
			if err != nil {
				return err
			}
			if err := ty.Commit(); err != nil {
				return err
			}
			b := buf.Alloc(int(ty.Extent()))
			if c.Rank() == 0 {
				req, err := c.SendTypeInit(b, 1, ty, 1, 0)
				if err != nil {
					return err
				}
				if err := req.Start(); err != nil {
					return err
				}
				_, err = req.Wait()
				if err != nil {
					return err
				}
			} else {
				req, err := c.RecvTypeInit(b, 1, ty, 0, 0)
				if err != nil {
					return err
				}
				if err := req.Start(); err != nil {
					return err
				}
				if _, err := req.Wait(); err != nil {
					return err
				}
			}
		}
		// One contiguous cycle on top.
		b := buf.Alloc(1024)
		if c.Rank() == 0 {
			req, err := c.SendInit(b, 1, 1)
			if err != nil {
				return err
			}
			if err := req.Start(); err != nil {
				return err
			}
			_, err = req.Wait()
			return err
		}
		_, err := c.Recv(b, 0, 1)
		return err
	})
	if got, want := o.Samples(memsim.PathTypedSend), len(counts); got != want {
		t.Errorf("typed-send samples %d, want %d", got, want)
	}
	if got := o.Samples(memsim.PathContigSend); got != 1 {
		t.Errorf("contig-send samples %d, want 1", got)
	}
	fit, ok := o.Fit(memsim.PathTypedSend)
	if !ok {
		t.Fatal("no typed-send fit after 3 distinct sizes")
	}
	if fit.InvBW <= 0 {
		t.Errorf("typed-send fit has no marginal cost: %+v", fit)
	}

	// Without a sink, nothing is recorded.
	quiet := memsim.NewObservedHierarchy(nil)
	_ = quiet
	run2(t, func(c *Comm) error {
		b := buf.Alloc(64)
		if c.Rank() == 0 {
			req, err := c.SendInit(b, 1, 0)
			if err != nil {
				return err
			}
			if err := req.Start(); err != nil {
				return err
			}
			_, err = req.Wait()
			return err
		}
		_, err := c.Recv(b, 0, 0)
		return err
	})
	if got := quiet.Samples(memsim.PathContigSend); got != 0 {
		t.Errorf("detached sink recorded %d samples", got)
	}
}

func TestPersistentSendRecv(t *testing.T) {
	run2(t, func(c *Comm) error {
		const reps = 5
		b := buf.Alloc(256)
		if c.Rank() == 0 {
			req, err := c.SendInit(b, 1, 0)
			if err != nil {
				return err
			}
			for i := 0; i < reps; i++ {
				b.FillPattern(byte(i))
				if err := req.Start(); err != nil {
					return err
				}
				if _, err := req.Wait(); err != nil {
					return err
				}
			}
			return nil
		}
		req, err := c.RecvInit(b, 0, 0)
		if err != nil {
			return err
		}
		for i := 0; i < reps; i++ {
			if err := req.Start(); err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			if err := b.VerifyPattern(byte(i)); err != nil {
				t.Errorf("rep %d: %v", i, err)
			}
		}
		return nil
	})
}

func TestPersistentTypedPingPong(t *testing.T) {
	run2(t, func(c *Comm) error {
		ty := mustVec(t, 64, 1, 2)
		if c.Rank() == 0 {
			src := buf.Alloc(int(ty.Extent()))
			src.FillPattern(3)
			req, err := c.SendTypeInit(src, 1, ty, 1, 0)
			if err != nil {
				return err
			}
			for i := 0; i < 3; i++ {
				if err := req.Start(); err != nil {
					return err
				}
				if _, err := req.Wait(); err != nil {
					return err
				}
			}
			return nil
		}
		dst := buf.Alloc(int(ty.Size()))
		for i := 0; i < 3; i++ {
			if _, err := c.Recv(dst, 0, 0); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestPersistentMisuse(t *testing.T) {
	run2(t, func(c *Comm) error {
		if c.Rank() != 0 {
			_, err := c.Recv(buf.Alloc(8), 0, 0)
			return err
		}
		req, err := c.SendInit(buf.Alloc(8), 1, 0)
		if err != nil {
			return err
		}
		if _, err := req.Wait(); err == nil {
			t.Error("Wait on inactive persistent request succeeded")
		}
		if err := req.Start(); err != nil {
			return err
		}
		if err := req.Start(); err == nil {
			t.Error("double Start succeeded")
		}
		_, err = req.Wait()
		return err
	})
}

func TestStartAll(t *testing.T) {
	run2(t, func(c *Comm) error {
		if c.Rank() == 0 {
			a, err := c.SendInit(buf.Alloc(8), 1, 0)
			if err != nil {
				return err
			}
			b, err := c.SendInit(buf.Alloc(8), 1, 1)
			if err != nil {
				return err
			}
			if err := StartAll(a, b); err != nil {
				return err
			}
			if _, err := a.Wait(); err != nil {
				return err
			}
			_, err = b.Wait()
			return err
		}
		if _, err := c.Recv(buf.Alloc(8), 0, 0); err != nil {
			return err
		}
		_, err := c.Recv(buf.Alloc(8), 0, 1)
		return err
	})
}

func TestGatherv(t *testing.T) {
	runN(t, 3, func(c *Comm) error {
		// Rank r contributes r+1 8-byte chunks.
		n := (c.Rank() + 1) * 8
		send := buf.Alloc(n)
		send.FillPattern(byte(c.Rank()))
		counts := []int{8, 16, 24}
		displs := []int{0, 8, 24}
		recv := buf.Alloc(48)
		if err := c.Gatherv(send, recv, counts, displs, 0); err != nil {
			return err
		}
		if c.Rank() == 0 {
			for r := 0; r < 3; r++ {
				if err := recv.Slice(displs[r], counts[r]).VerifyPattern(byte(r)); err != nil {
					t.Errorf("slot %d: %v", r, err)
				}
			}
		}
		return nil
	})
}

func TestScatterv(t *testing.T) {
	runN(t, 3, func(c *Comm) error {
		counts := []int{8, 16, 24}
		displs := []int{0, 8, 24}
		send := buf.Alloc(48)
		if c.Rank() == 0 {
			for r := 0; r < 3; r++ {
				send.Slice(displs[r], counts[r]).FillPattern(byte(10 + r))
			}
		}
		recv := buf.Alloc(counts[c.Rank()])
		if err := c.Scatterv(send, counts, displs, recv, 0); err != nil {
			return err
		}
		return recv.VerifyPattern(byte(10 + c.Rank()))
	})
}

func TestGathervBadGeometry(t *testing.T) {
	runN(t, 2, func(c *Comm) error {
		if c.Rank() != 0 {
			// Non-roots just contribute; counts/displs are root-only.
			return c.Gatherv(buf.Alloc(8), buf.Block{}, nil, nil, 0)
		}
		// Root first tries a malformed geometry, then a correct call
		// that actually consumes the contribution.
		if err := c.Gatherv(buf.Alloc(8), buf.Alloc(16), []int{8}, []int{0}, 0); err == nil {
			t.Error("short counts accepted")
		}
		return c.Gatherv(buf.Alloc(8), buf.Alloc(16), []int{8, 8}, []int{0, 8}, 0)
	})
}
