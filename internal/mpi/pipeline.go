package mpi

import (
	"repro/internal/buf"
	"repro/internal/datatype"
)

// This file exposes the software-pipelined typed send — the
// "pipelined" scheme — and the chunk-streamed collective hop the
// pipelined collective schedules are built from.
//
// The paper's cost model (§2.3) shows the chunked derived-type send
// serialising pack and inject: the sender packs an internal chunk,
// transmits it, packs the next. The measured installations never
// overlap the two stages ("in practice we don't see this
// performance"), which is why SendType keeps the serial chunk loop —
// it reproduces their behaviour. SendpType is this runtime's own
// answer: the same rendezvous protocol, but the chunk loop runs on the
// chunk-slot pipeline (datatype.ChunkPipeline), a pack worker filling
// a bounded ring of pooled slots a configurable depth ahead of
// injection, so chunk k+1 packs while chunk k is on the wire. The
// span collapses from pack+wire to the two-stage pipeline bound
// (memsim.PipelinedChunkCost), and the ring — PipelineDepth slots of
// InternalChunk bytes from this rank's pool shard — is the path's
// entire allocation footprint.

// SendpType is the software-pipelined typed send: identical semantics
// to SendType, but past the eager limit the rendezvous chunk loop
// overlaps packing with injection through the slot ring. Eager-sized
// payloads, single-chunk payloads and cursor-fallback streams
// (SetChunkedCompiled(false)) take the ordinary serial typed path.
func (c *Comm) SendpType(b buf.Block, count int, ty *datatype.Type, dest, tag int) error {
	if err := c.checkP2P(dest, tag); err != nil {
		return err
	}
	if count < 0 {
		return errNegativeCount(count)
	}
	return c.sendTyped(b, count, ty, dest, tag, sendFlags{pipelined: true})
}

// SsendpType is SendpType under forced rendezvous: even eager-sized
// payloads take the handshake and the pipelined chunk loop.
func (c *Comm) SsendpType(b buf.Block, count int, ty *datatype.Type, dest, tag int) error {
	if err := c.checkP2P(dest, tag); err != nil {
		return err
	}
	if count < 0 {
		return errNegativeCount(count)
	}
	return c.sendTyped(b, count, ty, dest, tag, sendFlags{forceRdv: true, pipelined: true})
}

// IsendpType starts a non-blocking pipelined typed send with SendpType
// semantics; the envelope enters the fabric before the call returns,
// like every Isend variant.
func (c *Comm) IsendpType(b buf.Block, count int, ty *datatype.Type, dest, tag int) (*Request, error) {
	if err := c.checkP2P(dest, tag); err != nil {
		return nil, err
	}
	if count < 0 {
		return nil, errNegativeCount(count)
	}
	return c.startAsyncSend(func(cc *Comm, fl sendFlags) error {
		fl.pipelined = true
		return cc.sendTyped(b, count, ty, dest, tag, fl)
	})
}

// pipelineEnabled reports whether the pipelined chunk engine may run:
// both datatype gates are on (the cursor fallback disables the
// compiled kernels the slot ring is filled by).
func pipelineEnabled() bool {
	return datatype.ChunkedCompiled() && datatype.PipelinedChunks()
}

// Chunk-streamed collective hops. A pipelined collective schedule
// moves packed blocks between ranks in internal-chunk pieces on
// alternating reserved tags, so a piece's local work (the unpack of
// chunk k) overlaps the next piece's flight. The alternating tags keep
// at most one outstanding receive per (source, tag) pattern, which is
// what the fabric's wildcard matching guarantees order for.
const (
	collChunkTag0 = -3
	collChunkTag1 = -4
)

// chunkTag returns the reserved tag of chunk piece i.
func chunkTag(i int) int {
	if i%2 == 0 {
		return collChunkTag0
	}
	return collChunkTag1
}

// cisend starts an internal async contiguous send on tag.
func (c *Comm) cisend(b buf.Block, dest, tag int) (*Request, error) {
	return c.startAsyncSend(func(cc *Comm, fl sendFlags) error {
		return cc.sendContig(b, dest, tag, fl)
	})
}

// cirecv starts an internal async contiguous receive on tag.
func (c *Comm) cirecv(b buf.Block, src, tag int) *Request {
	return c.startAsyncRecv(func(cc *Comm) (Status, error) {
		return cc.recvContig(b, src, tag)
	})
}

// ringHop is one hop of a pipelined ring schedule: it streams the
// packed block out to dest in internal-chunk pieces while receiving
// the equally-chunked block in from src, calling unpack for each
// received piece. Receives for piece i+1 are posted (on the alternate
// tag) before piece i unpacks, and sends for piece i+1 are issued only
// after piece i's injection completes, so on every rank the unpack of
// chunk k overlaps the flight of chunk k+1 while the injections still
// serialise — the chunk pipeline stretched across the wire. out and in
// may be empty (zero-length) independently, for the edge hops of
// non-ring schedules.
func (c *Comm) ringHop(out buf.Block, dest int, in buf.Block, src int, unpack func(lo, hi int64) error) error {
	chunk := c.prof.InternalChunk()
	outN, inN := int64(out.Len()), int64(in.Len())
	piece := func(b buf.Block, i int64) buf.Block {
		lo := i * chunk
		hi := lo + chunk
		if n := int64(b.Len()); hi > n {
			hi = n
		}
		return b.Slice(int(lo), int(hi-lo))
	}
	outPieces, inPieces := c.prof.Chunks(outN), c.prof.Chunks(inN)

	var sendReq, recvReq *Request
	var sent, recvd int64
	if outPieces > 0 {
		var err error
		if sendReq, err = c.cisend(piece(out, 0), dest, chunkTag(0)); err != nil {
			return legWrap(dest, "pipeline-ring-send", err)
		}
	}
	if inPieces > 0 {
		recvReq = c.cirecv(piece(in, 0), src, chunkTag(0))
	}
	for sent < outPieces || recvd < inPieces {
		if recvd < inPieces {
			// Complete piece recvd, post piece recvd+1 on the alternate
			// tag, then unpack — the next piece flies while we scatter.
			if _, err := recvReq.Wait(); err != nil {
				return legWrap(src, "pipeline-ring-recv", err)
			}
			if recvd+1 < inPieces {
				recvReq = c.cirecv(piece(in, recvd+1), src, chunkTag(int(recvd+1)))
			}
			lo := recvd * chunk
			hi := lo + int64(piece(in, recvd).Len())
			if err := unpack(lo, hi); err != nil {
				return err
			}
			datatype.RecordPipelinedChunk(hi - lo)
			recvd++
		}
		if sent < outPieces {
			// Injections serialise: piece sent+1 leaves only after piece
			// sent completed, so the wire term sums exactly as the
			// serial send would.
			if _, err := sendReq.Wait(); err != nil {
				return legWrap(dest, "pipeline-ring-send", err)
			}
			sent++
			if sent < outPieces {
				var err error
				if sendReq, err = c.cisend(piece(out, sent), dest, chunkTag(int(sent))); err != nil {
					return legWrap(dest, "pipeline-ring-send", err)
				}
			}
		}
	}
	return nil
}
