package mpi

import (
	"errors"
	"testing"

	"repro/internal/buf"
	"repro/internal/datatype"
)

func TestTypedTruncationOnContigRecv(t *testing.T) {
	run2(t, func(c *Comm) error {
		ty := mustVec(t, 64, 1, 2) // 512-byte payload
		if c.Rank() == 0 {
			src := buf.Alloc(int(ty.Extent()))
			return c.SendType(src, 1, ty, 1, 0)
		}
		_, err := c.Recv(buf.Alloc(256), 0, 0)
		if !errors.Is(err, ErrTruncate) {
			t.Errorf("err = %v, want ErrTruncate", err)
		}
		return nil
	})
}

func TestTypedTruncationOnTypedRecv(t *testing.T) {
	run2(t, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(buf.Alloc(512), 1, 0)
		}
		ty := mustVec(t, 32, 1, 2) // only 256 bytes of room
		dst := buf.Alloc(int(ty.Extent()))
		_, err := c.RecvType(dst, 1, ty, 0, 0)
		if !errors.Is(err, ErrTruncate) {
			t.Errorf("err = %v, want ErrTruncate", err)
		}
		return nil
	})
}

func TestTypedSendUncommittedFails(t *testing.T) {
	run2(t, func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		ty, err := datatype.Vector(4, 1, 2, datatype.Float64)
		if err != nil {
			return err
		}
		// No Commit.
		err = c.SendType(buf.Alloc(64), 1, ty, 1, 0)
		if !errors.Is(err, datatype.ErrNotCommitted) {
			t.Errorf("err = %v, want ErrNotCommitted", err)
		}
		return nil
	})
}

func TestTypedSendBufferTooSmall(t *testing.T) {
	run2(t, func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		ty := mustVec(t, 64, 1, 2)
		err := c.SendType(buf.Alloc(8), 1, ty, 1, 0)
		if !errors.Is(err, datatype.ErrBounds) {
			t.Errorf("err = %v, want ErrBounds", err)
		}
		return nil
	})
}

func TestVirtualTypedRendezvous(t *testing.T) {
	run2(t, func(c *Comm) error {
		// 64 MB typed payload, never materialised, over rendezvous
		// with the full chunk loop.
		count := 8 << 20
		ty := mustVec(t, count, 1, 2)
		if c.Rank() == 0 {
			src := buf.Virtual(int(ty.Extent()))
			if err := c.SendType(src, 1, ty, 1, 0); err != nil {
				return err
			}
			if got := c.Counters().RendezvousSends; got != 1 {
				t.Errorf("expected a rendezvous send, counters = %+v", c.Counters())
			}
			return nil
		}
		st, err := c.Recv(buf.Virtual(count*8), 0, 0)
		if err != nil {
			return err
		}
		if st.Count != int64(count*8) {
			t.Errorf("count = %d", st.Count)
		}
		return nil
	})
}

func TestTypedCountRepetition(t *testing.T) {
	// Send 3 instances of a small vector type; instance i lands at
	// i*extent.
	run2(t, func(c *Comm) error {
		ty := mustVec(t, 4, 1, 2) // 32 B payload, 56 B extent
		const count = 3
		need := int(int64(count-1)*ty.Extent()) + int(ty.TrueExtent())
		if c.Rank() == 0 {
			src := buf.Alloc(need)
			src.FillPattern(7)
			return c.SendType(src, count, ty, 1, 0)
		}
		dst := buf.Alloc(int(ty.Size()) * count)
		if _, err := c.Recv(dst, 0, 0); err != nil {
			return err
		}
		src := buf.Alloc(need)
		src.FillPattern(7)
		want := buf.Alloc(int(ty.Size()) * count)
		if _, err := ty.Pack(src, count, want); err != nil {
			return err
		}
		if !buf.Equal(dst, want) {
			t.Error("multi-count typed payload differs")
		}
		return nil
	})
}

func TestCollectivesOnSplitComm(t *testing.T) {
	runN(t, 6, func(c *Comm) error {
		// Two groups of 3; each does its own Bcast and Allgather with
		// the same tags concurrently.
		grp, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		b := buf.Alloc(64)
		if grp.Rank() == 0 {
			b.FillPattern(byte(40 + c.Rank()%2))
		}
		if err := grp.Bcast(b, 0); err != nil {
			return err
		}
		if err := b.VerifyPattern(byte(40 + c.Rank()%2)); err != nil {
			t.Errorf("group %d rank %d: %v", c.Rank()%2, grp.Rank(), err)
		}
		send := buf.Alloc(8)
		send.FillPattern(byte(grp.Rank()))
		recv := buf.Alloc(8 * grp.Size())
		if err := grp.Allgather(send, recv); err != nil {
			return err
		}
		for r := 0; r < grp.Size(); r++ {
			if err := recv.Slice(r*8, 8).VerifyPattern(byte(r)); err != nil {
				t.Errorf("allgather slot %d: %v", r, err)
			}
		}
		grp.Barrier()
		return nil
	})
}

func TestSsendTypeRendezvous(t *testing.T) {
	run2(t, func(c *Comm) error {
		ty := mustVec(t, 8, 1, 2) // tiny, would be eager normally
		if c.Rank() == 0 {
			src := buf.Alloc(int(ty.Extent()))
			if err := c.SsendType(src, 1, ty, 1, 0); err != nil {
				return err
			}
			if got := c.Counters().RendezvousSends; got != 1 {
				t.Errorf("SsendType not rendezvous: %+v", c.Counters())
			}
			return nil
		}
		_, err := c.Recv(buf.Alloc(int(ty.Size())), 0, 0)
		return err
	})
}

func TestChargeAdvancesClock(t *testing.T) {
	run2(t, func(c *Comm) error {
		before := c.Wtime()
		c.Charge(1e-3)
		if got := c.Wtime() - before; got < 0.99e-3 || got > 1.01e-3 {
			t.Errorf("Charge(1ms) advanced %g", got)
		}
		return nil
	})
}

func TestNegativeCountRejected(t *testing.T) {
	run2(t, func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		ty := mustVec(t, 4, 1, 2)
		if err := c.SendType(buf.Alloc(64), -1, ty, 1, 0); !errors.Is(err, ErrCount) {
			t.Errorf("SendType count err = %v", err)
		}
		if _, err := c.RecvType(buf.Alloc(64), -1, ty, 1, 0); !errors.Is(err, ErrCount) {
			t.Errorf("RecvType count err = %v", err)
		}
		return nil
	})
}

func TestEagerTypedSendUsesOneChunk(t *testing.T) {
	run2(t, func(c *Comm) error {
		ty := mustVec(t, 16, 1, 2) // 128 B, far under the limit
		if c.Rank() == 0 {
			src := buf.Alloc(int(ty.Extent()))
			if err := c.SendType(src, 1, ty, 1, 0); err != nil {
				return err
			}
			if got := c.Counters().EagerSends; got != 1 {
				t.Errorf("small typed send not eager: %+v", c.Counters())
			}
			return nil
		}
		_, err := c.Recv(buf.Alloc(int(ty.Size())), 0, 0)
		return err
	})
}
