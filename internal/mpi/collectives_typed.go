package mpi

import (
	"fmt"
	"sync"

	"repro/internal/buf"
	"repro/internal/datatype"
	"repro/internal/vclock"
)

// This file implements the typed collective engine: every collective
// is expressed over datatype layouts, and the classic byte-buffer
// collectives in collectives.go are thin wrappers viewing their blocks
// through a datatype.Contiguous layout. The engine's legs are the
// typed point-to-point paths — past the eager limit a remote leg rides
// the fused sendv rendezvous, so a gather or alltoall scatters
// straight between rank layouts with zero staging — and the root's own
// contribution is a single datatype.FusedCopy instead of a loopback
// send. Dense layouts (the wrappers, contiguous slots) take the raw
// contiguous protocol paths, byte- and cost-identical to the classic
// collectives.
//
// Algorithm selection keys off the per-leg payload size and the
// installation's memory hierarchy (perfmodel.CollectiveTreeLimit):
// small fan-in/fan-out collectives run a binomial tree of packed slots
// (latency-bound legs, ⌈log₂ p⌉ rounds), large ones the linear fan
// whose legs each cross the memory system exactly once. Broadcast
// relays the same layout unchanged, so it always uses the tree.

// contigTypes caches committed Contiguous(n, Byte) types for the
// byte-buffer collective wrappers, keyed by length: collectives are
// called with a handful of recurring sizes, so steady state is a
// read-locked map hit returning the cached plan. The cache is bounded
// like the per-type plan cache — past the bound, types are still
// built, just not retained, so a pathological size sweep cannot leak
// memory.
var contigTypes struct {
	mu     sync.RWMutex
	bySize map[int]*datatype.Type
}

// maxContigTypes bounds the wrapper-type cache.
const maxContigTypes = 256

// contigByteType returns a committed n-byte contiguous type.
func contigByteType(n int) (*datatype.Type, error) {
	contigTypes.mu.RLock()
	ty := contigTypes.bySize[n]
	contigTypes.mu.RUnlock()
	if ty != nil {
		return ty, nil
	}
	ty, err := datatype.Contiguous(n, datatype.Byte)
	if err != nil {
		return nil, err
	}
	if err := ty.Commit(); err != nil {
		return nil, err
	}
	contigTypes.mu.Lock()
	if q, ok := contigTypes.bySize[n]; ok {
		ty = q // lost a benign build race; settle on one identity
	} else if len(contigTypes.bySize) < maxContigTypes {
		if contigTypes.bySize == nil {
			contigTypes.bySize = make(map[int]*datatype.Type, 8)
		}
		contigTypes.bySize[n] = ty
	}
	contigTypes.mu.Unlock()
	return ty, nil
}

// contigView returns the (count, type) layout view of a dense n-byte
// block — the datatype.Contiguous layout the classic collectives ride
// the typed engine through.
func contigView(n int) (int, *datatype.Type, error) {
	if n == 0 {
		return 0, datatype.Byte, nil
	}
	ty, err := contigByteType(n)
	return 1, ty, err
}

// typedSpan returns one past the last byte offset count instances of
// ty touch in a buffer (0 for empty messages).
func typedSpan(ty *datatype.Type, count int) int64 {
	if count <= 0 || ty.Size() == 0 {
		return 0
	}
	return int64(count-1)*ty.Extent() + ty.TrueLB() + ty.TrueExtent()
}

// collSlotView returns the sub-block of b at byte offset off that a
// (count × ty) collective leg reads or writes, validating capacity.
// what names the collective for the error text.
func collSlotView(b buf.Block, off int64, count int, ty *datatype.Type, what string) (buf.Block, error) {
	need := typedSpan(ty, count)
	if off < 0 || off+need > int64(b.Len()) {
		return buf.Block{}, fmt.Errorf("%w: %s needs %d bytes at offset %d, buffer has %d",
			ErrTruncate, what, need, off, b.Len())
	}
	return b.Slice(int(off), b.Len()-int(off)), nil
}

// collSlotOff returns the byte offset of rank-slot r: instance
// r*count, MPI's slot rule for equal-count collectives.
func collSlotOff(r, count int, ty *datatype.Type) int64 {
	return int64(r) * int64(count) * ty.Extent()
}

// contigWindow returns the dense window of a (count × ty) leg when the
// whole message is a single run, so dense legs ride the raw contiguous
// protocol paths.
func contigWindow(view buf.Block, count int, ty *datatype.Type) (buf.Block, bool) {
	plan, err := ty.CompilePlan(count)
	if err != nil {
		return buf.Block{}, false
	}
	off, ok := plan.ContigWindow()
	if !ok {
		return buf.Block{}, false
	}
	return view.Slice(int(off), int(plan.Bytes())), true
}

// collSend transmits one collective leg to dest over the collective
// tag: dense windows ride the contiguous protocol, typed layouts the
// fused sendv rendezvous (which itself falls back to the staged typed
// path at eager sizes, exactly like SendvType). leg names the leg's
// topology role for fault attribution (CollectiveError.Leg).
func (c *Comm) collSend(view buf.Block, count int, ty *datatype.Type, dest int, leg string) error {
	if w, ok := contigWindow(view, count, ty); ok {
		return legWrap(dest, leg, c.sendContig(w, dest, collTag, sendFlags{}))
	}
	return legWrap(dest, leg, c.sendTypedFused(view, count, ty, dest, collTag, sendFlags{}))
}

// collRecv receives one collective leg from src.
func (c *Comm) collRecv(view buf.Block, count int, ty *datatype.Type, src int, leg string) error {
	if w, ok := contigWindow(view, count, ty); ok {
		_, err := c.recvContig(w, src, collTag)
		return legWrap(src, leg, err)
	}
	_, err := c.recvTyped(view, count, ty, src, collTag)
	return legWrap(src, leg, err)
}

// collIsend starts a collective leg send whose completion the caller
// folds in after its paired receive (ring and pairwise exchange
// steps). The leg attribution travels inside the async closure, so it
// surfaces at Wait.
func (c *Comm) collIsend(view buf.Block, count int, ty *datatype.Type, dest int, leg string) (*Request, error) {
	if w, ok := contigWindow(view, count, ty); ok {
		return c.startAsyncSend(func(cc *Comm, fl sendFlags) error {
			return legWrap(dest, leg, cc.sendContig(w, dest, collTag, fl))
		})
	}
	return c.startAsyncSend(func(cc *Comm, fl sendFlags) error {
		return legWrap(dest, leg, cc.sendTypedFused(view, count, ty, dest, collTag, fl))
	})
}

// typedSelfCopy is the root's own leg of a typed collective: a single
// fused pass straight from the send layout into the receive layout —
// no loopback send, no staging allocation. Destinations whose repeated
// instances interleave (not FusedDstSafe) and aliased buffers fall
// back to a pooled staged copy with the sequential-unpack semantics
// those cases require.
func (c *Comm) typedSelfCopy(sb buf.Block, scount int, sty *datatype.Type, db buf.Block, dcount int, dty *datatype.Type) error {
	sp, err := sty.CompilePlan(scount)
	if err != nil {
		return err
	}
	dp, err := dty.CompilePlan(dcount)
	if err != nil {
		return err
	}
	if err := sp.Validate(sb); err != nil {
		return err
	}
	if err := dp.Validate(db); err != nil {
		return err
	}
	n := minInt64(sp.Bytes(), dp.Bytes())
	if n == 0 {
		return nil
	}
	sst, dst := sty.Stats(scount), dty.Stats(dcount)
	if dp.FusedDstSafe() && !buf.Overlaps(sb, db) {
		var cost float64
		if w := datatype.ParallelWorkersFor(n); w > 1 {
			cost = c.cache.ParallelFusedCopyCost(sb.Region(), db.Region(), sst, dst, w)
		} else {
			cost = c.cache.FusedCopyCost(sb.Region(), db.Region(), sst, dst)
		}
		c.clock.Advance(vclock.FromSeconds(cost))
		_, err := datatype.FusedCopy(sp, dp, sb, db)
		return err
	}
	staging := c.transitAlloc(sb, n)
	defer buf.PutPooled(staging)
	cost := c.cache.CompiledGatherCost(sb.Region(), staging.Region(), sst) +
		c.cache.CompiledScatterCost(staging.Region(), db.Region(), dst)
	c.clock.Advance(vclock.FromSeconds(cost))
	if err := sp.PackRange(sb, staging, 0, n); err != nil {
		return err
	}
	if err := dp.UnpackRange(staging, db, 0, n); err != nil {
		return err
	}
	datatype.RecordStagedTransfer(n)
	return nil
}

// BcastType broadcasts count instances of a derived datatype from
// root's buffer into every rank's layout, like MPI_Bcast with a
// non-contiguous type. Small messages relay the same layout over a
// binomial tree — past the eager limit each hop is a fused sendv leg
// that scatters straight into the receiver's layout with zero staging.
// Non-contiguous messages past the installation's CollectiveTreeLimit
// switch to the pipelined scatter+allgather schedule (bcastPipelined):
// the packed stream scatters as per-rank segments and a chunk-streamed
// ring circulates them, so each payload byte crosses a relay's memory
// twice instead of ⌈log₂ p⌉ whole-message passes, with every piece's
// unpack overlapped against the next piece's flight.
func (c *Comm) BcastType(b buf.Block, count int, ty *datatype.Type, root int) error {
	return c.collErr("BcastType", c.bcastType(b, count, ty, root))
}

func (c *Comm) bcastType(b buf.Block, count int, ty *datatype.Type, root int) error {
	if err := c.checkRank(root); err != nil {
		return err
	}
	if count < 0 {
		return errNegativeCount(count)
	}
	plan, err := ty.CompilePlan(count)
	if err != nil {
		return err
	}
	if err := plan.Validate(b); err != nil {
		return err
	}
	if c.size == 1 {
		return nil
	}
	if g := c.twoLevel(); g != nil {
		return c.bcastTwoLevel(b, count, ty, root, g)
	}
	if n := plan.Bytes(); c.size > 2 && n > c.prof.CollectiveTreeLimit() && pipelineEnabled() {
		// Dense layouts keep the tree of raw contiguous hops; the
		// scatter+allgather win is the relay's pack passes, which a
		// dense relay does not pay.
		if _, dense := plan.ContigWindow(); !dense {
			return c.bcastPipelined(b, count, ty, root, plan)
		}
	}
	rel := (c.rank - root + c.size) % c.size
	abs := func(r int) int { return (r + root) % c.size }
	mask := 1
	for mask < c.size {
		if rel&mask != 0 {
			if err := c.collRecv(b, count, ty, abs(rel-mask), "tree-parent"); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel&mask == 0 && rel+mask < c.size {
			if err := c.collSend(b, count, ty, abs(rel+mask), "tree-child"); err != nil {
				return err
			}
		}
		mask >>= 1
	}
	return nil
}

// GatherType concentrates typed contributions at the root in rank
// order, like MPI_Gather with derived datatypes: each rank sends
// sendCount instances of sendTy; the root receives rank r's
// contribution as recvCount instances of recvTy at byte offset
// r*recvCount*recvTy.Extent() of recv. recv, recvCount and recvTy are
// consulted only at the root. Remote legs past the eager limit ride
// the fused rendezvous straight into the root's slot layouts; the
// root's own contribution is a single fused copy. Legs at or under the
// installation's CollectiveTreeLimit fan in over a binomial tree of
// packed slots instead (the classic latency-bound switch); tree mode
// assumes every rank contributes the same type signature, like MPI.
func (c *Comm) GatherType(send buf.Block, sendCount int, sendTy *datatype.Type, recv buf.Block, recvCount int, recvTy *datatype.Type, root int) error {
	return c.collErr("GatherType", c.gatherType(send, sendCount, sendTy, recv, recvCount, recvTy, root))
}

func (c *Comm) gatherType(send buf.Block, sendCount int, sendTy *datatype.Type, recv buf.Block, recvCount int, recvTy *datatype.Type, root int) error {
	if err := c.checkRank(root); err != nil {
		return err
	}
	if sendCount < 0 {
		return errNegativeCount(sendCount)
	}
	sp, err := sendTy.CompilePlan(sendCount)
	if err != nil {
		return err
	}
	if err := sp.Validate(send); err != nil {
		return err
	}
	n := sp.Bytes()
	if c.rank == root {
		if recvCount < 0 {
			return errNegativeCount(recvCount)
		}
		rp, err := recvTy.CompilePlan(recvCount)
		if err != nil {
			return err
		}
		if rp.Bytes() != n {
			return fmt.Errorf("%w: gather slot holds %d bytes, contribution is %d", ErrTruncate, rp.Bytes(), n)
		}
		// Validate every slot before the first leg moves, so a short
		// receive buffer fails locally instead of mid-protocol.
		for r := 0; r < c.size; r++ {
			if _, err := collSlotView(recv, collSlotOff(r, recvCount, recvTy), recvCount, recvTy, "gather"); err != nil {
				return err
			}
		}
	}
	if c.size == 1 {
		view, err := collSlotView(recv, 0, recvCount, recvTy, "gather")
		if err != nil {
			return err
		}
		return c.typedSelfCopy(send, sendCount, sendTy, view, recvCount, recvTy)
	}
	if c.prof.UseCollectiveTree(c.size, n) {
		return c.gatherTree(send, sendCount, sendTy, recv, recvCount, recvTy, root, n)
	}
	if c.rank != root {
		return c.collSend(send, sendCount, sendTy, root, "fan-in")
	}
	for r := 0; r < c.size; r++ {
		view, err := collSlotView(recv, collSlotOff(r, recvCount, recvTy), recvCount, recvTy, "gather")
		if err != nil {
			return err
		}
		if r == root {
			if err := c.typedSelfCopy(send, sendCount, sendTy, view, recvCount, recvTy); err != nil {
				return err
			}
			continue
		}
		if err := c.collRecv(view, recvCount, recvTy, r, "fan-in"); err != nil {
			return err
		}
	}
	return nil
}

// subtreeSpan returns how many rank slots the binomial subtree rooted
// at relative rank rel holds in a size-rank fan (itself plus every
// subtree it absorbs).
func subtreeSpan(rel, size int) int {
	span := 1
	for mask := 1; mask < size && rel&mask == 0; mask <<= 1 {
		if child := rel + mask; child < size {
			cs := mask
			if r := size - child; r < cs {
				cs = r
			}
			span += cs
		}
	}
	return span
}

// gatherTree is the binomial fan-in for small typed gathers: every
// rank packs its contribution once (compiled), subtree blocks combine
// in ⌈log₂ p⌉ rounds of contiguous sends, and the root unpacks each
// remote slot into its receive layout. The root's own contribution
// still goes straight into the receive layout as a fused copy and
// never touches the packed scratch.
func (c *Comm) gatherTree(send buf.Block, sendCount int, sendTy *datatype.Type, recv buf.Block, recvCount int, recvTy *datatype.Type, root int, n int64) error {
	rel := (c.rank - root + c.size) % c.size
	abs := func(r int) int { return (r + root) % c.size }
	span := subtreeSpan(rel, c.size)
	scratch := c.transitAlloc(send, int64(span)*n)
	defer buf.PutPooled(scratch)
	sp, err := sendTy.CompilePlan(sendCount)
	if err != nil {
		return err
	}
	if rel != 0 {
		// Pack my own contribution into slot 0 of the scratch.
		st := sendTy.Stats(sendCount)
		c.clock.Advance(vclock.FromSeconds(c.cache.CompiledGatherCost(send.Region(), scratch.Region(), st)))
		if err := sp.PackRange(send, scratch.Slice(0, int(n)), 0, n); err != nil {
			return err
		}
	}
	for mask := 1; mask < c.size; mask <<= 1 {
		if rel&mask != 0 {
			// Forward my subtree block to the parent and stop.
			return c.csend(scratch.Slice(0, int(int64(span)*n)), abs(rel-mask))
		}
		child := rel + mask
		if child >= c.size {
			continue
		}
		childSpan := subtreeSpan(child, c.size)
		dst := scratch.Slice(int(int64(mask)*n), int(int64(childSpan)*n))
		if err := c.crecv(dst, abs(child)); err != nil {
			return err
		}
	}
	// Root: unpack every remote slot, fuse its own.
	rp, err := recvTy.CompilePlan(recvCount)
	if err != nil {
		return err
	}
	rst := recvTy.Stats(recvCount)
	for q := 1; q < c.size; q++ {
		view, err := collSlotView(recv, collSlotOff(abs(q), recvCount, recvTy), recvCount, recvTy, "gather")
		if err != nil {
			return err
		}
		c.clock.Advance(vclock.FromSeconds(c.cache.CompiledScatterCost(scratch.Region(), recv.Region(), rst)))
		if err := rp.UnpackRange(scratch.Slice(int(int64(q)*n), int(n)), view, 0, n); err != nil {
			return err
		}
		datatype.RecordStagedTransfer(n)
	}
	view, err := collSlotView(recv, collSlotOff(root, recvCount, recvTy), recvCount, recvTy, "gather")
	if err != nil {
		return err
	}
	return c.typedSelfCopy(send, sendCount, sendTy, view, recvCount, recvTy)
}

// GathervType is GatherType with per-rank receive counts and slot
// displacements, like MPI_Gatherv: the root receives rank r's
// contribution as recvCounts[r] instances of recvTy at displacement
// displs[r], measured in units of recvTy's extent. It always runs the
// linear fan (slots are irregular, so the packed-tree arithmetic does
// not apply); remote legs and the root self-leg behave exactly as in
// GatherType.
func (c *Comm) GathervType(send buf.Block, sendCount int, sendTy *datatype.Type, recv buf.Block, recvCounts, displs []int, recvTy *datatype.Type, root int) error {
	return c.collErr("GathervType", c.gathervType(send, sendCount, sendTy, recv, recvCounts, displs, recvTy, root))
}

func (c *Comm) gathervType(send buf.Block, sendCount int, sendTy *datatype.Type, recv buf.Block, recvCounts, displs []int, recvTy *datatype.Type, root int) error {
	if err := c.checkRank(root); err != nil {
		return err
	}
	if sendCount < 0 {
		return errNegativeCount(sendCount)
	}
	sp, err := sendTy.CompilePlan(sendCount)
	if err != nil {
		return err
	}
	if err := sp.Validate(send); err != nil {
		return err
	}
	if c.rank != root {
		return c.collSend(send, sendCount, sendTy, root, "fan-in")
	}
	if len(recvCounts) != c.size || len(displs) != c.size {
		return fmt.Errorf("%w: gatherv needs %d counts and displacements, have %d/%d",
			ErrCount, c.size, len(recvCounts), len(displs))
	}
	slot := func(r int) (buf.Block, error) {
		if recvCounts[r] < 0 {
			return buf.Block{}, errNegativeCount(recvCounts[r])
		}
		return collSlotView(recv, int64(displs[r])*recvTy.Extent(), recvCounts[r], recvTy, "gatherv")
	}
	for r := 0; r < c.size; r++ {
		if _, err := slot(r); err != nil {
			return err
		}
	}
	if cnt := recvCounts[root]; recvTy.PackSize(cnt) != sp.Bytes() {
		return fmt.Errorf("%w: gatherv root slot holds %d bytes, contribution is %d",
			ErrTruncate, recvTy.PackSize(cnt), sp.Bytes())
	}
	for r := 0; r < c.size; r++ {
		view, _ := slot(r)
		if r == root {
			if err := c.typedSelfCopy(send, sendCount, sendTy, view, recvCounts[r], recvTy); err != nil {
				return err
			}
			continue
		}
		if err := c.collRecv(view, recvCounts[r], recvTy, r, "fan-in"); err != nil {
			return err
		}
	}
	return nil
}

// ScatterType distributes typed slots of the root's buffer, like
// MPI_Scatter with derived datatypes: the root sends sendCount
// instances of sendTy from byte offset r*sendCount*sendTy.Extent() to
// rank r, which receives them as recvCount instances of recvTy. send,
// sendCount and sendTy are consulted only at the root. Algorithm
// selection mirrors GatherType: small legs fan out over a binomial
// tree of packed slots, large legs run the linear fan of fused sends.
func (c *Comm) ScatterType(send buf.Block, sendCount int, sendTy *datatype.Type, recv buf.Block, recvCount int, recvTy *datatype.Type, root int) error {
	return c.collErr("ScatterType", c.scatterType(send, sendCount, sendTy, recv, recvCount, recvTy, root))
}

func (c *Comm) scatterType(send buf.Block, sendCount int, sendTy *datatype.Type, recv buf.Block, recvCount int, recvTy *datatype.Type, root int) error {
	if err := c.checkRank(root); err != nil {
		return err
	}
	if recvCount < 0 {
		return errNegativeCount(recvCount)
	}
	rp, err := recvTy.CompilePlan(recvCount)
	if err != nil {
		return err
	}
	if err := rp.Validate(recv); err != nil {
		return err
	}
	n := rp.Bytes()
	if c.rank == root {
		if sendCount < 0 {
			return errNegativeCount(sendCount)
		}
		sp, err := sendTy.CompilePlan(sendCount)
		if err != nil {
			return err
		}
		if sp.Bytes() != n {
			return fmt.Errorf("%w: scatter slot holds %d bytes, receive expects %d", ErrTruncate, sp.Bytes(), n)
		}
		for r := 0; r < c.size; r++ {
			if _, err := collSlotView(send, collSlotOff(r, sendCount, sendTy), sendCount, sendTy, "scatter"); err != nil {
				return err
			}
		}
	}
	if c.size == 1 {
		view, err := collSlotView(send, 0, sendCount, sendTy, "scatter")
		if err != nil {
			return err
		}
		return c.typedSelfCopy(view, sendCount, sendTy, recv, recvCount, recvTy)
	}
	if c.prof.UseCollectiveTree(c.size, n) {
		return c.scatterTree(send, sendCount, sendTy, recv, recvCount, recvTy, root, n)
	}
	if c.rank != root {
		return c.collRecv(recv, recvCount, recvTy, root, "fan-out")
	}
	for r := 0; r < c.size; r++ {
		view, err := collSlotView(send, collSlotOff(r, sendCount, sendTy), sendCount, sendTy, "scatter")
		if err != nil {
			return err
		}
		if r == root {
			if err := c.typedSelfCopy(view, sendCount, sendTy, recv, recvCount, recvTy); err != nil {
				return err
			}
			continue
		}
		if err := c.collSend(view, sendCount, sendTy, r, "fan-out"); err != nil {
			return err
		}
	}
	return nil
}

// scatterTree is the binomial fan-out for small typed scatters: the
// root packs every remote slot once (compiled), subtree blocks travel
// down in ⌈log₂ p⌉ rounds of contiguous sends, and each rank unpacks
// its own slot into its receive layout. The root's own slot goes
// straight into its receive layout as a fused copy.
func (c *Comm) scatterTree(send buf.Block, sendCount int, sendTy *datatype.Type, recv buf.Block, recvCount int, recvTy *datatype.Type, root int, n int64) error {
	rel := (c.rank - root + c.size) % c.size
	abs := func(r int) int { return (r + root) % c.size }
	span := subtreeSpan(rel, c.size)
	var scratch buf.Block
	if rel == 0 {
		scratch = c.transitAlloc(send, int64(span)*n)
		defer buf.PutPooled(scratch)
		sp, err := sendTy.CompilePlan(sendCount)
		if err != nil {
			return err
		}
		sst := sendTy.Stats(sendCount)
		for q := 1; q < c.size; q++ {
			view, err := collSlotView(send, collSlotOff(abs(q), sendCount, sendTy), sendCount, sendTy, "scatter")
			if err != nil {
				return err
			}
			c.clock.Advance(vclock.FromSeconds(c.cache.CompiledGatherCost(send.Region(), scratch.Region(), sst)))
			if err := sp.PackRange(view, scratch.Slice(int(int64(q)*n), int(n)), 0, n); err != nil {
				return err
			}
		}
	} else {
		scratch = c.transitAlloc(recv, int64(span)*n)
		defer buf.PutPooled(scratch)
		parent := rel &^ (rel & -rel) // clear the lowest set bit
		if err := c.crecv(scratch.Slice(0, int(int64(span)*n)), abs(parent)); err != nil {
			return err
		}
	}
	// Forward sub-blocks to my children, largest subtree first, before
	// the local leg so downstream ranks are not stalled behind it.
	stride := 1
	for stride < span {
		stride <<= 1
	}
	for mask := stride >> 1; mask >= 1; mask >>= 1 {
		child := rel + mask
		if child >= c.size || mask >= span {
			continue
		}
		childSpan := subtreeSpan(child, c.size)
		block := scratch.Slice(int(int64(mask)*n), int(int64(childSpan)*n))
		if err := c.csend(block, abs(child)); err != nil {
			return err
		}
	}
	if rel == 0 {
		// The root's own slot goes straight into its receive layout as
		// a fused copy, off every other rank's critical path.
		view, err := collSlotView(send, collSlotOff(root, sendCount, sendTy), sendCount, sendTy, "scatter")
		if err != nil {
			return err
		}
		return c.typedSelfCopy(view, sendCount, sendTy, recv, recvCount, recvTy)
	}
	rp, err := recvTy.CompilePlan(recvCount)
	if err != nil {
		return err
	}
	rst := recvTy.Stats(recvCount)
	c.clock.Advance(vclock.FromSeconds(c.cache.CompiledScatterCost(scratch.Region(), recv.Region(), rst)))
	if err := rp.UnpackRange(scratch.Slice(0, int(n)), recv, 0, n); err != nil {
		return err
	}
	datatype.RecordStagedTransfer(n)
	return nil
}

// ScattervType is ScatterType with per-rank send counts and slot
// displacements at the root, like MPI_Scatterv: rank r receives
// sendCounts[r] instances of sendTy taken from displacement displs[r],
// measured in units of sendTy's extent. Linear fan only, like
// GathervType.
func (c *Comm) ScattervType(send buf.Block, sendCounts, displs []int, sendTy *datatype.Type, recv buf.Block, recvCount int, recvTy *datatype.Type, root int) error {
	return c.collErr("ScattervType", c.scattervType(send, sendCounts, displs, sendTy, recv, recvCount, recvTy, root))
}

func (c *Comm) scattervType(send buf.Block, sendCounts, displs []int, sendTy *datatype.Type, recv buf.Block, recvCount int, recvTy *datatype.Type, root int) error {
	if err := c.checkRank(root); err != nil {
		return err
	}
	if recvCount < 0 {
		return errNegativeCount(recvCount)
	}
	rp, err := recvTy.CompilePlan(recvCount)
	if err != nil {
		return err
	}
	if err := rp.Validate(recv); err != nil {
		return err
	}
	if c.rank != root {
		return c.collRecv(recv, recvCount, recvTy, root, "fan-out")
	}
	if len(sendCounts) != c.size || len(displs) != c.size {
		return fmt.Errorf("%w: scatterv needs %d counts and displacements, have %d/%d",
			ErrCount, c.size, len(sendCounts), len(displs))
	}
	slot := func(r int) (buf.Block, error) {
		if sendCounts[r] < 0 {
			return buf.Block{}, errNegativeCount(sendCounts[r])
		}
		return collSlotView(send, int64(displs[r])*sendTy.Extent(), sendCounts[r], sendTy, "scatterv")
	}
	for r := 0; r < c.size; r++ {
		if _, err := slot(r); err != nil {
			return err
		}
	}
	if cnt := sendCounts[root]; sendTy.PackSize(cnt) != rp.Bytes() {
		return fmt.Errorf("%w: scatterv root slot holds %d bytes, receive expects %d",
			ErrTruncate, sendTy.PackSize(cnt), rp.Bytes())
	}
	for r := 0; r < c.size; r++ {
		view, _ := slot(r)
		if r == root {
			if err := c.typedSelfCopy(view, sendCounts[r], sendTy, recv, recvCount, recvTy); err != nil {
				return err
			}
			continue
		}
		if err := c.collSend(view, sendCounts[r], sendTy, r, "fan-out"); err != nil {
			return err
		}
	}
	return nil
}

// AllgatherType concentrates every rank's typed contribution at every
// rank using the ring algorithm, like MPI_Allgather with derived
// datatypes: rank r's contribution lands as recvCount instances of
// recvTy at byte offset r*recvCount*recvTy.Extent() of every recv
// buffer. Each rank first fuses its own contribution into its own slot
// (no loopback send), then the ring forwards slots between identical
// receive layouts — past the eager limit every hop is a fused sendv
// leg with zero staging.
func (c *Comm) AllgatherType(send buf.Block, sendCount int, sendTy *datatype.Type, recv buf.Block, recvCount int, recvTy *datatype.Type) error {
	return c.collErr("AllgatherType", c.allgatherType(send, sendCount, sendTy, recv, recvCount, recvTy))
}

func (c *Comm) allgatherType(send buf.Block, sendCount int, sendTy *datatype.Type, recv buf.Block, recvCount int, recvTy *datatype.Type) error {
	if sendCount < 0 {
		return errNegativeCount(sendCount)
	}
	if recvCount < 0 {
		return errNegativeCount(recvCount)
	}
	sp, err := sendTy.CompilePlan(sendCount)
	if err != nil {
		return err
	}
	if err := sp.Validate(send); err != nil {
		return err
	}
	rp, err := recvTy.CompilePlan(recvCount)
	if err != nil {
		return err
	}
	if rp.Bytes() != sp.Bytes() {
		return fmt.Errorf("%w: allgather slot holds %d bytes, contribution is %d", ErrTruncate, rp.Bytes(), sp.Bytes())
	}
	slot := func(r int) (buf.Block, error) {
		return collSlotView(recv, collSlotOff(r, recvCount, recvTy), recvCount, recvTy, "allgather")
	}
	for r := 0; r < c.size; r++ {
		if _, err := slot(r); err != nil {
			return err
		}
	}
	own, _ := slot(c.rank)
	if err := c.typedSelfCopy(send, sendCount, sendTy, own, recvCount, recvTy); err != nil {
		return err
	}
	if c.size == 1 {
		return nil
	}
	if g := c.twoLevel(); g != nil && g.contig {
		return c.allgatherTwoLevel(send, sendCount, sendTy, recv, recvCount, recvTy, g)
	}
	if n := rp.Bytes(); c.size > 2 && n > c.prof.CollectiveTreeLimit() && !rp.FusedDstSafe() && pipelineEnabled() {
		// Large slots the fused engine cannot scatter into (overlapping
		// repeated instances — the extent-resized halo slots) would
		// stage a pack+unpack at every hop of the typed ring; the
		// packed-segment ring packs once and streams each hop through
		// the pipelined chunk engine instead.
		return c.allgatherPipelined(send, sendCount, sendTy, recv, recvCount, recvTy, sp, rp)
	}
	right := (c.rank + 1) % c.size
	left := (c.rank - 1 + c.size) % c.size
	// Step k: forward the slot that originated k hops upstream.
	blk := c.rank
	for k := 0; k < c.size-1; k++ {
		sv, _ := slot(blk)
		req, err := c.collIsend(sv, recvCount, recvTy, right, "ring-send")
		if err != nil {
			return err
		}
		blk = (blk - 1 + c.size) % c.size
		rv, _ := slot(blk)
		if err := c.collRecv(rv, recvCount, recvTy, left, "ring-recv"); err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
	}
	return nil
}

// AlltoallType exchanges typed slots pairwise, like MPI_Alltoall with
// derived datatypes: rank r receives this rank's slot r (sendCount
// instances of sendTy at byte offset r*sendCount*sendTy.Extent() of
// send) as recvCount instances of recvTy at slot offset
// src*recvCount*recvTy.Extent() of recv. The self slot is a single
// fused copy; remote slots exchange pairwise, fused past the eager
// limit.
func (c *Comm) AlltoallType(send buf.Block, sendCount int, sendTy *datatype.Type, recv buf.Block, recvCount int, recvTy *datatype.Type) error {
	return c.collErr("AlltoallType", c.alltoallType(send, sendCount, sendTy, recv, recvCount, recvTy))
}

func (c *Comm) alltoallType(send buf.Block, sendCount int, sendTy *datatype.Type, recv buf.Block, recvCount int, recvTy *datatype.Type) error {
	if sendCount < 0 {
		return errNegativeCount(sendCount)
	}
	if recvCount < 0 {
		return errNegativeCount(recvCount)
	}
	if _, err := sendTy.CompilePlan(sendCount); err != nil {
		return err
	}
	rp, err := recvTy.CompilePlan(recvCount)
	if err != nil {
		return err
	}
	if rp.Bytes() != sendTy.PackSize(sendCount) {
		return fmt.Errorf("%w: alltoall slot holds %d bytes, contribution is %d",
			ErrTruncate, rp.Bytes(), sendTy.PackSize(sendCount))
	}
	sslot := func(r int) (buf.Block, error) {
		return collSlotView(send, collSlotOff(r, sendCount, sendTy), sendCount, sendTy, "alltoall")
	}
	rslot := func(r int) (buf.Block, error) {
		return collSlotView(recv, collSlotOff(r, recvCount, recvTy), recvCount, recvTy, "alltoall")
	}
	for r := 0; r < c.size; r++ {
		if _, err := sslot(r); err != nil {
			return err
		}
		if _, err := rslot(r); err != nil {
			return err
		}
	}
	sv, _ := sslot(c.rank)
	rv, _ := rslot(c.rank)
	if err := c.typedSelfCopy(sv, sendCount, sendTy, rv, recvCount, recvTy); err != nil {
		return err
	}
	for step := 1; step < c.size; step++ {
		dst := (c.rank + step) % c.size
		src := (c.rank - step + c.size) % c.size
		sv, _ := sslot(dst)
		req, err := c.collIsend(sv, sendCount, sendTy, dst, "pairwise-send")
		if err != nil {
			return err
		}
		rv, _ := rslot(src)
		if err := c.collRecv(rv, recvCount, recvTy, src, "pairwise-recv"); err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
	}
	return nil
}
