package mpi

import (
	"fmt"

	"repro/internal/buf"
	"repro/internal/datatype"
	"repro/internal/memsim"
)

// PersistentRequest is a reusable communication request, the analogue
// of MPI_Send_init / MPI_Recv_init. Start launches one instance;
// Wait completes it; the request can then be started again; Free
// retires it. Real ping-pong benchmarks (and the paper's public code
// base) often use persistent requests to amortise setup, so the
// runtime supports them — and because the same transfer repeats, they
// are the natural measurement vehicle of the self-tuning loop: when
// the Comm has an observed-cost sink attached (ObserveInto), every
// Start/Wait cycle records its virtual-clock cost against the
// operation's transfer path, and the fitted coefficients feed
// core.RecommendTuned.
type PersistentRequest struct {
	owner  *Comm
	start  func() (*Request, error)
	active *Request
	freed  bool

	// observation of the send side: path names the engine
	// (memsim.Path*), bytes the payload; zero path disables.
	path    string
	bytes   int64
	startAt float64
}

// SendInit creates a persistent contiguous send request.
func (c *Comm) SendInit(b buf.Block, dest, tag int) (*PersistentRequest, error) {
	if err := c.checkP2P(dest, tag); err != nil {
		return nil, err
	}
	return &PersistentRequest{
		owner: c,
		start: func() (*Request, error) { return c.Isend(b, dest, tag) },
		path:  memsim.PathContigSend,
		bytes: int64(b.Len()),
	}, nil
}

// SendTypeInit creates a persistent derived-datatype send request.
func (c *Comm) SendTypeInit(b buf.Block, count int, ty *datatype.Type, dest, tag int) (*PersistentRequest, error) {
	if err := c.checkP2P(dest, tag); err != nil {
		return nil, err
	}
	if count < 0 {
		return nil, fmt.Errorf("%w: %d", ErrCount, count)
	}
	return &PersistentRequest{
		owner: c,
		start: func() (*Request, error) { return c.IsendType(b, count, ty, dest, tag) },
		path:  memsim.PathTypedSend,
		bytes: ty.PackSize(count),
	}, nil
}

// RecvInit creates a persistent receive request.
func (c *Comm) RecvInit(b buf.Block, src, tag int) (*PersistentRequest, error) {
	if err := c.checkRecvArgs(src, tag); err != nil {
		return nil, err
	}
	return &PersistentRequest{
		owner: c,
		start: func() (*Request, error) { return c.Irecv(b, src, tag) },
	}, nil
}

// RecvTypeInit creates a persistent derived-datatype receive request:
// count instances of ty land in b's layout on every Start/Wait cycle,
// like MPI_Recv_init with a derived type.
func (c *Comm) RecvTypeInit(b buf.Block, count int, ty *datatype.Type, src, tag int) (*PersistentRequest, error) {
	if err := c.checkRecvArgs(src, tag); err != nil {
		return nil, err
	}
	if count < 0 {
		return nil, fmt.Errorf("%w: %d", ErrCount, count)
	}
	return &PersistentRequest{
		owner: c,
		start: func() (*Request, error) { return c.IrecvType(b, count, ty, src, tag) },
	}, nil
}

// Start launches one instance of the operation, like MPI_Start. It is
// an error to start an already-active or freed request.
func (p *PersistentRequest) Start() error {
	if p.freed {
		return &RequestStateError{Op: "start", Rank: p.owner.rank, State: "freed", Cause: ErrRequestFreed}
	}
	if p.active != nil {
		return &RequestStateError{Op: "start", Rank: p.owner.rank, State: "active", Cause: ErrRequestActive}
	}
	if p.path != "" && p.owner.observed != nil {
		p.startAt = p.owner.Wtime()
	}
	r, err := p.start()
	if err != nil {
		return err
	}
	p.active = r
	return nil
}

// Wait completes the active instance, like MPI_Wait on a started
// persistent request, and re-arms the request for the next Start.
// When the owning Comm has an observed-cost sink, the cycle's
// virtual-clock cost is recorded against the operation's path.
func (p *PersistentRequest) Wait() (Status, error) {
	if p.freed {
		return Status{}, &RequestStateError{Op: "wait", Rank: p.owner.rank, State: "freed", Cause: ErrRequestFreed}
	}
	if p.active == nil {
		return Status{}, &RequestStateError{Op: "wait", Rank: p.owner.rank, State: "inactive", Cause: ErrRequestInactive}
	}
	st, err := p.active.Wait()
	p.active = nil
	if err == nil && p.path != "" {
		if o := p.owner.observed; o != nil {
			o.Observe(p.path, p.bytes, p.owner.Wtime()-p.startAt)
		}
	}
	return st, err
}

// Free retires the request, like MPI_Request_free on an inactive
// persistent request. Freeing an active (started, un-waited) request
// and freeing twice are request misuse and return typed
// RequestStateErrors — a double Free is a lifecycle bug a fault-laden
// run would otherwise mask as success.
func (p *PersistentRequest) Free() error {
	if p.active != nil {
		return &RequestStateError{Op: "free", Rank: p.owner.rank, State: "active", Cause: ErrRequestActive}
	}
	if p.freed {
		return &RequestStateError{Op: "free", Rank: p.owner.rank, State: "freed", Cause: ErrRequestFreed}
	}
	p.freed = true
	return nil
}

// Active reports whether the request has a started, un-waited
// instance.
func (p *PersistentRequest) Active() bool { return p.active != nil }

// StartAll starts a set of persistent requests, like MPI_Startall.
func StartAll(reqs ...*PersistentRequest) error {
	for _, r := range reqs {
		if err := r.Start(); err != nil {
			return err
		}
	}
	return nil
}

// WaitAllPersistent completes a set of started persistent requests,
// like MPI_Waitall over persistent requests: every request is waited
// even after an error, and the first error is returned.
func WaitAllPersistent(reqs ...*PersistentRequest) error {
	var first error
	for _, r := range reqs {
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Gatherv concentrates variable-sized contributions at the root in
// rank order, like MPI_Gatherv: counts[i] bytes land at displs[i] in
// recv. counts and displs are only read at the root.
func (c *Comm) Gatherv(send buf.Block, recv buf.Block, counts, displs []int, root int) error {
	return c.collErr("Gatherv", c.gatherv(send, recv, counts, displs, root))
}

func (c *Comm) gatherv(send buf.Block, recv buf.Block, counts, displs []int, root int) error {
	if err := c.checkRank(root); err != nil {
		return err
	}
	if c.rank != root {
		return c.csend(send, root)
	}
	if len(counts) != c.size || len(displs) != c.size {
		return fmt.Errorf("%w: gatherv needs %d counts/displs, have %d/%d", ErrCount, c.size, len(counts), len(displs))
	}
	for r := 0; r < c.size; r++ {
		if counts[r] < 0 || displs[r] < 0 || displs[r]+counts[r] > recv.Len() {
			return fmt.Errorf("%w: gatherv slot %d [%d,%d) outside %d-byte buffer",
				ErrTruncate, r, displs[r], displs[r]+counts[r], recv.Len())
		}
		dst := recv.Slice(displs[r], counts[r])
		if r == root {
			buf.Copy(dst, send)
			c.Charge(c.cache.CopyCost(send.Region(), recv.Region(), int64(counts[r])))
			continue
		}
		if _, err := c.recvContig(dst, r, collTag); err != nil {
			return err
		}
	}
	return nil
}

// Scatterv distributes variable-sized slices of the root's buffer,
// like MPI_Scatterv.
func (c *Comm) Scatterv(send buf.Block, counts, displs []int, recv buf.Block, root int) error {
	return c.collErr("Scatterv", c.scatterv(send, counts, displs, recv, root))
}

func (c *Comm) scatterv(send buf.Block, counts, displs []int, recv buf.Block, root int) error {
	if err := c.checkRank(root); err != nil {
		return err
	}
	if c.rank != root {
		_, err := c.recvContig(recv, root, collTag)
		return err
	}
	if len(counts) != c.size || len(displs) != c.size {
		return fmt.Errorf("%w: scatterv needs %d counts/displs, have %d/%d", ErrCount, c.size, len(counts), len(displs))
	}
	for r := 0; r < c.size; r++ {
		if counts[r] < 0 || displs[r] < 0 || displs[r]+counts[r] > send.Len() {
			return fmt.Errorf("%w: scatterv slot %d [%d,%d) outside %d-byte buffer",
				ErrTruncate, r, displs[r], displs[r]+counts[r], send.Len())
		}
		src := send.Slice(displs[r], counts[r])
		if r == root {
			buf.Copy(recv, src)
			c.Charge(c.cache.CopyCost(send.Region(), recv.Region(), int64(counts[r])))
			continue
		}
		if err := c.csend(src, r); err != nil {
			return err
		}
	}
	return nil
}
