package mpi

import (
	"fmt"

	"repro/internal/buf"
	"repro/internal/datatype"
)

// PersistentRequest is a reusable communication request, the analogue
// of MPI_Send_init / MPI_Recv_init. Start launches one instance;
// Wait completes it; the request can then be started again. Real
// ping-pong benchmarks (and the paper's public code base) often use
// persistent requests to amortise setup, so the runtime supports them.
type PersistentRequest struct {
	owner  *Comm
	start  func() (*Request, error)
	active *Request
}

// SendInit creates a persistent contiguous send request.
func (c *Comm) SendInit(b buf.Block, dest, tag int) (*PersistentRequest, error) {
	if err := c.checkP2P(dest, tag); err != nil {
		return nil, err
	}
	return &PersistentRequest{
		owner: c,
		start: func() (*Request, error) { return c.Isend(b, dest, tag) },
	}, nil
}

// SendTypeInit creates a persistent derived-datatype send request.
func (c *Comm) SendTypeInit(b buf.Block, count int, ty *datatype.Type, dest, tag int) (*PersistentRequest, error) {
	if err := c.checkP2P(dest, tag); err != nil {
		return nil, err
	}
	if count < 0 {
		return nil, fmt.Errorf("%w: %d", ErrCount, count)
	}
	return &PersistentRequest{
		owner: c,
		start: func() (*Request, error) { return c.IsendType(b, count, ty, dest, tag) },
	}, nil
}

// RecvInit creates a persistent receive request.
func (c *Comm) RecvInit(b buf.Block, src, tag int) (*PersistentRequest, error) {
	if err := c.checkRecvArgs(src, tag); err != nil {
		return nil, err
	}
	return &PersistentRequest{
		owner: c,
		start: func() (*Request, error) { return c.Irecv(b, src, tag) },
	}, nil
}

// Start launches one instance of the operation, like MPI_Start. It is
// an error to start an already-active request.
func (p *PersistentRequest) Start() error {
	if p.active != nil {
		return fmt.Errorf("mpi: persistent request started while active")
	}
	r, err := p.start()
	if err != nil {
		return err
	}
	p.active = r
	return nil
}

// Wait completes the active instance, like MPI_Wait on a started
// persistent request, and re-arms the request for the next Start.
func (p *PersistentRequest) Wait() (Status, error) {
	if p.active == nil {
		return Status{}, fmt.Errorf("mpi: persistent request waited while inactive")
	}
	st, err := p.active.Wait()
	p.active = nil
	return st, err
}

// StartAll starts a set of persistent requests, like MPI_Startall.
func StartAll(reqs ...*PersistentRequest) error {
	for _, r := range reqs {
		if err := r.Start(); err != nil {
			return err
		}
	}
	return nil
}

// Gatherv concentrates variable-sized contributions at the root in
// rank order, like MPI_Gatherv: counts[i] bytes land at displs[i] in
// recv. counts and displs are only read at the root.
func (c *Comm) Gatherv(send buf.Block, recv buf.Block, counts, displs []int, root int) error {
	if err := c.checkRank(root); err != nil {
		return err
	}
	if c.rank != root {
		return c.csend(send, root)
	}
	if len(counts) != c.size || len(displs) != c.size {
		return fmt.Errorf("%w: gatherv needs %d counts/displs, have %d/%d", ErrCount, c.size, len(counts), len(displs))
	}
	for r := 0; r < c.size; r++ {
		if counts[r] < 0 || displs[r] < 0 || displs[r]+counts[r] > recv.Len() {
			return fmt.Errorf("%w: gatherv slot %d [%d,%d) outside %d-byte buffer",
				ErrTruncate, r, displs[r], displs[r]+counts[r], recv.Len())
		}
		dst := recv.Slice(displs[r], counts[r])
		if r == root {
			buf.Copy(dst, send)
			c.Charge(c.cache.CopyCost(send.Region(), recv.Region(), int64(counts[r])))
			continue
		}
		if _, err := c.recvContig(dst, r, collTag); err != nil {
			return err
		}
	}
	return nil
}

// Scatterv distributes variable-sized slices of the root's buffer,
// like MPI_Scatterv.
func (c *Comm) Scatterv(send buf.Block, counts, displs []int, recv buf.Block, root int) error {
	if err := c.checkRank(root); err != nil {
		return err
	}
	if c.rank != root {
		_, err := c.recvContig(recv, root, collTag)
		return err
	}
	if len(counts) != c.size || len(displs) != c.size {
		return fmt.Errorf("%w: scatterv needs %d counts/displs, have %d/%d", ErrCount, c.size, len(counts), len(displs))
	}
	for r := 0; r < c.size; r++ {
		if counts[r] < 0 || displs[r] < 0 || displs[r]+counts[r] > send.Len() {
			return fmt.Errorf("%w: scatterv slot %d [%d,%d) outside %d-byte buffer",
				ErrTruncate, r, displs[r], displs[r]+counts[r], send.Len())
		}
		src := send.Slice(displs[r], counts[r])
		if r == root {
			buf.Copy(recv, src)
			c.Charge(c.cache.CopyCost(send.Region(), recv.Region(), int64(counts[r])))
			continue
		}
		if err := c.csend(src, r); err != nil {
			return err
		}
	}
	return nil
}
