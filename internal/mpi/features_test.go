package mpi

import (
	"errors"
	"testing"
	"time"

	"repro/internal/buf"
	"repro/internal/datatype"
	"repro/internal/elem"
)

func TestBsendRoundTrip(t *testing.T) {
	run2(t, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.BufferAttach(buf.Alloc(1 << 16)); err != nil {
				return err
			}
			b := buf.Alloc(1024)
			b.FillPattern(8)
			if err := c.Bsend(b, 1, 0); err != nil {
				return err
			}
			if _, err := c.BufferDetach(); err != nil {
				return err
			}
			return nil
		}
		b := buf.Alloc(1024)
		if _, err := c.Recv(b, 0, 0); err != nil {
			return err
		}
		return b.VerifyPattern(8)
	})
}

func TestBsendWithoutBufferFails(t *testing.T) {
	run2(t, func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if err := c.Bsend(buf.Alloc(64), 1, 0); !errors.Is(err, ErrBsendBuffer) {
			t.Errorf("err = %v", err)
		}
		return nil
	})
}

func TestBsendBufferExhaustion(t *testing.T) {
	run2(t, func(c *Comm) error {
		if c.Rank() == 0 {
			// Room for one 512-byte message plus overhead, not two.
			if err := c.BufferAttach(buf.Alloc(512 + BsendOverheadBytes + 32)); err != nil {
				return err
			}
			if err := c.Bsend(buf.Alloc(512), 1, 0); err != nil {
				return err
			}
			if err := c.Bsend(buf.Alloc(512), 1, 1); !errors.Is(err, ErrBsendBuffer) {
				t.Errorf("second Bsend err = %v, want ErrBsendBuffer", err)
			}
			// Let the receiver drain the first message, then detach.
			if _, err := c.BufferDetach(); err != nil {
				return err
			}
			return c.Send(buf.Alloc(0), 1, 9)
		}
		if _, err := c.Recv(buf.Alloc(512), 0, 0); err != nil {
			return err
		}
		_, err := c.Recv(buf.Alloc(0), 0, 9)
		return err
	})
}

func TestBsendTypePacksLayout(t *testing.T) {
	run2(t, func(c *Comm) error {
		ty := mustVec(t, 32, 1, 2)
		if c.Rank() == 0 {
			if err := c.BufferAttach(buf.Alloc(1 << 16)); err != nil {
				return err
			}
			src := buf.Alloc(int(ty.Extent()))
			src.FillPattern(31)
			if err := c.BsendType(src, 1, ty, 1, 0); err != nil {
				return err
			}
			_, err := c.BufferDetach()
			return err
		}
		dst := buf.Alloc(int(ty.Size()))
		if _, err := c.Recv(dst, 0, 0); err != nil {
			return err
		}
		src := buf.Alloc(int(ty.Extent()))
		src.FillPattern(31)
		want := buf.Alloc(int(ty.Size()))
		if _, err := ty.Pack(src, 1, want); err != nil {
			return err
		}
		if !buf.Equal(dst, want) {
			t.Error("Bsend payload differs from local pack")
		}
		return nil
	})
}

func TestBufferDetachWithoutAttach(t *testing.T) {
	run2(t, func(c *Comm) error {
		if _, err := c.BufferDetach(); !errors.Is(err, ErrBsendBuffer) {
			t.Errorf("err = %v", err)
		}
		return nil
	})
}

func TestDoubleAttachFails(t *testing.T) {
	run2(t, func(c *Comm) error {
		if err := c.BufferAttach(buf.Alloc(128)); err != nil {
			return err
		}
		if err := c.BufferAttach(buf.Alloc(128)); !errors.Is(err, ErrBsendBuffer) {
			t.Errorf("err = %v", err)
		}
		_, err := c.BufferDetach()
		return err
	})
}

func TestOneSidedPutFence(t *testing.T) {
	run2(t, func(c *Comm) error {
		ty := mustVec(t, 16, 1, 2)
		window := buf.Alloc(int(ty.Size()))
		w, err := c.WinCreate(window)
		if err != nil {
			return err
		}
		if err := w.Fence(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			src := buf.Alloc(int(ty.Extent()))
			src.FillPattern(21)
			if err := w.Put(src, 1, ty, 1, 0); err != nil {
				return err
			}
		}
		if err := w.Fence(); err != nil {
			return err
		}
		if c.Rank() == 1 {
			src := buf.Alloc(int(ty.Extent()))
			src.FillPattern(21)
			want := buf.Alloc(int(ty.Size()))
			if _, err := ty.Pack(src, 1, want); err != nil {
				return err
			}
			if !buf.Equal(window, want) {
				t.Error("put payload differs")
			}
		}
		return w.Free()
	})
}

func TestOneSidedGet(t *testing.T) {
	run2(t, func(c *Comm) error {
		window := buf.Alloc(256)
		if c.Rank() == 1 {
			window.FillPattern(55)
		}
		w, err := c.WinCreate(window)
		if err != nil {
			return err
		}
		if err := w.Fence(); err != nil {
			return err
		}
		got := buf.Alloc(256)
		if c.Rank() == 0 {
			ct, err := datatype.Contiguous(256, datatype.Byte)
			if err != nil {
				return err
			}
			if err := ct.Commit(); err != nil {
				return err
			}
			if err := w.Get(got, 1, ct, 1, 0); err != nil {
				return err
			}
		}
		if err := w.Fence(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := got.VerifyPattern(55); err != nil {
				t.Errorf("get: %v", err)
			}
		}
		return w.Free()
	})
}

func TestOneSidedAccumulate(t *testing.T) {
	run2(t, func(c *Comm) error {
		window := buf.Alloc(8 * 4)
		for i := 0; i < 4; i++ {
			elem.PutFloat64(window, i, 10)
		}
		w, err := c.WinCreate(window)
		if err != nil {
			return err
		}
		if err := w.Fence(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			contrib := buf.Alloc(8 * 4)
			for i := 0; i < 4; i++ {
				elem.PutFloat64(contrib, i, float64(i))
			}
			if err := w.AccumulateSum(contrib, 4, 1, 0); err != nil {
				return err
			}
		}
		if err := w.Fence(); err != nil {
			return err
		}
		if c.Rank() == 1 {
			for i := 0; i < 4; i++ {
				if got := elem.Float64(window, i); got != 10+float64(i) {
					t.Errorf("window[%d] = %v", i, got)
				}
			}
		}
		return w.Free()
	})
}

func TestPutOutsideWindowFails(t *testing.T) {
	run2(t, func(c *Comm) error {
		w, err := c.WinCreate(buf.Alloc(64))
		if err != nil {
			return err
		}
		if err := w.Fence(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			ct, _ := datatype.Contiguous(128, datatype.Byte)
			_ = ct.Commit()
			if err := w.Put(buf.Alloc(128), 1, ct, 1, 0); !errors.Is(err, ErrWin) {
				t.Errorf("oversized put err = %v", err)
			}
		}
		if err := w.Fence(); err != nil {
			return err
		}
		return w.Free()
	})
}

func TestFenceAfterFreeFails(t *testing.T) {
	run2(t, func(c *Comm) error {
		w, err := c.WinCreate(buf.Alloc(8))
		if err != nil {
			return err
		}
		if err := w.Free(); err != nil {
			return err
		}
		if err := w.Fence(); !errors.Is(err, ErrWin) {
			t.Errorf("fence-after-free err = %v", err)
		}
		return nil
	})
}

func TestOneSidedSmallMessageFenceDominated(t *testing.T) {
	// §4.4: for small messages one-sided transfer must be slower than
	// two-sided because of the fence overhead.
	var twoSided, oneSided float64
	err := Run(2, Options{WallLimit: 10 * time.Second}, func(c *Comm) error {
		b := buf.Alloc(1024)
		// Two-sided ping.
		start := c.Wtime()
		if c.Rank() == 0 {
			if err := c.Send(b, 1, 0); err != nil {
				return err
			}
		} else if _, err := c.Recv(b, 0, 0); err != nil {
			return err
		}
		c.Barrier()
		if c.Rank() == 0 {
			twoSided = c.Wtime() - start
		}
		// One-sided ping.
		w, err := c.WinCreate(buf.Alloc(1024))
		if err != nil {
			return err
		}
		start = c.Wtime()
		if err := w.Fence(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			ct, _ := datatype.Contiguous(1024, datatype.Byte)
			_ = ct.Commit()
			if err := w.Put(b, 1, ct, 1, 0); err != nil {
				return err
			}
		}
		if err := w.Fence(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			oneSided = c.Wtime() - start
		}
		return w.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
	if oneSided <= twoSided {
		t.Fatalf("small one-sided (%g) should exceed two-sided (%g) (§4.4)", oneSided, twoSided)
	}
}

func TestIsendIrecvWait(t *testing.T) {
	run2(t, func(c *Comm) error {
		const n = 2048
		if c.Rank() == 0 {
			b := buf.Alloc(n)
			b.FillPattern(61)
			req, err := c.Isend(b, 1, 0)
			if err != nil {
				return err
			}
			_, err = req.Wait()
			return err
		}
		b := buf.Alloc(n)
		req, err := c.Irecv(b, 0, 0)
		if err != nil {
			return err
		}
		st, err := req.Wait()
		if err != nil {
			return err
		}
		if st.Count != n {
			t.Errorf("count = %d", st.Count)
		}
		return b.VerifyPattern(61)
	})
}

func TestIsendPreservesOrderWithSend(t *testing.T) {
	run2(t, func(c *Comm) error {
		if c.Rank() == 0 {
			big := int(c.Profile().EagerLimit) * 2
			a := buf.Alloc(big)
			a.FillPattern(1)
			req, err := c.Isend(a, 1, 4) // rendezvous, delivered first
			if err != nil {
				return err
			}
			b := buf.Alloc(big)
			b.FillPattern(2)
			if err := c.Send(b, 1, 4); err != nil {
				return err
			}
			_, err = req.Wait()
			return err
		}
		big := int(c.Profile().EagerLimit) * 2
		b := buf.Alloc(big)
		if _, err := c.Recv(b, 0, 4); err != nil {
			return err
		}
		if err := b.VerifyPattern(1); err != nil {
			t.Errorf("Isend overtaken by Send: %v", err)
		}
		if _, err := c.Recv(b, 0, 4); err != nil {
			return err
		}
		return b.VerifyPattern(2)
	})
}

func TestRequestTest(t *testing.T) {
	run2(t, func(c *Comm) error {
		if c.Rank() == 0 {
			req, err := c.Isend(buf.Alloc(16), 1, 0)
			if err != nil {
				return err
			}
			for {
				done, _, err := req.Test()
				if err != nil {
					return err
				}
				if done {
					return nil
				}
				time.Sleep(time.Millisecond)
			}
		}
		_, err := c.Recv(buf.Alloc(16), 0, 0)
		return err
	})
}

func TestWaitAll(t *testing.T) {
	run2(t, func(c *Comm) error {
		const k = 4
		if c.Rank() == 0 {
			reqs := make([]*Request, k)
			for i := range reqs {
				r, err := c.Isend(buf.Alloc(32), 1, i)
				if err != nil {
					return err
				}
				reqs[i] = r
			}
			return WaitAll(reqs...)
		}
		for i := 0; i < k; i++ {
			if _, err := c.Recv(buf.Alloc(32), 0, i); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestSendrecvNoDeadlock(t *testing.T) {
	run2(t, func(c *Comm) error {
		peer := 1 - c.Rank()
		out := buf.Alloc(1 << 17) // over the eager limit: both must handshake
		out.FillPattern(byte(c.Rank()))
		in := buf.Alloc(1 << 17)
		if _, err := c.Sendrecv(out, peer, 0, in, peer, 0); err != nil {
			return err
		}
		return in.VerifyPattern(byte(peer))
	})
}

func TestProbeThenRecv(t *testing.T) {
	run2(t, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(buf.Alloc(96), 1, 11)
		}
		st, err := c.Probe(AnySource, AnyTag)
		if err != nil {
			return err
		}
		if st.Count != 96 || st.Tag != 11 {
			t.Errorf("probe status = %+v", st)
		}
		_, err = c.Recv(buf.Alloc(int(st.Count)), st.Source, st.Tag)
		return err
	})
}

func TestIprobeNonBlocking(t *testing.T) {
	run2(t, func(c *Comm) error {
		if c.Rank() == 0 {
			if _, ok, err := c.Iprobe(1, 0); err != nil || ok {
				t.Errorf("Iprobe = %v,%v on empty mailbox", ok, err)
			}
			return c.Send(buf.Alloc(8), 1, 0)
		}
		for {
			_, ok, err := c.Iprobe(0, 0)
			if err != nil {
				return err
			}
			if ok {
				break
			}
			time.Sleep(time.Millisecond)
		}
		_, err := c.Recv(buf.Alloc(8), 0, 0)
		return err
	})
}

func TestPackUnpackThroughComm(t *testing.T) {
	run2(t, func(c *Comm) error {
		ty := mustVec(t, 10, 1, 2)
		src := buf.Alloc(int(ty.Extent()))
		src.FillPattern(3)
		out := buf.Alloc(int(ty.Size()) + 16)
		var pos int64
		if err := c.Pack(src, 1, ty, out, &pos); err != nil {
			return err
		}
		if pos != ty.Size() {
			t.Errorf("position = %d, want %d", pos, ty.Size())
		}
		back := buf.Alloc(int(ty.Extent()))
		pos = 0
		if err := c.Unpack(out, &pos, back, 1, ty); err != nil {
			return err
		}
		// Verify layout bytes survived.
		got := buf.Alloc(int(ty.Size()))
		if _, err := ty.Pack(back, 1, got); err != nil {
			return err
		}
		want := buf.Alloc(int(ty.Size()))
		if _, err := ty.Pack(src, 1, want); err != nil {
			return err
		}
		if !buf.Equal(got, want) {
			t.Error("pack/unpack round trip lost bytes")
		}
		return nil
	})
}
