package mpi

import (
	"fmt"

	"repro/internal/buf"
	"repro/internal/datatype"
	"repro/internal/simnet"
	"repro/internal/vclock"
)

// Send transmits a contiguous buffer to dest, like MPI_Send of
// MPI_BYTEs. It blocks until the buffer is reusable: immediately after
// injection under the eager protocol, after the handshake and transfer
// under rendezvous.
func (c *Comm) Send(b buf.Block, dest, tag int) error {
	if err := c.checkP2P(dest, tag); err != nil {
		return err
	}
	return c.sendContig(b, dest, tag, sendFlags{})
}

// SendPacked is Send for payloads the caller gathered in user space
// (a manual copy loop or Comm.Pack output). Semantically identical to
// Send; the provenance flag feeds the Cray packed-eager artefact the
// paper observes in §4.5.
func (c *Comm) SendPacked(b buf.Block, dest, tag int) error {
	if err := c.checkP2P(dest, tag); err != nil {
		return err
	}
	return c.sendContig(b, dest, tag, sendFlags{packed: true})
}

// Ssend is the synchronous-mode send: it always uses the rendezvous
// protocol regardless of size, like MPI_Ssend.
func (c *Comm) Ssend(b buf.Block, dest, tag int) error {
	if err := c.checkP2P(dest, tag); err != nil {
		return err
	}
	return c.sendContig(b, dest, tag, sendFlags{forceRdv: true})
}

// Rsend is the ready-mode send. Like most MPI implementations, it is
// an alias for Send: the receiver-ready assertion enables no shortcut
// in this runtime.
func (c *Comm) Rsend(b buf.Block, dest, tag int) error {
	return c.Send(b, dest, tag)
}

// SendType transmits count instances of a derived datatype read from
// b, like MPI_Send with a non-contiguous type: the payload flows
// through MPI's internal chunked pack buffers (§2.3 of the paper) and
// suffers their large-message degradation (§4.1).
func (c *Comm) SendType(b buf.Block, count int, ty *datatype.Type, dest, tag int) error {
	if err := c.checkP2P(dest, tag); err != nil {
		return err
	}
	if count < 0 {
		return fmt.Errorf("%w: %d", ErrCount, count)
	}
	return c.sendTyped(b, count, ty, dest, tag, sendFlags{})
}

// SsendType is SendType under forced rendezvous.
func (c *Comm) SsendType(b buf.Block, count int, ty *datatype.Type, dest, tag int) error {
	if err := c.checkP2P(dest, tag); err != nil {
		return err
	}
	if count < 0 {
		return fmt.Errorf("%w: %d", ErrCount, count)
	}
	return c.sendTyped(b, count, ty, dest, tag, sendFlags{forceRdv: true})
}

// Bsend is the buffered send of a contiguous payload, like MPI_Bsend:
// the payload is copied into the buffer attached with BufferAttach and
// the call returns; transmission proceeds behind the sender's back.
// It fails with ErrBsendBuffer when the attached buffer cannot hold
// the message.
func (c *Comm) Bsend(b buf.Block, dest, tag int) error {
	if err := c.checkP2P(dest, tag); err != nil {
		return err
	}
	n := int64(b.Len())
	region, release, err := c.reserveBsend(n)
	if err != nil {
		return err
	}
	// Local copy into the attached buffer plus fixed Bsend overhead.
	copyCost := c.cache.CopyCost(b.Region(), region.Region(), n)
	c.clock.Advance(vclock.FromSeconds(copyCost + c.prof.BsendOverhead))
	buf.Copy(region, b)
	return c.bsendShip(region, n, dest, tag, release)
}

// BsendType is the buffered send of a derived datatype, the paper's
// "buffered" scheme: pack into the attached buffer, return, transmit
// behind the sender's back — which, as §4.2 observes, helps neither
// intermediate nor large messages.
func (c *Comm) BsendType(b buf.Block, count int, ty *datatype.Type, dest, tag int) error {
	if err := c.checkP2P(dest, tag); err != nil {
		return err
	}
	n := ty.PackSize(count)
	packer, err := ty.NewPacker(b, count)
	if err != nil {
		return err
	}
	region, release, err := c.reserveBsend(n)
	if err != nil {
		return err
	}
	gather := c.cache.GatherCost(b.Region(), region.Region(), ty.Stats(count))
	c.clock.Advance(vclock.FromSeconds(gather + c.prof.BsendOverhead))
	if _, err := packer.Pack(region); err != nil {
		release(c.clock.Now())
		return err
	}
	return c.bsendShip(region, n, dest, tag, release)
}

func (c *Comm) reserveBsend(n int64) (buf.Block, func(vclock.Time), error) {
	if c.attach == nil {
		return buf.Block{}, nil, fmt.Errorf("%w: no buffer attached", ErrBsendBuffer)
	}
	return c.attach.reserve(n)
}

// bsendShip transmits an attached-buffer region as an eager-style
// message regardless of size (the data is already safely buffered), at
// the Bsend-derated internal bandwidth. Under faults every attempt
// ships a fresh transit copy — in-flight damage must never reach the
// user's attached buffer, and a retransmission needs pristine bytes —
// and the region is released sender-side once the payload's fate is
// settled (the retry loop runs on the caller, so a faulted Bsend loses
// its fire-and-forget return; the clean path keeps it).
func (c *Comm) bsendShip(region buf.Block, n int64, dest, tag int, release func(vclock.Time)) error {
	p := c.prof
	wire := 0.0
	if n > 0 {
		wire = float64(n) / (p.InternalBW(n) / p.BsendWireFactor)
	}
	injectEnd := c.clock.Now() + dur(wire)
	arrival := injectEnd + dur(c.linkLatency(dest))
	if !c.faultsOn() {
		c.deliverEager(dest, tag, region, n, injectEnd, sendFlags{
			onConsume: func() { release(arrival) },
		})
		return nil
	}
	attempt := 0
	for {
		f := c.deliverEager(dest, tag, c.transitCopy(region), n, injectEnd, sendFlags{})
		again, err := c.eagerRetryStep(&attempt, "bsend", dest, tag, f)
		if err != nil || !again {
			release(c.clock.Now() + dur(c.linkLatency(dest)))
			return err
		}
		injectEnd = c.clock.Now() + dur(wire)
	}
}

// Recv receives a contiguous message from src with the given tag
// (wildcards allowed), like MPI_Recv into MPI_BYTEs.
func (c *Comm) Recv(b buf.Block, src, tag int) (Status, error) {
	if err := c.checkRecvArgs(src, tag); err != nil {
		return Status{}, err
	}
	return c.recvContig(b, src, tag)
}

// RecvType receives count instances of a derived datatype, scattering
// the payload into b's layout, like MPI_Recv with a non-contiguous
// type.
func (c *Comm) RecvType(b buf.Block, count int, ty *datatype.Type, src, tag int) (Status, error) {
	if err := c.checkRecvArgs(src, tag); err != nil {
		return Status{}, err
	}
	if count < 0 {
		return Status{}, fmt.Errorf("%w: %d", ErrCount, count)
	}
	return c.recvTyped(b, count, ty, src, tag)
}

// Sendrecv performs a simultaneous send and receive, deadlock-free,
// like MPI_Sendrecv.
func (c *Comm) Sendrecv(sb buf.Block, dest, stag int, rb buf.Block, src, rtag int) (Status, error) {
	req, err := c.Isend(sb, dest, stag)
	if err != nil {
		return Status{}, err
	}
	st, rerr := c.Recv(rb, src, rtag)
	if _, werr := req.Wait(); werr != nil {
		return st, werr
	}
	return st, rerr
}

// Probe blocks until a message matching (src, tag) is available and
// returns its status without receiving it, like MPI_Probe.
func (c *Comm) Probe(src, tag int) (Status, error) {
	if err := c.checkRecvArgs(src, tag); err != nil {
		return Status{}, err
	}
	ep := simnet.AnySource
	if src != AnySource {
		ep = c.endpoint(src)
	}
	me := c.endpoint(c.rank)
	var m *simnet.Message
	if c.fabric.Tracking() {
		release := c.fabric.EnterBlocked(simnet.BlockInfo{
			Rank: me, Op: "probe", Ctx: c.ctx, Src: ep, Tag: tag, Since: c.clock.Now(),
		}, func() bool { return c.fabric.Pending(me, c.ctx, ep, tag) })
		var err error
		m, err = c.fabric.ProbeCancel(me, c.ctx, ep, tag, c.cancelCh)
		release()
		if err != nil {
			return Status{}, err
		}
	} else {
		m = c.fabric.Probe(me, c.ctx, ep, tag)
		if m == nil {
			return Status{}, c.abortErrFor("probe")
		}
	}
	c.clock.AdvanceTo(m.Arrival)
	return Status{Source: c.localRank(m.Src), Tag: m.Tag, Count: m.Bytes}, nil
}

// Iprobe is the non-blocking Probe, like MPI_Iprobe.
func (c *Comm) Iprobe(src, tag int) (Status, bool, error) {
	if err := c.checkRecvArgs(src, tag); err != nil {
		return Status{}, false, err
	}
	ep := simnet.AnySource
	if src != AnySource {
		ep = c.endpoint(src)
	}
	m := c.fabric.TryMatch(c.endpoint(c.rank), c.ctx, ep, tag)
	if m == nil {
		return Status{}, false, nil
	}
	return Status{Source: c.localRank(m.Src), Tag: m.Tag, Count: m.Bytes}, true, nil
}

func (c *Comm) checkP2P(dest, tag int) error {
	if err := c.checkRank(dest); err != nil {
		return err
	}
	return checkTag(tag)
}

func (c *Comm) checkRecvArgs(src, tag int) error {
	if src != AnySource {
		if err := c.checkRank(src); err != nil {
			return err
		}
	}
	if tag != AnyTag {
		return checkTag(tag)
	}
	return nil
}
