package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/buf"
	"repro/internal/datatype"
	"repro/internal/perfmodel"
)

// interleavedResized returns a committed layout whose repeated
// instances interleave without overlapping a single byte: an indexed
// pair of 4-byte blocks at byte offsets 0 and 20 whose extent is
// resized down to 8, so instance i contributes [8i, 8i+4) and
// [8i+20, 8i+24) — the two residues tile seamlessly across instances.
// Plans over it are not FusedDstSafe (extent < span, conservatively
// flagged), which is what forces the staged fallbacks the pipelined
// paths replace, while every byte still has exactly one writer — so
// the serial and pipelined schedules must agree bit for bit.
func interleavedResized(t testing.TB) *datatype.Type {
	t.Helper()
	idx, err := datatype.Indexed([]int{4, 4}, []int{0, 20}, datatype.Byte)
	if err != nil {
		t.Fatal(err)
	}
	ty, err := datatype.Resized(idx, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := ty.Commit(); err != nil {
		t.Fatal(err)
	}
	return ty
}

// smallChunkProfile returns the generic profile with the internal
// chunk shrunk so rendezvous-sized tests split into many pipeline
// chunks, exercising the slot ring and the chunk-streamed hops.
func smallChunkProfile() *perfmodel.Profile {
	p := perfmodel.Generic()
	p.Mem.InternalChunk = 8 << 10
	p.Mem.PipelineDepth = 2
	return p
}

// exchangeTyped runs one typed exchange of (count × ty) from rank 0 to
// rank 1 under the given send call and returns the receiver's packed
// bytes (contiguous receive) and each rank's final virtual time.
func exchangeTyped(t *testing.T, prof *perfmodel.Profile, ty *datatype.Type, count int,
	send func(*Comm, buf.Block) error, typedRecv bool) (got []byte, sendTime float64) {
	t.Helper()
	need := ty.PackSize(count)
	span := typedSpan(ty, count)
	err := Run(2, Options{Profile: prof}, func(c *Comm) error {
		if c.Rank() == 0 {
			src := buf.Alloc(int(span))
			src.FillPattern(0x4D)
			if err := send(c, src); err != nil {
				return err
			}
			sendTime = c.Wtime()
			return nil
		}
		if typedRecv {
			dst := buf.Alloc(int(span))
			if _, err := c.RecvType(dst, count, ty, 0, 0); err != nil {
				return err
			}
			got = append([]byte(nil), dst.Bytes()...)
			return nil
		}
		dst := buf.Alloc(int(need))
		if _, err := c.Recv(dst, 0, 0); err != nil {
			return err
		}
		got = append([]byte(nil), dst.Bytes()...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, sendTime
}

// TestSendpTypeMatchesSendType pins the pipelined rendezvous
// byte-for-byte against the serial chunk loop — contiguous and typed
// receivers, gapped and interleaved-resized layouts — and requires the
// pipelined sender to finish strictly earlier on the virtual clock.
func TestSendpTypeMatchesSendType(t *testing.T) {
	prof := smallChunkProfile()
	layouts := map[string]*datatype.Type{
		"everyOther": everyOther(t, 1<<16), // 512 KiB payload
		"resized":    interleavedResized(t),
	}
	counts := map[string]int{"everyOther": 1, "resized": 1 << 14}
	for name, ty := range layouts {
		count := counts[name]
		for _, typedRecv := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/typedRecv=%v", name, typedRecv), func(t *testing.T) {
				serial, serialT := exchangeTyped(t, prof, ty, count, func(c *Comm, src buf.Block) error {
					return c.SendType(src, count, ty, 1, 0)
				}, typedRecv)
				piped, pipedT := exchangeTyped(t, prof, ty, count, func(c *Comm, src buf.Block) error {
					return c.SendpType(src, count, ty, 1, 0)
				}, typedRecv)
				if !bytes.Equal(serial, piped) {
					t.Fatal("pipelined rendezvous delivered different bytes than the serial chunk loop")
				}
				if pipedT >= serialT {
					t.Errorf("pipelined sender (%.3gs) not faster than serial (%.3gs)", pipedT, serialT)
				}
			})
		}
	}
}

// TestSendpTypeEagerMatchesSerial pins the eager fallback: under the
// eager limit the pipelined scheme is the serial typed send, to the
// byte and to the clock tick.
func TestSendpTypeEagerMatchesSerial(t *testing.T) {
	prof := smallChunkProfile()
	ty := everyOther(t, 1<<10) // 8 KiB payload, under the 64 KiB limit
	serial, serialT := exchangeTyped(t, prof, ty, 1, func(c *Comm, src buf.Block) error {
		return c.SendType(src, 1, ty, 1, 0)
	}, false)
	piped, pipedT := exchangeTyped(t, prof, ty, 1, func(c *Comm, src buf.Block) error {
		return c.SendpType(src, 1, ty, 1, 0)
	}, false)
	if !bytes.Equal(serial, piped) {
		t.Fatal("eager pipelined send differs from serial")
	}
	if pipedT != serialT {
		t.Errorf("eager pipelined time %.6g differs from serial %.6g", pipedT, serialT)
	}
}

// TestSendpTypeDisabledMatchesSerial pins the gate: with the pipelined
// engine switched off, SendpType is the serial typed send exactly.
func TestSendpTypeDisabledMatchesSerial(t *testing.T) {
	datatype.SetPipelinedChunks(false)
	defer datatype.SetPipelinedChunks(true)
	prof := smallChunkProfile()
	ty := everyOther(t, 1<<15)
	serial, serialT := exchangeTyped(t, prof, ty, 1, func(c *Comm, src buf.Block) error {
		return c.SendType(src, 1, ty, 1, 0)
	}, false)
	piped, pipedT := exchangeTyped(t, prof, ty, 1, func(c *Comm, src buf.Block) error {
		return c.SendpType(src, 1, ty, 1, 0)
	}, false)
	if !bytes.Equal(serial, piped) || pipedT != serialT {
		t.Fatal("disabled pipelined send must be identical to the serial path")
	}
}

// bcastWorld runs BcastType of (count × ty) from the given root at
// every world size in ranks and returns each rank's resulting buffer
// per size.
func bcastWorld(t *testing.T, prof *perfmodel.Profile, ty *datatype.Type, count, root, size int) [][]byte {
	t.Helper()
	span := typedSpan(ty, count)
	out := make([][]byte, size)
	err := Run(size, Options{Profile: prof}, func(c *Comm) error {
		b := buf.Alloc(int(span))
		if c.Rank() == root {
			b.FillPattern(0x71)
		}
		if err := c.BcastType(b, count, ty, root); err != nil {
			return err
		}
		out[c.Rank()] = append([]byte(nil), b.Bytes()...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestBcastPipelinedMatchesTree pins the scatter+allgather broadcast
// byte-for-byte against the binomial tree at every world size 1–8,
// over gapped and interleaved-resized layouts, roots 0 and last.
func TestBcastPipelinedMatchesTree(t *testing.T) {
	prof := smallChunkProfile()
	layouts := map[string]*datatype.Type{
		"everyOther": everyOther(t, 1<<14), // 128 KiB payload > tree limit
		"resized":    interleavedResized(t),
	}
	counts := map[string]int{"everyOther": 1, "resized": 1 << 14}
	for name, ty := range layouts {
		count := counts[name]
		for size := 1; size <= 8; size++ {
			for _, root := range []int{0, size - 1} {
				t.Run(fmt.Sprintf("%s/size%d/root%d", name, size, root), func(t *testing.T) {
					piped := bcastWorld(t, prof, ty, count, root, size)

					datatype.SetPipelinedChunks(false)
					defer datatype.SetPipelinedChunks(true)
					serial := bcastWorld(t, prof, ty, count, root, size)
					for r := 0; r < size; r++ {
						if !bytes.Equal(piped[r], serial[r]) {
							t.Fatalf("rank %d: pipelined bcast differs from tree", r)
						}
					}
				})
			}
		}
	}
}

// allgatherWorld runs AllgatherType over the given slot types and
// returns each rank's receive buffer.
func allgatherWorld(t *testing.T, prof *perfmodel.Profile, sendTy *datatype.Type, sendCount int, recvTy *datatype.Type, recvCount, size int) [][]byte {
	t.Helper()
	sendSpan := typedSpan(sendTy, sendCount)
	slotSpan := typedSpan(recvTy, recvCount)
	recvLen := collSlotOff(size-1, recvCount, recvTy) + slotSpan
	out := make([][]byte, size)
	err := Run(size, Options{Profile: prof}, func(c *Comm) error {
		send := buf.Alloc(int(sendSpan))
		send.FillPattern(byte(0x21 + c.Rank()))
		recv := buf.Alloc(int(recvLen))
		if err := c.AllgatherType(send, sendCount, sendTy, recv, recvCount, recvTy); err != nil {
			return err
		}
		out[c.Rank()] = append([]byte(nil), recv.Bytes()...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestAllgatherPipelinedMatchesSerial pins the packed-segment ring
// byte-for-byte against the staged typed ring at world sizes 1–8. The
// receive slots use the interleaved-resized layout, which is exactly
// the not-FusedDstSafe shape that routes the serial ring through
// per-hop staging and the pipelined ring through packed forwarding.
func TestAllgatherPipelinedMatchesSerial(t *testing.T) {
	prof := smallChunkProfile()
	const recvCount = 1 << 14 // 128 KiB per slot > tree limit
	recvTy := interleavedResized(t)
	sendTy := everyOther(t, recvCount) // same 128 KiB packed size
	for size := 1; size <= 8; size++ {
		t.Run(fmt.Sprintf("size%d", size), func(t *testing.T) {
			piped := allgatherWorld(t, prof, sendTy, 1, recvTy, recvCount, size)

			datatype.SetPipelinedChunks(false)
			defer datatype.SetPipelinedChunks(true)
			serial := allgatherWorld(t, prof, sendTy, 1, recvTy, recvCount, size)
			for r := 0; r < size; r++ {
				if !bytes.Equal(piped[r], serial[r]) {
					t.Fatalf("rank %d: pipelined allgather differs from the staged ring", r)
				}
			}
		})
	}
}

// TestStagedScatterPipelinedMatches pins the chunked fused-sendv
// fallback (the sender-local staged emulation) byte-for-byte against
// its whole-buffer form: a sendv to an interleaved-resized typed
// receiver stages — pipelined by default, serial with the gate off.
func TestStagedScatterPipelinedMatches(t *testing.T) {
	prof := smallChunkProfile()
	recvTy := interleavedResized(t)
	const count = 1 << 14
	sendTy := everyOther(t, count)
	run := func() []byte {
		var got []byte
		err := Run(2, Options{Profile: prof}, func(c *Comm) error {
			if c.Rank() == 0 {
				src := buf.Alloc(int(typedSpan(sendTy, 1)))
				src.FillPattern(0x5F)
				return c.SendvType(src, 1, sendTy, 1, 0)
			}
			dst := buf.Alloc(int(typedSpan(recvTy, count)))
			if _, err := c.RecvType(dst, count, recvTy, 0, 0); err != nil {
				return err
			}
			got = append([]byte(nil), dst.Bytes()...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	piped := run()
	datatype.SetPipelinedChunks(false)
	serial := run()
	datatype.SetPipelinedChunks(true)
	if !bytes.Equal(piped, serial) {
		t.Fatal("pipelined staged scatter differs from the whole-buffer staged scatter")
	}
}

// BenchmarkPipelined is the CI smoke for the pipelined rendezvous: a
// 4 MiB every-other-doubles exchange per iteration, pinned to (a) draw
// no pooled storage beyond the fixed slot ring and (b) beat the serial
// chunk loop by at least 1.3x on the virtual clock.
func BenchmarkPipelined(b *testing.B) {
	const count = 1 << 19 // 4 MiB payload
	prof := perfmodel.Generic()
	exchange := func(pipelined bool) float64 {
		var sendTime float64
		err := Run(2, Options{Profile: prof, ColdCaches: true}, func(c *Comm) error {
			ty := everyOther(b, count)
			if c.Rank() == 0 {
				src := buf.Alloc(int(ty.Extent()))
				var err error
				if pipelined {
					err = c.SendpType(src, 1, ty, 1, 0)
				} else {
					err = c.SendType(src, 1, ty, 1, 0)
				}
				sendTime = c.Wtime()
				return err
			}
			dst := buf.Alloc(int(ty.Size()))
			_, err := c.Recv(dst, 0, 0)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
		return sendTime
	}
	b.SetBytes(count * 8)
	var serialT, pipedT float64
	poolBefore := buf.PoolStatsSnapshot()
	for i := 0; i < b.N; i++ {
		pipedT = exchange(true)
	}
	poolDelta := buf.PoolStatsSnapshot().Sub(poolBefore)
	for i := 0; i < b.N; i++ {
		serialT = exchange(false)
	}
	b.StopTimer()
	ring := int64(prof.PipelineDepth()) * int64(b.N)
	if poolDelta.Gets != ring {
		b.Fatalf("pipelined rendezvous drew %d pooled blocks over %d iterations, want exactly the %d-slot rings (%d)",
			poolDelta.Gets, b.N, prof.PipelineDepth(), ring)
	}
	if poolDelta.Puts != ring {
		b.Fatalf("pipelined rendezvous returned %d pooled blocks, want %d", poolDelta.Puts, ring)
	}
	if pipedT <= 0 || serialT/pipedT < 1.3 {
		b.Fatalf("pipelined rendezvous %.3gs vs serial %.3gs: speedup %.2fx, want >= 1.3x",
			pipedT, serialT, serialT/pipedT)
	}
	b.ReportMetric(serialT/pipedT, "serial/pipelined")
}
