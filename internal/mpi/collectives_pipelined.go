package mpi

import (
	"repro/internal/buf"
	"repro/internal/datatype"
	"repro/internal/vclock"
)

// This file implements the pipelined large-message collective
// schedules: BcastType as scatter+allgather of packed segments (the
// Van de Geijn algorithm) and the packed-segment ring behind
// AllgatherType's large non-fusable legs. Both move packed blocks
// between ranks through the chunk-streamed ring hop (ringHop), so each
// piece's unpack overlaps the next piece's flight — the chunk pipeline
// stretched across the communicator — and both forward each rank's
// original packed stream verbatim, which keeps overlapping-instance
// destination layouts on the sequential-unpack semantics the staged
// paths define (re-packing a lossy layout at a relay would not).
//
// Scratch discipline: every rank holds at most its subtree block (the
// bcast scatter) plus two segment-sized pooled blocks that the ring
// rotates through — O(n/p) per rank instead of the tree relay's whole
// message, which is the memory argument for scatter+allgather at large
// sizes on top of the bandwidth one.

// packedRing runs the p-1 ring steps that circulate every rank's
// packed segment to every rank. seg(r) returns the packed range of
// relative rank r's segment in [0, n); own is the caller's already
// packed segment (a view of a block the ring must NOT recycle);
// unpack scatters an absolute packed range from a stream block whose
// byte 0 is the range start. rel is the caller's relative rank and abs
// maps relative ranks back to communicator ranks.
func (c *Comm) packedRing(rel int, abs func(int) int, seg func(int) (int64, int64), own buf.Block, unpack func(stream buf.Block, lo, hi int64) error) error {
	p := c.size
	maxSeg := int64(0)
	for r := 0; r < p; r++ {
		if lo, hi := seg(r); hi-lo > maxSeg {
			maxSeg = hi - lo
		}
	}
	right, left := abs((rel+1)%p), abs((rel-1+p)%p)
	spares := []buf.Block{c.transitAlloc(own, maxSeg), c.transitAlloc(own, maxSeg)}
	defer func() {
		for _, s := range spares {
			buf.PutPooled(s)
		}
	}()
	free := spares
	out, outBlk := own, buf.Block{} // outBlk zero: own's storage is not ours to rotate
	for k := 0; k < p-1; k++ {
		recvSeg := (rel - k - 1 + p) % p
		rLo, rHi := seg(recvSeg)
		inBlk := free[0]
		free = free[1:]
		in := inBlk.Slice(0, int(rHi-rLo))
		if err := c.ringHop(out, right, in, left, func(lo, hi int64) error {
			return unpack(in.Slice(int(lo), int(hi-lo)), rLo+lo, rLo+hi)
		}); err != nil {
			return err
		}
		if outBlk.Len() > 0 {
			free = append(free, outBlk)
		}
		out, outBlk = in, inBlk
	}
	return nil
}

// bcastPipelined is the large-message broadcast schedule: the packed
// stream splits into one segment per rank, a binomial scatter places
// each rank's segment (phase 1), and a ring allgather circulates the
// segments while every rank unpacks them into its layout (phase 2).
// Each payload byte crosses the root's memory once and every other
// rank's twice (unpack + forward stream), against the binomial tree's
// ⌈log₂ p⌉ relays of the whole message; the ring hops overlap each
// piece's unpack with the next piece's flight.
func (c *Comm) bcastPipelined(b buf.Block, count int, ty *datatype.Type, root int, plan *datatype.Plan) error {
	n := plan.Bytes()
	p := c.size
	rel := (c.rank - root + p) % p
	abs := func(r int) int { return (r + root) % p }
	segLo := func(r int) int64 { return int64(r) * n / int64(p) }
	seg := func(r int) (int64, int64) { return segLo(r), segLo(r + 1) }
	st := ty.Stats(count)
	// Per-packed-byte costs of the compiled passes, charged
	// proportionally per segment so the whole message prices exactly
	// one gather (at the sender of each block) and one scatter (at
	// each unpacking rank).
	packUnit := c.cache.CompiledGatherCost(b.Region(), c.internal.Region(), st) / float64(n)
	scatterUnit := c.cache.CompiledScatterCost(c.internal.Region(), b.Region(), st) / float64(n)

	myLo, myHi := seg(rel)
	span := subtreeSpan(rel, p)
	var scratch buf.Block // packed segments [rel, rel+span) at non-roots
	if rel != 0 {
		parent := rel &^ (rel & -rel) // clear the lowest set bit
		blockN := segLo(rel+span) - myLo
		scratch = c.transitAlloc(b, blockN)
		defer buf.PutPooled(scratch)
		if err := c.crecv(scratch.Slice(0, int(blockN)), abs(parent)); err != nil {
			return legWrap(abs(parent), "pipeline-scatter", err)
		}
	}
	// Forward subtree blocks to the children, largest subtree first;
	// the root packs each block straight off its layout and overlaps
	// the pack of block k+1 with the flight of block k.
	var pending *Request
	var pendingBlk buf.Block
	pendingPeer := -1
	flush := func() error {
		if pending == nil {
			return nil
		}
		_, err := pending.Wait()
		buf.PutPooled(pendingBlk)
		pending, pendingBlk = nil, buf.Block{}
		if err != nil {
			return legWrap(pendingPeer, "pipeline-scatter", err)
		}
		return nil
	}
	stride := 1
	for stride < span {
		stride <<= 1
	}
	for mask := stride >> 1; mask >= 1; mask >>= 1 {
		child := rel + mask
		if child >= p || mask >= span {
			continue
		}
		childSpan := subtreeSpan(child, p)
		lo, hi := segLo(child), segLo(child+childSpan)
		if rel == 0 {
			blk := c.transitAlloc(b, hi-lo)
			c.clock.Advance(vclock.FromSeconds(packUnit * float64(hi-lo)))
			if err := plan.PackRange(b, blk.Slice(0, int(hi-lo)), lo, hi); err != nil {
				buf.PutPooled(blk)
				return err
			}
			req, err := c.cisend(blk.Slice(0, int(hi-lo)), abs(child), collTag)
			if err != nil {
				buf.PutPooled(blk)
				return legWrap(abs(child), "pipeline-scatter", err)
			}
			if err := flush(); err != nil {
				return err
			}
			pending, pendingBlk, pendingPeer = req, blk, abs(child)
			continue
		}
		if err := c.csend(scratch.Slice(int(lo-myLo), int(hi-lo)), abs(child)); err != nil {
			return legWrap(abs(child), "pipeline-scatter", err)
		}
	}
	if err := flush(); err != nil {
		return err
	}

	unpack := func(stream buf.Block, lo, hi int64) error {
		c.clock.Advance(vclock.FromSeconds(scatterUnit * float64(hi-lo)))
		if err := plan.UnpackRange(stream, b, lo, hi); err != nil {
			return err
		}
		datatype.RecordStagedTransfer(hi - lo)
		return nil
	}

	// Phase 2: ring allgather of the packed segments. Each rank's step-0
	// contribution is its own segment — the root packs it fresh, every
	// other rank reuses the packed bytes it just received (and unpacks
	// them into its layout before the ring starts).
	var own buf.Block
	var ownBlk buf.Block
	if rel == 0 {
		ownBlk = c.transitAlloc(b, myHi-myLo)
		defer buf.PutPooled(ownBlk)
		c.clock.Advance(vclock.FromSeconds(packUnit * float64(myHi-myLo)))
		if err := plan.PackRange(b, ownBlk.Slice(0, int(myHi-myLo)), myLo, myHi); err != nil {
			return err
		}
		own = ownBlk.Slice(0, int(myHi-myLo))
	} else {
		own = scratch.Slice(0, int(myHi-myLo))
		if err := unpack(own, myLo, myHi); err != nil {
			return err
		}
	}
	ringUnpack := unpack
	if rel == 0 {
		// The root already holds every byte (the segments originated
		// from its buffer); it joins the ring purely to forward packed
		// blocks, so its unpack stage is a no-op — each payload byte
		// crosses the root's memory once, in the initial packs.
		ringUnpack = func(buf.Block, int64, int64) error { return nil }
	}
	return c.packedRing(rel, abs, seg, own, ringUnpack)
}

// allgatherPipelined is the packed-segment ring behind AllgatherType's
// large legs when the slot layout cannot take a fused one-pass scatter
// (overlapping repeated instances — the extent-resized halo slots):
// instead of staging a pack+unpack at every hop, each rank packs its
// contribution once and the ring forwards the packed slots verbatim,
// each hop unpacking the received slot into its layout with the
// chunk-streamed overlap of ringHop. The slot self-copy has already
// run; slot r of recv carries rank r's contribution on return.
func (c *Comm) allgatherPipelined(send buf.Block, sendCount int, sendTy *datatype.Type, recv buf.Block, recvCount int, recvTy *datatype.Type, sp, rp *datatype.Plan) error {
	n := sp.Bytes()
	sst := sendTy.Stats(sendCount)
	rst := recvTy.Stats(recvCount)
	packCost := c.cache.CompiledGatherCost(send.Region(), c.internal.Region(), sst)
	scatterUnit := c.cache.CompiledScatterCost(c.internal.Region(), recv.Region(), rst) / float64(n)

	ownBlk := c.transitAlloc(send, n)
	defer buf.PutPooled(ownBlk)
	c.clock.Advance(vclock.FromSeconds(packCost))
	if err := sp.PackRange(send, ownBlk.Slice(0, int(n)), 0, n); err != nil {
		return err
	}

	// Every slot is one full packed segment of a virtual concatenated
	// stream: segment r is slot r's packed bytes at [r*n, (r+1)*n).
	// The ring delivers segment (rank-k-1) at step k, so the absolute
	// range identifies which receive slot a piece scatters into.
	seg := func(r int) (int64, int64) { return int64(r) * n, int64(r+1) * n }
	abs := func(r int) int { return r }
	return c.packedRing(c.rank, abs, seg, ownBlk.Slice(0, int(n)), func(stream buf.Block, lo, hi int64) error {
		src := int(lo / n)
		view, err := collSlotView(recv, collSlotOff(src, recvCount, recvTy), recvCount, recvTy, "allgather")
		if err != nil {
			return err
		}
		sLo, sHi := lo-int64(src)*n, hi-int64(src)*n
		c.clock.Advance(vclock.FromSeconds(scatterUnit * float64(sHi-sLo)))
		if err := rp.UnpackRange(stream, view, sLo, sHi); err != nil {
			return err
		}
		datatype.RecordStagedTransfer(sHi - sLo)
		return nil
	})
}
