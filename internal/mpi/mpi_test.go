package mpi

import (
	"errors"
	"testing"
	"time"

	"repro/internal/buf"
	"repro/internal/datatype"
	"repro/internal/perfmodel"
)

// run2 runs a two-rank job with the generic profile and a watchdog.
func run2(t *testing.T, body func(c *Comm) error) {
	t.Helper()
	err := Run(2, Options{WallLimit: 30 * time.Second}, body)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := Run(0, Options{}, func(*Comm) error { return nil }); err == nil {
		t.Fatal("zero-size world accepted")
	}
}

func TestRankAndSize(t *testing.T) {
	seen := make([]bool, 4)
	err := Run(4, Options{WallLimit: 10 * time.Second}, func(c *Comm) error {
		if c.Size() != 4 {
			t.Errorf("size = %d", c.Size())
		}
		seen[c.Rank()] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, ok := range seen {
		if !ok {
			t.Fatalf("rank %d never ran", r)
		}
	}
}

func TestSendRecvSmall(t *testing.T) {
	run2(t, func(c *Comm) error {
		const n = 1024
		if c.Rank() == 0 {
			b := buf.Alloc(n)
			b.FillPattern(42)
			return c.Send(b, 1, 7)
		}
		b := buf.Alloc(n)
		st, err := c.Recv(b, 0, 7)
		if err != nil {
			return err
		}
		if st.Source != 0 || st.Tag != 7 || st.Count != n {
			t.Errorf("status = %+v", st)
		}
		return b.VerifyPattern(42)
	})
}

func TestSendRecvLargeRendezvous(t *testing.T) {
	run2(t, func(c *Comm) error {
		n := int(c.Profile().EagerLimit) * 4
		if c.Rank() == 0 {
			b := buf.Alloc(n)
			b.FillPattern(3)
			if err := c.Send(b, 1, 0); err != nil {
				return err
			}
			if got := c.Counters().RendezvousSends; got != 1 {
				t.Errorf("rendezvous sends = %d, want 1", got)
			}
			return nil
		}
		b := buf.Alloc(n)
		if _, err := c.Recv(b, 0, 0); err != nil {
			return err
		}
		return b.VerifyPattern(3)
	})
}

func TestEagerProtocolSelected(t *testing.T) {
	run2(t, func(c *Comm) error {
		n := int(c.Profile().EagerLimit) / 2
		if c.Rank() == 0 {
			b := buf.Alloc(n)
			if err := c.Send(b, 1, 0); err != nil {
				return err
			}
			cnt := c.Counters()
			if cnt.EagerSends != 1 || cnt.RendezvousSends != 0 {
				t.Errorf("counters = %+v", cnt)
			}
			return nil
		}
		_, err := c.Recv(buf.Alloc(n), 0, 0)
		return err
	})
}

func TestSendBufferReusableAfterEagerSend(t *testing.T) {
	// Eager semantics: the sender may overwrite its buffer right after
	// Send returns without corrupting the message.
	run2(t, func(c *Comm) error {
		const n = 256
		if c.Rank() == 0 {
			b := buf.Alloc(n)
			b.FillPattern(9)
			if err := c.Send(b, 1, 0); err != nil {
				return err
			}
			b.FillPattern(77) // scribble
			return c.Send(b, 1, 1)
		}
		b := buf.Alloc(n)
		if _, err := c.Recv(b, 0, 0); err != nil {
			return err
		}
		if err := b.VerifyPattern(9); err != nil {
			t.Errorf("first message corrupted by sender reuse: %v", err)
		}
		_, err := c.Recv(b, 0, 1)
		return err
	})
}

func TestMessageOrderingSameTag(t *testing.T) {
	run2(t, func(c *Comm) error {
		const k = 8
		if c.Rank() == 0 {
			for i := 0; i < k; i++ {
				b := buf.Alloc(64)
				b.FillPattern(byte(i))
				if err := c.Send(b, 1, 5); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < k; i++ {
			b := buf.Alloc(64)
			if _, err := c.Recv(b, 0, 5); err != nil {
				return err
			}
			if err := b.VerifyPattern(byte(i)); err != nil {
				t.Errorf("message %d out of order: %v", i, err)
			}
		}
		return nil
	})
}

func TestTagSelectivity(t *testing.T) {
	run2(t, func(c *Comm) error {
		if c.Rank() == 0 {
			a := buf.Alloc(8)
			a.FillPattern(1)
			bb := buf.Alloc(8)
			bb.FillPattern(2)
			if err := c.Send(a, 1, 10); err != nil {
				return err
			}
			return c.Send(bb, 1, 20)
		}
		// Receive tag 20 first although tag 10 arrived first.
		b := buf.Alloc(8)
		if _, err := c.Recv(b, 0, 20); err != nil {
			return err
		}
		if err := b.VerifyPattern(2); err != nil {
			return err
		}
		if _, err := c.Recv(b, 0, 10); err != nil {
			return err
		}
		return b.VerifyPattern(1)
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	run2(t, func(c *Comm) error {
		if c.Rank() == 0 {
			b := buf.Alloc(32)
			b.FillPattern(5)
			return c.Send(b, 1, 3)
		}
		b := buf.Alloc(32)
		st, err := c.Recv(b, AnySource, AnyTag)
		if err != nil {
			return err
		}
		if st.Source != 0 || st.Tag != 3 {
			t.Errorf("wildcard status = %+v", st)
		}
		return b.VerifyPattern(5)
	})
}

func TestRecvTruncation(t *testing.T) {
	run2(t, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(buf.Alloc(128), 1, 0)
		}
		_, err := c.Recv(buf.Alloc(64), 0, 0)
		if !errors.Is(err, ErrTruncate) {
			t.Errorf("err = %v, want ErrTruncate", err)
		}
		return nil
	})
}

func TestInvalidRankAndTag(t *testing.T) {
	run2(t, func(c *Comm) error {
		if err := c.Send(buf.Alloc(1), 99, 0); !errors.Is(err, ErrRank) {
			t.Errorf("bad rank err = %v", err)
		}
		if err := c.Send(buf.Alloc(1), 0, -3); !errors.Is(err, ErrTag) {
			t.Errorf("bad tag err = %v", err)
		}
		return nil
	})
}

func TestSendTypeVector(t *testing.T) {
	run2(t, func(c *Comm) error {
		ty := mustVec(t, 100, 1, 2)
		if c.Rank() == 0 {
			src := buf.Alloc(int(ty.Extent()))
			src.FillPattern(13)
			return c.SendType(src, 1, ty, 1, 0)
		}
		// Contiguous receive of the packed payload, like the paper's
		// target process (§3.2).
		dst := buf.Alloc(int(ty.Size()))
		st, err := c.Recv(dst, 0, 0)
		if err != nil {
			return err
		}
		if st.Count != ty.Size() {
			t.Errorf("count = %d, want %d", st.Count, ty.Size())
		}
		// Verify against a local pack of the same pattern.
		src := buf.Alloc(int(ty.Extent()))
		src.FillPattern(13)
		want := buf.Alloc(int(ty.Size()))
		if _, err := ty.Pack(src, 1, want); err != nil {
			return err
		}
		if !buf.Equal(dst, want) {
			t.Error("typed payload differs from local pack")
		}
		return nil
	})
}

func TestSendTypeLargeChunked(t *testing.T) {
	run2(t, func(c *Comm) error {
		count := int(c.Profile().EagerLimit) // bytes*? ensure > eager limit after packing
		ty := mustVec(t, count, 1, 2)        // count*8 bytes payload
		if c.Rank() == 0 {
			src := buf.Alloc(int(ty.Extent()))
			src.FillPattern(29)
			return c.SendType(src, 1, ty, 1, 0)
		}
		dst := buf.Alloc(int(ty.Size()))
		if _, err := c.Recv(dst, 0, 0); err != nil {
			return err
		}
		src := buf.Alloc(int(ty.Extent()))
		src.FillPattern(29)
		want := buf.Alloc(int(ty.Size()))
		if _, err := ty.Pack(src, 1, want); err != nil {
			return err
		}
		if !buf.Equal(dst, want) {
			t.Error("chunked typed payload differs")
		}
		return nil
	})
}

func TestRecvTypeScatters(t *testing.T) {
	run2(t, func(c *Comm) error {
		ty := mustVec(t, 64, 1, 2)
		if c.Rank() == 0 {
			packed := buf.Alloc(int(ty.Size()))
			packed.FillPattern(17)
			return c.Send(packed, 1, 0)
		}
		dst := buf.Alloc(int(ty.Extent()))
		if _, err := c.RecvType(dst, 1, ty, 0, 0); err != nil {
			return err
		}
		// Re-pack locally; must reproduce the wire payload.
		got := buf.Alloc(int(ty.Size()))
		if _, err := ty.Pack(dst, 1, got); err != nil {
			return err
		}
		want := buf.Alloc(int(ty.Size()))
		want.FillPattern(17)
		if !buf.Equal(got, want) {
			t.Error("typed receive scattered wrong bytes")
		}
		return nil
	})
}

func TestSsendForcesRendezvous(t *testing.T) {
	run2(t, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Ssend(buf.Alloc(16), 1, 0); err != nil {
				return err
			}
			if got := c.Counters().RendezvousSends; got != 1 {
				t.Errorf("Ssend used protocol other than rendezvous: %+v", c.Counters())
			}
			return nil
		}
		_, err := c.Recv(buf.Alloc(16), 0, 0)
		return err
	})
}

func TestVirtualPayloadTransfersCounted(t *testing.T) {
	run2(t, func(c *Comm) error {
		const n = 1 << 28 // 256 MB, never materialised
		if c.Rank() == 0 {
			return c.Send(buf.Virtual(n), 1, 0)
		}
		st, err := c.Recv(buf.Virtual(n), 0, 0)
		if err != nil {
			return err
		}
		if st.Count != n {
			t.Errorf("count = %d", st.Count)
		}
		if c.Wtime() <= 0 {
			t.Error("virtual transfer advanced no time")
		}
		return nil
	})
}

func TestPingPongDeterministic(t *testing.T) {
	times := make([]float64, 2)
	for trial := 0; trial < 2; trial++ {
		var measured float64
		err := Run(2, Options{WallLimit: 10 * time.Second}, func(c *Comm) error {
			const n = 1 << 20
			b := buf.Alloc(n)
			pong := buf.Alloc(0)
			if c.Rank() == 0 {
				start := c.Wtime()
				for i := 0; i < 5; i++ {
					if err := c.Send(b, 1, 0); err != nil {
						return err
					}
					if _, err := c.Recv(pong, 1, 1); err != nil {
						return err
					}
				}
				measured = c.Wtime() - start
				return nil
			}
			for i := 0; i < 5; i++ {
				if _, err := c.Recv(b, 0, 0); err != nil {
					return err
				}
				if err := c.Send(pong, 0, 1); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		times[trial] = measured
	}
	if times[0] != times[1] {
		t.Fatalf("virtual time not deterministic: %v vs %v", times[0], times[1])
	}
	if times[0] <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestWtimeRealTimeMode(t *testing.T) {
	err := Run(2, Options{RealTime: true, WallLimit: 10 * time.Second}, func(c *Comm) error {
		if c.Rank() == 0 {
			start := c.Wtime()
			if err := c.Send(buf.Alloc(1024), 1, 0); err != nil {
				return err
			}
			if c.Wtime() < start {
				t.Error("real time ran backwards")
			}
			return nil
		}
		_, err := c.Recv(buf.Alloc(1024), 0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankPanicIsReported(t *testing.T) {
	err := Run(1, Options{WallLimit: 10 * time.Second}, func(c *Comm) error {
		panic("boom")
	})
	if err == nil {
		t.Fatal("panic swallowed")
	}
}

func TestWatchdogFiresOnDeadlock(t *testing.T) {
	err := Run(2, Options{WallLimit: 200 * time.Millisecond}, func(c *Comm) error {
		if c.Rank() == 0 {
			_, err := c.Recv(buf.Alloc(1), 1, 0) // never sent
			return err
		}
		return nil
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func mustVec(t *testing.T, count, blocklen, stride int) *datatype.Type {
	t.Helper()
	ty, err := datatype.Vector(count, blocklen, stride, datatype.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if err := ty.Commit(); err != nil {
		t.Fatal(err)
	}
	return ty
}

func TestProfilesAllRunPingPong(t *testing.T) {
	for _, name := range perfmodel.Names() {
		p, err := perfmodel.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		err = Run(2, Options{Profile: p, WallLimit: 10 * time.Second}, func(c *Comm) error {
			b := buf.Alloc(4096)
			if c.Rank() == 0 {
				if err := c.Send(b, 1, 0); err != nil {
					return err
				}
				_, err := c.Recv(buf.Alloc(0), 1, 1)
				return err
			}
			if _, err := c.Recv(b, 0, 0); err != nil {
				return err
			}
			return c.Send(buf.Alloc(0), 0, 1)
		})
		if err != nil {
			t.Errorf("profile %s: %v", name, err)
		}
	}
}
