package mpi

import (
	"fmt"

	"repro/internal/buf"
	"repro/internal/datatype"
	"repro/internal/vclock"
)

// Pack gathers count instances of a datatype from b into outbuf
// starting at *position, advancing *position — the signature shape of
// MPI_Pack. One call costs one PackCallOverhead plus the gather loop,
// which is why packing a whole vector datatype (packing(v)) costs the
// same as a manual copy (§4.3) while packing element by element
// (packing(e)) drowns in call overhead (§2.6).
func (c *Comm) Pack(b buf.Block, count int, ty *datatype.Type, outbuf buf.Block, position *int64) error {
	if count < 0 {
		return fmt.Errorf("%w: %d", ErrCount, count)
	}
	need := ty.PackSize(count)
	if *position < 0 || *position+need > int64(outbuf.Len()) {
		return fmt.Errorf("%w: pack of %d bytes at position %d into %d-byte buffer",
			datatype.ErrTruncate, need, *position, outbuf.Len())
	}
	dst := outbuf.Slice(int(*position), int(need))
	st := ty.Stats(count)
	cost := c.prof.PackCallOverhead + c.cache.GatherCost(b.Region(), outbuf.Region(), st)
	c.clock.Advance(vclock.FromSeconds(cost))
	if _, err := ty.Pack(b, count, dst); err != nil {
		return err
	}
	*position += need
	return nil
}

// Unpack is the inverse of Pack, like MPI_Unpack.
func (c *Comm) Unpack(inbuf buf.Block, position *int64, b buf.Block, count int, ty *datatype.Type) error {
	if count < 0 {
		return fmt.Errorf("%w: %d", ErrCount, count)
	}
	need := ty.PackSize(count)
	if *position < 0 || *position+need > int64(inbuf.Len()) {
		return fmt.Errorf("%w: unpack of %d bytes at position %d from %d-byte buffer",
			datatype.ErrTruncate, need, *position, inbuf.Len())
	}
	src := inbuf.Slice(int(*position), int(need))
	st := ty.Stats(count)
	cost := c.prof.PackCallOverhead + c.cache.ScatterCost(inbuf.Region(), b.Region(), st)
	c.clock.Advance(vclock.FromSeconds(cost))
	if _, err := ty.Unpack(src, count, b); err != nil {
		return err
	}
	*position += need
	return nil
}

// PackSize returns the buffer space needed to pack count instances,
// like MPI_Pack_size (without implementation slack).
func (c *Comm) PackSize(count int, ty *datatype.Type) int64 {
	return ty.PackSize(count)
}

// PackCompiled is Pack through the compiled pack-plan engine: the same
// gather, executed by the plan's specialized kernel instead of generic
// interpretation, and priced with the amortised per-segment
// bookkeeping of memsim.CompiledGatherCost. This is the "packing(c)"
// scheme of the figures.
func (c *Comm) PackCompiled(b buf.Block, count int, ty *datatype.Type, outbuf buf.Block, position *int64) error {
	if count < 0 {
		return fmt.Errorf("%w: %d", ErrCount, count)
	}
	need := ty.PackSize(count)
	if *position < 0 || *position+need > int64(outbuf.Len()) {
		return fmt.Errorf("%w: pack of %d bytes at position %d into %d-byte buffer",
			datatype.ErrTruncate, need, *position, outbuf.Len())
	}
	dst := outbuf.Slice(int(*position), int(need))
	plan, err := ty.CompilePlan(count)
	if err != nil {
		return err
	}
	st := ty.Stats(count)
	cost := c.prof.PackCallOverhead + c.cache.CompiledGatherCost(b.Region(), outbuf.Region(), st)
	c.clock.Advance(vclock.FromSeconds(cost))
	if _, err := plan.Pack(b, dst); err != nil {
		return err
	}
	*position += need
	return nil
}

// UnpackCompiled is the scatter-side mirror of PackCompiled.
func (c *Comm) UnpackCompiled(inbuf buf.Block, position *int64, b buf.Block, count int, ty *datatype.Type) error {
	if count < 0 {
		return fmt.Errorf("%w: %d", ErrCount, count)
	}
	need := ty.PackSize(count)
	if *position < 0 || *position+need > int64(inbuf.Len()) {
		return fmt.Errorf("%w: unpack of %d bytes at position %d from %d-byte buffer",
			datatype.ErrTruncate, need, *position, inbuf.Len())
	}
	src := inbuf.Slice(int(*position), int(need))
	plan, err := ty.CompilePlan(count)
	if err != nil {
		return err
	}
	st := ty.Stats(count)
	cost := c.prof.PackCallOverhead + c.cache.CompiledScatterCost(inbuf.Region(), b.Region(), st)
	c.clock.Advance(vclock.FromSeconds(cost))
	if _, err := plan.Unpack(src, b); err != nil {
		return err
	}
	*position += need
	return nil
}
