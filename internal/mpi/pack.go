package mpi

import (
	"fmt"

	"repro/internal/buf"
	"repro/internal/datatype"
	"repro/internal/layout"
	"repro/internal/vclock"
)

// packWindow validates the preamble shared by every explicit
// pack/unpack entry point — non-negative count, the packed byte count,
// and the position window inside the packed buffer — and returns the
// window as a sub-block. op names the operation for the error text.
func packWindow(count int, ty *datatype.Type, packed buf.Block, position *int64, op string) (buf.Block, int64, error) {
	if count < 0 {
		return buf.Block{}, 0, fmt.Errorf("%w: %d", ErrCount, count)
	}
	need := ty.PackSize(count)
	if *position < 0 || *position+need > int64(packed.Len()) {
		return buf.Block{}, 0, fmt.Errorf("%w: %s of %d bytes at position %d in %d-byte buffer",
			datatype.ErrTruncate, op, need, *position, packed.Len())
	}
	return packed.Slice(int(*position), int(need)), need, nil
}

// Pack gathers count instances of a datatype from b into outbuf
// starting at *position, advancing *position — the signature shape of
// MPI_Pack. One call costs one PackCallOverhead plus the gather loop,
// which is why packing a whole vector datatype (packing(v)) costs the
// same as a manual copy (§4.3) while packing element by element
// (packing(e)) drowns in call overhead (§2.6).
func (c *Comm) Pack(b buf.Block, count int, ty *datatype.Type, outbuf buf.Block, position *int64) error {
	dst, need, err := packWindow(count, ty, outbuf, position, "pack")
	if err != nil {
		return err
	}
	st := ty.Stats(count)
	cost := c.prof.PackCallOverhead + c.cache.GatherCost(b.Region(), outbuf.Region(), st)
	c.clock.Advance(vclock.FromSeconds(cost))
	if _, err := ty.Pack(b, count, dst); err != nil {
		return err
	}
	*position += need
	return nil
}

// Unpack is the inverse of Pack, like MPI_Unpack.
func (c *Comm) Unpack(inbuf buf.Block, position *int64, b buf.Block, count int, ty *datatype.Type) error {
	src, need, err := packWindow(count, ty, inbuf, position, "unpack")
	if err != nil {
		return err
	}
	st := ty.Stats(count)
	cost := c.prof.PackCallOverhead + c.cache.ScatterCost(inbuf.Region(), b.Region(), st)
	c.clock.Advance(vclock.FromSeconds(cost))
	if _, err := ty.Unpack(src, count, b); err != nil {
		return err
	}
	*position += need
	return nil
}

// PackSize returns the buffer space needed to pack count instances,
// like MPI_Pack_size (without implementation slack).
func (c *Comm) PackSize(count int, ty *datatype.Type) int64 {
	return ty.PackSize(count)
}

// PackCompiled is Pack through the compiled pack-plan engine: the same
// gather, executed by the plan's specialized kernel instead of generic
// interpretation. The plan comes from the type's cache (compiled at
// Commit, bound per count on first use), so steady-state calls compile
// nothing. Pricing uses the amortised per-segment bookkeeping of
// memsim.CompiledGatherCost — or its parallel-pack term when the plan
// splits across goroutines. This is the "packing(c)" scheme of the
// figures.
func (c *Comm) PackCompiled(b buf.Block, count int, ty *datatype.Type, outbuf buf.Block, position *int64) error {
	dst, need, err := packWindow(count, ty, outbuf, position, "pack")
	if err != nil {
		return err
	}
	plan, err := ty.CompilePlan(count)
	if err != nil {
		return err
	}
	st := ty.Stats(count)
	gather := c.planGatherCost(plan, b.Region(), outbuf.Region(), st)
	c.clock.Advance(vclock.FromSeconds(c.prof.PackCallOverhead + gather))
	if _, err := plan.Pack(b, dst); err != nil {
		return err
	}
	*position += need
	return nil
}

// UnpackCompiled is the scatter-side mirror of PackCompiled.
func (c *Comm) UnpackCompiled(inbuf buf.Block, position *int64, b buf.Block, count int, ty *datatype.Type) error {
	src, need, err := packWindow(count, ty, inbuf, position, "unpack")
	if err != nil {
		return err
	}
	plan, err := ty.CompilePlan(count)
	if err != nil {
		return err
	}
	st := ty.Stats(count)
	scatter := c.planScatterCost(plan, inbuf.Region(), b.Region(), st)
	c.clock.Advance(vclock.FromSeconds(c.prof.PackCallOverhead + scatter))
	if _, err := plan.Unpack(src, b); err != nil {
		return err
	}
	*position += need
	return nil
}

// planGatherCost prices the compiled gather behind plan. A plan whose
// program the Commit-time normalizer collapsed into a canonical
// strided-block form (datatype.KernelBlock) runs the registry's
// unrolled tiles, so it is priced with the further-amortised normalized
// term; every other program prices at the generic compiled term. Both
// choices are parallel-pack aware.
func (c *Comm) planGatherCost(plan *datatype.Plan, src, dst buf.Region, st layout.Stats) float64 {
	norm := plan.Kernel() == datatype.KernelBlock
	if w := plan.Workers(); w > 1 {
		if norm {
			return c.cache.ParallelNormalizedGatherCost(src, dst, st, w)
		}
		return c.cache.ParallelCompiledGatherCost(src, dst, st, w)
	}
	if norm {
		return c.cache.NormalizedGatherCost(src, dst, st)
	}
	return c.cache.CompiledGatherCost(src, dst, st)
}

// planScatterCost is the scatter-side mirror of planGatherCost.
func (c *Comm) planScatterCost(plan *datatype.Plan, src, dst buf.Region, st layout.Stats) float64 {
	norm := plan.Kernel() == datatype.KernelBlock
	if w := plan.Workers(); w > 1 {
		if norm {
			return c.cache.ParallelNormalizedScatterCost(src, dst, st, w)
		}
		return c.cache.ParallelCompiledScatterCost(src, dst, st, w)
	}
	if norm {
		return c.cache.NormalizedScatterCost(src, dst, st)
	}
	return c.cache.CompiledScatterCost(src, dst, st)
}
