package mpi

import (
	"testing"

	"repro/internal/buf"
	"repro/internal/datatype"
)

// TestTransitBuffersRecycled pins the pooled-transit contract: across
// repeated eager sends and rendezvous typed receives, the transit and
// staging blocks cycle through the buf pool (hits accumulate) and the
// payloads stay byte-correct.
func TestTransitBuffersRecycled(t *testing.T) {
	before := buf.PoolStatsSnapshot()
	const reps = 20
	err := Run(2, Options{}, func(c *Comm) error {
		ty, err := datatype.Vector(512, 1, 2, datatype.Float64)
		if err != nil {
			return err
		}
		if err := ty.Commit(); err != nil {
			return err
		}
		for rep := 0; rep < reps; rep++ {
			if c.Rank() == 0 {
				// Eager contiguous (pooled transit copy).
				small := buf.Alloc(1 << 10)
				small.FillPattern(byte(rep))
				if err := c.Send(small, 1, 0); err != nil {
					return err
				}
				// Rendezvous typed (pooled staging on the receiver).
				src := buf.Alloc(int(ty.Extent()))
				src.FillPattern(byte(rep + 1))
				if err := c.SsendType(src, 1, ty, 1, 1); err != nil {
					return err
				}
			} else {
				small := buf.Alloc(1 << 10)
				if _, err := c.Recv(small, 0, 0); err != nil {
					return err
				}
				if err := small.VerifyPattern(byte(rep)); err != nil {
					return err
				}
				dst := buf.Alloc(int(ty.Extent()))
				if _, err := c.RecvType(dst, 1, ty, 0, 1); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	d := buf.PoolStatsSnapshot().Sub(before)
	if d.Puts == 0 {
		t.Fatalf("no transit blocks were returned to the pool: %+v", d)
	}
	if d.Hits == 0 {
		t.Fatalf("no transit blocks were recycled across %d reps: %+v", reps, d)
	}
}
