package mpi

import "fmt"

// ProcNull is the neighbour value for "off the edge of a
// non-periodic Cartesian grid", the analogue of MPI_PROC_NULL.
// Communication calls reject it; callers test for it the way MPI
// codes do.
const ProcNull = -2

// Cart is a Cartesian process topology over a communicator, the
// analogue of an MPI_Cart_create communicator. Rank order is row
// major, like MPI's.
type Cart struct {
	comm    *Comm
	dims    []int
	periods []bool
	coords  []int
}

// CartCreate builds a Cartesian topology; the product of dims must
// equal the communicator size. It is collective only in the trivial
// sense (no communication): every rank derives the same mapping.
func (c *Comm) CartCreate(dims []int, periods []bool) (*Cart, error) {
	if len(dims) == 0 || len(periods) != len(dims) {
		return nil, fmt.Errorf("%w: cart dims/periods %d/%d", ErrCount, len(dims), len(periods))
	}
	total := 1
	for d, n := range dims {
		if n <= 0 {
			return nil, fmt.Errorf("%w: cart dim %d = %d", ErrCount, d, n)
		}
		total *= n
	}
	if total != c.size {
		return nil, fmt.Errorf("%w: cart holds %d ranks, communicator has %d", ErrRank, total, c.size)
	}
	ct := &Cart{
		comm:    c,
		dims:    append([]int(nil), dims...),
		periods: append([]bool(nil), periods...),
	}
	ct.coords = ct.coordsOf(c.rank)
	return ct, nil
}

// Comm returns the underlying communicator.
func (ct *Cart) Comm() *Comm { return ct.comm }

// Dims returns the grid shape.
func (ct *Cart) Dims() []int { return append([]int(nil), ct.dims...) }

// Coords returns the calling rank's grid coordinates
// (MPI_Cart_coords for the own rank).
func (ct *Cart) Coords() []int { return append([]int(nil), ct.coords...) }

// coordsOf converts a rank to row-major coordinates.
func (ct *Cart) coordsOf(rank int) []int {
	coords := make([]int, len(ct.dims))
	for d := len(ct.dims) - 1; d >= 0; d-- {
		coords[d] = rank % ct.dims[d]
		rank /= ct.dims[d]
	}
	return coords
}

// Rank converts grid coordinates to a rank (MPI_Cart_rank). Periodic
// dimensions wrap; out-of-range coordinates on non-periodic dimensions
// return ProcNull.
func (ct *Cart) Rank(coords []int) (int, error) {
	if len(coords) != len(ct.dims) {
		return ProcNull, fmt.Errorf("%w: %d coords for %d dims", ErrCount, len(coords), len(ct.dims))
	}
	rank := 0
	for d, x := range coords {
		n := ct.dims[d]
		if ct.periods[d] {
			x = ((x % n) + n) % n
		} else if x < 0 || x >= n {
			return ProcNull, nil
		}
		rank = rank*n + x
	}
	return rank, nil
}

// Shift returns the source and destination ranks of a displacement
// along one dimension, like MPI_Cart_shift: a receive from src and a
// send to dst moves data in the +disp direction. Either may be
// ProcNull at a non-periodic edge.
func (ct *Cart) Shift(dim, disp int) (src, dst int, err error) {
	if dim < 0 || dim >= len(ct.dims) {
		return ProcNull, ProcNull, fmt.Errorf("%w: cart dim %d of %d", ErrCount, dim, len(ct.dims))
	}
	up := append([]int(nil), ct.coords...)
	up[dim] += disp
	down := append([]int(nil), ct.coords...)
	down[dim] -= disp
	dst, err = ct.Rank(up)
	if err != nil {
		return ProcNull, ProcNull, err
	}
	src, err = ct.Rank(down)
	if err != nil {
		return ProcNull, ProcNull, err
	}
	return src, dst, nil
}

// DimsCreate factors size into ndims balanced dimensions, largest
// first, like MPI_Dims_create with all-zero input.
func DimsCreate(size, ndims int) ([]int, error) {
	if size <= 0 || ndims <= 0 {
		return nil, fmt.Errorf("%w: DimsCreate(%d, %d)", ErrCount, size, ndims)
	}
	dims := make([]int, ndims)
	for i := range dims {
		dims[i] = 1
	}
	// Collect the prime factors, then assign them largest-first onto
	// the currently smallest dimension — the balanced decomposition
	// MPI_Dims_create produces (12 over 2 dims → 4×3, not 6×2).
	var factors []int
	n := size
	for f := 2; f*f <= n; f++ {
		for n%f == 0 {
			factors = append(factors, f)
			n /= f
		}
	}
	if n > 1 {
		factors = append(factors, n)
	}
	for i := len(factors) - 1; i >= 0; i-- {
		smallestIdx := 0
		for j := 1; j < ndims; j++ {
			if dims[j] < dims[smallestIdx] {
				smallestIdx = j
			}
		}
		dims[smallestIdx] *= factors[i]
	}
	// Largest first, MPI convention.
	for i := 0; i < ndims; i++ {
		for j := i + 1; j < ndims; j++ {
			if dims[j] > dims[i] {
				dims[i], dims[j] = dims[j], dims[i]
			}
		}
	}
	return dims, nil
}
