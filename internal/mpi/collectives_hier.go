package mpi

import (
	"repro/internal/buf"
	"repro/internal/datatype"
)

// Two-level collective topologies for hierarchical machines. When the
// profile declares a node granularity (memsim.Hierarchy.NodeSize) and
// an intra-node latency discount (perfmodel.Profile.IntraNodeLatency),
// the typed broadcast and allgather switch from their flat schedules
// to node-aware ones:
//
//   - bcastTwoLevel: a binomial tree spanning one leader per node
//     (wire hops), then each leader fans the payload to its node-local
//     members over the cheap intra-node links. The root acts as its
//     own node's leader, so the payload enters the leader tree with no
//     staging hop.
//   - allgatherTwoLevel: members gather their contributions to the
//     node leader (intra-node), the leaders run the ring exchanging
//     whole node slot-blocks (each block is the node's contiguous run
//     of rank slots, so it travels as one typed leg), and each leader
//     fans the fully gathered buffer back to its members. The ring
//     crosses the wire ⌈p/NodeSize⌉−1 times per block instead of p−1.
//
// Every leg rides the same collSend/collRecv engines as the flat
// schedules, so the payload bytes that land are identical — only the
// routing changes. The allgather block exchange additionally needs
// each node's communicator ranks to be one consecutive run (so its
// slots form one contiguous typed view); scattered Split communicators
// fall back to the flat ring.

// nodeGroups is a communicator's membership grouped by machine node,
// groups ordered by their lowest communicator rank.
type nodeGroups struct {
	groups [][]int // comm ranks per node, ascending
	index  []int   // group index per comm rank
	contig bool    // every group is one consecutive run of comm ranks
}

// twoLevel returns the node grouping when the two-level topologies
// apply: a node granularity is declared, the intra-node discount
// exists (otherwise the hierarchy buys nothing), the communicator
// spans at least two nodes, and at least one node holds more than one
// member (all-singleton grouping is the flat topology already).
func (c *Comm) twoLevel() *nodeGroups {
	if c.nodeSize() == 0 || c.prof.IntraNodeLatency <= 0 || c.size <= 2 {
		return nil
	}
	g := &nodeGroups{index: make([]int, c.size), contig: true}
	byNode := make(map[int]int)
	multi := false
	for r := 0; r < c.size; r++ {
		node := c.nodeOf(r)
		gi, ok := byNode[node]
		if !ok {
			gi = len(g.groups)
			byNode[node] = gi
			g.groups = append(g.groups, nil)
		} else {
			multi = true
			if last := g.groups[gi][len(g.groups[gi])-1]; last != r-1 {
				g.contig = false
			}
		}
		g.groups[gi] = append(g.groups[gi], r)
		g.index[r] = gi
	}
	if len(g.groups) < 2 || !multi {
		return nil
	}
	return g
}

// bcastTwoLevel relays count instances of ty from root over the
// leader tree plus intra-node fans. The caller has validated the plan
// and handled size==1.
func (c *Comm) bcastTwoLevel(b buf.Block, count int, ty *datatype.Type, root int, g *nodeGroups) error {
	rootGrp := g.index[root]
	leader := func(gi int) int {
		if gi == rootGrp {
			return root
		}
		return g.groups[gi][0]
	}
	myGrp := g.index[c.rank]
	myLeader := leader(myGrp)
	if c.rank != myLeader {
		return c.collRecv(b, count, ty, myLeader, "intra-fan")
	}
	// Binomial tree over the leaders, rooted at the root's node.
	nL := len(g.groups)
	rel := (myGrp - rootGrp + nL) % nL
	abs := func(r int) int { return leader((r + rootGrp) % nL) }
	mask := 1
	for mask < nL {
		if rel&mask != 0 {
			if err := c.collRecv(b, count, ty, abs(rel-mask), "tree-parent"); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel&mask == 0 && rel+mask < nL {
			if err := c.collSend(b, count, ty, abs(rel+mask), "tree-child"); err != nil {
				return err
			}
		}
		mask >>= 1
	}
	// Intra-node fan to the rest of my node.
	for _, r := range g.groups[myGrp] {
		if r == myLeader {
			continue
		}
		if err := c.collSend(b, count, ty, r, "intra-fan"); err != nil {
			return err
		}
	}
	return nil
}

// allgatherTwoLevel runs the gather-to-leader → leader ring → leader
// fan schedule. The caller has validated every slot, fused the own
// contribution into the own slot, and checked g.contig.
func (c *Comm) allgatherTwoLevel(send buf.Block, sendCount int, sendTy *datatype.Type, recv buf.Block, recvCount int, recvTy *datatype.Type, g *nodeGroups) error {
	myGrp := g.index[c.rank]
	grp := g.groups[myGrp]
	leader := grp[0]
	// The whole gathered surface as one typed view — the leader fans
	// it back in a single leg. Its span equals the last slot's
	// requirement, which the caller validated.
	full, err := collSlotView(recv, 0, c.size*recvCount, recvTy, "allgather")
	if err != nil {
		return err
	}
	if c.rank != leader {
		if err := c.collSend(send, sendCount, sendTy, leader, "intra-gather"); err != nil {
			return err
		}
		return c.collRecv(full, c.size*recvCount, recvTy, leader, "leader-fan")
	}
	// Gather the node's contributions into their rank slots.
	for _, r := range grp {
		if r == leader {
			continue
		}
		view, err := collSlotView(recv, collSlotOff(r, recvCount, recvTy), recvCount, recvTy, "allgather")
		if err != nil {
			return err
		}
		if err := c.collRecv(view, recvCount, recvTy, r, "intra-gather"); err != nil {
			return err
		}
	}
	// Ring over the leaders: step k forwards the node block that
	// originated k hops upstream. Each block is the node's contiguous
	// run of rank slots as one typed view.
	nL := len(g.groups)
	block := func(gi int) (buf.Block, int, error) {
		members := g.groups[gi]
		n := len(members) * recvCount
		v, err := collSlotView(recv, collSlotOff(members[0], recvCount, recvTy), n, recvTy, "allgather")
		return v, n, err
	}
	right := g.groups[(myGrp+1)%nL][0]
	left := g.groups[(myGrp-1+nL)%nL][0]
	blk := myGrp
	for k := 0; k < nL-1; k++ {
		sv, sn, err := block(blk)
		if err != nil {
			return err
		}
		req, err := c.collIsend(sv, sn, recvTy, right, "ring-send")
		if err != nil {
			return err
		}
		blk = (blk - 1 + nL) % nL
		rv, rn, err := block(blk)
		if err != nil {
			return err
		}
		if err := c.collRecv(rv, rn, recvTy, left, "ring-recv"); err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
	}
	// Fan the gathered surface to the rest of my node.
	for _, r := range grp {
		if r == leader {
			continue
		}
		if err := c.collSend(full, c.size*recvCount, recvTy, r, "leader-fan"); err != nil {
			return err
		}
	}
	return nil
}
