package mpi

import (
	"fmt"
	"sync"

	"repro/internal/buf"
	"repro/internal/vclock"
)

// BsendOverheadBytes is the per-message bookkeeping space MPI reserves
// inside an attached buffer, the analogue of MPI_BSEND_OVERHEAD.
const BsendOverheadBytes = 64

// bsendPool manages the buffer attached with BufferAttach. It is a
// simple region allocator: reservations carve the buffer front to
// back; a reservation is released when the receiver consumes the
// message, and the pool compacts free space lazily. This mirrors the
// ring-like behaviour of real Bsend implementations closely enough for
// the exhaustion semantics the tests exercise.
type bsendPool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	backing buf.Block
	inUse   int64
	pending int
	// lastRelease is the latest virtual time at which a reservation
	// was released; BufferDetach advances the caller past it.
	lastRelease vclock.Time
}

func newBsendPool(b buf.Block) *bsendPool {
	p := &bsendPool{backing: b}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// reserve claims n payload bytes plus overhead, returning a block view
// to pack into. It fails immediately when space is insufficient, like
// MPI_Bsend with a full buffer.
func (p *bsendPool) reserve(n int64) (buf.Block, func(vclock.Time), error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	need := n + BsendOverheadBytes
	if p.inUse+need > int64(p.backing.Len()) {
		return buf.Block{}, nil, fmt.Errorf("%w: need %d bytes, %d free",
			ErrBsendBuffer, need, int64(p.backing.Len())-p.inUse)
	}
	off := p.inUse
	p.inUse += need
	p.pending++
	region := p.backing.Slice(int(off), int(n))
	release := func(at vclock.Time) {
		p.mu.Lock()
		p.inUse -= need
		p.pending--
		if at > p.lastRelease {
			p.lastRelease = at
		}
		p.mu.Unlock()
		p.cond.Broadcast()
	}
	return region, release, nil
}

// drain blocks until every reservation is released, returning the
// latest release time (MPI_Buffer_detach semantics).
func (p *bsendPool) drain() vclock.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.pending > 0 {
		p.cond.Wait()
	}
	return p.lastRelease
}

// BufferAttach hands MPI a user buffer for subsequent Bsend calls,
// like MPI_Buffer_attach. Only one buffer can be attached at a time.
func (c *Comm) BufferAttach(b buf.Block) error {
	if c.attach != nil {
		return fmt.Errorf("%w: a buffer is already attached", ErrBsendBuffer)
	}
	c.attach = newBsendPool(b)
	return nil
}

// BufferDetach removes the attached buffer after all buffered sends
// using it have completed, advancing the clock to the last completion
// like the blocking MPI_Buffer_detach. It returns the buffer.
func (c *Comm) BufferDetach() (buf.Block, error) {
	if c.attach == nil {
		return buf.Block{}, fmt.Errorf("%w: no buffer attached", ErrBsendBuffer)
	}
	last := c.attach.drain()
	c.clock.AdvanceTo(last)
	b := c.attach.backing
	c.attach = nil
	return b, nil
}

// BufferedBytesInUse reports the currently reserved attached-buffer
// bytes, for tests and diagnostics.
func (c *Comm) BufferedBytesInUse() int64 {
	if c.attach == nil {
		return 0
	}
	c.attach.mu.Lock()
	defer c.attach.mu.Unlock()
	return c.attach.inUse
}
