package mpi

import (
	"errors"

	"repro/internal/buf"
	"repro/internal/datatype"
	"repro/internal/simnet"
)

// Selective chunk retransmission (sender half). The chunked rendezvous
// engines cut the packed byte stream into the profile's internal
// chunks; under faults each chunk carries its own checksum, the
// receiver NACKs a bitmap of damaged chunks (simnet.ChunkNack), and
// the sender replays only those — re-packing them through the plan's
// stream offsets — instead of the whole transfer. PR 7's
// whole-transfer replay survives as the fallback for checksum-less
// and single-chunk paths (rdvSendLoop).

// chunkedXfer describes one transfer to the selective engine. The
// packed stream's first covered bytes are cut into chunks pieces of
// chunkSize bytes (last one short). Every closure charges its own
// virtual-clock cost; ranges are packed-stream byte offsets.
type chunkedXfer struct {
	covered   int64
	chunkSize int64
	chunks    int

	// drainAll performs the initial full-transfer copy (the engine's
	// normal drain: serial, pipelined slot ring, or fused scatter).
	drainAll func() error
	// resend re-packs and re-lands stream range [lo,hi) only.
	resend func(lo, hi int64) error
	// sum checksums the SOURCE stream over [lo,hi); false when the
	// attempt is unverifiable (virtual payloads, checksum-less paths).
	sum func(lo, hi int64) (uint64, bool)
	// damage applies a drawn fault's mechanical effect to the landed
	// bytes of [lo,hi); false when it cannot materialise, in which
	// case the chunk travels poisoned.
	damage func(f simnet.Fault, lo, hi int64) bool
}

// rangeOf returns chunk i's packed-stream byte range.
func (x *chunkedXfer) rangeOf(i int) (lo, hi int64) {
	lo = int64(i) * x.chunkSize
	hi = lo + x.chunkSize
	if hi > x.covered {
		hi = x.covered
	}
	return lo, hi
}

// rdvSendSelective drives the sender's attempt loop of a chunked
// rendezvous payload with per-chunk fault draws, per-chunk checksums,
// and bitmap-driven selective replay. The first attempt drains the
// whole transfer through the engine's normal path; each NACKed round
// replays only the damaged chunks and counts them against the fabric's
// retransmission attribution.
func (c *Comm) rdvSendSelective(m *simnet.Message, dest, tag int, n int64, x *chunkedXfer) error {
	pol := c.retry
	attempt := 0
	send := simnet.FullChunkBitmap(x.chunks)
	fail := func(err error) error {
		m.NoteWake()
		m.Done <- simnet.RdvDone{Err: err}
		return err
	}
	for {
		if attempt == 0 {
			if err := x.drainAll(); err != nil {
				return fail(err)
			}
		} else {
			resent := 0
			var resentBytes int64
			for i := 0; i < x.chunks; i++ {
				if !send.Get(i) {
					continue
				}
				lo, hi := x.rangeOf(i)
				if err := x.resend(lo, hi); err != nil {
					return fail(err)
				}
				resent++
				resentBytes += hi - lo
			}
			c.fabric.NoteChunkRetransmit(c.endpoint(c.rank), resent, resentBytes)
		}
		// Per-chunk fault verdicts and checksums for this attempt's
		// chunks. A duplicate fault redelivers the chunk rather than
		// damaging it; the receiver suppresses the extra copy.
		poisoned := simnet.NewChunkBitmap(x.chunks)
		dup := simnet.NewChunkBitmap(x.chunks)
		sums := make([]uint64, x.chunks)
		hasSum := true
		for i := 0; i < x.chunks; i++ {
			if !send.Get(i) {
				continue
			}
			lo, hi := x.rangeOf(i)
			var f simnet.Fault
			if c.faultsOn() {
				f = c.fabric.PayloadChunkFault(c.endpoint(c.rank), c.endpoint(dest), hi-lo)
			}
			if f.Kind == simnet.FaultDuplicate {
				dup.Set(i)
				f = simnet.Fault{}
			}
			if f.NeedsResend() && !x.damage(f, lo, hi) {
				poisoned.Set(i)
			}
			s, ok := x.sum(lo, hi)
			sums[i] = s
			if !ok {
				hasSum = false
			}
		}
		final := m.Ack == nil || attempt >= pol.MaxRetries
		m.NoteWake()
		m.Done <- simnet.RdvDone{
			Arrival: c.clock.Now() + dur(c.linkLatency(dest)),
			Bytes:   n,
			HasSum:  hasSum, Final: final,
			Chunks: x.chunks, ChunkSize: x.chunkSize, Covered: x.covered,
			Sent: send, PoisonedChunks: poisoned, Dup: dup,
			ChunkSums: sums,
		}
		if m.Ack == nil {
			return nil
		}
		ack, werr := c.awaitAck(m, dest, tag)
		if werr != nil {
			return werr
		}
		if ack == nil {
			return nil
		}
		if errors.Is(ack, errPeerGone) {
			return &DeliveryError{Op: "rdv-send", Rank: c.rank, Peer: dest, Tag: tag, Attempts: attempt + 1}
		}
		if final {
			return &IntegrityError{Op: "rdv-send", Rank: c.rank, Peer: dest, Tag: tag, Attempts: attempt + 1}
		}
		var nack *simnet.ChunkNack
		if errors.As(ack, &nack) && nack.Damaged != nil {
			send = nack.Damaged.Clone()
		} else {
			// A legacy whole-transfer NACK: replay everything.
			send = simnet.FullChunkBitmap(x.chunks)
		}
		attempt++
		c.fabric.NoteRetry(c.endpoint(c.rank))
		c.clock.Advance(pol.backoff(attempt))
	}
}

// damageContigRange is damageContig restricted to the landed bytes of
// packed-stream range [lo,hi) of a contiguous destination.
func damageContigRange(dst buf.Block, lo, hi int64, f simnet.Fault) bool {
	if !f.NeedsResend() {
		return true
	}
	if dst.IsVirtual() || hi <= lo || int64(dst.Len()) <= lo {
		return false
	}
	data := dst.Bytes()
	if int64(len(data)) < hi {
		hi = int64(len(data))
	}
	span := hi - lo
	if span <= 0 {
		return false
	}
	switch f.Kind {
	case FaultCorrupt:
		data[lo+f.Offset%span] ^= 0xFF
	case FaultTruncate:
		data[lo+f.Keep%span] ^= 0xFF
	case FaultDrop:
		data[lo] ^= 0xFF
	}
	return true
}

// damagePlanRange is damagePlan restricted to packed-stream range
// [lo,hi) of a plan-described destination layout.
func damagePlanRange(plan *datatype.Plan, user buf.Block, lo, hi int64, f simnet.Fault) bool {
	if !f.NeedsResend() {
		return true
	}
	if user.IsVirtual() || hi <= lo || plan == nil {
		return false
	}
	span := hi - lo
	pos := lo
	switch f.Kind {
	case FaultCorrupt:
		pos = lo + f.Offset%span
	case FaultTruncate:
		pos = lo + f.Keep%span
	}
	it := plan.Segments()
	it.SeekTo(pos)
	off, runLen := it.Run()
	if runLen <= 0 || off >= int64(user.Len()) {
		return false
	}
	user.Bytes()[off] ^= 0xFF
	return true
}
