package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/buf"
	"repro/internal/datatype"
)

// mustCommit commits a constructed type or fails the test.
func mustCommit(tb testing.TB, ty *datatype.Type, err error) *datatype.Type {
	tb.Helper()
	if err != nil {
		tb.Fatal(err)
	}
	if err := ty.Commit(); err != nil {
		tb.Fatal(err)
	}
	return ty
}

// typedNeed returns the buffer bytes count instances of ty require.
func typedNeed(ty *datatype.Type, count int) int {
	if count <= 0 {
		return 0
	}
	return int(int64(count-1)*ty.Extent() + ty.TrueLB() + ty.TrueExtent())
}

// typedBuf returns a pattern-filled buffer covering count instances.
func typedBuf(ty *datatype.Type, count int, seed byte) buf.Block {
	b := buf.Alloc(typedNeed(ty, count))
	b.FillPattern(seed)
	return b
}

// packView packs count instances of ty from view into fresh bytes.
func packView(tb testing.TB, ty *datatype.Type, count int, view buf.Block) []byte {
	tb.Helper()
	dst := buf.Alloc(int(ty.PackSize(count)))
	if _, err := ty.Pack(view, count, dst); err != nil {
		tb.Fatal(err)
	}
	return dst.Bytes()
}

// collConfig is one layout family of the differential sweep: gapped
// vectors and a resized (extent-grown) base, per the dense-base sweep.
type collConfig struct {
	name  string
	count int
	mk    func(tb testing.TB) *datatype.Type
}

var collConfigs = []collConfig{
	{"everyOther", 3, func(tb testing.TB) *datatype.Type {
		ty, err := datatype.Vector(5, 1, 2, datatype.Float64)
		return mustCommit(tb, ty, err)
	}},
	{"blockGap", 2, func(tb testing.TB) *datatype.Type {
		ty, err := datatype.Vector(4, 2, 5, datatype.Float64)
		return mustCommit(tb, ty, err)
	}},
	{"resizedGap", 3, func(tb testing.TB) *datatype.Type {
		inner, err := datatype.Vector(4, 1, 2, datatype.Float64)
		if err != nil {
			tb.Fatal(err)
		}
		ty, err := datatype.Resized(inner, 0, inner.Extent()+16)
		return mustCommit(tb, ty, err)
	}},
}

var collSizes = []int{1, 2, 3, 5, 8}

// rankSeed is the per-rank fill pattern of the differential tests.
func rankSeed(r int) byte { return byte(0x11 + 7*r) }

// TestGatherTypeDifferential checks GatherType against the
// pack → contiguous gather → unpack oracle over every layout family
// and rank counts 1–8 (small legs: tree mode above 2 ranks).
func TestGatherTypeDifferential(t *testing.T) {
	for _, cfg := range collConfigs {
		for _, size := range collSizes {
			t.Run(fmt.Sprintf("%s/n%d", cfg.name, size), func(t *testing.T) {
				ty := cfg.mk(t)
				count := cfg.count
				root := size / 2
				pitch := int(int64(count) * ty.Extent())
				recvLen := pitch*(size-1) + typedNeed(ty, count)
				var got []byte
				runN(t, size, func(c *Comm) error {
					send := typedBuf(ty, count, rankSeed(c.Rank()))
					recv := buf.Alloc(recvLen)
					if err := c.GatherType(send, count, ty, recv, count, ty, root); err != nil {
						return err
					}
					if c.Rank() == root {
						got = append([]byte(nil), recv.Bytes()...)
					}
					return nil
				})
				oracle := buf.Alloc(recvLen)
				for r := 0; r < size; r++ {
					packed := packView(t, ty, count, typedBuf(ty, count, rankSeed(r)))
					view := oracle.Slice(r*pitch, recvLen-r*pitch)
					if _, err := ty.Unpack(buf.FromBytes(packed), count, view); err != nil {
						t.Fatal(err)
					}
				}
				if !bytes.Equal(got, oracle.Bytes()) {
					t.Fatal("typed gather differs from pack→gather→unpack oracle")
				}
			})
		}
	}
}

// TestScatterTypeDifferential is the fan-out mirror.
func TestScatterTypeDifferential(t *testing.T) {
	for _, cfg := range collConfigs {
		for _, size := range collSizes {
			t.Run(fmt.Sprintf("%s/n%d", cfg.name, size), func(t *testing.T) {
				ty := cfg.mk(t)
				count := cfg.count
				root := size / 2
				pitch := int(int64(count) * ty.Extent())
				sendLen := pitch*(size-1) + typedNeed(ty, count)
				const rootSeed = 0x5D
				got := make([][]byte, size)
				runN(t, size, func(c *Comm) error {
					var send buf.Block
					if c.Rank() == root {
						send = buf.Alloc(sendLen)
						send.FillPattern(rootSeed)
					}
					recv := buf.Alloc(typedNeed(ty, count))
					if err := c.ScatterType(send, count, ty, recv, count, ty, root); err != nil {
						return err
					}
					got[c.Rank()] = append([]byte(nil), recv.Bytes()...)
					return nil
				})
				full := buf.Alloc(sendLen)
				full.FillPattern(rootSeed)
				for r := 0; r < size; r++ {
					view := full.Slice(r*pitch, sendLen-r*pitch)
					packed := packView(t, ty, count, view)
					oracle := buf.Alloc(typedNeed(ty, count))
					if _, err := ty.Unpack(buf.FromBytes(packed), count, oracle); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got[r], oracle.Bytes()) {
						t.Fatalf("typed scatter slot %d differs from oracle", r)
					}
				}
			})
		}
	}
}

// TestBcastTypeDifferential checks the typed broadcast: every rank's
// layout must hold exactly what a pack→bcast→unpack pipeline delivers
// (gap bytes stay zero on receivers).
func TestBcastTypeDifferential(t *testing.T) {
	for _, cfg := range collConfigs {
		for _, size := range collSizes {
			t.Run(fmt.Sprintf("%s/n%d", cfg.name, size), func(t *testing.T) {
				ty := cfg.mk(t)
				count := cfg.count
				root := size - 1
				const seed = 0x2A
				got := make([][]byte, size)
				runN(t, size, func(c *Comm) error {
					var b buf.Block
					if c.Rank() == root {
						b = typedBuf(ty, count, seed)
					} else {
						b = buf.Alloc(typedNeed(ty, count))
					}
					if err := c.BcastType(b, count, ty, root); err != nil {
						return err
					}
					if c.Rank() != root {
						got[c.Rank()] = append([]byte(nil), b.Bytes()...)
					}
					return nil
				})
				packed := packView(t, ty, count, typedBuf(ty, count, seed))
				oracle := buf.Alloc(typedNeed(ty, count))
				if _, err := ty.Unpack(buf.FromBytes(packed), count, oracle); err != nil {
					t.Fatal(err)
				}
				for r := 0; r < size; r++ {
					if r == root {
						continue
					}
					if !bytes.Equal(got[r], oracle.Bytes()) {
						t.Fatalf("typed bcast rank %d differs from oracle", r)
					}
				}
			})
		}
	}
}

// TestAllgatherTypeDifferential checks the typed ring allgather on
// every rank against the oracle.
func TestAllgatherTypeDifferential(t *testing.T) {
	for _, cfg := range collConfigs {
		for _, size := range collSizes {
			t.Run(fmt.Sprintf("%s/n%d", cfg.name, size), func(t *testing.T) {
				ty := cfg.mk(t)
				count := cfg.count
				pitch := int(int64(count) * ty.Extent())
				recvLen := pitch*(size-1) + typedNeed(ty, count)
				got := make([][]byte, size)
				runN(t, size, func(c *Comm) error {
					send := typedBuf(ty, count, rankSeed(c.Rank()))
					recv := buf.Alloc(recvLen)
					if err := c.AllgatherType(send, count, ty, recv, count, ty); err != nil {
						return err
					}
					got[c.Rank()] = append([]byte(nil), recv.Bytes()...)
					return nil
				})
				oracle := buf.Alloc(recvLen)
				for r := 0; r < size; r++ {
					packed := packView(t, ty, count, typedBuf(ty, count, rankSeed(r)))
					view := oracle.Slice(r*pitch, recvLen-r*pitch)
					if _, err := ty.Unpack(buf.FromBytes(packed), count, view); err != nil {
						t.Fatal(err)
					}
				}
				for r := 0; r < size; r++ {
					if !bytes.Equal(got[r], oracle.Bytes()) {
						t.Fatalf("typed allgather rank %d differs from oracle", r)
					}
				}
			})
		}
	}
}

// TestAlltoallTypeDifferential checks the typed pairwise exchange on
// every rank against the oracle.
func TestAlltoallTypeDifferential(t *testing.T) {
	for _, cfg := range collConfigs {
		for _, size := range collSizes {
			t.Run(fmt.Sprintf("%s/n%d", cfg.name, size), func(t *testing.T) {
				ty := cfg.mk(t)
				count := cfg.count
				pitch := int(int64(count) * ty.Extent())
				bufLen := pitch*(size-1) + typedNeed(ty, count)
				got := make([][]byte, size)
				runN(t, size, func(c *Comm) error {
					send := buf.Alloc(bufLen)
					send.FillPattern(rankSeed(c.Rank()))
					recv := buf.Alloc(bufLen)
					if err := c.AlltoallType(send, count, ty, recv, count, ty); err != nil {
						return err
					}
					got[c.Rank()] = append([]byte(nil), recv.Bytes()...)
					return nil
				})
				for me := 0; me < size; me++ {
					oracle := buf.Alloc(bufLen)
					for r := 0; r < size; r++ {
						srcBuf := buf.Alloc(bufLen)
						srcBuf.FillPattern(rankSeed(r))
						packed := packView(t, ty, count, srcBuf.Slice(me*pitch, bufLen-me*pitch))
						view := oracle.Slice(r*pitch, bufLen-r*pitch)
						if _, err := ty.Unpack(buf.FromBytes(packed), count, view); err != nil {
							t.Fatal(err)
						}
					}
					if !bytes.Equal(got[me], oracle.Bytes()) {
						t.Fatalf("typed alltoall rank %d differs from oracle", me)
					}
				}
			})
		}
	}
}

// TestGathervScattervTypeDifferential checks the v-variants with
// per-rank counts and permuted, gapped displacements against the
// oracle.
func TestGathervScattervTypeDifferential(t *testing.T) {
	for _, cfg := range collConfigs {
		for _, size := range collSizes {
			t.Run(fmt.Sprintf("%s/n%d", cfg.name, size), func(t *testing.T) {
				ty := cfg.mk(t)
				ext := int(ty.Extent())
				counts := make([]int, size)
				displs := make([]int, size)
				maxEnd := 0
				for r := 0; r < size; r++ {
					counts[r] = 1 + r%cfg.count
					// Reverse the slots and leave a one-extent gap
					// between them.
					displs[r] = (size - 1 - r) * (cfg.count + 1)
					if end := displs[r]*ext + typedNeed(ty, counts[r]); end > maxEnd {
						maxEnd = end
					}
				}
				root := size / 2
				rootLen := maxEnd

				// Gatherv.
				var got []byte
				runN(t, size, func(c *Comm) error {
					send := typedBuf(ty, counts[c.Rank()], rankSeed(c.Rank()))
					var recv buf.Block
					if c.Rank() == root {
						recv = buf.Alloc(rootLen)
					}
					if err := c.GathervType(send, counts[c.Rank()], ty, recv, counts, displs, ty, root); err != nil {
						return err
					}
					if c.Rank() == root {
						got = append([]byte(nil), recv.Bytes()...)
					}
					return nil
				})
				oracle := buf.Alloc(rootLen)
				for r := 0; r < size; r++ {
					packed := packView(t, ty, counts[r], typedBuf(ty, counts[r], rankSeed(r)))
					view := oracle.Slice(displs[r]*ext, rootLen-displs[r]*ext)
					if _, err := ty.Unpack(buf.FromBytes(packed), counts[r], view); err != nil {
						t.Fatal(err)
					}
				}
				if !bytes.Equal(got, oracle.Bytes()) {
					t.Fatal("typed gatherv differs from oracle")
				}

				// Scatterv back out of the oracle image.
				gotV := make([][]byte, size)
				runN(t, size, func(c *Comm) error {
					var send buf.Block
					if c.Rank() == root {
						send = buf.Alloc(rootLen)
						buf.Copy(send, oracle)
					}
					recv := buf.Alloc(typedNeed(ty, counts[c.Rank()]))
					if err := c.ScattervType(send, counts, displs, ty, recv, counts[c.Rank()], ty, root); err != nil {
						return err
					}
					gotV[c.Rank()] = append([]byte(nil), recv.Bytes()...)
					return nil
				})
				for r := 0; r < size; r++ {
					packed := packView(t, ty, counts[r], oracle.Slice(displs[r]*ext, rootLen-displs[r]*ext))
					want := buf.Alloc(typedNeed(ty, counts[r]))
					if _, err := ty.Unpack(buf.FromBytes(packed), counts[r], want); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(gotV[r], want.Bytes()) {
						t.Fatalf("typed scatterv slot %d differs from oracle", r)
					}
				}
			})
		}
	}
}

// TestGatherTypeAsymmetricLayouts checks a rendezvous-sized gather
// whose send and receive layouts differ (every-other doubles arriving
// as blocked pairs): the fused remote legs must deliver exactly the
// staged pipeline's bytes.
func TestGatherTypeAsymmetricLayouts(t *testing.T) {
	const k = 1 << 14 // 128 KiB payload per rank, past every eager limit
	sendTyRaw, err := datatype.Vector(k, 1, 2, datatype.Float64)
	sendTy := mustCommit(t, sendTyRaw, err)
	recvTyRaw, err := datatype.Vector(k/2, 2, 5, datatype.Float64)
	recvTy := mustCommit(t, recvTyRaw, err)
	const size, root = 4, 1
	pitch := int(recvTy.Extent())
	recvLen := pitch*(size-1) + typedNeed(recvTy, 1)
	var got []byte
	runN(t, size, func(c *Comm) error {
		send := typedBuf(sendTy, 1, rankSeed(c.Rank()))
		recv := buf.Alloc(recvLen)
		if err := c.GatherType(send, 1, sendTy, recv, 1, recvTy, root); err != nil {
			return err
		}
		if c.Rank() == root {
			got = append([]byte(nil), recv.Bytes()...)
		}
		return nil
	})
	oracle := buf.Alloc(recvLen)
	for r := 0; r < size; r++ {
		packed := packView(t, sendTy, 1, typedBuf(sendTy, 1, rankSeed(r)))
		view := oracle.Slice(r*pitch, recvLen-r*pitch)
		if _, err := recvTy.Unpack(buf.FromBytes(packed), 1, view); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, oracle.Bytes()) {
		t.Fatal("asymmetric typed gather differs from oracle")
	}
}

// TestTypedCollectivesRendezvousZeroStaging pins the tentpole
// contract: rendezvous-sized typed collectives draw no pooled staging
// or transit blocks anywhere — the root self-leg is a fused copy, the
// remote legs are fused sendv rendezvous — and every payload is
// attributed fused, none staged.
func TestTypedCollectivesRendezvousZeroStaging(t *testing.T) {
	const k = 1 << 14 // 128 KiB per leg
	const size = 4
	poolBefore := buf.PoolStatsSnapshot()
	planBefore := datatype.PlanStatsSnapshot()
	runN(t, size, func(c *Comm) error {
		ty := everyOther(t, k)
		pitch := int(ty.Extent())
		send := typedBuf(ty, 1, rankSeed(c.Rank()))
		recv := buf.Alloc(pitch*(size-1) + typedNeed(ty, 1))
		if err := c.GatherType(send, 1, ty, recv, 1, ty, 0); err != nil {
			return err
		}
		sendAll := buf.Alloc(pitch*(size-1) + typedNeed(ty, 1))
		sendAll.FillPattern(rankSeed(c.Rank()))
		recvAll := buf.Alloc(pitch*(size-1) + typedNeed(ty, 1))
		return c.AlltoallType(sendAll, 1, ty, recvAll, 1, ty)
	})
	if d := buf.PoolStatsSnapshot().Sub(poolBefore); d.Gets != 0 {
		t.Fatalf("typed collectives drew %d pooled staging/transit blocks, want 0 (%+v)", d.Gets, d)
	}
	d := datatype.PlanStatsSnapshot().Sub(planBefore)
	if d.FusedOps == 0 {
		t.Fatalf("no fused attribution on the typed collectives: %+v", d)
	}
	if d.StagedOps != 0 {
		t.Fatalf("staged attribution leaked into rendezvous typed collectives: %+v", d)
	}
}

// TestTypedSelfLegOverlapUnsafeStages pins the self-leg fallback: a
// receive layout whose repeated instances interleave (extent resized
// under the span) declines the fused copy, stages through the pool,
// and still matches the sequential pack→unpack oracle.
func TestTypedSelfLegOverlapUnsafeStages(t *testing.T) {
	mk := func(tb testing.TB) *datatype.Type {
		inner, err := datatype.Indexed([]int{1, 1}, []int{0, 2}, datatype.Float64)
		if err != nil {
			tb.Fatal(err)
		}
		ty, err := datatype.Resized(inner, 0, 8)
		return mustCommit(tb, ty, err)
	}
	recvTy := mk(t)
	const recvCount = 4
	sendTyRaw, err := datatype.Vector(recvCount*2, 1, 2, datatype.Float64)
	sendTy := mustCommit(t, sendTyRaw, err)
	planBefore := datatype.PlanStatsSnapshot()
	var got []byte
	runN(t, 1, func(c *Comm) error {
		send := typedBuf(sendTy, 1, 0x3C)
		recv := buf.Alloc(typedNeed(recvTy, recvCount))
		if err := c.GatherType(send, 1, sendTy, recv, recvCount, recvTy, 0); err != nil {
			return err
		}
		got = append([]byte(nil), recv.Bytes()...)
		return nil
	})
	packed := packView(t, sendTy, 1, typedBuf(sendTy, 1, 0x3C))
	want := buf.Alloc(len(got))
	if _, err := recvTy.Unpack(buf.FromBytes(packed), recvCount, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("overlap-unsafe self-leg differs from the staged oracle")
	}
	d := datatype.PlanStatsSnapshot().Sub(planBefore)
	if d.StagedOps == 0 || d.FusedOps != 0 {
		t.Fatalf("attribution fused=%d staged=%d, want 0/>0", d.FusedOps, d.StagedOps)
	}
}

// TestContigWrappersStillMatch pins the thin-wrapper contract: the
// byte-buffer collectives must deliver identical bytes through the
// typed engine (their legs ride the raw contiguous paths).
func TestContigWrappersStillMatch(t *testing.T) {
	const n, size = 96, 5
	runN(t, size, func(c *Comm) error {
		send := buf.Alloc(n)
		send.FillPattern(byte(c.Rank()))
		recv := buf.Alloc(n * size)
		if err := c.Allgather(send, recv); err != nil {
			return err
		}
		for r := 0; r < size; r++ {
			if err := recv.Slice(r*n, n).VerifyPattern(byte(r)); err != nil {
				t.Errorf("allgather slot %d: %v", r, err)
			}
		}
		back := buf.Alloc(n)
		if err := c.Scatter(recv, back, 1); err != nil {
			return err
		}
		return back.VerifyPattern(byte(c.Rank()))
	})
}

// BenchmarkTypedCollectives is the CI smoke for the typed-collective
// zero-staging contract: rendezvous-sized GatherType and AlltoallType
// rounds; any pooled staging or transit draw on the fused legs or the
// root self-leg fails the bench.
func BenchmarkTypedCollectives(b *testing.B) {
	const k = 1 << 14
	const size = 4
	before := buf.PoolStatsSnapshot()
	b.SetBytes(int64(k) * 8 * size)
	for i := 0; i < b.N; i++ {
		err := Run(size, Options{}, func(c *Comm) error {
			ty := everyOther(b, k)
			pitch := int(ty.Extent())
			send := buf.Alloc(typedNeed(ty, 1))
			recv := buf.Alloc(pitch*(size-1) + typedNeed(ty, 1))
			if err := c.GatherType(send, 1, ty, recv, 1, ty, 0); err != nil {
				return err
			}
			sendAll := buf.Alloc(pitch*(size-1) + typedNeed(ty, 1))
			recvAll := buf.Alloc(pitch*(size-1) + typedNeed(ty, 1))
			return c.AlltoallType(sendAll, 1, ty, recvAll, 1, ty)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if d := buf.PoolStatsSnapshot().Sub(before); d.Gets != 0 {
		b.Fatalf("typed collectives drew %d pooled staging blocks, want 0 (%+v)", d.Gets, d)
	}
}
