package mpi

import (
	"bytes"
	"testing"

	"repro/internal/buf"
	"repro/internal/datatype"
	"repro/internal/perfmodel"
	"repro/internal/simnet"
)

// selectiveProfile is the chaos profile with a 4 KiB internal chunk,
// so modest payloads span many chunks and the selective engine has
// something to be selective about.
func selectiveProfile() *perfmodel.Profile {
	p := perfmodel.Generic()
	p.Mem.InternalChunk = 4096
	return p
}

// selectiveVector is the canonical every-other-double layout packing
// 64 KiB (16 internal chunks of the selective profile).
func selectiveVector(t testing.TB) *datatype.Type {
	t.Helper()
	ty, err := datatype.Vector(8192, 1, 2, datatype.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if err := ty.Commit(); err != nil {
		t.Fatal(err)
	}
	return ty
}

// runSelective drives one 0→1 typed rendezvous transfer under the
// given fault plan and returns the receiver's user bytes plus both
// ranks' counters. send selects the engine (SsendType, SendpType,
// SsendvType name strings).
func runSelective(t testing.TB, engine string, faults *simnet.FaultPlan) (recv []byte, c0, c1 simnet.Counters) {
	t.Helper()
	ty := selectiveVector(t)
	need := int(ty.TrueLB() + ty.TrueExtent())
	var mu0, mu1 simnet.Counters
	var got []byte
	err := Run(2, Options{Profile: selectiveProfile(), Faults: faults}, func(c *Comm) error {
		if c.Rank() == 0 {
			src := buf.Alloc(need)
			fillPat(src, 0, 1)
			var err error
			switch engine {
			case "SsendType":
				err = c.SsendType(src, 1, ty, 1, 7)
			case "SsendpType":
				err = c.SsendpType(src, 1, ty, 1, 7)
			case "SsendvType":
				err = c.SsendvType(src, 1, ty, 1, 7)
			default:
				t.Fatalf("unknown engine %s", engine)
			}
			mu0 = c.Counters()
			return err
		}
		dst := buf.Alloc(need)
		if _, err := c.RecvType(dst, 1, ty, 0, 7); err != nil {
			return err
		}
		got = append([]byte(nil), dst.Bytes()...)
		mu1 = c.Counters()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, mu0, mu1
}

// TestSelectiveRetransmitDifferential pins the tentpole's acceptance
// shape: a scripted single-chunk corruption of a 16-chunk rendezvous
// transfer recovers to the fault-free oracle while the fabric counters
// show only the damaged chunk retransmitted — not the whole transfer.
func TestSelectiveRetransmitDifferential(t *testing.T) {
	for _, engine := range []string{"SsendType", "SsendpType", "SsendvType"} {
		t.Run(engine, func(t *testing.T) {
			oracle, o0, _ := runSelective(t, engine, nil)
			if o0.Retries != 0 || o0.ChunkRetransmits != 0 {
				t.Fatalf("clean run retried: %+v", o0)
			}
			plan := &simnet.FaultPlan{
				Seed: 7,
				Scripted: []simnet.ScriptedFault{
					{Src: 0, Dst: 1, Seq: 3, Payload: true, Kind: simnet.FaultCorrupt},
				},
			}
			got, c0, c1 := runSelective(t, engine, plan)
			if !bytes.Equal(got, oracle) {
				t.Fatal("recovered bytes diverge from the fault-free oracle")
			}
			if c0.Corruptions != 1 {
				t.Fatalf("scripted corruption not injected: %+v", c0)
			}
			if c0.Retries != 1 {
				t.Fatalf("recovery took %d retries, want 1", c0.Retries)
			}
			if c0.ChunkRetransmits != 1 {
				t.Fatalf("retransmitted %d chunks, want exactly the damaged one", c0.ChunkRetransmits)
			}
			if c0.RetransmitBytes != 4096 {
				t.Fatalf("retransmitted %d bytes, want one 4096-byte chunk", c0.RetransmitBytes)
			}
			if c1.IntegrityRejects != 1 {
				t.Fatalf("receiver rejected %d attempts, want 1", c1.IntegrityRejects)
			}
		})
	}
}

// TestSelectiveRetransmitMultiChunk scripts damage into three distinct
// chunks of one attempt: one round of selective replay carries exactly
// those three chunks' bytes.
func TestSelectiveRetransmitMultiChunk(t *testing.T) {
	oracle, _, _ := runSelective(t, "SsendType", nil)
	plan := &simnet.FaultPlan{
		Seed: 11,
		Scripted: []simnet.ScriptedFault{
			{Src: 0, Dst: 1, Seq: 2, Payload: true, Kind: simnet.FaultCorrupt},
			{Src: 0, Dst: 1, Seq: 9, Payload: true, Kind: simnet.FaultTruncate},
			{Src: 0, Dst: 1, Seq: 15, Payload: true, Kind: simnet.FaultDrop},
		},
	}
	got, c0, _ := runSelective(t, "SsendType", plan)
	if !bytes.Equal(got, oracle) {
		t.Fatal("recovered bytes diverge from the fault-free oracle")
	}
	if c0.Retries != 1 {
		t.Fatalf("recovery took %d retries, want 1", c0.Retries)
	}
	if c0.ChunkRetransmits != 3 {
		t.Fatalf("retransmitted %d chunks, want the 3 damaged ones", c0.ChunkRetransmits)
	}
	if c0.RetransmitBytes != 3*4096 {
		t.Fatalf("retransmitted %d bytes, want 3 chunks' worth", c0.RetransmitBytes)
	}
}

// TestSelectiveDupSuppression scripts a duplicate fault on one chunk:
// the fabric redelivers it within the attempt, the receiver discards
// the extra copy, and no retransmission round runs at all.
func TestSelectiveDupSuppression(t *testing.T) {
	oracle, _, _ := runSelective(t, "SsendType", nil)
	plan := &simnet.FaultPlan{
		Seed: 13,
		Scripted: []simnet.ScriptedFault{
			{Src: 0, Dst: 1, Seq: 5, Payload: true, Kind: simnet.FaultDuplicate},
		},
	}
	got, c0, c1 := runSelective(t, "SsendType", plan)
	if !bytes.Equal(got, oracle) {
		t.Fatal("duplicated chunk corrupted the payload")
	}
	if c0.Duplicates != 1 {
		t.Fatalf("duplicate not injected: %+v", c0)
	}
	if c0.Retries != 0 || c0.ChunkRetransmits != 0 {
		t.Fatalf("duplicate triggered a retransmission: %+v", c0)
	}
	if c1.DupChunksSuppressed != 1 {
		t.Fatalf("receiver suppressed %d duplicate chunks, want 1", c1.DupChunksSuppressed)
	}
}

// TestSelectiveRetransmitDamagedRetry scripts damage into the same
// chunk twice — the initial attempt and its replay — and pins the
// two-round recovery: both rounds retransmit only that chunk.
func TestSelectiveRetransmitDamagedRetry(t *testing.T) {
	oracle, _, _ := runSelective(t, "SsendType", nil)
	plan := &simnet.FaultPlan{
		Seed: 17,
		Scripted: []simnet.ScriptedFault{
			{Src: 0, Dst: 1, Seq: 4, Payload: true, Kind: simnet.FaultCorrupt},
			// Draw 16 is the replayed chunk 4 on the second attempt.
			{Src: 0, Dst: 1, Seq: 16, Payload: true, Kind: simnet.FaultCorrupt},
		},
	}
	got, c0, c1 := runSelective(t, "SsendType", plan)
	if !bytes.Equal(got, oracle) {
		t.Fatal("recovered bytes diverge from the fault-free oracle")
	}
	if c0.Retries != 2 {
		t.Fatalf("recovery took %d retries, want 2", c0.Retries)
	}
	if c0.ChunkRetransmits != 2 || c0.RetransmitBytes != 2*4096 {
		t.Fatalf("retransmission attribution %d chunks / %d bytes, want 2 / %d",
			c0.ChunkRetransmits, c0.RetransmitBytes, 2*4096)
	}
	if c1.IntegrityRejects != 2 {
		t.Fatalf("receiver rejected %d attempts, want 2", c1.IntegrityRejects)
	}
}

// TestSelectiveVirtualPoisoned pins the virtual-payload contract the
// scale-out chaos harness rides: damage cannot materialise in a
// length-only transfer, so the chunk travels poisoned and the
// selective machinery replays exactly that chunk with zero byte
// traffic.
func TestSelectiveVirtualPoisoned(t *testing.T) {
	ty := selectiveVector(t)
	need := int(ty.TrueLB() + ty.TrueExtent())
	plan := &simnet.FaultPlan{
		Seed: 19,
		Scripted: []simnet.ScriptedFault{
			{Src: 0, Dst: 1, Seq: 6, Payload: true, Kind: simnet.FaultCorrupt},
		},
	}
	var c0 simnet.Counters
	err := Run(2, Options{Profile: selectiveProfile(), Faults: plan}, func(c *Comm) error {
		if c.Rank() == 0 {
			err := c.SsendvType(buf.Virtual(need), 1, ty, 1, 3)
			c0 = c.Counters()
			return err
		}
		_, err := c.RecvType(buf.Virtual(need), 1, ty, 0, 3)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if c0.Retries != 1 || c0.ChunkRetransmits != 1 {
		t.Fatalf("poisoned virtual chunk not selectively replayed: %+v", c0)
	}
}

// BenchmarkSelectiveRetransmit is the CI smoke of the satellite
// acceptance bound: a 1-damaged-chunk recovery must retransmit at most
// 2 chunks' worth of bytes (one damaged chunk plus slack for a short
// tail chunk), never the whole transfer.
func BenchmarkSelectiveRetransmit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plan := &simnet.FaultPlan{
			Seed: 23,
			Scripted: []simnet.ScriptedFault{
				{Src: 0, Dst: 1, Seq: 8, Payload: true, Kind: simnet.FaultCorrupt},
			},
		}
		_, c0, _ := runSelective(b, "SsendpType", plan)
		if c0.RetransmitBytes > 2*4096 {
			b.Fatalf("1-damaged-chunk recovery retransmitted %d bytes, budget %d",
				c0.RetransmitBytes, 2*4096)
		}
		if c0.RetransmitBytes == 0 {
			b.Fatal("recovery retransmitted nothing; selective path not engaged")
		}
	}
}
