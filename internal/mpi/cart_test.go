package mpi

import (
	"testing"
	"testing/quick"

	"repro/internal/buf"
)

func TestCartCreateValidation(t *testing.T) {
	runN(t, 4, func(c *Comm) error {
		if _, err := c.CartCreate([]int{3}, []bool{false}); err == nil {
			t.Error("size mismatch accepted")
		}
		if _, err := c.CartCreate([]int{2, 2}, []bool{false}); err == nil {
			t.Error("dims/periods mismatch accepted")
		}
		if _, err := c.CartCreate([]int{0, 4}, []bool{false, false}); err == nil {
			t.Error("zero dim accepted")
		}
		return nil
	})
}

func TestCartCoordsRoundTrip(t *testing.T) {
	runN(t, 6, func(c *Comm) error {
		ct, err := c.CartCreate([]int{2, 3}, []bool{false, false})
		if err != nil {
			return err
		}
		coords := ct.Coords()
		want := []int{c.Rank() / 3, c.Rank() % 3}
		if coords[0] != want[0] || coords[1] != want[1] {
			t.Errorf("rank %d coords = %v, want %v", c.Rank(), coords, want)
		}
		back, err := ct.Rank(coords)
		if err != nil {
			return err
		}
		if back != c.Rank() {
			t.Errorf("coords %v -> rank %d, want %d", coords, back, c.Rank())
		}
		return nil
	})
}

func TestCartShiftNonPeriodicEdges(t *testing.T) {
	runN(t, 4, func(c *Comm) error {
		ct, err := c.CartCreate([]int{4}, []bool{false})
		if err != nil {
			return err
		}
		src, dst, err := ct.Shift(0, 1)
		if err != nil {
			return err
		}
		switch c.Rank() {
		case 0:
			if src != ProcNull || dst != 1 {
				t.Errorf("rank 0 shift = (%d,%d)", src, dst)
			}
		case 3:
			if src != 2 || dst != ProcNull {
				t.Errorf("rank 3 shift = (%d,%d)", src, dst)
			}
		default:
			if src != c.Rank()-1 || dst != c.Rank()+1 {
				t.Errorf("rank %d shift = (%d,%d)", c.Rank(), src, dst)
			}
		}
		return nil
	})
}

func TestCartShiftPeriodicWraps(t *testing.T) {
	runN(t, 4, func(c *Comm) error {
		ct, err := c.CartCreate([]int{4}, []bool{true})
		if err != nil {
			return err
		}
		src, dst, err := ct.Shift(0, 1)
		if err != nil {
			return err
		}
		if dst != (c.Rank()+1)%4 || src != (c.Rank()+3)%4 {
			t.Errorf("rank %d periodic shift = (%d,%d)", c.Rank(), src, dst)
		}
		return nil
	})
}

func TestCartRingExchange(t *testing.T) {
	// A periodic ring using Shift neighbours and Sendrecv: every rank
	// receives its left neighbour's payload.
	runN(t, 5, func(c *Comm) error {
		ct, err := c.CartCreate([]int{5}, []bool{true})
		if err != nil {
			return err
		}
		src, dst, err := ct.Shift(0, 1)
		if err != nil {
			return err
		}
		out := buf.Alloc(64)
		out.FillPattern(byte(c.Rank()))
		in := buf.Alloc(64)
		if _, err := c.Sendrecv(out, dst, 0, in, src, 0); err != nil {
			return err
		}
		return in.VerifyPattern(byte(src))
	})
}

func TestDimsCreate(t *testing.T) {
	cases := []struct {
		size, ndims int
		want        []int
	}{
		{4, 2, []int{2, 2}},
		{6, 2, []int{3, 2}},
		{8, 3, []int{2, 2, 2}},
		{12, 2, []int{4, 3}},
		{7, 2, []int{7, 1}},
		{1, 1, []int{1}},
	}
	for _, tc := range cases {
		got, err := DimsCreate(tc.size, tc.ndims)
		if err != nil {
			t.Fatalf("DimsCreate(%d,%d): %v", tc.size, tc.ndims, err)
		}
		prod := 1
		for _, d := range got {
			prod *= d
		}
		if prod != tc.size {
			t.Errorf("DimsCreate(%d,%d) = %v: wrong product", tc.size, tc.ndims, got)
		}
		for i, w := range tc.want {
			if got[i] != w {
				t.Errorf("DimsCreate(%d,%d) = %v, want %v", tc.size, tc.ndims, got, tc.want)
				break
			}
		}
	}
	if _, err := DimsCreate(0, 1); err == nil {
		t.Error("DimsCreate(0,1) accepted")
	}
}

// Property: DimsCreate always multiplies back to size, sorted
// descending, and reasonably balanced for powers of two.
func TestQuickDimsCreate(t *testing.T) {
	f := func(sz, nd uint8) bool {
		size := int(sz)%255 + 1
		ndims := int(nd)%4 + 1
		dims, err := DimsCreate(size, ndims)
		if err != nil {
			return false
		}
		prod := 1
		prev := 1 << 30
		for _, d := range dims {
			if d <= 0 || d > prev {
				return false
			}
			prev = d
			prod *= d
		}
		return prod == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
