package mpi

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/buf"
	"repro/internal/datatype"
	"repro/internal/perfmodel"
)

// contigDouble is a committed one-double contiguous type.
func contigDouble(tb testing.TB) *datatype.Type {
	tb.Helper()
	ty, err := datatype.Contiguous(1, datatype.Float64)
	return mustCommit(tb, ty, err)
}

// hierProfile is Generic with a node hierarchy: blocks of nodeSize
// consecutive world ranks share a node, and intra-node hops cost a
// tenth of the wire latency — enough discount that the two-level
// schedules engage and win on latency-bound payloads.
func hierProfile(nodeSize int) *perfmodel.Profile {
	p := perfmodel.Generic()
	p.Mem.NodeSize = nodeSize
	p.IntraNodeLatency = p.NetLatency / 10
	return p
}

// runHier runs body on size ranks of a hierarchical installation.
func runHier(t *testing.T, size, nodeSize int, body func(c *Comm) error) {
	t.Helper()
	if err := Run(size, Options{Profile: hierProfile(nodeSize), WallLimit: 30 * time.Second}, body); err != nil {
		t.Fatal(err)
	}
}

// TestTwoLevelBcastDifferential checks the leader-tree broadcast on a
// 16-rank, 4-per-node machine against the pack→unpack oracle for
// every layout family and several roots (leader and non-leader roots).
func TestTwoLevelBcastDifferential(t *testing.T) {
	const size, nodeSize = 16, 4
	for _, cfg := range collConfigs {
		for _, root := range []int{0, 5, 15} {
			t.Run(fmt.Sprintf("%s/root%d", cfg.name, root), func(t *testing.T) {
				ty := cfg.mk(t)
				count := cfg.count
				const seed = 0x3C
				got := make([][]byte, size)
				runHier(t, size, nodeSize, func(c *Comm) error {
					var b buf.Block
					if c.Rank() == root {
						b = typedBuf(ty, count, seed)
					} else {
						b = buf.Alloc(typedNeed(ty, count))
					}
					if err := c.BcastType(b, count, ty, root); err != nil {
						return err
					}
					if c.Rank() != root {
						got[c.Rank()] = append([]byte(nil), b.Bytes()...)
					}
					return nil
				})
				packed := packView(t, ty, count, typedBuf(ty, count, seed))
				oracle := buf.Alloc(typedNeed(ty, count))
				if _, err := ty.Unpack(buf.FromBytes(packed), count, oracle); err != nil {
					t.Fatal(err)
				}
				for r := 0; r < size; r++ {
					if r == root {
						continue
					}
					if !bytes.Equal(got[r], oracle.Bytes()) {
						t.Fatalf("two-level bcast rank %d differs from oracle", r)
					}
				}
			})
		}
	}
}

// TestTwoLevelAllgatherDifferential checks the leader-ring allgather
// on the same machine against the oracle on every rank.
func TestTwoLevelAllgatherDifferential(t *testing.T) {
	const size, nodeSize = 16, 4
	for _, cfg := range collConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			ty := cfg.mk(t)
			count := cfg.count
			pitch := int(int64(count) * ty.Extent())
			recvLen := pitch*(size-1) + typedNeed(ty, count)
			got := make([][]byte, size)
			runHier(t, size, nodeSize, func(c *Comm) error {
				send := typedBuf(ty, count, rankSeed(c.Rank()))
				recv := buf.Alloc(recvLen)
				if err := c.AllgatherType(send, count, ty, recv, count, ty); err != nil {
					return err
				}
				got[c.Rank()] = append([]byte(nil), recv.Bytes()...)
				return nil
			})
			oracle := buf.Alloc(recvLen)
			for r := 0; r < size; r++ {
				packed := packView(t, ty, count, typedBuf(ty, count, rankSeed(r)))
				view := oracle.Slice(r*pitch, recvLen-r*pitch)
				if _, err := ty.Unpack(buf.FromBytes(packed), count, view); err != nil {
					t.Fatal(err)
				}
			}
			for r := 0; r < size; r++ {
				if !bytes.Equal(got[r], oracle.Bytes()) {
					t.Fatalf("two-level allgather rank %d differs from oracle", r)
				}
			}
		})
	}
}

// TestTwoLevelSplitScattered drives the collectives over a Split
// communicator whose members interleave across nodes (world order
// 0,4,1,5 on a 4-per-node machine): the broadcast stays two-level on
// the true node boundaries, the allgather detects the non-contiguous
// node blocks and falls back to the flat ring — both must still
// deliver oracle bytes.
func TestTwoLevelSplitScattered(t *testing.T) {
	const world, nodeSize = 8, 4
	vec, vecErr := datatype.Vector(5, 1, 2, datatype.Float64)
	ty := mustCommit(t, vec, vecErr)
	const count = 3
	pitch := int(int64(count) * ty.Extent())
	recvLen := pitch*3 + typedNeed(ty, count)
	const seed = 0x61
	gotB := make([][]byte, world)
	gotA := make([][]byte, world)
	runHier(t, world, nodeSize, func(c *Comm) error {
		// color 0: world {0,1,4,5}; keys interleave them across nodes
		// so comm order is world 0,4,1,5 → node groups {0,2} and {1,3}.
		color := 1
		if r := c.Rank(); r == 0 || r == 1 || r == 4 || r == 5 {
			color = 0
		}
		key := map[int]int{0: 0, 4: 1, 1: 2, 5: 3}[c.Rank()]
		sub, err := c.Split(color, key)
		if err != nil {
			return err
		}
		if color != 0 {
			return nil
		}
		b := buf.Alloc(typedNeed(ty, count))
		if sub.Rank() == 0 {
			b.FillPattern(seed)
		}
		if err := sub.BcastType(b, count, ty, 0); err != nil {
			return err
		}
		gotB[c.Rank()] = append([]byte(nil), b.Bytes()...)
		send := typedBuf(ty, count, rankSeed(sub.Rank()))
		recv := buf.Alloc(recvLen)
		if err := sub.AllgatherType(send, count, ty, recv, count, ty); err != nil {
			return err
		}
		gotA[c.Rank()] = append([]byte(nil), recv.Bytes()...)
		return nil
	})
	packed := packView(t, ty, count, typedBuf(ty, count, seed))
	oracleB := buf.Alloc(typedNeed(ty, count))
	if _, err := ty.Unpack(buf.FromBytes(packed), count, oracleB); err != nil {
		t.Fatal(err)
	}
	oracleA := buf.Alloc(recvLen)
	for r := 0; r < 4; r++ {
		p := packView(t, ty, count, typedBuf(ty, count, rankSeed(r)))
		view := oracleA.Slice(r*pitch, recvLen-r*pitch)
		if _, err := ty.Unpack(buf.FromBytes(p), count, view); err != nil {
			t.Fatal(err)
		}
	}
	for _, w := range []int{4, 1, 5} { // sub ranks 1..3
		if !bytes.Equal(gotB[w], oracleB.Bytes()) {
			t.Fatalf("scattered split bcast world rank %d differs from oracle", w)
		}
	}
	for _, w := range []int{0, 4, 1, 5} {
		if !bytes.Equal(gotA[w], oracleA.Bytes()) {
			t.Fatalf("scattered split allgather world rank %d differs from oracle", w)
		}
	}
}

// TestTwoLevelBeatsFlatOnLatency pins the point of the topology: on a
// latency-bound broadcast the two-level schedule finishes earlier on
// the virtual clock than the flat binomial tree over the same machine
// (same profile with the intra-node discount withheld, which disables
// the two-level dispatch).
func TestTwoLevelBeatsFlatOnLatency(t *testing.T) {
	const size, nodeSize = 16, 4
	bcastTime := func(p *perfmodel.Profile) float64 {
		var worst float64
		err := Run(size, Options{Profile: p, WallLimit: 30 * time.Second}, func(c *Comm) error {
			b := buf.Alloc(64)
			if c.Rank() == 0 {
				b.FillPattern(0x11)
			}
			if err := c.BcastType(b, 8, contigDouble(t), 0); err != nil {
				return err
			}
			c.Barrier()
			if c.Rank() == 0 {
				worst = c.Wtime()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return worst
	}
	hier := bcastTime(hierProfile(nodeSize))
	flatP := hierProfile(nodeSize)
	flatP.IntraNodeLatency = 0 // boundary known, discount withheld → flat dispatch
	flat := bcastTime(flatP)
	if hier >= flat {
		t.Fatalf("two-level bcast %.3gs not faster than flat %.3gs", hier, flat)
	}
}
