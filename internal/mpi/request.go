package mpi

import (
	"fmt"

	"repro/internal/buf"
	"repro/internal/datatype"
	"repro/internal/vclock"
)

// Request tracks a non-blocking operation, like MPI_Request. Complete
// it with Wait or poll with Test.
type Request struct {
	owner *Comm
	async *Comm // clone whose clock the background half advances
	done  chan struct{}

	status   Status
	err      error
	finished bool
	id       int
}

// asyncClone returns a clone of the Comm whose clock starts at the
// caller's current time and advances independently; Wait folds the
// result back. Fabric, cache state (internally locked) and the attach
// pool are shared.
func (c *Comm) asyncClone() *Comm {
	cc := *c
	cl := &vclock.Clock{}
	cl.AdvanceTo(c.clock.Now())
	cc.clock = cl
	return &cc
}

// Isend starts a non-blocking contiguous send, like MPI_Isend. The
// message enters the network in program order (the envelope is
// delivered before Isend returns), so pairwise ordering guarantees
// hold; only the rendezvous completion runs in the background.
func (c *Comm) Isend(b buf.Block, dest, tag int) (*Request, error) {
	if err := c.checkP2P(dest, tag); err != nil {
		return nil, err
	}
	return c.startAsyncSend(func(cc *Comm, fl sendFlags) error {
		return cc.sendContig(b, dest, tag, fl)
	})
}

// IsendType starts a non-blocking derived-datatype send.
func (c *Comm) IsendType(b buf.Block, count int, ty *datatype.Type, dest, tag int) (*Request, error) {
	if err := c.checkP2P(dest, tag); err != nil {
		return nil, err
	}
	if count < 0 {
		return nil, fmt.Errorf("%w: %d", ErrCount, count)
	}
	return c.startAsyncSend(func(cc *Comm, fl sendFlags) error {
		return cc.sendTyped(b, count, ty, dest, tag, fl)
	})
}

// startAsyncSend runs op on a clone. To preserve MPI's non-overtaking
// rule the envelope must enter the fabric before Isend returns, so a
// later blocking send from the same rank cannot overtake it. The
// protocol layer signals the delivered channel right after it enqueues
// the envelope (both sendContig and sendTyped deliver before they
// first block); startAsyncSend waits for that signal.
func (c *Comm) startAsyncSend(op func(*Comm, sendFlags) error) (*Request, error) {
	cc := c.asyncClone()
	c.reqSeq++
	delivered := make(chan struct{})
	r := &Request{owner: c, async: cc, done: make(chan struct{}), id: c.reqSeq}
	go func() {
		defer close(r.done)
		defer func() {
			if p := recover(); p != nil {
				r.err = fmt.Errorf("mpi: async op panicked: %v", p)
			}
		}()
		r.err = op(cc, sendFlags{delivered: delivered})
	}()
	select {
	case <-delivered:
	case <-r.done: // op failed before delivering
	}
	return r, nil
}

// Irecv starts a non-blocking receive, like MPI_Irecv. When several
// Irecvs with overlapping patterns are outstanding, their matching
// order is unspecified (a documented divergence from MPI's
// posted-receive queue order; the benchmark patterns never rely on
// it).
func (c *Comm) Irecv(b buf.Block, src, tag int) (*Request, error) {
	if err := c.checkRecvArgs(src, tag); err != nil {
		return nil, err
	}
	return c.startAsyncRecv(func(cc *Comm) (Status, error) {
		return cc.recvContig(b, src, tag)
	}), nil
}

// IrecvType starts a non-blocking derived-datatype receive, like
// MPI_Irecv with a non-contiguous type: the payload is scattered into
// b's layout when the matching send completes, and a rendezvous sendv
// sender is offered the layout for the fused one-pass scatter exactly
// as RecvType offers it. The matching-order caveat of Irecv applies.
func (c *Comm) IrecvType(b buf.Block, count int, ty *datatype.Type, src, tag int) (*Request, error) {
	if err := c.checkRecvArgs(src, tag); err != nil {
		return nil, err
	}
	if count < 0 {
		return nil, fmt.Errorf("%w: %d", ErrCount, count)
	}
	return c.startAsyncRecv(func(cc *Comm) (Status, error) {
		return cc.recvTyped(b, count, ty, src, tag)
	}), nil
}

// startAsyncRecv runs a receive op on a clone in the background; the
// receive posts when the op first touches the fabric, like MPI_Irecv.
func (c *Comm) startAsyncRecv(op func(*Comm) (Status, error)) *Request {
	cc := c.asyncClone()
	c.reqSeq++
	r := &Request{owner: c, async: cc, done: make(chan struct{}), id: c.reqSeq}
	go func() {
		defer close(r.done)
		defer func() {
			if p := recover(); p != nil {
				r.err = fmt.Errorf("mpi: async op panicked: %v", p)
			}
		}()
		r.status, r.err = op(cc)
	}()
	return r
}

// Wait blocks until the operation completes and folds its virtual time
// into the caller, like MPI_Wait.
func (r *Request) Wait() (Status, error) {
	<-r.done
	if !r.finished {
		r.owner.clock.AdvanceTo(r.async.clock.Now())
		r.finished = true
	}
	return r.status, r.err
}

// Test reports whether the operation has completed without blocking,
// like MPI_Test; when it returns true the time is folded exactly as
// Wait would.
func (r *Request) Test() (bool, Status, error) {
	select {
	case <-r.done:
		st, err := r.Wait()
		return true, st, err
	default:
		return false, Status{}, nil
	}
}

// WaitAll completes a set of requests, returning the first error, like
// MPI_Waitall.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
