package mpi

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/buf"
	"repro/internal/datatype"
	"repro/internal/simnet"
	"repro/internal/vclock"
)

// waitTimeoutRealFallback bounds the real time a deadline-bounded Wait
// spends before declaring the timeout even when the simulated world
// never goes quiescent (ranks spinning in compute, external
// injections). The virtual clock still advances by the virtual
// deadline, so measured results stay deterministic.
const waitTimeoutRealFallback = 250 * time.Millisecond

// Request tracks a non-blocking operation, like MPI_Request. Complete
// it with Wait or poll with Test.
type Request struct {
	owner *Comm
	async *Comm // clone whose clock the background half advances
	done  chan struct{}

	status   Status
	err      error
	finished bool
	id       int

	// cancel, armed on tracked fabrics, tears the async half's blocking
	// fabric waits down when a deadline fires.
	cancel chan struct{}
	// deadline, when positive, bounds every Wait on this request (see
	// SetDeadline).
	deadline vclock.Duration
}

// asyncClone returns a clone of the Comm whose clock starts at the
// caller's current time and advances independently; Wait folds the
// result back. Fabric, cache state (internally locked) and the attach
// pool are shared.
func (c *Comm) asyncClone() *Comm {
	cc := *c
	cl := &vclock.Clock{}
	cl.AdvanceTo(c.clock.Now())
	cc.clock = cl
	return &cc
}

// Isend starts a non-blocking contiguous send, like MPI_Isend. The
// message enters the network in program order (the envelope is
// delivered before Isend returns), so pairwise ordering guarantees
// hold; only the rendezvous completion runs in the background.
func (c *Comm) Isend(b buf.Block, dest, tag int) (*Request, error) {
	if err := c.checkP2P(dest, tag); err != nil {
		return nil, err
	}
	return c.startAsyncSend(func(cc *Comm, fl sendFlags) error {
		return cc.sendContig(b, dest, tag, fl)
	})
}

// IsendType starts a non-blocking derived-datatype send.
func (c *Comm) IsendType(b buf.Block, count int, ty *datatype.Type, dest, tag int) (*Request, error) {
	if err := c.checkP2P(dest, tag); err != nil {
		return nil, err
	}
	if count < 0 {
		return nil, fmt.Errorf("%w: %d", ErrCount, count)
	}
	return c.startAsyncSend(func(cc *Comm, fl sendFlags) error {
		return cc.sendTyped(b, count, ty, dest, tag, fl)
	})
}

// newRequest builds the request shell shared by the async starters: on
// tracked fabrics the background half is registered with the
// quiescence detector as a worker, and the cancel channel that a
// deadline closes is threaded into the clone's blocking fabric waits.
func (c *Comm) newRequest(cc *Comm) *Request {
	c.reqSeq++
	r := &Request{owner: c, async: cc, done: make(chan struct{}), id: c.reqSeq}
	if c.fabric.Tracking() {
		r.cancel = make(chan struct{})
		cc.cancelCh = r.cancel
		c.fabric.WorkerStart()
	}
	return r
}

// startAsyncSend runs op on a clone. To preserve MPI's non-overtaking
// rule the envelope must enter the fabric before Isend returns, so a
// later blocking send from the same rank cannot overtake it. The
// protocol layer signals the delivered channel right after it enqueues
// the envelope (both sendContig and sendTyped deliver before they
// first block); startAsyncSend waits for that signal.
func (c *Comm) startAsyncSend(op func(*Comm, sendFlags) error) (*Request, error) {
	cc := c.asyncClone()
	delivered := make(chan struct{})
	r := c.newRequest(cc)
	tracked := r.cancel != nil
	go func() {
		defer close(r.done)
		if tracked {
			defer c.fabric.WorkerDone()
		}
		defer func() {
			if p := recover(); p != nil {
				r.err = fmt.Errorf("mpi: async op panicked: %v", p)
			}
		}()
		r.err = op(cc, sendFlags{delivered: delivered})
	}()
	select {
	case <-delivered:
	case <-r.done: // op failed before delivering
	}
	return r, nil
}

// Irecv starts a non-blocking receive, like MPI_Irecv. When several
// Irecvs with overlapping patterns are outstanding, their matching
// order is unspecified (a documented divergence from MPI's
// posted-receive queue order; the benchmark patterns never rely on
// it).
func (c *Comm) Irecv(b buf.Block, src, tag int) (*Request, error) {
	if err := c.checkRecvArgs(src, tag); err != nil {
		return nil, err
	}
	return c.startAsyncRecv(func(cc *Comm) (Status, error) {
		return cc.recvContig(b, src, tag)
	}), nil
}

// IrecvType starts a non-blocking derived-datatype receive, like
// MPI_Irecv with a non-contiguous type: the payload is scattered into
// b's layout when the matching send completes, and a rendezvous sendv
// sender is offered the layout for the fused one-pass scatter exactly
// as RecvType offers it. The matching-order caveat of Irecv applies.
func (c *Comm) IrecvType(b buf.Block, count int, ty *datatype.Type, src, tag int) (*Request, error) {
	if err := c.checkRecvArgs(src, tag); err != nil {
		return nil, err
	}
	if count < 0 {
		return nil, fmt.Errorf("%w: %d", ErrCount, count)
	}
	return c.startAsyncRecv(func(cc *Comm) (Status, error) {
		return cc.recvTyped(b, count, ty, src, tag)
	}), nil
}

// startAsyncRecv runs a receive op on a clone in the background; the
// receive posts when the op first touches the fabric, like MPI_Irecv.
func (c *Comm) startAsyncRecv(op func(*Comm) (Status, error)) *Request {
	cc := c.asyncClone()
	r := c.newRequest(cc)
	tracked := r.cancel != nil
	go func() {
		defer close(r.done)
		if tracked {
			defer c.fabric.WorkerDone()
		}
		defer func() {
			if p := recover(); p != nil {
				r.err = fmt.Errorf("mpi: async op panicked: %v", p)
			}
		}()
		r.status, r.err = op(cc)
	}()
	return r
}

// SetDeadline bounds every subsequent Wait on this request by d of
// virtual time: instead of blocking forever on an operation that can
// no longer complete, Wait returns a typed TimeoutError once the
// simulation proves no progress is possible (or the real-time fallback
// elapses), and charges exactly d to the caller's virtual clock.
// Non-positive d clears the bound. Tearing the underlying operation
// down on timeout requires a tracked fabric (Options.Faults or
// Options.DetectDeadlock); untracked runs only detach from it.
func (r *Request) SetDeadline(d vclock.Duration) { r.deadline = d }

// misuse builds the typed error of an operation against an
// already-completed request: a RequestStateError matching
// ErrRequestInactive that still carries the error the request
// originally finished with, so a double Wait after a fabric abort
// does not swallow the abort reason.
func (r *Request) misuse(op string) error {
	state := "finished"
	if r.err != nil && chanClosed(r.owner.fabric.AbortChan()) {
		state = "aborted"
	}
	return &RequestStateError{Op: op, Rank: r.owner.rank, ID: r.id, State: state, Cause: ErrRequestInactive, Prior: r.err}
}

// Wait blocks until the operation completes and folds its virtual time
// into the caller, like MPI_Wait. Waiting twice on the same request is
// request misuse and returns a typed RequestStateError matching
// ErrRequestInactive. When a deadline is set (SetDeadline) the wait is
// bounded by it.
func (r *Request) Wait() (Status, error) {
	if r.finished {
		return Status{}, r.misuse("wait")
	}
	if r.deadline > 0 {
		return r.WaitTimeout(r.deadline)
	}
	r.await()
	return r.finish()
}

// await blocks until the background half finishes. On tracked fabrics
// the wait is registered with the quiescence detector and unwinds on
// abort (the aborted background half closes done on its own way out).
func (r *Request) await() {
	f := r.owner.fabric
	if !f.Tracking() {
		<-r.done
		return
	}
	release := f.EnterBlocked(r.owner.blockInfo("wait", AnySource, AnyTag),
		func() bool { return chanClosed(r.done) })
	select {
	case <-r.done:
	case <-f.AbortChan():
		// The abort tears the background half down too; collect it so
		// its error (the abort reason) is what this Wait reports.
		<-r.done
	}
	release()
}

// finish folds the background half's virtual time into the owner and
// retires the request.
func (r *Request) finish() (Status, error) {
	r.owner.clock.AdvanceTo(r.async.clock.Now())
	r.finished = true
	return r.status, r.err
}

// WaitTimeout is Wait bounded by d of virtual time. If the operation
// cannot complete — the simulated world is quiescent with this wait
// pending, or the real-time fallback elapses — the request is torn
// down, the caller's clock advances by exactly d, and a typed
// TimeoutError is returned. An operation that completes (or fails) in
// the teardown race reports its own result instead.
func (r *Request) WaitTimeout(d vclock.Duration) (Status, error) {
	if r.finished {
		return Status{}, r.misuse("wait")
	}
	if d <= 0 {
		r.await()
		return r.finish()
	}
	f := r.owner.fabric
	if !f.Tracking() {
		// No cancellation machinery without tracking: bound by real time
		// and detach. The background goroutine unwinds whenever its peer
		// acts (or the run ends).
		select {
		case <-r.done:
			return r.finish()
		case <-time.After(waitTimeoutRealFallback):
			r.finished = true
			r.owner.clock.Advance(d)
			return Status{}, &TimeoutError{Op: "wait", Rank: r.owner.rank, Deadline: d}
		}
	}
	info := r.owner.blockInfo("wait-timeout", AnySource, AnyTag)
	info.Deadline = true
	release := f.EnterBlocked(info, func() bool { return chanClosed(r.done) })
	ticker := time.NewTicker(200 * time.Microsecond)
	fallback := time.NewTimer(waitTimeoutRealFallback)
	defer ticker.Stop()
	defer fallback.Stop()
	timedOut := false
loop:
	for {
		select {
		case <-r.done:
			break loop
		case <-f.AbortChan():
			<-r.done
			break loop
		case <-ticker.C:
			// Deterministic verdict: nothing in the simulation is
			// runnable and no blocked wait can complete, so this request
			// can never finish — its virtual deadline has passed.
			if _, anyDeadline, q := f.Quiescent(); q && anyDeadline {
				timedOut = true
				break loop
			}
		case <-fallback.C:
			timedOut = true
			break loop
		}
	}
	release()
	if !timedOut {
		return r.finish()
	}
	// Tear the background half down: its tracked fabric waits observe
	// the closed cancel channel and unwind with ErrCanceled.
	if r.cancel != nil {
		close(r.cancel)
		r.cancel = nil
	}
	f.KickAll()
	<-r.done
	if r.err == nil || !errors.Is(r.err, simnet.ErrCanceled) {
		// Completed (or failed for its own reason) in the race with the
		// teardown: report that instead of the timeout.
		return r.finish()
	}
	r.finished = true
	r.owner.clock.Advance(d)
	return Status{}, &TimeoutError{Op: "wait", Rank: r.owner.rank, Deadline: d}
}

// Test reports whether the operation has completed without blocking,
// like MPI_Test; when it returns true the time is folded exactly as
// Wait would. Testing an already-completed request is request misuse,
// like double Wait.
func (r *Request) Test() (bool, Status, error) {
	if r.finished {
		return true, Status{}, r.misuse("test")
	}
	select {
	case <-r.done:
		st, err := r.finish()
		return true, st, err
	default:
		return false, Status{}, nil
	}
}

// WaitAll completes a set of requests, returning the first error, like
// MPI_Waitall.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
