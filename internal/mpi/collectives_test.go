package mpi

import (
	"testing"
	"time"

	"repro/internal/buf"
	"repro/internal/elem"
)

// runN runs an n-rank job with a watchdog.
func runN(t *testing.T, n int, body func(c *Comm) error) {
	t.Helper()
	if err := Run(n, Options{WallLimit: 30 * time.Second}, body); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronisesClocks(t *testing.T) {
	runN(t, 4, func(c *Comm) error {
		// Skew the clocks deliberately.
		c.Charge(float64(c.Rank()) * 1e-3)
		c.Barrier()
		if got := c.Wtime(); got < 3e-3 {
			t.Errorf("rank %d resumed at %g, want ≥ slowest rank's 3e-3", c.Rank(), got)
		}
		return nil
	})
}

func TestBcastBinomial(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8} {
		runN(t, n, func(c *Comm) error {
			b := buf.Alloc(4096)
			root := n / 2
			if c.Rank() == root {
				b.FillPattern(99)
			}
			if err := c.Bcast(b, root); err != nil {
				return err
			}
			if err := b.VerifyPattern(99); err != nil {
				t.Errorf("size %d rank %d: %v", n, c.Rank(), err)
			}
			return nil
		})
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		runN(t, n, func(c *Comm) error {
			const count = 16
			send := buf.Alloc(count * 8)
			for i := 0; i < count; i++ {
				elem.PutFloat64(send, i, float64(c.Rank()+1))
			}
			recv := buf.Alloc(count * 8)
			if err := c.Reduce(send, recv, count, OpSum, 0); err != nil {
				return err
			}
			if c.Rank() == 0 {
				want := float64(n * (n + 1) / 2)
				for i := 0; i < count; i++ {
					if got := elem.Float64(recv, i); got != want {
						t.Errorf("size %d: recv[%d] = %v, want %v", n, i, got, want)
					}
				}
			}
			return nil
		})
	}
}

func TestReduceMaxMinProd(t *testing.T) {
	runN(t, 4, func(c *Comm) error {
		send := buf.Alloc(8)
		elem.PutFloat64(send, 0, float64(c.Rank()+1))
		recv := buf.Alloc(8)
		if err := c.Reduce(send, recv, 1, OpMax, 0); err != nil {
			return err
		}
		if c.Rank() == 0 && elem.Float64(recv, 0) != 4 {
			t.Errorf("max = %v", elem.Float64(recv, 0))
		}
		if err := c.Reduce(send, recv, 1, OpMin, 0); err != nil {
			return err
		}
		if c.Rank() == 0 && elem.Float64(recv, 0) != 1 {
			t.Errorf("min = %v", elem.Float64(recv, 0))
		}
		if err := c.Reduce(send, recv, 1, OpProd, 0); err != nil {
			return err
		}
		if c.Rank() == 0 && elem.Float64(recv, 0) != 24 {
			t.Errorf("prod = %v", elem.Float64(recv, 0))
		}
		return nil
	})
}

func TestAllreduce(t *testing.T) {
	runN(t, 5, func(c *Comm) error {
		send := buf.Alloc(8)
		elem.PutFloat64(send, 0, 2)
		recv := buf.Alloc(8)
		if err := c.Allreduce(send, recv, 1, OpSum); err != nil {
			return err
		}
		if got := elem.Float64(recv, 0); got != 10 {
			t.Errorf("rank %d: allreduce = %v, want 10", c.Rank(), got)
		}
		return nil
	})
}

func TestGatherScatter(t *testing.T) {
	runN(t, 4, func(c *Comm) error {
		// Gather: each rank contributes 8 bytes with its rank pattern.
		send := buf.Alloc(8)
		send.FillPattern(byte(c.Rank()))
		recv := buf.Alloc(8 * 4)
		if err := c.Gather(send, recv, 2); err != nil {
			return err
		}
		if c.Rank() == 2 {
			for r := 0; r < 4; r++ {
				if err := recv.Slice(r*8, 8).VerifyPattern(byte(r)); err != nil {
					t.Errorf("gather slot %d: %v", r, err)
				}
			}
		}
		// Scatter back out.
		mine := buf.Alloc(8)
		if err := c.Scatter(recv, mine, 2); err != nil {
			return err
		}
		if c.Rank() == 2 {
			// Root's slice was its own contribution.
			return mine.VerifyPattern(2)
		}
		return mine.VerifyPattern(byte(c.Rank()))
	})
}

func TestAllgatherRing(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		runN(t, n, func(c *Comm) error {
			send := buf.Alloc(16)
			send.FillPattern(byte(c.Rank() * 3))
			recv := buf.Alloc(16 * n)
			if err := c.Allgather(send, recv); err != nil {
				return err
			}
			for r := 0; r < n; r++ {
				if err := recv.Slice(r*16, 16).VerifyPattern(byte(r * 3)); err != nil {
					t.Errorf("size %d rank %d slot %d: %v", n, c.Rank(), r, err)
				}
			}
			return nil
		})
	}
}

func TestAlltoall(t *testing.T) {
	runN(t, 4, func(c *Comm) error {
		const bl = 8
		send := buf.Alloc(bl * 4)
		for r := 0; r < 4; r++ {
			send.Slice(r*bl, bl).FillPattern(byte(c.Rank()*10 + r))
		}
		recv := buf.Alloc(bl * 4)
		if err := c.Alltoall(send, recv, bl); err != nil {
			return err
		}
		for r := 0; r < 4; r++ {
			// Slot r holds what rank r sent to me.
			if err := recv.Slice(r*bl, bl).VerifyPattern(byte(r*10 + c.Rank())); err != nil {
				t.Errorf("rank %d from %d: %v", c.Rank(), r, err)
			}
		}
		return nil
	})
}

func TestScanPrefixSums(t *testing.T) {
	runN(t, 5, func(c *Comm) error {
		send := buf.Alloc(8)
		elem.PutFloat64(send, 0, float64(c.Rank()+1))
		recv := buf.Alloc(8)
		if err := c.Scan(send, recv, 1, OpSum); err != nil {
			return err
		}
		want := float64((c.Rank() + 1) * (c.Rank() + 2) / 2)
		if got := elem.Float64(recv, 0); got != want {
			t.Errorf("rank %d scan = %v, want %v", c.Rank(), got, want)
		}
		return nil
	})
}

func TestSplitPairs(t *testing.T) {
	// Six ranks split into three pairs; each pair ping-pongs on its own
	// communicator — the node-scaling experiment's structure (§4.7).
	runN(t, 6, func(c *Comm) error {
		pair, err := c.Split(c.Rank()/2, c.Rank()%2)
		if err != nil {
			return err
		}
		if pair.Size() != 2 {
			t.Errorf("pair size = %d", pair.Size())
		}
		b := buf.Alloc(512)
		if pair.Rank() == 0 {
			b.FillPattern(byte(c.Rank() / 2))
			if err := pair.Send(b, 1, 0); err != nil {
				return err
			}
		} else {
			if _, err := pair.Recv(b, 0, 0); err != nil {
				return err
			}
			if err := b.VerifyPattern(byte(c.Rank() / 2)); err != nil {
				t.Errorf("pair %d: %v", c.Rank()/2, err)
			}
		}
		pair.Barrier()
		return nil
	})
}

func TestSplitByKeyOrdering(t *testing.T) {
	runN(t, 4, func(c *Comm) error {
		// Same color; key reverses the ranks.
		nc, err := c.Split(0, -c.Rank())
		if err != nil {
			return err
		}
		if want := c.Size() - 1 - c.Rank(); nc.Rank() != want {
			t.Errorf("new rank = %d, want %d", nc.Rank(), want)
		}
		return nil
	})
}

func TestSplitTrafficIsolated(t *testing.T) {
	runN(t, 4, func(c *Comm) error {
		nc, err := c.Split(c.Rank()%2, 0)
		if err != nil {
			return err
		}
		// Ranks 0,2 are pair 0; ranks 1,3 are pair 1. Both pairs use
		// tag 0 concurrently; contexts must keep them apart.
		b := buf.Alloc(64)
		if nc.Rank() == 0 {
			b.FillPattern(byte(100 + c.Rank()%2))
			return nc.Send(b, 1, 0)
		}
		if _, err := nc.Recv(b, 0, 0); err != nil {
			return err
		}
		return b.VerifyPattern(byte(100 + c.Rank()%2))
	})
}
