package mpi

// Node topology helpers: the simulated machine groups blocks of
// Mem.NodeSize consecutive world ranks into nodes (see
// memsim.Hierarchy.NodeSize). The point-to-point transport charges the
// profile's IntraNodeLatency for hops that stay inside a node, and the
// typed collectives switch to two-level (leader tree / leader ring)
// topologies keyed off the same boundary — see collectives_hier.go.

// nodeSize returns the ranks-per-node granularity, 0 for a flat
// machine (NodeSize unset, 1, or no intra-node latency advantage to
// exploit).
func (c *Comm) nodeSize() int {
	ns := c.prof.Mem.NodeSize
	if ns <= 1 {
		return 0
	}
	return ns
}

// nodeOf returns the node index of a communicator rank, mapping
// through the communicator's members to world endpoints — the machine
// boundary is physical, so a Split communicator's scattered members
// land on their true nodes.
func (c *Comm) nodeOf(rank int) int {
	ns := c.nodeSize()
	if ns == 0 {
		return 0
	}
	return c.endpoint(rank) / ns
}

// sameNode reports whether two communicator ranks share a node.
func (c *Comm) sameNode(a, b int) bool {
	return c.nodeSize() != 0 && c.nodeOf(a) == c.nodeOf(b)
}

// linkLatency is the one-way small-message latency from this rank to
// peer: the shared-memory hop when both sit on one node and the
// profile grants the discount, the wire NetLatency otherwise.
func (c *Comm) linkLatency(peer int) float64 {
	if c.prof.IntraNodeLatency > 0 && c.sameNode(c.rank, peer) {
		return c.prof.IntraNodeLatency
	}
	return c.prof.NetLatency
}
