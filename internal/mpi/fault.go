package mpi

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/buf"
	"repro/internal/datatype"
	"repro/internal/memsim"
	"repro/internal/simnet"
	"repro/internal/vclock"
)

// This file is the recovery half of the fault-injection subsystem: the
// typed error taxonomy, the retry policy, the checksum plumbing of the
// protocol paths, the abort/cancel-aware handshake waits, and the
// quiescence (deadlock) detector that names stuck endpoints instead of
// hanging the run.

// Typed error sentinels; the structured errors below match them
// through errors.Is.
var (
	// ErrTimeout marks a Wait that hit its virtual-clock deadline.
	ErrTimeout = errors.New("mpi: operation timed out")
	// ErrIntegrity marks a payload that failed checksum verification
	// with the retry budget exhausted.
	ErrIntegrity = errors.New("mpi: payload failed integrity verification")
	// ErrRetriesExhausted marks a send whose every attempt was lost or
	// damaged in flight.
	ErrRetriesExhausted = errors.New("mpi: retry budget exhausted")
	// ErrShortDelivery marks a message whose payload arrived shorter
	// than its envelope advertised (a truncation fault) with no retry
	// machinery armed to re-request it.
	ErrShortDelivery = simnet.ErrShortDelivery
	// ErrRequestInactive marks Wait/Test on a request that already
	// completed (double-Wait) or was never started.
	ErrRequestInactive = errors.New("mpi: request is not active")
	// ErrRequestActive marks Start/Free on a persistent request with a
	// started, un-waited instance.
	ErrRequestActive = errors.New("mpi: persistent request is active")
	// ErrRequestFreed marks any use of a persistent request after Free.
	ErrRequestFreed = errors.New("mpi: persistent request used after Free")
	// errPeerGone rides the rendezvous Ack/Done channels when one side
	// abandons a matched handshake (deadline cancellation).
	errPeerGone = errors.New("mpi: rendezvous peer abandoned the handshake")
)

// RequestStateError is the typed request-misuse error: an operation
// invoked against a request in a state that cannot honor it (Wait or
// Test on a completed request, Start or Wait on a freed persistent
// request, double Free). Cause is the matching sentinel —
// ErrRequestInactive, ErrRequestActive or ErrRequestFreed — so
// errors.Is keeps matching; Prior, when non-nil, is the error the
// request originally completed with, so a Wait-after-abort misuse
// still surfaces the abort reason it swallowed.
type RequestStateError struct {
	Op    string // "wait", "test", "start", "free"
	Rank  int
	ID    int    // Request id; 0 for persistent requests
	State string // "finished", "aborted", "active", "inactive", "freed"
	Cause error
	Prior error
}

func (e *RequestStateError) Error() string {
	s := fmt.Sprintf("mpi: rank %d: %s on %s request", e.Rank, e.Op, e.State)
	if e.ID > 0 {
		s = fmt.Sprintf("%s #%d", s, e.ID)
	}
	if e.Prior != nil {
		s = fmt.Sprintf("%s (completed with: %v)", s, e.Prior)
	}
	return fmt.Sprintf("%s: %v", s, e.Cause)
}

// Unwrap exposes the sentinel to errors.Is/As.
func (e *RequestStateError) Unwrap() error { return e.Cause }

// TimeoutError is the typed error of a deadline-bounded Wait: the
// operation did not complete within the virtual-clock deadline.
type TimeoutError struct {
	Op       string
	Rank     int
	Deadline vclock.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("mpi: rank %d: %s did not complete within %v: %v", e.Rank, e.Op, time.Duration(e.Deadline), ErrTimeout)
}

// Is matches ErrTimeout.
func (e *TimeoutError) Is(target error) bool { return target == ErrTimeout }

// DeliveryError is the typed error of a send whose retry budget ran
// out: every attempt was dropped or damaged in flight.
type DeliveryError struct {
	Op       string
	Rank     int
	Peer     int
	Tag      int
	Attempts int
	Last     simnet.FaultKind
}

func (e *DeliveryError) Error() string {
	return fmt.Sprintf("mpi: rank %d: %s to rank %d tag %d failed after %d attempts (last fault: %v): %v",
		e.Rank, e.Op, e.Peer, e.Tag, e.Attempts, e.Last, ErrRetriesExhausted)
}

// Is matches ErrRetriesExhausted.
func (e *DeliveryError) Is(target error) bool { return target == ErrRetriesExhausted }

// IntegrityError is the typed error of a rendezvous payload that never
// verified within the retry budget; both handshake sides return it.
type IntegrityError struct {
	Op       string
	Rank     int
	Peer     int
	Tag      int
	Attempts int
	Want     uint64
	Got      uint64
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("mpi: rank %d: %s with rank %d tag %d failed verification after %d attempts: %v",
		e.Rank, e.Op, e.Peer, e.Tag, e.Attempts, ErrIntegrity)
}

// Is matches ErrIntegrity.
func (e *IntegrityError) Is(target error) bool { return target == ErrIntegrity }

// DeadlockReport is the quiescence detector's structured finding: the
// stuck endpoints with their protocol states, sources, tags and
// blocked-since times.
type DeadlockReport struct {
	Stuck []simnet.BlockInfo
}

func (r DeadlockReport) String() string {
	if len(r.Stuck) == 0 {
		return "no stuck endpoints"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d stuck endpoint(s):", len(r.Stuck))
	for _, b := range r.Stuck {
		sb.WriteString("\n  ")
		sb.WriteString(b.String())
	}
	return sb.String()
}

// DeadlockError is the typed error every blocked operation returns
// after the quiescence detector proves the run can no longer make
// progress.
type DeadlockError struct {
	Report DeadlockReport
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("%v: %s", ErrDeadlock, e.Report)
}

// Is matches ErrDeadlock.
func (e *DeadlockError) Is(target error) bool { return target == ErrDeadlock }

// CollectiveError wraps the failure of one leg of a collective with
// the operation, the reporting rank, and — when the failure is
// attributable to a specific transport leg — the peer rank and the
// topology role of that leg, so a failed leg surfaces as a typed
// error at every participant instead of deadlocking the tree/ring,
// and a chaos run can attribute the failure to the exact edge of the
// topology that lost it.
type CollectiveError struct {
	Op   string
	Rank int
	// Peer is the remote rank of the failed leg; -1 when the failure
	// happened outside an attributable point-to-point leg (argument
	// validation, local staging, a fabric-wide abort).
	Peer int
	// Leg names the topology role of the failed leg ("tree-parent",
	// "tree-child", "fan-in", "fan-out", "ring-send", "ring-recv",
	// "pairwise-send", "pairwise-recv", "intra-fan", "intra-gather",
	// "leader-fan"); empty when unknown.
	Leg string
	Err error
}

func (e *CollectiveError) Error() string {
	if e.Peer >= 0 && e.Leg != "" {
		return fmt.Sprintf("mpi: collective %s failed at rank %d (%s leg, peer %d): %v", e.Op, e.Rank, e.Leg, e.Peer, e.Err)
	}
	return fmt.Sprintf("mpi: collective %s failed at rank %d: %v", e.Op, e.Rank, e.Err)
}

// Unwrap exposes the leg's error to errors.Is/As.
func (e *CollectiveError) Unwrap() error { return e.Err }

// legFault carries the attribution of one failed collective transport
// leg — the peer rank and the topology role — from the collSend /
// collRecv / collIsend call sites up to wrapColl, which folds it into
// the CollectiveError.
type legFault struct {
	peer int
	leg  string
	err  error
}

func (e *legFault) Error() string { return e.err.Error() }
func (e *legFault) Unwrap() error { return e.err }

// legWrap tags a transport leg's failure with its peer and topology
// role; nil passes through.
func legWrap(peer int, leg string, err error) error {
	if err == nil {
		return nil
	}
	return &legFault{peer: peer, leg: leg, err: err}
}

// wrapColl tags a collective leg's failure; nil and already-tagged
// errors pass through. Leg attribution recorded at the transport call
// site (legFault) is folded into the CollectiveError.
func (c *Comm) wrapColl(op string, err error) error {
	if err == nil {
		return err
	}
	var ce *CollectiveError
	if errors.As(err, &ce) {
		return err
	}
	peer, leg := -1, ""
	var lf *legFault
	if errors.As(err, &lf) {
		peer, leg = lf.peer, lf.leg
	}
	return &CollectiveError{Op: op, Rank: c.rank, Peer: peer, Leg: leg, Err: err}
}

// collErr tags a collective leg's failure and, when the failure is a
// terminal fault-recovery error on a tracked run, propagates it to
// every participant by aborting the fabric: ranks blocked in other
// legs of the collective unwind with the same typed CollectiveError
// instead of deadlocking on the missing leg.
func (c *Comm) collErr(op string, err error) error {
	if err == nil {
		return nil
	}
	ce := c.wrapColl(op, err)
	if c.fabric.Tracking() &&
		(errors.Is(err, ErrRetriesExhausted) || errors.Is(err, ErrIntegrity) ||
			errors.Is(err, ErrTimeout) || errors.Is(err, simnet.ErrShortDelivery)) {
		c.fabric.Abort(ce)
	}
	return ce
}

// RetryPolicy bounds the recovery machinery: how many retransmissions
// a send may use and how the modeled ACK-timeout backoff grows. The
// zero value means DefaultRetryPolicy.
type RetryPolicy struct {
	// MaxRetries is the retransmission budget per payload (attempts =
	// MaxRetries + 1). Negative disables retries entirely: the first
	// fault is terminal.
	MaxRetries int
	// BaseBackoff is the virtual-clock cost of the first
	// retransmission round (the modeled ACK-timeout/NACK turnaround);
	// it doubles per retry up to MaxBackoff.
	BaseBackoff vclock.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff vclock.Duration
	// WholeReplay disables selective chunk retransmission: damaged
	// rendezvous attempts are verified and replayed as whole
	// transfers, exactly as before the per-chunk protocol existed.
	// Chunking, checksumming, and every other cost stay identical, so
	// a run with this set is the controlled baseline the chaos-scale
	// study (E21) measures the selective protocol against.
	WholeReplay bool
}

// DefaultRetryPolicy survives the chaos suite's default fault rates:
// eight retransmissions starting at a 20µs backoff, capped at 2ms.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 8, BaseBackoff: 20_000, MaxBackoff: 2_000_000}
}

// normalized fills zero fields with the defaults.
func (rp RetryPolicy) normalized() RetryPolicy {
	def := DefaultRetryPolicy()
	if rp.MaxRetries == 0 {
		rp.MaxRetries = def.MaxRetries
	} else if rp.MaxRetries < 0 {
		rp.MaxRetries = 0
	}
	if rp.BaseBackoff <= 0 {
		rp.BaseBackoff = def.BaseBackoff
	}
	if rp.MaxBackoff <= 0 {
		rp.MaxBackoff = def.MaxBackoff
	}
	return rp
}

// backoff returns the modeled retransmission delay before the given
// retry (1-based): exponential with a cap.
func (rp RetryPolicy) backoff(retry int) vclock.Duration {
	d := rp.BaseBackoff
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= rp.MaxBackoff {
			return rp.MaxBackoff
		}
	}
	if d > rp.MaxBackoff {
		d = rp.MaxBackoff
	}
	return d
}

// faultsOn reports whether this communicator's fabric has a fault plan
// armed — the single gate of every checksum/retry code path, so the
// clean path stays byte- and allocation-identical to the fault-free
// build.
func (c *Comm) faultsOn() bool { return c.faults }

// ObservedFaultProfile builds a memsim.FaultProfile calibrated from
// what this rank's fabric actually did rather than what the injector
// was configured to do: the retry counter against the completed sends,
// inverted through the leg-compounding model at legsPerTransfer
// faultable legs per attempt (memsim.EstimateLegLossRate). The
// retry/backoff pricing fields come from the communicator's own policy,
// converted from virtual nanoseconds to seconds. A model panel that
// prices recovery from this profile tracks the run it sits next to,
// drifting injector or not. The second result is false when this rank
// has completed no sends at all: the zero-rate profile is then an
// explicit not-calibrated state, not a measured-clean link.
func (c *Comm) ObservedFaultProfile(legsPerTransfer int64) (memsim.FaultProfile, bool) {
	ct := c.Counters()
	pol := c.retry
	f := memsim.FaultProfile{
		MaxRetries:  pol.MaxRetries,
		BaseBackoff: float64(pol.BaseBackoff) / 1e9,
		MaxBackoff:  float64(pol.MaxBackoff) / 1e9,
	}
	return f.Calibrated(ct.Retries, ct.EagerSends+ct.RendezvousSends, legsPerTransfer)
}

// blockInfo builds the quiescence-detector record of a wait.
func (c *Comm) blockInfo(op string, peer, tag int) simnet.BlockInfo {
	return simnet.BlockInfo{
		Rank: c.endpoint(c.rank), Op: op, Ctx: c.ctx,
		Src: peer, Tag: tag, Since: c.clock.Now(),
	}
}

// abortErr surfaces the fabric's abort reason as the wait's error.
func (c *Comm) abortErrFor(op string) error {
	if err := c.fabric.AbortErr(); err != nil {
		return err
	}
	return fmt.Errorf("%s: %w", op, simnet.ErrAborted)
}

// chanClosed reports (non-blocking) whether ch is closed.
func chanClosed(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// awaitMatch waits for the receiver half of the rendezvous handshake.
// Under tracking it registers with the quiescence detector and unwinds
// on fabric abort or the request's deadline cancellation; on the clean
// path it is the plain channel receive it always was.
func (c *Comm) awaitMatch(m *simnet.Message, peer, tag int) (simnet.RdvMatch, error) {
	if !c.fabric.Tracking() {
		return <-m.Match, nil
	}
	// Readiness must stay true between consuming the event and
	// deregistering: the poster bumps the wake counter before the
	// channel send, so a descheduled waiter in that window still reads
	// as progress instead of fabricating a quiescent state.
	w0 := m.WakeSeq()
	release := c.fabric.EnterBlocked(c.blockInfo("rdv-match", peer, tag),
		func() bool { return len(m.Match) > 0 || m.WakeSeq() != w0 })
	defer release()
	select {
	case match := <-m.Match:
		return match, nil
	case <-c.fabric.AbortChan():
		return simnet.RdvMatch{}, c.abortErrFor("rdv-match")
	case <-c.cancelCh:
		// The sender's deadline fired mid-handshake: tell the eventual
		// receiver the payload will never come.
		m.NoteWake()
		select {
		case m.Done <- simnet.RdvDone{Err: errPeerGone}:
		default:
		}
		return simnet.RdvMatch{}, simnet.ErrCanceled
	}
}

// awaitDone waits for the sender's payload-complete notice.
func (c *Comm) awaitDone(m *simnet.Message, peer, tag int) (simnet.RdvDone, error) {
	if !c.fabric.Tracking() {
		return <-m.Done, nil
	}
	w0 := m.WakeSeq()
	release := c.fabric.EnterBlocked(c.blockInfo("rdv-done", peer, tag),
		func() bool { return len(m.Done) > 0 || m.WakeSeq() != w0 })
	defer release()
	select {
	case done := <-m.Done:
		return done, nil
	case <-c.fabric.AbortChan():
		return simnet.RdvDone{}, c.abortErrFor("rdv-done")
	case <-c.cancelCh:
		if m.Ack != nil {
			// Unblock a sender waiting for this attempt's verdict.
			m.NoteWake()
			select {
			case m.Ack <- errPeerGone:
			default:
			}
		}
		return simnet.RdvDone{}, simnet.ErrCanceled
	}
}

// awaitAck waits for the receiver's per-attempt verdict.
func (c *Comm) awaitAck(m *simnet.Message, peer, tag int) (error, error) {
	if !c.fabric.Tracking() {
		return <-m.Ack, nil
	}
	w0 := m.WakeSeq()
	release := c.fabric.EnterBlocked(c.blockInfo("rdv-ack", peer, tag),
		func() bool { return len(m.Ack) > 0 || m.WakeSeq() != w0 })
	defer release()
	select {
	case ack := <-m.Ack:
		return ack, nil
	case <-c.fabric.AbortChan():
		return nil, c.abortErrFor("rdv-ack")
	case <-c.cancelCh:
		return nil, simnet.ErrCanceled
	}
}

// eagerIntact verifies a matched eager envelope: in-flight error
// marks, corruption marks, advertised-vs-delivered length, and the
// sender's checksum when present.
func (c *Comm) eagerIntact(m *simnet.Message) bool {
	if m.Err != nil || m.Corrupt {
		return false
	}
	if int64(m.Payload.Len()) < m.Bytes && m.Bytes > 0 {
		return false
	}
	if m.HasSum && buf.ChecksumOf(m.Payload) != m.Sum {
		return false
	}
	return true
}

// discardEager rejects a damaged eager delivery: the transit copy is
// recycled and the receiver re-matches for the retransmission. Faulted
// deliveries never carry OnConsume (the Bsend path releases its region
// sender-side under faults), so nothing else fires here.
func (c *Comm) discardEager(m *simnet.Message) {
	c.fabric.NoteIntegrityReject(c.endpoint(c.rank))
	buf.PutPooled(m.Payload)
	m.Payload = buf.Block{}
}

// matchVerified matches a receive and, when faults are armed, discards
// damaged eager deliveries until an intact one (or a rendezvous
// envelope) arrives — the receiver half of the eager ACK/retry
// machinery. With faults off, a Message.Err attached by a raw fabric
// injection still surfaces through the completion path as a typed
// error.
func (c *Comm) matchVerified(src, tag int) (*simnet.Message, error) {
	m, err := c.matchFrom(src, tag)
	if err != nil {
		return nil, err
	}
	if !c.faultsOn() {
		return m, nil
	}
	for m.Kind == simnet.KindEager && !c.eagerIntact(m) {
		c.discardEager(m)
		// Re-match on the concrete damaged source: a wildcard receive
		// must not switch sources between a damaged attempt and its
		// retransmission.
		m, err = c.matchEndpoint(m.Src, m.Tag)
		if err != nil {
			return nil, err
		}
	}
	return m, nil
}

// eagerRetryStep decides, after an eager attempt's fault verdict,
// whether to retransmit: it charges the modeled ACK-timeout backoff
// and counts the retry, or returns the terminal typed error.
func (c *Comm) eagerRetryStep(attempt *int, op string, dest, tag int, f simnet.Fault) (bool, error) {
	if !f.NeedsResend() {
		return false, nil
	}
	pol := c.retry
	if *attempt >= pol.MaxRetries {
		return false, &DeliveryError{Op: op, Rank: c.rank, Peer: dest, Tag: tag, Attempts: *attempt + 1, Last: f.Kind}
	}
	*attempt++
	c.fabric.NoteRetry(c.endpoint(c.rank))
	c.clock.Advance(pol.backoff(*attempt))
	return true, nil
}

// rdvSendLoop drives the sender's attempt loop of a rendezvous
// payload. xfer performs one attempt's copy, applying the drawn
// fault's mechanical effect, and reports the attempt's checksum
// claim: the TRUE sum of the source stream (hasSum), or poisoned when
// the attempt is known-damaged but unverifiable (virtual payloads,
// checksum-less engines). Each attempt's transfer cost must be charged
// to the clock inside xfer.
func (c *Comm) rdvSendLoop(m *simnet.Message, dest, tag int, n int64,
	xfer func(f simnet.Fault) (sum uint64, hasSum, poisoned bool, err error)) error {
	pol := c.retry
	attempt := 0
	for {
		var f simnet.Fault
		if c.faultsOn() {
			f = c.fabric.PayloadFault(c.endpoint(c.rank), c.endpoint(dest), n)
		}
		sum, hasSum, poisoned, err := xfer(f)
		if err != nil {
			m.NoteWake()
			m.Done <- simnet.RdvDone{Err: err}
			return err
		}
		final := m.Ack == nil || attempt >= pol.MaxRetries
		m.NoteWake()
		m.Done <- simnet.RdvDone{
			Arrival: c.clock.Now() + dur(c.linkLatency(dest)),
			Bytes:   n,
			Sum:     sum, HasSum: hasSum, Poisoned: poisoned, Final: final,
		}
		if m.Ack == nil {
			return nil
		}
		ack, werr := c.awaitAck(m, dest, tag)
		if werr != nil {
			return werr
		}
		if ack == nil {
			return nil
		}
		if errors.Is(ack, errPeerGone) {
			return &DeliveryError{Op: "rdv-send", Rank: c.rank, Peer: dest, Tag: tag, Attempts: attempt + 1, Last: f.Kind}
		}
		if final {
			return &IntegrityError{Op: "rdv-send", Rank: c.rank, Peer: dest, Tag: tag, Attempts: attempt + 1, Want: sum}
		}
		attempt++
		c.fabric.NoteRetry(c.endpoint(c.rank))
		c.clock.Advance(pol.backoff(attempt))
	}
}

// rdvRecvVerify completes the receiver half of a rendezvous payload:
// it waits for each attempt's Done, verifies what landed against the
// sender's checksum claims, and ACKs or NACKs through the handshake's
// Ack channel until an attempt passes or the sender's budget runs out.
// verify recomputes the receiver-side sum over the landed bytes of
// packed-stream range [lo,hi), clamped to local capacity; the second
// result reports whether verification is possible. Whole-transfer
// attempts verify [0,Bytes) once and NACK with ErrIntegrity; chunked
// attempts (Done.Chunks > 0) verify per chunk, track which chunks have
// been accepted across attempts, suppress redelivered duplicates, and
// NACK a simnet.ChunkNack bitmap so the sender replays only the
// damaged chunks.
func (c *Comm) rdvRecvVerify(m *simnet.Message, peer, tag int, verify func(lo, hi int64) (uint64, bool)) (simnet.RdvDone, error) {
	attempts := 0
	var accepted simnet.ChunkBitmap
	for {
		done, err := c.awaitDone(m, peer, tag)
		if err != nil {
			return done, err
		}
		attempts++
		if done.Err != nil {
			return done, done.Err
		}
		if m.Ack == nil {
			return done, nil
		}
		if done.Chunks > 0 {
			if accepted == nil {
				accepted = simnet.NewChunkBitmap(done.Chunks)
			}
			damaged := simnet.NewChunkBitmap(done.Chunks)
			var want, got uint64
			for i := 0; i < done.Chunks; i++ {
				if !done.Sent.Get(i) {
					// Not in this attempt: damaged if still outstanding.
					if !accepted.Get(i) {
						damaged.Set(i)
					}
					continue
				}
				if accepted.Get(i) {
					// Redelivery of a chunk we already hold.
					c.fabric.NoteDupChunkSuppressed(c.endpoint(c.rank))
					continue
				}
				lo := int64(i) * done.ChunkSize
				hi := lo + done.ChunkSize
				if hi > done.Covered {
					hi = done.Covered
				}
				ok := !done.PoisonedChunks.Get(i)
				var sum uint64
				if ok && done.HasSum {
					var checkable bool
					sum, checkable = verify(lo, hi)
					if checkable && sum != done.ChunkSums[i] {
						ok = false
					}
				}
				if !ok {
					damaged.Set(i)
					want, got = done.ChunkSums[i], sum
					continue
				}
				accepted.Set(i)
				if done.Dup.Get(i) {
					// The fabric delivered this chunk twice within the
					// attempt; the second copy is discarded.
					c.fabric.NoteDupChunkSuppressed(c.endpoint(c.rank))
				}
			}
			if !damaged.Any() {
				m.NoteWake()
				m.Ack <- nil
				return done, nil
			}
			c.fabric.NoteIntegrityReject(c.endpoint(c.rank))
			m.NoteWake()
			m.Ack <- &simnet.ChunkNack{Damaged: damaged}
			if done.Final {
				return done, &IntegrityError{Op: "rdv-recv", Rank: c.rank, Peer: c.localRank(m.Src), Tag: m.Tag,
					Attempts: attempts, Want: want, Got: got}
			}
			continue
		}
		ok := !done.Poisoned
		var got uint64
		if ok && done.HasSum {
			var checkable bool
			got, checkable = verify(0, done.Bytes)
			if checkable && got != done.Sum {
				ok = false
			}
		}
		if ok {
			m.NoteWake()
			m.Ack <- nil
			return done, nil
		}
		c.fabric.NoteIntegrityReject(c.endpoint(c.rank))
		m.NoteWake()
		m.Ack <- ErrIntegrity
		if done.Final {
			return done, &IntegrityError{Op: "rdv-recv", Rank: c.rank, Peer: c.localRank(m.Src), Tag: m.Tag,
				Attempts: attempts, Want: done.Sum, Got: got}
		}
	}
}

// damageContig applies a payload fault's mechanical effect to a real
// contiguous destination of n delivered bytes; it reports false when
// the damage could not be materialised (virtual or empty blocks), in
// which case the attempt must travel poisoned.
func damageContig(dst buf.Block, n int64, f simnet.Fault) bool {
	if !f.NeedsResend() {
		return true
	}
	if dst.IsVirtual() || n <= 0 || dst.Len() == 0 {
		return false
	}
	data := dst.Bytes()
	if int64(len(data)) < n {
		n = int64(len(data))
	}
	switch f.Kind {
	case FaultCorrupt:
		data[int(f.Offset%n)] ^= 0xFF
	case FaultTruncate:
		// The suffix never arrived: damage it where the true payload
		// would have been.
		data[int(f.Keep%n)] ^= 0xFF
	case FaultDrop:
		// Nothing arrived at all; the caller skipped the copy and
		// whatever the buffer held stays. Flip one byte so a reused
		// staging block holding the previous (NACKed) attempt cannot
		// accidentally verify.
		data[0] ^= 0xFF
	}
	return true
}

// damagePlan is damageContig for a plan-described destination layout:
// the byte at packed-stream position pos is flipped through the plan's
// segment table, zero staging.
func damagePlan(plan *datatype.Plan, user buf.Block, n int64, f simnet.Fault) bool {
	if !f.NeedsResend() {
		return true
	}
	if user.IsVirtual() || n <= 0 || plan == nil {
		return false
	}
	pos := int64(0)
	switch f.Kind {
	case FaultCorrupt:
		pos = f.Offset % n
	case FaultTruncate:
		pos = f.Keep % n
	}
	it := plan.Segments()
	it.SeekTo(pos)
	off, runLen := it.Run()
	if runLen <= 0 || off >= int64(user.Len()) {
		return false
	}
	user.Bytes()[off] ^= 0xFF
	return true
}

// FaultKind aliases keep protocol code free of simnet qualifiers at
// every damage site.
const (
	FaultCorrupt  = simnet.FaultCorrupt
	FaultTruncate = simnet.FaultTruncate
	FaultDrop     = simnet.FaultDrop
)

// runDetector starts the quiescence detector: when no registered
// goroutine is runnable, at least one is blocked, and no blocked wait
// could complete, the run is deadlocked — the fabric is aborted with a
// structured report naming the stuck ranks, tags and protocol states,
// and every blocked operation returns the typed DeadlockError. Waits
// carrying their own deadline are given precedence (the detector skips
// quiescent snapshots that include one, letting WaitTimeout fire
// first). Returns a stop function.
func runDetector(fabric *simnet.Fabric) func() {
	stop := make(chan struct{})
	go func() {
		stuck, ok := fabric.WaitQuiesce(stop, 0, true)
		if ok {
			if os.Getenv("MPI_DEBUG_STACKS") != "" {
				b := make([]byte, 1<<20)
				n := runtime.Stack(b, true)
				fmt.Fprintf(os.Stderr, "=== detector fired ===\n%s\n", b[:n])
			}
			fabric.Abort(&DeadlockError{Report: DeadlockReport{Stuck: stuck}})
		}
	}()
	return func() { close(stop) }
}
