package mpi

import (
	"testing"
	"time"

	"repro/internal/buf"
	"repro/internal/datatype"
)

// benchPingPong runs b.N ping-pongs of n bytes inside one world.
func benchPingPong(b *testing.B, n int, typed bool) {
	b.Helper()
	err := Run(2, Options{WallLimit: 5 * time.Minute}, func(c *Comm) error {
		var ty *datatype.Type
		var src buf.Block
		if typed {
			var err error
			ty, err = datatype.Vector(n/8, 1, 2, datatype.Float64)
			if err != nil {
				return err
			}
			if err := ty.Commit(); err != nil {
				return err
			}
			src = buf.Alloc(int(ty.Extent()))
		} else {
			src = buf.Alloc(n)
		}
		dst := buf.Alloc(n)
		pong := buf.Alloc(0)
		c.Barrier()
		if c.Rank() == 0 {
			b.SetBytes(int64(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if typed {
					if err := c.SendType(src, 1, ty, 1, 0); err != nil {
						return err
					}
				} else {
					if err := c.Send(src, 1, 0); err != nil {
						return err
					}
				}
				if _, err := c.Recv(pong, 1, 1); err != nil {
					return err
				}
			}
			b.StopTimer()
			return nil
		}
		for i := 0; i < b.N; i++ {
			if _, err := c.Recv(dst, 0, 0); err != nil {
				return err
			}
			if err := c.Send(pong, 0, 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPingPongEager(b *testing.B)      { benchPingPong(b, 4<<10, false) }
func BenchmarkPingPongRendezvous(b *testing.B) { benchPingPong(b, 1<<20, false) }
func BenchmarkPingPongTyped(b *testing.B)      { benchPingPong(b, 1<<20, true) }

func BenchmarkBarrier8(b *testing.B) {
	err := Run(8, Options{WallLimit: 5 * time.Minute}, func(c *Comm) error {
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAllreduce8(b *testing.B) {
	err := Run(8, Options{WallLimit: 5 * time.Minute}, func(c *Comm) error {
		send := buf.Alloc(8 * 128)
		recv := buf.Alloc(8 * 128)
		c.Barrier()
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			if err := c.Allreduce(send, recv, 128, OpSum); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkOneSidedPutFence(b *testing.B) {
	err := Run(2, Options{WallLimit: 5 * time.Minute}, func(c *Comm) error {
		const n = 64 << 10
		ty, err := datatype.Vector(n/8, 1, 2, datatype.Float64)
		if err != nil {
			return err
		}
		if err := ty.Commit(); err != nil {
			return err
		}
		src := buf.Alloc(int(ty.Extent()))
		w, err := c.WinCreate(buf.Alloc(n))
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			b.SetBytes(n)
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			if err := w.Fence(); err != nil {
				return err
			}
			if c.Rank() == 0 {
				if err := w.Put(src, 1, ty, 1, 0); err != nil {
					return err
				}
			}
			if err := w.Fence(); err != nil {
				return err
			}
		}
		if c.Rank() == 0 {
			b.StopTimer()
		}
		return w.Free()
	})
	if err != nil {
		b.Fatal(err)
	}
}
