// Package mpi is a from-scratch, in-process message-passing runtime
// with the MPI semantics the paper's benchmark exercises: blocking and
// non-blocking two-sided sends under eager/rendezvous protocols,
// buffered sends with user-attached buffers, derived-datatype sends
// through chunked internal pack buffers, explicit Pack/Unpack,
// one-sided windows with active-target fences, and the usual
// collectives.
//
// Ranks are goroutines; the interconnect is internal/simnet; costs come
// from internal/perfmodel and internal/memsim and advance per-rank
// virtual clocks (internal/vclock), so measured times reproduce the
// paper's cluster behaviour deterministically. A real-time mode
// measures Go wall time instead, for sanity checks.
//
// The public API mirrors MPI closely enough that the translation is
// mechanical: Comm.Send ↔ MPI_Send, Comm.SendType ↔ MPI_Send with a
// derived datatype argument, Comm.Bsend ↔ MPI_Bsend, Win.Fence ↔
// MPI_Win_fence, and so on.
package mpi

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/buf"
	"repro/internal/memsim"
	"repro/internal/perfmodel"
	"repro/internal/simnet"
	"repro/internal/vclock"
)

// Wildcards, re-exported from the fabric.
const (
	AnySource = simnet.AnySource
	AnyTag    = simnet.AnyTag
)

// Errors of the runtime.
var (
	// ErrTruncate mirrors MPI_ERR_TRUNCATE: message longer than the
	// posted receive buffer.
	ErrTruncate = errors.New("mpi: message truncated")
	// ErrRank mirrors MPI_ERR_RANK.
	ErrRank = errors.New("mpi: rank out of range")
	// ErrTag mirrors MPI_ERR_TAG (user tags must be non-negative).
	ErrTag = errors.New("mpi: invalid tag")
	// ErrBsendBuffer mirrors MPI_ERR_BUFFER: no attached buffer or not
	// enough space left in it.
	ErrBsendBuffer = errors.New("mpi: buffered send has no buffer space")
	// ErrWin reports misuse of a one-sided window.
	ErrWin = errors.New("mpi: window misuse")
	// ErrCount reports a negative element count.
	ErrCount = errors.New("mpi: invalid count")
	// ErrDeadlock is returned by Run when the wall-clock watchdog
	// fires before all ranks finish.
	ErrDeadlock = errors.New("mpi: ranks did not finish before the watchdog deadline")
)

// Options configures a Run.
type Options struct {
	// Profile selects the simulated installation; nil means
	// perfmodel.Generic().
	Profile *perfmodel.Profile
	// RealTime switches Wtime to wall-clock measurement of the Go
	// process instead of the virtual clock. Virtual costs are still
	// tracked; they simply stop being the reported time.
	RealTime bool
	// ColdCaches disables cache-warmth tracking so every memory read
	// is priced at DRAM bandwidth.
	ColdCaches bool
	// WallLimit bounds the real duration of the whole Run as a
	// deadlock watchdog; 0 means no limit.
	WallLimit time.Duration
	// Faults arms a deterministic fault-injection plan on the fabric:
	// envelopes and rendezvous payload transfers are dropped, damaged,
	// duplicated, reordered or delayed per the plan, and the runtime's
	// checksum/ACK/retry machinery recovers (or surfaces typed errors
	// once the retry budget runs out). nil runs a clean fabric with
	// zero checksum or bookkeeping overhead.
	Faults *simnet.FaultPlan
	// Retry bounds the recovery machinery under faults; zero-value
	// fields take DefaultRetryPolicy.
	Retry RetryPolicy
	// DetectDeadlock runs the quiescence detector even on a clean
	// fabric: when no rank goroutine is runnable and no blocked
	// operation can complete, the run aborts with a structured
	// DeadlockError naming the stuck endpoints instead of hanging
	// until WallLimit. Fault-injected runs always detect.
	DetectDeadlock bool
}

// Run starts size rank goroutines connected by one fabric and waits
// for all of them. Each rank receives its own Comm. The first
// non-nil error (or recovered panic) per rank is collected into the
// returned error.
func Run(size int, opts Options, body func(*Comm) error) error {
	if size <= 0 {
		return fmt.Errorf("%w: world size %d", ErrRank, size)
	}
	prof := opts.Profile
	if prof == nil {
		prof = perfmodel.Generic()
	}
	if err := prof.Validate(); err != nil {
		return err
	}
	fabric := simnet.New(size)
	faultsOn := opts.Faults != nil
	if faultsOn {
		fabric.SetFaultPlan(opts.Faults)
	}
	if faultsOn || opts.DetectDeadlock {
		fabric.EnableTracking()
		// Register every rank before any goroutine runs, so the
		// detector can never observe a half-started world as quiescent.
		for r := 0; r < size; r++ {
			fabric.WorkerStart()
		}
	}
	retry := opts.Retry.normalized()
	var stopDetector func()
	if fabric.Tracking() {
		stopDetector = runDetector(fabric)
		defer stopDetector()
	}
	start := time.Now()
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer fabric.WorkerDone()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v\n%s", rank, p, debug.Stack())
				}
			}()
			c := &Comm{
				rank:     rank,
				size:     size,
				ctx:      0,
				members:  nil, // world: identity mapping
				fabric:   fabric,
				prof:     prof,
				clock:    &vclock.Clock{},
				cache:    memsim.NewState(&prof.Mem),
				realTime: opts.RealTime,
				start:    start,
				faults:   faultsOn,
				retry:    retry,
			}
			c.cache.SetDisabled(opts.ColdCaches)
			c.internal = buf.Alloc(1) // identity for MPI-internal buffer warmth
			errs[rank] = body(c)
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	if opts.WallLimit > 0 {
		select {
		case <-done:
		case <-time.After(opts.WallLimit):
			if fabric.Tracking() {
				// Tear the run down so blocked ranks unwind with the
				// typed error instead of leaking goroutines.
				fabric.Abort(fmt.Errorf("%w (after %v)", ErrDeadlock, opts.WallLimit))
				<-done
			} else {
				return fmt.Errorf("%w (after %v)", ErrDeadlock, opts.WallLimit)
			}
		}
	} else {
		<-done
	}
	return errors.Join(errs...)
}

// Comm is one rank's view of a communicator. All methods must be
// called from the rank's own goroutine (like an MPI process); a Comm
// is not safe for concurrent use.
type Comm struct {
	rank    int   // rank within this communicator
	size    int   // communicator size
	ctx     int   // communicator context id (0 = world)
	members []int // local rank -> fabric endpoint; nil = identity

	fabric   *simnet.Fabric
	prof     *perfmodel.Profile
	clock    *vclock.Clock
	cache    *memsim.State
	realTime bool
	start    time.Time

	attach *bsendPool // Bsend attached buffer, nil when detached

	internal buf.Block // region identity for MPI-internal staging

	// observed, when set, receives the per-Start virtual-clock cost of
	// persistent operations (the self-tuning feedback loop; see
	// ObserveInto).
	observed *memsim.ObservedHierarchy

	reqSeq int // request numbering for diagnostics
	winSeq int // window numbering; identical across ranks (collective)

	// fault-recovery configuration (see fault.go).
	faults bool        // a fault plan is armed on the fabric
	retry  RetryPolicy // normalized retransmission budget and backoff

	// cancelCh, non-nil only inside the async half of a request whose
	// run has tracking enabled, tears blocking fabric waits down when
	// the request's deadline fires.
	cancelCh chan struct{}
}

// groupSync deposits the local clock at the communicator's
// synchronisation group and resumes at the group maximum. Under
// tracking the wait is registered with the quiescence detector: a
// barrier some rank never reaches is a deadlock like any other.
func (c *Comm) groupSync() {
	g := c.fabric.GroupFor(c.ctx, c.size)
	if !c.fabric.Tracking() {
		c.clock.AdvanceTo(g.Sync(c.clock.Now()))
		return
	}
	e := g.Epoch()
	release := c.fabric.EnterBlocked(simnet.BlockInfo{
		Rank: c.endpoint(c.rank), Op: "barrier", Ctx: c.ctx,
		Src: AnySource, Tag: AnyTag, Since: c.clock.Now(),
	}, func() bool { return g.Epoch() != e })
	t := g.Sync(c.clock.Now())
	release()
	c.clock.AdvanceTo(t)
}

// Rank returns the calling process's rank in the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.size }

// endpoint maps a communicator rank to its fabric endpoint.
func (c *Comm) endpoint(rank int) int {
	if c.members == nil {
		return rank
	}
	return c.members[rank]
}

// Wtime returns the elapsed time in seconds: virtual time in model
// mode (the default), wall time in real-time mode — the exact analogue
// of MPI_Wtime in each.
func (c *Comm) Wtime() float64 {
	if c.realTime {
		return time.Since(c.start).Seconds()
	}
	return c.clock.Now().Seconds()
}

// Clock exposes the rank's virtual clock to the measurement harness.
func (c *Comm) Clock() *vclock.Clock { return c.clock }

// Cache exposes the rank's cache-warmth state; the harness flushes it
// between ping-pongs the way the paper rewrites a 50 M array.
func (c *Comm) Cache() *memsim.State { return c.cache }

// Profile returns the installation profile of the run.
func (c *Comm) Profile() *perfmodel.Profile { return c.prof }

// ObserveInto attaches an observed-cost sink: from now on, persistent
// operations on this Comm record their measured virtual-clock cost per
// Start/Wait cycle into o (memsim.PathTypedSend for typed sends,
// memsim.PathPackedSend for packed-buffer sends, memsim.PathContigSend
// for contiguous ones). The sink is safe to share across ranks; nil
// detaches. This is the measurement half of the self-tuning loop —
// core.RecommendTuned consumes the fitted coefficients.
func (c *Comm) ObserveInto(o *memsim.ObservedHierarchy) { c.observed = o }

// Observed returns the attached observed-cost sink, or nil.
func (c *Comm) Observed() *memsim.ObservedHierarchy { return c.observed }

// Charge advances the rank's virtual clock by a user-space cost in
// seconds. The benchmark schemes charge their own gather loops and
// per-element pack calls through this; MPI-internal costs are charged
// by the runtime itself.
func (c *Comm) Charge(seconds float64) {
	c.clock.Advance(vclock.FromSeconds(seconds))
}

// Counters returns this rank's fabric traffic counters.
func (c *Comm) Counters() simnet.Counters {
	return c.fabric.CountersFor(c.endpoint(c.rank))
}

// MatchStats returns the fabric-wide matching attribution snapshot:
// live shard queues and the fast-path vs wildcard split of every
// envelope match so far. The fabric is fresh per Run, so a snapshot at
// the end of a run attributes that run's whole traffic.
func (c *Comm) MatchStats() simnet.MatchStats {
	return c.fabric.MatchStatsSnapshot()
}

// checkRank validates a peer rank.
func (c *Comm) checkRank(r int) error {
	if r < 0 || r >= c.size {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrRank, r, c.size)
	}
	return nil
}

// checkTag validates a user tag (internal operations use negative
// tags, which user code must not).
func checkTag(tag int) error {
	if tag < 0 {
		return fmt.Errorf("%w: %d", ErrTag, tag)
	}
	return nil
}

// Status describes a completed receive, like MPI_Status.
type Status struct {
	Source int
	Tag    int
	// Count is the received byte count.
	Count int64
}
