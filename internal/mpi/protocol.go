package mpi

import (
	"fmt"
	"math"

	"repro/internal/buf"
	"repro/internal/datatype"
	"repro/internal/memsim"
	"repro/internal/simnet"
	"repro/internal/vclock"
)

// sendFlags tunes the internal send paths.
type sendFlags struct {
	// packed marks a payload gathered in user space (manual copy or
	// MPI_Pack output); it feeds the Cray packed-eager artefact.
	packed bool
	// forceRdv forces the rendezvous protocol (Ssend).
	forceRdv bool
	// onConsume runs when the receiver matches the message (Bsend
	// buffer release).
	onConsume func()
	// wireBW overrides the wire bandwidth (Bsend penalty, one-sided);
	// zero means the profile's nominal bandwidth.
	wireBW float64
	// asyncReturn makes the sender return right after local work with
	// the message travelling behind its back (Bsend semantics). Only
	// valid together with eager-style delivery.
	asyncReturn bool
	// delivered, when non-nil, is closed as soon as the envelope has
	// entered the fabric; Isend uses it to pin program-order delivery.
	delivered chan struct{}
	// sendv marks a plan-driven fused rendezvous send (SendvType): the
	// typed receiver may expose its user layout for the direct
	// one-pass scatter instead of allocating staging.
	sendv bool
	// pipelined routes the rendezvous chunk loop through the
	// software-pipelined chunk engine (SendpType, collective legs):
	// chunk k+1 packs into the slot ring while chunk k injects, priced
	// by memsim.PipelinedChunkCost. The measured installations
	// serialise the two stages (§2.3), so the paper schemes leave it
	// unset.
	pipelined bool
}

// signalDelivered closes the delivery notification exactly once.
func (fl *sendFlags) signalDelivered() {
	if fl.delivered != nil {
		close(fl.delivered)
		fl.delivered = nil
	}
}

// eagerOK decides the protocol for an n-byte payload: the profile's
// nominal eager test, with the effective limit adapted under pool
// pressure. Past half of the configured pool-occupancy cap the limit
// shrinks linearly — reaching zero at the cap — so eager transit
// traffic tapers off before the hard PoolOverCap wall and its latency
// cliff. wouldPool says whether this send would actually draw a pooled
// transit copy (synchronous, non-virtual payload); other sends keep
// the nominal limit. Adapted refusals are counted through
// buf.NoteEagerAdaptation and surface in PoolStats.EagerAdaptations.
func (c *Comm) eagerOK(n int64, packed, wouldPool bool) bool {
	p := c.prof
	if !p.Eager(n, packed) {
		return false
	}
	if !wouldPool {
		return true
	}
	r := buf.PoolPressureRatio()
	if r <= 0.5 {
		return true
	}
	limit := p.EagerLimit
	if packed {
		limit = int64(float64(limit) * p.PackedEagerFactor)
	}
	if n <= int64(float64(limit)*2*(1-r)) {
		return true
	}
	buf.NoteEagerAdaptation()
	return false
}

// sendContig implements every contiguous-payload send: the reference
// scheme, the manual-copy scheme, and packed sends. The payload block
// is read as one stream.
//
// Timing: the sender pays SendOverhead, then its occupancy is the
// maximum of reading the payload from memory and injecting it into the
// wire (they pipeline); the payload lands NetLatency after injection
// completes. Rendezvous adds the RTS/CTS round trip before the data
// can flow and removes the receive-side bounce-buffer copy.
func (c *Comm) sendContig(b buf.Block, dest, tag int, fl sendFlags) error {
	n := int64(b.Len())
	p := c.prof
	wireBW := fl.wireBW
	if wireBW == 0 {
		wireBW = p.NetBandwidth
	}
	eager := !fl.forceRdv && c.eagerOK(n, fl.packed, !fl.asyncReturn && !b.IsVirtual())
	if eager && !fl.asyncReturn && !b.IsVirtual() && buf.PoolOverCap(n) {
		// Backpressure: the transit pool is past its configured cap, so
		// an eager send would push it further — fall back to
		// rendezvous, which stages nothing, and record the degradation.
		buf.NotePoolDegradation()
		eager = false
	}
	if eager {
		// Eager: payload copied to a transit buffer; under faults every
		// retransmission ships a fresh copy after the modeled
		// ACK-timeout backoff.
		streamCost := c.cache.StreamCost(b.Region(), n)
		occupy := math.Max(streamCost, float64(n)/wireBW)
		attempt := 0
		for {
			c.clock.Advance(vclock.FromSeconds(p.SendOverhead))
			injectEnd := c.clock.Now() + dur(occupy)
			if !fl.asyncReturn {
				c.clock.AdvanceTo(injectEnd)
			}
			f := c.deliverEager(dest, tag, c.transitCopy(b), n, injectEnd, fl)
			fl.signalDelivered()
			again, err := c.eagerRetryStep(&attempt, "send", dest, tag, f)
			if err != nil || !again {
				if c.faultsOn() && fl.onConsume != nil {
					// Faulted deliveries travel without OnConsume (a
					// dropped copy would leak it); fire it here, where
					// the payload's fate is settled.
					fl.onConsume()
				}
				return err
			}
		}
	}
	// Rendezvous: RTS, wait for the matched receive, stream zero-copy.
	c.clock.Advance(vclock.FromSeconds(p.SendOverhead))
	m := c.newRdvMessage(dest, tag, n, fl)
	err := c.deliverRdv(m, dest, tag)
	fl.signalDelivered()
	if err != nil {
		return err
	}
	match, err := c.awaitMatch(m, dest, tag)
	if err != nil {
		return err
	}
	ctsAt := match.MatchTime + dur(c.linkLatency(dest))
	c.clock.AdvanceTo(ctsAt)
	streamCost := c.cache.StreamCost(b.Region(), n)
	occupy := math.Max(streamCost, float64(n)/wireBW)
	nCopy := minInt64(n, int64(match.Dst.Len()))
	return c.rdvSendLoop(m, dest, tag, n, func(f simnet.Fault) (uint64, bool, bool, error) {
		c.clock.Advance(vclock.FromSeconds(occupy))
		if nCopy > 0 {
			buf.CopyAt(match.Dst, 0, b, 0, int(nCopy))
		}
		poisoned := f.NeedsResend() && !damageContig(match.Dst, nCopy, f)
		var sum uint64
		hasSum := false
		if m.Ack != nil && !b.IsVirtual() && !match.Dst.IsVirtual() && nCopy > 0 {
			var cs buf.Checksum
			cs.Write(b.Bytes()[:nCopy])
			sum = cs.Sum64()
			hasSum = true
		}
		return sum, hasSum, poisoned, nil
	})
}

// deliverRdv injects a rendezvous control envelope, retransmitting
// after the modeled backoff when the armed fault plan discards it (a
// damaged RTS fails the link-level CRC and counts as a drop).
func (c *Comm) deliverRdv(m *simnet.Message, dest, tag int) error {
	attempt := 0
	for {
		f := c.fabric.Deliver(c.endpoint(dest), m)
		again, err := c.eagerRetryStep(&attempt, "rdv-rts", dest, tag, f)
		if err != nil || !again {
			return err
		}
		m.Arrival = c.clock.Now() + dur(c.linkLatency(dest))
	}
}

// sendTyped implements the derived-datatype direct send: MPI packs the
// payload through its internal chunk buffers and transmits, without
// pack/inject overlap (§2.3), at the internally degraded bandwidth
// (§4.1). Under fl.pipelined the rendezvous chunk loop runs on the
// software-pipelined chunk engine instead: chunk k+1 packs into the
// slot ring while chunk k injects, and the span collapses to the
// two-stage pipeline bound (memsim.PipelinedChunkCost).
func (c *Comm) sendTyped(b buf.Block, count int, ty *datatype.Type, dest, tag int, fl sendFlags) error {
	p := c.prof
	n := ty.PackSize(count)
	packer, err := ty.NewPacker(b, count)
	if err != nil {
		return err
	}
	st := ty.Stats(count)
	chunks := p.Chunks(n)
	eager := !fl.forceRdv && c.eagerOK(n, fl.packed, !fl.asyncReturn && !b.IsVirtual())
	// The pipelined engine needs the rendezvous chunk loop (eager
	// sends pack in one shot before the envelope leaves) and the
	// compiled kernels (the cursor is the true fallback); under the
	// reference-[2] NIC what-if the hardware already overlaps, so the
	// software ring would only add a copy.
	pipelined := fl.pipelined && !eager && chunks > 1 && !p.NICPipelining && pipelineEnabled()
	var gather float64
	if pipelined {
		// The slot ring is filled by the compiled kernels, with their
		// amortised per-segment bookkeeping — further amortised when
		// the plan's program normalized into a canonical block form.
		if plan, perr := ty.CompilePlan(count); perr == nil && plan.Kernel() == datatype.KernelBlock {
			gather = c.cache.NormalizedGatherCost(b.Region(), c.internal.Region(), st)
		} else {
			gather = c.cache.CompiledGatherCost(b.Region(), c.internal.Region(), st)
		}
	} else {
		gather = c.cache.GatherCost(b.Region(), c.internal.Region(), st)
	}
	wireBW := fl.wireBW
	if wireBW == 0 {
		if p.NICPipelining {
			// Reference [2]: the NIC reads user memory directly, so
			// the internal buffer pool and its large-message
			// bookkeeping degradation disappear.
			wireBW = p.NetBandwidth
		} else {
			wireBW = p.InternalBW(n)
		}
	}
	wire := 0.0
	if n > 0 {
		wire = float64(n) / wireBW
	}
	bookkeeping := float64(chunks) * p.ChunkOverhead
	packWork := gather + bookkeeping
	// transferSpan is how long pack+inject occupy the sender once the
	// payload may flow: serialised in the measured installations
	// (§2.3: no pipelining in practice). Under the reference-[2]
	// what-if the NIC gathers straight from user memory, so the core
	// pack loop disappears entirely: the span is the maximum of the
	// wire time and the NIC's own line-granular memory traffic at
	// streaming bandwidth, plus per-chunk registration bookkeeping
	// exposed as pipeline fill. The software-pipelined engine keeps
	// the core pack loop but overlaps it chunk-by-chunk with the
	// injection through the slot ring.
	transferSpan := packWork + wire
	if p.NICPipelining {
		h := c.cache.Hierarchy()
		nicRead := float64(h.Traffic(st))/h.StreamBW + bookkeeping
		packWork = nicRead
		fill := nicRead
		if chunks > 0 {
			fill = nicRead / float64(chunks)
		}
		transferSpan = fill + wire
		if nicRead > transferSpan {
			transferSpan = nicRead
		}
	}
	if pipelined {
		transferSpan = memsim.PipelinedChunkCost(packWork, wire, chunks, p.PipelineDepth())
	}

	if eager {
		if c.faultsOn() || (!fl.asyncReturn && !b.IsVirtual() && buf.PoolOverCap(n)) {
			// Under backpressure the eager pack target would grow the
			// over-cap pool; under faults the retry loop needs a fresh
			// transit pack per attempt. Both run the attempt loop.
			if !c.faultsOn() {
				buf.NotePoolDegradation()
				// Degrade to rendezvous: re-enter with the handshake
				// forced; the typed rendezvous stages into the
				// receiver's buffer instead of a sender-side transit.
				fl.forceRdv = true
				return c.sendTyped(b, count, ty, dest, tag, fl)
			}
			attempt := 0
			for {
				transit := c.transitAlloc(b, n)
				if _, err := packer.Pack(transit); err != nil {
					buf.PutPooled(transit)
					fl.signalDelivered()
					return err
				}
				c.clock.Advance(vclock.FromSeconds(p.SendOverhead))
				injectEnd := c.clock.Now() + dur(transferSpan)
				if !fl.asyncReturn {
					c.clock.AdvanceTo(injectEnd)
				} else {
					c.clock.Advance(vclock.FromSeconds(packWork))
				}
				f := c.deliverEager(dest, tag, transit, n, injectEnd, fl)
				fl.signalDelivered()
				again, err := c.eagerRetryStep(&attempt, "send-typed", dest, tag, f)
				if err != nil || !again {
					if fl.onConsume != nil {
						fl.onConsume()
					}
					return err
				}
				if packer, err = ty.NewPacker(b, count); err != nil {
					return err
				}
			}
		}
		transit := c.transitAlloc(b, n)
		if _, err := packer.Pack(transit); err != nil {
			return err
		}
		c.clock.Advance(vclock.FromSeconds(p.SendOverhead))
		injectEnd := c.clock.Now() + dur(transferSpan)
		if !fl.asyncReturn {
			// Bsend returns after the local pack; everyone else waits
			// for the injection too.
			c.clock.AdvanceTo(injectEnd)
		} else {
			c.clock.Advance(vclock.FromSeconds(packWork))
		}
		c.deliverEager(dest, tag, transit, n, injectEnd, fl)
		fl.signalDelivered()
		return nil
	}

	c.clock.Advance(vclock.FromSeconds(p.SendOverhead))
	sendStart := c.clock.Now()
	m := c.newRdvMessage(dest, tag, n, fl)
	err = c.deliverRdv(m, dest, tag)
	fl.signalDelivered()
	if err != nil {
		return err
	}
	match, err := c.awaitMatch(m, dest, tag)
	if err != nil {
		return err
	}
	ctsAt := match.MatchTime + dur(p.NetLatency)
	// Cray MPICH hides the handshake of internally packed sends behind
	// the first chunk's packing (§4.5: no visible eager drop for the
	// derived-type schemes there).
	var packFrom vclock.Time
	if p.ContigOnlyEagerDrop {
		packFrom = sendStart
		if ctsAt > packFrom+dur(packWork) {
			packFrom = ctsAt - dur(packWork)
		}
	} else {
		packFrom = ctsAt
	}
	c.clock.AdvanceTo(packFrom)
	// Chunk loop: pack a chunk, inject a chunk — serialised in the
	// measured installations, overlapped under NIC pipelining or the
	// software-pipelined slot ring. Under faults each retransmission
	// re-packs through a fresh packer.
	nCopy := minInt64(n, int64(match.Dst.Len()))
	if plan := packer.Plan(); c.faultsOn() && !c.retry.WholeReplay && m.Ack != nil && plan != nil {
		chunkSz := p.InternalChunk()
		if schunks := int((nCopy + chunkSz - 1) / chunkSz); schunks > 1 {
			// Selective chunk retransmission: per-chunk checksums, a
			// bitmap NACK, and replays that re-pack only the damaged
			// stream ranges through the compiled plan.
			x := &chunkedXfer{
				covered: nCopy, chunkSize: chunkSz, chunks: schunks,
				drainAll: func() error {
					var drainErr error
					if pipelined {
						drainErr = c.drainPipelined(plan, b, match.Dst, n)
					} else {
						drainErr = c.drainPacker(packer, match.Dst, n)
					}
					if drainErr != nil {
						return drainErr
					}
					c.clock.Advance(vclock.FromSeconds(transferSpan))
					if end := ctsAt + dur(wire); c.clock.Now() < end {
						c.clock.AdvanceTo(end)
					}
					return nil
				},
				resend: func(lo, hi int64) error {
					if err := plan.PackRange(b, match.Dst.Slice(int(lo), int(hi-lo)), lo, hi); err != nil {
						return err
					}
					c.clock.Advance(vclock.FromSeconds((packWork + wire) * float64(hi-lo) / float64(n)))
					return nil
				},
				sum: func(lo, hi int64) (uint64, bool) {
					if b.IsVirtual() || match.Dst.IsVirtual() || hi <= lo {
						return 0, false
					}
					var cs buf.Checksum
					plan.ChecksumRange(b, lo, hi, &cs)
					return cs.Sum64(), true
				},
				damage: func(f simnet.Fault, lo, hi int64) bool {
					return damageContigRange(match.Dst, lo, hi, f)
				},
			}
			return c.rdvSendSelective(m, dest, tag, n, x)
		}
	}
	first := true
	return c.rdvSendLoop(m, dest, tag, n, func(f simnet.Fault) (uint64, bool, bool, error) {
		pk := packer
		if !first {
			var perr error
			if pk, perr = ty.NewPacker(b, count); perr != nil {
				return 0, false, false, perr
			}
		}
		first = false
		var drainErr error
		if pipelined {
			drainErr = c.drainPipelined(pk.Plan(), b, match.Dst, n)
		} else {
			drainErr = c.drainPacker(pk, match.Dst, n)
		}
		if drainErr != nil {
			return 0, false, false, drainErr
		}
		c.clock.Advance(vclock.FromSeconds(transferSpan))
		if end := ctsAt + dur(wire); c.clock.Now() < end {
			// The wire cannot start before the CTS even when packing
			// was prefetched.
			c.clock.AdvanceTo(end)
		}
		poisoned := f.NeedsResend() && !damageContig(match.Dst, nCopy, f)
		var sum uint64
		hasSum := false
		if m.Ack != nil && !b.IsVirtual() && !match.Dst.IsVirtual() && nCopy > 0 {
			var cs buf.Checksum
			pk.Plan().ChecksumRange(b, 0, nCopy, &cs)
			sum = cs.Sum64()
			hasSum = true
		}
		return sum, hasSum, poisoned, nil
	})
}

// drainPacker streams the packed byte sequence into dst through
// internal-chunk-sized pieces — the mechanical counterpart of the cost
// charged in sendTyped.
func (c *Comm) drainPacker(packer *datatype.Packer, dst buf.Block, n int64) error {
	limit := int64(dst.Len())
	if n < limit {
		limit = n
	}
	chunk := c.prof.InternalChunk()
	var off int64
	for off < limit {
		sz := chunk
		if off+sz > limit {
			sz = limit - off
		}
		if _, err := packer.Pack(dst.Slice(int(off), int(sz))); err != nil {
			return err
		}
		off += sz
	}
	return nil
}

// drainPipelined is the software-pipelined counterpart of drainPacker:
// a pack worker fills the bounded slot ring a configurable depth ahead
// (datatype.ChunkPipeline) while this goroutine injects each packed
// slot into the destination, so chunk k+1 packs while chunk k injects.
// The ring is the path's entire allocation footprint — depth pooled
// slots from this rank's shard, recycled in place and released on
// return.
func (c *Comm) drainPipelined(plan *datatype.Plan, user, dst buf.Block, n int64) error {
	limit := int64(dst.Len())
	if n < limit {
		limit = n
	}
	cp, err := datatype.NewChunkPipeline(plan, user, 0, limit, c.prof.InternalChunk(), c.prof.PipelineDepth(), c.rank)
	if err != nil {
		return err
	}
	defer cp.Close()
	real := !user.IsVirtual() && !dst.IsVirtual()
	for {
		ch, ok := cp.Next()
		if !ok {
			return nil
		}
		if real {
			buf.CopyAt(dst, int(ch.Lo), ch.Data, 0, int(ch.Hi-ch.Lo))
		}
		cp.Recycle(ch)
	}
}

// newRdvMessage builds a rendezvous envelope with its RTS arrival
// stamped. Under faults the envelope carries the per-attempt Ack
// channel of the checksum/NACK loop.
func (c *Comm) newRdvMessage(dest, tag int, n int64, fl sendFlags) *simnet.Message {
	m := &simnet.Message{
		Ctx:     c.ctx,
		Src:     c.endpoint(c.rank),
		Tag:     tag,
		Kind:    simnet.KindRendezvous,
		Bytes:   n,
		Arrival: c.clock.Now() + dur(c.linkLatency(dest)),
		Packed:  fl.packed,
		Sendv:   fl.sendv,
		Match:   make(chan simnet.RdvMatch, 1),
		Done:    make(chan simnet.RdvDone, 1),
	}
	if c.fabric.Tracking() {
		m.InitWake()
	}
	if c.faultsOn() {
		m.Ack = make(chan error, 1)
	}
	return m
}

// deliverEager ships a transit payload and returns the fault verdict.
// Under faults the payload carries the sender's checksum, and
// OnConsume stays off the wire (a dropped or discarded copy would
// otherwise leak it, or never fire it) — the send paths fire it
// locally once the payload's fate is settled.
func (c *Comm) deliverEager(dest, tag int, transit buf.Block, n int64, injectEnd vclock.Time, fl sendFlags) simnet.Fault {
	m := &simnet.Message{
		Ctx:       c.ctx,
		Src:       c.endpoint(c.rank),
		Tag:       tag,
		Kind:      simnet.KindEager,
		Payload:   transit,
		Bytes:     n,
		Arrival:   injectEnd + dur(c.linkLatency(dest)),
		Packed:    fl.packed,
		OnConsume: fl.onConsume,
	}
	if c.faultsOn() {
		m.Sum = buf.ChecksumOf(transit)
		m.HasSum = true
		m.OnConsume = nil
	}
	return c.fabric.Deliver(c.endpoint(dest), m)
}

// transitCopy clones a payload into a fabric-owned transit block,
// virtual when the source is virtual. Transit blocks come from this
// rank's shard of the size-classed pool (buf.GetPooledFor) and are
// released by the receive completion that consumes them — PutPooled
// returns the storage to the allocating rank's shard, so ranks never
// contend on one free list per class.
func (c *Comm) transitCopy(b buf.Block) buf.Block {
	if b.IsVirtual() {
		return buf.Virtual(b.Len())
	}
	t := buf.GetPooledFor(c.rank, b.Len())
	buf.Copy(t, b)
	return t
}

// transitAlloc allocates a transit block of n bytes matching the
// reality of the user buffer, from this rank's pool shard. Real
// blocks carry undefined contents; every caller fills them completely
// (eager pack, rendezvous stream) before the receiver reads.
func (c *Comm) transitAlloc(user buf.Block, n int64) buf.Block {
	if user.IsVirtual() {
		return buf.Virtual(int(n))
	}
	return buf.GetPooledFor(c.rank, int(n))
}

// recvContig receives into a contiguous buffer; src and tag may be
// wildcards.
func (c *Comm) recvContig(b buf.Block, src, tag int) (Status, error) {
	post := c.clock.Now()
	m, err := c.matchVerified(src, tag)
	if err != nil {
		return Status{}, err
	}
	return c.completeRecvContig(b, m, post)
}

// completeRecvContig finishes a matched contiguous receive.
func (c *Comm) completeRecvContig(b buf.Block, m *simnet.Message, post vclock.Time) (Status, error) {
	p := c.prof
	st := Status{Source: c.localRank(m.Src), Tag: m.Tag, Count: m.Bytes}
	switch m.Kind {
	case simnet.KindEager:
		c.clock.AdvanceTo(maxTime(m.Arrival, post))
		if err := eagerWireErr(m); err != nil {
			// A payload damaged in flight with no retry machinery armed
			// to re-request it: surface the typed delivery error.
			consumeEager(m)
			return st, err
		}
		nCopy := m.Bytes
		if int64(b.Len()) < nCopy {
			nCopy = int64(b.Len())
		}
		// The bounce-buffer copy applies only to *unexpected* eager
		// messages (arrival before the receive was posted); a posted
		// receive takes delivery zero-copy. This is why raising the
		// eager limit over the maximum size "did not appreciably
		// change the results for large messages" (§4.5): a ping-pong
		// receiver is always already waiting.
		var copyCost float64
		if m.Arrival <= post {
			copyCost = c.cache.CopyCost(m.Payload.Region(), b.Region(), nCopy)
		}
		c.clock.Advance(vclock.FromSeconds(p.RecvOverhead + copyCost))
		if nCopy > 0 {
			buf.CopyAt(b, 0, m.Payload, 0, int(nCopy))
		}
		if m.OnConsume != nil {
			m.OnConsume()
		}
		// The transit copy is consumed: recycle it. (No-op for
		// non-pooled payloads like Bsend's attached-buffer regions.)
		buf.PutPooled(m.Payload)
		m.Payload = buf.Block{}
		if m.Bytes > int64(b.Len()) {
			return st, fmt.Errorf("%w: %d-byte message, %d-byte receive buffer", ErrTruncate, m.Bytes, b.Len())
		}
		return st, nil
	case simnet.KindRendezvous:
		m.NoteWake()
		m.Match <- simnet.RdvMatch{MatchTime: maxTime(m.Arrival, post), Dst: b}
		done, err := c.rdvRecvVerify(m, c.localRank(m.Src), m.Tag, func(lo, hi int64) (uint64, bool) {
			hi = minInt64(hi, int64(b.Len()))
			if b.IsVirtual() || hi <= lo {
				return 0, false
			}
			var cs buf.Checksum
			cs.Write(b.Bytes()[lo:hi])
			return cs.Sum64(), true
		})
		if err != nil {
			return st, err
		}
		c.clock.AdvanceTo(done.Arrival)
		c.clock.Advance(vclock.FromSeconds(p.RecvOverhead))
		if m.Sendv {
			// A sendv sender packed its layout straight into this
			// contiguous buffer: one pass, no staging anywhere.
			datatype.RecordFusedTransfer(minInt64(done.Bytes, int64(b.Len())))
		}
		if m.OnConsume != nil {
			m.OnConsume()
		}
		if done.Bytes > int64(b.Len()) {
			return st, fmt.Errorf("%w: %d-byte message, %d-byte receive buffer", ErrTruncate, done.Bytes, b.Len())
		}
		return st, nil
	default:
		return st, fmt.Errorf("mpi: unknown message kind %v", m.Kind)
	}
}

// recvTyped receives a typed message, scattering into the datatype
// layout.
func (c *Comm) recvTyped(b buf.Block, count int, ty *datatype.Type, src, tag int) (Status, error) {
	unpacker, err := ty.NewUnpacker(b, count)
	if err != nil {
		return Status{}, err
	}
	p := c.prof
	need := ty.PackSize(count)
	post := c.clock.Now()
	m, err := c.matchVerified(src, tag)
	if err != nil {
		return Status{}, err
	}
	st := Status{Source: c.localRank(m.Src), Tag: m.Tag, Count: m.Bytes}
	scatter := c.cache.ScatterCost(c.internal.Region(), b.Region(), ty.Stats(count))
	switch m.Kind {
	case simnet.KindEager:
		c.clock.AdvanceTo(maxTime(m.Arrival, post))
		if werr := eagerWireErr(m); werr != nil {
			consumeEager(m)
			return st, werr
		}
		c.clock.Advance(vclock.FromSeconds(p.RecvOverhead + scatter))
		nCopy := m.Bytes
		if need < nCopy {
			nCopy = need
		}
		if nCopy > 0 {
			if _, err := unpacker.Unpack(m.Payload.Slice(0, int(nCopy))); err != nil {
				buf.PutPooled(m.Payload)
				m.Payload = buf.Block{}
				return st, err
			}
			datatype.RecordStagedTransfer(nCopy)
		}
		if m.OnConsume != nil {
			m.OnConsume()
		}
		buf.PutPooled(m.Payload)
		m.Payload = buf.Block{}
		if m.Bytes > need {
			return st, fmt.Errorf("%w: %d-byte message, %d-byte typed receive", ErrTruncate, m.Bytes, need)
		}
		return st, nil
	case simnet.KindRendezvous:
		if m.Sendv {
			if fd := c.offerFusedDst(b, count, ty, need); fd != nil {
				// Fused: expose the user layout; the sendv sender
				// scatters straight into it (or runs its local staged
				// emulation) — either way the payload arrives in place
				// and this rank never allocates staging or unpacks.
				m.NoteWake()
				m.Match <- simnet.RdvMatch{MatchTime: maxTime(m.Arrival, post), Dst: b, FusedDst: fd}
				done, err := c.rdvRecvVerify(m, c.localRank(m.Src), m.Tag, func(lo, hi int64) (uint64, bool) {
					hi = minInt64(hi, need)
					if b.IsVirtual() || hi <= lo {
						return 0, false
					}
					var cs buf.Checksum
					fd.plan.ChecksumRange(b, lo, hi, &cs)
					return cs.Sum64(), true
				})
				if err != nil {
					return st, err
				}
				c.clock.AdvanceTo(done.Arrival)
				c.clock.Advance(vclock.FromSeconds(p.RecvOverhead))
				if m.OnConsume != nil {
					m.OnConsume()
				}
				if done.Bytes > need {
					return st, fmt.Errorf("%w: %d-byte message, %d-byte typed receive", ErrTruncate, done.Bytes, need)
				}
				return st, nil
			}
			// The layout cannot take a one-pass scatter (overlapping
			// instances, uncompilable plan): stage like any typed
			// rendezvous; the sendv sender packs into the staging block
			// in one compiled pass instead.
		}
		staging := c.transitAlloc(b, minInt64(m.Bytes, need))
		m.NoteWake()
		m.Match <- simnet.RdvMatch{MatchTime: maxTime(m.Arrival, post), Dst: staging}
		done, err := c.rdvRecvVerify(m, c.localRank(m.Src), m.Tag, func(lo, hi int64) (uint64, bool) {
			hi = minInt64(hi, int64(staging.Len()))
			if staging.IsVirtual() || hi <= lo {
				return 0, false
			}
			var cs buf.Checksum
			cs.Write(staging.Bytes()[lo:hi])
			return cs.Sum64(), true
		})
		if err != nil {
			// The sender has finished with the staging block (Done is
			// sent after the copy), so it can be recycled even on error.
			buf.PutPooled(staging)
			return st, err
		}
		c.clock.AdvanceTo(done.Arrival)
		c.clock.Advance(vclock.FromSeconds(p.RecvOverhead + scatter))
		if staging.Len() > 0 {
			if _, err := unpacker.Unpack(staging); err != nil {
				buf.PutPooled(staging)
				return st, err
			}
			datatype.RecordStagedTransfer(int64(staging.Len()))
		}
		if m.OnConsume != nil {
			m.OnConsume()
		}
		buf.PutPooled(staging)
		if done.Bytes > need {
			return st, fmt.Errorf("%w: %d-byte message, %d-byte typed receive", ErrTruncate, done.Bytes, need)
		}
		return st, nil
	default:
		return st, fmt.Errorf("mpi: unknown message kind %v", m.Kind)
	}
}

// matchFrom resolves the wildcard-aware (src, tag) match for this
// communicator.
func (c *Comm) matchFrom(src, tag int) (*simnet.Message, error) {
	ep := simnet.AnySource
	if src != AnySource {
		ep = c.endpoint(src)
	}
	return c.matchEndpoint(ep, tag)
}

// matchEndpoint blocks until a message from the fabric endpoint ep (or
// any, for the wildcard) matches. Under tracking the wait is
// registered with the quiescence detector and honours both an abort
// teardown and the owning request's deadline cancellation.
func (c *Comm) matchEndpoint(ep, tag int) (*simnet.Message, error) {
	me := c.endpoint(c.rank)
	if !c.fabric.Tracking() {
		m := c.fabric.Match(me, c.ctx, ep, tag)
		if m == nil {
			return nil, c.abortErrFor("recv")
		}
		return m, nil
	}
	// The take counter keeps readiness true between removing the
	// envelope inside MatchCancel and deregistering here: a take by any
	// receiver on this mailbox since block time counts as progress, so
	// a descheduled waiter cannot fabricate a quiescent state.
	t0 := c.fabric.Takes(me)
	release := c.fabric.EnterBlocked(simnet.BlockInfo{
		Rank: me, Op: "recv", Ctx: c.ctx, Src: ep, Tag: tag, Since: c.clock.Now(),
	}, func() bool { return c.fabric.Pending(me, c.ctx, ep, tag) || c.fabric.Takes(me) != t0 })
	m, err := c.fabric.MatchCancel(me, c.ctx, ep, tag, c.cancelCh)
	release()
	if err != nil {
		return nil, err
	}
	return m, nil
}

// eagerWireErr reports in-flight damage of a matched eager payload as
// a typed error — the no-retry path (faults disarmed, raw fabric
// injections): Message.Err and advertised-vs-delivered size mismatch
// surface from Recv/Wait instead of silently corrupting the receive.
func eagerWireErr(m *simnet.Message) error {
	if m.Err != nil {
		return m.Err
	}
	if int64(m.Payload.Len()) < m.Bytes {
		return fmt.Errorf("%w: %d of %d bytes arrived", simnet.ErrShortDelivery, m.Payload.Len(), m.Bytes)
	}
	return nil
}

// consumeEager retires a matched eager payload without delivering it.
func consumeEager(m *simnet.Message) {
	if m.OnConsume != nil {
		m.OnConsume()
	}
	buf.PutPooled(m.Payload)
	m.Payload = buf.Block{}
}

// localRank translates a fabric endpoint back to a communicator rank.
func (c *Comm) localRank(endpoint int) int {
	if c.members == nil {
		return endpoint
	}
	for i, ep := range c.members {
		if ep == endpoint {
			return i
		}
	}
	return -1
}

// dur converts a model cost in seconds to a virtual-time offset.
func dur(seconds float64) vclock.Time {
	return vclock.Time(vclock.FromSeconds(seconds))
}

func maxTime(a, b vclock.Time) vclock.Time {
	if a > b {
		return a
	}
	return b
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
